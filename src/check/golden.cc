#include "src/check/golden.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/wire.h"

namespace ccas::check {

namespace {

// All cells share the compressed timeline: long enough past the stagger
// and warm-up for losses and recovery episodes in every cell, short enough
// that the whole grid runs in seconds.
ExperimentSpec base_spec() {
  ExperimentSpec spec;
  spec.scenario.stagger = TimeDelta::millis(200);
  spec.scenario.warmup = TimeDelta::millis(500);
  spec.scenario.measure = TimeDelta::seconds(1);
  spec.seed = 42;
  spec.record_drop_log = true;
  spec.record_congestion_log = true;
  return spec;
}

ExperimentSpec edge_spec() {
  ExperimentSpec spec = base_spec();
  spec.scenario.setting = Setting::kEdgeScale;
  spec.scenario.net.bottleneck_rate = DataRate::mbps(100);
  spec.scenario.net.buffer_bytes = 3 * 1000 * 1000;
  return spec;
}

// CoreScale regime scaled down in rate but kept above the ~600 Mbps GRO
// threshold (at 1 Gbps segments arrive 12 us apart, within the 20 us flush
// timeout), with a 1-BDP-at-200ms buffer.
ExperimentSpec core_spec() {
  ExperimentSpec spec = base_spec();
  spec.scenario.setting = Setting::kCoreScale;
  spec.scenario.net.bottleneck_rate = DataRate::gbps(1);
  spec.scenario.net.buffer_bytes = 25 * 1000 * 1000;
  return spec;
}

GoldenCell cell(std::string name, ExperimentSpec spec,
                std::vector<FlowGroup> groups) {
  spec.groups = std::move(groups);
  return GoldenCell{std::move(name), std::move(spec)};
}

}  // namespace

std::vector<GoldenCell> golden_grid() {
  const TimeDelta rtt20 = TimeDelta::millis(20);
  const TimeDelta rtt80 = TimeDelta::millis(80);
  std::vector<GoldenCell> cells;
  cells.push_back(cell("edge-newreno", edge_spec(), {{"newreno", 4, rtt20}}));
  cells.push_back(cell("edge-cubic", edge_spec(), {{"cubic", 4, rtt20}}));
  cells.push_back(cell("edge-bbr", edge_spec(), {{"bbr", 4, rtt20}}));
  cells.push_back(cell("edge-cubic-vs-bbr", edge_spec(),
                       {{"cubic", 2, rtt20}, {"bbr", 2, rtt20}}));
  cells.push_back(cell("edge-rtt-unfair", edge_spec(),
                       {{"cubic", 2, rtt20}, {"cubic", 2, rtt80}}));
  {
    ExperimentSpec spec = edge_spec();
    spec.tcp.sack_enabled = false;
    cells.push_back(cell("edge-nosack-newreno", std::move(spec),
                         {{"newreno", 3, rtt20}}));
  }
  cells.push_back(cell("core-cubic", core_spec(), {{"cubic", 8, rtt20}}));
  cells.push_back(cell("core-cubic-vs-bbr", core_spec(),
                       {{"cubic", 4, rtt20}, {"bbr", 4, rtt20}}));
  // Impaired cells: pin the exogenous-loss/reorder/jitter machinery. Both
  // leave impairments.seed at 0, so the recorded digests also pin the
  // derive_impairment_seed path in run_experiment.
  {
    // Bursty GE loss in the Edge regime: ~0.5% per-packet transition into
    // a bad state dropping half its packets — loss episodes a few packets
    // long, the regime where Mathis diverges most from i.i.d.
    ExperimentSpec spec = edge_spec();
    spec.scenario.net.impairments.ge.p_good_to_bad = 0.005;
    spec.scenario.net.impairments.ge.p_bad_to_good = 0.3;
    spec.scenario.net.impairments.ge.loss_bad = 0.5;
    cells.push_back(cell("edge-ge-loss", std::move(spec), {{"cubic", 4, rtt20}}));
  }
  {
    // Wire jitter plus delay-swap reordering in the Core regime: stresses
    // the RFC 6675 scoreboard (spurious dupacks) and GRO flush behaviour.
    ExperimentSpec spec = core_spec();
    spec.scenario.net.impairments.jitter = TimeDelta::micros(200);
    spec.scenario.net.impairments.jitter_dist =
        ImpairmentConfig::JitterDist::kNormal;
    spec.scenario.net.impairments.reorder = 0.02;
    spec.scenario.net.impairments.reorder_delay = TimeDelta::millis(1);
    cells.push_back(
        cell("core-jitter-reorder", std::move(spec), {{"cubic", 8, rtt20}}));
  }
  // AQM cells: pin the qdisc subsystem. Both leave qdisc.seed at 0, so the
  // recorded digests also pin the derive_qdisc_seed path in run_experiment.
  {
    // FQ-CoDel in the Edge regime over an RTT-unfair mix: the per-flow DRR
    // scheduler plus per-flow CoDel should pull JFI toward 1 where plain
    // drop-tail lets the short-RTT pair dominate — the digest pins the
    // bucket hash, the DRR rotation order, and the CoDel control law.
    ExperimentSpec spec = edge_spec();
    spec.scenario.net.qdisc.kind = QdiscKind::kFqCoDel;
    cells.push_back(cell("edge-fqcodel", std::move(spec),
                         {{"cubic", 2, rtt20}, {"cubic", 2, rtt80}}));
  }
  {
    // RED with ECN marking in the Core regime: pins the EWMA average, the
    // probability ladder (count correction + gentle ramp), the dedicated
    // Rng stream, and the full ECN loop (CE -> ECE -> cwnd cut -> CWR).
    ExperimentSpec spec = core_spec();
    spec.scenario.net.qdisc.kind = QdiscKind::kRed;
    spec.scenario.net.qdisc.ecn = true;
    cells.push_back(cell("core-red-ecn", std::move(spec), {{"cubic", 8, rtt20}}));
  }
  // Workload cells: pin the open-loop engine (src/workload/) — the
  // derive_workload_seed stream, the fork/size/gap draw order, app-limited
  // release timing, and the FCT-recorder sketch bytes in the serialized
  // result. Both keep background groups so the sharded differential wall
  // above also covers dynamic flows riding on a sharded fabric.
  {
    // Short web objects against heavy bulk transfers in the Edge regime:
    // the paper's "millions of users" mix scaled to the golden timeline.
    ExperimentSpec spec = edge_spec();
    spec.workload.arrival = ArrivalKind::kPoisson;
    spec.workload.arrivals_per_sec = 200.0;
    WorkloadClass web;
    web.name = "web";
    web.weight = 0.9;
    web.cca = "cubic";
    web.rtt = rtt20;
    web.size.kind = SizeDistKind::kPareto;
    web.size.pareto_alpha = 1.2;
    web.size.min_segments = 4;
    web.size.max_segments = 400;
    web.app = AppModel::kWebObject;
    web.app_burst_segments = 8;
    web.app_gap = TimeDelta::millis(5);
    WorkloadClass bulk;
    bulk.name = "bulk";
    bulk.weight = 0.1;
    bulk.cca = "cubic";
    bulk.rtt = rtt80;
    bulk.size.kind = SizeDistKind::kLognormal;
    bulk.size.lognormal_mu = 5.0;
    bulk.size.lognormal_sigma = 1.2;
    bulk.size.min_segments = 10;
    bulk.size.max_segments = 10000;
    bulk.app = AppModel::kBulk;
    spec.workload.classes = {web, bulk};
    cells.push_back(cell("edge-web-mix", std::move(spec), {{"cubic", 2, rtt20}}));
  }
  {
    // Open-loop video pacing in the Core regime: chunk releases keep every
    // sender app-limited, pinning the is_app_limited delivery-rate path
    // the BBR family filters on.
    ExperimentSpec spec = core_spec();
    spec.workload.arrival = ArrivalKind::kPoisson;
    spec.workload.arrivals_per_sec = 400.0;
    spec.workload.max_concurrent = 512;
    WorkloadClass video;
    video.name = "video";
    video.weight = 1.0;
    video.cca = "bbr";
    video.rtt = rtt20;
    video.size.kind = SizeDistKind::kFixed;
    video.size.fixed_segments = 96;
    video.size.min_segments = 96;
    video.size.max_segments = 96;
    video.app = AppModel::kVideoChunk;
    video.app_burst_segments = 16;
    video.app_gap = TimeDelta::millis(40);
    spec.workload.classes = {video};
    cells.push_back(
        cell("core-userscale-poisson", std::move(spec), {{"cubic", 4, rtt20}}));
  }
  return cells;
}

uint64_t golden_digest(const ExperimentSpec& spec, const ExperimentResult& result) {
  std::string bytes;
  sweep::put_string(bytes, kGoldenVersionTag);
  bytes += sweep::canonical_spec_bytes(spec);
  bytes += sweep::serialize_result(result);
  return sweep::fnv1a64(bytes);
}

GoldenRecord make_golden_record(const std::string& name, const ExperimentSpec& spec,
                                const ExperimentResult& result) {
  GoldenRecord rec;
  rec.name = name;
  rec.digest = golden_digest(spec, result);
  rec.aggregate_goodput_bps = result.aggregate_goodput_bps;
  rec.utilization = result.utilization;
  rec.dropped_packets = result.queue.dropped_packets;
  for (const auto& flow_log : result.congestion_log) {
    rec.congestion_events += flow_log.size();
  }
  rec.sim_events = result.sim_events;
  rec.flows = result.flows.size();
  return rec;
}

std::string format_goldens(const std::vector<GoldenRecord>& records) {
  std::string out;
  out += "# ";
  out += kGoldenVersionTag;
  out += "\n# name digest goodput_bps utilization drops cong_events sim_events flows\n";
  for (const GoldenRecord& r : records) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s %016" PRIx64 " %.17g %.17g %" PRIu64 " %" PRIu64 " %" PRIu64
                  " %" PRIu64 "\n",
                  r.name.c_str(), r.digest, r.aggregate_goodput_bps, r.utilization,
                  r.dropped_packets, r.congestion_events, r.sim_events, r.flows);
    out += line;
  }
  return out;
}

std::vector<GoldenRecord> parse_goldens(const std::string& text) {
  std::vector<GoldenRecord> records;
  std::istringstream in(text);
  std::string line;
  bool version_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find(kGoldenVersionTag) != std::string::npos) version_seen = true;
      continue;
    }
    GoldenRecord r;
    char name[128];
    char digest_hex[32];
    if (std::sscanf(line.c_str(),
                    "%127s %31s %lg %lg %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64,
                    name, digest_hex, &r.aggregate_goodput_bps, &r.utilization,
                    &r.dropped_packets, &r.congestion_events, &r.sim_events,
                    &r.flows) != 8) {
      throw std::runtime_error("malformed golden line: " + line);
    }
    r.name = name;
    char* end = nullptr;
    r.digest = std::strtoull(digest_hex, &end, 16);
    if (end == digest_hex || *end != '\0') {
      throw std::runtime_error("malformed golden digest: " + line);
    }
    records.push_back(std::move(r));
  }
  if (!records.empty() && !version_seen) {
    throw std::runtime_error(std::string("goldens file lacks version tag ") +
                             kGoldenVersionTag);
  }
  return records;
}

std::vector<GoldenRecord> load_goldens(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open goldens file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_goldens(ss.str());
}

void save_goldens(const std::string& path, const std::vector<GoldenRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write goldens file: " + path);
  const std::string text = format_goldens(records);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out.good()) throw std::runtime_error("write failed: " + path);
}

GoldenDiff compare_goldens(const std::vector<GoldenRecord>& expected,
                           const std::vector<GoldenRecord>& actual) {
  GoldenDiff diff;
  diff.ok = true;
  auto find = [](const std::vector<GoldenRecord>& v, const std::string& name)
      -> const GoldenRecord* {
    for (const GoldenRecord& r : v) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  char line[512];
  for (const GoldenRecord& exp : expected) {
    const GoldenRecord* act = find(actual, exp.name);
    if (act == nullptr) {
      diff.ok = false;
      std::snprintf(line, sizeof(line), "MISSING  %s: not produced by this run\n",
                    exp.name.c_str());
      diff.report += line;
      continue;
    }
    if (act->digest != exp.digest) {
      diff.ok = false;
      std::snprintf(line, sizeof(line),
                    "MISMATCH %s: digest %016" PRIx64 " != golden %016" PRIx64
                    " (goodput %.4g vs %.4g bps, drops %" PRIu64 " vs %" PRIu64
                    ", cong_events %" PRIu64 " vs %" PRIu64 ", sim_events %" PRIu64
                    " vs %" PRIu64 ")\n",
                    exp.name.c_str(), act->digest, exp.digest,
                    act->aggregate_goodput_bps, exp.aggregate_goodput_bps,
                    act->dropped_packets, exp.dropped_packets,
                    act->congestion_events, exp.congestion_events, act->sim_events,
                    exp.sim_events);
      diff.report += line;
      continue;
    }
    std::snprintf(line, sizeof(line), "ok       %s\n", exp.name.c_str());
    diff.report += line;
  }
  for (const GoldenRecord& act : actual) {
    if (find(expected, act.name) == nullptr) {
      diff.ok = false;
      std::snprintf(line, sizeof(line),
                    "UNKNOWN  %s: cell not in goldens file (record to add)\n",
                    act.name.c_str());
      diff.report += line;
    }
  }
  return diff;
}

}  // namespace ccas::check
