#include "src/check/audit.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/net/impairment.h"
#include "src/net/queue.h"
#include "src/tcp/tcp_sender.h"

namespace ccas::check {

namespace {

// Sanity ceiling for cwnd: no CCA in this codebase should ever exceed a
// billion segments; anything near it is a wrapped-around or corrupted
// window.
constexpr uint64_t kCwndSanityCeiling = 1ULL << 30;

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

bool check_enabled_from_env() {
  const char* v = std::getenv("CCAS_CHECK");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

InvariantAuditor::InvariantAuditor(Simulator& sim) : sim_(sim) {
  sim_.set_auditor(this);
}

InvariantAuditor::~InvariantAuditor() { sim_.set_auditor(nullptr); }

void InvariantAuditor::register_holder(
    std::string name, std::function<void(int64_t&, int64_t&)> held) {
  holders_.push_back(PacketHolder{std::move(name), std::move(held)});
}

void InvariantAuditor::watch_sender(uint32_t flow_id, const TcpSender& sender) {
  flow_shadow(flow_id).sender = &sender;
}

void InvariantAuditor::watch_impairment(const ImpairedLink& link) {
  impairments_.push_back(&link);
}

InvariantAuditor::QueueShadow& InvariantAuditor::shadow_of(const QueueDisc& q) {
  for (QueueShadow& s : queues_) {
    if (s.queue == &q) return s;
  }
  // First sight of this queue: adopt its current occupancy as the shadow
  // baseline (components may predate the auditor in tests). Callers whose
  // hook fires after the queue already mutated must back the triggering
  // packet out of the adopted baseline themselves.
  QueueShadow s;
  s.queue = &q;
  s.packets = static_cast<int64_t>(q.queued_packets());
  s.bytes = q.queued_bytes();
  s.resident_at_reset = s.packets;
  queues_.push_back(std::move(s));
  return queues_.back();
}

bool InvariantAuditor::knows_queue(const QueueDisc& q) const {
  for (const QueueShadow& s : queues_) {
    if (s.queue == &q) return true;
  }
  return false;
}

InvariantAuditor::FlowShadow& InvariantAuditor::flow_shadow(uint32_t flow_id) {
  if (flow_id >= flows_.size()) flows_.resize(flow_id + 1);
  return flows_[flow_id];
}

void InvariantAuditor::violation(std::string invariant, uint32_t flow_id, Time at,
                                 std::string detail) {
  ++total_violations_;
  if (violations_.size() >= kMaxStoredViolations) return;
  violations_.push_back(
      Violation{std::move(invariant), flow_id, at, std::move(detail)});
}

void InvariantAuditor::on_event_dispatched(Time now, Time event_time) {
  if (event_time < now) {
    violation("event-queue.monotonic-time", kNoFlow, now,
              fmt("event scheduled at %lld ns dispatched when now=%lld ns",
                  static_cast<long long>(event_time.ns()),
                  static_cast<long long>(now.ns())));
  }
  // Periodic checkpoint: fires between events (the previous event and its
  // synchronous handoffs have fully completed), where conservation holds.
  if (check_interval_ > TimeDelta::zero() && event_time >= next_check_at_) {
    run_checks(now);
    while (next_check_at_ <= event_time) next_check_at_ += check_interval_;
  }
}

void InvariantAuditor::on_enqueue(const QueueDisc& q, const Packet& pkt,
                                  bool dropped) {
  // The hook fires after the enqueue, so a first-sight baseline must not
  // already include the packet we are about to count.
  const bool first_sight = !knows_queue(q);
  QueueShadow& s = shadow_of(q);
  if (first_sight && !dropped) {
    s.packets -= 1;
    s.bytes -= pkt.size_bytes;
    s.resident_at_reset -= 1;
  }
  if (dropped) {
    ++s.dropped_since_reset;
    ++dropped_packets_;
    dropped_bytes_ += pkt.size_bytes;
  } else {
    ++s.enqueued_since_reset;
    s.packets += 1;
    s.bytes += pkt.size_bytes;
  }
  if (s.packets != static_cast<int64_t>(q.queued_packets()) ||
      s.bytes != q.queued_bytes()) {
    violation("queue.occupancy", pkt.flow_id, sim_.now(),
              fmt("after %s: shadow %lld pkts/%lld B vs queue %zu pkts/%lld B",
                  dropped ? "drop" : "enqueue", static_cast<long long>(s.packets),
                  static_cast<long long>(s.bytes), q.queued_packets(),
                  static_cast<long long>(q.queued_bytes())));
  }
  // Over-capacity occupancy is legal only in the window a kBuffer fault
  // opened by shrinking capacity below the live occupancy (the queue only
  // refuses new arrivals until it drains back under). The qdisc tracks
  // that window explicitly, so any other over-capacity state — admitted
  // or not — is a real conservation violation, not shrink fallout.
  if (q.queued_bytes() < 0 ||
      (q.queued_bytes() > q.capacity_bytes() && !q.shrunk_below_occupancy())) {
    violation("queue.capacity", pkt.flow_id, sim_.now(),
              fmt("occupancy %lld B outside [0, %lld B]",
                  static_cast<long long>(q.queued_bytes()),
                  static_cast<long long>(q.capacity_bytes())));
  }
}

void InvariantAuditor::on_dequeue(const QueueDisc& q, const Packet& pkt) {
  // Fires after the pop: a first-sight baseline must re-include the packet
  // we are about to subtract.
  const bool first_sight = !knows_queue(q);
  QueueShadow& s = shadow_of(q);
  if (first_sight) {
    s.packets += 1;
    s.bytes += pkt.size_bytes;
    s.resident_at_reset += 1;
  }
  ++s.dequeued_since_reset;
  s.packets -= 1;
  s.bytes -= pkt.size_bytes;
  if (s.packets != static_cast<int64_t>(q.queued_packets()) ||
      s.bytes != q.queued_bytes()) {
    violation("queue.occupancy", pkt.flow_id, sim_.now(),
              fmt("after dequeue: shadow %lld pkts/%lld B vs queue %zu pkts/%lld B",
                  static_cast<long long>(s.packets), static_cast<long long>(s.bytes),
                  q.queued_packets(), static_cast<long long>(q.queued_bytes())));
  }
}

void InvariantAuditor::on_head_drop(const QueueDisc& q, const Packet& pkt) {
  // Leaves the queue like a dequeue (fires after the removal, so a
  // first-sight baseline must re-include the packet), but counts as a
  // drop for network-wide conservation.
  const bool first_sight = !knows_queue(q);
  QueueShadow& s = shadow_of(q);
  if (first_sight) {
    s.packets += 1;
    s.bytes += pkt.size_bytes;
    s.resident_at_reset += 1;
  }
  ++s.head_dropped_since_reset;
  s.packets -= 1;
  s.bytes -= pkt.size_bytes;
  ++dropped_packets_;
  dropped_bytes_ += pkt.size_bytes;
  if (s.packets != static_cast<int64_t>(q.queued_packets()) ||
      s.bytes != q.queued_bytes()) {
    violation("queue.occupancy", pkt.flow_id, sim_.now(),
              fmt("after head drop: shadow %lld pkts/%lld B vs queue %zu pkts/%lld B",
                  static_cast<long long>(s.packets), static_cast<long long>(s.bytes),
                  q.queued_packets(), static_cast<long long>(q.queued_bytes())));
  }
}

void InvariantAuditor::on_mark(const QueueDisc& q, const Packet& pkt) {
  QueueShadow& s = shadow_of(q);
  ++s.marked_since_reset;
  // A CE mark on a non-ECT packet would be silently dropped congestion
  // signal: the non-ECN endpoint never echoes it, so the qdisc believes
  // it signaled when it did not.
  if ((pkt.ecn & kEcnEct) == 0) {
    violation("qdisc.mark-without-ect", pkt.flow_id, sim_.now(),
              fmt("CE mark on packet with ecn=0x%02x (no ECT)", pkt.ecn));
  }
}

void InvariantAuditor::on_queue_reset(const QueueDisc& q) {
  QueueShadow& s = shadow_of(q);
  s.enqueued_since_reset = 0;
  s.dequeued_since_reset = 0;
  s.dropped_since_reset = 0;
  s.head_dropped_since_reset = 0;
  s.marked_since_reset = 0;
  s.resident_at_reset = static_cast<int64_t>(q.queued_packets());
}

void InvariantAuditor::on_packet_injected(const Packet& pkt) {
  ++injected_packets_;
  injected_bytes_ += pkt.size_bytes;
}

void InvariantAuditor::on_packet_delivered(const Packet& pkt) {
  ++delivered_packets_;
  delivered_bytes_ += pkt.size_bytes;
}

void InvariantAuditor::on_impairment_drop(const Packet& pkt) {
  ++impaired_drop_packets_;
  ++dropped_packets_;
  dropped_bytes_ += pkt.size_bytes;
}

void InvariantAuditor::on_impairment_duplicate(const Packet& pkt) {
  ++impaired_dup_packets_;
  ++injected_packets_;
  injected_bytes_ += pkt.size_bytes;
}

void InvariantAuditor::on_ack_processed(uint32_t flow_id, const AckEvent& ev,
                                        uint64_t cwnd, Time est_delivered_time,
                                        uint64_t est_delivered) {
  if (cwnd < 1 || cwnd > kCwndSanityCeiling) {
    violation("cca.cwnd-bounds", flow_id, ev.now,
              fmt("cwnd=%llu outside [1, 2^30]",
                  static_cast<unsigned long long>(cwnd)));
  }
  FlowShadow& s = flow_shadow(flow_id);
  if (est_delivered < s.last_delivered) {
    violation("rate.delivered-monotonic", flow_id, ev.now,
              fmt("delivered count went backwards: %llu -> %llu",
                  static_cast<unsigned long long>(s.last_delivered),
                  static_cast<unsigned long long>(est_delivered)));
  }
  if (est_delivered_time.ns() < s.last_delivered_time_ns) {
    violation("rate.delivered-time-monotonic", flow_id, ev.now,
              fmt("delivered_time went backwards: %lld ns -> %lld ns",
                  static_cast<long long>(s.last_delivered_time_ns),
                  static_cast<long long>(est_delivered_time.ns())));
  }
  s.last_delivered = est_delivered;
  s.last_delivered_time_ns = est_delivered_time.ns();
  if (ev.rate.valid()) {
    if (ev.rate.interval <= TimeDelta::zero() ||
        (!ev.min_rtt.is_infinite() && ev.rate.interval < ev.min_rtt)) {
      violation("rate.sample-interval", flow_id, ev.now,
                fmt("accepted sample with interval %lld ns < min_rtt %lld ns",
                    static_cast<long long>(ev.rate.interval.ns()),
                    static_cast<long long>(ev.min_rtt.ns())));
    }
  }
  if (ev.rtt_sample < TimeDelta::zero()) {
    violation("rtt.sample-sign", flow_id, ev.now,
              fmt("negative RTT sample %lld ns",
                  static_cast<long long>(ev.rtt_sample.ns())));
  }
}

void InvariantAuditor::on_transmit(uint32_t flow_id, bool prr_active,
                                   uint64_t prr_budget, bool prr_exempt) {
  if (prr_active && !prr_exempt && prr_budget == 0) {
    violation("prr.budget-exceeded", flow_id, sim_.now(),
              "transmission during fast recovery with zero PRR send budget");
  }
}

void InvariantAuditor::check_queue(const QueueShadow& s, Time now) {
  const QueueDisc& q = *s.queue;
  const QueueStats& st = q.stats();
  // Occupancy accounting vs the queue's own counters since the last
  // reset_accounting (the queue may have held packets across the reset,
  // so compare deltas, not absolutes).
  if (st.enqueued_packets != s.enqueued_since_reset ||
      st.dropped_packets != s.dropped_since_reset ||
      st.dequeued_packets != s.dequeued_since_reset ||
      st.head_dropped_packets != s.head_dropped_since_reset ||
      st.marked_packets != s.marked_since_reset) {
    violation("queue.stats", kNoFlow, now,
              fmt("queue stats enq/deq/drop/hdrop/mark %llu/%llu/%llu/%llu/%llu "
                  "vs audited %llu/%llu/%llu/%llu/%llu",
                  static_cast<unsigned long long>(st.enqueued_packets),
                  static_cast<unsigned long long>(st.dequeued_packets),
                  static_cast<unsigned long long>(st.dropped_packets),
                  static_cast<unsigned long long>(st.head_dropped_packets),
                  static_cast<unsigned long long>(st.marked_packets),
                  static_cast<unsigned long long>(s.enqueued_since_reset),
                  static_cast<unsigned long long>(s.dequeued_since_reset),
                  static_cast<unsigned long long>(s.dropped_since_reset),
                  static_cast<unsigned long long>(s.head_dropped_since_reset),
                  static_cast<unsigned long long>(s.marked_since_reset)));
  }
  // Conservation through mark-vs-drop: everything admitted since the last
  // reset (plus what was already resident then) either left through the
  // link, was head-dropped by the AQM, or is still resident. Marks do not
  // appear: a marked packet is still delivered.
  const uint64_t carried = static_cast<uint64_t>(s.resident_at_reset);
  if (st.enqueued_packets + carried !=
      st.dequeued_packets + st.head_dropped_packets +
          static_cast<uint64_t>(q.queued_packets())) {
    violation("queue.conservation", kNoFlow, now,
              fmt("enqueued %llu + carried %llu != dequeued %llu + "
                  "head-dropped %llu + resident %zu",
                  static_cast<unsigned long long>(st.enqueued_packets),
                  static_cast<unsigned long long>(carried),
                  static_cast<unsigned long long>(st.dequeued_packets),
                  static_cast<unsigned long long>(st.head_dropped_packets),
                  q.queued_packets()));
  }
  const uint64_t total_drops = st.dropped_packets + st.head_dropped_packets;
  if (q.drop_log_enabled() &&
      q.drop_log().size() != static_cast<size_t>(total_drops)) {
    violation("queue.drop-log", kNoFlow, now,
              fmt("drop log has %zu records but %llu drops counted",
                  q.drop_log().size(),
                  static_cast<unsigned long long>(total_drops)));
  }
  uint64_t per_flow_total = 0;
  for (const uint64_t d : q.per_flow_drops()) per_flow_total += d;
  // <= because flows beyond reserve_flows() are not counted per flow.
  if (per_flow_total > total_drops) {
    violation("queue.per-flow-drops", kNoFlow, now,
              fmt("per-flow drop counters sum to %llu > %llu total drops",
                  static_cast<unsigned long long>(per_flow_total),
                  static_cast<unsigned long long>(total_drops)));
  }
  uint64_t per_flow_marks = 0;
  for (const uint64_t m : q.per_flow_marks()) per_flow_marks += m;
  if (per_flow_marks > st.marked_packets) {
    violation("queue.per-flow-marks", kNoFlow, now,
              fmt("per-flow mark counters sum to %llu > %llu total marks",
                  static_cast<unsigned long long>(per_flow_marks),
                  static_cast<unsigned long long>(st.marked_packets)));
  }
  // Sojourn samples only come from dequeues that timestamped the packet.
  if (st.sojourn_samples > st.dequeued_packets) {
    violation("queue.sojourn-samples", kNoFlow, now,
              fmt("%llu sojourn samples from %llu dequeues",
                  static_cast<unsigned long long>(st.sojourn_samples),
                  static_cast<unsigned long long>(st.dequeued_packets)));
  }
}

void InvariantAuditor::check_sender(uint32_t flow_id, const TcpSender& sender,
                                    Time now) {
  const SackScoreboard& sb = sender.scoreboard();
  uint64_t outstanding = 0;
  uint64_t sacked = 0;
  uint64_t lost = 0;
  for (uint64_t s = sb.snd_una(); s < sb.snd_nxt(); ++s) {
    const SegmentState& st = sb.seg(s);
    if (st.outstanding) ++outstanding;
    if (st.sacked) ++sacked;
    if (st.lost) ++lost;
  }
  // Without SACK, each dupack deflates pipe by one (RFC 5681 expressed as
  // pipe deflation) without clearing any segment's outstanding flag, so
  // pipe may legitimately run below the scoreboard's outstanding count —
  // but never above it.
  const bool exact = sender.config().sack_enabled;
  if (exact ? outstanding != sender.inflight()
            : sender.inflight() > outstanding) {
    violation("sender.pipe-vs-scoreboard", flow_id, now,
              fmt("pipe=%llu but %llu segments outstanding in [%llu, %llu) "
                  "(sacked=%llu lost=%llu recovery=%d)",
                  static_cast<unsigned long long>(sender.inflight()),
                  static_cast<unsigned long long>(outstanding),
                  static_cast<unsigned long long>(sb.snd_una()),
                  static_cast<unsigned long long>(sb.snd_nxt()),
                  static_cast<unsigned long long>(sacked),
                  static_cast<unsigned long long>(lost),
                  sender.in_recovery() ? 1 : 0));
  }
  if (sacked != sb.sacked_count() || lost != sb.lost_count()) {
    violation("sender.scoreboard-counters", flow_id, now,
              fmt("recount sacked=%llu lost=%llu vs counters %llu/%llu",
                  static_cast<unsigned long long>(sacked),
                  static_cast<unsigned long long>(lost),
                  static_cast<unsigned long long>(sb.sacked_count()),
                  static_cast<unsigned long long>(sb.lost_count())));
  }
  const uint64_t cwnd = sender.cca().cwnd();
  if (cwnd < 1 || cwnd > kCwndSanityCeiling) {
    violation("cca.cwnd-bounds", flow_id, now,
              fmt("cwnd=%llu outside [1, 2^30]",
                  static_cast<unsigned long long>(cwnd)));
  }
  if (sender.inflight() > sb.window_size()) {
    violation("sender.pipe-vs-window", flow_id, now,
              fmt("pipe=%llu exceeds window of %zu unacked segments",
                  static_cast<unsigned long long>(sender.inflight()),
                  sb.window_size()));
  }
}

void InvariantAuditor::held_totals(int64_t& packets, int64_t& bytes) const {
  for (const QueueShadow& s : queues_) {
    packets += static_cast<int64_t>(s.queue->queued_packets());
    bytes += s.queue->queued_bytes();
  }
  for (const PacketHolder& h : holders_) h.held(packets, bytes);
}

void InvariantAuditor::run_checks(Time now) {
  ++checks_run_;

  // Conservation: every injected packet is delivered, dropped, or held by
  // some component. Valid at event boundaries (the checkpoint runs as its
  // own event, so no packet is mid-handoff on the call stack). Skipped
  // when this auditor covers only one shard domain — packets legally
  // leave for other domains, and the fabric checks the global equation.
  int64_t held_packets = 0;
  int64_t held_bytes = 0;
  held_totals(held_packets, held_bytes);
  if (!conservation_external_ &&
      (injected_packets_ != delivered_packets_ + dropped_packets_ + held_packets ||
       injected_bytes_ != delivered_bytes_ + dropped_bytes_ + held_bytes)) {
    violation(
        "conservation", kNoFlow, now,
        fmt("injected %lld pkts/%lld B != delivered %lld/%lld + dropped "
            "%lld/%lld + in-flight %lld/%lld",
            static_cast<long long>(injected_packets_),
            static_cast<long long>(injected_bytes_),
            static_cast<long long>(delivered_packets_),
            static_cast<long long>(delivered_bytes_),
            static_cast<long long>(dropped_packets_),
            static_cast<long long>(dropped_bytes_),
            static_cast<long long>(held_packets),
            static_cast<long long>(held_bytes)));
  }

  for (const QueueShadow& s : queues_) check_queue(s, now);
  for (uint32_t id = 0; id < flows_.size(); ++id) {
    if (flows_[id].sender != nullptr) check_sender(id, *flows_[id].sender, now);
  }
  check_impairments(now);
}

void InvariantAuditor::check_impairments(Time now) {
  uint64_t stage_drops = 0;
  uint64_t stage_dups = 0;
  for (const ImpairedLink* link : impairments_) {
    const ImpairmentStats& st = link->stats();
    stage_drops += st.dropped_total();
    stage_dups += st.duplicated;
    // Internal stage conservation: every packet accepted (plus every copy
    // created) was delivered downstream, dropped, or is still held for a
    // reorder/jitter delay.
    if (st.processed + st.duplicated !=
        st.delivered + st.dropped_total() + link->in_transit()) {
      violation("impairment.stage-conservation", kNoFlow, now,
                fmt("processed %llu + dup %llu != delivered %llu + dropped "
                    "%llu + held %zu",
                    static_cast<unsigned long long>(st.processed),
                    static_cast<unsigned long long>(st.duplicated),
                    static_cast<unsigned long long>(st.delivered),
                    static_cast<unsigned long long>(st.dropped_total()),
                    link->in_transit()));
    }
  }
  // The hook-side shadow must agree with the stages' own counters: a
  // mismatch means a drop or duplication happened without its hook (or
  // vice versa) and flow-level conservation can no longer be trusted.
  if (stage_drops != impaired_drop_packets_ || stage_dups != impaired_dup_packets_) {
    violation("impairment.hook-reconciliation", kNoFlow, now,
              fmt("stage counters drops=%llu dups=%llu vs hook shadow "
                  "drops=%llu dups=%llu",
                  static_cast<unsigned long long>(stage_drops),
                  static_cast<unsigned long long>(stage_dups),
                  static_cast<unsigned long long>(impaired_drop_packets_),
                  static_cast<unsigned long long>(impaired_dup_packets_)));
  }
}

void InvariantAuditor::schedule_periodic(TimeDelta interval) {
  check_interval_ = interval;
  next_check_at_ = sim_.now() + interval;
}

std::string InvariantAuditor::report(size_t max_lines) const {
  if (total_violations_ == 0) return "invariant audit: clean";
  std::string out = fmt("invariant audit: %llu violation(s)\n",
                        static_cast<unsigned long long>(total_violations_));
  size_t shown = 0;
  for (const Violation& v : violations_) {
    if (shown++ >= max_lines) {
      out += fmt("  ... and %llu more\n",
                 static_cast<unsigned long long>(total_violations_ - shown + 1));
      break;
    }
    if (v.flow_id == kNoFlow) {
      out += fmt("  [%s] t=%.6fs %s\n", v.invariant.c_str(), v.at.sec(),
                 v.detail.c_str());
    } else {
      out += fmt("  [%s] flow=%u t=%.6fs %s\n", v.invariant.c_str(), v.flow_id,
                 v.at.sec(), v.detail.c_str());
    }
  }
  return out;
}

}  // namespace ccas::check
