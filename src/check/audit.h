// Runtime invariant auditor: machine-checks the conservation and state
// invariants the paper's findings lean on, while a simulation runs.
//
// The auditor attaches to one Simulator (one per simulation — sweeps run
// one auditor per cell, so there is no cross-thread state). Components
// report through cheap hooks behind Simulator::auditor(); a periodic
// checkpoint event then sweeps the registered components for the global
// invariants that are too expensive to verify per packet:
//
//   * packet & byte conservation across the dumbbell:
//       injected == delivered + dropped + in-flight (summed over holders)
//   * DropTailQueue occupancy accounting vs its stats and drop log
//   * TcpSender pipe vs the SACK scoreboard's outstanding segments, and
//     the scoreboard's sacked/lost counters vs a recount
//   * cwnd >= 1 (and below a sanity ceiling) after every ACK
//   * PRR: no transmission without send budget during fast recovery
//   * delivery-rate estimator: monotone delivered counter & timestamps,
//     and no accepted rate sample with interval < min_rtt
//   * event-queue time monotonicity
//
// Violations carry the flow id (kNoFlow when not flow-specific), the sim
// time, and a one-line state dump. The auditor only records; the caller
// (run_experiment) decides to throw. Enabled per spec (ExperimentSpec::
// audit) or globally via CCAS_CHECK=1; compiled out entirely with
// cmake -DCCAS_CHECK_HOOKS=OFF (see hooks.h).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cca/cca.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace ccas {
class ImpairedLink;
class QueueDisc;
class TcpSender;
}  // namespace ccas

namespace ccas::check {

// True when the CCAS_CHECK environment variable is set to a non-empty,
// non-"0" value (the runtime toggle; the benches and CI use it).
[[nodiscard]] bool check_enabled_from_env();

// Thrown by run_experiment when the final audit finds violations. A
// distinct type (rather than a bare std::runtime_error) lets the sweep
// supervisor classify audited-cell failures as their own deterministic
// failure class instead of lumping them with ordinary exceptions; what()
// carries the auditor's multi-line report.
class AuditViolationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Violation {
  static constexpr uint32_t kNoFlow = 0xffffffffu;
  std::string invariant;  // short id, e.g. "conservation.packets"
  uint32_t flow_id = kNoFlow;
  Time at = Time::zero();
  std::string detail;  // state dump
};

// A component that can hold packets between events (queue, link in
// transmission, netem delay line). Reports its current holdings.
struct PacketHolder {
  std::string name;
  std::function<void(int64_t& packets, int64_t& bytes)> held;
};

class InvariantAuditor {
 public:
  static constexpr uint32_t kNoFlow = Violation::kNoFlow;

  // Attaches to `sim` (sim.set_auditor(this)); detaches on destruction.
  explicit InvariantAuditor(Simulator& sim);
  ~InvariantAuditor();
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  // ---- registration (topology / runner) -----------------------------
  void register_holder(std::string name,
                       std::function<void(int64_t&, int64_t&)> held);
  void watch_sender(uint32_t flow_id, const TcpSender& sender);
  // Registers an impairment stage for per-checkpoint reconciliation: the
  // stage's own counters must balance (processed + duplicated == delivered
  // + dropped + held) and must match the hook-side shadow counts.
  void watch_impairment(const ImpairedLink& link);

  // ---- hot-path hooks (called through Simulator::auditor()) ---------
  // Simulator::dispatch, before now() advances to `event_time`.
  void on_event_dispatched(Time now, Time event_time);
  // QueueDisc arrival — either enqueued or refused (tail drop).
  void on_enqueue(const QueueDisc& q, const Packet& pkt, bool dropped);
  // QueueDisc dequeue handed to the link.
  void on_dequeue(const QueueDisc& q, const Packet& pkt);
  // An AQM dropped an already-admitted packet (CoDel/FQ-CoDel head drop):
  // leaves the queue like a dequeue, counts like a drop network-wide.
  void on_head_drop(const QueueDisc& q, const Packet& pkt);
  // An AQM set CE instead of dropping; the packet must be ECT.
  void on_mark(const QueueDisc& q, const Packet& pkt);
  // QueueDisc::reset_accounting (warm-up boundary).
  void on_queue_reset(const QueueDisc& q);
  // A packet entered the network at an endpoint (sender data / receiver ACK).
  void on_packet_injected(const Packet& pkt);
  // A packet reached its endpoint (receiver data / sender ACK).
  void on_packet_delivered(const Packet& pkt);
  // ImpairedLink dropped a packet (random loss / GE loss / link-down
  // fault): counts toward the network-wide dropped totals.
  void on_impairment_drop(const Packet& pkt);
  // ImpairedLink created a duplicate copy: the copy is a fresh injection
  // for conservation purposes (it will be delivered or dropped downstream).
  void on_impairment_duplicate(const Packet& pkt);
  // TcpSender, end of ACK processing (after the CCA saw the event).
  void on_ack_processed(uint32_t flow_id, const AckEvent& ev, uint64_t cwnd,
                        Time est_delivered_time, uint64_t est_delivered);
  // TcpSender::transmit_segment. `prr_active` = in fast recovery with a
  // PRR-clocked (non-cong_control) CCA; `prr_exempt` = the one immediate
  // fast retransmit RFC 5681 allows outside the budget.
  void on_transmit(uint32_t flow_id, bool prr_active, uint64_t prr_budget,
                   bool prr_exempt);

  // ---- checkpoints --------------------------------------------------
  // Sweeps every registered component; cheap enough to run a few times
  // per simulated second. `run_checks` is also the final-audit entry.
  void run_checks(Time now);
  // Arms a recurring checkpoint every `interval` of simulated time. It is
  // driven from on_event_dispatched (at an event boundary, where the
  // conservation invariants hold) rather than by scheduling simulator
  // events: the auditor must stay purely observational, and an extra
  // event per checkpoint would perturb the sim_events count and golden
  // digests.
  void schedule_periodic(TimeDelta interval);

  // ---- sharded runs -------------------------------------------------
  // In a sharded run each event domain has its own auditor, and packets
  // legally cross domains (injected on one, delivered on another), so the
  // per-auditor conservation equation cannot close. The fabric marks every
  // domain auditor conservation-external and checks the global equation
  // itself at barriers, using the counter and held-totals accessors below.
  void set_conservation_external(bool external) {
    conservation_external_ = external;
  }
  [[nodiscard]] int64_t injected_packets() const { return injected_packets_; }
  [[nodiscard]] int64_t injected_bytes() const { return injected_bytes_; }
  [[nodiscard]] int64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] int64_t delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] int64_t dropped_packets() const { return dropped_packets_; }
  [[nodiscard]] int64_t dropped_bytes() const { return dropped_bytes_; }
  // Sums the current holdings of every registered queue and holder into
  // the two accumulators (adds; does not reset them).
  void held_totals(int64_t& packets, int64_t& bytes) const;
  // Records a violation found by an external checker (the fabric's global
  // conservation sweep) so it lands in this auditor's report.
  void record_external_violation(std::string invariant, Time at,
                                 std::string detail) {
    violation(std::move(invariant), kNoFlow, at, std::move(detail));
  }

  // ---- results ------------------------------------------------------
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] uint64_t total_violations() const { return total_violations_; }
  [[nodiscard]] uint64_t checks_run() const { return checks_run_; }
  // Multi-line human-readable report of the first `max_lines` violations.
  [[nodiscard]] std::string report(size_t max_lines = 10) const;

 private:
  struct QueueShadow {
    const QueueDisc* queue = nullptr;
    int64_t packets = 0;  // our own occupancy count
    int64_t bytes = 0;
    uint64_t enqueued_since_reset = 0;
    uint64_t dequeued_since_reset = 0;
    uint64_t dropped_since_reset = 0;
    uint64_t head_dropped_since_reset = 0;
    uint64_t marked_since_reset = 0;
    // Occupancy at the last reset_accounting (or at shadow adoption):
    // closes the conservation equation for packets carried across a reset.
    int64_t resident_at_reset = 0;
  };
  struct FlowShadow {
    const TcpSender* sender = nullptr;  // null until watch_sender
    uint64_t last_delivered = 0;
    int64_t last_delivered_time_ns = 0;
  };

  QueueShadow& shadow_of(const QueueDisc& q);
  [[nodiscard]] bool knows_queue(const QueueDisc& q) const;
  FlowShadow& flow_shadow(uint32_t flow_id);
  void check_queue(const QueueShadow& s, Time now);
  void check_sender(uint32_t flow_id, const TcpSender& sender, Time now);
  void check_impairments(Time now);
  void violation(std::string invariant, uint32_t flow_id, Time at,
                 std::string detail);

  Simulator& sim_;
  std::vector<QueueShadow> queues_;  // few queues: linear scan
  std::vector<PacketHolder> holders_;
  std::vector<FlowShadow> flows_;  // indexed by flow id

  // Conservation counters (network-wide, lifetime of the simulation).
  int64_t injected_packets_ = 0;
  int64_t injected_bytes_ = 0;
  int64_t delivered_packets_ = 0;
  int64_t delivered_bytes_ = 0;
  int64_t dropped_packets_ = 0;
  int64_t dropped_bytes_ = 0;

  // Impairment shadow counters (hook-side view of every watched stage,
  // reconciled against the stages' own ImpairmentStats at checkpoints).
  std::vector<const ImpairedLink*> impairments_;
  uint64_t impaired_drop_packets_ = 0;
  uint64_t impaired_dup_packets_ = 0;

  std::vector<Violation> violations_;
  bool conservation_external_ = false;
  uint64_t total_violations_ = 0;
  uint64_t checks_run_ = 0;
  TimeDelta check_interval_ = TimeDelta::zero();  // zero = no periodic checks
  Time next_check_at_ = Time::zero();
  static constexpr size_t kMaxStoredViolations = 64;
};

}  // namespace ccas::check
