// Compile-time switch for the runtime invariant-audit hook layer.
//
// This is the one header the simulation kernel pulls in from src/check/:
// it must stay dependency-free so that sim -> check is a leaf edge, not a
// cycle. The hooks themselves are calls through Simulator::auditor();
// when CCAS_NO_CHECK_HOOKS is defined (cmake -DCCAS_CHECK_HOOKS=OFF),
// auditor() constant-folds to nullptr and every hook call site is dead
// code — the audited build and the bare build differ by exactly one
// compile definition.
#pragma once

namespace ccas::check {

#ifdef CCAS_NO_CHECK_HOOKS
inline constexpr bool kAuditHooksCompiled = false;
#else
inline constexpr bool kAuditHooksCompiled = true;
#endif

class InvariantAuditor;

}  // namespace ccas::check
