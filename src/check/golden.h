// Golden-trace regression harness: canonical digests of full experiment
// outcomes for a fixed grid of Edge/Core cells.
//
// A golden digest is fnv1a64 over (version tag | canonical spec bytes |
// serialized result) — the same tagged wire encoding the sweep cache uses,
// so the digest covers every per-flow counter, the drop log, and the
// per-flow congestion-event log, byte for byte. Any behavioral drift in
// the simulator or the TCP stack changes at least one digest; an intended
// change becomes an explicit golden bump via `tools/ccas_check record`.
//
// The checked-in goldens file (tests/golden/goldens.txt) is text: one line
// per cell with the digest plus human-diffable summary fields, so a golden
// bump's review diff shows *what* moved, not just that something did.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/experiment.h"

namespace ccas::check {

// Bump when the digest inputs change meaning (spec encoding, result
// serialization, or the grid itself): old goldens are then incomparable.
inline constexpr const char* kGoldenVersionTag = "ccas-golden-v1";

struct GoldenCell {
  std::string name;
  ExperimentSpec spec;
};

// The fixed grid: small, fast cells covering both settings, the three main
// CCAs, mixed-CCA competition, the no-SACK path, and the GRO regime
// (>= ~600 Mbps, where coalescing actually activates). Independent of all
// REPRO_* environment overrides by construction.
[[nodiscard]] std::vector<GoldenCell> golden_grid();

struct GoldenRecord {
  std::string name;
  uint64_t digest = 0;
  // Summary fields — informational context for diffs; the digest alone
  // decides pass/fail.
  double aggregate_goodput_bps = 0.0;
  double utilization = 0.0;
  uint64_t dropped_packets = 0;
  uint64_t congestion_events = 0;
  uint64_t sim_events = 0;
  uint64_t flows = 0;
};

[[nodiscard]] uint64_t golden_digest(const ExperimentSpec& spec,
                                     const ExperimentResult& result);
[[nodiscard]] GoldenRecord make_golden_record(const std::string& name,
                                              const ExperimentSpec& spec,
                                              const ExperimentResult& result);

// Text round-trip. parse/load throw std::runtime_error on malformed input.
[[nodiscard]] std::string format_goldens(const std::vector<GoldenRecord>& records);
[[nodiscard]] std::vector<GoldenRecord> parse_goldens(const std::string& text);
[[nodiscard]] std::vector<GoldenRecord> load_goldens(const std::string& path);
void save_goldens(const std::string& path, const std::vector<GoldenRecord>& records);

struct GoldenDiff {
  bool ok = false;
  std::string report;  // one line per cell: match / MISMATCH / missing
};

// Compares actual records against the expected (checked-in) set by name.
[[nodiscard]] GoldenDiff compare_goldens(const std::vector<GoldenRecord>& expected,
                                         const std::vector<GoldenRecord>& actual);

}  // namespace ccas::check
