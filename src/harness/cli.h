// Command-line experiment description, used by tools/ccas_run: parses
// "--key=value" flags into an ExperimentSpec so any of the paper's
// configurations (and new ones) can be run without writing C++.
//
//   ccas_run --setting=core --groups=bbr:1:20,newreno:1000:20
//            --warmup=10 --measure=30 --seed=7 --trace=0.5 --csv=out
//
// Flags:
//   --setting=edge|core        scenario preset            (default core)
//   --rate=<mbps>              override bottleneck rate
//   --buffer=<bytes>           override buffer size
//   --groups=cca:count:rtt_ms[,...]   flow groups (required unless an
//                              open-loop --workload is given)
//   --workload=poisson:<per_sec>|fixed:<per_sec>   open-loop arrivals
//   --workload-class=<name>:<weight>:<cca>:<rtt_ms>:<size>:<app>
//                              repeatable; size = pareto/<alpha>/<min>/<max>,
//                              lognormal/<mu>/<sigma>/<min>/<max>,
//                              fixed/<segments>, cdf/<path>; app = bulk,
//                              rr/<burst>/<think_ms>, web/<burst>/<gap_ms>,
//                              video/<chunk>/<interval_ms>
//   --workload-max=<n>         admission cap on concurrent workload flows
//   --stagger/--warmup/--measure=<sec>
//   --seed=<n>
//   --jitter=<microsec>        forward-path jitter
//   --loss=<p>                 i.i.d. exogenous loss probability
//   --ge-loss=<p_gb>:<p_bg>:<loss_bad>[:<loss_good>]  GE bursty loss
//   --dup=<p>                  duplication probability
//   --reorder=<p>:<max_ms>     delay-swap reordering
//   --link-jitter=<microsec>[:uniform|normal]  impairment-stage jitter
//   --flap=<down_s>:<up_s>[,...]       link down/up fault windows
//   --rate-change=<sec>:<mbps>[,...]   scheduled rate faults
//   --buffer-change=<sec>:<bytes>[,...] scheduled buffer faults
//   --qdisc=drop-tail|codel|fq-codel|pie|red   bottleneck scheduler
//   --ecn                      CE-mark instead of drop (AQM qdiscs only)
//   --codel=<target_ms>:<interval_ms>   CoDel / FQ-CoDel control law
//   --fq=<flows>:<quantum_bytes>        FQ-CoDel buckets and DRR quantum
//   --pie=<target_ms>:<tupdate_ms>      PIE latency target and update period
//   --red=<min_bytes>:<max_bytes>[:<max_p>]   RED thresholds
//   --no-sack / --no-delack / --no-gro
//   --rto-slack=<microsec>     coalesce RTO re-arms within this slack
//   --perf                     print the kernel profiler summary per cell
//   --trace=<sec>              time-series sample interval (0 = off)
//   --csv=<prefix>             write trace CSVs with this prefix
//   --seeds=<n,n,...>          run one cell per seed (parallel sweep)
//   --jobs=<n>                 worker threads (default: hardware concurrency)
//   --cache-dir=<path>         enable the on-disk result cache
//   --no-cache                 bypass the cache even if a dir is set
//
// Supervision (see src/sweep/supervisor.h and tools/EXIT_CODES.md):
//   --cell-timeout=<sec>       wall-clock watchdog per cell attempt
//   --cell-events=<n>          simulated-event ceiling per cell attempt
//   --cell-rss=<mb>            estimated-peak-RSS ceiling per cell attempt
//   --retries=<n>              retries for transient failures (default 2)
//   --max-failures=<n>         abort the sweep after n terminal failures
//   --resume=<dir>             resumable manifest dir; journaled-ok cells skip
//   --quarantine=<dir>         where failed cells write .repro replay files
//   --fail-fast                abort on the first failure (legacy contract)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/sweep/executor.h"

namespace ccas {

struct CliOptions {
  ExperimentSpec spec;
  std::string csv_prefix;        // empty = no CSV
  std::vector<uint64_t> seeds;   // extra seeds beyond spec.seed (--seeds)
  sweep::SweepOptions sweep;     // --jobs / --cache-dir / --no-cache
  // --perf: print the kernel profiler summary (events/sec, scheduler and
  // timer counters) after each cell. Output-only — not part of the spec.
  bool perf = false;
};

// Parses argv-style arguments (excluding argv[0]). Throws
// std::invalid_argument with a human-readable message on bad input.
[[nodiscard]] CliOptions parse_cli(const std::vector<std::string>& args);

// The --help text.
[[nodiscard]] std::string cli_usage();

// ---- ccas_fleet ----------------------------------------------------------
//
// Fleet-specific flags (DESIGN.md §14); everything not listed here is
// handed to parse_cli and describes the grid, exactly as for ccas_run:
//
//   --fleet-dir=<dir>      the shared job store (required)
//   --lease-ttl=<sec>      per-cell lease TTL (default 30)
//   --heartbeat=<sec>      lease renewal interval (default TTL/3)
//   --fleet-wait=<sec>     give up (exit 5) after this long without any
//                          worker journaling progress; 0 = wait forever
//   --worker-id=<id>       stable worker name (default w<pid>)
//   --report-only          render the final report from the store without
//                          joining as a worker (takes no grid flags)
struct FleetCliOptions {
  std::string fleet_dir;
  uint64_t lease_ttl_ms = 30'000;
  uint64_t heartbeat_ms = 0;  // 0 → lease_ttl_ms / 3
  uint64_t wait_ms = 0;       // 0 → wait forever
  std::string worker_id;      // "" → w<pid>
  bool report_only = false;
};

struct FleetCli {
  FleetCliOptions fleet;
  // The grid and supervision flags (unset in --report-only mode, which
  // reads the grid from the store's frozen job.spec).
  CliOptions run;
};

// Splits fleet flags from grid flags and validates both. Throws
// std::invalid_argument on: a missing/empty --fleet-dir, a non-positive
// --lease-ttl or --heartbeat (or one that rounds to zero ms), a heartbeat
// not shorter than the TTL, a malformed --worker-id, grid flags combined
// with --report-only, or grid flags that cannot describe a fleet job
// (--trace, --csv, --resume, --quarantine, --fail-fast).
[[nodiscard]] FleetCli parse_fleet_cli(const std::vector<std::string>& args);

// The ccas_fleet --help text.
[[nodiscard]] std::string fleet_cli_usage();

// Inverse of parse_cli for a single cell: `args` reproduces `spec` exactly
// — spec_cache_key-identical after a parse_cli round trip — despite the
// truncating double→int64 casts in TimeDelta::seconds_f / DataRate::bps_f
// (values are nudged by ULPs until the re-parse lands on the same
// nanosecond / bit). Spec fields no flag can express (num_pairs, GRO
// timings, convergence knobs, ...) are listed in `notes` instead of being
// silently dropped. The sweep supervisor's quarantine .repro files are
// built from this.
struct SpecCliRendering {
  std::vector<std::string> args;
  std::vector<std::string> notes;
};

[[nodiscard]] SpecCliRendering spec_to_cli(const ExperimentSpec& spec);

// "ccas_run <args...>" on one line, for humans and quarantine files.
[[nodiscard]] std::string spec_to_cli_command(const ExperimentSpec& spec);

}  // namespace ccas
