// Command-line experiment description, used by tools/ccas_run: parses
// "--key=value" flags into an ExperimentSpec so any of the paper's
// configurations (and new ones) can be run without writing C++.
//
//   ccas_run --setting=core --groups=bbr:1:20,newreno:1000:20
//            --warmup=10 --measure=30 --seed=7 --trace=0.5 --csv=out
//
// Flags:
//   --setting=edge|core        scenario preset            (default core)
//   --rate=<mbps>              override bottleneck rate
//   --buffer=<bytes>           override buffer size
//   --groups=cca:count:rtt_ms[,...]   flow groups         (required)
//   --stagger/--warmup/--measure=<sec>
//   --seed=<n>
//   --jitter=<microsec>        forward-path jitter
//   --no-sack / --no-delack / --no-gro
//   --trace=<sec>              time-series sample interval (0 = off)
//   --csv=<prefix>             write trace CSVs with this prefix
#pragma once

#include <string>
#include <vector>

#include "src/harness/experiment.h"

namespace ccas {

struct CliOptions {
  ExperimentSpec spec;
  std::string csv_prefix;  // empty = no CSV
};

// Parses argv-style arguments (excluding argv[0]). Throws
// std::invalid_argument with a human-readable message on bad input.
[[nodiscard]] CliOptions parse_cli(const std::vector<std::string>& args);

// The --help text.
[[nodiscard]] std::string cli_usage();

}  // namespace ccas
