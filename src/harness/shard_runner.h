// Sharded experiment execution: the same end-to-end harness as runner.cc,
// but with every flow's endpoints placed on one of spec.shards edge
// domains and the run driven by the conservative parallel fabric
// (src/sim/parallel/fabric.h). Byte-identical to the serial path for any
// shard count — the golden differential and property tests pin that.
#pragma once

#include "src/harness/experiment.h"
#include "src/sim/budget.h"

namespace ccas {

// Called by run_experiment when spec.shards > 1 (after validation).
// Identical contract to run_experiment(spec, budget); the budget's event
// and RSS ceilings are enforced at window barriers on summed counts.
[[nodiscard]] ExperimentResult run_experiment_sharded(const ExperimentSpec& spec,
                                                      const SimBudget* budget);

}  // namespace ccas
