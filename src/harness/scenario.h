// The paper's two settings (Section 3.1):
//
//   EdgeScale: 100 Mbps bottleneck, 2-50 flows, 3 MB buffer.
//   CoreScale: 10 Gbps bottleneck, 1000-5000 flows, 375 MB buffer.
//
// Both buffers are ~1 BDP at a 200 ms max RTT, drop-tail. Ten
// sender/receiver pairs; flows distributed round-robin.
//
// Time-compression relative to the testbed (DESIGN.md): flows stagger
// their starts over `stagger`, the first `warmup` is discarded, and the
// measurement window is `measure` — with the same 1%-delta convergence
// detector the paper uses. REPRO_SCALE (env) scales bandwidth and flow
// count together, preserving per-flow BDP, for quick smoke runs;
// REPRO_WARMUP_SEC / REPRO_MEASURE_SEC override durations.
#pragma once

#include <string>

#include "src/net/topology.h"

namespace ccas {

enum class Setting { kEdgeScale, kCoreScale };

struct Scenario {
  Setting setting = Setting::kCoreScale;
  DumbbellConfig net;
  TimeDelta stagger = TimeDelta::seconds(2);
  TimeDelta warmup = TimeDelta::seconds(5);
  TimeDelta measure = TimeDelta::seconds(15);

  [[nodiscard]] static Scenario edge_scale();
  [[nodiscard]] static Scenario core_scale();
  [[nodiscard]] static Scenario for_setting(Setting setting);

  // Applies the REPRO_SCALE / REPRO_WARMUP_SEC / REPRO_MEASURE_SEC /
  // REPRO_STAGGER_SEC environment overrides. Returns the scale factor
  // applied (multiply flow counts by it too).
  double apply_env_overrides();

  [[nodiscard]] std::string name() const {
    return setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale";
  }
};

// Scale a flow count by the REPRO_SCALE factor returned from
// apply_env_overrides (at least 1 flow).
[[nodiscard]] int scaled_flow_count(int count, double scale);

}  // namespace ccas
