#include "src/harness/runner.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>

#include "src/cca/cca.h"
#include "src/check/audit.h"
#include "src/harness/flow_table.h"
#include "src/harness/shard_runner.h"
#include "src/stats/fairness.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"
#include "src/stats/convergence.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/workload/engine.h"

namespace ccas {

namespace {

// Per-flow state lives in one FlowTable slab per flow (rng, receiver,
// sender, CCA packed contiguously — DESIGN.md §12); this struct only
// aggregates the pointers. The flow's Rng must outlive its sender — CCAs
// (e.g. BBR's randomized ProbeBW phase) keep a reference to it — which the
// table's reverse-construction-order teardown guarantees.
struct Flow {
  Rng* rng = nullptr;
  TcpSender* sender = nullptr;
  TcpReceiver* receiver = nullptr;
  int group = 0;
};

FlowCounters snapshot(Time now, const Flow& flow, const QueueDisc& queue,
                      uint32_t flow_id) {
  FlowCounters c;
  c.at = now;
  const TcpSenderStats& s = flow.sender->stats();
  c.segments_sent = s.segments_sent;
  c.retransmits = s.retransmits;
  c.delivered = s.delivered;
  c.congestion_events = s.congestion_events;
  c.rto_events = s.rto_events;
  c.ecn_reductions = s.ecn_reductions;
  c.queue_drops = flow_id < queue.per_flow_drops().size()
                      ? queue.per_flow_drops()[flow_id]
                      : 0;
  c.queue_marks = flow_id < queue.per_flow_marks().size()
                      ? queue.per_flow_marks()[flow_id]
                      : 0;
  c.rcv_in_order = flow.receiver->rcv_nxt();
  c.rtt_sample_sum_ns = s.rtt_sample_sum_ns;
  c.rtt_sample_count = s.rtt_sample_count;
  return c;
}

void validate(const ExperimentSpec& spec) {
  if (spec.groups.empty() && !spec.workload.enabled()) {
    throw std::invalid_argument("experiment has no flow groups");
  }
  for (const auto& g : spec.groups) {
    if (g.count <= 0) throw std::invalid_argument("flow group with count <= 0");
    if (g.rtt <= TimeDelta::zero()) throw std::invalid_argument("non-positive RTT");
    Rng probe(0);
    (void)make_cca(g.cca, probe);  // throws for unknown names
  }
  if (spec.scenario.measure <= TimeDelta::zero()) {
    throw std::invalid_argument("non-positive measurement window");
  }
  if (spec.shards < 1) {
    throw std::invalid_argument("shards must be >= 1");
  }
  // Only fixed groups shard; a workload-only spec runs serially at any
  // shard count (dynamic flows are core-resident), so it has no minimum.
  if (spec.shards > 1 && spec.total_flows() > 0 &&
      spec.shards > spec.total_flows()) {
    throw std::invalid_argument(
        "shards exceed flow count: every domain needs at least one flow");
  }
  spec.scenario.net.impairments.validate();
  spec.scenario.net.qdisc.validate();
  spec.workload.validate();
}

// Grace bound for the workload reaper: covers every class and every fixed
// group (background ACKs share the same return path).
TimeDelta workload_grace(const ExperimentSpec& spec, const DumbbellConfig& net) {
  TimeDelta max_rtt = TimeDelta::zero();
  for (const FlowGroup& g : spec.groups) max_rtt = std::max(max_rtt, g.rtt);
  for (const WorkloadClass& c : spec.workload.classes) {
    max_rtt = std::max(max_rtt, c.rtt);
  }
  return workload_reap_grace(net, max_rtt);
}

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  return run_experiment(spec, nullptr);
}

ExperimentResult run_experiment(const ExperimentSpec& spec, const SimBudget* budget) {
  validate(spec);
  // Workload-only specs run serially at any shard count: dynamic flows are
  // core-resident (see engine.h), so the sharded run would be the serial
  // run with idle domains (the churn precedent).
  if (spec.shards > 1 && spec.total_flows() > 0) {
    return run_experiment_sharded(spec, budget);
  }

  Simulator sim;
  Rng rng(spec.seed);

  // The auditor (when enabled) must attach before the topology is built so
  // components register their packet holders; it is declared first so it
  // outlives everything that may call hooks during teardown.
  std::unique_ptr<check::InvariantAuditor> auditor;
  if (check::kAuditHooksCompiled &&
      (spec.audit || check::check_enabled_from_env())) {
    auditor = std::make_unique<check::InvariantAuditor>(sim);
  }

  // Impairment seed derivation: a pure function of the experiment seed,
  // independent of the master Rng's stream (whose consumption order the
  // pre-impairment goldens depend on), so sweep cells stay byte-identical
  // at any --jobs level.
  DumbbellConfig net = spec.scenario.net;
  if ((net.impairments.enabled() || net.impairments.force_stage) &&
      net.impairments.seed == 0) {
    net.impairments.seed = derive_impairment_seed(spec.seed);
  }
  // Qdisc seed: same pattern under its own salt, so RED/PIE probability
  // draws are independent of both the master stream and the impairment
  // stream (drop-tail and the deterministic AQMs never draw from it).
  if (net.qdisc.enabled() && net.qdisc.seed == 0) {
    net.qdisc.seed = derive_qdisc_seed(spec.seed);
  }
  DumbbellTopology topo(sim, net);
  topo.reserve_flows(static_cast<uint32_t>(spec.total_flows()));
  QueueDisc& queue = topo.bottleneck_queue();
  queue.set_drop_log_enabled(spec.record_drop_log);

  // Build flows: ids are assigned in group order, so flows of one group
  // are spread round-robin over the sender/receiver pairs like all others.
  // Declared before `flows`: senders capture references to its elements
  // (stable — sized once, never reallocated) in their event callbacks.
  std::vector<std::vector<Time>> congestion_log;
  if (spec.record_congestion_log) {
    congestion_log.resize(static_cast<size_t>(spec.total_flows()));
  }
  FlowTable table;
  std::vector<Flow> flows;
  flows.reserve(static_cast<size_t>(spec.total_flows()));
  // ECN negotiation: senders mark ECT (and react to ECE) exactly when the
  // bottleneck qdisc marks. Derived from the qdisc block, so it is not a
  // separate spec knob.
  TcpSenderConfig tcp = spec.tcp;
  tcp.ecn_enabled = net.qdisc.enabled() && net.qdisc.ecn;
  uint32_t flow_id = 0;
  for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
    const FlowGroup& g = spec.groups[gi];
    for (int i = 0; i < g.count; ++i, ++flow_id) {
      const FlowTable::Slot slot =
          table.create(sim, flow_id, rng.fork(), g.cca,
                       &topo.data_entry(flow_id), &topo.ack_entry(), tcp,
                       spec.receiver);
      Flow f;
      f.rng = slot.rng;
      f.group = static_cast<int>(gi);
      f.receiver = slot.receiver;
      f.sender = slot.sender;
      topo.register_flow(flow_id, g.rtt, f.sender, f.receiver);
      if (spec.record_congestion_log) {
        std::vector<Time>& log = congestion_log[flow_id];
        f.sender->set_congestion_event_callback(
            [&log](Time at) { log.push_back(at); });
      }
      if (auditor) auditor->watch_sender(flow_id, *f.sender);
      flows.push_back(f);
    }
  }
  if (auditor) {
    // Checkpoint a few times per simulated second; fine-grained invariants
    // (queue occupancy, PRR budget, rate monotonicity) run per hook anyway.
    auditor->schedule_periodic(TimeDelta::millis(250));
  }

  // Time-series tracing (optional).
  ExperimentResult result;
  std::function<void()> trace_tick;
  if (spec.trace_interval > TimeDelta::zero()) {
    trace_tick = [&] {
      QueueTraceSample qs;
      qs.at = sim.now();
      qs.queued_bytes = queue.queued_bytes();
      qs.dropped_packets = queue.stats().dropped_packets;
      result.trace.add_queue_sample(qs);
      auto sample_flow = [&](uint32_t id) {
        if (id >= flows.size()) return;
        const Flow& f = flows[id];
        FlowTraceSample ts;
        ts.at = sim.now();
        ts.cwnd = f.sender->cca().cwnd();
        ts.inflight = f.sender->inflight();
        ts.delivered = f.sender->stats().delivered;
        ts.congestion_events = f.sender->stats().congestion_events;
        ts.rto_events = f.sender->stats().rto_events;
        const DataRate pr = f.sender->cca().pacing_rate();
        ts.pacing_bps = pr.is_infinite() ? 0.0
                                         : static_cast<double>(pr.bits_per_sec());
        ts.in_recovery = f.sender->in_recovery();
        result.trace.add_flow_sample(id, ts);
      };
      if (spec.trace_flows.empty()) {
        for (uint32_t id = 0; id < flows.size(); ++id) sample_flow(id);
      } else {
        for (const uint32_t id : spec.trace_flows) sample_flow(id);
      }
      sim.schedule_fn_in(spec.trace_interval, trace_tick);
    };
    sim.schedule_fn_in(spec.trace_interval, trace_tick);
  }

  // Cooperative budget: installed only when the caller set any limit, so
  // unbudgeted runs keep the exact historical dispatch path. The local
  // copy augments the RSS estimate with the harness's own unbounded
  // buffers (drop log, congestion log) plus a per-flow state constant;
  // it must outlive every run_until below, hence function scope.
  SimBudget budget_local;
  if (budget != nullptr && budget->any()) {
    budget_local = *budget;
    auto caller_extra = budget->extra_rss_bytes;
    budget_local.extra_rss_bytes = [&flows, &queue, &congestion_log,
                                    caller_extra]() {
      // ~4 KB per flow: sender + receiver + scoreboard runs + timers.
      int64_t est = static_cast<int64_t>(flows.size()) * 4096;
      est += static_cast<int64_t>(queue.drop_log().size()) *
             static_cast<int64_t>(sizeof(DropRecord));
      for (const std::vector<Time>& log : congestion_log) {
        est += static_cast<int64_t>(log.size()) * static_cast<int64_t>(sizeof(Time));
      }
      if (caller_extra) est += caller_extra();
      return est;
    };
    sim.set_budget(&budget_local);
  }

  // Staggered starts over [0, stagger), as in the testbed (0-2 minutes).
  for (auto& f : flows) {
    const double offset =
        rng.next_double() * std::max(spec.scenario.stagger.sec(), 0.0);
    TcpSender* sender = f.sender;
    sim.schedule_fn_at(Time::seconds_f(offset), [sender] { sender->start(); });
  }

  // Open-loop workload: arrivals from t = 0 until the end of the run,
  // driven from a dedicated seed stream (never the master rng, whose draw
  // order the pre-workload goldens pin). Dynamic flow ids continue after
  // the fixed groups. Declared after `table` (teardown order) and started
  // after the stagger draws, mirrored exactly in the sharded runner.
  std::unique_ptr<WorkloadEngine> workload;
  const Time run_end = Time::zero() + spec.scenario.stagger +
                       spec.scenario.warmup + spec.scenario.measure;
  if (spec.workload.enabled()) {
    workload = std::make_unique<WorkloadEngine>(
        sim, topo, table, spec.workload, tcp, spec.receiver,
        net.bottleneck_rate, static_cast<uint32_t>(spec.total_flows()),
        run_end, workload_grace(spec, net), derive_workload_seed(spec.seed));
    workload->begin();
  }

  // Warm-up: run, then reset measurement accounting.
  const Time warmup_end =
      Time::zero() + spec.scenario.stagger + spec.scenario.warmup;
  sim.run_until(warmup_end);
  queue.reset_accounting();
  // Steady-state allocation accounting starts here: warm-up covers all
  // one-time growth (scoreboard spills, queue high-water marks), so the
  // measurement-window delta is the per-event steady-state rate.
  const uint64_t warm_events = sim.events_processed();
  const uint64_t warm_allocs = sim.profile().heap_allocs;
  std::vector<FlowCounters> begin;
  begin.reserve(flows.size());
  for (uint32_t i = 0; i < flows.size(); ++i) {
    begin.push_back(snapshot(sim.now(), flows[i], queue, i));
  }

  // Measurement window, optionally with the paper's 1%-delta stop rule.
  bool converged_early = false;
  const Time measure_end = warmup_end + spec.scenario.measure;
  if (spec.convergence_window > TimeDelta::zero()) {
    ConvergenceDetector detector(spec.convergence_window, spec.convergence_tolerance);
    while (sim.now() < measure_end) {
      const Time next = std::min(sim.now() + spec.convergence_poll, measure_end);
      sim.run_until(next);
      // Metric: cumulative average aggregate goodput since warm-up.
      uint64_t in_order = 0;
      for (uint32_t i = 0; i < flows.size(); ++i) {
        in_order += flows[i].receiver->rcv_nxt() - begin[i].rcv_in_order;
      }
      const double elapsed = (sim.now() - warmup_end).sec();
      if (elapsed > 0.0) {
        detector.add_sample(sim.now(),
                            static_cast<double>(in_order) / elapsed);
      }
      if (detector.converged()) {
        converged_early = true;
        break;
      }
    }
  } else {
    sim.run_until(measure_end);
  }

  // Final audit checkpoint: the whole run must end conservation-clean.
  if (auditor) {
    auditor->run_checks(sim.now());
    if (auditor->total_violations() > 0) {
      throw check::AuditViolationError(auditor->report());
    }
  }

  // Final snapshots and result assembly.
  result.converged_early = converged_early;
  result.measured_for = sim.now() - warmup_end;
  result.sim_events = sim.events_processed();
  result.sim_profile = sim.profile();
  result.measure_sim_events = result.sim_events - warm_events;
  result.measure_heap_allocs = result.sim_profile.heap_allocs - warm_allocs;
  result.queue = queue.stats();
  result.drop_times.reserve(queue.drop_log().size());
  for (const DropRecord& d : queue.drop_log()) result.drop_times.push_back(d.at);

  result.flows.reserve(flows.size());
  result.flow_group.reserve(flows.size());
  double total_goodput = 0.0;
  for (uint32_t i = 0; i < flows.size(); ++i) {
    const FlowCounters end = snapshot(sim.now(), flows[i], queue, i);
    FlowMeasurement m = measure_flow(i, begin[i], end, kMssBytes);
    total_goodput += m.goodput_bps;
    result.flows.push_back(m);
    result.flow_group.push_back(flows[i].group);
  }
  result.aggregate_goodput_bps = total_goodput;
  result.congestion_log = std::move(congestion_log);
  if (workload) {
    workload->finalize(result.workload_classes);
    const double elapsed = sim.now().sec();
    if (elapsed > 0.0) {
      result.workload_goodput_bps =
          static_cast<double>(workload->goodput_bytes()) * 8.0 / elapsed;
    }
  }
  // Normalize by the payload efficiency (1448 MSS / 1500 wire bytes): a
  // saturated link carries payload at MSS/wire of its line rate.
  const double payload_capacity =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec()) *
      static_cast<double>(kMssBytes) / static_cast<double>(kDataPacketBytes);
  result.utilization = total_goodput / payload_capacity;

  result.groups.reserve(spec.groups.size());
  for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
    GroupResult gr;
    gr.cca = spec.groups[gi].cca;
    gr.count = spec.groups[gi].count;
    gr.rtt = spec.groups[gi].rtt;
    const auto goodputs = [&] {
      std::vector<double> v;
      for (size_t i = 0; i < result.flows.size(); ++i) {
        if (result.flow_group[i] == static_cast<int>(gi)) {
          v.push_back(result.flows[i].goodput_bps);
        }
      }
      return v;
    }();
    for (const double g : goodputs) gr.aggregate_goodput_bps += g;
    gr.throughput_share =
        total_goodput > 0.0 ? gr.aggregate_goodput_bps / total_goodput : 0.0;
    gr.jfi = goodputs.empty() ? 1.0 : jain_fairness_index(goodputs);
    result.groups.push_back(gr);
  }

  log_info("experiment done: %zu flows, %.2f Gbps aggregate, util %.3f, %llu events",
           flows.size(), total_goodput / 1e9, result.utilization,
           static_cast<unsigned long long>(result.sim_events));
  return result;
}

}  // namespace ccas
