// Arena-backed per-flow object table (DESIGN.md §12).
//
// Historically every flow's sender, receiver, CCA and per-flow Rng were
// separate make_unique heap islands; at CoreScale (20k flows) each
// dispatched event then pointer-chased across a working set far larger
// than cache, and per-event cost grew with flow count. The FlowTable packs
// all four objects into one contiguous, 64-byte-aligned slab per flow,
// allocated from a MonotonicArena, so the state an event touches is one
// local neighbourhood:
//
//   [Rng][TcpReceiver][TcpSender][CCA]      (one slab, alignment-padded)
//
// Construction order inside a slot is exactly the historical order
// (rng -> receiver -> cca -> sender), so per-flow RNG streams — and
// therefore every golden digest — are byte-identical to the make_unique
// path. The CCA is placement-constructed via its registered CcaPlacement;
// controllers registered factory-only (external/test CCAs) fall back to a
// heap-owned controller held by the sender, with everything else still
// slab-resident.
//
// recycle() destroys a slot's objects and parks the slab on a size-keyed
// free list; the next create() of a same-sized slot (the common case in
// churn: same CCA type) reuses it without touching the heap or growing the
// arena. The caller owns the safety argument: no pending event — packet in
// flight or lazy timer entry — may still reference the slot's endpoints
// when recycle() runs (see churn.cc's grace-period reaper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"
#include "src/util/arena.h"
#include "src/util/rng.h"

namespace ccas {

class FlowTable {
 public:
  // Handle to one live flow slot.
  struct Slot {
    Rng* rng = nullptr;
    TcpReceiver* receiver = nullptr;
    TcpSender* sender = nullptr;
    uint32_t index = 0;  // FlowTable bookkeeping handle, not the flow id
  };

  FlowTable() = default;
  ~FlowTable();
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  // Builds one flow's objects in a single contiguous slab. `flow_rng` is
  // moved into the slab (callers pass master_rng.fork() exactly where the
  // make_unique path did, keeping stream assignment identical).
  Slot create(Simulator& sim, uint32_t flow_id, Rng&& flow_rng,
              const std::string& cca_name, PacketSink* data_path,
              PacketSink* ack_path, const TcpSenderConfig& sender_config,
              const TcpReceiverConfig& receiver_config);

  // Destroys the slot's objects and parks its slab for reuse. The caller
  // must guarantee no queued event still references the endpoints.
  void recycle(const Slot& slot);

  [[nodiscard]] size_t live() const { return live_; }
  [[nodiscard]] uint64_t slabs_allocated() const { return slabs_allocated_; }
  [[nodiscard]] uint64_t slabs_recycled() const { return slabs_recycled_; }
  [[nodiscard]] uint64_t slab_reuses() const { return slab_reuses_; }
  [[nodiscard]] size_t arena_bytes() const { return arena_.bytes_used(); }

  // Slabs are aligned (and size-rounded) to the cache-line size, so two
  // flows never share a line.
  static constexpr size_t kSlabAlign = 64;

 private:
  struct Entry {
    void* slab = nullptr;
    uint32_t slab_bytes = 0;
    bool live = false;
    Rng* rng = nullptr;
    TcpReceiver* receiver = nullptr;
    TcpSender* sender = nullptr;
    CongestionController* cca = nullptr;  // slab-resident; null if heap-owned
  };

  void destroy_objects(Entry& e);

  MonotonicArena arena_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_entries_;
  // Recycled slabs keyed by slab size (distinct CCA types of equal padded
  // footprint share a bucket; the memory is raw either way).
  std::unordered_map<uint32_t, std::vector<void*>> free_slabs_;
  size_t live_ = 0;
  uint64_t slabs_allocated_ = 0;
  uint64_t slabs_recycled_ = 0;
  uint64_t slab_reuses_ = 0;
};

}  // namespace ccas
