// Builds and runs one experiment end-to-end: topology, per-flow TCP
// endpoints with the requested CCAs, staggered starts, warm-up exclusion,
// optional convergence-based early stop, and result extraction.
#pragma once

#include "src/harness/experiment.h"
#include "src/sim/budget.h"

namespace ccas {

// Runs the experiment to completion and returns the steady-state result.
// Deterministic given spec.seed. Throws std::invalid_argument on malformed
// specs (no groups, unknown CCA names, non-positive durations) and
// check::AuditViolationError when auditing is enabled and the final audit
// found violations.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

// Same, under a cooperative resource budget (sim/budget.h): the kernel
// throws BudgetExceeded when the cell overruns its event / wall-clock /
// estimated-RSS ceiling. The harness augments budget->extra_rss_bytes
// with its own footprint (drop log, congestion log, per-flow state); the
// caller's budget object is not mutated. A run that stays within budget
// is byte-identical to run_experiment(spec) — the budget only observes.
// nullptr (or a budget with no limits set) behaves exactly like the
// one-argument overload.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec,
                                              const SimBudget* budget);

}  // namespace ccas
