// Builds and runs one experiment end-to-end: topology, per-flow TCP
// endpoints with the requested CCAs, staggered starts, warm-up exclusion,
// optional convergence-based early stop, and result extraction.
#pragma once

#include "src/harness/experiment.h"

namespace ccas {

// Runs the experiment to completion and returns the steady-state result.
// Deterministic given spec.seed. Throws std::invalid_argument on malformed
// specs (no groups, unknown CCA names, non-positive durations).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

}  // namespace ccas
