#include "src/harness/flow_table.h"

#include <new>
#include <utility>

#include "src/cca/cca.h"

namespace ccas {

namespace {

constexpr size_t align_up(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

}  // namespace

FlowTable::~FlowTable() {
  // Reverse index order mirrors the reverse-construction teardown the
  // arena's dtor list used to perform for the make_unique-era objects.
  for (size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].live) destroy_objects(entries_[i]);
  }
}

FlowTable::Slot FlowTable::create(Simulator& sim, uint32_t flow_id,
                                  Rng&& flow_rng, const std::string& cca_name,
                                  PacketSink* data_path, PacketSink* ack_path,
                                  const TcpSenderConfig& sender_config,
                                  const TcpReceiverConfig& receiver_config) {
  const CcaPlacement* pl = CcaRegistry::instance().placement(cca_name);

  // Slab layout: [Rng][TcpReceiver][TcpSender][CCA?], alignment-padded.
  const size_t off_rng = 0;
  const size_t off_recv =
      align_up(off_rng + sizeof(Rng), alignof(TcpReceiver));
  const size_t off_send =
      align_up(off_recv + sizeof(TcpReceiver), alignof(TcpSender));
  size_t end = off_send + sizeof(TcpSender);
  size_t off_cca = 0;
  if (pl != nullptr) {
    off_cca = align_up(end, pl->align);
    end = off_cca + pl->size;
  }
  const auto slab_bytes = static_cast<uint32_t>(align_up(end, kSlabAlign));

  // Reuse a parked slab of the same size class if one exists.
  void* slab = nullptr;
  if (auto it = free_slabs_.find(slab_bytes);
      it != free_slabs_.end() && !it->second.empty()) {
    slab = it->second.back();
    it->second.pop_back();
    ++slab_reuses_;
  } else {
    slab = arena_.allocate(slab_bytes, kSlabAlign);
    ++slabs_allocated_;
  }
  auto* base = static_cast<char*>(slab);

  // Historical construction order: rng -> receiver -> cca -> sender.
  auto* rng = new (base + off_rng) Rng(std::move(flow_rng));
  TcpReceiver* receiver = nullptr;
  TcpSender* sender = nullptr;
  CongestionController* cca = nullptr;
  try {
    receiver =
        new (base + off_recv) TcpReceiver(sim, flow_id, ack_path, receiver_config);
    if (pl != nullptr) {
      cca = pl->construct(base + off_cca, *rng);
      sender = new (base + off_send)
          TcpSender(sim, flow_id, cca, data_path, sender_config);
    } else {
      // No placement recipe: the controller comes from the heap factory and
      // the sender owns it, as before this table existed.
      sender = new (base + off_send)
          TcpSender(sim, flow_id, make_cca(cca_name, *rng), data_path,
                    sender_config);
    }
  } catch (...) {
    if (cca != nullptr) cca->~CongestionController();
    if (receiver != nullptr) receiver->~TcpReceiver();
    rng->~Rng();
    free_slabs_[slab_bytes].push_back(slab);
    throw;
  }

  uint32_t index;
  if (!free_entries_.empty()) {
    index = free_entries_.back();
    free_entries_.pop_back();
  } else {
    index = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[index];
  e.slab = slab;
  e.slab_bytes = slab_bytes;
  e.live = true;
  e.rng = rng;
  e.receiver = receiver;
  e.sender = sender;
  e.cca = cca;
  ++live_;

  return Slot{rng, receiver, sender, index};
}

void FlowTable::destroy_objects(Entry& e) {
  // Reverse of construction order; a sender-owned CCA dies inside the
  // sender's destructor, a slab-resident one right after it.
  e.sender->~TcpSender();
  if (e.cca != nullptr) e.cca->~CongestionController();
  e.receiver->~TcpReceiver();
  e.rng->~Rng();
  e.live = false;
}

void FlowTable::recycle(const Slot& slot) {
  Entry& e = entries_[slot.index];
  destroy_objects(e);
  free_slabs_[e.slab_bytes].push_back(e.slab);
  free_entries_.push_back(slot.index);
  --live_;
  ++slabs_recycled_;
}

}  // namespace ccas
