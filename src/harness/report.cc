#include "src/harness/report.h"

#include <cstdio>

namespace ccas {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table::Row& Table::Row::col(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::Row& Table::Row::col(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  cells_.emplace_back(buf);
  return *this;
}

Table::Row& Table::Row::col(int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::Row& Table::Row::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  cells_.emplace_back(buf);
  return *this;
}

void Table::Row::done() { table_.add_row(std::move(cells_)); }

std::string Table::to_string() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (const size_t w : widths) total += w + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_rate(double bps) {
  char buf[64];
  if (bps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gbps", bps / 1e9);
  } else if (bps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mbps", bps / 1e6);
  } else if (bps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f kbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f bps", bps);
  }
  return buf;
}

std::string summarize(const ExperimentResult& result) {
  Table t({"group", "cca", "flows", "rtt(ms)", "agg goodput", "share", "JFI"});
  for (size_t gi = 0; gi < result.groups.size(); ++gi) {
    const GroupResult& g = result.groups[gi];
    t.row()
        .col(static_cast<int64_t>(gi))
        .col(g.cca)
        .col(static_cast<int64_t>(g.count))
        .col(g.rtt.ms(), 0)
        .col(format_rate(g.aggregate_goodput_bps))
        .pct(g.throughput_share)
        .col(g.jfi, 3)
        .done();
  }
  std::string out = t.to_string();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "utilization %.1f%%, drops %llu (%.4f%% of enqueue attempts), "
                "measured %.1fs%s\n",
                result.utilization * 100.0,
                static_cast<unsigned long long>(result.queue.dropped_packets),
                100.0 * static_cast<double>(result.queue.dropped_packets) /
                    std::max<double>(1.0,
                                     static_cast<double>(result.queue.dropped_packets +
                                                         result.queue.enqueued_packets)),
                result.measured_for.sec(),
                result.converged_early ? " (converged early)" : "");
  out += buf;
  // AQM line only when a qdisc produced AQM events, so drop-tail output
  // is unchanged character for character.
  if (result.queue.head_dropped_packets > 0 || result.queue.marked_packets > 0 ||
      result.queue.sojourn_samples > 0) {
    const double mean_sojourn_ms =
        result.queue.sojourn_samples > 0
            ? static_cast<double>(result.queue.sojourn_ns_sum) /
                  static_cast<double>(result.queue.sojourn_samples) / 1e6
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "qdisc: head drops %llu, ECN marks %llu, sojourn mean %.3fms "
                  "max %.3fms\n",
                  static_cast<unsigned long long>(result.queue.head_dropped_packets),
                  static_cast<unsigned long long>(result.queue.marked_packets),
                  mean_sojourn_ms,
                  static_cast<double>(result.queue.max_sojourn_ns) / 1e6);
    out += buf;
  }
  // Workload FCT block only when the open-loop workload ran, so fixed-flow
  // output is unchanged character for character.
  if (!result.workload_classes.empty()) {
    Table w({"class", "cca", "arrived", "done", "p50(ms)", "p99(ms)", "p999(ms)",
             "slowdown"});
    for (const WorkloadClassResult& c : result.workload_classes) {
      const double mean_slowdown =
          c.completed > 0 ? c.mean_slowdown : 0.0;
      w.row()
          .col(c.name)
          .col(c.cca)
          .col(static_cast<int64_t>(c.arrivals))
          .col(static_cast<int64_t>(c.completed))
          .col(c.completed > 0 ? c.p50_fct_s * 1e3 : 0.0, 2)
          .col(c.completed > 0 ? c.p99_fct_s * 1e3 : 0.0, 2)
          .col(c.completed > 0 ? c.p999_fct_s * 1e3 : 0.0, 2)
          .col(mean_slowdown, 2)
          .done();
    }
    out += w.to_string();
    uint64_t rejected = 0;
    uint64_t abandoned = 0;
    for (const WorkloadClassResult& c : result.workload_classes) {
      rejected += c.rejected;
      abandoned += c.abandoned;
    }
    std::snprintf(buf, sizeof(buf),
                  "workload: goodput %s, rejected %llu, in flight at end %llu\n",
                  format_rate(result.workload_goodput_bps).c_str(),
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(abandoned));
    out += buf;
  }
  return out;
}

}  // namespace ccas
