#include "src/harness/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace ccas {

Scenario Scenario::edge_scale() {
  Scenario s;
  s.setting = Setting::kEdgeScale;
  s.net.bottleneck_rate = DataRate::mbps(100);
  // ~1 BDP at 200 ms: 100 Mbps * 200 ms / 8 = 2.5 MB; the paper uses 3 MB.
  s.net.buffer_bytes = 3LL * 1000 * 1000;
  s.net.num_pairs = 10;
  return s;
}

Scenario Scenario::core_scale() {
  Scenario s;
  s.setting = Setting::kCoreScale;
  s.net.bottleneck_rate = DataRate::gbps(10);
  // ~1 BDP at 200 ms: 10 Gbps * 200 ms / 8 = 250 MB; the paper uses 375 MB.
  s.net.buffer_bytes = 375LL * 1000 * 1000;
  s.net.num_pairs = 10;
  return s;
}

Scenario Scenario::for_setting(Setting setting) {
  return setting == Setting::kEdgeScale ? edge_scale() : core_scale();
}

namespace {
double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0.0) return fallback;
  return parsed;
}
}  // namespace

double Scenario::apply_env_overrides() {
  const double scale = env_double("REPRO_SCALE", 1.0);
  if (scale != 1.0) {
    net.bottleneck_rate = net.bottleneck_rate * scale;
    net.buffer_bytes = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(net.buffer_bytes) * scale),
        16 * kDataPacketBytes);
  }
  warmup = TimeDelta::seconds_f(env_double("REPRO_WARMUP_SEC", warmup.sec()));
  measure = TimeDelta::seconds_f(env_double("REPRO_MEASURE_SEC", measure.sec()));
  stagger = TimeDelta::seconds_f(env_double("REPRO_STAGGER_SEC", stagger.sec()));
  return scale;
}

int scaled_flow_count(int count, double scale) {
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

}  // namespace ccas
