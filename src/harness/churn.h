// Flow churn extension: Poisson arrivals of finite, heavy-tailed flows —
// the "arrivals and departures of new flows" dynamics the paper's
// Limitations section names as uncaptured by its fixed-flow methodology.
// Built on the same dumbbell/TCP substrate so the paper's experiments can
// be re-run under churn.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/experiment.h"

namespace ccas {

struct ChurnSpec {
  Scenario scenario;  // network + run length (scenario.measure) + warmup
  std::string cca = "newreno";
  TimeDelta rtt = TimeDelta::millis(20);

  // Poisson arrival process.
  double arrivals_per_sec = 50.0;

  // Flow sizes: bounded Pareto in segments (the classic heavy-tailed
  // Internet flow-size model).
  uint64_t min_size_segments = 10;
  uint64_t max_size_segments = 100'000;
  double pareto_alpha = 1.2;

  // Long-running background flows (infinite sources), e.g. the paper's
  // fixed flows, competing with the churn.
  std::vector<FlowGroup> background;

  TcpSenderConfig tcp;
  TcpReceiverConfig receiver;
  uint64_t seed = 1;
  // Safety cap on simultaneously active churn flows (arrivals beyond it
  // are dropped and counted).
  int max_concurrent = 20'000;

  // Event-domain count (src/sim/parallel/). Background flows shard over
  // the domains; dynamic churn flows always stay core-resident — they are
  // created from the master RNG in arrival order, which only the core's
  // event order reproduces. With no background flows a shards > 1 run is
  // therefore identical to the serial path and runs serially. Results are
  // byte-identical across shard counts.
  int shards = 1;
};

struct ChurnResult {
  uint64_t flows_started = 0;
  uint64_t flows_completed = 0;
  uint64_t arrivals_rejected = 0;  // hit max_concurrent

  // Per completed flow: size (segments) and flow completion time (s),
  // index-aligned.
  std::vector<uint64_t> completed_sizes;
  std::vector<double> fct_seconds;

  double utilization = 0.0;  // goodput over the whole run / payload capacity
  double background_goodput_bps = 0.0;
  QueueStats queue;

  // Memory-path observability (DESIGN.md §12): departed churn flows are
  // torn down by a grace-period reaper and their slabs parked for reuse;
  // a long steady-state churn run re-serves nearly every arrival from a
  // recycled slab instead of the heap.
  uint64_t slots_recycled = 0;  // flow slots reaped and parked
  uint64_t slab_reuses = 0;     // arrivals served from a parked slab

  [[nodiscard]] double mean_fct() const;
  [[nodiscard]] double median_fct() const;
  // Mean FCT restricted to flows with size <= limit (or > limit).
  [[nodiscard]] double mean_fct_sized(uint64_t min_size, uint64_t max_size) const;
};

// Runs the churn experiment for scenario.stagger + warmup + measure of
// simulated time (background flows stagger over `stagger`; churn arrivals
// begin at t = 0). Deterministic given spec.seed.
[[nodiscard]] ChurnResult run_churn_experiment(const ChurnSpec& spec);

}  // namespace ccas
