#include "src/harness/shard_runner.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cca/cca.h"
#include "src/check/audit.h"
#include "src/harness/flow_table.h"
#include "src/net/topology.h"
#include "src/sim/parallel/fabric.h"
#include "src/sim/parallel/shard_plan.h"
#include "src/sim/simulator.h"
#include "src/stats/convergence.h"
#include "src/stats/fairness.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/workload/engine.h"

namespace ccas {

namespace {

// Slab-resident per-flow state (the objects live in one FlowTable slab
// per flow; this struct only aggregates the pointers).
struct ShardedFlow {
  Rng* rng = nullptr;
  TcpSender* sender = nullptr;
  TcpReceiver* receiver = nullptr;
  int group = 0;
  int domain = 0;
};

FlowCounters snapshot(Time now, const ShardedFlow& flow, const QueueDisc& queue,
                      uint32_t flow_id) {
  FlowCounters c;
  c.at = now;
  const TcpSenderStats& s = flow.sender->stats();
  c.segments_sent = s.segments_sent;
  c.retransmits = s.retransmits;
  c.delivered = s.delivered;
  c.congestion_events = s.congestion_events;
  c.rto_events = s.rto_events;
  c.ecn_reductions = s.ecn_reductions;
  c.queue_drops = flow_id < queue.per_flow_drops().size()
                      ? queue.per_flow_drops()[flow_id]
                      : 0;
  c.queue_marks = flow_id < queue.per_flow_marks().size()
                      ? queue.per_flow_marks()[flow_id]
                      : 0;
  c.rcv_in_order = flow.receiver->rcv_nxt();
  c.rtt_sample_sum_ns = s.rtt_sample_sum_ns;
  c.rtt_sample_count = s.rtt_sample_count;
  return c;
}

// Conservative lookahead: the minimum one-way propagation delay of any
// sharded flow. register_flow splits base_rtt as floor/ceil halves, and
// forward jitter only adds, so the forward floor half is the minimum.
// Workload classes are deliberately absent: dynamic flows live on the
// core simulator and never cross the conservative window.
TimeDelta min_lookahead(const ExperimentSpec& spec) {
  TimeDelta lookahead = TimeDelta::infinite();
  for (const FlowGroup& g : spec.groups) {
    lookahead = std::min(lookahead, g.rtt / 2);
  }
  return lookahead;
}

// Same grace bound as the serial runner's workload_grace.
TimeDelta workload_grace(const ExperimentSpec& spec, const DumbbellConfig& net) {
  TimeDelta max_rtt = TimeDelta::zero();
  for (const FlowGroup& g : spec.groups) max_rtt = std::max(max_rtt, g.rtt);
  for (const WorkloadClass& c : spec.workload.classes) {
    max_rtt = std::max(max_rtt, c.rtt);
  }
  return workload_reap_grace(net, max_rtt);
}

}  // namespace

ExperimentResult run_experiment_sharded(const ExperimentSpec& spec,
                                        const SimBudget* budget) {
  const TimeDelta lookahead = min_lookahead(spec);
  if (lookahead < TimeDelta::nanos(2)) {
    throw std::invalid_argument(
        "--shards > 1 needs a minimum flow RTT of at least 4ns: the "
        "conservative window is half the smallest RTT");
  }

  Simulator sim;  // the core: switch, qdisc, link, impairments, netems
  Rng rng(spec.seed);

  ShardPlan plan;
  plan.shards = spec.shards;
  plan.sharded_flows = static_cast<uint32_t>(spec.total_flows());

  // Auditors attach before the topology/fabric build so components
  // register their packet holders. One auditor per simulator; each skips
  // the local conservation equation (packets legally cross domains) and
  // the global equation is checked here at the final audit.
  const bool audit_on = check::kAuditHooksCompiled &&
                        (spec.audit || check::check_enabled_from_env());
  std::unique_ptr<check::InvariantAuditor> core_auditor;
  if (audit_on) {
    core_auditor = std::make_unique<check::InvariantAuditor>(sim);
    core_auditor->set_conservation_external(true);
  }

  // Seed derivation, exactly as the serial path (pure functions of the
  // cell seed, independent of the master stream).
  DumbbellConfig net = spec.scenario.net;
  if ((net.impairments.enabled() || net.impairments.force_stage) &&
      net.impairments.seed == 0) {
    net.impairments.seed = derive_impairment_seed(spec.seed);
  }
  if (net.qdisc.enabled() && net.qdisc.seed == 0) {
    net.qdisc.seed = derive_qdisc_seed(spec.seed);
  }
  DumbbellTopology topo(sim, net);
  topo.reserve_flows(static_cast<uint32_t>(spec.total_flows()));
  QueueDisc& queue = topo.bottleneck_queue();
  queue.set_drop_log_enabled(spec.record_drop_log);

  ShardFabric fabric(sim, plan, lookahead);
  topo.forward_netem().set_relay(&fabric);
  topo.reverse_netem().set_relay(&fabric);
  fabric.set_core_ack_entry(&topo.ack_entry());

  std::vector<std::unique_ptr<check::InvariantAuditor>> domain_auditors;
  if (audit_on) {
    domain_auditors.reserve(static_cast<size_t>(plan.shards));
    for (int d = 0; d < plan.shards; ++d) {
      auto a = std::make_unique<check::InvariantAuditor>(fabric.domain_sim(d));
      a->set_conservation_external(true);
      DeliveryStage* stage = &fabric.delivery(d);
      a->register_holder("shard-delivery", [stage](int64_t& pkts, int64_t& bytes) {
        pkts += static_cast<int64_t>(stage->in_transit());
        bytes += stage->in_transit_bytes();
      });
      domain_auditors.push_back(std::move(a));
    }
  }

  // Flow construction mirrors the serial runner exactly: same group
  // order, same master-RNG fork order, same per-flow construction order —
  // only the simulator each endpoint lives on differs.
  std::vector<std::vector<Time>> congestion_log;
  if (spec.record_congestion_log) {
    congestion_log.resize(static_cast<size_t>(spec.total_flows()));
  }
  FlowTable table;
  std::vector<ShardedFlow> flows;
  flows.reserve(static_cast<size_t>(spec.total_flows()));
  TcpSenderConfig tcp = spec.tcp;
  tcp.ecn_enabled = net.qdisc.enabled() && net.qdisc.ecn;
  uint32_t flow_id = 0;
  for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
    const FlowGroup& g = spec.groups[gi];
    for (int i = 0; i < g.count; ++i, ++flow_id) {
      ShardedFlow f;
      f.group = static_cast<int>(gi);
      f.domain = plan.domain_of(flow_id);
      Simulator& fsim = fabric.domain_sim(f.domain);
      const FlowTable::Slot slot =
          table.create(fsim, flow_id, rng.fork(), g.cca,
                       &fabric.data_gate(f.domain), &fabric.ack_gate(f.domain),
                       tcp, spec.receiver);
      f.rng = slot.rng;
      f.receiver = slot.receiver;
      f.sender = slot.sender;
      topo.register_flow(flow_id, g.rtt, f.sender, f.receiver);
      fabric.delivery(f.domain).register_flow(flow_id, f.sender, f.receiver);
      fabric.set_core_data_entry(flow_id, &topo.data_entry(flow_id));
      if (spec.record_congestion_log) {
        std::vector<Time>& log = congestion_log[flow_id];
        f.sender->set_congestion_event_callback(
            [&log](Time at) { log.push_back(at); });
      }
      if (audit_on) {
        domain_auditors[static_cast<size_t>(f.domain)]->watch_sender(flow_id,
                                                                     *f.sender);
      }
      flows.push_back(f);
    }
  }
  if (audit_on) {
    core_auditor->schedule_periodic(TimeDelta::millis(250));
    for (auto& a : domain_auditors) a->schedule_periodic(TimeDelta::millis(250));
  }

  // Time-series tracing: the tick stays a core event (event-count parity
  // with the serial path). It runs during the core phase, when every
  // domain thread is parked at the window barrier, so reading edge-side
  // sender state is race-free — but that state is the end-of-window
  // state, so a sharded trace may lead the serial trace by up to one
  // lookahead. Traces are observational (never serialized or digested).
  ExperimentResult result;
  std::function<void()> trace_tick;
  if (spec.trace_interval > TimeDelta::zero()) {
    trace_tick = [&] {
      QueueTraceSample qs;
      qs.at = sim.now();
      qs.queued_bytes = queue.queued_bytes();
      qs.dropped_packets = queue.stats().dropped_packets;
      result.trace.add_queue_sample(qs);
      auto sample_flow = [&](uint32_t id) {
        if (id >= flows.size()) return;
        const ShardedFlow& f = flows[id];
        FlowTraceSample ts;
        ts.at = sim.now();
        ts.cwnd = f.sender->cca().cwnd();
        ts.inflight = f.sender->inflight();
        ts.delivered = f.sender->stats().delivered;
        ts.congestion_events = f.sender->stats().congestion_events;
        ts.rto_events = f.sender->stats().rto_events;
        const DataRate pr = f.sender->cca().pacing_rate();
        ts.pacing_bps = pr.is_infinite() ? 0.0
                                         : static_cast<double>(pr.bits_per_sec());
        ts.in_recovery = f.sender->in_recovery();
        result.trace.add_flow_sample(id, ts);
      };
      if (spec.trace_flows.empty()) {
        for (uint32_t id = 0; id < flows.size(); ++id) sample_flow(id);
      } else {
        for (const uint32_t id : spec.trace_flows) sample_flow(id);
      }
      sim.schedule_fn_in(spec.trace_interval, trace_tick);
    };
    sim.schedule_fn_in(spec.trace_interval, trace_tick);
  }

  // Cooperative budget: same harness RSS augmentation as the serial path;
  // the fabric enforces the ceilings at barriers on summed counts.
  SimBudget budget_local;
  if (budget != nullptr && budget->any()) {
    budget_local = *budget;
    auto caller_extra = budget->extra_rss_bytes;
    budget_local.extra_rss_bytes = [&flows, &queue, &congestion_log,
                                    caller_extra]() {
      int64_t est = static_cast<int64_t>(flows.size()) * 4096;
      est += static_cast<int64_t>(queue.drop_log().size()) *
             static_cast<int64_t>(sizeof(DropRecord));
      for (const std::vector<Time>& log : congestion_log) {
        est += static_cast<int64_t>(log.size()) * static_cast<int64_t>(sizeof(Time));
      }
      if (caller_extra) est += caller_extra();
      return est;
    };
    fabric.set_budget(&budget_local);
  }

  // Staggered starts: same master-RNG draw order; the start event runs on
  // the flow's own domain (one fn event per flow, as in the serial path).
  for (ShardedFlow& f : flows) {
    const double offset =
        rng.next_double() * std::max(spec.scenario.stagger.sec(), 0.0);
    TcpSender* sender = f.sender;
    fabric.domain_sim(f.domain).schedule_fn_at(Time::seconds_f(offset),
                                               [sender] { sender->start(); });
  }

  // Open-loop workload: dynamic flows are core-resident, wired straight
  // into the topology — the relay only claims ids below
  // plan.sharded_flows, and the engine's dedicated seed stream makes the
  // arrival schedule independent of domain interleaving, so results are
  // byte-identical to the serial runner (the churn precedent).
  std::unique_ptr<WorkloadEngine> workload;
  const Time run_end = Time::zero() + spec.scenario.stagger +
                       spec.scenario.warmup + spec.scenario.measure;
  if (spec.workload.enabled()) {
    workload = std::make_unique<WorkloadEngine>(
        sim, topo, table, spec.workload, tcp, spec.receiver,
        net.bottleneck_rate, static_cast<uint32_t>(spec.total_flows()),
        run_end, workload_grace(spec, net), derive_workload_seed(spec.seed));
    workload->begin();
  }

  const Time warmup_end =
      Time::zero() + spec.scenario.stagger + spec.scenario.warmup;
  fabric.run_to(warmup_end);
  queue.reset_accounting();
  // Steady-state allocation accounting, as in the serial runner: the
  // measurement-window delta over all simulators (core + domains).
  const uint64_t warm_events = fabric.total_events();
  const uint64_t warm_allocs = fabric.aggregate_profile().heap_allocs;
  std::vector<FlowCounters> begin;
  begin.reserve(flows.size());
  for (uint32_t i = 0; i < flows.size(); ++i) {
    begin.push_back(snapshot(fabric.now(), flows[i], queue, i));
  }

  bool converged_early = false;
  const Time measure_end = warmup_end + spec.scenario.measure;
  if (spec.convergence_window > TimeDelta::zero()) {
    ConvergenceDetector detector(spec.convergence_window, spec.convergence_tolerance);
    while (fabric.now() < measure_end) {
      const Time next = std::min(fabric.now() + spec.convergence_poll, measure_end);
      fabric.run_to(next);
      uint64_t in_order = 0;
      for (uint32_t i = 0; i < flows.size(); ++i) {
        in_order += flows[i].receiver->rcv_nxt() - begin[i].rcv_in_order;
      }
      const double elapsed = (fabric.now() - warmup_end).sec();
      if (elapsed > 0.0) {
        detector.add_sample(fabric.now(), static_cast<double>(in_order) / elapsed);
      }
      if (detector.converged()) {
        converged_early = true;
        break;
      }
    }
  } else {
    fabric.run_to(measure_end);
  }

  // Final audit: per-simulator checks, then the global conservation
  // equation over the summed counters (every packet injected anywhere is
  // delivered, dropped, or held somewhere — the delivery stages register
  // as holders, and all exchange buffers are empty at a barrier).
  if (audit_on) {
    core_auditor->run_checks(sim.now());
    for (int d = 0; d < plan.shards; ++d) {
      domain_auditors[static_cast<size_t>(d)]->run_checks(
          fabric.domain_sim(d).now());
    }
    int64_t inj_p = 0, inj_b = 0, del_p = 0, del_b = 0;
    int64_t drop_p = 0, drop_b = 0, held_p = 0, held_b = 0;
    auto fold = [&](const check::InvariantAuditor& a) {
      inj_p += a.injected_packets();
      inj_b += a.injected_bytes();
      del_p += a.delivered_packets();
      del_b += a.delivered_bytes();
      drop_p += a.dropped_packets();
      drop_b += a.dropped_bytes();
      a.held_totals(held_p, held_b);
    };
    fold(*core_auditor);
    for (const auto& a : domain_auditors) fold(*a);
    if (inj_p != del_p + drop_p + held_p || inj_b != del_b + drop_b + held_b) {
      core_auditor->record_external_violation(
          "conservation", fabric.now(),
          "global (cross-domain): injected " + std::to_string(inj_p) + " pkts/" +
              std::to_string(inj_b) + " B != delivered " + std::to_string(del_p) +
              "/" + std::to_string(del_b) + " + dropped " + std::to_string(drop_p) +
              "/" + std::to_string(drop_b) + " + in-flight " +
              std::to_string(held_p) + "/" + std::to_string(held_b));
    }
    uint64_t total = core_auditor->total_violations();
    for (const auto& a : domain_auditors) total += a->total_violations();
    if (total > 0) {
      std::string report = core_auditor->report();
      for (int d = 0; d < plan.shards; ++d) {
        const auto& a = *domain_auditors[static_cast<size_t>(d)];
        if (a.total_violations() > 0) {
          report += "\ndomain " + std::to_string(d) + ": " + a.report();
        }
      }
      throw check::AuditViolationError(report);
    }
  }

  // Result assembly, identical to the serial path except the event count
  // and profile are summed over the core + every domain.
  result.converged_early = converged_early;
  result.measured_for = fabric.now() - warmup_end;
  result.sim_events = fabric.total_events();
  result.sim_profile = fabric.aggregate_profile();
  result.measure_sim_events = result.sim_events - warm_events;
  result.measure_heap_allocs = result.sim_profile.heap_allocs - warm_allocs;
  result.queue = queue.stats();
  result.drop_times.reserve(queue.drop_log().size());
  for (const DropRecord& d : queue.drop_log()) result.drop_times.push_back(d.at);

  result.flows.reserve(flows.size());
  result.flow_group.reserve(flows.size());
  double total_goodput = 0.0;
  for (uint32_t i = 0; i < flows.size(); ++i) {
    const FlowCounters end = snapshot(fabric.now(), flows[i], queue, i);
    FlowMeasurement m = measure_flow(i, begin[i], end, kMssBytes);
    total_goodput += m.goodput_bps;
    result.flows.push_back(m);
    result.flow_group.push_back(flows[i].group);
  }
  result.aggregate_goodput_bps = total_goodput;
  result.congestion_log = std::move(congestion_log);
  if (workload) {
    workload->finalize(result.workload_classes);
    const double elapsed = fabric.now().sec();
    if (elapsed > 0.0) {
      result.workload_goodput_bps =
          static_cast<double>(workload->goodput_bytes()) * 8.0 / elapsed;
    }
  }
  const double payload_capacity =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec()) *
      static_cast<double>(kMssBytes) / static_cast<double>(kDataPacketBytes);
  result.utilization = total_goodput / payload_capacity;

  result.groups.reserve(spec.groups.size());
  for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
    GroupResult gr;
    gr.cca = spec.groups[gi].cca;
    gr.count = spec.groups[gi].count;
    gr.rtt = spec.groups[gi].rtt;
    const auto goodputs = [&] {
      std::vector<double> v;
      for (size_t i = 0; i < result.flows.size(); ++i) {
        if (result.flow_group[i] == static_cast<int>(gi)) {
          v.push_back(result.flows[i].goodput_bps);
        }
      }
      return v;
    }();
    for (const double g : goodputs) gr.aggregate_goodput_bps += g;
    gr.throughput_share =
        total_goodput > 0.0 ? gr.aggregate_goodput_bps / total_goodput : 0.0;
    gr.jfi = goodputs.empty() ? 1.0 : jain_fairness_index(goodputs);
    result.groups.push_back(gr);
  }

  log_info("experiment done (%d shards): %zu flows, %.2f Gbps aggregate, "
           "util %.3f, %llu events",
           spec.shards, flows.size(), total_goodput / 1e9, result.utilization,
           static_cast<unsigned long long>(result.sim_events));
  return result;
}

}  // namespace ccas
