#include "src/harness/churn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/cca/cca.h"
#include "src/harness/flow_table.h"
#include "src/net/topology.h"
#include "src/sim/parallel/fabric.h"
#include "src/sim/parallel/shard_plan.h"
#include "src/sim/simulator.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace ccas {

double ChurnResult::mean_fct() const {
  if (fct_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (const double f : fct_seconds) sum += f;
  return sum / static_cast<double>(fct_seconds.size());
}

double ChurnResult::median_fct() const {
  if (fct_seconds.empty()) return 0.0;
  return median(fct_seconds);
}

double ChurnResult::mean_fct_sized(uint64_t min_size, uint64_t max_size) const {
  double sum = 0.0;
  int n = 0;
  for (size_t i = 0; i < fct_seconds.size(); ++i) {
    if (completed_sizes[i] >= min_size && completed_sizes[i] <= max_size) {
      sum += fct_seconds[i];
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

namespace {

[[nodiscard]] int background_count(const ChurnSpec& spec) {
  int n = 0;
  for (const FlowGroup& g : spec.background) n += g.count;
  return n;
}

// How long after a churn flow completes before its slab may be reused: an
// upper bound on the lifetime of anything still referencing the endpoints
// from inside the network — stray duplicate data, trailing ACKs, a delack
// fire answering a late segment. Two max-RTTs plus twice the worst-case
// queue drain plus every configured jitter/reorder hold, with flat slack
// that dominates the delack and GRO timeouts. Lazily-cancelled timer
// entries can outlive any grace, so the reaper re-checks them separately
// (TcpSender::latest_timer_entry) and defers past the last one.
[[nodiscard]] TimeDelta reap_grace(const ChurnSpec& spec) {
  TimeDelta max_rtt = spec.rtt;
  for (const FlowGroup& g : spec.background) {
    max_rtt = std::max(max_rtt, g.rtt);
  }
  const DumbbellConfig& net = spec.scenario.net;
  TimeDelta drain = TimeDelta::zero();
  if (!net.bottleneck_rate.is_infinite()) {
    drain = TimeDelta::seconds_f(
        static_cast<double>(net.buffer_bytes) * 8.0 /
        static_cast<double>(net.bottleneck_rate.bits_per_sec()));
  }
  if (!net.edge_rate.is_infinite()) {
    drain = drain + TimeDelta::seconds_f(
                        static_cast<double>(net.edge_buffer_bytes) * 8.0 /
                        static_cast<double>(net.edge_rate.bits_per_sec()));
  }
  const TimeDelta holds = net.jitter + net.jitter + net.impairments.jitter +
                          net.impairments.jitter +
                          net.impairments.reorder_delay;
  return max_rtt + max_rtt + drain + drain + holds + TimeDelta::millis(200);
}

constexpr uint32_t kTagArrival = 0;
constexpr uint32_t kTagReap = 1;

// The allocation-free churn path (DESIGN.md §12). Arrivals are events on
// this handler (no per-arrival std::function copies), flows live in
// FlowTable slabs, and departures go through a grace-period reaper that
// parks the slab for the next arrival. Steady state touches the heap only
// through amortized vector growth. The event stream is byte-identical to
// the historical recursive schedule_fn_at chain: every push happens at the
// same execution point, and the extra reap events carry no observable
// effect (they only release memory), so relative event order — and with it
// every RNG draw — is unchanged.
class ChurnDriver final : public EventHandler {
 public:
  ChurnDriver(Simulator& sim, DumbbellTopology& topo, FlowTable& table,
              Rng& rng, const ChurnSpec& spec, ChurnResult& result,
              Time end_time)
      : sim_(sim),
        topo_(topo),
        table_(table),
        rng_(rng),
        spec_(spec),
        result_(result),
        end_time_(end_time),
        grace_(reap_grace(spec)) {}

  // Flow ids continue after the background flows; ids are never reused
  // (per-flow tables are id-indexed), only slabs are.
  void set_next_flow_id(uint32_t id) { next_flow_id_ = id; }

  void begin() {
    if (spec_.arrivals_per_sec > 0.0) {
      sim_.schedule_at(Time::zero(), this, kTagArrival, 0);
    }
  }

  void on_event(uint32_t tag, uint64_t arg) override {
    if (tag == kTagArrival) {
      on_arrival();
    } else {
      on_reap(static_cast<uint32_t>(arg));
    }
  }

  // Exact goodput of every churn flow: reaped flows were accumulated when
  // their receivers were torn down, live ones are read here. Every term and
  // partial sum is an integer far below 2^53, so this equals the historical
  // creation-order double accumulation bit for bit.
  [[nodiscard]] int64_t churn_goodput_bytes() const {
    int64_t total = reaped_goodput_bytes_;
    for (const State& st : states_) {
      if (st.live) total += st.slot.receiver->goodput_bytes();
    }
    return total;
  }

 private:
  struct State {
    FlowTable::Slot slot;
    Time started = Time::zero();
    uint64_t size = 0;
    uint32_t flow_id = 0;
    bool live = false;
    bool completed = false;
  };

  // Bounded-Pareto flow sizes (inverse CDF), one master-RNG draw.
  [[nodiscard]] uint64_t sample_size() {
    const double a = spec_.pareto_alpha;
    const auto lo = static_cast<double>(spec_.min_size_segments);
    const auto hi = static_cast<double>(spec_.max_size_segments);
    const double u = rng_.next_double();
    const double x =
        std::pow(-(u * std::pow(hi, a) - u * std::pow(lo, a) - std::pow(hi, a)) /
                     (std::pow(hi, a) * std::pow(lo, a)),
                 -1.0 / a);
    return static_cast<uint64_t>(std::clamp(x, lo, hi));
  }

  void on_arrival() {
    if (sim_.now() >= end_time_) return;
    if (active_ >= spec_.max_concurrent) {
      ++result_.arrivals_rejected;
    } else {
      // Master-RNG draw order is load-bearing: fork, then size, then (at
      // the bottom) the next arrival gap — exactly the historical order.
      Rng flow_rng = rng_.fork();
      const uint32_t id = next_flow_id_++;
      const uint64_t size = sample_size();
      uint32_t si;
      if (!free_states_.empty()) {
        si = free_states_.back();
        free_states_.pop_back();
      } else {
        si = static_cast<uint32_t>(states_.size());
        states_.emplace_back();
      }
      State& st = states_[si];
      TcpSenderConfig cfg = spec_.tcp;
      cfg.data_segments = size;
      st.slot = table_.create(sim_, id, std::move(flow_rng), spec_.cca,
                              &topo_.data_entry(id), &topo_.ack_entry(), cfg,
                              spec_.receiver);
      st.started = sim_.now();
      st.size = size;
      st.flow_id = id;
      st.live = true;
      st.completed = false;
      topo_.register_flow(id, spec_.rtt, st.slot.sender, st.slot.receiver);
      // Two-word capture fits std::function's inline storage: no heap.
      st.slot.sender->set_completion_callback([this, si] { on_complete(si); });
      ++active_;
      ++result_.flows_started;
      st.slot.sender->start();
    }
    if (spec_.arrivals_per_sec > 0.0) {
      const double gap =
          -std::log(1.0 - rng_.next_double()) / spec_.arrivals_per_sec;
      const Time next = sim_.now() + TimeDelta::seconds_f(gap);
      if (next < end_time_) sim_.schedule_at(next, this, kTagArrival, 0);
    }
  }

  void on_complete(uint32_t si) {
    State& st = states_[si];
    if (st.completed) return;
    st.completed = true;
    --active_;
    ++result_.flows_completed;
    result_.completed_sizes.push_back(st.size);
    result_.fct_seconds.push_back((sim_.now() - st.started).sec());
    sim_.schedule_at(sim_.now() + grace_, this, kTagReap, si);
  }

  void on_reap(uint32_t si) {
    State& st = states_[si];
    // Lazily-cancelled timer entries still hold pointers into the slot;
    // park the reap just past the last one (it may re-arm — re-check).
    const Time s = st.slot.sender->latest_timer_entry();
    const Time r = st.slot.receiver->latest_timer_entry();
    const Time pending = s > r ? s : r;
    if (pending > Time::zero()) {
      const Time at =
          (pending > sim_.now() ? pending : sim_.now()) + TimeDelta::nanos(1);
      sim_.schedule_at(at, this, kTagReap, si);
      return;
    }
    reaped_goodput_bytes_ += st.slot.receiver->goodput_bytes();
    topo_.unregister_flow(st.flow_id);
    table_.recycle(st.slot);
    st.live = false;
    free_states_.push_back(si);
  }

  Simulator& sim_;
  DumbbellTopology& topo_;
  FlowTable& table_;
  Rng& rng_;
  const ChurnSpec& spec_;
  ChurnResult& result_;
  const Time end_time_;
  const TimeDelta grace_;

  std::vector<State> states_;
  std::vector<uint32_t> free_states_;
  int active_ = 0;
  uint32_t next_flow_id_ = 0;
  int64_t reaped_goodput_bytes_ = 0;
};

void finish_result(const ChurnSpec& spec, const FlowTable& table,
                   const std::vector<FlowTable::Slot>& background,
                   const ChurnDriver& driver, DumbbellTopology& topo,
                   Time end_time, ChurnResult& result) {
  // Goodput over the whole run (churn flows start mid-run, so per-window
  // snapshots are less meaningful than for fixed flows). Integer sums of
  // byte counts < 2^53 are exact in any order, so splitting churn goodput
  // between reap time and run end reproduces the historical creation-order
  // double sum exactly.
  int64_t background_bytes = 0;
  for (const FlowTable::Slot& slot : background) {
    background_bytes += slot.receiver->goodput_bytes();
  }
  const int64_t total_bytes = background_bytes + driver.churn_goodput_bytes();
  const double duration = end_time.sec();
  const double payload_capacity =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec()) *
      static_cast<double>(kMssBytes) / static_cast<double>(kDataPacketBytes);
  result.utilization =
      static_cast<double>(total_bytes) * 8.0 / duration / payload_capacity;
  result.background_goodput_bps =
      static_cast<double>(background_bytes) * 8.0 / duration;
  result.queue = topo.bottleneck_queue().stats();
  result.slots_recycled = table.slabs_recycled();
  result.slab_reuses = table.slab_reuses();
}

ChurnResult run_churn_sharded(const ChurnSpec& spec);

}  // namespace

ChurnResult run_churn_experiment(const ChurnSpec& spec) {
  if (spec.arrivals_per_sec < 0.0) throw std::invalid_argument("negative arrival rate");
  if (spec.min_size_segments == 0 || spec.max_size_segments < spec.min_size_segments) {
    throw std::invalid_argument("bad flow-size bounds");
  }
  if (spec.pareto_alpha <= 0.0) throw std::invalid_argument("pareto alpha must be > 0");
  {
    Rng probe(0);
    (void)make_cca(spec.cca, probe);
  }
  if (spec.shards < 1) throw std::invalid_argument("shards must be >= 1");
  const int n_bg = background_count(spec);
  if (spec.shards > 1 && n_bg > 0 && spec.shards > n_bg) {
    throw std::invalid_argument(
        "shards exceed background flow count: every domain needs at least "
        "one flow");
  }
  // Only background flows shard (header comment); with none, the sharded
  // run would be the serial run with idle domains, so run it serially.
  if (spec.shards > 1 && n_bg > 0) return run_churn_sharded(spec);

  Simulator sim;
  Rng rng(spec.seed);
  DumbbellTopology topo(sim, spec.scenario.net);
  topo.bottleneck_queue().set_drop_log_enabled(false);

  ChurnResult result;
  FlowTable table;
  std::vector<FlowTable::Slot> background;
  background.reserve(static_cast<size_t>(n_bg));
  uint32_t next_flow_id = 0;

  const Time end_time = Time::zero() + spec.scenario.stagger +
                        spec.scenario.warmup + spec.scenario.measure;

  // Background long-running flows, staggered like the fixed experiments.
  for (const FlowGroup& g : spec.background) {
    for (int i = 0; i < g.count; ++i) {
      const uint32_t id = next_flow_id++;
      const FlowTable::Slot slot =
          table.create(sim, id, rng.fork(), g.cca, &topo.data_entry(id),
                       &topo.ack_entry(), spec.tcp, spec.receiver);
      topo.register_flow(id, g.rtt, slot.sender, slot.receiver);
      TcpSender* sender = slot.sender;
      sim.schedule_fn_at(
          Time::seconds_f(rng.next_double() * spec.scenario.stagger.sec()),
          [sender] { sender->start(); });
      background.push_back(slot);
    }
  }

  // Poisson arrivals until the end of the run.
  ChurnDriver driver(sim, topo, table, rng, spec, result, end_time);
  driver.set_next_flow_id(next_flow_id);
  driver.begin();

  sim.run_until(end_time);

  finish_result(spec, table, background, driver, topo, end_time, result);

  log_info("churn done: %llu started, %llu completed, util %.3f",
           static_cast<unsigned long long>(result.flows_started),
           static_cast<unsigned long long>(result.flows_completed),
           result.utilization);
  return result;
}

namespace {

// Sharded churn: background flows live on edge domains, dynamic flows on
// the core. Mirrors the serial path statement for statement — same master
// RNG draw order (background forks + stagger draws at setup, fork +
// size + gap draws inside core-resident arrival events) — so the results
// are byte-identical to the serial run.
ChurnResult run_churn_sharded(const ChurnSpec& spec) {
  Simulator sim;
  Rng rng(spec.seed);
  DumbbellTopology topo(sim, spec.scenario.net);
  topo.bottleneck_queue().set_drop_log_enabled(false);

  TimeDelta lookahead = TimeDelta::infinite();
  for (const FlowGroup& g : spec.background) {
    lookahead = std::min(lookahead, g.rtt / 2);
  }
  if (lookahead < TimeDelta::nanos(2)) {
    throw std::invalid_argument(
        "shards > 1 needs a minimum background RTT of at least 4ns");
  }
  ShardPlan plan;
  plan.shards = spec.shards;
  plan.sharded_flows = static_cast<uint32_t>(background_count(spec));
  ShardFabric fabric(sim, plan, lookahead);
  topo.forward_netem().set_relay(&fabric);
  topo.reverse_netem().set_relay(&fabric);
  fabric.set_core_ack_entry(&topo.ack_entry());

  ChurnResult result;
  // Declared after the fabric so flows are torn down while every domain
  // sim is still alive.
  FlowTable table;
  std::vector<FlowTable::Slot> background;
  background.reserve(static_cast<size_t>(background_count(spec)));
  uint32_t next_flow_id = 0;

  const Time end_time = Time::zero() + spec.scenario.stagger +
                        spec.scenario.warmup + spec.scenario.measure;

  for (const FlowGroup& g : spec.background) {
    for (int i = 0; i < g.count; ++i) {
      const uint32_t id = next_flow_id++;
      const int d = plan.domain_of(id);
      Simulator& fsim = fabric.domain_sim(d);
      const FlowTable::Slot slot =
          table.create(fsim, id, rng.fork(), g.cca, &fabric.data_gate(d),
                       &fabric.ack_gate(d), spec.tcp, spec.receiver);
      topo.register_flow(id, g.rtt, slot.sender, slot.receiver);
      fabric.delivery(d).register_flow(id, slot.sender, slot.receiver);
      fabric.set_core_data_entry(id, &topo.data_entry(id));
      TcpSender* sender = slot.sender;
      fsim.schedule_fn_at(
          Time::seconds_f(rng.next_double() * spec.scenario.stagger.sec()),
          [sender] { sender->start(); });
      background.push_back(slot);
    }
  }

  // Dynamic flows: core-resident, wired straight into the topology — the
  // relay only claims flows below plan.sharded_flows. The reaper never
  // touches background flows, so recycling stays a core-phase-only affair.
  ChurnDriver driver(sim, topo, table, rng, spec, result, end_time);
  driver.set_next_flow_id(next_flow_id);
  driver.begin();

  fabric.run_to(end_time);

  finish_result(spec, table, background, driver, topo, end_time, result);

  log_info("churn done (%d shards): %llu started, %llu completed, util %.3f",
           spec.shards, static_cast<unsigned long long>(result.flows_started),
           static_cast<unsigned long long>(result.flows_completed),
           result.utilization);
  return result;
}

}  // namespace

}  // namespace ccas
