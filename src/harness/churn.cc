#include "src/harness/churn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "src/cca/cca.h"
#include "src/net/topology.h"
#include "src/sim/parallel/fabric.h"
#include "src/sim/parallel/shard_plan.h"
#include "src/sim/simulator.h"
#include "src/util/arena.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace ccas {

double ChurnResult::mean_fct() const {
  if (fct_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (const double f : fct_seconds) sum += f;
  return sum / static_cast<double>(fct_seconds.size());
}

double ChurnResult::median_fct() const {
  if (fct_seconds.empty()) return 0.0;
  return median(fct_seconds);
}

double ChurnResult::mean_fct_sized(uint64_t min_size, uint64_t max_size) const {
  double sum = 0.0;
  int n = 0;
  for (size_t i = 0; i < fct_seconds.size(); ++i) {
    if (completed_sizes[i] >= min_size && completed_sizes[i] <= max_size) {
      sum += fct_seconds[i];
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

namespace {

struct ChurnFlow {
  // Owns the flow's RNG: CCAs keep a reference to it, so it must live
  // exactly as long as the sender.
  std::unique_ptr<Rng> rng;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  Time started = Time::zero();
  uint64_t size = 0;
  bool is_background = false;
  bool done = false;
};

// Arena-resident variant for the sharded path (the arena owns the
// objects; churn arrivals allocate from the caller's thread during the
// core phase, when every domain worker is parked).
struct ShardChurnFlow {
  Rng* rng = nullptr;
  TcpSender* sender = nullptr;
  TcpReceiver* receiver = nullptr;
  Time started = Time::zero();
  uint64_t size = 0;
  bool is_background = false;
  bool done = false;
};

[[nodiscard]] int background_count(const ChurnSpec& spec) {
  int n = 0;
  for (const FlowGroup& g : spec.background) n += g.count;
  return n;
}

ChurnResult run_churn_sharded(const ChurnSpec& spec);

}  // namespace

ChurnResult run_churn_experiment(const ChurnSpec& spec) {
  if (spec.arrivals_per_sec < 0.0) throw std::invalid_argument("negative arrival rate");
  if (spec.min_size_segments == 0 || spec.max_size_segments < spec.min_size_segments) {
    throw std::invalid_argument("bad flow-size bounds");
  }
  if (spec.pareto_alpha <= 0.0) throw std::invalid_argument("pareto alpha must be > 0");
  {
    Rng probe(0);
    (void)make_cca(spec.cca, probe);
  }
  if (spec.shards < 1) throw std::invalid_argument("shards must be >= 1");
  const int n_bg = background_count(spec);
  if (spec.shards > 1 && n_bg > 0 && spec.shards > n_bg) {
    throw std::invalid_argument(
        "shards exceed background flow count: every domain needs at least "
        "one flow");
  }
  // Only background flows shard (header comment); with none, the sharded
  // run would be the serial run with idle domains, so run it serially.
  if (spec.shards > 1 && n_bg > 0) return run_churn_sharded(spec);

  Simulator sim;
  Rng rng(spec.seed);
  DumbbellTopology topo(sim, spec.scenario.net);
  topo.bottleneck_queue().set_drop_log_enabled(false);

  ChurnResult result;
  std::vector<std::unique_ptr<ChurnFlow>> flows;
  uint32_t next_flow_id = 0;
  int active_churn = 0;

  const Time end_time = Time::zero() + spec.scenario.stagger +
                        spec.scenario.warmup + spec.scenario.measure;

  // Background long-running flows, staggered like the fixed experiments.
  for (const FlowGroup& g : spec.background) {
    for (int i = 0; i < g.count; ++i) {
      auto f = std::make_unique<ChurnFlow>();
      f->rng = std::make_unique<Rng>(rng.fork());
      f->is_background = true;
      const uint32_t id = next_flow_id++;
      f->receiver =
          std::make_unique<TcpReceiver>(sim, id, &topo.ack_entry(), spec.receiver);
      f->sender = std::make_unique<TcpSender>(sim, id, make_cca(g.cca, *f->rng),
                                              &topo.data_entry(id), spec.tcp);
      topo.register_flow(id, g.rtt, f->sender.get(), f->receiver.get());
      TcpSender* sender = f->sender.get();
      sim.schedule_fn_at(
          Time::seconds_f(rng.next_double() * spec.scenario.stagger.sec()),
          [sender] { sender->start(); });
      flows.push_back(std::move(f));
    }
  }

  // Bounded-Pareto flow sizes.
  auto sample_size = [&rng, &spec] {
    const double a = spec.pareto_alpha;
    const auto lo = static_cast<double>(spec.min_size_segments);
    const auto hi = static_cast<double>(spec.max_size_segments);
    const double u = rng.next_double();
    // Inverse CDF of the bounded Pareto.
    const double x =
        std::pow(-(u * std::pow(hi, a) - u * std::pow(lo, a) - std::pow(hi, a)) /
                     (std::pow(hi, a) * std::pow(lo, a)),
                 -1.0 / a);
    return static_cast<uint64_t>(std::clamp(x, lo, hi));
  };

  // Poisson arrivals until the end of the run.
  std::function<void()> arrival = [&] {
    if (sim.now() >= end_time) return;
    if (active_churn >= spec.max_concurrent) {
      ++result.arrivals_rejected;
    } else {
      auto f = std::make_unique<ChurnFlow>();
      f->rng = std::make_unique<Rng>(rng.fork());
      const uint32_t id = next_flow_id++;
      f->size = sample_size();
      f->started = sim.now();
      f->receiver =
          std::make_unique<TcpReceiver>(sim, id, &topo.ack_entry(), spec.receiver);
      TcpSenderConfig cfg = spec.tcp;
      cfg.data_segments = f->size;
      f->sender = std::make_unique<TcpSender>(sim, id, make_cca(spec.cca, *f->rng),
                                              &topo.data_entry(id), cfg);
      topo.register_flow(id, spec.rtt, f->sender.get(), f->receiver.get());
      ChurnFlow* raw = f.get();
      f->sender->set_completion_callback([&result, &sim, &active_churn, raw] {
        if (raw->done) return;
        raw->done = true;
        --active_churn;
        ++result.flows_completed;
        result.completed_sizes.push_back(raw->size);
        result.fct_seconds.push_back((sim.now() - raw->started).sec());
      });
      ++active_churn;
      ++result.flows_started;
      f->sender->start();
      flows.push_back(std::move(f));
    }
    if (spec.arrivals_per_sec > 0.0) {
      const double gap =
          -std::log(1.0 - rng.next_double()) / spec.arrivals_per_sec;
      const Time next = sim.now() + TimeDelta::seconds_f(gap);
      if (next < end_time) sim.schedule_fn_at(next, arrival);
    }
  };
  if (spec.arrivals_per_sec > 0.0) sim.schedule_fn_at(Time::zero(), arrival);

  sim.run_until(end_time);

  // Goodput over the whole run (churn flows start mid-run, so per-window
  // snapshots are less meaningful than for fixed flows).
  double total_in_order = 0.0;
  double background_in_order = 0.0;
  for (const auto& f : flows) {
    const auto bytes = static_cast<double>(f->receiver->goodput_bytes());
    total_in_order += bytes;
    if (f->is_background) background_in_order += bytes;
  }
  const double duration = end_time.sec();
  const double payload_capacity =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec()) *
      static_cast<double>(kMssBytes) / static_cast<double>(kDataPacketBytes);
  result.utilization = total_in_order * 8.0 / duration / payload_capacity;
  result.background_goodput_bps = background_in_order * 8.0 / duration;
  result.queue = topo.bottleneck_queue().stats();

  log_info("churn done: %llu started, %llu completed, util %.3f",
           static_cast<unsigned long long>(result.flows_started),
           static_cast<unsigned long long>(result.flows_completed),
           result.utilization);
  return result;
}

namespace {

// Sharded churn: background flows live on edge domains, dynamic flows on
// the core. Mirrors the serial path statement for statement — same master
// RNG draw order (background forks + stagger draws at setup, fork +
// size + gap draws inside core-resident arrival events) — so the results
// are byte-identical to the serial run.
ChurnResult run_churn_sharded(const ChurnSpec& spec) {
  Simulator sim;
  Rng rng(spec.seed);
  DumbbellTopology topo(sim, spec.scenario.net);
  topo.bottleneck_queue().set_drop_log_enabled(false);

  TimeDelta lookahead = TimeDelta::infinite();
  for (const FlowGroup& g : spec.background) {
    lookahead = std::min(lookahead, g.rtt / 2);
  }
  if (lookahead < TimeDelta::nanos(2)) {
    throw std::invalid_argument(
        "shards > 1 needs a minimum background RTT of at least 4ns");
  }
  ShardPlan plan;
  plan.shards = spec.shards;
  plan.sharded_flows = static_cast<uint32_t>(background_count(spec));
  ShardFabric fabric(sim, plan, lookahead);
  topo.forward_netem().set_relay(&fabric);
  topo.reverse_netem().set_relay(&fabric);
  fabric.set_core_ack_entry(&topo.ack_entry());

  ChurnResult result;
  MonotonicArena arena;
  std::vector<ShardChurnFlow*> flows;
  uint32_t next_flow_id = 0;
  int active_churn = 0;

  const Time end_time = Time::zero() + spec.scenario.stagger +
                        spec.scenario.warmup + spec.scenario.measure;

  for (const FlowGroup& g : spec.background) {
    for (int i = 0; i < g.count; ++i) {
      auto* f = arena.make<ShardChurnFlow>();
      f->rng = arena.make<Rng>(rng.fork());
      f->is_background = true;
      const uint32_t id = next_flow_id++;
      const int d = plan.domain_of(id);
      Simulator& fsim = fabric.domain_sim(d);
      f->receiver = arena.make<TcpReceiver>(fsim, id, &fabric.ack_gate(d),
                                            spec.receiver);
      f->sender = arena.make<TcpSender>(fsim, id, make_cca(g.cca, *f->rng),
                                        &fabric.data_gate(d), spec.tcp);
      topo.register_flow(id, g.rtt, f->sender, f->receiver);
      fabric.delivery(d).register_flow(id, f->sender, f->receiver);
      fabric.set_core_data_entry(id, &topo.data_entry(id));
      TcpSender* sender = f->sender;
      fsim.schedule_fn_at(
          Time::seconds_f(rng.next_double() * spec.scenario.stagger.sec()),
          [sender] { sender->start(); });
      flows.push_back(f);
    }
  }

  auto sample_size = [&rng, &spec] {
    const double a = spec.pareto_alpha;
    const auto lo = static_cast<double>(spec.min_size_segments);
    const auto hi = static_cast<double>(spec.max_size_segments);
    const double u = rng.next_double();
    const double x =
        std::pow(-(u * std::pow(hi, a) - u * std::pow(lo, a) - std::pow(hi, a)) /
                     (std::pow(hi, a) * std::pow(lo, a)),
                 -1.0 / a);
    return static_cast<uint64_t>(std::clamp(x, lo, hi));
  };

  // Dynamic flows: core-resident, wired straight into the topology — the
  // relay only claims flows below plan.sharded_flows.
  std::function<void()> arrival = [&] {
    if (sim.now() >= end_time) return;
    if (active_churn >= spec.max_concurrent) {
      ++result.arrivals_rejected;
    } else {
      auto* f = arena.make<ShardChurnFlow>();
      f->rng = arena.make<Rng>(rng.fork());
      const uint32_t id = next_flow_id++;
      f->size = sample_size();
      f->started = sim.now();
      f->receiver =
          arena.make<TcpReceiver>(sim, id, &topo.ack_entry(), spec.receiver);
      TcpSenderConfig cfg = spec.tcp;
      cfg.data_segments = f->size;
      f->sender = arena.make<TcpSender>(sim, id, make_cca(spec.cca, *f->rng),
                                        &topo.data_entry(id), cfg);
      topo.register_flow(id, spec.rtt, f->sender, f->receiver);
      ShardChurnFlow* raw = f;
      f->sender->set_completion_callback([&result, &sim, &active_churn, raw] {
        if (raw->done) return;
        raw->done = true;
        --active_churn;
        ++result.flows_completed;
        result.completed_sizes.push_back(raw->size);
        result.fct_seconds.push_back((sim.now() - raw->started).sec());
      });
      ++active_churn;
      ++result.flows_started;
      f->sender->start();
      flows.push_back(f);
    }
    if (spec.arrivals_per_sec > 0.0) {
      const double gap =
          -std::log(1.0 - rng.next_double()) / spec.arrivals_per_sec;
      const Time next = sim.now() + TimeDelta::seconds_f(gap);
      if (next < end_time) sim.schedule_fn_at(next, arrival);
    }
  };
  if (spec.arrivals_per_sec > 0.0) sim.schedule_fn_at(Time::zero(), arrival);

  fabric.run_to(end_time);

  double total_in_order = 0.0;
  double background_in_order = 0.0;
  for (const ShardChurnFlow* f : flows) {
    const auto bytes = static_cast<double>(f->receiver->goodput_bytes());
    total_in_order += bytes;
    if (f->is_background) background_in_order += bytes;
  }
  const double duration = end_time.sec();
  const double payload_capacity =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec()) *
      static_cast<double>(kMssBytes) / static_cast<double>(kDataPacketBytes);
  result.utilization = total_in_order * 8.0 / duration / payload_capacity;
  result.background_goodput_bps = background_in_order * 8.0 / duration;
  result.queue = topo.bottleneck_queue().stats();

  log_info("churn done (%d shards): %llu started, %llu completed, util %.3f",
           spec.shards, static_cast<unsigned long long>(result.flows_started),
           static_cast<unsigned long long>(result.flows_completed),
           result.utilization);
  return result;
}

}  // namespace

}  // namespace ccas
