#include "src/harness/churn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "src/cca/cca.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace ccas {

double ChurnResult::mean_fct() const {
  if (fct_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (const double f : fct_seconds) sum += f;
  return sum / static_cast<double>(fct_seconds.size());
}

double ChurnResult::median_fct() const {
  if (fct_seconds.empty()) return 0.0;
  return median(fct_seconds);
}

double ChurnResult::mean_fct_sized(uint64_t min_size, uint64_t max_size) const {
  double sum = 0.0;
  int n = 0;
  for (size_t i = 0; i < fct_seconds.size(); ++i) {
    if (completed_sizes[i] >= min_size && completed_sizes[i] <= max_size) {
      sum += fct_seconds[i];
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

namespace {

struct ChurnFlow {
  // Owns the flow's RNG: CCAs keep a reference to it, so it must live
  // exactly as long as the sender.
  std::unique_ptr<Rng> rng;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  Time started = Time::zero();
  uint64_t size = 0;
  bool is_background = false;
  bool done = false;
};

}  // namespace

ChurnResult run_churn_experiment(const ChurnSpec& spec) {
  if (spec.arrivals_per_sec < 0.0) throw std::invalid_argument("negative arrival rate");
  if (spec.min_size_segments == 0 || spec.max_size_segments < spec.min_size_segments) {
    throw std::invalid_argument("bad flow-size bounds");
  }
  if (spec.pareto_alpha <= 0.0) throw std::invalid_argument("pareto alpha must be > 0");
  {
    Rng probe(0);
    (void)make_cca(spec.cca, probe);
  }

  Simulator sim;
  Rng rng(spec.seed);
  DumbbellTopology topo(sim, spec.scenario.net);
  topo.bottleneck_queue().set_drop_log_enabled(false);

  ChurnResult result;
  std::vector<std::unique_ptr<ChurnFlow>> flows;
  uint32_t next_flow_id = 0;
  int active_churn = 0;

  const Time end_time = Time::zero() + spec.scenario.stagger +
                        spec.scenario.warmup + spec.scenario.measure;

  // Background long-running flows, staggered like the fixed experiments.
  for (const FlowGroup& g : spec.background) {
    for (int i = 0; i < g.count; ++i) {
      auto f = std::make_unique<ChurnFlow>();
      f->rng = std::make_unique<Rng>(rng.fork());
      f->is_background = true;
      const uint32_t id = next_flow_id++;
      f->receiver =
          std::make_unique<TcpReceiver>(sim, id, &topo.ack_entry(), spec.receiver);
      f->sender = std::make_unique<TcpSender>(sim, id, make_cca(g.cca, *f->rng),
                                              &topo.data_entry(id), spec.tcp);
      topo.register_flow(id, g.rtt, f->sender.get(), f->receiver.get());
      TcpSender* sender = f->sender.get();
      sim.schedule_fn_at(
          Time::seconds_f(rng.next_double() * spec.scenario.stagger.sec()),
          [sender] { sender->start(); });
      flows.push_back(std::move(f));
    }
  }

  // Bounded-Pareto flow sizes.
  auto sample_size = [&rng, &spec] {
    const double a = spec.pareto_alpha;
    const auto lo = static_cast<double>(spec.min_size_segments);
    const auto hi = static_cast<double>(spec.max_size_segments);
    const double u = rng.next_double();
    // Inverse CDF of the bounded Pareto.
    const double x =
        std::pow(-(u * std::pow(hi, a) - u * std::pow(lo, a) - std::pow(hi, a)) /
                     (std::pow(hi, a) * std::pow(lo, a)),
                 -1.0 / a);
    return static_cast<uint64_t>(std::clamp(x, lo, hi));
  };

  // Poisson arrivals until the end of the run.
  std::function<void()> arrival = [&] {
    if (sim.now() >= end_time) return;
    if (active_churn >= spec.max_concurrent) {
      ++result.arrivals_rejected;
    } else {
      auto f = std::make_unique<ChurnFlow>();
      f->rng = std::make_unique<Rng>(rng.fork());
      const uint32_t id = next_flow_id++;
      f->size = sample_size();
      f->started = sim.now();
      f->receiver =
          std::make_unique<TcpReceiver>(sim, id, &topo.ack_entry(), spec.receiver);
      TcpSenderConfig cfg = spec.tcp;
      cfg.data_segments = f->size;
      f->sender = std::make_unique<TcpSender>(sim, id, make_cca(spec.cca, *f->rng),
                                              &topo.data_entry(id), cfg);
      topo.register_flow(id, spec.rtt, f->sender.get(), f->receiver.get());
      ChurnFlow* raw = f.get();
      f->sender->set_completion_callback([&result, &sim, &active_churn, raw] {
        if (raw->done) return;
        raw->done = true;
        --active_churn;
        ++result.flows_completed;
        result.completed_sizes.push_back(raw->size);
        result.fct_seconds.push_back((sim.now() - raw->started).sec());
      });
      ++active_churn;
      ++result.flows_started;
      f->sender->start();
      flows.push_back(std::move(f));
    }
    if (spec.arrivals_per_sec > 0.0) {
      const double gap =
          -std::log(1.0 - rng.next_double()) / spec.arrivals_per_sec;
      const Time next = sim.now() + TimeDelta::seconds_f(gap);
      if (next < end_time) sim.schedule_fn_at(next, arrival);
    }
  };
  if (spec.arrivals_per_sec > 0.0) sim.schedule_fn_at(Time::zero(), arrival);

  sim.run_until(end_time);

  // Goodput over the whole run (churn flows start mid-run, so per-window
  // snapshots are less meaningful than for fixed flows).
  double total_in_order = 0.0;
  double background_in_order = 0.0;
  for (const auto& f : flows) {
    const auto bytes = static_cast<double>(f->receiver->goodput_bytes());
    total_in_order += bytes;
    if (f->is_background) background_in_order += bytes;
  }
  const double duration = end_time.sec();
  const double payload_capacity =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec()) *
      static_cast<double>(kMssBytes) / static_cast<double>(kDataPacketBytes);
  result.utilization = total_in_order * 8.0 / duration / payload_capacity;
  result.background_goodput_bps = background_in_order * 8.0 / duration;
  result.queue = topo.bottleneck_queue().stats();

  log_info("churn done: %llu started, %llu completed, util %.3f",
           static_cast<unsigned long long>(result.flows_started),
           static_cast<unsigned long long>(result.flows_completed),
           result.utilization);
  return result;
}

}  // namespace ccas
