// Fixed-width console tables used by the benches and examples to print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

#include "src/harness/experiment.h"

namespace ccas {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  class Row {
   public:
    explicit Row(Table& t) : table_(t) {}
    Row& col(const std::string& s);
    Row& col(double v, int precision = 3);
    Row& col(int64_t v);
    Row& pct(double fraction, int precision = 1);  // renders 0.42 -> "42.0%"
    void done();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  [[nodiscard]] Row row() { return Row(*this); }

  // Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// One-paragraph summary of an experiment (groups, shares, JFIs, queue).
[[nodiscard]] std::string summarize(const ExperimentResult& result);

// Formats a rate like the paper's axes ("4.02 Gbps", "1.2 Mbps").
[[nodiscard]] std::string format_rate(double bps);

}  // namespace ccas
