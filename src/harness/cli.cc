#include "src/harness/cli.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <stdexcept>

#include "src/cca/cca.h"
#include "src/util/rng.h"

namespace ccas {

namespace {

// Splits "a,b,c" into pieces.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_number(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("bad numeric value for " + flag + ": '" + value + "'");
  }
  return v;
}

// Count-like flags (--jobs, --seed, --seeds) take strict integers: "2.5"
// or "1e3" silently truncating to a worker count or a different RNG seed
// is exactly the kind of quiet misconfiguration a sweep can't detect.
int64_t parse_integer(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("bad integer value for " + flag + ": '" + value + "'");
  }
  return v;
}

double parse_probability(const std::string& flag, const std::string& value) {
  const double p = parse_number(flag, value);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(flag + " must be a probability in [0, 1]");
  }
  return p;
}

// Parses "sec:value[,sec:value...]" fault schedules; times must be
// strictly increasing within one flag (cross-flag ties are caught by the
// final ImpairmentConfig::validate()).
void parse_fault_schedule(const std::string& flag, const std::string& value,
                          std::vector<LinkFault>& out,
                          const std::function<LinkFault(double, const std::string&)>& make) {
  double prev = -1.0;
  for (const auto& entry : split(value, ',')) {
    const auto parts = split(entry, ':');
    if (parts.size() != 2) {
      throw std::invalid_argument("bad " + flag + " entry '" + entry +
                                  "' (want sec:value)");
    }
    const double at = parse_number(flag + " time", parts[0]);
    if (at < 0.0) throw std::invalid_argument(flag + " times must be >= 0");
    if (at <= prev) {
      throw std::invalid_argument(flag + " schedule must be strictly increasing");
    }
    prev = at;
    out.push_back(make(at, parts[1]));
  }
}

FlowGroup parse_group(const std::string& text) {
  const auto parts = split(text, ':');
  if (parts.size() != 3) {
    throw std::invalid_argument("bad --groups entry '" + text +
                                "' (want cca:count:rtt_ms)");
  }
  FlowGroup g;
  g.cca = parts[0];
  Rng probe(0);
  (void)make_cca(g.cca, probe);  // validate the name early
  g.count = static_cast<int>(parse_number("--groups count", parts[1]));
  if (g.count <= 0) throw std::invalid_argument("group count must be positive");
  const double rtt_ms = parse_number("--groups rtt", parts[2]);
  if (rtt_ms <= 0.0) throw std::invalid_argument("group RTT must be positive");
  g.rtt = TimeDelta::seconds_f(rtt_ms / 1e3);
  return g;
}

// Parses the size_spec field of --workload-class. '/' separates the
// sub-fields so the class spec itself can keep ':' as its separator.
SizeDist parse_size_spec(const std::string& text) {
  const auto parts = split(text, '/');
  SizeDist d;
  if (parts[0] == "pareto") {
    if (parts.size() != 4) {
      throw std::invalid_argument("bad size spec '" + text +
                                  "' (want pareto/<alpha>/<min_segs>/<max_segs>)");
    }
    d.kind = SizeDistKind::kPareto;
    d.pareto_alpha = parse_number("--workload-class pareto alpha", parts[1]);
    if (d.pareto_alpha <= 0.0) {
      throw std::invalid_argument("--workload-class pareto alpha must be positive");
    }
    const int64_t lo = parse_integer("--workload-class size min", parts[2]);
    const int64_t hi = parse_integer("--workload-class size max", parts[3]);
    if (lo < 1 || hi < lo) {
      throw std::invalid_argument(
          "--workload-class size bounds need 1 <= min <= max");
    }
    d.min_segments = static_cast<uint64_t>(lo);
    d.max_segments = static_cast<uint64_t>(hi);
  } else if (parts[0] == "lognormal") {
    if (parts.size() != 5) {
      throw std::invalid_argument(
          "bad size spec '" + text +
          "' (want lognormal/<mu>/<sigma>/<min_segs>/<max_segs>)");
    }
    d.kind = SizeDistKind::kLognormal;
    d.lognormal_mu = parse_number("--workload-class lognormal mu", parts[1]);
    d.lognormal_sigma = parse_number("--workload-class lognormal sigma", parts[2]);
    if (d.lognormal_sigma <= 0.0) {
      throw std::invalid_argument(
          "--workload-class lognormal sigma must be positive");
    }
    const int64_t lo = parse_integer("--workload-class size min", parts[3]);
    const int64_t hi = parse_integer("--workload-class size max", parts[4]);
    if (lo < 1 || hi < lo) {
      throw std::invalid_argument(
          "--workload-class size bounds need 1 <= min <= max");
    }
    d.min_segments = static_cast<uint64_t>(lo);
    d.max_segments = static_cast<uint64_t>(hi);
  } else if (parts[0] == "fixed") {
    if (parts.size() != 2) {
      throw std::invalid_argument("bad size spec '" + text +
                                  "' (want fixed/<segments>)");
    }
    d.kind = SizeDistKind::kFixed;
    const int64_t segs = parse_integer("--workload-class fixed size", parts[1]);
    if (segs < 1) {
      throw std::invalid_argument("--workload-class fixed size must be >= 1");
    }
    d.fixed_segments = static_cast<uint64_t>(segs);
    d.min_segments = d.fixed_segments;
    d.max_segments = d.fixed_segments;
  } else if (parts[0] == "cdf") {
    // The path may itself contain '/', so take everything after "cdf/".
    if (parts.size() < 2 || text.size() <= 4) {
      throw std::invalid_argument("bad size spec '" + text + "' (want cdf/<path>)");
    }
    d.kind = SizeDistKind::kEmpirical;
    d.empirical_path = text.substr(4);
    d.empirical = parse_empirical_cdf_file(d.empirical_path);
  } else {
    throw std::invalid_argument(
        "bad size spec '" + text +
        "' (want pareto/..., lognormal/..., fixed/... or cdf/<path>)");
  }
  return d;
}

// Parses the app_spec field of --workload-class into c.app / burst / gap.
void parse_app_spec(const std::string& text, WorkloadClass& c) {
  const auto parts = split(text, '/');
  if (parts[0] == "bulk") {
    if (parts.size() != 1) {
      throw std::invalid_argument("bad app spec '" + text + "' (bulk takes no args)");
    }
    c.app = AppModel::kBulk;
    return;
  }
  if (parts.size() != 3) {
    throw std::invalid_argument(
        "bad app spec '" + text +
        "' (want bulk, rr/<burst>/<think_ms>, web/<burst>/<gap_ms> or "
        "video/<chunk>/<interval_ms>)");
  }
  if (parts[0] == "rr") {
    c.app = AppModel::kRequestResponse;
  } else if (parts[0] == "web") {
    c.app = AppModel::kWebObject;
  } else if (parts[0] == "video") {
    c.app = AppModel::kVideoChunk;
  } else {
    throw std::invalid_argument(
        "bad app spec '" + text + "' (unknown model '" + parts[0] + "')");
  }
  const int64_t burst = parse_integer("--workload-class app burst", parts[1]);
  if (burst < 1) {
    throw std::invalid_argument("--workload-class app burst must be >= 1");
  }
  c.app_burst_segments = static_cast<uint64_t>(burst);
  const double ms = parse_number("--workload-class app time", parts[2]);
  if (ms < 0.0 || (parts[0] == "video" && ms <= 0.0)) {
    throw std::invalid_argument(parts[0] == "video"
                                    ? "--workload-class video interval must be positive"
                                    : "--workload-class app time must be >= 0");
  }
  c.app_gap = TimeDelta::seconds_f(ms / 1e3);
}

WorkloadClass parse_workload_class(const std::string& text) {
  const auto parts = split(text, ':');
  if (parts.size() != 6) {
    throw std::invalid_argument(
        "bad --workload-class '" + text +
        "' (want name:weight:cca:rtt_ms:size_spec:app_spec)");
  }
  WorkloadClass c;
  c.name = parts[0];
  if (c.name.empty()) {
    throw std::invalid_argument("--workload-class name must be non-empty");
  }
  c.weight = parse_number("--workload-class weight", parts[1]);
  if (!(c.weight > 0.0)) {
    throw std::invalid_argument("--workload-class weight must be positive");
  }
  c.cca = parts[2];
  Rng probe(0);
  (void)make_cca(c.cca, probe);  // validate the name early
  const double rtt_ms = parse_number("--workload-class rtt", parts[3]);
  if (rtt_ms <= 0.0) {
    throw std::invalid_argument("--workload-class RTT must be positive");
  }
  c.rtt = TimeDelta::seconds_f(rtt_ms / 1e3);
  c.size = parse_size_spec(parts[4]);
  parse_app_spec(parts[5], c);
  return c;
}

}  // namespace

std::string cli_usage() {
  return "usage: ccas_run --groups=cca:count:rtt_ms[,...] [options]\n"
         "       ccas_run --workload=poisson:<per_sec> --workload-class=... "
         "[options]\n"
         "  --setting=edge|core   scenario preset (default core)\n"
         "  --rate=<mbps>         bottleneck rate override\n"
         "  --buffer=<bytes>      buffer size override\n"
         "  --qdisc=<name>        bottleneck queue discipline: drop-tail\n"
         "                        (default), codel, fq-codel, pie, red\n"
         "  --ecn                 mark instead of drop (AQM qdiscs only)\n"
         "  --codel=<target_ms>:<interval_ms>  CoDel / FQ-CoDel knobs\n"
         "  --fq=<flows>:<quantum_bytes>       FQ-CoDel flow table and quantum\n"
         "  --pie=<target_ms>:<tupdate_ms>     PIE knobs\n"
         "  --red=<min_bytes>:<max_bytes>[:<max_p>]  RED thresholds (0:0 = auto)\n"
         "  --workload=poisson:<per_sec>|fixed:<per_sec>\n"
         "                        open-loop session arrivals (with or without\n"
         "                        --groups; groups then run as background flows)\n"
         "  --workload-class=<name>:<weight>:<cca>:<rtt_ms>:<size>:<app>\n"
         "                        repeatable; weights must sum to 1\n"
         "                        size: pareto/<alpha>/<min>/<max> |\n"
         "                              lognormal/<mu>/<sigma>/<min>/<max> |\n"
         "                              fixed/<segments> | cdf/<path>\n"
         "                        app:  bulk | rr/<burst>/<think_ms> |\n"
         "                              web/<burst>/<gap_ms> |\n"
         "                              video/<chunk>/<interval_ms>\n"
         "  --workload-max=<n>    admission cap on concurrent workload flows\n"
         "  --stagger=<sec> --warmup=<sec> --measure=<sec>\n"
         "  --seed=<n>            RNG seed (default 1)\n"
         "  --jitter=<microsec>   forward-path jitter (default 500)\n"
         "  --loss=<p>            i.i.d. exogenous loss probability\n"
         "  --ge-loss=<p_gb>:<p_bg>:<loss_bad>[:<loss_good>]\n"
         "                        Gilbert-Elliott bursty loss chain\n"
         "  --dup=<p>             duplication probability\n"
         "  --reorder=<p>:<max_ms> delay-swap reordering (bounded window)\n"
         "  --link-jitter=<microsec>[:uniform|normal]\n"
         "                        per-packet wire jitter (impairment stage)\n"
         "  --flap=<down_s>:<up_s>[,...]   link down/up fault windows\n"
         "  --rate-change=<sec>:<mbps>[,...]   scheduled rate faults\n"
         "  --buffer-change=<sec>:<bytes>[,...] scheduled buffer faults\n"
         "  --no-sack --no-delack --no-gro\n"
         "  --rto-slack=<microsec> coalesce RTO re-arms within this slack\n"
         "                        (0 = exact timing, the default)\n"
         "  --perf                print the kernel profiler summary per cell\n"
         "  --trace=<sec>         time-series sampling interval (0 = off)\n"
         "  --csv=<prefix>        write trace CSVs with this prefix\n"
         "  --seeds=<n,n,...>     run one cell per seed (parallel sweep)\n"
         "  --jobs=<n>            worker threads (default: hardware concurrency)\n"
         "  --shards=<n>          event domains per cell (default 1, or the\n"
         "                        CCAS_SHARDS env); any n is byte-identical\n"
         "  --cache-dir=<path>    enable the on-disk result cache\n"
         "  --no-cache            bypass the cache even if a dir is set\n"
         "  --cell-timeout=<sec>  wall-clock watchdog per cell attempt\n"
         "  --cell-events=<n>     simulated-event ceiling per cell attempt\n"
         "  --cell-rss=<mb>       estimated-peak-RSS ceiling per cell attempt\n"
         "  --retries=<n>         retries for transient failures, 0-16 (default 2)\n"
         "  --max-failures=<n>    abort the sweep after n terminal cell failures\n"
         "  --resume=<dir>        resumable manifest; journaled-ok cells are skipped\n"
         "  --quarantine=<dir>    where failed cells write .repro replay files\n"
         "  --fail-fast           abort on the first failure and exit nonzero\n"
         "Exit codes: 0 ok, 1 usage/config, 2 deterministic cell failure,\n"
         "            3 budget exceeded, 4 transient failure after retries\n"
         "CCAs: newreno, cubic, bbr, bbr2, vegas, copa (plus registry extensions)\n";
}

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions opts;
  opts.spec.scenario = Scenario::core_scale();
  opts.sweep = sweep::sweep_options_from_env();
  // Environment default for sharding; an explicit --shards flag wins.
  if (const char* env = std::getenv("CCAS_SHARDS"); env != nullptr && *env != '\0') {
    const int64_t v = parse_integer("CCAS_SHARDS", env);
    if (v <= 0) throw std::invalid_argument("CCAS_SHARDS needs a positive integer");
    opts.spec.shards = static_cast<int>(v);
  }
  bool have_groups = false;
  bool have_rate = false;
  bool have_buffer = false;
  std::string rate_value;
  std::string buffer_value;

  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument '" + arg + "'");
    }
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    auto need_value = [&] {
      if (value.empty()) throw std::invalid_argument(key + " needs a value");
    };

    if (key == "--setting") {
      need_value();
      if (value == "edge") {
        opts.spec.scenario = Scenario::edge_scale();
      } else if (value == "core") {
        opts.spec.scenario = Scenario::core_scale();
      } else {
        throw std::invalid_argument("--setting must be edge or core");
      }
    } else if (key == "--rate") {
      need_value();
      have_rate = true;
      rate_value = value;
    } else if (key == "--buffer") {
      need_value();
      have_buffer = true;
      buffer_value = value;
    } else if (key == "--qdisc") {
      need_value();
      opts.spec.scenario.net.qdisc.kind = qdisc_kind_from_name(value);
    } else if (key == "--ecn") {
      if (!value.empty()) throw std::invalid_argument("--ecn takes no value");
      opts.spec.scenario.net.qdisc.ecn = true;
    } else if (key == "--codel") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument("bad --codel '" + value +
                                    "' (want target_ms:interval_ms)");
      }
      QdiscConfig& qd = opts.spec.scenario.net.qdisc;
      const double target_ms = parse_number("--codel target", parts[0]);
      const double interval_ms = parse_number("--codel interval", parts[1]);
      if (target_ms <= 0.0 || interval_ms <= 0.0) {
        throw std::invalid_argument("--codel target and interval must be positive");
      }
      qd.codel_target = TimeDelta::seconds_f(target_ms / 1e3);
      qd.codel_interval = TimeDelta::seconds_f(interval_ms / 1e3);
    } else if (key == "--fq") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument("bad --fq '" + value +
                                    "' (want flows:quantum_bytes)");
      }
      QdiscConfig& qd = opts.spec.scenario.net.qdisc;
      const int64_t flows = parse_integer("--fq flows", parts[0]);
      const int64_t quantum = parse_integer("--fq quantum", parts[1]);
      if (flows <= 0) throw std::invalid_argument("--fq flows must be positive");
      if (quantum <= 0) throw std::invalid_argument("--fq quantum must be positive");
      qd.fq_flows = static_cast<uint32_t>(flows);
      qd.fq_quantum = static_cast<int64_t>(quantum);
    } else if (key == "--pie") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument("bad --pie '" + value +
                                    "' (want target_ms:tupdate_ms)");
      }
      QdiscConfig& qd = opts.spec.scenario.net.qdisc;
      const double target_ms = parse_number("--pie target", parts[0]);
      const double tupdate_ms = parse_number("--pie tupdate", parts[1]);
      if (target_ms <= 0.0) {
        throw std::invalid_argument("--pie target must be positive");
      }
      qd.pie_target = TimeDelta::seconds_f(target_ms / 1e3);
      // Non-positive tupdate flows into QdiscConfig::validate(), which
      // rejects it only when the PIE qdisc is actually selected.
      qd.pie_tupdate = TimeDelta::seconds_f(tupdate_ms / 1e3);
    } else if (key == "--red") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 2 && parts.size() != 3) {
        throw std::invalid_argument("bad --red '" + value +
                                    "' (want min_bytes:max_bytes[:max_p])");
      }
      QdiscConfig& qd = opts.spec.scenario.net.qdisc;
      const int64_t min_b = parse_integer("--red min", parts[0]);
      const int64_t max_b = parse_integer("--red max", parts[1]);
      if (min_b < 0 || max_b < 0) {
        throw std::invalid_argument("--red thresholds must be >= 0");
      }
      qd.red_min_bytes = min_b;
      qd.red_max_bytes = max_b;
      if (parts.size() == 3) {
        qd.red_max_p = parse_probability("--red max_p", parts[2]);
      }
    } else if (key == "--groups") {
      need_value();
      for (const auto& g : split(value, ',')) {
        opts.spec.groups.push_back(parse_group(g));
      }
      have_groups = true;
    } else if (key == "--workload") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument("bad --workload '" + value +
                                    "' (want poisson:<per_sec> or fixed:<per_sec>)");
      }
      WorkloadSpec& wl = opts.spec.workload;
      if (parts[0] == "poisson") {
        wl.arrival = ArrivalKind::kPoisson;
      } else if (parts[0] == "fixed") {
        wl.arrival = ArrivalKind::kDeterministic;
      } else {
        throw std::invalid_argument("--workload arrival process must be poisson "
                                    "or fixed");
      }
      wl.arrivals_per_sec = parse_number("--workload rate", parts[1]);
      if (!(wl.arrivals_per_sec > 0.0) || !std::isfinite(wl.arrivals_per_sec)) {
        throw std::invalid_argument(
            "--workload arrival rate must be positive and finite");
      }
    } else if (key == "--workload-class") {
      need_value();
      opts.spec.workload.classes.push_back(parse_workload_class(value));
    } else if (key == "--workload-max") {
      need_value();
      const int64_t v = parse_integer(key, value);
      // 0 means "unlimited" internally; that's the *default* when the flag
      // is absent. An explicit --workload-max=0 is a typo'd admission cap.
      if (v <= 0) throw std::invalid_argument("--workload-max must be positive");
      opts.spec.workload.max_concurrent = static_cast<uint64_t>(v);
    } else if (key == "--stagger") {
      need_value();
      opts.spec.scenario.stagger = TimeDelta::seconds_f(parse_number(key, value));
    } else if (key == "--warmup") {
      need_value();
      opts.spec.scenario.warmup = TimeDelta::seconds_f(parse_number(key, value));
    } else if (key == "--measure") {
      need_value();
      opts.spec.scenario.measure = TimeDelta::seconds_f(parse_number(key, value));
    } else if (key == "--seed") {
      need_value();
      const int64_t v = parse_integer(key, value);
      if (v < 0) throw std::invalid_argument("--seed must be >= 0");
      opts.spec.seed = static_cast<uint64_t>(v);
    } else if (key == "--jitter") {
      need_value();
      opts.spec.scenario.net.jitter =
          TimeDelta::seconds_f(parse_number(key, value) / 1e6);
    } else if (key == "--loss") {
      need_value();
      opts.spec.scenario.net.impairments.loss = parse_probability(key, value);
    } else if (key == "--ge-loss") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 3 && parts.size() != 4) {
        throw std::invalid_argument(
            "bad --ge-loss '" + value +
            "' (want p_good_to_bad:p_bad_to_good:loss_bad[:loss_good])");
      }
      GilbertElliottConfig& ge = opts.spec.scenario.net.impairments.ge;
      ge.p_good_to_bad = parse_probability("--ge-loss p_good_to_bad", parts[0]);
      ge.p_bad_to_good = parse_probability("--ge-loss p_bad_to_good", parts[1]);
      ge.loss_bad = parse_probability("--ge-loss loss_bad", parts[2]);
      ge.loss_good =
          parts.size() == 4 ? parse_probability("--ge-loss loss_good", parts[3]) : 0.0;
      if (ge.p_good_to_bad > 0.0 && ge.p_bad_to_good <= 0.0) {
        throw std::invalid_argument(
            "--ge-loss p_bad_to_good must be positive (the bad state must be "
            "leavable)");
      }
    } else if (key == "--dup") {
      need_value();
      opts.spec.scenario.net.impairments.duplicate = parse_probability(key, value);
    } else if (key == "--reorder") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument("bad --reorder '" + value +
                                    "' (want probability:max_delay_ms)");
      }
      ImpairmentConfig& imp = opts.spec.scenario.net.impairments;
      imp.reorder = parse_probability("--reorder probability", parts[0]);
      const double ms = parse_number("--reorder max_delay", parts[1]);
      if (ms <= 0.0) {
        throw std::invalid_argument("--reorder max delay must be positive");
      }
      imp.reorder_delay = TimeDelta::seconds_f(ms / 1e3);
    } else if (key == "--link-jitter") {
      need_value();
      const auto parts = split(value, ':');
      if (parts.size() > 2) {
        throw std::invalid_argument("bad --link-jitter '" + value +
                                    "' (want microsec[:uniform|normal])");
      }
      ImpairmentConfig& imp = opts.spec.scenario.net.impairments;
      const double us = parse_number("--link-jitter", parts[0]);
      if (us < 0.0) throw std::invalid_argument("--link-jitter must be >= 0");
      imp.jitter = TimeDelta::seconds_f(us / 1e6);
      if (parts.size() == 2) {
        if (parts[1] == "uniform") {
          imp.jitter_dist = ImpairmentConfig::JitterDist::kUniform;
        } else if (parts[1] == "normal") {
          imp.jitter_dist = ImpairmentConfig::JitterDist::kNormal;
        } else {
          throw std::invalid_argument(
              "--link-jitter distribution must be uniform or normal");
        }
      }
    } else if (key == "--flap") {
      need_value();
      // Each entry is one down:up window; windows must not overlap.
      double prev = -1.0;
      for (const auto& entry : split(value, ',')) {
        const auto parts = split(entry, ':');
        if (parts.size() != 2) {
          throw std::invalid_argument("bad --flap entry '" + entry +
                                      "' (want down_sec:up_sec)");
        }
        const double down = parse_number("--flap down", parts[0]);
        const double up = parse_number("--flap up", parts[1]);
        if (down < 0.0) throw std::invalid_argument("--flap times must be >= 0");
        if (up <= down) {
          throw std::invalid_argument("--flap up time must follow its down time");
        }
        if (down <= prev) {
          throw std::invalid_argument("--flap schedule must be strictly increasing");
        }
        prev = up;
        LinkFault d;
        d.at = Time::seconds_f(down);
        d.kind = LinkFault::Kind::kDown;
        LinkFault u;
        u.at = Time::seconds_f(up);
        u.kind = LinkFault::Kind::kUp;
        opts.spec.scenario.net.impairments.faults.push_back(d);
        opts.spec.scenario.net.impairments.faults.push_back(u);
      }
    } else if (key == "--rate-change") {
      need_value();
      parse_fault_schedule(key, value, opts.spec.scenario.net.impairments.faults,
                           [&key](double at, const std::string& v) {
                             const double mbps = parse_number(key + " rate", v);
                             if (mbps <= 0.0) {
                               throw std::invalid_argument(
                                   "--rate-change rate must be positive");
                             }
                             LinkFault f;
                             f.at = Time::seconds_f(at);
                             f.kind = LinkFault::Kind::kRate;
                             f.rate = DataRate::bps_f(mbps * 1e6);
                             return f;
                           });
    } else if (key == "--buffer-change") {
      need_value();
      parse_fault_schedule(key, value, opts.spec.scenario.net.impairments.faults,
                           [&key](double at, const std::string& v) {
                             const int64_t bytes = parse_integer(key + " bytes", v);
                             if (bytes <= 0) {
                               throw std::invalid_argument(
                                   "--buffer-change bytes must be positive");
                             }
                             LinkFault f;
                             f.at = Time::seconds_f(at);
                             f.kind = LinkFault::Kind::kBuffer;
                             f.buffer_bytes = bytes;
                             return f;
                           });
    } else if (key == "--no-sack") {
      opts.spec.tcp.sack_enabled = false;
    } else if (key == "--no-delack") {
      opts.spec.receiver.delayed_ack = false;
    } else if (key == "--no-gro") {
      opts.spec.receiver.gro_enabled = false;
    } else if (key == "--rto-slack") {
      need_value();
      const double us = parse_number(key, value);
      if (us < 0.0) throw std::invalid_argument("--rto-slack must be >= 0");
      opts.spec.tcp.rto_rearm_slack = TimeDelta::seconds_f(us / 1e6);
    } else if (key == "--perf") {
      opts.perf = true;
    } else if (key == "--trace") {
      need_value();
      opts.spec.trace_interval = TimeDelta::seconds_f(parse_number(key, value));
    } else if (key == "--csv") {
      need_value();
      opts.csv_prefix = value;
    } else if (key == "--seeds") {
      need_value();
      for (const auto& s : split(value, ',')) {
        const int64_t v = parse_integer(key, s);
        if (v < 0) throw std::invalid_argument("--seeds entries must be >= 0");
        opts.seeds.push_back(static_cast<uint64_t>(v));
      }
      if (opts.seeds.empty()) {
        throw std::invalid_argument("--seeds needs at least one seed");
      }
    } else if (key == "--jobs") {
      need_value();
      const int64_t v = parse_integer(key, value);
      // 0 is not "hardware concurrency" here: that's the *default* when
      // the flag is absent. An explicit --jobs=0 is a typo'd request for
      // zero workers and must not silently run at full parallelism.
      if (v <= 0) throw std::invalid_argument("--jobs needs a positive integer");
      opts.sweep.jobs = static_cast<int>(v);
    } else if (key == "--shards") {
      need_value();
      const int64_t v = parse_integer(key, value);
      // Like --jobs: an explicit --shards=0 is a typo, not "serial".
      // --shards composes with --jobs (jobs cells in flight, each sharded
      // over its own domains); results stay byte-identical either way.
      if (v <= 0) throw std::invalid_argument("--shards needs a positive integer");
      opts.spec.shards = static_cast<int>(v);
    } else if (key == "--cache-dir") {
      need_value();
      opts.sweep.cache_dir = value;
    } else if (key == "--no-cache") {
      opts.sweep.use_cache = false;
    } else if (key == "--cell-timeout") {
      need_value();
      const double sec = parse_number(key, value);
      if (sec <= 0.0) {
        throw std::invalid_argument("--cell-timeout must be positive");
      }
      opts.sweep.cell_timeout = TimeDelta::seconds_f(sec);
      if (opts.sweep.cell_timeout <= TimeDelta::zero()) {
        throw std::invalid_argument("--cell-timeout rounds to zero nanoseconds");
      }
    } else if (key == "--cell-events") {
      need_value();
      const int64_t v = parse_integer(key, value);
      // 0 means "no ceiling" internally; an explicit --cell-events=0 is a
      // typo'd request for a zero budget and must not silently disable it.
      if (v <= 0) throw std::invalid_argument("--cell-events must be positive");
      opts.sweep.max_cell_events = static_cast<uint64_t>(v);
    } else if (key == "--cell-rss") {
      need_value();
      const double mb = parse_number(key, value);
      if (mb <= 0.0) throw std::invalid_argument("--cell-rss must be positive");
      opts.sweep.max_cell_rss_bytes = static_cast<int64_t>(mb * 1e6);
      if (opts.sweep.max_cell_rss_bytes <= 0) {
        throw std::invalid_argument("--cell-rss rounds to zero bytes");
      }
    } else if (key == "--retries") {
      need_value();
      const int64_t v = parse_integer(key, value);
      if (v < 0 || v > 16) {
        throw std::invalid_argument("--retries must be in [0, 16]");
      }
      opts.sweep.retries = static_cast<int>(v);
    } else if (key == "--max-failures") {
      need_value();
      const int64_t v = parse_integer(key, value);
      if (v <= 0) {
        throw std::invalid_argument(
            "--max-failures must be positive (use --fail-fast to abort on the "
            "first failure)");
      }
      opts.sweep.max_failures = static_cast<int>(v);
    } else if (key == "--resume") {
      need_value();
      opts.sweep.resume_dir = value;
    } else if (key == "--quarantine") {
      need_value();
      opts.sweep.quarantine_dir = value;
    } else if (key == "--fail-fast") {
      if (!value.empty()) {
        throw std::invalid_argument("--fail-fast takes no value");
      }
      opts.sweep.fail_fast = true;
    } else {
      throw std::invalid_argument("unknown flag '" + key + "'\n" + cli_usage());
    }
  }

  // Overrides are applied after --setting so order does not matter.
  if (have_rate) {
    opts.spec.scenario.net.bottleneck_rate =
        DataRate::bps_f(parse_number("--rate", rate_value) * 1e6);
  }
  if (have_buffer) {
    opts.spec.scenario.net.buffer_bytes =
        static_cast<int64_t>(parse_number("--buffer", buffer_value));
    if (opts.spec.scenario.net.buffer_bytes <= 0) {
      throw std::invalid_argument("--buffer must be positive");
    }
  }
  if (!opts.spec.workload.classes.empty() &&
      opts.spec.workload.arrivals_per_sec <= 0.0) {
    throw std::invalid_argument(
        "--workload-class requires --workload=<process>:<per_sec>");
  }
  if (opts.spec.workload.arrivals_per_sec > 0.0 &&
      opts.spec.workload.classes.empty()) {
    throw std::invalid_argument(
        "--workload requires at least one --workload-class");
  }
  if (!have_groups && !opts.spec.workload.enabled()) {
    throw std::invalid_argument("--groups or --workload is required\n" +
                                cli_usage());
  }
  if (opts.sweep.fail_fast && opts.sweep.max_failures > 0) {
    throw std::invalid_argument(
        "--fail-fast and --max-failures are mutually exclusive (--fail-fast "
        "already aborts on the first failure)");
  }
  if (opts.sweep.fail_fast && !opts.sweep.resume_dir.empty()) {
    throw std::invalid_argument(
        "--fail-fast aborts without journaling completed cells consistently; "
        "use --max-failures=1 together with --resume instead");
  }
  // Faults from different flags (--flap, --rate-change, --buffer-change)
  // merge into one schedule; validate() then rejects cross-flag ties.
  auto& faults = opts.spec.scenario.net.impairments.faults;
  std::stable_sort(faults.begin(), faults.end(),
                   [](const LinkFault& a, const LinkFault& b) { return a.at < b.at; });
  opts.spec.scenario.net.impairments.validate();
  opts.spec.scenario.net.qdisc.validate();
  opts.spec.workload.validate();  // weight sum, per-class params
  return opts;
}

std::string fleet_cli_usage() {
  return "usage: ccas_fleet --fleet-dir=<dir> --groups=... [options]\n"
         "       ccas_fleet --fleet-dir=<dir> --report-only\n"
         "Runs one fleet worker against a shared job store: independent\n"
         "ccas_fleet processes pointed at the same --fleet-dir divide the\n"
         "grid between them via per-cell leases and converge on results\n"
         "byte-identical to a serial ccas_run of the same flags.\n"
         "  --fleet-dir=<dir>     the shared job store (required)\n"
         "  --lease-ttl=<sec>     per-cell lease TTL (default 30); a worker\n"
         "                        killed mid-cell is reclaimed after this\n"
         "  --heartbeat=<sec>     lease renewal interval (default TTL/3)\n"
         "  --fleet-wait=<sec>    give up (exit 5) after this long without\n"
         "                        any worker journaling progress (0 = wait\n"
         "                        forever, the default)\n"
         "  --worker-id=<id>      stable worker name (default w<pid>)\n"
         "  --report-only         render the report from the store without\n"
         "                        joining as a worker; takes no grid flags\n"
         "All other flags describe the grid and are shared with ccas_run\n"
         "(--groups, --seeds, --setting, budgets, --retries, ...); every\n"
         "worker of one job must pass the same grid flags. --trace, --csv,\n"
         "--resume, --quarantine and --fail-fast do not apply to fleet jobs\n"
         "and are rejected.\n"
         "Exit codes: 0 ok, 1 usage/config/salt mismatch, 2 deterministic\n"
         "            cell failure, 3 budget exceeded, 4 transient failure\n"
         "            after retries, 5 job incomplete (tools/EXIT_CODES.md)\n";
}

FleetCli parse_fleet_cli(const std::vector<std::string>& args) {
  FleetCli cli;
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    auto need_value = [&] {
      if (value.empty()) throw std::invalid_argument(key + " needs a value");
    };
    auto positive_ms = [&]() -> uint64_t {
      need_value();
      const double sec = parse_number(key, value);
      if (sec <= 0.0) throw std::invalid_argument(key + " must be positive");
      const auto ms = static_cast<uint64_t>(sec * 1000.0);
      if (ms == 0) {
        throw std::invalid_argument(key + " rounds to zero milliseconds");
      }
      return ms;
    };

    if (key == "--fleet-dir") {
      need_value();
      cli.fleet.fleet_dir = value;
    } else if (key == "--lease-ttl") {
      cli.fleet.lease_ttl_ms = positive_ms();
    } else if (key == "--heartbeat") {
      cli.fleet.heartbeat_ms = positive_ms();
    } else if (key == "--fleet-wait") {
      need_value();
      const double sec = parse_number(key, value);
      if (sec < 0.0) throw std::invalid_argument("--fleet-wait must be >= 0");
      cli.fleet.wait_ms = static_cast<uint64_t>(sec * 1000.0);
    } else if (key == "--worker-id") {
      need_value();
      for (const char c : value) {
        if (c == '/' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
          throw std::invalid_argument(
              "--worker-id must not contain '/' or whitespace (it names "
              "lease files and journal fields)");
        }
      }
      cli.fleet.worker_id = value;
    } else if (key == "--report-only") {
      if (!value.empty()) {
        throw std::invalid_argument("--report-only takes no value");
      }
      cli.fleet.report_only = true;
    } else {
      rest.push_back(arg);
    }
  }

  if (cli.fleet.fleet_dir.empty()) {
    throw std::invalid_argument("--fleet-dir=<dir> is required\n" +
                                fleet_cli_usage());
  }
  if (cli.fleet.heartbeat_ms != 0 &&
      cli.fleet.heartbeat_ms >= cli.fleet.lease_ttl_ms) {
    throw std::invalid_argument(
        "--heartbeat must be shorter than --lease-ttl (a heartbeat that "
        "fires after expiry cannot keep the lease)");
  }
  if (cli.fleet.report_only) {
    if (!rest.empty()) {
      throw std::invalid_argument(
          "--report-only reads the grid from the store's job.spec and takes "
          "no grid flags (got '" + rest.front() + "')");
    }
    return cli;
  }

  cli.run = parse_cli(rest);
  // A fleet job must be a pure grid of cacheable cells: the store's
  // results and journal ARE the output, so flags that add side outputs or
  // a second manifest cannot mean anything coherent across N processes.
  if (cli.run.spec.trace_interval > TimeDelta::zero()) {
    throw std::invalid_argument(
        "--trace does not apply to fleet jobs: traced cells are not "
        "cacheable, and the shared results store is the fleet's output");
  }
  if (!cli.run.csv_prefix.empty()) {
    throw std::invalid_argument("--csv does not apply to fleet jobs");
  }
  if (!cli.run.sweep.resume_dir.empty()) {
    throw std::invalid_argument(
        "--resume does not apply to fleet jobs: the fleet store is itself "
        "the resumable manifest (point --fleet-dir at it again to resume)");
  }
  if (!cli.run.sweep.quarantine_dir.empty()) {
    throw std::invalid_argument(
        "--quarantine does not apply to fleet jobs: failed cells write "
        ".repro files into <fleet-dir>/quarantine/");
  }
  if (cli.run.sweep.fail_fast) {
    throw std::invalid_argument(
        "--fail-fast does not apply to fleet jobs: one worker cannot abort "
        "the others (use --fleet-wait to bound a stalled job)");
  }
  return cli;
}

namespace {

std::string render_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Decimal text that reproduces `target` exactly after the flag's
// parse-and-truncate transform. %.17g round-trips the double itself, but
// TimeDelta::seconds_f / DataRate::bps_f truncate toward zero, so the
// printed value is nudged by ULPs until the transform lands on the exact
// integer. The transforms are monotonic with sub-integer granularity at
// every realistic magnitude, so a handful of nudges always converges.
template <typename Transform>
std::string render_exact(double start, int64_t target, Transform&& apply) {
  double v = start;
  for (int i = 0; i < 64; ++i) {
    std::string text = render_value(v);
    const int64_t got = apply(std::strtod(text.c_str(), nullptr));
    if (got == target) return text;
    v = std::nextafter(v, got < target ? std::numeric_limits<double>::infinity()
                                       : -std::numeric_limits<double>::infinity());
  }
  return render_value(start);
}

std::string render_flag_seconds(TimeDelta d) {
  if (d.ns() == 0) return "0";
  return render_exact(d.sec(), d.ns(),
                      [](double v) { return TimeDelta::seconds_f(v).ns(); });
}

std::string render_flag_time(Time t) {
  if (t.ns() == 0) return "0";
  return render_exact(t.sec(), t.ns(),
                      [](double v) { return Time::seconds_f(v).ns(); });
}

// Flag value expressed in `per_second`-ths of a second (1e3 = ms, 1e6 = us).
std::string render_flag_scaled(TimeDelta d, double per_second) {
  if (d.ns() == 0) return "0";
  return render_exact(static_cast<double>(d.ns()) / 1e9 * per_second, d.ns(),
                      [per_second](double v) {
                        return TimeDelta::seconds_f(v / per_second).ns();
                      });
}

std::string render_flag_mbps(DataRate r) {
  return render_exact(r.mbps_f(), r.bits_per_sec(), [](double v) {
    return DataRate::bps_f(v * 1e6).bits_per_sec();
  });
}

}  // namespace

SpecCliRendering spec_to_cli(const ExperimentSpec& spec) {
  SpecCliRendering out;
  auto flag = [&out](const std::string& key, const std::string& value) {
    out.args.push_back(key + "=" + value);
  };
  auto note = [&out](std::string text) { out.notes.push_back(std::move(text)); };

  const Scenario& sc = spec.scenario;
  const Scenario preset = Scenario::for_setting(sc.setting);
  flag("--setting", sc.setting == Setting::kEdgeScale ? "edge" : "core");

  std::string groups;
  for (const FlowGroup& g : spec.groups) {
    if (!groups.empty()) groups += ",";
    groups += g.cca + ":" + std::to_string(g.count) + ":" +
              render_flag_scaled(g.rtt, 1e3);
  }
  // Workload-only specs have no groups; "--groups=" would not re-parse.
  if (!groups.empty()) flag("--groups", groups);

  if (sc.net.bottleneck_rate != preset.net.bottleneck_rate) {
    flag("--rate", render_flag_mbps(sc.net.bottleneck_rate));
  }
  if (sc.net.buffer_bytes != preset.net.buffer_bytes) {
    flag("--buffer", std::to_string(sc.net.buffer_bytes));
  }
  flag("--stagger", render_flag_seconds(sc.stagger));
  flag("--warmup", render_flag_seconds(sc.warmup));
  flag("--measure", render_flag_seconds(sc.measure));
  flag("--seed", std::to_string(spec.seed));
  if (sc.net.jitter != preset.net.jitter) {
    flag("--jitter", render_flag_scaled(sc.net.jitter, 1e6));
  }

  const QdiscConfig& qd = sc.net.qdisc;
  const QdiscConfig qd_defaults;
  if (qd.enabled()) {
    flag("--qdisc", qdisc_kind_name(qd.kind));
    if (qd.ecn) out.args.emplace_back("--ecn");
    const bool codel_like =
        qd.kind == QdiscKind::kCoDel || qd.kind == QdiscKind::kFqCoDel;
    if (codel_like && (qd.codel_target != qd_defaults.codel_target ||
                       qd.codel_interval != qd_defaults.codel_interval)) {
      flag("--codel", render_flag_scaled(qd.codel_target, 1e3) + ":" +
                          render_flag_scaled(qd.codel_interval, 1e3));
    }
    if (qd.kind == QdiscKind::kFqCoDel &&
        (qd.fq_flows != qd_defaults.fq_flows ||
         qd.fq_quantum != qd_defaults.fq_quantum)) {
      flag("--fq", std::to_string(qd.fq_flows) + ":" +
                       std::to_string(qd.fq_quantum));
    }
    if (qd.kind == QdiscKind::kPie && (qd.pie_target != qd_defaults.pie_target ||
                                       qd.pie_tupdate != qd_defaults.pie_tupdate)) {
      flag("--pie", render_flag_scaled(qd.pie_target, 1e3) + ":" +
                        render_flag_scaled(qd.pie_tupdate, 1e3));
    }
    if (qd.kind == QdiscKind::kPie &&
        (qd.pie_alpha != qd_defaults.pie_alpha ||
         qd.pie_beta != qd_defaults.pie_beta ||
         qd.pie_mark_ecnth != qd_defaults.pie_mark_ecnth)) {
      note("pie alpha/beta/mark_ecnth overrides have no flag");
    }
    if (qd.kind == QdiscKind::kRed &&
        (qd.red_min_bytes != qd_defaults.red_min_bytes ||
         qd.red_max_bytes != qd_defaults.red_max_bytes ||
         qd.red_max_p != qd_defaults.red_max_p)) {
      std::string red = std::to_string(qd.red_min_bytes) + ":" +
                        std::to_string(qd.red_max_bytes);
      if (qd.red_max_p != qd_defaults.red_max_p) {
        red += ":" + render_value(qd.red_max_p);
      }
      flag("--red", red);
    }
    if (qd.kind == QdiscKind::kRed &&
        (qd.red_wq != qd_defaults.red_wq || qd.red_gentle != qd_defaults.red_gentle)) {
      note("red wq/gentle overrides have no flag");
    }
    if (qd.seed != 0) note("qdisc seed override has no flag");
  }

  const ImpairmentConfig& imp = sc.net.impairments;
  const ImpairmentConfig imp_defaults;
  if (imp.loss > 0.0) flag("--loss", render_value(imp.loss));
  if (imp.ge.p_good_to_bad != 0.0 || imp.ge.p_bad_to_good != 0.0 ||
      imp.ge.loss_bad != 0.0 || imp.ge.loss_good != 0.0) {
    std::string ge = render_value(imp.ge.p_good_to_bad) + ":" +
                     render_value(imp.ge.p_bad_to_good) + ":" +
                     render_value(imp.ge.loss_bad);
    if (imp.ge.loss_good != 0.0) ge += ":" + render_value(imp.ge.loss_good);
    flag("--ge-loss", ge);
  }
  if (imp.duplicate > 0.0) flag("--dup", render_value(imp.duplicate));
  if (imp.reorder > 0.0) {
    flag("--reorder", render_value(imp.reorder) + ":" +
                          render_flag_scaled(imp.reorder_delay, 1e3));
  } else if (imp.reorder_delay != imp_defaults.reorder_delay) {
    note("inert reorder_delay override (reorder probability is zero)");
  }
  if (imp.jitter > TimeDelta::zero()) {
    std::string j = render_flag_scaled(imp.jitter, 1e6);
    if (imp.jitter_dist == ImpairmentConfig::JitterDist::kNormal) j += ":normal";
    flag("--link-jitter", j);
  } else if (imp.jitter_dist != imp_defaults.jitter_dist) {
    note("inert link-jitter distribution override (jitter is zero)");
  }

  // The fault schedule back to the flags that built it: kDown/kUp pair
  // into --flap windows, kRate/kBuffer become their own schedules. Faults
  // are sorted by time, so each per-flag schedule stays strictly
  // increasing and re-parses cleanly.
  std::string flap;
  std::string rate_changes;
  std::string buffer_changes;
  const LinkFault* pending_down = nullptr;
  for (const LinkFault& f : imp.faults) {
    switch (f.kind) {
      case LinkFault::Kind::kDown:
        if (pending_down != nullptr) {
          note("unpaired link-down fault at " +
               render_flag_time(pending_down->at) + "s is not renderable");
        }
        pending_down = &f;
        break;
      case LinkFault::Kind::kUp:
        if (pending_down == nullptr) {
          note("unpaired link-up fault at " + render_flag_time(f.at) +
               "s is not renderable");
          break;
        }
        if (!flap.empty()) flap += ",";
        flap += render_flag_time(pending_down->at) + ":" + render_flag_time(f.at);
        pending_down = nullptr;
        break;
      case LinkFault::Kind::kRate:
        if (!rate_changes.empty()) rate_changes += ",";
        rate_changes += render_flag_time(f.at) + ":" + render_flag_mbps(f.rate);
        break;
      case LinkFault::Kind::kBuffer:
        if (!buffer_changes.empty()) buffer_changes += ",";
        buffer_changes +=
            render_flag_time(f.at) + ":" + std::to_string(f.buffer_bytes);
        break;
    }
  }
  if (pending_down != nullptr) {
    note("unpaired link-down fault at " + render_flag_time(pending_down->at) +
         "s is not renderable");
  }
  if (!flap.empty()) flag("--flap", flap);
  if (!rate_changes.empty()) flag("--rate-change", rate_changes);
  if (!buffer_changes.empty()) flag("--buffer-change", buffer_changes);

  if (!spec.tcp.sack_enabled) out.args.emplace_back("--no-sack");
  if (!spec.receiver.delayed_ack) out.args.emplace_back("--no-delack");
  if (!spec.receiver.gro_enabled) out.args.emplace_back("--no-gro");
  if (spec.tcp.rto_rearm_slack > TimeDelta::zero()) {
    flag("--rto-slack", render_flag_scaled(spec.tcp.rto_rearm_slack, 1e6));
  }
  if (spec.trace_interval > TimeDelta::zero()) {
    flag("--trace", render_flag_seconds(spec.trace_interval));
  }
  if (spec.shards != 1) flag("--shards", std::to_string(spec.shards));

  const WorkloadSpec& wl = spec.workload;
  if (wl.enabled()) {
    flag("--workload",
         std::string(wl.arrival == ArrivalKind::kPoisson ? "poisson:" : "fixed:") +
             render_value(wl.arrivals_per_sec));
    for (const WorkloadClass& c : wl.classes) {
      std::string size;
      switch (c.size.kind) {
        case SizeDistKind::kPareto:
          size = "pareto/" + render_value(c.size.pareto_alpha) + "/" +
                 std::to_string(c.size.min_segments) + "/" +
                 std::to_string(c.size.max_segments);
          break;
        case SizeDistKind::kLognormal:
          size = "lognormal/" + render_value(c.size.lognormal_mu) + "/" +
                 render_value(c.size.lognormal_sigma) + "/" +
                 std::to_string(c.size.min_segments) + "/" +
                 std::to_string(c.size.max_segments);
          break;
        case SizeDistKind::kFixed:
          size = "fixed/" + std::to_string(c.size.fixed_segments);
          break;
        case SizeDistKind::kEmpirical:
          if (c.size.empirical_path.empty()) {
            note("class '" + c.name +
                 "' uses an in-memory empirical CDF (no flag); workload is "
                 "not fully renderable");
            continue;
          }
          size = "cdf/" + c.size.empirical_path;
          note("class '" + c.name + "' replay re-reads " + c.size.empirical_path +
               " (file content is not pinned by the flag)");
          break;
      }
      std::string app;
      switch (c.app) {
        case AppModel::kBulk:
          app = "bulk";
          break;
        case AppModel::kRequestResponse:
          app = "rr/" + std::to_string(c.app_burst_segments) + "/" +
                render_flag_scaled(c.app_gap, 1e3);
          break;
        case AppModel::kWebObject:
          app = "web/" + std::to_string(c.app_burst_segments) + "/" +
                render_flag_scaled(c.app_gap, 1e3);
          break;
        case AppModel::kVideoChunk:
          app = "video/" + std::to_string(c.app_burst_segments) + "/" +
                render_flag_scaled(c.app_gap, 1e3);
          break;
      }
      flag("--workload-class", c.name + ":" + render_value(c.weight) + ":" +
                                   c.cca + ":" + render_flag_scaled(c.rtt, 1e3) +
                                   ":" + size + ":" + app);
    }
    if (wl.max_concurrent != 0) {
      flag("--workload-max", std::to_string(wl.max_concurrent));
    }
  }

  // Spec fields with no flag are surfaced as notes, so quarantine .repro
  // files are honest about what their replay command cannot reproduce.
  const DumbbellConfig net_defaults;
  if (sc.net.num_pairs != preset.net.num_pairs) {
    note("num_pairs=" + std::to_string(sc.net.num_pairs) + " has no flag");
  }
  if (!sc.net.edge_rate.is_infinite()) {
    note("finite edge_rate (host-NIC ablation) has no flag");
  }
  if (sc.net.edge_buffer_bytes != net_defaults.edge_buffer_bytes) {
    note("edge_buffer_bytes override has no flag");
  }
  if (sc.net.jitter_seed != net_defaults.jitter_seed) {
    note("jitter_seed override has no flag");
  }
  if (imp.seed != 0) note("impairment seed override has no flag");
  if (imp.force_stage) note("force_stage is set (observational; no flag)");

  const TcpSenderConfig tcp_defaults;
  if (spec.tcp.initial_cwnd != tcp_defaults.initial_cwnd) {
    note("tcp.initial_cwnd override has no flag");
  }
  if (spec.tcp.max_window != tcp_defaults.max_window) {
    note("tcp.max_window override has no flag");
  }
  if (spec.tcp.dup_thresh != tcp_defaults.dup_thresh) {
    note("tcp.dup_thresh override has no flag");
  }
  if (spec.tcp.data_segments != tcp_defaults.data_segments) {
    note("tcp.data_segments override has no flag");
  }

  const TcpReceiverConfig recv_defaults;
  if (spec.receiver.delack_segment_threshold !=
      recv_defaults.delack_segment_threshold) {
    note("receiver.delack_segment_threshold override has no flag");
  }
  if (spec.receiver.delack_timeout != recv_defaults.delack_timeout) {
    note("receiver.delack_timeout override has no flag");
  }
  if (spec.receiver.gro_flush_timeout != recv_defaults.gro_flush_timeout) {
    note("receiver.gro_flush_timeout override has no flag");
  }
  if (spec.receiver.gro_max_segments != recv_defaults.gro_max_segments) {
    note("receiver.gro_max_segments override has no flag");
  }

  if (spec.convergence_window != TimeDelta::zero()) {
    note("convergence early-stop is enabled (no flag)");
  }
  if (!spec.record_drop_log) note("record_drop_log=false has no flag");
  if (spec.record_congestion_log) note("record_congestion_log=true has no flag");
  if (!spec.trace_flows.empty()) note("trace_flows subset has no flag");

  return out;
}

std::string spec_to_cli_command(const ExperimentSpec& spec) {
  std::string cmd = "ccas_run";
  for (const std::string& arg : spec_to_cli(spec).args) cmd += " " + arg;
  return cmd;
}

}  // namespace ccas
