// Experiment specification and result types for the paper's measurement
// methodology (Section 3.2): groups of same-CCA, same-RTT flows competing
// over the dumbbell, staggered starts, warm-up exclusion, and per-flow +
// per-group steady-state metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/scenario.h"
#include "src/net/queue.h"
#include "src/sim/profiler.h"
#include "src/stats/fct.h"
#include "src/stats/flow_recorder.h"
#include "src/stats/trace.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"
#include "src/workload/spec.h"

namespace ccas {

struct FlowGroup {
  std::string cca;  // registry name: "newreno", "cubic", "bbr"
  int count = 1;
  TimeDelta rtt = TimeDelta::millis(20);
};

struct ExperimentSpec {
  Scenario scenario;
  std::vector<FlowGroup> groups;
  uint64_t seed = 1;

  // Event-domain count for the conservative parallel engine (src/sim/
  // parallel/): 1 = the historical single-threaded path, N > 1 shards the
  // flows over N domains synchronized at the bottleneck. Results are
  // byte-identical across shard counts (the differential test wall pins
  // this), so `shards` only enters the canonical spec encoding when
  // non-default — golden digests and cache keys keep their bytes.
  int shards = 1;

  TcpSenderConfig tcp;
  TcpReceiverConfig receiver;

  // Open-loop workload riding on top of (or instead of) the fixed groups:
  // session arrivals, heavy-tailed sizes, app-limited pacing models, FCT
  // percentile stats per class (src/workload/). Disabled by default; like
  // `shards`, its fields enter the canonical spec encoding only when
  // enabled, so every pre-workload golden digest and cache key keeps its
  // bytes. Workload flows draw from a dedicated derive_workload_seed
  // stream and always live on the core simulator under --shards > 1.
  WorkloadSpec workload;

  // Optional early stop: sample aggregate goodput every `convergence_poll`
  // and stop once it changed <1% over `convergence_window`. Disabled when
  // convergence_window is zero; the run then lasts exactly
  // warmup + measure after the stagger period.
  TimeDelta convergence_window = TimeDelta::zero();
  TimeDelta convergence_poll = TimeDelta::seconds(1);
  double convergence_tolerance = 0.01;

  // Record bottleneck drop timestamps (needed for burstiness; costs RAM).
  bool record_drop_log = true;

  // Record per-flow congestion-event timestamps (the golden-trace harness
  // digests them). Part of the canonical spec encoding: it changes the
  // result content, so it must change the cache key.
  bool record_congestion_log = false;

  // Run the invariant auditor alongside the experiment and throw on any
  // violation. Observational only — it never alters behaviour — so it is
  // deliberately NOT part of the canonical spec encoding (an audited run
  // shares its cache entry with a bare one). Also forced on by CCAS_CHECK=1.
  bool audit = false;

  // Time-series tracing (tcpprobe analog): when trace_interval > 0, sample
  // the flows in trace_flows (empty = every flow) and the bottleneck queue
  // at that interval, including the warm-up period.
  TimeDelta trace_interval = TimeDelta::zero();
  std::vector<uint32_t> trace_flows;

  [[nodiscard]] int total_flows() const {
    int n = 0;
    for (const auto& g : groups) n += g.count;
    return n;
  }
};

struct GroupResult {
  std::string cca;
  int count = 0;
  TimeDelta rtt = TimeDelta::zero();
  double aggregate_goodput_bps = 0.0;
  double throughput_share = 0.0;  // fraction of all groups' goodput
  double jfi = 1.0;               // intra-group Jain fairness index
};

struct ExperimentResult {
  std::vector<FlowMeasurement> flows;  // indexed by flow id
  std::vector<int> flow_group;         // flow id -> group index
  std::vector<GroupResult> groups;
  QueueStats queue;                         // measurement window only
  std::vector<Time> drop_times;             // bottleneck drop log (window)
  double aggregate_goodput_bps = 0.0;
  double utilization = 0.0;  // aggregate goodput / bottleneck rate
  TimeDelta measured_for = TimeDelta::zero();
  bool converged_early = false;
  uint64_t sim_events = 0;
  // Kernel profiler snapshot (events/sec, scheduler and timer counters).
  // Like `trace`, this is per-run observational output: it is not part of
  // the serialized result, so cached cells come back with an empty profile.
  SimProfile sim_profile;
  // Measurement-window deltas (warm-up excluded) of dispatched events and
  // the in-loop heap-allocation counter (SimProfile::heap_allocs). Their
  // ratio is the steady-state allocations-per-event gate in tools/ccas_perf.
  // Observational, like sim_profile: not serialized, empty on cache hits.
  uint64_t measure_sim_events = 0;
  uint64_t measure_heap_allocs = 0;
  TraceLog trace;  // empty unless trace_interval was set
  // Per-flow congestion-event (fast-recovery entry) timestamps, covering
  // the whole run; empty unless record_congestion_log was set.
  std::vector<std::vector<Time>> congestion_log;
  // Per-class workload FCT summaries (spec order); empty unless the spec's
  // workload block was enabled. Serialized (with workload_goodput_bps) in
  // an appended result-cache block so pre-workload cache entries parse.
  std::vector<WorkloadClassResult> workload_classes;
  // Whole-run average goodput of the workload's dynamic flows (they start
  // mid-run, so the fixed-flow measurement window does not apply).
  double workload_goodput_bps = 0.0;

  // Jain fairness index over an arbitrary subset (by group, or all flows).
  [[nodiscard]] double jfi_all() const;
  [[nodiscard]] double jfi_group(int group_index) const;
  [[nodiscard]] std::vector<double> group_goodputs(int group_index) const;
};

}  // namespace ccas
