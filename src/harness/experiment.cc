#include "src/harness/experiment.h"

#include <stdexcept>

#include "src/stats/fairness.h"

namespace ccas {

std::vector<double> ExperimentResult::group_goodputs(int group_index) const {
  std::vector<double> out;
  for (size_t i = 0; i < flows.size(); ++i) {
    if (flow_group[i] == group_index) out.push_back(flows[i].goodput_bps);
  }
  return out;
}

double ExperimentResult::jfi_all() const {
  std::vector<double> all;
  all.reserve(flows.size());
  for (const auto& f : flows) all.push_back(f.goodput_bps);
  return jain_fairness_index(all);
}

double ExperimentResult::jfi_group(int group_index) const {
  const auto goodputs = group_goodputs(group_index);
  if (goodputs.empty()) throw std::out_of_range("no flows in group");
  return jain_fairness_index(goodputs);
}

}  // namespace ccas
