// Copa (Arun & Balakrishnan, NSDI 2018) — the delay-based CCA the paper's
// background lists among algorithms deployed on today's Internet.
//
// Copa targets the sending rate lambda = 1 / (delta * d_q), where d_q is
// the standing queueing delay (RTT_standing - RTT_min). Each ACK moves
// cwnd toward the target by v / (delta * cwnd) segments, where the
// velocity v doubles once per RTT while the direction is consistent and
// resets to 1 when it flips. Packets are paced at 2 * cwnd / RTT_standing.
//
// Mode switching: when the queue is observed never to drain (d_q stays
// above 10% of the observed delay range for several RTTs), Copa concludes
// it is competing with buffer-filling flows and switches to a TCP-
// competitive mode where 1/delta performs AIMD (additive increase on
// loss-free RTTs, halving on loss). We implement the default mode in full
// and this simplified competitive mode.
#pragma once

#include "src/cca/cca.h"
#include "src/util/windowed_filter.h"

namespace ccas {

struct CopaConfig {
  uint64_t initial_cwnd = 10;
  uint64_t min_cwnd = 2;
  double delta = 0.5;  // default-mode delta: ~2 packets of standing queue
  bool mode_switching = true;
  TimeDelta min_rtt_window = TimeDelta::seconds(10);
  // Competitive-mode delta bounds (1/delta acts like a cwnd in AIMD).
  double competitive_delta_min = 0.004;
  double competitive_delta_max = 0.5;
};

class Copa final : public CongestionController {
 public:
  explicit Copa(const CopaConfig& config = {});

  void on_ack(const AckEvent& ack) override;
  void on_congestion_event(Time now, uint64_t inflight) override;
  void on_recovery_exit(Time now, uint64_t inflight) override;
  void on_rto(Time now) override;

  [[nodiscard]] uint64_t cwnd() const override;
  [[nodiscard]] DataRate pacing_rate() const override { return pacing_rate_; }
  [[nodiscard]] std::string name() const override { return "copa"; }

  // Diagnostics.
  [[nodiscard]] TimeDelta min_rtt() const { return min_rtt_; }
  [[nodiscard]] TimeDelta standing_rtt() const { return rtt_standing_; }
  [[nodiscard]] double velocity() const { return velocity_; }
  [[nodiscard]] bool competitive_mode() const { return competitive_; }
  [[nodiscard]] double current_delta() const {
    return competitive_ ? competitive_delta_ : config_.delta;
  }

 private:
  void update_rtt(const AckEvent& ack);
  void update_mode(const AckEvent& ack);

  CopaConfig config_;
  double cwnd_;
  DataRate pacing_rate_ = DataRate::infinite();

  TimeDelta min_rtt_ = TimeDelta::infinite();
  Time min_rtt_stamp_ = Time::zero();
  TimeDelta max_rtt_seen_ = TimeDelta::zero();
  // Standing RTT: min RTT over roughly the last half-RTT of samples;
  // approximated as the min over the current packet-timed round.
  TimeDelta rtt_standing_ = TimeDelta::infinite();
  TimeDelta round_min_rtt_ = TimeDelta::infinite();

  // Packet-timed rounds for velocity doubling and mode detection.
  uint64_t next_round_delivered_ = 0;
  double velocity_ = 1.0;
  int direction_ = 0;             // +1 up, -1 down
  int same_direction_rounds_ = 0;

  // Mode switching: rounds since the queue last looked nearly empty.
  int rounds_since_empty_queue_ = 0;
  bool competitive_ = false;
  double competitive_delta_;
  bool loss_this_round_ = false;
};

void register_copa(CcaRegistry& registry);

}  // namespace ccas
