// BBRv1 congestion control (Cardwell et al., ACM Queue 2016; modeled on
// Linux tcp_bbr.c and draft-cardwell-iccrg-bbr-congestion-control-00).
//
// BBR maintains a model of the path — max delivery rate (BtlBw) over a
// 10-round window and min RTT (RTprop) over a 10-second window — and paces
// at gain * BtlBw while capping inflight at cwnd_gain * BDP. The state
// machine: STARTUP (2/ln2 gain) -> DRAIN -> PROBE_BW (8-phase gain cycle
// 1.25, 0.75, 1x6) with periodic PROBE_RTT excursions to 4 packets.
//
// The 4-packet PROBE_RTT / minimum cwnd floor is configurable because our
// ablation (bench_ablation_bbr_mincwnd) studies its role in BBR's
// intra-CCA unfairness at CoreScale (paper Finding 5).
#pragma once

#include "src/cca/cca.h"
#include "src/util/rng.h"
#include "src/util/windowed_filter.h"

namespace ccas {

struct BbrConfig {
  uint64_t initial_cwnd = 10;
  uint64_t min_cwnd = 4;  // BBR's floor and PROBE_RTT window
  double high_gain = 2.885;  // 2/ln(2)
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  // PROBE_BW pacing-gain cycle (Linux: {1.25, .75, 1, 1, 1, 1, 1, 1}).
  static constexpr int kCycleLength = 8;
  double cycle_gains[kCycleLength] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  int bw_window_rounds = 10;            // max-bw filter length (round trips)
  TimeDelta min_rtt_window = TimeDelta::seconds(10);
  TimeDelta probe_rtt_duration = TimeDelta::millis(200);
  double full_bw_threshold = 1.25;  // startup "pipe filled" growth test
  int full_bw_count = 3;
  // Pacing margin (Linux paces at 99% of computed rate to avoid building
  // queues from its own pacing quantization).
  double pacing_margin = 0.99;
};

class Bbr final : public CongestionController {
 public:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  Bbr(const BbrConfig& config, Rng& rng);

  void on_ack(const AckEvent& ack) override;
  void on_congestion_event(Time now, uint64_t inflight) override;
  void on_recovery_exit(Time now, uint64_t inflight) override;
  void on_rto(Time now) override;

  [[nodiscard]] uint64_t cwnd() const override { return cwnd_; }
  [[nodiscard]] DataRate pacing_rate() const override { return pacing_rate_; }
  [[nodiscard]] std::string name() const override { return "bbr"; }
  // BBR modulates its own cwnd in recovery (packet conservation); Linux
  // bypasses PRR for full cong_control algorithms.
  [[nodiscard]] bool owns_recovery_cwnd() const override { return true; }

  // Model inspection (tests and diagnostics).
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] DataRate bottleneck_bw() const {
    return DataRate::bps(static_cast<int64_t>(max_bw_.best()));
  }
  [[nodiscard]] TimeDelta min_rtt() const { return min_rtt_; }
  [[nodiscard]] bool filled_pipe() const { return filled_pipe_; }
  [[nodiscard]] double pacing_gain() const { return pacing_gain_; }
  [[nodiscard]] uint64_t round_count() const { return round_count_; }

 private:
  void update_round(const AckEvent& ack);
  void update_bw_model(const AckEvent& ack);
  void update_min_rtt(const AckEvent& ack);
  void check_full_pipe(const AckEvent& ack);
  void update_state_machine(const AckEvent& ack);
  void advance_cycle_phase(Time now);
  void enter_probe_bw(Time now);
  void enter_probe_rtt();
  void exit_probe_rtt(Time now);
  void update_pacing_and_cwnd(const AckEvent& ack);
  [[nodiscard]] uint64_t bdp_segments(double gain) const;
  [[nodiscard]] bool model_ready() const {
    return max_bw_.best() > 0 && !min_rtt_.is_infinite();
  }

  BbrConfig config_;
  Rng& rng_;

  Mode mode_ = Mode::kStartup;
  double pacing_gain_;
  double cwnd_gain_;

  // Path model.
  WindowedMaxFilter<uint64_t, uint64_t> max_bw_;  // bps over round count
  TimeDelta min_rtt_ = TimeDelta::infinite();
  Time min_rtt_stamp_ = Time::zero();
  bool min_rtt_expired_ = false;

  // Packet-timed round trips.
  uint64_t next_round_delivered_ = 0;
  uint64_t round_count_ = 0;
  bool round_start_ = false;

  // STARTUP pipe-full detection.
  uint64_t full_bw_bps_ = 0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // PROBE_BW cycle.
  int cycle_index_ = 0;
  Time cycle_stamp_ = Time::zero();
  uint64_t last_inflight_ = 0;
  uint64_t last_newly_lost_ = 0;

  // PROBE_RTT.
  Time probe_rtt_done_stamp_ = Time::zero();
  bool probe_rtt_round_done_ = false;
  uint64_t probe_rtt_round_end_delivered_ = 0;
  bool probe_rtt_done_stamp_valid_ = false;

  // Recovery modulation (packet conservation as in Linux).
  bool in_recovery_ = false;
  bool packet_conservation_ = false;
  uint64_t prior_cwnd_ = 0;
  uint64_t recovery_end_round_ = 0;

  uint64_t cwnd_;
  DataRate pacing_rate_ = DataRate::infinite();
};

void register_bbr(CcaRegistry& registry);

}  // namespace ccas
