// TCP NewReno congestion control (RFC 5681 + RFC 6582 semantics).
//
// The loss-recovery state machine itself lives in TcpSender; this class
// implements the AIMD window policy: slow start, congestion avoidance with
// appropriate byte counting, a multiplicative decrease of 1/2 per
// congestion event, and cwnd = 1 after an RTO.
#pragma once

#include "src/cca/cca.h"

namespace ccas {

struct NewRenoConfig {
  uint64_t initial_cwnd = 10;
  uint64_t min_cwnd = 2;
  double beta = 0.5;  // multiplicative decrease factor
};

class NewReno final : public CongestionController {
 public:
  explicit NewReno(const NewRenoConfig& config = {});

  void on_ack(const AckEvent& ack) override;
  void on_congestion_event(Time now, uint64_t inflight) override;
  void on_recovery_exit(Time now, uint64_t inflight) override;
  void on_rto(Time now) override;

  [[nodiscard]] uint64_t cwnd() const override { return cwnd_; }
  [[nodiscard]] uint64_t ssthresh() const override { return ssthresh_; }
  [[nodiscard]] std::string name() const override { return "newreno"; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  NewRenoConfig config_;
  uint64_t cwnd_;
  uint64_t ssthresh_;
  uint64_t ack_credit_ = 0;  // congestion-avoidance accumulator
};

// Registers "newreno" with the given registry (called by CcaRegistry).
void register_new_reno(CcaRegistry& registry);

}  // namespace ccas
