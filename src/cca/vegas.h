// TCP Vegas (Brakmo, O'Malley, Peterson; SIGCOMM 1994) — the classic
// delay-based CCA the paper lists among deployed algorithms. Included as a
// registry extension so the harness can study how a delay-based algorithm
// fares in the paper's settings (it is famously starved by loss-based
// competitors that fill the queue Vegas tries to keep empty).
//
// Once per RTT, Vegas compares the expected rate cwnd/base_rtt with the
// actual rate cwnd/rtt and computes diff = (expected - actual) * base_rtt,
// the number of segments the flow itself keeps queued:
//   diff < alpha  -> cwnd += 1   (too little buffered: speed up)
//   diff > beta   -> cwnd -= 1   (too much buffered: slow down)
// Loss handling falls back to Reno behaviour.
#pragma once

#include "src/cca/cca.h"

namespace ccas {

struct VegasConfig {
  uint64_t initial_cwnd = 10;
  uint64_t min_cwnd = 2;
  double alpha = 2.0;  // segments of self-induced queueing to maintain, min
  double beta = 4.0;   // ... and max
};

class Vegas final : public CongestionController {
 public:
  explicit Vegas(const VegasConfig& config = {});

  void on_ack(const AckEvent& ack) override;
  void on_congestion_event(Time now, uint64_t inflight) override;
  void on_recovery_exit(Time now, uint64_t inflight) override;
  void on_rto(Time now) override;

  [[nodiscard]] uint64_t cwnd() const override { return cwnd_; }
  [[nodiscard]] uint64_t ssthresh() const override { return ssthresh_; }
  [[nodiscard]] std::string name() const override { return "vegas"; }
  [[nodiscard]] bool in_slow_start() const { return in_slow_start_; }
  // Diagnostics.
  [[nodiscard]] TimeDelta base_rtt() const { return base_rtt_; }
  [[nodiscard]] double last_diff_segments() const { return last_diff_; }

 private:
  void vegas_round(const AckEvent& ack);

  VegasConfig config_;
  uint64_t cwnd_;
  uint64_t ssthresh_;
  // Explicit state: Vegas's per-round decrease can take cwnd below
  // ssthresh, which must not re-enter slow start.
  bool in_slow_start_ = true;
  TimeDelta base_rtt_ = TimeDelta::infinite();
  // Round bookkeeping: one Vegas adjustment per packet-timed round trip.
  uint64_t next_round_delivered_ = 0;
  TimeDelta min_rtt_this_round_ = TimeDelta::infinite();
  double last_diff_ = 0.0;
  bool grow_this_round_ = false;  // slow start doubles every other round
};

void register_vegas(CcaRegistry& registry);

}  // namespace ccas
