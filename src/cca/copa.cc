#include "src/cca/copa.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "src/net/packet.h"

namespace ccas {

Copa::Copa(const CopaConfig& config)
    : config_(config),
      cwnd_(static_cast<double>(config.initial_cwnd)),
      competitive_delta_(config.delta) {}

uint64_t Copa::cwnd() const {
  return std::max<uint64_t>(static_cast<uint64_t>(cwnd_), config_.min_cwnd);
}

void Copa::update_rtt(const AckEvent& ack) {
  if (ack.rtt_sample <= TimeDelta::zero()) return;
  if (ack.rtt_sample < min_rtt_ ||
      ack.now > min_rtt_stamp_ + config_.min_rtt_window) {
    min_rtt_ = ack.rtt_sample;
    min_rtt_stamp_ = ack.now;
  }
  min_rtt_ = std::min(min_rtt_, ack.rtt_sample);
  max_rtt_seen_ = std::max(max_rtt_seen_, ack.rtt_sample);
  round_min_rtt_ = std::min(round_min_rtt_, ack.rtt_sample);
}

void Copa::update_mode(const AckEvent& ack) {
  if (!config_.mode_switching) return;
  // "Nearly empty" queue: standing delay below 10% of the observed delay
  // range — with an absolute floor of 5% of the base RTT, so that the
  // near-zero range of an uncongested path cannot read as "never drains".
  const double d_q = (rtt_standing_ - min_rtt_).sec();
  const double range = (max_rtt_seen_ - min_rtt_).sec();
  const double empty_threshold = std::max(0.1 * range, 0.05 * min_rtt_.sec());
  if (range <= 0.0 || d_q < empty_threshold) {
    rounds_since_empty_queue_ = 0;
    competitive_ = false;
    competitive_delta_ = config_.delta;
    return;
  }
  if (++rounds_since_empty_queue_ >= 5) competitive_ = true;
  if (competitive_) {
    if (loss_this_round_) {
      // 1/delta halves: delta doubles.
      competitive_delta_ = std::min(competitive_delta_ * 2.0,
                                    config_.competitive_delta_max);
    } else {
      // 1/delta += 1 per RTT: additive increase of the AIMD surrogate.
      competitive_delta_ = std::max(
          1.0 / (1.0 / competitive_delta_ + 1.0), config_.competitive_delta_min);
    }
  }
  (void)ack;
}

void Copa::on_ack(const AckEvent& ack) {
  update_rtt(ack);
  loss_this_round_ = loss_this_round_ || ack.newly_lost > 0;

  // Round boundary (packet-timed, as in BBR).
  if (ack.rate.valid() && ack.rate.prior_delivered >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total;
    if (!round_min_rtt_.is_infinite()) rtt_standing_ = round_min_rtt_;
    round_min_rtt_ = TimeDelta::infinite();
    update_mode(ack);
    loss_this_round_ = false;
    // Velocity doubles after three consistent rounds (Copa's rule keeps
    // v = 1 until the direction has been stable).
    if (++same_direction_rounds_ >= 3) velocity_ = std::min(velocity_ * 2.0, 1e6);
  }

  if (ack.newly_acked == 0 || rtt_standing_.is_infinite() ||
      min_rtt_.is_infinite()) {
    return;
  }

  // Target rate 1/(delta * d_q) packets/sec vs current cwnd/RTT_standing.
  const double delta = current_delta();
  const double d_q = std::max((rtt_standing_ - min_rtt_).sec(), 1e-9);
  const double target_rate = 1.0 / (delta * d_q);
  const double current_rate = cwnd_ / std::max(rtt_standing_.sec(), 1e-9);

  const int dir = current_rate <= target_rate ? +1 : -1;
  if (dir != direction_) {
    direction_ = dir;
    velocity_ = 1.0;
    same_direction_rounds_ = 0;
  }
  const double step =
      velocity_ * static_cast<double>(ack.newly_acked) / (delta * cwnd_);
  cwnd_ = std::max(cwnd_ + dir * step, static_cast<double>(config_.min_cwnd));

  // Pace at 2x the current rate so bursts do not distort the delay signal.
  pacing_rate_ = DataRate::bps_f(2.0 * cwnd_ * static_cast<double>(kMssBytes) *
                                 8.0 / std::max(rtt_standing_.sec(), 1e-9));
}

void Copa::on_congestion_event(Time /*now*/, uint64_t /*inflight*/) {
  loss_this_round_ = true;
  if (competitive_) {
    competitive_delta_ =
        std::min(competitive_delta_ * 2.0, config_.competitive_delta_max);
    cwnd_ = std::max(cwnd_ * 0.5, static_cast<double>(config_.min_cwnd));
  }
  // Default mode: Copa does not react to isolated losses (delay carries
  // the congestion signal); the sender's recovery machinery still repairs.
}

void Copa::on_recovery_exit(Time /*now*/, uint64_t /*inflight*/) {}

void Copa::on_rto(Time /*now*/) {
  cwnd_ = static_cast<double>(config_.min_cwnd);
  velocity_ = 1.0;
  direction_ = 0;
}

void register_copa(CcaRegistry& registry) {
  registry.register_cca(
      "copa", [](Rng& /*rng*/) { return std::make_unique<Copa>(); },
      CcaPlacement{sizeof(Copa), alignof(Copa),
                   [](void* mem, Rng&) -> CongestionController* {
                     return new (mem) Copa();
                   }});
}

}  // namespace ccas
