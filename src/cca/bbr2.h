// BBRv2-lite — a compact implementation of the BBRv2 ideas the paper
// mentions as "a work in progress" (IETF draft-cardwell-iccrg-bbr-
// congestion-control-02 / Linux bbr2 alpha), provided as a registry
// extension so the paper's experiments can be re-run against it:
//
//   * loss-responsiveness: BBRv2 bounds inflight by `inflight_hi`, learned
//     from loss (set to the inflight where loss exceeded the 2% threshold)
//     and by short-term `bw_lo`/`inflight_lo` bounds cut by beta = 0.7 on
//     every loss round (a Cubic-like multiplicative decrease);
//   * gentler probing: the ProbeBW cycle spends most time cruising below
//     inflight_hi and probes above it only briefly;
//   * cheaper PROBE_RTT: cwnd floor is 0.5 x BDP instead of 4 packets,
//     every 5 s instead of 10 s.
//
// The v1 plumbing (windowed max-bw filter, min-rtt filter, packet-timed
// rounds, startup/drain) is shared in spirit with src/cca/bbr.h but kept
// separate so each file reads like its spec.
#pragma once

#include "src/cca/cca.h"
#include "src/util/rng.h"
#include "src/util/windowed_filter.h"

namespace ccas {

struct Bbr2Config {
  uint64_t initial_cwnd = 10;
  uint64_t min_cwnd = 4;
  double high_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  double beta = 0.7;                 // loss response multiplier
  double loss_threshold = 0.02;      // per-round loss rate that caps inflight_hi
  double probe_up_gain = 1.25;
  double probe_down_gain = 0.75;
  int bw_window_rounds = 10;
  TimeDelta min_rtt_window = TimeDelta::seconds(5);
  TimeDelta probe_rtt_duration = TimeDelta::millis(200);
  int full_bw_count = 3;
  double full_bw_threshold = 1.25;
  double pacing_margin = 0.99;
};

class Bbr2 final : public CongestionController {
 public:
  enum class Mode { kStartup, kDrain, kProbeBwDown, kProbeBwCruise, kProbeBwUp,
                    kProbeRtt };

  Bbr2(const Bbr2Config& config, Rng& rng);

  void on_ack(const AckEvent& ack) override;
  void on_congestion_event(Time now, uint64_t inflight) override;
  void on_recovery_exit(Time now, uint64_t inflight) override;
  void on_rto(Time now) override;

  [[nodiscard]] uint64_t cwnd() const override { return cwnd_; }
  [[nodiscard]] DataRate pacing_rate() const override { return pacing_rate_; }
  [[nodiscard]] std::string name() const override { return "bbr2"; }
  [[nodiscard]] bool owns_recovery_cwnd() const override { return true; }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] DataRate bottleneck_bw() const {
    return DataRate::bps(static_cast<int64_t>(max_bw_.best()));
  }
  [[nodiscard]] TimeDelta min_rtt() const { return min_rtt_; }
  [[nodiscard]] double inflight_hi_segments() const { return inflight_hi_; }
  [[nodiscard]] bool filled_pipe() const { return filled_pipe_; }

 private:
  void update_round(const AckEvent& ack);
  void update_model(const AckEvent& ack);
  void update_state_machine(const AckEvent& ack);
  void update_pacing_and_cwnd(const AckEvent& ack);
  [[nodiscard]] double bdp_segments(double gain) const;
  [[nodiscard]] bool model_ready() const {
    return max_bw_.best() > 0 && !min_rtt_.is_infinite();
  }
  void enter_probe_down(Time now);

  Bbr2Config config_;
  Rng& rng_;

  Mode mode_ = Mode::kStartup;
  double pacing_gain_;
  double cwnd_gain_;

  WindowedMaxFilter<uint64_t, uint64_t> max_bw_;
  TimeDelta min_rtt_ = TimeDelta::infinite();
  Time min_rtt_stamp_ = Time::zero();
  bool min_rtt_expired_ = false;

  uint64_t next_round_delivered_ = 0;
  uint64_t round_count_ = 0;
  bool round_start_ = false;

  uint64_t full_bw_bps_ = 0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // v2 loss-adaptive bounds (in segments; infinity = unset).
  double inflight_hi_ = -1.0;  // <0 => unset
  double inflight_lo_ = -1.0;
  // Per-round loss accounting.
  uint64_t round_lost_ = 0;
  uint64_t round_delivered_start_ = 0;
  uint64_t round_delivered_acc_ = 0;

  Time cycle_stamp_ = Time::zero();
  int cruise_rounds_target_ = 0;
  int rounds_in_phase_ = 0;

  Time probe_rtt_done_stamp_ = Time::zero();
  bool probe_rtt_done_stamp_valid_ = false;

  bool in_recovery_ = false;
  uint64_t prior_cwnd_ = 0;

  uint64_t cwnd_;
  DataRate pacing_rate_ = DataRate::infinite();
};

void register_bbr2(CcaRegistry& registry);

}  // namespace ccas
