#include "src/cca/bbr2.h"

#include <algorithm>
#include <new>

#include "src/net/packet.h"

namespace ccas {

Bbr2::Bbr2(const Bbr2Config& config, Rng& rng)
    : config_(config),
      rng_(rng),
      pacing_gain_(config.high_gain),
      cwnd_gain_(config.high_gain),
      max_bw_(static_cast<uint64_t>(config.bw_window_rounds)),
      cwnd_(config.initial_cwnd) {}

double Bbr2::bdp_segments(double gain) const {
  if (!model_ready()) return static_cast<double>(config_.initial_cwnd);
  const double bdp_bytes = static_cast<double>(max_bw_.best()) / 8.0 * min_rtt_.sec();
  return std::max(gain * bdp_bytes / static_cast<double>(kMssBytes),
                  static_cast<double>(config_.min_cwnd));
}

void Bbr2::update_round(const AckEvent& ack) {
  round_start_ = false;
  round_lost_ += ack.newly_lost;
  round_delivered_acc_ += ack.newly_acked;
  if (!ack.rate.valid()) return;
  if (ack.rate.prior_delivered >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total;
    ++round_count_;
    ++rounds_in_phase_;
    round_start_ = true;
  }
}

void Bbr2::update_model(const AckEvent& ack) {
  if (ack.rate.valid()) {
    const auto bw = static_cast<uint64_t>(ack.rate.delivery_rate.bits_per_sec());
    if (!ack.rate.is_app_limited || bw >= max_bw_.best()) {
      max_bw_.update(bw, round_count_);
    }
  }
  min_rtt_expired_ =
      !min_rtt_.is_infinite() && ack.now > min_rtt_stamp_ + config_.min_rtt_window;
  if (ack.rtt_sample > TimeDelta::zero() &&
      (ack.rtt_sample < min_rtt_ || min_rtt_expired_)) {
    min_rtt_ = ack.rtt_sample;
    min_rtt_stamp_ = ack.now;
  }

  // Per-round loss response (the defining v2 behaviour): if this round's
  // loss rate crossed the threshold, clamp inflight_hi to what was actually
  // in flight and cut the short-term bound by beta.
  if (round_start_) {
    const double delivered = static_cast<double>(
        std::max<uint64_t>(round_delivered_acc_, 1));
    const double loss_rate = static_cast<double>(round_lost_) / delivered;
    if (round_lost_ > 0 && loss_rate > config_.loss_threshold) {
      const double inflight = static_cast<double>(ack.inflight) +
                              static_cast<double>(round_lost_);
      inflight_hi_ = inflight_hi_ < 0.0
                         ? inflight
                         : std::min(inflight_hi_, inflight);
      inflight_hi_ = std::max(inflight_hi_,
                              static_cast<double>(config_.min_cwnd));
      const double lo_base = inflight_lo_ < 0.0
                                 ? static_cast<double>(cwnd_)
                                 : inflight_lo_;
      inflight_lo_ = std::max(lo_base * config_.beta,
                              static_cast<double>(config_.min_cwnd));
    }
    round_lost_ = 0;
    round_delivered_acc_ = 0;
    round_delivered_start_ = ack.delivered_total;
  }
}

void Bbr2::enter_probe_down(Time now) {
  mode_ = Mode::kProbeBwDown;
  pacing_gain_ = config_.probe_down_gain;
  cwnd_gain_ = config_.cwnd_gain;
  cycle_stamp_ = now;
  rounds_in_phase_ = 0;
  // Cruise for a randomized 2-8 rounds before the next probe, which both
  // de-synchronizes probes across flows and spaces them ~several RTTs.
  cruise_rounds_target_ = 2 + static_cast<int>(rng_.next_below(7));
  // Leaving a probe: the short-term bound decays back toward the model.
  inflight_lo_ = -1.0;
}

void Bbr2::update_state_machine(const AckEvent& ack) {
  const Time now = ack.now;
  switch (mode_) {
    case Mode::kStartup: {
      if (round_start_ && !filled_pipe_) {
        const uint64_t bw = max_bw_.best();
        const auto threshold = static_cast<uint64_t>(
            static_cast<double>(full_bw_bps_) * config_.full_bw_threshold);
        if (bw >= threshold || full_bw_bps_ == 0) {
          full_bw_bps_ = bw;
          full_bw_count_ = 0;
        } else if (++full_bw_count_ >= config_.full_bw_count) {
          filled_pipe_ = true;
        }
      }
      // v2 also exits startup on sustained loss (the inflight_hi clamp).
      if (filled_pipe_ || inflight_hi_ > 0.0) {
        filled_pipe_ = true;
        mode_ = Mode::kDrain;
        pacing_gain_ = config_.drain_gain;
      }
      break;
    }
    case Mode::kDrain:
      if (static_cast<double>(ack.inflight) <= bdp_segments(1.0)) {
        enter_probe_down(now);
      }
      break;
    case Mode::kProbeBwDown:
      if (static_cast<double>(ack.inflight) <= bdp_segments(1.0) ||
          now - cycle_stamp_ > min_rtt_) {
        mode_ = Mode::kProbeBwCruise;
        pacing_gain_ = 1.0;
        rounds_in_phase_ = 0;
      }
      break;
    case Mode::kProbeBwCruise:
      if (rounds_in_phase_ >= cruise_rounds_target_) {
        mode_ = Mode::kProbeBwUp;
        pacing_gain_ = config_.probe_up_gain;
        cycle_stamp_ = now;
        rounds_in_phase_ = 0;
        // Probing raises the ceiling we are allowed to explore.
        if (inflight_hi_ > 0.0) {
          inflight_hi_ += std::max(1.0, inflight_hi_ * 0.05);
        }
      }
      break;
    case Mode::kProbeBwUp: {
      const bool hit_ceiling =
          inflight_hi_ > 0.0 && static_cast<double>(ack.inflight) >= inflight_hi_;
      if (ack.newly_lost > 0 || hit_ceiling ||
          (now - cycle_stamp_ > min_rtt_ &&
           static_cast<double>(ack.inflight) >= bdp_segments(config_.probe_up_gain))) {
        enter_probe_down(now);
      }
      break;
    }
    case Mode::kProbeRtt:
      break;
  }

  if (mode_ != Mode::kProbeRtt && min_rtt_expired_) {
    prior_cwnd_ = in_recovery_ ? std::max(prior_cwnd_, cwnd_) : cwnd_;
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    cwnd_gain_ = 1.0;
    probe_rtt_done_stamp_valid_ = false;
  }
  if (mode_ == Mode::kProbeRtt) {
    // v2's cheaper floor: half a BDP rather than 4 packets.
    const auto floor_seg = static_cast<uint64_t>(
        std::max(bdp_segments(0.5), static_cast<double>(config_.min_cwnd)));
    if (!probe_rtt_done_stamp_valid_ && ack.inflight <= floor_seg) {
      probe_rtt_done_stamp_ = ack.now + config_.probe_rtt_duration;
      probe_rtt_done_stamp_valid_ = true;
    } else if (probe_rtt_done_stamp_valid_ && ack.now >= probe_rtt_done_stamp_) {
      min_rtt_stamp_ = ack.now;
      cwnd_ = std::max(cwnd_, prior_cwnd_);
      if (filled_pipe_) {
        enter_probe_down(ack.now);
      } else {
        mode_ = Mode::kStartup;
        pacing_gain_ = config_.high_gain;
        cwnd_gain_ = config_.high_gain;
      }
    }
  }
}

void Bbr2::update_pacing_and_cwnd(const AckEvent& ack) {
  if (model_ready()) {
    pacing_rate_ = DataRate::bps_f(pacing_gain_ *
                                   static_cast<double>(max_bw_.best()) *
                                   config_.pacing_margin);
  } else if (ack.rtt_sample > TimeDelta::zero() || !min_rtt_.is_infinite()) {
    const TimeDelta rtt = min_rtt_.is_infinite() ? ack.rtt_sample : min_rtt_;
    pacing_rate_ = DataRate::bps_f(config_.high_gain * static_cast<double>(cwnd_) *
                                   static_cast<double>(kMssBytes) * 8.0 /
                                   std::max(rtt.sec(), 1e-6));
  }

  if (mode_ == Mode::kProbeRtt) {
    const auto floor_seg = static_cast<uint64_t>(
        std::max(bdp_segments(0.5), static_cast<double>(config_.min_cwnd)));
    cwnd_ = std::min(cwnd_, floor_seg);
    return;
  }

  double target = bdp_segments(cwnd_gain_);
  if (inflight_hi_ > 0.0) target = std::min(target, inflight_hi_);
  if (inflight_lo_ > 0.0) target = std::min(target, inflight_lo_);
  const auto target_seg =
      std::max<uint64_t>(static_cast<uint64_t>(target), config_.min_cwnd);

  if (in_recovery_) {
    cwnd_ = std::max(std::min(cwnd_, target_seg + ack.newly_acked),
                     std::max<uint64_t>(ack.inflight + ack.newly_acked,
                                        config_.min_cwnd));
  } else if (filled_pipe_) {
    cwnd_ = std::min(cwnd_ + ack.newly_acked, target_seg);
  } else if (cwnd_ < target_seg || ack.delivered_total < config_.initial_cwnd) {
    cwnd_ += ack.newly_acked;
  }
  cwnd_ = std::max(cwnd_, config_.min_cwnd);
}

void Bbr2::on_ack(const AckEvent& ack) {
  update_round(ack);
  update_model(ack);
  update_state_machine(ack);
  update_pacing_and_cwnd(ack);
}

void Bbr2::on_congestion_event(Time /*now*/, uint64_t inflight) {
  if (!in_recovery_) prior_cwnd_ = cwnd_;
  in_recovery_ = true;
  cwnd_ = std::max<uint64_t>(inflight + 1, config_.min_cwnd);
}

void Bbr2::on_recovery_exit(Time /*now*/, uint64_t /*inflight*/) {
  in_recovery_ = false;
  cwnd_ = std::max(cwnd_, prior_cwnd_);
}

void Bbr2::on_rto(Time /*now*/) {
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  cwnd_ = config_.min_cwnd;
  in_recovery_ = true;
}

void register_bbr2(CcaRegistry& registry) {
  registry.register_cca(
      "bbr2",
      [](Rng& rng) { return std::make_unique<Bbr2>(Bbr2Config{}, rng); },
      CcaPlacement{sizeof(Bbr2), alignof(Bbr2),
                   [](void* mem, Rng& rng) -> CongestionController* {
                     return new (mem) Bbr2(Bbr2Config{}, rng);
                   }});
}

}  // namespace ccas
