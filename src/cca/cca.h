// Pluggable congestion-control interface, mirroring the hooks Linux gives
// tcp_congestion_ops plus the rate-sample machinery BBR needs.
//
// The TcpSender owns loss detection, recovery bookkeeping and (re)transmit
// scheduling; the CongestionController only decides *how much* may be in
// flight (cwnd) and *how fast* it may leave (pacing rate).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace ccas {

class Rng;

// Delivery-rate sample in the style of Linux's struct rate_sample /
// draft-cheng-iccrg-delivery-rate-estimation. Attached to every ACK.
struct RateSample {
  DataRate delivery_rate = DataRate::zero();  // zero => no valid sample
  // Cumulative segments delivered at the send time of the sampled packet;
  // BBR uses this for packet-timed round trips.
  uint64_t prior_delivered = 0;
  TimeDelta interval = TimeDelta::zero();
  bool is_app_limited = false;
  [[nodiscard]] bool valid() const { return !delivery_rate.is_zero(); }
};

struct AckEvent {
  Time now;
  uint64_t newly_acked = 0;   // segments newly cum-acked or SACKed
  uint64_t newly_lost = 0;    // segments newly marked lost
  uint64_t inflight = 0;      // pipe after processing this ACK
  uint64_t delivered_total = 0;  // sender's cumulative delivered counter
  TimeDelta rtt_sample = TimeDelta::zero();  // zero => no sample (Karn)
  TimeDelta min_rtt = TimeDelta::infinite();
  RateSample rate;
  bool in_recovery = false;
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  // Called for every ACK after loss detection and scoreboard update.
  virtual void on_ack(const AckEvent& ack) = 0;

  // Entering fast recovery: one multiplicative-decrease opportunity.
  virtual void on_congestion_event(Time now, uint64_t inflight) = 0;
  // Leaving fast recovery (all losses from the event repaired).
  virtual void on_recovery_exit(Time now, uint64_t inflight) = 0;
  // Retransmission timeout fired.
  virtual void on_rto(Time now) = 0;
  // A data segment (new or retransmit) left the sender.
  virtual void on_packet_sent(Time now, uint64_t seq, uint64_t inflight) {
    (void)now; (void)seq; (void)inflight;
  }

  // Current congestion window in segments (>= 1).
  [[nodiscard]] virtual uint64_t cwnd() const = 0;
  // Pacing rate; infinite() means "not paced" (ack-clocked).
  [[nodiscard]] virtual DataRate pacing_rate() const { return DataRate::infinite(); }
  [[nodiscard]] virtual std::string name() const = 0;

  // Diagnostic: slow-start threshold if meaningful, else 0.
  [[nodiscard]] virtual uint64_t ssthresh() const { return 0; }

  // True when the controller manages its own window during fast recovery
  // (Linux's full cong_control interface, e.g. BBR): the sender then uses
  // plain pipe < cwnd gating instead of PRR, which only applies to
  // ack-clocked loss-based CCAs.
  [[nodiscard]] virtual bool owns_recovery_cwnd() const { return false; }
};

// Placement-construction recipe for a registered CCA: the concrete type's
// footprint plus a constructor that builds it into caller-provided storage.
// This is what lets the harness FlowTable lay a flow's controller inside
// the flow's own slab instead of a separate heap island (DESIGN.md §12).
// Optional: CCAs registered without one (external/test controllers) fall
// back to the heap factory path.
struct CcaPlacement {
  size_t size = 0;
  size_t align = 0;
  CongestionController* (*construct)(void* mem, Rng& rng) = nullptr;
};

// Registry so the harness/examples can construct CCAs by name
// ("newreno", "cubic", "bbr"). Factories get the flow's deterministic RNG.
class CcaRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<CongestionController>(Rng& rng)>;

  static CcaRegistry& instance();

  void register_cca(const std::string& name, Factory factory);
  // Registers both the heap factory and a placement recipe. The two must
  // construct identically-behaving controllers (the factory remains the
  // source of truth for external callers holding unique_ptrs).
  void register_cca(const std::string& name, Factory factory,
                    const CcaPlacement& placement);
  [[nodiscard]] std::unique_ptr<CongestionController> create(const std::string& name,
                                                             Rng& rng) const;
  // Placement recipe for `name`, or nullptr when the CCA was registered
  // factory-only. The pointer stays valid for the registry's lifetime.
  [[nodiscard]] const CcaPlacement* placement(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
  std::map<std::string, CcaPlacement> placements_;
};

// Convenience: create by name or throw with the list of known CCAs.
[[nodiscard]] std::unique_ptr<CongestionController> make_cca(const std::string& name,
                                                             Rng& rng);

}  // namespace ccas
