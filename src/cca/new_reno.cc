#include "src/cca/new_reno.h"

#include <algorithm>
#include <limits>
#include <new>

namespace ccas {

NewReno::NewReno(const NewRenoConfig& config)
    : config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(std::numeric_limits<uint64_t>::max()) {}

void NewReno::on_ack(const AckEvent& ack) {
  if (ack.in_recovery || ack.newly_acked == 0) return;
  if (in_slow_start()) {
    // RFC 5681 with appropriate byte counting: grow by the amount newly
    // acknowledged, capped at ssthresh.
    cwnd_ = std::min(cwnd_ + ack.newly_acked, std::max(ssthresh_, cwnd_));
    return;
  }
  // Congestion avoidance: +1 segment per cwnd's worth of acknowledged data.
  ack_credit_ += ack.newly_acked;
  while (ack_credit_ >= cwnd_) {
    ack_credit_ -= cwnd_;
    ++cwnd_;
  }
}

void NewReno::on_congestion_event(Time /*now*/, uint64_t /*inflight*/) {
  ssthresh_ = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(cwnd_) * config_.beta), config_.min_cwnd);
  cwnd_ = ssthresh_;
  ack_credit_ = 0;
}

void NewReno::on_recovery_exit(Time /*now*/, uint64_t /*inflight*/) {
  // cwnd was already set to ssthresh at the congestion event; growth simply
  // resumes (RFC 6582 full-ACK handling with pipe-based sending).
}

void NewReno::on_rto(Time /*now*/) {
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, config_.min_cwnd);
  cwnd_ = 1;
  ack_credit_ = 0;
}

void register_new_reno(CcaRegistry& registry) {
  registry.register_cca(
      "newreno", [](Rng& /*rng*/) { return std::make_unique<NewReno>(); },
      CcaPlacement{sizeof(NewReno), alignof(NewReno),
                   [](void* mem, Rng&) -> CongestionController* {
                     return new (mem) NewReno();
                   }});
}

}  // namespace ccas
