#include "src/cca/vegas.h"

#include <algorithm>
#include <limits>
#include <new>

namespace ccas {

Vegas::Vegas(const VegasConfig& config)
    : config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(std::numeric_limits<uint64_t>::max()) {}

void Vegas::on_ack(const AckEvent& ack) {
  if (ack.newly_acked == 0) return;
  if (ack.rtt_sample > TimeDelta::zero()) {
    base_rtt_ = std::min(base_rtt_, ack.rtt_sample);
    min_rtt_this_round_ = std::min(min_rtt_this_round_, ack.rtt_sample);
  }
  if (ack.in_recovery) return;

  // Round boundary: all data outstanding at the last boundary is now
  // delivered (packet-timed rounds, like BBR's).
  if (ack.delivered_total >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total + ack.inflight;
    vegas_round(ack);
    min_rtt_this_round_ = TimeDelta::infinite();
  }
}

void Vegas::vegas_round(const AckEvent& /*ack*/) {
  if (base_rtt_.is_infinite() || min_rtt_this_round_.is_infinite()) return;
  const double rtt = std::max(min_rtt_this_round_.sec(), 1e-9);
  const double base = base_rtt_.sec();
  const double expected = static_cast<double>(cwnd_) / base;
  const double actual = static_cast<double>(cwnd_) / rtt;
  last_diff_ = (expected - actual) * base;

  if (in_slow_start()) {
    // Vegas slow start: double only every other round, and exit as soon as
    // the flow detects its own queue building (diff > alpha... the original
    // uses a one-segment threshold; alpha is the common choice).
    if (last_diff_ > config_.alpha) {
      ssthresh_ = cwnd_;
      in_slow_start_ = false;
      return;
    }
    grow_this_round_ = !grow_this_round_;
    if (grow_this_round_) cwnd_ = std::min(cwnd_ * 2, ssthresh_);
    if (cwnd_ >= ssthresh_) in_slow_start_ = false;
    return;
  }

  if (last_diff_ < config_.alpha) {
    ++cwnd_;
  } else if (last_diff_ > config_.beta) {
    if (cwnd_ > config_.min_cwnd) --cwnd_;
  }
}

void Vegas::on_congestion_event(Time /*now*/, uint64_t /*inflight*/) {
  // Loss fallback: Reno-style halving.
  ssthresh_ = std::max(cwnd_ / 2, config_.min_cwnd);
  cwnd_ = ssthresh_;
  in_slow_start_ = false;
}

void Vegas::on_recovery_exit(Time /*now*/, uint64_t /*inflight*/) {}

void Vegas::on_rto(Time /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2, config_.min_cwnd);
  cwnd_ = 1;
  in_slow_start_ = true;
}

void register_vegas(CcaRegistry& registry) {
  registry.register_cca(
      "vegas", [](Rng& /*rng*/) { return std::make_unique<Vegas>(); },
      CcaPlacement{sizeof(Vegas), alignof(Vegas),
                   [](void* mem, Rng&) -> CongestionController* {
                     return new (mem) Vegas();
                   }});
}

}  // namespace ccas
