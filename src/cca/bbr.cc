#include "src/cca/bbr.h"

#include <algorithm>
#include <new>

#include "src/net/packet.h"

namespace ccas {

Bbr::Bbr(const BbrConfig& config, Rng& rng)
    : config_(config),
      rng_(rng),
      pacing_gain_(config.high_gain),
      cwnd_gain_(config.high_gain),
      max_bw_(static_cast<uint64_t>(config.bw_window_rounds)),
      cwnd_(config.initial_cwnd) {}

uint64_t Bbr::bdp_segments(double gain) const {
  if (!model_ready()) return config_.initial_cwnd;
  const double bdp_bytes = static_cast<double>(max_bw_.best()) / 8.0 * min_rtt_.sec();
  const double segments = gain * bdp_bytes / static_cast<double>(kMssBytes);
  return std::max<uint64_t>(static_cast<uint64_t>(segments + 0.999), config_.min_cwnd);
}

void Bbr::update_round(const AckEvent& ack) {
  round_start_ = false;
  if (!ack.rate.valid()) return;
  if (ack.rate.prior_delivered >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total;
    ++round_count_;
    round_start_ = true;
    if (in_recovery_ && round_count_ > recovery_end_round_) {
      // One round of packet conservation after entering recovery.
      packet_conservation_ = false;
    }
  }
}

void Bbr::update_bw_model(const AckEvent& ack) {
  if (!ack.rate.valid()) return;
  const auto bw = static_cast<uint64_t>(ack.rate.delivery_rate.bits_per_sec());
  // App-limited samples only raise the filter (we have no app-limited
  // phases with infinite sources, but keep the guard for completeness).
  if (!ack.rate.is_app_limited || bw >= max_bw_.best()) {
    max_bw_.update(bw, round_count_);
  }
}

void Bbr::update_min_rtt(const AckEvent& ack) {
  // The expiry decision must be latched *before* adopting a fresh sample:
  // Linux computes filter_expired once and uses it both to refresh the
  // estimate and to trigger PROBE_RTT in the same ACK.
  min_rtt_expired_ =
      !min_rtt_.is_infinite() && ack.now > min_rtt_stamp_ + config_.min_rtt_window;
  if (ack.rtt_sample <= TimeDelta::zero()) return;
  if (ack.rtt_sample < min_rtt_ || min_rtt_expired_) {
    min_rtt_ = ack.rtt_sample;
    min_rtt_stamp_ = ack.now;
  }
}

void Bbr::check_full_pipe(const AckEvent& /*ack*/) {
  if (filled_pipe_ || !round_start_) return;
  const uint64_t bw = max_bw_.best();
  const auto threshold =
      static_cast<uint64_t>(static_cast<double>(full_bw_bps_) * config_.full_bw_threshold);
  if (bw >= threshold || full_bw_bps_ == 0) {
    full_bw_bps_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= config_.full_bw_count) filled_pipe_ = true;
}

void Bbr::enter_probe_bw(Time now) {
  mode_ = Mode::kProbeBw;
  cwnd_gain_ = config_.cwnd_gain;
  // Linux picks a random initial phase, excluding the 0.75 drain phase.
  const auto r = static_cast<int>(rng_.next_below(BbrConfig::kCycleLength - 1));
  cycle_index_ = (r >= 1) ? r + 1 : 0;
  cycle_stamp_ = now;
  pacing_gain_ = config_.cycle_gains[cycle_index_];
}

void Bbr::advance_cycle_phase(Time now) {
  cycle_index_ = (cycle_index_ + 1) % BbrConfig::kCycleLength;
  cycle_stamp_ = now;
  pacing_gain_ = config_.cycle_gains[cycle_index_];
}

void Bbr::enter_probe_rtt() {
  mode_ = Mode::kProbeRtt;
  pacing_gain_ = 1.0;
  cwnd_gain_ = 1.0;
  probe_rtt_done_stamp_valid_ = false;
}

void Bbr::exit_probe_rtt(Time now) {
  min_rtt_stamp_ = now;
  // Linux's bbr_restore_cwnd: the window saved before the excursion comes
  // back instantly, so a 200 ms probe does not cost a slow rebuild.
  cwnd_ = std::max(cwnd_, prior_cwnd_);
  if (filled_pipe_) {
    enter_probe_bw(now);
  } else {
    mode_ = Mode::kStartup;
    pacing_gain_ = config_.high_gain;
    cwnd_gain_ = config_.high_gain;
  }
}

void Bbr::update_state_machine(const AckEvent& ack) {
  const Time now = ack.now;

  switch (mode_) {
    case Mode::kStartup:
      if (filled_pipe_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = config_.drain_gain;
        cwnd_gain_ = config_.high_gain;
      }
      break;
    case Mode::kDrain:
      if (ack.inflight <= bdp_segments(1.0)) enter_probe_bw(now);
      break;
    case Mode::kProbeBw: {
      const bool is_full_length = (now - cycle_stamp_) > min_rtt_;
      const double gain = pacing_gain_;
      bool advance = false;
      if (gain > 1.0) {
        // Stay in the probing phase until we actually created extra
        // inflight (or losses say the pipe is full).
        advance = is_full_length &&
                  (ack.newly_lost > 0 || ack.inflight >= bdp_segments(gain));
      } else if (gain < 1.0) {
        // Leave the draining phase early once inflight is back to 1 BDP.
        advance = is_full_length || ack.inflight <= bdp_segments(1.0);
      } else {
        advance = is_full_length;
      }
      if (advance) advance_cycle_phase(now);
      break;
    }
    case Mode::kProbeRtt:
      break;  // handled below
  }

  // PROBE_RTT entry: the min-RTT estimate had not been refreshed for a
  // whole window when this ACK arrived (latched in update_min_rtt).
  if (mode_ != Mode::kProbeRtt && min_rtt_expired_) {
    // Linux bbr_save_cwnd: remember the pre-excursion window (keep the
    // recovery-saved one if an episode is in progress).
    prior_cwnd_ = in_recovery_ ? std::max(prior_cwnd_, cwnd_) : cwnd_;
    enter_probe_rtt();
  }
  if (mode_ == Mode::kProbeRtt) {
    if (!probe_rtt_done_stamp_valid_ && ack.inflight <= config_.min_cwnd) {
      // Inflight has drained to the floor: hold for 200 ms + one round.
      probe_rtt_done_stamp_ = ack.now + config_.probe_rtt_duration;
      probe_rtt_done_stamp_valid_ = true;
      probe_rtt_round_done_ = false;
      probe_rtt_round_end_delivered_ = ack.delivered_total;
    } else if (probe_rtt_done_stamp_valid_) {
      if (round_start_ && ack.rate.prior_delivered >= probe_rtt_round_end_delivered_) {
        probe_rtt_round_done_ = true;
      }
      if (probe_rtt_round_done_ && ack.now >= probe_rtt_done_stamp_) {
        exit_probe_rtt(ack.now);
      }
    }
  }
}

void Bbr::update_pacing_and_cwnd(const AckEvent& ack) {
  // Pacing rate: gain * BtlBw (with a small margin, as Linux does). Before
  // the model has data, derive a rate from the initial window and the
  // first RTT sample; if there is no RTT yet, stay unpaced (IW burst).
  if (model_ready()) {
    const double bw_bps = static_cast<double>(max_bw_.best());
    pacing_rate_ =
        DataRate::bps_f(pacing_gain_ * bw_bps * config_.pacing_margin);
  } else if (!min_rtt_.is_infinite() || ack.rtt_sample > TimeDelta::zero()) {
    const TimeDelta rtt =
        min_rtt_.is_infinite() ? ack.rtt_sample : min_rtt_;
    const double bw_bps = static_cast<double>(cwnd_) *
                          static_cast<double>(kMssBytes) * 8.0 /
                          std::max(rtt.sec(), 1e-6);
    pacing_rate_ = DataRate::bps_f(config_.high_gain * bw_bps);
  }

  // Congestion window.
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = std::min(cwnd_, config_.min_cwnd);
    return;
  }
  const uint64_t target = bdp_segments(cwnd_gain_);
  if (in_recovery_ && packet_conservation_) {
    // One round of packet conservation after loss (Linux modulation).
    cwnd_ = std::max(cwnd_, ack.inflight + ack.newly_acked);
    cwnd_ = std::min(cwnd_, target + ack.newly_acked);
  } else if (filled_pipe_) {
    cwnd_ = std::min(cwnd_ + ack.newly_acked, target);
  } else if (cwnd_ < target || ack.delivered_total < config_.initial_cwnd) {
    // Pipe not yet filled: grow unconditionally toward the target.
    cwnd_ += ack.newly_acked;
  }
  cwnd_ = std::max(cwnd_, config_.min_cwnd);
}

void Bbr::on_ack(const AckEvent& ack) {
  last_inflight_ = ack.inflight;
  last_newly_lost_ = ack.newly_lost;
  update_round(ack);
  update_bw_model(ack);
  update_min_rtt(ack);
  check_full_pipe(ack);
  update_state_machine(ack);
  update_pacing_and_cwnd(ack);
}

void Bbr::on_congestion_event(Time /*now*/, uint64_t inflight) {
  // BBRv1 does not reduce its rate model on loss; it only briefly obeys
  // packet conservation, like Linux's CA_Recovery modulation.
  if (!in_recovery_) prior_cwnd_ = cwnd_;
  in_recovery_ = true;
  packet_conservation_ = true;
  recovery_end_round_ = round_count_ + 1;
  cwnd_ = std::max(inflight + 1, config_.min_cwnd);
}

void Bbr::on_recovery_exit(Time /*now*/, uint64_t /*inflight*/) {
  in_recovery_ = false;
  packet_conservation_ = false;
  cwnd_ = std::max(cwnd_, prior_cwnd_);
}

void Bbr::on_rto(Time /*now*/) {
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  cwnd_ = config_.min_cwnd;
  in_recovery_ = true;
  packet_conservation_ = true;
  recovery_end_round_ = round_count_ + 1;
}

void register_bbr(CcaRegistry& registry) {
  registry.register_cca(
      "bbr", [](Rng& rng) { return std::make_unique<Bbr>(BbrConfig{}, rng); },
      CcaPlacement{sizeof(Bbr), alignof(Bbr),
                   [](void* mem, Rng& rng) -> CongestionController* {
                     return new (mem) Bbr(BbrConfig{}, rng);
                   }});
}

}  // namespace ccas
