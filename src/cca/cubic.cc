#include "src/cca/cubic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>

namespace ccas {

Cubic::Cubic(const CubicConfig& config)
    : config_(config),
      cwnd_(static_cast<double>(config.initial_cwnd)),
      ssthresh_(std::numeric_limits<uint64_t>::max()) {}

void Cubic::start_epoch(Time now) {
  epoch_started_ = true;
  epoch_start_ = now;
  if (cwnd_ >= w_max_) {
    // We are already past the previous saturation point: probe from here.
    k_ = 0.0;
    origin_point_ = cwnd_;
  } else {
    // RFC 8312 (4.1): K = cbrt(W_max * (1 - beta) / C).
    k_ = std::cbrt(w_max_ * (1.0 - config_.beta) / config_.c);
    origin_point_ = w_max_;
  }
  w_est_ = cwnd_;
}

void Cubic::on_ack(const AckEvent& ack) {
  if (ack.in_recovery || ack.newly_acked == 0) return;
  const auto acked = static_cast<double>(ack.newly_acked);

  if (in_slow_start()) {
    cwnd_ = std::min(cwnd_ + acked,
                     std::max(static_cast<double>(ssthresh_), cwnd_));
    return;
  }

  if (!epoch_started_) {
    start_epoch(ack.now);
    min_rtt_at_epoch_ =
        ack.min_rtt.is_infinite() ? TimeDelta::millis(100) : ack.min_rtt;
  }
  const TimeDelta rtt =
      ack.min_rtt.is_infinite() ? min_rtt_at_epoch_ : ack.min_rtt;

  // RFC 8312 (4.1): target = W_cubic(t + RTT).
  const double t = (ack.now - epoch_start_).sec() + rtt.sec();
  const double dt = t - k_;
  const double target = origin_point_ + config_.c * dt * dt * dt;

  double delta;
  if (target > cwnd_) {
    // Grow by (target - cwnd)/cwnd per ACKed segment, capped at +0.5
    // segment per segment acked (Linux's cnt >= 2 clamp).
    delta = std::min((target - cwnd_) / cwnd_, 0.5) * acked;
  } else {
    // Maximum-probing plateau: crawl forward very slowly.
    delta = 0.01 / cwnd_ * acked;
  }
  cwnd_ += delta;

  if (config_.tcp_friendliness) {
    // RFC 8312 (4.2): W_est(t) = W_max*beta + [3(1-beta)/(1+beta)] * t/RTT.
    const double alpha =
        3.0 * (1.0 - config_.beta) / (1.0 + config_.beta);
    const double elapsed_rounds = rtt.sec() > 0.0 ? t / rtt.sec() : 0.0;
    w_est_ = w_max_ * config_.beta + alpha * elapsed_rounds;
    if (w_est_ > cwnd_) {
      // Follow the Reno estimate, but without discontinuous jumps: grow at
      // most `acked` segments per ACK toward it.
      cwnd_ = std::min(w_est_, cwnd_ + acked);
    }
  }
}

void Cubic::on_congestion_event(Time /*now*/, uint64_t /*inflight*/) {
  epoch_started_ = false;
  if (config_.fast_convergence && cwnd_ < w_max_) {
    // RFC 8312 (4.6): release bandwidth faster when the saturation point
    // keeps shrinking (new flows are joining).
    w_max_ = cwnd_ * (2.0 - config_.beta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  cwnd_ = std::max(cwnd_ * config_.beta, static_cast<double>(config_.min_cwnd));
  ssthresh_ = static_cast<uint64_t>(cwnd_);
}

void Cubic::on_recovery_exit(Time /*now*/, uint64_t /*inflight*/) {}

void Cubic::on_rto(Time /*now*/) {
  // Linux resets all CUBIC epoch state when entering the loss state.
  epoch_started_ = false;
  w_max_ = 0.0;
  ssthresh_ = std::max<uint64_t>(
      static_cast<uint64_t>(cwnd_ * config_.beta), config_.min_cwnd);
  cwnd_ = 1.0;
}

void register_cubic(CcaRegistry& registry) {
  registry.register_cca(
      "cubic", [](Rng& /*rng*/) { return std::make_unique<Cubic>(); },
      CcaPlacement{sizeof(Cubic), alignof(Cubic),
                   [](void* mem, Rng&) -> CongestionController* {
                     return new (mem) Cubic();
                   }});
}

}  // namespace ccas
