#include "src/cca/cca.h"

#include <stdexcept>
#include <utility>

#include "src/cca/bbr.h"
#include "src/cca/bbr2.h"
#include "src/cca/copa.h"
#include "src/cca/cubic.h"
#include "src/cca/new_reno.h"
#include "src/cca/vegas.h"

namespace ccas {

CcaRegistry& CcaRegistry::instance() {
  // Built-in CCAs are registered explicitly here (not via static
  // initializers, which a static library would silently drop).
  static CcaRegistry* registry = [] {
    auto* r = new CcaRegistry();
    register_new_reno(*r);
    register_cubic(*r);
    register_bbr(*r);
    register_bbr2(*r);
    register_copa(*r);
    register_vegas(*r);
    return r;
  }();
  return *registry;
}

void CcaRegistry::register_cca(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
  placements_.erase(name);  // a re-registration may drop its placement
}

void CcaRegistry::register_cca(const std::string& name, Factory factory,
                               const CcaPlacement& placement) {
  factories_[name] = std::move(factory);
  placements_[name] = placement;
}

const CcaPlacement* CcaRegistry::placement(const std::string& name) const {
  auto it = placements_.find(name);
  return it == placements_.end() ? nullptr : &it->second;
}

std::unique_ptr<CongestionController> CcaRegistry::create(const std::string& name,
                                                          Rng& rng) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [n, _] : factories_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown CCA '" + name + "' (known: " + known + ")");
  }
  return it->second(rng);
}

bool CcaRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> CcaRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, _] : factories_) out.push_back(n);
  return out;
}

std::unique_ptr<CongestionController> make_cca(const std::string& name, Rng& rng) {
  return CcaRegistry::instance().create(name, rng);
}

}  // namespace ccas
