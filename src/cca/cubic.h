// CUBIC congestion control per RFC 8312 (the Linux default the paper
// evaluates): cubic window growth anchored at the last W_max, fast
// convergence, and the TCP-friendly (Reno-emulation) region.
#pragma once

#include "src/cca/cca.h"

namespace ccas {

struct CubicConfig {
  uint64_t initial_cwnd = 10;
  uint64_t min_cwnd = 2;
  double c = 0.4;      // cubic scaling constant (segments/sec^3)
  double beta = 0.7;   // multiplicative decrease factor
  bool fast_convergence = true;
  bool tcp_friendliness = true;
};

class Cubic final : public CongestionController {
 public:
  explicit Cubic(const CubicConfig& config = {});

  void on_ack(const AckEvent& ack) override;
  void on_congestion_event(Time now, uint64_t inflight) override;
  void on_recovery_exit(Time now, uint64_t inflight) override;
  void on_rto(Time now) override;

  [[nodiscard]] uint64_t cwnd() const override {
    return static_cast<uint64_t>(cwnd_);
  }
  [[nodiscard]] uint64_t ssthresh() const override { return ssthresh_; }
  [[nodiscard]] std::string name() const override { return "cubic"; }
  [[nodiscard]] bool in_slow_start() const {
    return static_cast<uint64_t>(cwnd_) < ssthresh_;
  }
  // Exposed for tests: K and W_max of the current cubic epoch.
  [[nodiscard]] double k_seconds() const { return k_; }
  [[nodiscard]] double w_max() const { return w_max_; }

 private:
  void start_epoch(Time now);

  CubicConfig config_;
  double cwnd_;          // fractional window in segments
  uint64_t ssthresh_;
  double w_max_ = 0.0;   // window just before the last reduction
  bool epoch_started_ = false;
  Time epoch_start_ = Time::zero();
  double k_ = 0.0;            // seconds to return to w_max_
  double origin_point_ = 0.0;
  // Reno-emulation state for the TCP-friendly region (RFC 8312 4.2).
  double w_est_ = 0.0;
  TimeDelta min_rtt_at_epoch_ = TimeDelta::zero();
};

void register_cubic(CcaRegistry& registry);

}  // namespace ccas
