// Always-on lightweight simulation profiler.
//
// A SimProfile lives inside each Simulator and is updated with plain
// counter increments on the hot paths (event dispatch, scheduler tier
// placement, timer wakeups) — cheap enough to leave enabled in every run.
// run()/run_until() accumulate wall-clock and simulated time, so the
// profile can report events/sec and wall-clock per simulated second, the
// two numbers the CoreScale reproduction budget is written in. Exposed via
// `ccas_run --perf` and the `ccas_perf` microbenchmark.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ccas {

struct SimProfile {
  // Dispatch counters, by event tag (tags >= kMaxTag share the last
  // bucket; the simulator's handlers use small tags).
  static constexpr size_t kMaxTag = 8;
  uint64_t events_dispatched = 0;
  std::array<uint64_t, kMaxTag + 1> events_by_tag{};

  // Scheduler tier placement (timing-wheel internals).
  uint64_t pushes_due = 0;       // landed in the current-slot heap
  uint64_t pushes_wheel = 0;     // landed in a wheel slot
  uint64_t pushes_overflow = 0;  // beyond the wheels' horizon
  uint64_t wheel_cascades = 0;   // coarse slots re-filed into finer levels
  uint64_t overflow_drains = 0;  // overflow pages pulled back into the wheels

  // Timer wakeup accounting (the lazy re-arm cost, satellite of the
  // scheduler rework): stale = superseded generation, chase = entry fired
  // before a later re-armed deadline, coalesced = earlier re-arms absorbed
  // into an existing entry within the configured slack.
  uint64_t timer_stale_wakeups = 0;
  uint64_t timer_chase_wakeups = 0;
  uint64_t timer_coalesced_rearms = 0;

  // Impairment-stage activity (ImpairedLink): packets dropped by random
  // loss / GE loss / link-down faults, duplicate copies created, and
  // packets held for a jitter/reorder delay.
  uint64_t impair_drops = 0;
  uint64_t impair_dups = 0;
  uint64_t impair_delays = 0;

  // AQM qdisc activity (src/net/qdisc/): packets dropped after admission
  // (CoDel-family head drops, FQ-CoDel fat-flow eviction) and ECN CE
  // marks set instead of drops. Zero under plain drop-tail.
  uint64_t qdisc_head_drops = 0;
  uint64_t qdisc_marks = 0;

  // Global heap allocations (operator new, counted by
  // src/util/alloc_counter.cc) performed while inside run()/run_until().
  // Steady-state bulk transfer and churn arrivals are designed to keep the
  // per-event rate at zero once pools/rings reach their high-water sets;
  // the perf gate enforces that (DESIGN.md §12).
  uint64_t heap_allocs = 0;

  // Wall clock, accumulated across run()/run_until() calls.
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;

  // Sharded-run accounting (src/sim/parallel/), filled only on aggregated
  // profiles of multi-domain runs. Counter fields above are then sums over
  // the core + all domains; wall_seconds is the fabric's end-to-end wall
  // clock (honest parallel events/s), while the two phase clocks below
  // split it into the serial core phase and the parallel edge phase.
  uint64_t shard_domains = 0;
  uint64_t shard_windows = 0;  // conservative windows executed
  double shard_core_wall_seconds = 0.0;
  double shard_edge_wall_seconds = 0.0;

  [[nodiscard]] uint64_t timer_wasted_wakeups() const {
    return timer_stale_wakeups + timer_chase_wakeups;
  }
  [[nodiscard]] double events_per_wall_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events_dispatched) / wall_seconds
                              : 0.0;
  }
  [[nodiscard]] double wall_sec_per_sim_sec() const {
    return sim_seconds > 0.0 ? wall_seconds / sim_seconds : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return events_dispatched > 0
               ? static_cast<double>(heap_allocs) /
                     static_cast<double>(events_dispatched)
               : 0.0;
  }

  // Multi-line human-readable report (the `--perf` output).
  [[nodiscard]] std::string summary() const;
};

}  // namespace ccas
