// Core event types for the discrete-event simulator.
//
// The hot path avoids std::function: events carry a raw (non-owning) pointer
// to an EventHandler plus a small integer tag and argument. Handlers are
// long-lived simulation objects (links, queues, TCP endpoints) that outlive
// every event referencing them.
#pragma once

#include <cstdint>

#include "src/util/units.h"

namespace ccas {

class EventHandler {
 public:
  virtual ~EventHandler() = default;
  // `tag` distinguishes event kinds within one handler; `arg` is an opaque
  // payload (index, generation counter, ...).
  virtual void on_event(uint32_t tag, uint64_t arg) = 0;
};

// Causal ordering key for sharded-mode simulators (src/sim/parallel/).
// `armed_at` is the simulated time of the push that created the event;
// `ctr` orders pushes within one nanosecond of one engine (a per-engine
// counter that resets when the engine's clock moves — 32 bits bounds
// same-nanosecond pushes, not the run length). A serial push happens
// during the dispatch of its parent, so serial FIFO order is exactly
// lexicographic (at, armed_at, ctr); the parallel engines stamp these
// fields to reconstruct that order across domains. Serial simulators
// leave the key zero, which degenerates to the historical (at, seq) FIFO.
struct CausalKey {
  Time armed_at = Time::zero();
  uint32_t ctr = 0;
};

struct Event {
  Time at;
  // Monotonic sequence number: ties in `at` are broken FIFO so simulations
  // are deterministic regardless of heap internals.
  uint64_t seq = 0;
  Time armed_at = Time::zero();
  EventHandler* handler = nullptr;
  uint64_t arg = 0;
  uint32_t ctr = 0;
  uint32_t tag = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    // Zero for serial runs, so this reduces to the historical (at, seq).
    if (a.armed_at != b.armed_at) return a.armed_at > b.armed_at;
    if (a.ctr != b.ctr) return a.ctr > b.ctr;
    return a.seq > b.seq;
  }
};

}  // namespace ccas
