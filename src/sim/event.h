// Core event types for the discrete-event simulator.
//
// The hot path avoids std::function: events carry a raw (non-owning) pointer
// to an EventHandler plus a small integer tag and argument. Handlers are
// long-lived simulation objects (links, queues, TCP endpoints) that outlive
// every event referencing them.
#pragma once

#include <cstdint>

#include "src/util/units.h"

namespace ccas {

class EventHandler {
 public:
  virtual ~EventHandler() = default;
  // `tag` distinguishes event kinds within one handler; `arg` is an opaque
  // payload (index, generation counter, ...).
  virtual void on_event(uint32_t tag, uint64_t arg) = 0;
};

struct Event {
  Time at;
  // Monotonic sequence number: ties in `at` are broken FIFO so simulations
  // are deterministic regardless of heap internals.
  uint64_t seq = 0;
  EventHandler* handler = nullptr;
  uint32_t tag = 0;
  uint64_t arg = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace ccas
