#include "src/sim/parallel/delivery.h"

#include <stdexcept>
#include <utility>

namespace ccas {

void DeliveryStage::register_flow(uint32_t flow_id, PacketSink* sender,
                                  PacketSink* receiver) {
  if (sender == nullptr || receiver == nullptr) {
    throw std::invalid_argument("DeliveryStage: null endpoint");
  }
  if (flow_id >= senders_.size()) {
    senders_.resize(flow_id + 1, nullptr);
    receivers_.resize(flow_id + 1, nullptr);
  }
  senders_[flow_id] = sender;
  receivers_[flow_id] = receiver;
}

void DeliveryStage::deliver_at(Time at, CausalKey key, Packet&& pkt) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(pkt);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(pkt));
  }
  ++in_transit_;
  in_transit_bytes_ += slots_[slot].size_bytes;
  sim_.schedule_at_keyed(at, key, this, 0, slot);
}

void DeliveryStage::on_event(uint32_t /*tag*/, uint64_t arg) {
  const auto slot = static_cast<uint32_t>(arg);
  Packet p = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  --in_transit_;
  in_transit_bytes_ -= p.size_bytes;
  const uint32_t flow = p.flow_id;
  if (flow >= senders_.size()) {
    throw std::logic_error("DeliveryStage: handoff for unregistered flow");
  }
  PacketSink* sink =
      p.type == PacketType::kAck ? senders_[flow] : receivers_[flow];
  sink->accept(std::move(p));
}

}  // namespace ccas
