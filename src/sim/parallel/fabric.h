// The conservative parallel engine: N edge domains + the core bottleneck,
// synchronized in latency-bounded windows.
//
// Protocol (DESIGN.md §11). The dumbbell's only inter-domain latency is
// the netem propagation delay between the core and the endpoints, so the
// classic conservative lookahead L = min over sharded flows of their
// minimum one-way delay. Simulated time advances in windows of
// win = L - 1ns; within each window the fabric runs two phases:
//
//   1. Edge phase (parallel): every domain runs its events in [W, B)
//      (inclusive of B on the caller's final window). Endpoint emissions
//      land in per-domain gate buffers — the edge->core hop is zero-delay
//      in the serial topology, so they carry their emission timestamps.
//   2. Core phase (caller's thread): the captured emissions are merged,
//      stably sorted by (time, flow_id), and replayed into the core
//      interleaved with the core's own events — each injection at time t
//      applies after all core events < t and before core events at t.
//      Netem releases for sharded flows are intercepted by the relay and
//      staged; their deliver_at is >= W + L > B, strictly beyond every
//      event either side processes this window, which is the whole
//      correctness argument: no domain can ever need an event it has not
//      yet been handed.
//
// At the barrier the staged handoffs are scheduled into their domains'
// delivery stages (one event per packet, same as the serial netem), the
// cooperative budget is enforced on summed counts, and the next window
// begins. Every stage of the exchange is ordered by simulation state
// only — thread interleaving cannot reach any of it — so a sharded run
// is deterministic and byte-identical across shard counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/delay_line.h"
#include "src/sim/parallel/delivery.h"
#include "src/sim/parallel/exchange.h"
#include "src/sim/parallel/shard_plan.h"
#include "src/sim/simulator.h"

namespace ccas {

// Persistent worker threads, one per domain. run(fn) executes fn(i) for
// every i on worker i and blocks until all are done; a worker's exception
// is captured and rethrown on the caller (lowest index wins, so repeated
// runs fail deterministically).
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void run(const std::function<void(int)>& fn);

 private:
  void worker_main(int index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* fn_ = nullptr;
  uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

class ShardFabric final : public NetemRelay {
 public:
  // `lookahead` must be >= 2ns (window length is lookahead - 1ns).
  ShardFabric(Simulator& core, const ShardPlan& plan, TimeDelta lookahead);
  ~ShardFabric() override;

  [[nodiscard]] int shards() const { return plan_.shards; }
  [[nodiscard]] Simulator& domain_sim(int d) { return domains_[d]->sim; }
  [[nodiscard]] DeliveryStage& delivery(int d) { return domains_[d]->delivery; }
  [[nodiscard]] GateSink& data_gate(int d) { return domains_[d]->data_gate; }
  [[nodiscard]] GateSink& ack_gate(int d) { return domains_[d]->ack_gate; }

  // Where replayed emissions enter the core: the topology's per-flow data
  // entry (switch or host NIC) and the shared ACK entry.
  void set_core_data_entry(uint32_t flow_id, PacketSink* entry);
  void set_core_ack_entry(PacketSink* entry) { core_ack_entry_ = entry; }

  // NetemRelay: core netems hand over releases for sharded flows.
  bool offload(uint32_t flow_id, Time deliver_at, Packet&& pkt) override;

  // Cooperative budget, enforced on summed counts at window barriers; the
  // cancellation token is additionally installed per simulator so the
  // wall-clock watchdog stays responsive inside long windows. The budget
  // must outlive every run_to call. nullptr disables.
  void set_budget(const SimBudget* budget);

  // Advances every domain and the core to `target` (inclusive, matching
  // the serial Simulator::run_until semantics at harness sync points).
  // After it returns all simulators sit exactly at `target` and all
  // exchange buffers are empty, so the caller may read cross-domain state
  // freely until the next run_to.
  void run_to(Time target);

  [[nodiscard]] Time now() const { return now_; }
  // Total events dispatched across the core and every domain — the
  // sharded equivalent of the serial sim.events_processed().
  [[nodiscard]] uint64_t total_events() const;
  // Counter sums across all simulators, with shard accounting attached
  // and wall_seconds replaced by the fabric's own end-to-end clock.
  [[nodiscard]] SimProfile aggregate_profile() const;

 private:
  struct Domain {
    Simulator sim;
    DeliveryStage delivery;
    std::vector<IngressEntry> ingress;   // gate captures, drained per window
    GateSink data_gate;
    GateSink ack_gate;
    std::vector<HandoffEntry> staging;  // core->edge, flushed at barriers
    Domain()
        : delivery(sim),
          data_gate(sim, /*is_data=*/true, ingress),
          ack_gate(sim, /*is_data=*/false, ingress) {}
  };

  void enforce_budget_at_barrier() const;

  Simulator& core_;
  ShardPlan plan_;
  TimeDelta win_;
  Time now_ = Time::zero();

  std::vector<std::unique_ptr<Domain>> domains_;
  WorkerPool pool_;
  std::vector<PacketSink*> core_data_entries_;
  PacketSink* core_ack_entry_ = nullptr;
  std::vector<IngressEntry> merged_;  // reused scratch for the window merge

  const SimBudget* budget_ = nullptr;
  SimBudget cancel_only_;  // per-sim install: cancellation token only

  uint64_t windows_run_ = 0;
  double fabric_wall_seconds_ = 0.0;
  double core_wall_seconds_ = 0.0;
  double edge_wall_seconds_ = 0.0;

  // Push-slot counter shared by every engine during single-threaded
  // setup, so cross-engine setup pushes keep their construction order;
  // detached (each engine continues on its own counter) before the first
  // window runs.
  uint32_t setup_major_ = 0;
  bool counters_detached_ = false;
};

}  // namespace ccas
