// Cross-domain exchange records for the conservative parallel engine.
//
// Two directions, two shapes:
//
//   edge -> core (IngressEntry): an endpoint emitted a packet at domain
//   time `at`. The edge->core hop is zero-delay (switch and netems are
//   attached directly to the endpoints in the serial topology), so the
//   fabric replays the packet into the core at exactly `at`, placed among
//   the core's same-timestamp events by the root event's causal key: the
//   serial FIFO dispatched the emitting timer/delivery at position
//   (at, armed_at, ctr) among the events at `at`, and the injection takes
//   exactly that position (see event.h). Entries from all domains are
//   merged and stably sorted by (at, root key, flow_id); entries with
//   fully equal keys keep their capture order, so the replay order is
//   deterministic and independent of the shard count and of thread
//   interleaving.
//
//   core -> edge (HandoffEntry): a netem computed a packet's release time
//   `deliver_at` for a flow homed on an edge domain. The core->edge hop
//   carries the flow's one-way propagation delay, so deliver_at is at
//   least one lookahead beyond the current window and the entry can be
//   scheduled into the target domain at the window barrier.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace ccas {

struct IngressEntry {
  Time at = Time::zero();
  // Key of the domain event whose handler emitted the packet: the serial
  // position of this injection among the core's events at `at`. Core
  // pushes made while replaying the injection allocate plain core slots —
  // injections interleave with core dispatches in serial order, so the
  // synchronous send chain's pushes land in serial relative order too.
  CausalKey root;
  uint32_t flow_id = 0;
  bool is_data = false;  // data enters at data_entry(flow); ACKs at ack_entry()
  Packet pkt;
};

struct HandoffEntry {
  Time deliver_at = Time::zero();
  // Key the serial push (netem -> event queue) would have carried; the
  // delivery stage schedules the domain event with exactly this key.
  CausalKey key;
  Packet pkt;
};

// The endpoint-facing capture sink: senders of a domain point their data
// path at the domain's data gate, receivers their ACK path at its ACK
// gate. Both gates of one domain append to the same buffer, so two
// same-timestamp emissions of one flow (a data segment and an ACK) keep
// the order the domain actually dispatched them in — the stable sort at
// the merge cannot see past its (at, flow_id) key. The buffer is drained
// by the fabric at window barriers; between barriers only the owning
// domain's thread touches it.
class GateSink final : public PacketSink {
 public:
  GateSink(Simulator& sim, bool is_data, std::vector<IngressEntry>& buf)
      : sim_(sim), is_data_(is_data), buf_(buf) {}

  void accept(Packet&& pkt) override {
    buf_.push_back(IngressEntry{sim_.now(),
                                CausalKey{sim_.current_armed_at(), sim_.current_ctr()},
                                pkt.flow_id, is_data_, std::move(pkt)});
  }

 private:
  Simulator& sim_;
  bool is_data_;
  std::vector<IngressEntry>& buf_;
};

}  // namespace ccas
