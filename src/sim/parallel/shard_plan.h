// Static flow→domain assignment for the conservative parallel engine.
//
// A sharded run splits one cell into N edge domains plus the core: the
// bottleneck (switch, qdisc, link, impairment stage, both netems) always
// runs on the core, and each flow's two endpoints (sender + receiver,
// with their pacing/RTO/delack/GRO timers) run together on one edge
// domain. Flows are dealt round-robin so same-group flows spread evenly.
//
// Flows at ids >= sharded_flows are core-resident: the churn extension
// creates flows dynamically from the master RNG in arrival order, which
// only the core's event order can reproduce, so dynamic flows keep their
// endpoints on the core and never cross a domain boundary.
#pragma once

#include <cstdint>

namespace ccas {

struct ShardPlan {
  static constexpr int kCore = -1;

  int shards = 1;
  uint32_t sharded_flows = 0;  // flows [0, sharded_flows) are distributed

  [[nodiscard]] int domain_of(uint32_t flow_id) const {
    return flow_id < sharded_flows ? static_cast<int>(flow_id % shards) : kCore;
  }
};

}  // namespace ccas
