// Per-domain delivery stage: the edge-side terminus of core->edge
// handoffs. Plays the role the netem event + flow demux play in the
// serial path — it schedules exactly one event per packet (tag 0, like
// NetemDelay), so the total event count of a sharded run matches the
// serial run event for event — but keeps its own per-flow sink registry
// instead of sharing the topology's FlowDemux, whose counters would be
// written from several threads at once.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace ccas {

class DeliveryStage final : public EventHandler {
 public:
  explicit DeliveryStage(Simulator& sim) : sim_(sim) {}

  // Registers the two endpoints of a flow homed on this domain. Data
  // packets go to the receiver, ACKs to the sender (the only two packet
  // types the core ever hands over).
  void register_flow(uint32_t flow_id, PacketSink* sender, PacketSink* receiver);

  // Schedules one delivery event at `at`, carrying the causal key of the
  // serial push that would have created it (the core netem's accept).
  // Called by the fabric at window barriers (the domain is parked).
  void deliver_at(Time at, CausalKey key, Packet&& pkt);

  void on_event(uint32_t tag, uint64_t arg) override;

  // Packets scheduled but not yet delivered (auditor holder accounting).
  [[nodiscard]] size_t in_transit() const { return in_transit_; }
  [[nodiscard]] int64_t in_transit_bytes() const { return in_transit_bytes_; }

 private:
  Simulator& sim_;
  std::vector<PacketSink*> senders_;
  std::vector<PacketSink*> receivers_;
  std::vector<Packet> slots_;
  std::vector<uint32_t> free_slots_;
  size_t in_transit_ = 0;
  int64_t in_transit_bytes_ = 0;
};

}  // namespace ccas
