#include "src/sim/parallel/fabric.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace ccas {

WorkerPool::WorkerPool(int workers) {
  if (workers <= 0) throw std::invalid_argument("WorkerPool needs >= 1 worker");
  errors_.resize(static_cast<size_t>(workers));
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::worker_main(int index) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = fn_;
    }
    std::exception_ptr err;
    try {
      (*fn)(index);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      errors_[static_cast<size_t>(index)] = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_ = static_cast<int>(threads_.size());
    ++epoch_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  // Rethrow the lowest-index failure so repeated runs fail the same way
  // regardless of which worker happened to finish first.
  for (std::exception_ptr& err : errors_) {
    if (err) {
      std::exception_ptr e = std::move(err);
      for (std::exception_ptr& rest : errors_) rest = nullptr;
      std::rethrow_exception(e);
    }
  }
}

ShardFabric::ShardFabric(Simulator& core, const ShardPlan& plan,
                         TimeDelta lookahead)
    : core_(core), plan_(plan), pool_(plan.shards) {
  if (plan.shards < 1) throw std::invalid_argument("ShardFabric: shards < 1");
  if (lookahead < TimeDelta::nanos(2)) {
    throw std::invalid_argument(
        "ShardFabric: lookahead below 2ns cannot form a conservative window");
  }
  win_ = lookahead - TimeDelta::nanos(1);
  domains_.reserve(static_cast<size_t>(plan.shards));
  // Exchange buffers (gate captures, core->edge staging, the merge
  // scratch) are drained with clear() every window, so their capacity is
  // the high-water mark and is reused for the rest of the run. Seed that
  // capacity proportional to the sharded flow population up front: a few
  // in-flight packets per flow covers typical windows, and warm-up growth
  // (before any measurement window) absorbs the tail.
  const size_t per_domain =
      static_cast<size_t>(plan.sharded_flows) /
          static_cast<size_t>(plan.shards > 0 ? plan.shards : 1) * 4 + 256;
  for (int d = 0; d < plan.shards; ++d) {
    domains_.push_back(std::make_unique<Domain>());
    domains_.back()->ingress.reserve(per_domain);
    domains_.back()->staging.reserve(per_domain);
  }
  core_data_entries_.reserve(plan.sharded_flows);
  merged_.reserve(static_cast<size_t>(plan.sharded_flows) * 4 + 1024);
  // Causal keys reconstruct the serial same-nanosecond dispatch order
  // across engines (event.h). Topology construction precedes the fabric,
  // so its setup pushes carry zero keys and sort first — exactly their
  // serial (earliest-seq) position.
  core_.enable_causal_keys();
  core_.share_setup_counter(&setup_major_);
  for (auto& dom : domains_) {
    dom->sim.enable_causal_keys();
    dom->sim.share_setup_counter(&setup_major_);
  }
}

ShardFabric::~ShardFabric() {
  // Uninstall the per-sim cancellation budgets before the sims die.
  if (budget_ != nullptr) {
    core_.set_budget(nullptr);
    for (auto& dom : domains_) dom->sim.set_budget(nullptr);
  }
}

void ShardFabric::set_core_data_entry(uint32_t flow_id, PacketSink* entry) {
  if (flow_id >= core_data_entries_.size()) {
    core_data_entries_.resize(flow_id + 1, nullptr);
  }
  core_data_entries_[flow_id] = entry;
}

bool ShardFabric::offload(uint32_t flow_id, Time deliver_at, Packet&& pkt) {
  const int d = plan_.domain_of(flow_id);
  if (d == ShardPlan::kCore) return false;
  // Consume a core push slot exactly where the serial netem would have
  // pushed its release event; the delivery stage schedules the domain
  // event with this key, preserving its serial same-ns position.
  domains_[static_cast<size_t>(d)]->staging.push_back(
      HandoffEntry{deliver_at, core_.allocate_push_key(), std::move(pkt)});
  return true;
}

void ShardFabric::set_budget(const SimBudget* budget) {
  budget_ = (budget != nullptr && budget->any()) ? budget : nullptr;
  // Event and RSS ceilings are enforced at barriers on summed counts; only
  // the cancellation token is worth polling inside a window.
  cancel_only_ = SimBudget{};
  cancel_only_.cancel = budget_ != nullptr ? budget_->cancel : nullptr;
  const SimBudget* per_sim =
      cancel_only_.cancel != nullptr ? &cancel_only_ : nullptr;
  core_.set_budget(per_sim);
  for (auto& dom : domains_) dom->sim.set_budget(per_sim);
}

uint64_t ShardFabric::total_events() const {
  uint64_t total = core_.events_processed();
  for (const auto& dom : domains_) total += dom->sim.events_processed();
  return total;
}

void ShardFabric::enforce_budget_at_barrier() const {
  if (budget_ == nullptr) return;
  const SimBudget& b = *budget_;
  const uint64_t events = total_events();
  if (b.max_events != 0 && events >= b.max_events) {
    throw BudgetExceeded(
        BudgetExceeded::Kind::kSimEvents,
        "simulated-event budget exceeded: " + std::to_string(events) +
            " events (ceiling " + std::to_string(b.max_events) + ")");
  }
  if (b.cancel != nullptr && b.cancel->load(std::memory_order_relaxed)) {
    throw BudgetExceeded(BudgetExceeded::Kind::kWallClock,
                         "cancelled: wall-clock watchdog fired at t=" +
                             std::to_string(now_.sec()) + "s after " +
                             std::to_string(events) + " events");
  }
  if (b.max_rss_bytes > 0) {
    int64_t pending = static_cast<int64_t>(core_.pending_events());
    for (const auto& dom : domains_) {
      pending += static_cast<int64_t>(dom->sim.pending_events());
    }
    int64_t estimate = pending * SimBudget::kPendingEventRssBytes;
    if (b.extra_rss_bytes) estimate += b.extra_rss_bytes();
    if (estimate > b.max_rss_bytes) {
      throw BudgetExceeded(
          BudgetExceeded::Kind::kRssEstimate,
          "estimated RSS " + std::to_string(estimate) + " B over ceiling " +
              std::to_string(b.max_rss_bytes) + " B (" +
              std::to_string(pending) + " pending events)");
    }
  }
}

void ShardFabric::run_to(Time target) {
  using clock = std::chrono::steady_clock;
  if (target < now_) throw std::invalid_argument("ShardFabric: target in the past");
  if (!counters_detached_) {
    // Setup is over: each engine continues from the shared slot counter's
    // final value on its own copy (run-phase pushes sort after every
    // setup push of the same nanosecond, as they did serially).
    core_.unshare_setup_counter();
    for (auto& dom : domains_) dom->sim.unshare_setup_counter();
    counters_detached_ = true;
  }
  const auto fabric_start = clock::now();
  // do-while: even with now_ == target, one inclusive pass runs — the
  // serial run_until(t) with now == t still processes events at t, and
  // harness sync points (warmup_end with zero stagger+warmup) rely on it.
  do {
    Time bound = now_ + win_;
    const bool final_step = bound >= target;
    if (final_step) bound = target;

    // Phase 1: edge domains in parallel. Interior windows are half-open;
    // the final window is inclusive so the caller observes exactly the
    // state a serial run_until(target) would leave behind. That is sound
    // because no pending handoff can be due at or before `target`: every
    // handoff staged so far has deliver_at > the barrier it was staged at.
    const auto edge_start = clock::now();
    pool_.run([this, bound, final_step](int d) {
      Simulator& s = domains_[static_cast<size_t>(d)]->sim;
      if (final_step) {
        s.run_until(bound);
      } else {
        s.run_until_excl(bound);
      }
    });
    edge_wall_seconds_ +=
        std::chrono::duration<double>(clock::now() - edge_start).count();

    // Phase 2: merge the window's endpoint emissions into replay order.
    merged_.clear();
    for (auto& dom : domains_) {
      merged_.insert(merged_.end(),
                     std::make_move_iterator(dom->ingress.begin()),
                     std::make_move_iterator(dom->ingress.end()));
      dom->ingress.clear();
    }
    std::stable_sort(merged_.begin(), merged_.end(),
                     [](const IngressEntry& a, const IngressEntry& b) {
                       if (a.at != b.at) return a.at < b.at;
                       if (a.root.armed_at != b.root.armed_at) {
                         return a.root.armed_at < b.root.armed_at;
                       }
                       if (a.root.ctr != b.root.ctr) return a.root.ctr < b.root.ctr;
                       return a.flow_id < b.flow_id;
                     });

    // Phase 3: core, with injections interleaved — each takes, among the
    // core's same-timestamp events, exactly the position the serial FIFO
    // gave its root event (the causal key ordering of event.h). Pushes
    // made by an injection's synchronous send chain allocate plain core
    // slots: injections interleave with core dispatches in serial order,
    // so those slots are consumed in serial relative order as well.
    const auto core_start = clock::now();
    for (IngressEntry& e : merged_) {
      core_.run_until_before(e.at, e.root);
      PacketSink* entry = e.is_data ? core_data_entries_[e.flow_id] : core_ack_entry_;
      entry->accept(std::move(e.pkt));
    }
    if (final_step) {
      core_.run_until(bound);
    } else {
      core_.run_until_excl(bound);
    }
    core_wall_seconds_ +=
        std::chrono::duration<double>(clock::now() - core_start).count();

    // Phase 4 (barrier): hand the staged releases to their domains, in
    // staging order == netem accept order.
    for (auto& dom : domains_) {
      for (HandoffEntry& h : dom->staging) {
        dom->delivery.deliver_at(h.deliver_at, h.key, std::move(h.pkt));
      }
      dom->staging.clear();
    }
    now_ = bound;
    ++windows_run_;
    enforce_budget_at_barrier();
  } while (now_ < target);
  fabric_wall_seconds_ +=
      std::chrono::duration<double>(clock::now() - fabric_start).count();
}

SimProfile ShardFabric::aggregate_profile() const {
  SimProfile agg = core_.profile();
  for (const auto& dom : domains_) {
    const SimProfile& p = dom->sim.profile();
    agg.events_dispatched += p.events_dispatched;
    for (size_t t = 0; t < agg.events_by_tag.size(); ++t) {
      agg.events_by_tag[t] += p.events_by_tag[t];
    }
    agg.pushes_due += p.pushes_due;
    agg.pushes_wheel += p.pushes_wheel;
    agg.pushes_overflow += p.pushes_overflow;
    agg.wheel_cascades += p.wheel_cascades;
    agg.overflow_drains += p.overflow_drains;
    agg.timer_stale_wakeups += p.timer_stale_wakeups;
    agg.timer_chase_wakeups += p.timer_chase_wakeups;
    agg.timer_coalesced_rearms += p.timer_coalesced_rearms;
    agg.impair_drops += p.impair_drops;
    agg.impair_dups += p.impair_dups;
    agg.impair_delays += p.impair_delays;
    agg.qdisc_head_drops += p.qdisc_head_drops;
    agg.qdisc_marks += p.qdisc_marks;
    agg.heap_allocs += p.heap_allocs;
  }
  // Per-sim wall clocks overlap across threads; the honest number for
  // events/s is the fabric's own end-to-end clock.
  agg.wall_seconds = fabric_wall_seconds_;
  agg.sim_seconds = (now_ - Time::zero()).sec();
  agg.shard_domains = static_cast<uint64_t>(plan_.shards);
  agg.shard_windows = windows_run_;
  agg.shard_core_wall_seconds = core_wall_seconds_;
  agg.shard_edge_wall_seconds = edge_wall_seconds_;
  return agg;
}

}  // namespace ccas
