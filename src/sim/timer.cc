// Timer is header-only; this translation unit exists to anchor the vtable
// check in builds that compile each source once.
#include "src/sim/timer.h"
