#include "src/sim/profiler.h"

#include <cstdarg>
#include <cstdio>

namespace ccas {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string SimProfile::summary() const {
  std::string out;
  out.reserve(512);
  appendf(out,
          "perf: %llu events in %.3fs wall (%.0f events/sec, %.3fs wall per "
          "sim-sec)\n",
          static_cast<unsigned long long>(events_dispatched), wall_seconds,
          events_per_wall_sec(), wall_sec_per_sim_sec());
  out += "  by tag:";
  for (size_t t = 0; t < events_by_tag.size(); ++t) {
    if (events_by_tag[t] == 0) continue;
    appendf(out, " %zu%s=%llu", t, t == kMaxTag ? "+" : "",
            static_cast<unsigned long long>(events_by_tag[t]));
  }
  out += "\n";
  appendf(out,
          "  scheduler: due=%llu wheel=%llu overflow=%llu cascades=%llu "
          "drains=%llu\n",
          static_cast<unsigned long long>(pushes_due),
          static_cast<unsigned long long>(pushes_wheel),
          static_cast<unsigned long long>(pushes_overflow),
          static_cast<unsigned long long>(wheel_cascades),
          static_cast<unsigned long long>(overflow_drains));
  appendf(out, "  heap: %llu allocations in-loop (%.6f per event)\n",
          static_cast<unsigned long long>(heap_allocs), allocs_per_event());
  appendf(out,
          "  timers: wasted wakeups=%llu (stale=%llu chase=%llu), "
          "coalesced re-arms=%llu\n",
          static_cast<unsigned long long>(timer_wasted_wakeups()),
          static_cast<unsigned long long>(timer_stale_wakeups),
          static_cast<unsigned long long>(timer_chase_wakeups),
          static_cast<unsigned long long>(timer_coalesced_rearms));
  if (impair_drops != 0 || impair_dups != 0 || impair_delays != 0) {
    appendf(out, "  impairments: drops=%llu dups=%llu delayed=%llu\n",
            static_cast<unsigned long long>(impair_drops),
            static_cast<unsigned long long>(impair_dups),
            static_cast<unsigned long long>(impair_delays));
  }
  if (qdisc_head_drops != 0 || qdisc_marks != 0) {
    appendf(out, "  qdisc: head drops=%llu ECN marks=%llu\n",
            static_cast<unsigned long long>(qdisc_head_drops),
            static_cast<unsigned long long>(qdisc_marks));
  }
  if (shard_domains != 0) {
    appendf(out,
            "  shards: %llu domains, %llu windows, core %.3fs / edge %.3fs "
            "wall\n",
            static_cast<unsigned long long>(shard_domains),
            static_cast<unsigned long long>(shard_windows),
            shard_core_wall_seconds, shard_edge_wall_seconds);
  }
  return out;
}

}  // namespace ccas
