// Cooperative per-run resource budget for the simulation kernel.
//
// A SimBudget is owned by whoever drives the simulation (the sweep
// executor's supervision layer, a test) and installed on a Simulator with
// set_budget(). The event loop then checks it cooperatively: the
// simulated-event ceiling is enforced exactly (compared after every
// dispatch), while the cancellation token (set by a wall-clock watchdog
// thread) and the peak-RSS *estimate* are polled every 1024 events — they
// are inherently approximate, so the cheaper cadence costs nothing.
//
// Budgets are observational until they trip: they never alter scheduling,
// RNG draws, or any other simulation state, so a run under a budget it
// does not exceed is byte-identical to an unbudgeted run. A tripped
// budget throws BudgetExceeded out of run()/run_until(); the simulation
// is then abandoned, never resumed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace ccas {

// Thrown out of Simulator::run()/run_until() when a budget trips.
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind {
    kWallClock,    // cancellation token set (watchdog timeout)
    kSimEvents,    // simulated-event ceiling reached
    kRssEstimate,  // estimated peak memory over the ceiling
  };

  BudgetExceeded(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct SimBudget {
  // Cancellation token: when non-null and set, the loop throws
  // BudgetExceeded(kWallClock) at the next poll. The pointee must outlive
  // every run()/run_until() call made while this budget is installed;
  // it is written by another thread (the watchdog), hence atomic.
  const std::atomic<bool>* cancel = nullptr;

  // Hard ceiling on Simulator::events_processed(); 0 = unlimited.
  uint64_t max_events = 0;

  // Ceiling on the estimated resident-set size; 0 = unlimited. The
  // estimate is pending_events * kPendingEventRssBytes plus whatever
  // extra_rss_bytes reports (the harness adds its log/trace footprint).
  // It deliberately over-approximates container overhead: the point is
  // to stop a runaway cell well before the OOM killer does, not to
  // meter memory precisely.
  int64_t max_rss_bytes = 0;
  std::function<int64_t()> extra_rss_bytes;

  // Rough per-pending-event cost: the Event itself plus amortized
  // timing-wheel / overflow-heap bookkeeping.
  static constexpr int64_t kPendingEventRssBytes = 48;

  [[nodiscard]] bool any() const {
    return cancel != nullptr || max_events != 0 || max_rss_bytes > 0;
  }
};

}  // namespace ccas
