// A cancellable, re-armable one-shot timer.
//
// The event queue does not support removal, so the timer is lazy: it keeps
// at most one live heap entry. Re-arming *later* (the common case — e.g.
// a TCP RTO restarted on every cumulative ACK) does not touch the heap at
// all; the existing entry fires early, notices the new deadline, and
// re-schedules itself once per deadline interval. Re-arming *earlier*
// pushes a new entry and invalidates the old one via a generation counter.
#pragma once

#include <functional>
#include <utility>

#include "src/sim/simulator.h"

namespace ccas {

class Timer final : public EventHandler {
 public:
  Timer(Simulator& sim, std::function<void()> callback)
      : sim_(sim), callback_(std::move(callback)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)arms the timer; a previously pending expiry is superseded.
  void arm_at(Time at) {
    armed_ = true;
    expiry_ = at;
    if (scheduled_ && scheduled_at_ <= at) return;  // lazy: reuse the entry
    ++generation_;
    scheduled_ = true;
    scheduled_at_ = at;
    sim_.schedule_at(at, this, 0, generation_);
  }
  void arm_in(TimeDelta delay) { arm_at(sim_.now() + delay); }

  // Arms only if not already pending (keeps the earlier expiry).
  void arm_in_if_idle(TimeDelta delay) {
    if (!armed_) arm_in(delay);
  }

  void cancel() { armed_ = false; }

  [[nodiscard]] bool is_armed() const { return armed_; }
  [[nodiscard]] Time expiry() const { return expiry_; }

  void on_event(uint32_t /*tag*/, uint64_t arg) override {
    if (arg != generation_) return;  // superseded by an earlier re-arm
    scheduled_ = false;
    if (!armed_) return;  // cancelled
    if (sim_.now() < expiry_) {
      // Re-armed later since this entry was pushed: chase the deadline.
      ++generation_;
      scheduled_ = true;
      scheduled_at_ = expiry_;
      sim_.schedule_at(expiry_, this, 0, generation_);
      return;
    }
    armed_ = false;
    callback_();
  }

 private:
  Simulator& sim_;
  std::function<void()> callback_;
  uint64_t generation_ = 0;
  Time expiry_ = Time::zero();
  Time scheduled_at_ = Time::zero();
  bool armed_ = false;
  bool scheduled_ = false;
};

}  // namespace ccas
