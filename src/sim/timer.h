// A cancellable, re-armable one-shot timer.
//
// The event queue does not support removal, so the timer is lazy: it keeps
// at most one live queue entry. Re-arming *later* (the common case — e.g.
// a TCP RTO restarted on every cumulative ACK) does not touch the queue at
// all; the existing entry fires early, notices the new deadline, and
// re-schedules itself once per deadline interval. Re-arming *earlier*
// pushes a new entry and invalidates the old one via a generation counter
// — unless the existing entry is within `rearm_slack` of the new deadline,
// in which case it is reused and the callback fires at most `slack` late
// (set_rearm_slack; default zero, i.e. exact).
//
// Both lazy paths cost wasted wakeups (entries dispatched only to discover
// they are stale or early); the profiler counts them so the trade-off is
// visible (`ccas_run --perf`).
#pragma once

#include <functional>
#include <utility>

#include "src/sim/simulator.h"

namespace ccas {

class Timer final : public EventHandler {
 public:
  Timer(Simulator& sim, std::function<void()> callback)
      : sim_(sim), callback_(std::move(callback)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // Allows re-arms to an earlier deadline to reuse a pending entry that is
  // at most `slack` later, instead of pushing a replacement entry. The
  // callback then fires up to `slack` after the requested deadline, so a
  // non-zero slack trades timer precision for queue traffic (and changes
  // simulation timing: golden-traced configurations keep it at zero).
  void set_rearm_slack(TimeDelta slack) { rearm_slack_ = slack; }
  [[nodiscard]] TimeDelta rearm_slack() const { return rearm_slack_; }

  // (Re)arms the timer; a previously pending expiry is superseded.
  void arm_at(Time at) {
    armed_ = true;
    expiry_ = at;
    if (scheduled_) {
      if (scheduled_at_ <= at) return;  // lazy: reuse the entry
      if (scheduled_at_ - at <= rearm_slack_) {
        // Coalesce: the existing entry is close enough; fire late.
        ++sim_.mutable_profile().timer_coalesced_rearms;
        return;
      }
    }
    ++generation_;
    scheduled_ = true;
    scheduled_at_ = at;
    note_push(at);
    sim_.schedule_at(at, this, 0, generation_);
  }
  void arm_in(TimeDelta delay) { arm_at(sim_.now() + delay); }

  // Arms only if not already pending (keeps the earlier expiry).
  void arm_in_if_idle(TimeDelta delay) {
    if (!armed_) arm_in(delay);
  }

  void cancel() { armed_ = false; }

  [[nodiscard]] bool is_armed() const { return armed_; }
  [[nodiscard]] Time expiry() const { return expiry_; }

  // Whether any queue entry pointing at this timer is still pending — even
  // a cancelled or superseded timer keeps each pushed entry until it fires
  // (removal is lazy), and a re-arm-earlier can leave two entries live at
  // once. The owner of a Timer must not be destroyed while an entry is
  // pending, or the dispatch would be a use-after-free; the churn
  // harness's slot reaper polls these before recycling a flow slab
  // (DESIGN.md §12).
  [[nodiscard]] bool has_pending_entry() const { return pending_entries_ > 0; }
  // Timestamp of the last pending entry to fire; Time::zero() when none is
  // pending.
  [[nodiscard]] Time pending_entry_at() const { return latest_pending_at_; }

  void on_event(uint32_t /*tag*/, uint64_t arg) override {
    --pending_entries_;
    if (pending_entries_ == 0) latest_pending_at_ = Time::zero();
    if (arg != generation_) {
      // Superseded by an earlier re-arm.
      ++sim_.mutable_profile().timer_stale_wakeups;
      return;
    }
    scheduled_ = false;
    if (!armed_) return;  // cancelled
    if (sim_.now() < expiry_) {
      // Re-armed later since this entry was pushed: chase the deadline.
      ++sim_.mutable_profile().timer_chase_wakeups;
      ++generation_;
      scheduled_ = true;
      scheduled_at_ = expiry_;
      note_push(expiry_);
      sim_.schedule_at(expiry_, this, 0, generation_);
      return;
    }
    armed_ = false;
    callback_();
  }

 private:
  void note_push(Time at) {
    ++pending_entries_;
    if (at > latest_pending_at_) latest_pending_at_ = at;
  }

  Simulator& sim_;
  std::function<void()> callback_;
  uint64_t generation_ = 0;
  Time expiry_ = Time::zero();
  Time scheduled_at_ = Time::zero();
  Time latest_pending_at_ = Time::zero();
  TimeDelta rearm_slack_ = TimeDelta::zero();
  uint32_t pending_entries_ = 0;
  bool armed_ = false;
  bool scheduled_ = false;
};

}  // namespace ccas
