#include "src/sim/simulator.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/check/audit.h"

namespace ccas {

void Simulator::schedule_at(Time at, EventHandler* handler, uint32_t tag, uint64_t arg) {
  if (at < now_) throw std::invalid_argument("schedule_at: event in the past");
  queue_.push(at, handler, tag, arg);
}

void Simulator::schedule_in(TimeDelta delay, EventHandler* handler, uint32_t tag,
                            uint64_t arg) {
  schedule_at(now_ + delay, handler, tag, arg);
}

void Simulator::schedule_fn_at(Time at, std::function<void()> fn) {
  const uint64_t id = fn_dispatcher_.next_id_++;
  fn_dispatcher_.pending_.emplace(id, std::move(fn));
  schedule_at(at, &fn_dispatcher_, 0, id);
}

void Simulator::schedule_fn_in(TimeDelta delay, std::function<void()> fn) {
  schedule_fn_at(now_ + delay, std::move(fn));
}

void Simulator::FnDispatcher::on_event(uint32_t /*tag*/, uint64_t arg) {
  auto it = pending_.find(arg);
  if (it == pending_.end()) return;
  // Move out before invoking: the callback may schedule more functions.
  auto fn = std::move(it->second);
  pending_.erase(it);
  fn();
}

void Simulator::dispatch(const Event& e) {
  if (auto* a = auditor()) a->on_event_dispatched(now_, e.at);
  now_ = e.at;
  ++events_processed_;
  ++profile_.events_dispatched;
  ++profile_.events_by_tag[e.tag < SimProfile::kMaxTag ? e.tag
                                                       : SimProfile::kMaxTag];
  e.handler->on_event(e.tag, e.arg);
}

void Simulator::run() {
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  const Time sim_start = now_;
  while (!stopped_ && !queue_.empty()) {
    dispatch(queue_.pop());
  }
  profile_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  profile_.sim_seconds += (now_ - sim_start).sec();
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  const Time sim_start = now_;
  while (!stopped_ && !queue_.empty() && queue_.top().at <= deadline) {
    dispatch(queue_.pop());
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  profile_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  profile_.sim_seconds += (now_ - sim_start).sec();
}

}  // namespace ccas
