#include "src/sim/simulator.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/check/audit.h"
#include "src/util/alloc_counter.h"

namespace ccas {

void Simulator::schedule_at(Time at, EventHandler* handler, uint32_t tag, uint64_t arg) {
  if (at < now_) throw std::invalid_argument("schedule_at: event in the past");
  if (causal_) {
    queue_.push_keyed(at, allocate_push_key(), handler, tag, arg);
    return;
  }
  queue_.push(at, handler, tag, arg);
}

void Simulator::schedule_at_keyed(Time at, CausalKey key, EventHandler* handler,
                                  uint32_t tag, uint64_t arg) {
  if (at < now_) throw std::invalid_argument("schedule_at_keyed: event in the past");
  queue_.push_keyed(at, key, handler, tag, arg);
}

CausalKey Simulator::allocate_push_key() {
  if (now_ != last_push_ns_) {
    last_push_ns_ = now_;
    *push_major_ptr_ = 0;
  }
  return CausalKey{now_, ++*push_major_ptr_};
}

void Simulator::schedule_in(TimeDelta delay, EventHandler* handler, uint32_t tag,
                            uint64_t arg) {
  schedule_at(now_ + delay, handler, tag, arg);
}

void Simulator::schedule_fn_at(Time at, std::function<void()> fn) {
  const uint64_t id = fn_dispatcher_.next_id_++;
  fn_dispatcher_.pending_.emplace(id, std::move(fn));
  schedule_at(at, &fn_dispatcher_, 0, id);
}

void Simulator::schedule_fn_in(TimeDelta delay, std::function<void()> fn) {
  schedule_fn_at(now_ + delay, std::move(fn));
}

void Simulator::FnDispatcher::on_event(uint32_t /*tag*/, uint64_t arg) {
  auto it = pending_.find(arg);
  if (it == pending_.end()) return;
  // Move out before invoking: the callback may schedule more functions.
  auto fn = std::move(it->second);
  pending_.erase(it);
  fn();
}

void Simulator::dispatch(const Event& e) {
  // Overlap the next handler's cache miss with this event's execution. At
  // 20k flows the handler (often a Timer embedded in a flow slab) is cold;
  // a prefetch hint never faults, even if the object was since destroyed
  // (lazily cancelled timer entries), and cannot alter dispatch order.
  if (const Event* n = queue_.peek_due()) {
    __builtin_prefetch(static_cast<const void*>(n->handler));
  }
  if (auto* a = auditor()) a->on_event_dispatched(now_, e.at);
  now_ = e.at;
  if (causal_) {
    cur_armed_at_ = e.armed_at;
    cur_ctr_ = e.ctr;
  }
  ++events_processed_;
  ++profile_.events_dispatched;
  ++profile_.events_by_tag[e.tag < SimProfile::kMaxTag ? e.tag
                                                       : SimProfile::kMaxTag];
  e.handler->on_event(e.tag, e.arg);
  if (budget_ != nullptr) enforce_budget();
}

void Simulator::enforce_budget() const {
  const SimBudget& b = *budget_;
  if (b.max_events != 0 && events_processed_ >= b.max_events) {
    throw BudgetExceeded(
        BudgetExceeded::Kind::kSimEvents,
        "simulated-event budget exceeded: " + std::to_string(events_processed_) +
            " events (ceiling " + std::to_string(b.max_events) + ")");
  }
  // The cancel token and the RSS estimate are approximate by nature;
  // polling them every 1024 events keeps the common case to one branch.
  if ((events_processed_ & 1023u) != 0) return;
  if (b.cancel != nullptr && b.cancel->load(std::memory_order_relaxed)) {
    throw BudgetExceeded(BudgetExceeded::Kind::kWallClock,
                         "cancelled: wall-clock watchdog fired at t=" +
                             std::to_string(now_.sec()) + "s after " +
                             std::to_string(events_processed_) + " events");
  }
  if (b.max_rss_bytes > 0) {
    int64_t estimate = static_cast<int64_t>(queue_.size()) *
                       SimBudget::kPendingEventRssBytes;
    if (b.extra_rss_bytes) estimate += b.extra_rss_bytes();
    if (estimate > b.max_rss_bytes) {
      throw BudgetExceeded(
          BudgetExceeded::Kind::kRssEstimate,
          "estimated RSS " + std::to_string(estimate) + " B over ceiling " +
              std::to_string(b.max_rss_bytes) + " B (" +
              std::to_string(queue_.size()) + " pending events)");
    }
  }
}

void Simulator::run() {
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  const Time sim_start = now_;
  const uint64_t allocs_start = thread_heap_allocs();
  while (!stopped_ && !queue_.empty()) {
    dispatch(queue_.pop());
  }
  profile_.heap_allocs += thread_heap_allocs() - allocs_start;
  profile_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  profile_.sim_seconds += (now_ - sim_start).sec();
}

void Simulator::run_until_excl(Time bound) {
  stopped_ = false;
  if (queue_.empty() || queue_.top().at >= bound) {
    // Fast path: nothing due before the bound. Advancing the clock is not
    // "running", so no wall-clock accounting (the shard fabric calls this
    // once per cross-domain injection).
    if (now_ < bound) now_ = bound;
    return;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const Time sim_start = now_;
  const uint64_t allocs_start = thread_heap_allocs();
  while (!stopped_ && !queue_.empty() && queue_.top().at < bound) {
    dispatch(queue_.pop());
  }
  if (!stopped_ && now_ < bound) now_ = bound;
  profile_.heap_allocs += thread_heap_allocs() - allocs_start;
  profile_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  profile_.sim_seconds += (now_ - sim_start).sec();
}

void Simulator::run_until_before(Time at, CausalKey key) {
  stopped_ = false;
  auto before = [&](const Event& e) {
    if (e.at != at) return e.at < at;
    if (e.armed_at != key.armed_at) return e.armed_at < key.armed_at;
    return e.ctr < key.ctr;
  };
  if (queue_.empty() || !before(queue_.top())) {
    // Fast path, mirroring run_until_excl: advancing the clock is not
    // "running", so no wall-clock accounting.
    if (now_ < at) now_ = at;
    return;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const Time sim_start = now_;
  const uint64_t allocs_start = thread_heap_allocs();
  while (!stopped_ && !queue_.empty() && before(queue_.top())) {
    dispatch(queue_.pop());
  }
  if (!stopped_ && now_ < at) now_ = at;
  profile_.heap_allocs += thread_heap_allocs() - allocs_start;
  profile_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  profile_.sim_seconds += (now_ - sim_start).sec();
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  const Time sim_start = now_;
  const uint64_t allocs_start = thread_heap_allocs();
  while (!stopped_ && !queue_.empty() && queue_.top().at <= deadline) {
    dispatch(queue_.pop());
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  profile_.heap_allocs += thread_heap_allocs() - allocs_start;
  profile_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  profile_.sim_seconds += (now_ - sim_start).sec();
}

}  // namespace ccas
