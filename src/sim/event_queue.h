// Binary-heap pending-event set with stable FIFO tie-breaking.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/event.h"

namespace ccas {

class EventQueue {
 public:
  EventQueue();

  void push(Time at, EventHandler* handler, uint32_t tag, uint64_t arg);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] size_t size() const { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  // Removes and returns the earliest event (FIFO among equal timestamps).
  Event pop();

  void clear();

 private:
  void sift_up(size_t i);
  void sift_down(size_t i);

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace ccas
