// Pending-event set with stable FIFO tie-breaking: a hierarchical
// timing-wheel / calendar-queue hybrid.
//
// Layout. Simulated time (integer ns) is bucketed into three wheel levels
// of 256 slots each; a level-0 slot spans 2^12 ns (~4.1 us), a level-1
// slot one level-0 wheel (~1.05 ms), a level-2 slot one level-1 wheel
// (~268 ms). Together the wheels cover ~68.7 s past the cursor; anything
// farther out (RTO backoff tails, end-of-run bookkeeping) goes to a small
// binary min-heap overflow tier, drained one 2^36 ns page at a time as the
// cursor reaches it.
//
// The events of the slot currently being consumed live in `due_`, a tiny
// (time, seq)-ordered heap, so pop() is O(log due-size) with due-size
// bounded by the events of one 4.1 us slot — effectively O(1) — and pushes
// into the current slot or any wheel slot are O(1). Occupancy bitmaps (4
// words per level) make finding the next non-empty slot a few countr_zero
// scans instead of a 256-slot walk.
//
// Ordering is identical to the old binary heap: every event carries a
// monotone sequence number, and each tier orders by (time, seq), so
// dispatch order — including same-timestamp FIFO ties — is bit-exact with
// the golden traces recorded on the heap implementation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/event.h"

namespace ccas {

struct SimProfile;

class EventQueue {
 public:
  explicit EventQueue(SimProfile* profile = nullptr);

  void push(Time at, EventHandler* handler, uint32_t tag, uint64_t arg);
  // Sharded-mode push carrying a causal ordering key (see event.h).
  void push_keyed(Time at, CausalKey key, EventHandler* handler, uint32_t tag,
                  uint64_t arg);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t size() const { return size_; }
  // Earliest event. Not const: may settle wheel slots into the due heap.
  // Throws std::logic_error on an empty queue.
  [[nodiscard]] const Event& top();

  // Removes and returns the earliest event (FIFO among equal timestamps).
  // Throws std::logic_error on an empty queue (the old binary heap read
  // heap_.front() of an empty vector — UB).
  Event pop();

  // The next event already settled into the due heap, or nullptr when the
  // current slot is drained (the true next event then still sits in a
  // wheel slot). Never settles, so it is O(1) and has no observable effect
  // on dispatch order — it exists purely so the run loop can issue a
  // prefetch for event N+1 while event N executes.
  [[nodiscard]] const Event* peek_due() const {
    return due_.empty() ? nullptr : due_.data();
  }

  void clear();

 private:
  static constexpr int kLevels = 3;
  static constexpr int kSlotBits = 8;
  static constexpr size_t kSlots = size_t{1} << kSlotBits;    // 256
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr int kShift0 = 12;  // level-0 slot width: 2^12 ns
  static constexpr int kTopPageShift = kShift0 + kLevels * kSlotBits;  // 36
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  // Files an event into due_/wheel/overflow relative to the cursor.
  void place(Event&& e);
  // Refills due_ from the wheels/overflow until it is non-empty.
  // Precondition: size_ > 0.
  void settle();
  [[nodiscard]] size_t next_occupied(const std::array<uint64_t, 4>& occ,
                                     size_t from) const;

  // (time, seq) min-heaps via std::push_heap/pop_heap with EventAfter.
  std::vector<Event> due_;       // events of the slot being consumed
  std::vector<Event> overflow_;  // beyond the wheels' horizon
  std::vector<Event> scratch_;   // cascade staging; capacity recycled
  // Per-level high-water slot occupancy: cold slots reserve this on first
  // touch instead of re-growing from zero as the coarse rings advance.
  std::array<size_t, kLevels> warm_{};

  std::array<std::array<std::vector<Event>, kSlots>, kLevels> slots_;
  std::array<std::array<uint64_t, 4>, kLevels> occ_{};  // per-level bitmaps

  // Wheel position: cursor_ is the start (ns) of the level-0 slot feeding
  // due_; events with time < due_end_ = cursor_ + 2^12 belong in due_.
  // Invariant: cursor_ <= every pending event time (the simulator never
  // schedules into the past), so slot indices never wrap behind it.
  uint64_t cursor_ = 0;
  uint64_t due_end_ = uint64_t{1} << kShift0;

  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  SimProfile* profile_ = nullptr;
};

}  // namespace ccas
