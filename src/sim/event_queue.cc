#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "src/sim/profiler.h"

namespace ccas {

EventQueue::EventQueue(SimProfile* profile) : profile_(profile) {
  due_.reserve(64);
  overflow_.reserve(64);
}

void EventQueue::push(Time at, EventHandler* handler, uint32_t tag, uint64_t arg) {
  place(Event{at, next_seq_++, Time::zero(), handler, arg, 0, tag});
  ++size_;
}

void EventQueue::push_keyed(Time at, CausalKey key, EventHandler* handler,
                            uint32_t tag, uint64_t arg) {
  place(Event{at, next_seq_++, key.armed_at, handler, arg, key.ctr, tag});
  ++size_;
}

void EventQueue::place(Event&& e) {
  const auto t = static_cast<uint64_t>(e.at.ns());
  if (t < due_end_) {
    due_.push_back(e);
    std::push_heap(due_.begin(), due_.end(), EventAfter{});
    if (profile_) ++profile_->pushes_due;
    return;
  }
  // A level-L wheel spans exactly one level-(L+1) slot, so the event goes
  // into the finest level whose current page contains it.
  for (int level = 0; level < kLevels; ++level) {
    const int slot_shift = kShift0 + level * kSlotBits;
    const int page_shift = slot_shift + kSlotBits;
    if ((t >> page_shift) == (cursor_ >> page_shift)) {
      const size_t idx = (t >> slot_shift) & kSlotMask;
      std::vector<Event>& v = slots_[level][idx];
      // First touch of a cold slot reserves the level's high-water
      // occupancy up front. The level-2 ring advances without wrapping
      // within a run (one slot spans ~268 ms, the ring ~68 s), so without
      // this every slot ahead of the cursor re-pays the full doubling
      // chain of heap allocations as RTO entries accumulate in it.
      if (v.capacity() == 0 && warm_[level] != 0) v.reserve(warm_[level]);
      v.push_back(e);
      occ_[level][idx >> 6] |= uint64_t{1} << (idx & 63);
      if (profile_) ++profile_->pushes_wheel;
      return;
    }
  }
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), EventAfter{});
  if (profile_) ++profile_->pushes_overflow;
}

size_t EventQueue::next_occupied(const std::array<uint64_t, 4>& occ,
                                 size_t from) const {
  if (from >= kSlots) return kNoSlot;
  size_t word = from >> 6;
  uint64_t bits = occ[word] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) return (word << 6) + static_cast<size_t>(std::countr_zero(bits));
    if (++word >= occ.size()) return kNoSlot;
    bits = occ[word];
  }
}

void EventQueue::settle() {
  while (due_.empty()) {
    // 1) Advance to the next occupied level-0 slot of the current page.
    const size_t cur0 = (cursor_ >> kShift0) & kSlotMask;
    const size_t s0 = next_occupied(occ_[0], cur0 + 1);
    if (s0 != kNoSlot) {
      constexpr uint64_t kPageMask = (uint64_t{1} << (kShift0 + kSlotBits)) - 1;
      cursor_ = (cursor_ & ~kPageMask) | (static_cast<uint64_t>(s0) << kShift0);
      due_end_ = cursor_ + (uint64_t{1} << kShift0);
      // Adopt the slot's events as the new due heap; the slot vector
      // inherits due_'s empty-but-allocated buffer for reuse.
      std::swap(due_, slots_[0][s0]);
      std::make_heap(due_.begin(), due_.end(), EventAfter{});
      occ_[0][s0 >> 6] &= ~(uint64_t{1} << (s0 & 63));
      continue;
    }
    // 2) Cascade the next occupied slot of the finest non-empty coarser
    // level into the levels below it.
    bool cascaded = false;
    for (int level = 1; level < kLevels && !cascaded; ++level) {
      const int slot_shift = kShift0 + level * kSlotBits;
      const size_t cur = (cursor_ >> slot_shift) & kSlotMask;
      const size_t s = next_occupied(occ_[level], cur + 1);
      if (s == kNoSlot) continue;
      const uint64_t page_mask = (uint64_t{1} << (slot_shift + kSlotBits)) - 1;
      cursor_ = (cursor_ & ~page_mask) | (static_cast<uint64_t>(s) << slot_shift);
      due_end_ = cursor_ + (uint64_t{1} << kShift0);
      occ_[level][s >> 6] &= ~(uint64_t{1} << (s & 63));
      // Swap through a persistent scratch buffer instead of moving into a
      // temporary: the drained slot inherits the scratch capacity and the
      // scratch keeps the slot's, so cascades stop freeing and re-growing
      // slot vectors once the queue reaches its high-water occupancy —
      // this was the last steady-state heap-allocation source on the hot
      // path (every propagation-delay push lands in a coarse level).
      scratch_.clear();
      std::swap(scratch_, slots_[level][s]);
      if (scratch_.size() > warm_[level]) warm_[level] = scratch_.size();
      for (Event& e : scratch_) place(std::move(e));
      if (profile_) ++profile_->wheel_cascades;
      cascaded = true;
    }
    if (cascaded) continue;
    // 3) Wheels empty: everything pending lives in the overflow heap
    // (size_ > 0 guarantees it is non-empty). Re-anchor the cursor on the
    // earliest overflow page and pull that whole page back in.
    const auto t0 = static_cast<uint64_t>(overflow_.front().at.ns());
    cursor_ = t0 & ~((uint64_t{1} << kShift0) - 1);
    due_end_ = cursor_ + (uint64_t{1} << kShift0);
    const uint64_t page = t0 >> kTopPageShift;
    while (!overflow_.empty() &&
           (static_cast<uint64_t>(overflow_.front().at.ns()) >> kTopPageShift) ==
               page) {
      std::pop_heap(overflow_.begin(), overflow_.end(), EventAfter{});
      Event e = std::move(overflow_.back());
      overflow_.pop_back();
      place(std::move(e));
    }
    if (profile_) ++profile_->overflow_drains;
  }
}

const Event& EventQueue::top() {
  if (size_ == 0) throw std::logic_error("EventQueue::top on empty queue");
  settle();
  return due_.front();
}

Event EventQueue::pop() {
  if (size_ == 0) throw std::logic_error("EventQueue::pop on empty queue");
  settle();
  std::pop_heap(due_.begin(), due_.end(), EventAfter{});
  Event e = due_.back();
  due_.pop_back();
  --size_;
  return e;
}

void EventQueue::clear() {
  due_.clear();
  overflow_.clear();
  for (auto& level : slots_) {
    for (auto& slot : level) slot.clear();
  }
  for (auto& level : occ_) level.fill(0);
  warm_.fill(0);
  cursor_ = 0;
  due_end_ = uint64_t{1} << kShift0;
  size_ = 0;
  next_seq_ = 0;
}

}  // namespace ccas
