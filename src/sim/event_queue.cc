#include "src/sim/event_queue.h"

#include <utility>

namespace ccas {

namespace {
// Strict-weak "earlier" ordering: (time, seq) lexicographic.
inline bool earlier(const Event& a, const Event& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}
}  // namespace

EventQueue::EventQueue() { heap_.reserve(1024); }

void EventQueue::push(Time at, EventHandler* handler, uint32_t tag, uint64_t arg) {
  heap_.push_back(Event{at, next_seq_++, handler, tag, arg});
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop() {
  Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::sift_up(size_t i) {
  Event e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(size_t i) {
  const size_t n = heap_.size();
  Event e = heap_[i];
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

}  // namespace ccas
