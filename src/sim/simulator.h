// The simulation kernel: a virtual clock and an event loop.
//
// All simulation objects (links, queues, TCP endpoints, experiment logic)
// hold a reference to one Simulator, schedule events on it, and are driven
// by EventHandler::on_event callbacks. Simulations are single-threaded and
// fully deterministic given a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/check/hooks.h"
#include "src/sim/budget.h"
#include "src/sim/event_queue.h"
#include "src/sim/profiler.h"

namespace ccas {

class Simulator {
 public:
  Simulator() : queue_(&profile_) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] size_t pending_events() const { return queue_.size(); }

  // Always-on lightweight profiler (dispatch/scheduler/timer counters plus
  // wall-clock accumulated over run()/run_until()).
  [[nodiscard]] const SimProfile& profile() const { return profile_; }
  [[nodiscard]] SimProfile& mutable_profile() { return profile_; }

  // Fast-path scheduling: handler/tag/arg, no allocation.
  void schedule_at(Time at, EventHandler* handler, uint32_t tag, uint64_t arg = 0);
  void schedule_in(TimeDelta delay, EventHandler* handler, uint32_t tag, uint64_t arg = 0);

  // Convenience scheduling for tests, examples and cold paths; allocates.
  void schedule_fn_at(Time at, std::function<void()> fn);
  void schedule_fn_in(TimeDelta delay, std::function<void()> fn);

  // Runs until the event queue drains (or stop() is called).
  void run();
  // Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(Time deadline);
  void run_for(TimeDelta delta) { run_until(now_ + delta); }
  // Requests the loop to exit after the current event.
  void stop() { stopped_ = true; }

  // Invariant-audit hook point. Components guard their hook calls with
  // `if (auto* a = sim.auditor())`; with CCAS_CHECK_HOOKS=OFF auditor()
  // constant-folds to nullptr and those branches compile away.
  [[nodiscard]] check::InvariantAuditor* auditor() const {
    if constexpr (!check::kAuditHooksCompiled) return nullptr;
    return auditor_;
  }
  void set_auditor(check::InvariantAuditor* a) { auditor_ = a; }

  // Installs a cooperative resource budget (budget.h); nullptr disables.
  // The budget (and its cancellation token) must outlive every
  // run()/run_until() call made while installed. With no budget the
  // dispatch path is a single null-pointer test, so unbudgeted runs stay
  // byte- and event-identical to builds without this layer.
  void set_budget(const SimBudget* budget) { budget_ = budget; }
  [[nodiscard]] const SimBudget* budget() const { return budget_; }

 private:
  class FnDispatcher : public EventHandler {
   public:
    explicit FnDispatcher(Simulator& sim) : sim_(sim) {}
    void on_event(uint32_t tag, uint64_t arg) override;

   private:
    friend class Simulator;
    Simulator& sim_;
    uint64_t next_id_ = 0;
    std::unordered_map<uint64_t, std::function<void()>> pending_;
  };

  void dispatch(const Event& e);
  // Throws BudgetExceeded when the installed budget is exceeded. The
  // event ceiling is exact (checked per dispatch); the cancellation token
  // and the RSS estimate are polled every 1024 events.
  void enforce_budget() const;

  Time now_ = Time::zero();
  SimProfile profile_;  // before queue_: the queue holds a pointer into it
  EventQueue queue_;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
  check::InvariantAuditor* auditor_ = nullptr;
  const SimBudget* budget_ = nullptr;
  FnDispatcher fn_dispatcher_{*this};
};

}  // namespace ccas
