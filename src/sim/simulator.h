// The simulation kernel: a virtual clock and an event loop.
//
// All simulation objects (links, queues, TCP endpoints, experiment logic)
// hold a reference to one Simulator, schedule events on it, and are driven
// by EventHandler::on_event callbacks. Simulations are single-threaded and
// fully deterministic given a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/check/hooks.h"
#include "src/sim/budget.h"
#include "src/sim/event_queue.h"
#include "src/sim/profiler.h"
#include "src/util/node_pool.h"

namespace ccas {

class Simulator {
 public:
  Simulator() : queue_(&profile_) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] size_t pending_events() const { return queue_.size(); }

  // Always-on lightweight profiler (dispatch/scheduler/timer counters plus
  // wall-clock accumulated over run()/run_until()).
  [[nodiscard]] const SimProfile& profile() const { return profile_; }
  [[nodiscard]] SimProfile& mutable_profile() { return profile_; }

  // Spill-node pool shared by every per-flow container in this simulation
  // (RunList runs, and anything else with inline-first storage). One pool
  // per Simulator: the pool is single-threaded by construction, since a
  // Simulator only ever runs on one thread at a time.
  [[nodiscard]] NodePool& node_pool() { return node_pool_; }

  // Fast-path scheduling: handler/tag/arg, no allocation.
  void schedule_at(Time at, EventHandler* handler, uint32_t tag, uint64_t arg = 0);
  void schedule_in(TimeDelta delay, EventHandler* handler, uint32_t tag, uint64_t arg = 0);
  // Sharded-mode push with an explicit causal key (cross-engine handoffs
  // carry the key allocated on the engine where the serial push happened).
  void schedule_at_keyed(Time at, CausalKey key, EventHandler* handler,
                         uint32_t tag, uint64_t arg = 0);

  // --- Causal ordering (sharded runs; see event.h and parallel/fabric.h).
  //
  // With causal keys enabled, every schedule_* call stamps the event with
  // (armed_at = now, ctr = next per-ns push slot), so same-timestamp
  // dispatch order is derived from simulation state instead of this
  // engine's private push sequence, and the shard fabric can interleave
  // events of different engines exactly as the serial FIFO would have.
  // Serial simulators never enable this: their events keep zero keys and
  // the historical (at, seq) order, byte-identical to every recorded run.
  void enable_causal_keys() { causal_ = true; }
  [[nodiscard]] bool causal_keys_enabled() const { return causal_; }
  // Consumes the next push slot at now() without scheduling — the shard
  // fabric's relay calls this where the serial run would have pushed, so
  // later slots of the same nanosecond keep their serial order. Ordering
  // is by relative counter value only, so it does not matter that this
  // engine's absolute values differ from the serial run's: every pair of
  // keys the comparator meets was allocated on one engine in that
  // engine's serial-equivalent dispatch order (injection replay included
  // — the fabric interleaves injections with this engine's dispatches in
  // exactly the serial order, so their synchronous pushes consume slots
  // in serial relative order too).
  [[nodiscard]] CausalKey allocate_push_key();
  // Key of the event currently being dispatched (the root of any sends it
  // performs); zero outside dispatch or with causal keys disabled.
  [[nodiscard]] Time current_armed_at() const { return cur_armed_at_; }
  [[nodiscard]] uint32_t current_ctr() const { return cur_ctr_; }
  // Setup-phase push slots come from a counter shared across all of a
  // fabric's engines, so cross-engine setup pushes keep their (serial)
  // construction order; the fabric detaches it before the first window.
  void share_setup_counter(uint32_t* shared) { push_major_ptr_ = shared; }
  void unshare_setup_counter() {
    push_major_ = *push_major_ptr_;
    push_major_ptr_ = &push_major_;
  }

  // Convenience scheduling for tests, examples and cold paths; allocates.
  void schedule_fn_at(Time at, std::function<void()> fn);
  void schedule_fn_in(TimeDelta delay, std::function<void()> fn);

  // Runs until the event queue drains (or stop() is called).
  void run();
  // Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(Time deadline);
  // Half-open variant for the shard fabric's conservative windows: runs
  // events with timestamp < bound, then sets now() = bound. Events at
  // exactly `bound` stay queued (they belong to the next window, after
  // cross-domain exchange). Cheap when no event is due: the wall-clock
  // probes are skipped entirely, so per-injection replay calls cost one
  // queue peek.
  void run_until_excl(Time bound);
  // Runs events whose (at, armed_at, ctr) key is strictly below the given
  // key, then sets now() = at. The shard fabric uses this to place each
  // cross-domain injection exactly where the serial FIFO dispatched its
  // root event among this engine's same-nanosecond events.
  void run_until_before(Time at, CausalKey key);
  void run_for(TimeDelta delta) { run_until(now_ + delta); }
  // Requests the loop to exit after the current event.
  void stop() { stopped_ = true; }

  // Invariant-audit hook point. Components guard their hook calls with
  // `if (auto* a = sim.auditor())`; with CCAS_CHECK_HOOKS=OFF auditor()
  // constant-folds to nullptr and those branches compile away.
  [[nodiscard]] check::InvariantAuditor* auditor() const {
    if constexpr (!check::kAuditHooksCompiled) return nullptr;
    return auditor_;
  }
  void set_auditor(check::InvariantAuditor* a) { auditor_ = a; }

  // Installs a cooperative resource budget (budget.h); nullptr disables.
  // The budget (and its cancellation token) must outlive every
  // run()/run_until() call made while installed. With no budget the
  // dispatch path is a single null-pointer test, so unbudgeted runs stay
  // byte- and event-identical to builds without this layer.
  void set_budget(const SimBudget* budget) { budget_ = budget; }
  [[nodiscard]] const SimBudget* budget() const { return budget_; }

 private:
  class FnDispatcher : public EventHandler {
   public:
    explicit FnDispatcher(Simulator& sim) : sim_(sim) {}
    void on_event(uint32_t tag, uint64_t arg) override;

   private:
    friend class Simulator;
    Simulator& sim_;
    uint64_t next_id_ = 0;
    std::unordered_map<uint64_t, std::function<void()>> pending_;
  };

  void dispatch(const Event& e);
  // Throws BudgetExceeded when the installed budget is exceeded. The
  // event ceiling is exact (checked per dispatch); the cancellation token
  // and the RSS estimate are polled every 1024 events.
  void enforce_budget() const;

  Time now_ = Time::zero();
  SimProfile profile_;  // before queue_: the queue holds a pointer into it
  EventQueue queue_;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
  // Causal-key state (inert unless enable_causal_keys() was called).
  bool causal_ = false;
  Time last_push_ns_ = Time::zero();
  uint32_t push_major_ = 0;
  uint32_t* push_major_ptr_ = &push_major_;
  Time cur_armed_at_ = Time::zero();
  uint32_t cur_ctr_ = 0;
  check::InvariantAuditor* auditor_ = nullptr;
  const SimBudget* budget_ = nullptr;
  NodePool node_pool_;
  FnDispatcher fn_dispatcher_{*this};
};

}  // namespace ccas
