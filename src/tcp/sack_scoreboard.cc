// SackScoreboard is header-only (template member functions); this file
// anchors the translation unit in the build.
#include "src/tcp/sack_scoreboard.h"
