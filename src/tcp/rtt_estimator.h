// RFC 6298 smoothed RTT estimation and retransmission-timeout computation,
// with the Linux-style 200 ms minimum RTO.
#pragma once

#include "src/util/units.h"

namespace ccas {

class RttEstimator {
 public:
  struct Config {
    TimeDelta min_rto = TimeDelta::millis(200);  // Linux TCP_RTO_MIN
    TimeDelta max_rto = TimeDelta::seconds(120);
    TimeDelta initial_rto = TimeDelta::seconds(1);
  };

  RttEstimator() : RttEstimator(Config{}) {}
  explicit RttEstimator(const Config& config) : config_(config) {}

  // Feed one RTT measurement (never from a retransmitted segment — Karn).
  void add_sample(TimeDelta rtt);

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] TimeDelta smoothed_rtt() const { return srtt_; }
  [[nodiscard]] TimeDelta rtt_var() const { return rttvar_; }
  [[nodiscard]] TimeDelta latest_rtt() const { return latest_; }
  // Minimum RTT observed over the connection lifetime (the sender's
  // min_rtt; BBR keeps its own windowed filter on top of raw samples).
  [[nodiscard]] TimeDelta min_rtt() const { return min_rtt_; }

  // Current retransmission timeout: srtt + 4*rttvar, clamped to
  // [min_rto, max_rto]; initial_rto before the first sample.
  [[nodiscard]] TimeDelta rto() const;

 private:
  Config config_;
  bool has_sample_ = false;
  TimeDelta srtt_ = TimeDelta::zero();
  TimeDelta rttvar_ = TimeDelta::zero();
  TimeDelta latest_ = TimeDelta::zero();
  TimeDelta min_rtt_ = TimeDelta::infinite();
};

}  // namespace ccas
