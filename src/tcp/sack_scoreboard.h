// Sender-side SACK scoreboard (RFC 6675 flavour): per-segment delivery /
// loss / transmission state for the window [snd_una, snd_nxt).
//
// Segment sequence numbers count MSS-sized segments. The scoreboard is a
// deque indexed by (seq - snd_una); cumulative ACKs pop from the front.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>

#include "src/util/units.h"

namespace ccas {

struct SegmentState {
  // Transmission bookkeeping.
  Time last_sent = Time::zero();
  uint16_t tx_count = 0;
  bool sacked = false;
  bool lost = false;         // marked lost, awaiting retransmission
  bool outstanding = false;  // a copy is presumed in flight

  // Delivery-rate-estimator snapshot taken at (re)transmit time.
  Time first_tx_time = Time::zero();
  Time delivered_time_at_send = Time::zero();
  uint64_t delivered_at_send = 0;
};

class SackScoreboard {
 public:
  [[nodiscard]] uint64_t snd_una() const { return una_; }
  [[nodiscard]] uint64_t snd_nxt() const { return una_ + segs_.size(); }
  [[nodiscard]] bool empty() const { return segs_.empty(); }
  [[nodiscard]] size_t window_size() const { return segs_.size(); }
  [[nodiscard]] uint64_t sacked_count() const { return sacked_count_; }
  [[nodiscard]] uint64_t lost_count() const { return lost_count_; }
  // One past the highest SACKed sequence; 0 if nothing is SACKed.
  [[nodiscard]] uint64_t highest_sacked_end() const { return highest_sacked_end_; }

  [[nodiscard]] bool contains(uint64_t seq) const {
    return seq >= una_ && seq < snd_nxt();
  }

  [[nodiscard]] SegmentState& seg(uint64_t seq) {
    if (!contains(seq)) throw std::out_of_range("scoreboard: seq outside window");
    return segs_[static_cast<size_t>(seq - una_)];
  }
  [[nodiscard]] const SegmentState& seg(uint64_t seq) const {
    return const_cast<SackScoreboard*>(this)->seg(seq);
  }

  // Creates the state for segment snd_nxt (about to be transmitted for the
  // first time) and returns a reference to it.
  SegmentState& extend() {
    segs_.emplace_back();
    return segs_.back();
  }

  // Advances the cumulative-ACK point. Invokes on_newly_delivered(seq, st)
  // for every freed segment that had not already been SACKed; returns that
  // count. SACKed segments were counted as delivered when SACKed.
  template <typename F>
  uint64_t advance_una(uint64_t new_una, F&& on_newly_delivered) {
    if (new_una <= una_) return 0;
    if (new_una > snd_nxt()) throw std::out_of_range("ACK beyond snd_nxt");
    uint64_t newly = 0;
    while (una_ < new_una) {
      SegmentState& st = segs_.front();
      if (!st.sacked) {
        ++newly;
        on_newly_delivered(una_, st);
      } else {
        --sacked_count_;
      }
      if (st.lost) --lost_count_;
      segs_.pop_front();
      ++una_;
    }
    if (loss_scan_seq_ < una_) loss_scan_seq_ = una_;
    if (highest_sacked_end_ < una_) highest_sacked_end_ = una_;
    return newly;
  }

  // Applies one SACK block (clamped to the window). Invokes
  // on_newly_delivered(seq, st) per newly SACKed segment; returns count.
  template <typename F>
  uint64_t apply_sack(uint64_t start, uint64_t end, F&& on_newly_delivered) {
    start = std::max(start, una_);
    end = std::min(end, snd_nxt());
    uint64_t newly = 0;
    for (uint64_t s = start; s < end; ++s) {
      SegmentState& st = segs_[static_cast<size_t>(s - una_)];
      if (st.sacked) continue;
      st.sacked = true;
      ++sacked_count_;
      if (st.lost) {
        // A segment we presumed lost actually arrived.
        st.lost = false;
        --lost_count_;
      }
      ++newly;
      on_newly_delivered(s, st);
    }
    if (end > highest_sacked_end_ && newly > 0) highest_sacked_end_ = end;
    return newly;
  }

  // RFC 6675-style loss inference: every not-yet-SACKed segment more than
  // `dup_thresh` segments below the highest SACK is presumed lost. Scans
  // monotonically (segments retransmitted after being marked are not
  // re-marked; only the RTO recovers a lost retransmission). Invokes
  // on_lost(seq, st) per newly marked segment; returns count.
  template <typename F>
  uint64_t mark_lost_by_sack(uint64_t dup_thresh, F&& on_lost) {
    if (highest_sacked_end_ <= una_) return 0;
    const uint64_t highest_sacked_seq = highest_sacked_end_ - 1;
    // Segment S is lost if highest_sacked_seq >= S + dup_thresh.
    if (highest_sacked_seq < dup_thresh) return 0;
    const uint64_t limit = highest_sacked_seq - dup_thresh + 1;  // exclusive
    uint64_t count = 0;
    while (loss_scan_seq_ < limit) {
      SegmentState& st = segs_[static_cast<size_t>(loss_scan_seq_ - una_)];
      if (!st.sacked && !st.lost) {
        st.lost = true;
        ++lost_count_;
        ++count;
        on_lost(loss_scan_seq_, st);
      }
      ++loss_scan_seq_;
    }
    return count;
  }

  // Marks a single segment lost (dupack-threshold path without SACK).
  template <typename F>
  uint64_t mark_lost(uint64_t seq, F&& on_lost) {
    SegmentState& st = seg(seq);
    if (st.sacked || st.lost) return 0;
    st.lost = true;
    ++lost_count_;
    on_lost(seq, st);
    return 1;
  }

  // RTO: every non-SACKed segment in the window is presumed lost and no
  // copy is considered in flight any more. Invokes on_lost per newly
  // marked segment.
  template <typename F>
  uint64_t mark_all_lost(F&& on_lost) {
    uint64_t count = 0;
    for (uint64_t s = una_; s < snd_nxt(); ++s) {
      SegmentState& st = segs_[static_cast<size_t>(s - una_)];
      st.outstanding = false;
      if (!st.sacked && !st.lost) {
        st.lost = true;
        ++lost_count_;
        ++count;
        on_lost(s, st);
      }
    }
    // Allow the post-RTO scan to re-examine everything.
    loss_scan_seq_ = una_;
    return count;
  }

  // Records a (re)transmission of `seq`: a pending lost mark is cleared
  // (the retransmitted copy is now the one presumed in flight).
  void note_transmit(uint64_t seq) {
    SegmentState& st = seg(seq);
    if (st.lost) {
      st.lost = false;
      --lost_count_;
    }
  }

  // First segment marked lost at or after `from` that still awaits
  // retransmission; nullopt if none.
  [[nodiscard]] std::optional<uint64_t> find_lost_from(uint64_t from) const {
    for (uint64_t s = std::max(from, una_); s < snd_nxt(); ++s) {
      const SegmentState& st = segs_[static_cast<size_t>(s - una_)];
      if (st.lost) return s;
    }
    return std::nullopt;
  }

  // Earliest outstanding (in-flight, non-SACKed) segment — the one the RTO
  // timer conceptually guards. nullopt if nothing is outstanding.
  [[nodiscard]] std::optional<uint64_t> first_outstanding() const {
    for (uint64_t s = una_; s < snd_nxt(); ++s) {
      const SegmentState& st = segs_[static_cast<size_t>(s - una_)];
      if (st.outstanding) return s;
    }
    return std::nullopt;
  }

 private:
  uint64_t una_ = 0;
  std::deque<SegmentState> segs_;
  uint64_t sacked_count_ = 0;
  uint64_t lost_count_ = 0;
  uint64_t highest_sacked_end_ = 0;
  uint64_t loss_scan_seq_ = 0;  // monotonic mark_lost_by_sack cursor
};

}  // namespace ccas
