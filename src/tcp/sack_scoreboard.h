// Sender-side SACK scoreboard (RFC 6675 flavour): per-segment delivery /
// loss / transmission state for the window [snd_una, snd_nxt).
//
// Segment sequence numbers count MSS-sized segments. Per-segment state
// lives in a ring buffer indexed by (seq - snd_una); cumulative ACKs pop
// from the front. The sacked / lost / outstanding flag sets are *also*
// mirrored as run-length interval lists (RunList), which is what makes ACK
// processing O(changed runs) instead of O(window): a SACK block covering
// an already-SACKed range is a no-op after one gap probe, RFC 6675 loss
// marking walks only the not-yet-marked gaps, and retransmit / RTO-guard
// scans (`find_lost_from`, `first_outstanding`) are run lookups instead of
// per-segment sweeps. At CoreScale window sizes these per-segment sweeps
// were the simulator's single largest CPU sink.
//
// Invariant: the run lists exactly mirror the per-segment flags. All flag
// transitions therefore go through scoreboard methods — callers must not
// write st.sacked / st.lost / st.outstanding directly (the non-flag fields
// of seg() remain caller-mutable). Delivery/loss callbacks observe the
// segment *before* the scoreboard clears its outstanding flag, so callers
// can deflate their in-flight count exactly once per segment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/util/ring_buffer.h"
#include "src/util/run_list.h"
#include "src/util/units.h"

namespace ccas {

struct SegmentState {
  // Transmission bookkeeping.
  Time last_sent = Time::zero();
  uint16_t tx_count = 0;
  bool sacked = false;
  bool lost = false;         // marked lost, awaiting retransmission
  bool outstanding = false;  // a copy is presumed in flight

  // Delivery-rate-estimator snapshot taken at (re)transmit time.
  Time first_tx_time = Time::zero();
  Time delivered_time_at_send = Time::zero();
  uint64_t delivered_at_send = 0;
};

class SackScoreboard {
 public:
  // Inline segment-ring capacity: at CoreScale cells the average window is
  // ~14 segments, so most flows never leave their own cache lines.
  static constexpr size_t kInlineSegs = 16;

  // Attach the owning Simulator's NodePool to the run lists so spill
  // storage recycles through the pool instead of the heap. Call before
  // first use (the sender constructor does).
  void set_pool(NodePool* pool) {
    sacked_runs_.set_pool(pool);
    lost_runs_.set_pool(pool);
    outstanding_runs_.set_pool(pool);
  }

  [[nodiscard]] uint64_t snd_una() const { return una_; }
  [[nodiscard]] uint64_t snd_nxt() const { return una_ + segs_.size(); }
  [[nodiscard]] bool empty() const { return segs_.empty(); }
  [[nodiscard]] size_t window_size() const { return segs_.size(); }
  [[nodiscard]] uint64_t sacked_count() const { return sacked_count_; }
  [[nodiscard]] uint64_t lost_count() const { return lost_count_; }
  // One past the highest SACKed sequence; 0 if nothing is SACKed.
  [[nodiscard]] uint64_t highest_sacked_end() const { return highest_sacked_end_; }

  [[nodiscard]] bool contains(uint64_t seq) const {
    return seq >= una_ && seq < snd_nxt();
  }

  [[nodiscard]] SegmentState& seg(uint64_t seq) {
    if (!contains(seq)) throw std::out_of_range("scoreboard: seq outside window");
    return segs_[static_cast<size_t>(seq - una_)];
  }
  [[nodiscard]] const SegmentState& seg(uint64_t seq) const {
    return const_cast<SackScoreboard*>(this)->seg(seq);
  }

  // Creates the state for segment snd_nxt (about to be transmitted for the
  // first time) and returns a reference to it.
  SegmentState& extend() { return segs_.emplace_back(); }

  // Advances the cumulative-ACK point. Invokes on_newly_delivered(seq, st)
  // for every freed segment that had not already been SACKed; returns that
  // count. SACKed segments were counted as delivered when SACKed.
  template <typename F>
  uint64_t advance_una(uint64_t new_una, F&& on_newly_delivered) {
    if (new_una <= una_) return 0;
    if (new_una > snd_nxt()) throw std::out_of_range("ACK beyond snd_nxt");
    uint64_t newly = 0;
    while (una_ < new_una) {
      SegmentState& st = segs_.front();
      if (!st.sacked) {
        ++newly;
        on_newly_delivered(una_, st);
      } else {
        --sacked_count_;
      }
      if (st.lost) --lost_count_;
      segs_.drop_front();
      ++una_;
    }
    sacked_runs_.erase_below(una_);
    lost_runs_.erase_below(una_);
    outstanding_runs_.erase_below(una_);
    if (loss_scan_seq_ < una_) loss_scan_seq_ = una_;
    if (highest_sacked_end_ < una_) highest_sacked_end_ = una_;
    return newly;
  }

  // Applies one SACK block (clamped to the window). Invokes
  // on_newly_delivered(seq, st) per newly SACKed segment (outstanding is
  // cleared after the callback); returns the count. Cost is O(runs +
  // newly-SACKed segments): re-reported blocks touch no segment state.
  template <typename F>
  uint64_t apply_sack(uint64_t start, uint64_t end, F&& on_newly_delivered) {
    start = std::max(start, una_);
    end = std::min(end, snd_nxt());
    if (start >= end) return 0;
    scratch_.clear();
    sacked_runs_.for_each_gap(
        start, end, [this](uint64_t a, uint64_t b) { scratch_.emplace_back(a, b); });
    uint64_t newly = 0;
    for (const auto& [a, b] : scratch_) {
      for (uint64_t s = a; s < b; ++s) {
        SegmentState& st = segs_[static_cast<size_t>(s - una_)];
        st.sacked = true;
        ++sacked_count_;
        if (st.lost) {
          // A segment we presumed lost actually arrived.
          st.lost = false;
          --lost_count_;
        }
        ++newly;
        on_newly_delivered(s, st);
        st.outstanding = false;  // SACKed: no copy is in flight any more
      }
      lost_runs_.remove(a, b);
      outstanding_runs_.remove(a, b);
    }
    if (newly > 0) sacked_runs_.add(start, end);
    if (end > highest_sacked_end_ && newly > 0) highest_sacked_end_ = end;
    return newly;
  }

  // RFC 6675-style loss inference: every not-yet-SACKed segment more than
  // `dup_thresh` segments below the highest SACK is presumed lost. Scans
  // monotonically (segments retransmitted after being marked are not
  // re-marked; only the RTO recovers a lost retransmission). Invokes
  // on_lost(seq, st) per newly marked segment (outstanding cleared after
  // the callback); returns the count. O(runs + newly lost).
  template <typename F>
  uint64_t mark_lost_by_sack(uint64_t dup_thresh, F&& on_lost) {
    if (highest_sacked_end_ <= una_) return 0;
    const uint64_t highest_sacked_seq = highest_sacked_end_ - 1;
    // Segment S is lost if highest_sacked_seq >= S + dup_thresh.
    if (highest_sacked_seq < dup_thresh) return 0;
    const uint64_t limit = highest_sacked_seq - dup_thresh + 1;  // exclusive
    if (loss_scan_seq_ >= limit) return 0;
    // Newly lost = [scan, limit) minus SACKed minus already-lost, as
    // maximal ranges (staged in scratch_: the run lists must not mutate
    // while their gaps are walked).
    scratch_.clear();
    sacked_runs_.for_each_gap(loss_scan_seq_, limit, [this](uint64_t ga, uint64_t gb) {
      lost_runs_.for_each_gap(
          ga, gb, [this](uint64_t a, uint64_t b) { scratch_.emplace_back(a, b); });
    });
    loss_scan_seq_ = limit;
    uint64_t count = 0;
    for (const auto& [a, b] : scratch_) {
      for (uint64_t s = a; s < b; ++s) {
        SegmentState& st = segs_[static_cast<size_t>(s - una_)];
        st.lost = true;
        ++lost_count_;
        ++count;
        on_lost(s, st);
        st.outstanding = false;
      }
      lost_runs_.add(a, b);
      outstanding_runs_.remove(a, b);
    }
    return count;
  }

  // Marks a single segment lost (dupack-threshold path without SACK).
  // Outstanding is cleared after the callback, as above.
  template <typename F>
  uint64_t mark_lost(uint64_t seq, F&& on_lost) {
    SegmentState& st = seg(seq);
    if (st.sacked || st.lost) return 0;
    st.lost = true;
    ++lost_count_;
    lost_runs_.add_point(seq);
    on_lost(seq, st);
    if (st.outstanding) {
      st.outstanding = false;
      outstanding_runs_.remove_point(seq);
    }
    return 1;
  }

  // RTO: every non-SACKed segment in the window is presumed lost and no
  // copy is considered in flight any more (all outstanding flags are
  // cleared). Invokes on_lost per newly marked segment.
  template <typename F>
  uint64_t mark_all_lost(F&& on_lost) {
    uint64_t count = 0;
    const uint64_t nxt = snd_nxt();
    for (uint64_t s = una_; s < nxt; ++s) {
      SegmentState& st = segs_[static_cast<size_t>(s - una_)];
      st.outstanding = false;
      if (!st.sacked && !st.lost) {
        st.lost = true;
        ++lost_count_;
        ++count;
        on_lost(s, st);
      }
    }
    outstanding_runs_.clear();
    // Post-RTO the lost set is exactly the complement of the SACKed set.
    lost_runs_.clear();
    sacked_runs_.for_each_gap(
        una_, nxt, [this](uint64_t a, uint64_t b) { lost_runs_.add(a, b); });
    // Allow the post-RTO scan to re-examine everything.
    loss_scan_seq_ = una_;
    return count;
  }

  // Records a (re)transmission of `seq`: a pending lost mark is cleared
  // and the segment becomes outstanding (the transmitted copy is now the
  // one presumed in flight).
  void note_transmit(uint64_t seq) {
    SegmentState& st = seg(seq);
    if (st.lost) {
      st.lost = false;
      --lost_count_;
      lost_runs_.remove_point(seq);
    }
    if (!st.outstanding) {
      st.outstanding = true;
      outstanding_runs_.add_point(seq);
    }
  }

  // First segment marked lost at or after `from` that still awaits
  // retransmission; nullopt if none.
  [[nodiscard]] std::optional<uint64_t> find_lost_from(uint64_t from) const {
    return lost_runs_.first_at_or_after(std::max(from, una_));
  }

  // Earliest outstanding (in-flight, non-SACKed) segment — the one the RTO
  // timer conceptually guards. nullopt if nothing is outstanding.
  [[nodiscard]] std::optional<uint64_t> first_outstanding() const {
    return outstanding_runs_.first_at_or_after(una_);
  }

  // Clears the outstanding flag of the first outstanding segment at or
  // after `from` and returns its sequence; nullopt if none. This is the
  // no-SACK dupack pipe-deflation step (RFC 5681 expressed on the
  // scoreboard), previously an O(window) scan in the sender.
  std::optional<uint64_t> clear_first_outstanding_from(uint64_t from) {
    const auto s = outstanding_runs_.first_at_or_after(std::max(from, una_));
    if (!s) return std::nullopt;
    segs_[static_cast<size_t>(*s - una_)].outstanding = false;
    outstanding_runs_.remove_point(*s);
    return s;
  }

 private:
  uint64_t una_ = 0;
  RingBuffer<SegmentState, kInlineSegs> segs_;
  uint64_t sacked_count_ = 0;
  uint64_t lost_count_ = 0;
  uint64_t highest_sacked_end_ = 0;
  uint64_t loss_scan_seq_ = 0;  // monotonic mark_lost_by_sack cursor

  // Run-compressed mirrors of the per-segment flags (see file comment).
  RunList sacked_runs_;
  RunList lost_runs_;
  RunList outstanding_runs_;
  std::vector<std::pair<uint64_t, uint64_t>> scratch_;  // staged ranges
};

}  // namespace ccas
