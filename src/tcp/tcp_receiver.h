// TCP receiver endpoint: reassembly tracking, cumulative + selective
// acknowledgment generation, and RFC 1122-style delayed ACKs.
//
// There is no payload; the receiver tracks which segment numbers have
// arrived, advances rcv_nxt, and emits ACK packets into the return path.
// In-order segment count is the flow's goodput, which is what the paper
// reports as per-flow throughput.
#pragma once

#include <cstdint>

#include "src/net/packet.h"
#include "src/sim/timer.h"
#include "src/util/run_list.h"

namespace ccas {

struct TcpReceiverConfig {
  // RFC 1122 delayed ACKs: ACK every second in-order segment, or after the
  // timeout, whichever comes first. Out-of-order data and hole-filling data
  // are ACKed immediately (RFC 5681) — this is what generates dupacks.
  bool delayed_ack = true;
  uint32_t delack_segment_threshold = 2;
  TimeDelta delack_timeout = TimeDelta::millis(40);  // Linux delack min..max

  // GRO/LRO emulation (the testbed's NICs coalesce receive bursts): in-order
  // segments arriving back-to-back (inter-arrival <= gro_flush_timeout) are
  // aggregated and acknowledged as one unit, up to gro_max_segments (a 64 KB
  // super-segment). A batch of >= 2 MSS is ACKed immediately, like Linux.
  // At 10 Gbps segments arrive 1.2 us apart and aggregate heavily; at
  // 100 Mbps the 120 us spacing exceeds the flush timeout, so EdgeScale
  // behaviour reduces to plain delayed ACKs. This sender-burst/ACK-burst
  // loop is what makes losses arrive in same-flow bursts at CoreScale
  // (paper Finding 3). Set gro_enabled=false for the ablation.
  bool gro_enabled = true;
  TimeDelta gro_flush_timeout = TimeDelta::micros(20);
  uint32_t gro_max_segments = 45;  // 64 KB / 1448
};

class TcpReceiver final : public PacketSink {
 public:
  TcpReceiver(Simulator& sim, uint32_t flow_id, PacketSink* ack_path,
              const TcpReceiverConfig& config = {});

  void accept(Packet&& pkt) override;

  // Highest in-order segment + 1 (== count of in-order segments received).
  [[nodiscard]] uint64_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] int64_t goodput_bytes() const {
    return static_cast<int64_t>(rcv_nxt_) * kMssBytes;
  }
  [[nodiscard]] uint64_t segments_received() const {
    return cold_.segments_received;
  }
  [[nodiscard]] uint64_t duplicate_segments() const {
    return cold_.duplicate_segments;
  }
  [[nodiscard]] uint64_t acks_sent() const { return cold_.acks_sent; }
  [[nodiscard]] size_t out_of_order_ranges() const { return ooo_.run_count(); }
  // ECN: data packets that arrived with CE set, and whether ECE is
  // currently being echoed (cleared by the sender's CWR).
  [[nodiscard]] uint64_t ce_received() const { return cold_.ce_received; }
  [[nodiscard]] bool ece_pending() const { return ece_pending_; }

  // Timestamp of the last pending timer queue entry (delack or GRO) still
  // referencing this receiver; Time::zero() when none. See
  // TcpSender::latest_timer_entry().
  [[nodiscard]] Time latest_timer_entry() const {
    const Time a = delack_timer_.pending_entry_at();
    const Time b = gro_timer_.pending_entry_at();
    return a > b ? a : b;
  }

 private:
  void deliver_segment(uint64_t seq, bool& was_duplicate, bool& filled_hole);
  void send_ack_now(uint64_t trigger_seq);
  void on_delack_timeout();
  void fill_sack_blocks(Packet& ack, uint64_t trigger_seq) const;
  // Closes the current GRO batch and runs the ACK policy on it.
  void flush_gro_batch();
  void on_gro_timeout();

  // --- Hot state: the per-segment receive path (deliver, ACK policy, GRO
  // batching), packed first so it shares the flow slab's leading cache
  // lines (DESIGN.md §12). ---
  Simulator& sim_;
  PacketSink* ack_path_;
  uint32_t flow_id_;
  uint32_t unacked_in_order_ = 0;  // delayed-ACK counter (in batches)
  uint64_t rcv_nxt_ = 0;

  // GRO batch state.
  uint32_t gro_pending_ = 0;
  // ECN echo state (RFC 3168 §6.1.3).
  bool ece_pending_ = false;
  Time gro_last_arrival_ = Time::zero();
  uint64_t gro_last_seq_ = 0;

  // Out-of-order ranges [start, end), disjoint and non-adjacent, all > rcv_nxt_.
  RunList ooo_;  // inline runs, pool-spilled

  Timer delack_timer_;
  Timer gro_timer_;

  // --- Cold state: configuration and statistics, never read per segment
  // except the config mirrors below. ---
  struct Cold {
    TcpReceiverConfig config;
    uint64_t segments_received = 0;
    uint64_t duplicate_segments = 0;
    uint64_t acks_sent = 0;
    uint64_t ce_received = 0;
  };
  Cold cold_;
};

}  // namespace ccas
