#include "src/tcp/rtt_estimator.h"

#include <algorithm>
#include <cstdlib>

namespace ccas {

void RttEstimator::add_sample(TimeDelta rtt) {
  if (rtt <= TimeDelta::zero()) return;
  latest_ = rtt;
  min_rtt_ = std::min(min_rtt_, rtt);
  if (!has_sample_) {
    // RFC 6298 (2.2): SRTT = R, RTTVAR = R/2.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  // RFC 6298 (2.3): RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|,
  //                 SRTT   = 7/8 SRTT + 1/8 R.
  const TimeDelta err = TimeDelta::nanos(std::abs((srtt_ - rtt).ns()));
  rttvar_ = TimeDelta::nanos((rttvar_.ns() * 3 + err.ns()) / 4);
  srtt_ = TimeDelta::nanos((srtt_.ns() * 7 + rtt.ns()) / 8);
}

TimeDelta RttEstimator::rto() const {
  if (!has_sample_) return config_.initial_rto;
  // Linux semantics: the *variance* term has a floor of rto_min, i.e.
  // RTO = SRTT + max(4*RTTVAR, rto_min). Without the floor, RTTVAR decays
  // to ~0 on stable paths and the RTO collapses onto the RTT itself,
  // firing spuriously on every delayed-ACK or queueing hiccup.
  const TimeDelta raw = srtt_ + std::max(rttvar_ * 4, config_.min_rto);
  return std::min(raw, config_.max_rto);
}

}  // namespace ccas
