// Delivery-rate estimation per draft-cheng-iccrg-delivery-rate-estimation
// (the rate_sample machinery BBR consumes in Linux).
//
// The sender snapshots (delivered, delivered_time, first_tx_time) into each
// segment at transmit time; when the segment is delivered, the estimator
// computes rate = delivered_delta / max(send_interval, ack_interval), which
// is robust to ACK compression and send-side gaps.
#pragma once

#include "src/cca/cca.h"
#include "src/net/packet.h"
#include "src/tcp/sack_scoreboard.h"
#include "src/util/units.h"

namespace ccas {

class DeliveryRateEstimator {
 public:
  [[nodiscard]] uint64_t delivered() const { return delivered_; }
  [[nodiscard]] Time delivered_time() const { return delivered_time_; }

  // Called when a segment is (re)transmitted; fills the snapshot fields.
  void on_packet_sent(Time now, SegmentState& st, bool pipe_was_empty) {
    if (pipe_was_empty) {
      // Restarting from idle: reset the send/ack clocks to avoid counting
      // the idle gap as a sending interval.
      first_tx_time_ = now;
      delivered_time_ = now;
    }
    st.first_tx_time = first_tx_time_;
    st.delivered_time_at_send = delivered_time_;
    st.delivered_at_send = delivered_;
  }

  // Called by the sender when it wants to send but the application has
  // released no further data (tcp_rate_check_app_limited): samples taken
  // until everything currently in flight is delivered are flagged
  // app-limited, so they upper-bound the app's rate, not the path's.
  void on_app_limited(uint64_t pipe) {
    const uint64_t mark = delivered_ + pipe;
    app_limited_ = mark > 0 ? mark : 1;
  }
  [[nodiscard]] bool app_limited() const { return app_limited_ != 0; }

  // Called once per newly delivered (cum-ACKed or SACKed) segment.
  void on_packet_delivered(Time now, const SegmentState& st) {
    ++delivered_;
    delivered_time_ = now;
    if (app_limited_ != 0 && delivered_ > app_limited_) app_limited_ = 0;
    // Adopt the sample from the most recently sent segment (by delivered
    // count at send, as Linux's tcp_rate_skb_delivered does), and advance
    // the send-window anchor to that segment's transmit time so the next
    // sample measures a *per-sample* send interval, not time-since-start.
    if (!sample_valid_ || st.delivered_at_send >= sample_prior_delivered_) {
      sample_valid_ = true;
      sample_prior_delivered_ = st.delivered_at_send;
      sample_delivered_time_at_send_ = st.delivered_time_at_send;
      sample_send_interval_ = st.last_sent - st.first_tx_time;
      first_tx_time_ = st.last_sent;
    }
  }

  // Builds the rate sample for the ACK currently being processed and resets
  // per-ACK state. Returns an invalid sample if nothing was delivered, or
  // if the interval is shorter than `min_rtt` — Linux's tcp_rate_gen
  // rejects such samples as unreliable (they are ACK-clustering noise and
  // would ratchet BBR's windowed-max bandwidth filter upward).
  [[nodiscard]] RateSample take_sample(Time now, TimeDelta min_rtt) {
    RateSample rs;
    if (!sample_valid_) return rs;
    sample_valid_ = false;
    const TimeDelta ack_interval = now - sample_delivered_time_at_send_;
    const TimeDelta interval = std::max(sample_send_interval_, ack_interval);
    if (interval <= TimeDelta::zero()) return rs;
    if (!min_rtt.is_infinite() && interval < min_rtt) return rs;
    const uint64_t delivered_delta = delivered_ - sample_prior_delivered_;
    rs.delivery_rate =
        DataRate::bytes_per(static_cast<int64_t>(delivered_delta) * kMssBytes, interval);
    rs.prior_delivered = sample_prior_delivered_;
    rs.interval = interval;
    rs.is_app_limited = app_limited_ != 0;
    return rs;
  }

 private:
  uint64_t delivered_ = 0;
  Time delivered_time_ = Time::zero();
  Time first_tx_time_ = Time::zero();

  uint64_t app_limited_ = 0;  // delivered count that ends the limited spell

  bool sample_valid_ = false;
  TimeDelta sample_send_interval_ = TimeDelta::zero();
  Time sample_delivered_time_at_send_ = Time::zero();
  uint64_t sample_prior_delivered_ = 0;
};

}  // namespace ccas
