#include "src/tcp/tcp_receiver.h"

#include <stdexcept>

#include "src/check/audit.h"
#include "src/net/topology.h"

namespace ccas {

TcpReceiver::TcpReceiver(Simulator& sim, uint32_t flow_id, PacketSink* ack_path,
                         const TcpReceiverConfig& config)
    : sim_(sim),
      ack_path_(ack_path),
      flow_id_(flow_id),
      delack_timer_(sim, [this] { on_delack_timeout(); }),
      gro_timer_(sim, [this] { on_gro_timeout(); }) {
  if (ack_path == nullptr) throw std::invalid_argument("TcpReceiver: null ack path");
  cold_.config = config;
  ooo_.set_pool(&sim.node_pool());
}

void TcpReceiver::deliver_segment(uint64_t seq, bool& was_duplicate, bool& filled_hole) {
  was_duplicate = false;
  filled_hole = false;
  if (seq < rcv_nxt_) {
    was_duplicate = true;
    return;
  }
  if (seq == rcv_nxt_) {
    ++rcv_nxt_;
    // Merge any out-of-order range that is now contiguous.
    if (!ooo_.empty() && ooo_.run(0).start == rcv_nxt_) {
      filled_hole = true;
      rcv_nxt_ = ooo_.run(0).end;
      ooo_.erase_below(rcv_nxt_);
    }
    return;
  }
  // Out of order: buffer it (add_point merges into adjacent runs).
  if (ooo_.contains(seq)) {
    was_duplicate = true;  // already buffered
    return;
  }
  ooo_.add_point(seq);
}

void TcpReceiver::accept(Packet&& pkt) {
  if (pkt.type != PacketType::kData) return;  // receivers only consume data
  if (auto* a = sim_.auditor()) a->on_packet_delivered(pkt);
  ++cold_.segments_received;
  // ECN (RFC 3168): CWR on data confirms the sender reacted — stop echoing
  // ECE. A CE mark (possibly on the same packet, CWR first) restarts the
  // echo and demands an immediate ACK so the signal reaches the sender
  // within one RTT.
  if ((pkt.ecn & kEcnCwr) != 0) ece_pending_ = false;
  const bool ce_marked = (pkt.ecn & kEcnCe) != 0;
  if (ce_marked) {
    ++cold_.ce_received;
    ece_pending_ = true;
  }
  const uint64_t seq = pkt.seq;
  const bool in_order = (seq == rcv_nxt_);

  bool was_duplicate = false;
  bool filled_hole = false;
  deliver_segment(seq, was_duplicate, filled_hole);
  if (was_duplicate) ++cold_.duplicate_segments;

  // RFC 5681: immediate ACK for out-of-order data (generates dupacks), for
  // data that fills a hole, and for duplicates; delayed ACK only for plain
  // in-order data. Any such event also flushes a pending GRO batch.
  const bool immediate = !cold_.config.delayed_ack || !in_order || filled_hole ||
                         was_duplicate || !ooo_.empty() || ce_marked;
  if (immediate) {
    gro_pending_ = 0;
    gro_timer_.cancel();
    send_ack_now(seq);
    return;
  }

  if (!cold_.config.gro_enabled) {
    ++unacked_in_order_;
    if (unacked_in_order_ >= cold_.config.delack_segment_threshold) {
      send_ack_now(seq);
    } else {
      delack_timer_.arm_in_if_idle(cold_.config.delack_timeout);
    }
    return;
  }

  // GRO: extend the current batch if this segment is back-to-back with the
  // previous one; otherwise close the old batch first.
  const Time now = sim_.now();
  const bool back_to_back = gro_pending_ > 0 && seq == gro_last_seq_ + 1 &&
                            now - gro_last_arrival_ <= cold_.config.gro_flush_timeout;
  if (gro_pending_ > 0 && !back_to_back) flush_gro_batch();
  ++gro_pending_;
  gro_last_arrival_ = now;
  gro_last_seq_ = seq;
  if (gro_pending_ >= cold_.config.gro_max_segments) {
    flush_gro_batch();
  } else {
    gro_timer_.arm_in(cold_.config.gro_flush_timeout);
  }
}

void TcpReceiver::flush_gro_batch() {
  if (gro_pending_ == 0) return;
  const uint32_t batch = gro_pending_;
  gro_pending_ = 0;
  gro_timer_.cancel();
  // Linux ACK policy over a coalesced super-segment: >= 2 MSS of new data
  // is ACKed immediately; a single segment goes through delayed ACK.
  unacked_in_order_ += batch;
  if (unacked_in_order_ >= cold_.config.delack_segment_threshold) {
    send_ack_now(gro_last_seq_);
  } else {
    delack_timer_.arm_in_if_idle(cold_.config.delack_timeout);
  }
}

void TcpReceiver::on_gro_timeout() { flush_gro_batch(); }

void TcpReceiver::fill_sack_blocks(Packet& ack, uint64_t trigger_seq) const {
  // RFC 2018: the first block contains the segment that triggered the ACK;
  // remaining slots report the other most relevant (lowest) ranges.
  ack.num_sacks = 0;
  if (ooo_.empty()) return;
  // Find the range containing the trigger.
  if (const auto r = ooo_.run_containing(trigger_seq)) {
    ack.add_sack(r->start, r->end);
  }
  for (size_t i = 0; i < ooo_.run_count(); ++i) {
    if (ack.num_sacks >= kMaxSackBlocks) break;
    ack.add_sack(ooo_.run(i).start, ooo_.run(i).end);
  }
}

void TcpReceiver::send_ack_now(uint64_t trigger_seq) {
  unacked_in_order_ = 0;
  delack_timer_.cancel();
  Packet ack = Packet::make_ack(flow_id_, DumbbellTopology::kToSenders, rcv_nxt_);
  fill_sack_blocks(ack, trigger_seq);
  if (ece_pending_) ack.ecn |= kEcnEce;
  ++cold_.acks_sent;
  if (auto* a = sim_.auditor()) a->on_packet_injected(ack);
  ack_path_->accept(std::move(ack));
}

void TcpReceiver::on_delack_timeout() {
  if (unacked_in_order_ == 0) return;
  send_ack_now(rcv_nxt_ == 0 ? 0 : rcv_nxt_ - 1);
}

}  // namespace ccas
