// DeliveryRateEstimator is header-only; this file anchors the translation
// unit in the build.
#include "src/tcp/delivery_rate.h"
