// TCP sender endpoint: window management, SACK-based loss detection
// (RFC 6675), NewReno-style recovery episodes, RTO with exponential
// backoff (RFC 6298), optional pacing, and the delivery-rate estimator —
// everything Linux TCP provides around a pluggable congestion controller.
//
// The flow is an infinite data source (as in the paper): new segments are
// always available, so sending is limited purely by cwnd and pacing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

#include "src/cca/cca.h"
#include "src/net/packet.h"
#include "src/sim/timer.h"
#include "src/tcp/delivery_rate.h"
#include "src/tcp/rtt_estimator.h"
#include "src/tcp/sack_scoreboard.h"

namespace ccas {

struct TcpSenderConfig {
  uint64_t initial_cwnd = 10;  // IW10, as in Linux
  // Receive-window analog: caps the send window in segments so a single
  // misbehaving flow cannot exhaust simulator memory.
  uint64_t max_window = 1 << 20;
  uint64_t dup_thresh = 3;
  bool sack_enabled = true;
  // Application data to transfer, in segments; 0 = infinite source (the
  // paper's long-running flows). Finite flows complete once everything is
  // cumulatively acknowledged (used by the churn extension).
  uint64_t data_segments = 0;
  // RTO re-arm coalescing slack (Timer::set_rearm_slack): an earlier RTO
  // re-arm reuses a pending expiry at most this much later instead of
  // pushing a replacement queue entry, so the RTO fires up to `slack`
  // late. Zero (the default) keeps exact timing — golden-traced
  // configurations rely on that.
  TimeDelta rto_rearm_slack = TimeDelta::zero();
  // ECN (RFC 3168): data segments carry ECT, an echoed ECE triggers one
  // cwnd reduction per RTT (without retransmission), and the next data
  // segment carries CWR. Enabled by the runner when the bottleneck qdisc
  // has ECN marking on.
  bool ecn_enabled = false;
  RttEstimator::Config rtt;
};

struct TcpSenderStats {
  uint64_t segments_sent = 0;  // including retransmissions
  uint64_t retransmits = 0;
  uint64_t acks_received = 0;
  uint64_t dupacks = 0;
  // Congestion events = fast-recovery entries: each is one multiplicative
  // decrease, i.e. one "CWND halving" in the paper's tcpprobe terminology.
  uint64_t congestion_events = 0;
  uint64_t rto_events = 0;
  // Subset of congestion_events triggered by an echoed ECN mark rather
  // than by loss detection (no retransmission accompanies these).
  uint64_t ecn_reductions = 0;
  uint64_t delivered = 0;  // segments cum-ACKed or SACKed
  // Accumulated RTT samples, for the mean RTT over a measurement window
  // (the Mathis model wants the RTT the flow actually experienced,
  // queueing delay included).
  int64_t rtt_sample_sum_ns = 0;
  uint64_t rtt_sample_count = 0;
};

class TcpSender final : public PacketSink {
 public:
  TcpSender(Simulator& sim, uint32_t flow_id,
            std::unique_ptr<CongestionController> cca, PacketSink* data_path,
            const TcpSenderConfig& config = {});
  // Non-owning variant: `cca` lives in external storage (the harness
  // FlowTable constructs it into the flow's slab, right next to this
  // sender) and must outlive the sender.
  TcpSender(Simulator& sim, uint32_t flow_id, CongestionController* cca,
            PacketSink* data_path, const TcpSenderConfig& config = {});

  // Begins transmitting (the flow's staggered start time in experiments).
  void start();
  [[nodiscard]] bool started() const { return started_; }

  // ACKs arrive here from the return path.
  void accept(Packet&& pkt) override;

  [[nodiscard]] const TcpSenderStats& stats() const { return cold_.stats; }
  [[nodiscard]] const CongestionController& cca() const { return *cca_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const SackScoreboard& scoreboard() const { return sb_; }
  [[nodiscard]] const DeliveryRateEstimator& rate_estimator() const {
    return rate_est_;
  }
  [[nodiscard]] const TcpSenderConfig& config() const { return cold_.config; }
  [[nodiscard]] uint64_t inflight() const { return pipe_; }
  [[nodiscard]] uint64_t snd_una() const { return sb_.snd_una(); }
  [[nodiscard]] uint64_t snd_nxt() const { return sb_.snd_nxt(); }
  [[nodiscard]] bool in_recovery() const { return state_ != State::kOpen; }

  // Finite flows (config.data_segments > 0): all data cum-ACKed.
  [[nodiscard]] bool complete() const {
    return data_segments_ > 0 && sb_.snd_una() >= data_segments_;
  }
  // Invoked once when the flow completes (before the callback returns the
  // sender is fully quiescent: timers cancelled, nothing in flight).
  void set_completion_callback(std::function<void()> cb) {
    cold_.completion_cb = std::move(cb);
  }
  // Invoked at every congestion event (fast-recovery entry) with the sim
  // time; the golden-trace harness records these per flow.
  void set_congestion_event_callback(std::function<void(Time)> cb) {
    cold_.congestion_event_cb = std::move(cb);
  }

  // --- Application-limited source (the workload engine's pacing models).
  // By default the flow is a greedy source. enable_app_gate caps new data
  // at `initial_segments` until the application releases more; while the
  // released data is fully sent the delivery-rate estimator marks samples
  // app-limited (RateSample::is_app_limited, which BBR/BBRv2 already
  // consult), as Linux's tcp_rate_check_app_limited does. Never enabled by
  // the fixed-flow experiment path, so golden behaviour is untouched.
  void enable_app_gate(uint64_t initial_segments);
  // Releases `segments` more to the sender (clamped to data_segments for
  // finite flows) and tries to send immediately.
  void app_release(uint64_t segments);
  [[nodiscard]] uint64_t app_limit() const { return app_limit_; }
  // Invoked once per drain when every released segment has been
  // cumulatively acknowledged but the flow is not complete — the
  // request-response / web-object models' "response delivered" signal.
  void set_app_drained_callback(std::function<void()> cb) {
    cold_.app_drained_cb = std::move(cb);
  }

  // Timestamp of the last pending timer queue entry (RTO or pacing) still
  // referencing this sender; Time::zero() when none. The churn reaper must
  // see zero (or a time in the past) before recycling the flow's slab —
  // see Timer::has_pending_entry().
  [[nodiscard]] Time latest_timer_entry() const {
    return std::max(rto_timer_.pending_entry_at(),
                    pacing_timer_.pending_entry_at());
  }

 private:
  enum class State : uint8_t { kOpen, kRecovery, kLoss };

  void process_ack(const Packet& ack);
  void try_send();
  [[nodiscard]] bool send_one(Time now);
  // `prr_exempt` marks the one immediate fast retransmit RFC 5681 allows
  // outside the PRR send budget (audit hook bookkeeping only).
  void transmit_segment(Time now, uint64_t seq, bool retransmit,
                        bool prr_exempt = false);
  void arm_rto();
  void on_rto_fire();
  [[nodiscard]] TimeDelta current_rto() const;
  [[nodiscard]] bool pacing_enabled() const {
    return !cca_->pacing_rate().is_infinite();
  }

  // --- Hot state. Everything the per-ACK / per-transmit path touches sits
  // at the front of the object, scalars packed first, so a flow's working
  // set begins in the leading cache lines of its FlowTable slab and the
  // cold configuration/stats/callbacks never share those lines
  // (DESIGN.md §12). ---
  Simulator& sim_;
  // Raw pointer on the hot path; ownership (if any) is cold state below.
  CongestionController* cca_;
  PacketSink* data_path_;
  uint32_t flow_id_;
  State state_ = State::kOpen;
  bool started_ = false;
  bool in_try_send_ = false;  // re-entrancy guard
  bool cwr_pending_ = false;
  bool completion_fired_ = false;
  bool app_gated_ = false;
  bool app_drained_notified_ = false;
  // Immutable mirrors of the config fields the per-ACK path reads, so
  // steady-state processing never dereferences into the cold struct.
  bool sack_enabled_;
  bool ecn_enabled_;
  uint32_t rto_backoff_shift_ = 0;
  uint64_t dup_thresh_;
  uint64_t data_segments_;
  uint64_t max_window_;
  uint64_t app_limit_ = 0;  // segments released by the app (app_gated_)
  uint64_t pipe_ = 0;            // segments presumed in flight (RFC 6675)
  uint64_t recovery_point_ = 0;  // snd_nxt at recovery entry
  uint64_t dupack_count_ = 0;
  uint64_t retx_hint_ = 0;  // scan cursor for lost-segment retransmission
  uint64_t reno_deflate_hint_ = 0;  // scan cursor for dupack pipe deflation

  // ECN response state (RFC 3168 §6.1.2): at most one cwnd reduction per
  // window of data — ECE on ACKs below ecn_cwr_point_ echoes a mark the
  // sender already reacted to. cwr_pending_ makes the next data segment
  // carry CWR so the receiver stops echoing.
  uint64_t ecn_cwr_point_ = 0;

  // Proportional Rate Reduction (RFC 6937) state, active in kRecovery:
  // transmissions are clocked against deliveries so the reduction to
  // ssthresh happens smoothly instead of as a retransmission burst.
  uint64_t prr_delivered_ = 0;
  uint64_t prr_out_ = 0;
  uint64_t prr_recover_fs_ = 1;  // pipe at recovery entry
  uint64_t prr_budget_ = 0;      // segments currently allowed out

  Time next_send_time_ = Time::zero();
  Timer rto_timer_;
  Timer pacing_timer_;
  RttEstimator rtt_;
  DeliveryRateEstimator rate_est_;
  SackScoreboard sb_;  // inline segment ring + run lists, pool-spilled

  // --- Cold state: configuration, statistics, ownership, callbacks —
  // touched at setup, on stats reads, and at completion, never per ACK. ---
  struct Cold {
    TcpSenderConfig config;
    TcpSenderStats stats;
    // Set only by the owning constructor; the hot path uses cca_.
    std::unique_ptr<CongestionController> owned_cca;
    std::function<void()> completion_cb;
    std::function<void(Time)> congestion_event_cb;
    std::function<void()> app_drained_cb;
  };
  Cold cold_;
};

}  // namespace ccas
