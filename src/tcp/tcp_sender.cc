#include "src/tcp/tcp_sender.h"

#include <algorithm>
#include <stdexcept>

#include "src/check/audit.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace ccas {

TcpSender::TcpSender(Simulator& sim, uint32_t flow_id,
                     std::unique_ptr<CongestionController> cca, PacketSink* data_path,
                     const TcpSenderConfig& config)
    : TcpSender(sim, flow_id, cca.get(), data_path, config) {
  cold_.owned_cca = std::move(cca);
}

TcpSender::TcpSender(Simulator& sim, uint32_t flow_id, CongestionController* cca,
                     PacketSink* data_path, const TcpSenderConfig& config)
    : sim_(sim),
      cca_(cca),
      data_path_(data_path),
      flow_id_(flow_id),
      sack_enabled_(config.sack_enabled),
      ecn_enabled_(config.ecn_enabled),
      dup_thresh_(config.dup_thresh),
      data_segments_(config.data_segments),
      max_window_(config.max_window),
      rto_timer_(sim, [this] { on_rto_fire(); }),
      pacing_timer_(sim, [this] { try_send(); }),
      rtt_(config.rtt) {
  if (cca_ == nullptr) throw std::invalid_argument("TcpSender: null CCA");
  if (data_path_ == nullptr) throw std::invalid_argument("TcpSender: null data path");
  if (config.dup_thresh == 0) throw std::invalid_argument("dup_thresh must be >= 1");
  cold_.config = config;
  sb_.set_pool(&sim.node_pool());
  rto_timer_.set_rearm_slack(config.rto_rearm_slack);
}

void TcpSender::start() {
  if (started_) return;
  started_ = true;
  try_send();
}

void TcpSender::enable_app_gate(uint64_t initial_segments) {
  app_gated_ = true;
  app_limit_ = initial_segments;
  if (data_segments_ > 0) app_limit_ = std::min(app_limit_, data_segments_);
}

void TcpSender::app_release(uint64_t segments) {
  if (!app_gated_) return;
  app_limit_ += segments;
  if (data_segments_ > 0) app_limit_ = std::min(app_limit_, data_segments_);
  app_drained_notified_ = false;
  if (started_) try_send();
}

void TcpSender::accept(Packet&& pkt) {
  if (pkt.type != PacketType::kAck) return;
  if (auto* a = sim_.auditor()) a->on_packet_delivered(pkt);
  process_ack(pkt);
}

void TcpSender::process_ack(const Packet& ack) {
  const Time now = sim_.now();
  ++cold_.stats.acks_received;
  if (ack.ack_seq > sb_.snd_nxt()) throw std::logic_error("ACK beyond snd_nxt");

  const bool cum_advanced = ack.ack_seq > sb_.snd_una();

  // RTT sampling (Karn: only from segments transmitted exactly once). Take
  // the sample from the most recently sent segment this ACK delivers.
  TimeDelta rtt_sample = TimeDelta::zero();
  Time rtt_sample_sent = Time::zero();
  auto consider_rtt_sample = [&](const SegmentState& st) {
    if (st.tx_count == 1 && st.last_sent >= rtt_sample_sent) {
      rtt_sample_sent = st.last_sent;
      rtt_sample = now - st.last_sent;
    }
  };

  auto on_delivered = [&](uint64_t /*seq*/, SegmentState& st) {
    // The scoreboard clears st.outstanding right after this callback.
    if (st.outstanding) --pipe_;
    consider_rtt_sample(st);
    rate_est_.on_packet_delivered(now, st);
  };

  uint64_t newly_delivered = sb_.advance_una(ack.ack_seq, on_delivered);
  if (sack_enabled_) {
    for (uint8_t i = 0; i < ack.num_sacks; ++i) {
      const SackBlock b = ack.sack(i);
      if (b.empty()) continue;
      newly_delivered += sb_.apply_sack(b.start, b.end, on_delivered);
    }
  }
  cold_.stats.delivered += newly_delivered;

  // Duplicate-ACK accounting (drives loss detection when SACK is off, and
  // is reported either way).
  if (cum_advanced) {
    dupack_count_ = 0;
    reno_deflate_hint_ = 0;
  } else if (!sb_.empty()) {
    ++dupack_count_;
    ++cold_.stats.dupacks;
    if (!sack_enabled_) {
      // Without SACK, each dupack still proves one segment left the
      // network (RFC 5681's cwnd-inflation expressed as pipe deflation);
      // this is what lets recovery proceed instead of stalling into RTO.
      // The deflation retires a specific segment (the earliest one still
      // presumed in flight beyond the hole — dupacks mean the receiver is
      // buffering out-of-order data) so that the cumulative ACK ending
      // recovery cannot deflate the same segment a second time and
      // underflow the pipe.
      reno_deflate_hint_ = std::max(reno_deflate_hint_, sb_.snd_una() + 1);
      if (const auto s = sb_.clear_first_outstanding_from(reno_deflate_hint_)) {
        --pipe_;
        reno_deflate_hint_ = *s + 1;
      }
    }
  }

  // Loss detection.
  uint64_t newly_lost = 0;
  auto on_lost = [&](uint64_t /*seq*/, SegmentState& st) {
    ++newly_lost;
    // As with on_delivered, the scoreboard clears st.outstanding after us.
    if (st.outstanding) --pipe_;
  };
  bool force_retransmit = false;
  if (sack_enabled_) {
    sb_.mark_lost_by_sack(dup_thresh_, on_lost);
  } else {
    if (state_ == State::kOpen && dupack_count_ >= dup_thresh_ && !sb_.empty()) {
      sb_.mark_lost(sb_.snd_una(), on_lost);
      force_retransmit = true;
    }
    // NewReno partial ACK (RFC 6582): during recovery, a cumulative ACK
    // that does not cover the recovery point exposes the next hole, which
    // is retransmitted immediately.
    if (state_ == State::kRecovery && cum_advanced && ack.ack_seq < recovery_point_ &&
        !sb_.empty()) {
      sb_.mark_lost(sb_.snd_una(), on_lost);
      force_retransmit = true;
    }
  }
  // Recovery state machine.
  if (state_ != State::kOpen && ack.ack_seq >= recovery_point_) {
    state_ = State::kOpen;
    cca_->on_recovery_exit(now, pipe_);
  }
  if (state_ == State::kOpen && sb_.lost_count() > 0) {
    state_ = State::kRecovery;
    recovery_point_ = sb_.snd_nxt();
    ++cold_.stats.congestion_events;
    if (cold_.congestion_event_cb) cold_.congestion_event_cb(now);
    // PRR (RFC 6937) epoch starts here.
    prr_delivered_ = 0;
    prr_out_ = 0;
    prr_recover_fs_ = std::max<uint64_t>(pipe_ + newly_lost, 1);
    prr_budget_ = 0;
    cca_->on_congestion_event(now, pipe_);
    // The fast retransmit goes out immediately (RFC 5681), without
    // waiting for the pipe to deflate below the reduced cwnd.
    force_retransmit = true;
    // The loss reduction covers any ECN mark echoed from the same window.
    ecn_cwr_point_ = sb_.snd_nxt();
  }
  // ECN response (RFC 3168 §6.1.2): an echoed ECE is a congestion event
  // without loss — reduce cwnd exactly as recovery entry does, but with
  // nothing to retransmit and no recovery episode. At most one reduction
  // per window of data: ECE on ACKs that do not reach ecn_cwr_point_
  // echoes a mark this sender already reacted to.
  if (ecn_enabled_ && (ack.ecn & kEcnEce) != 0 && state_ == State::kOpen &&
      ack.ack_seq >= ecn_cwr_point_) {
    ++cold_.stats.congestion_events;
    ++cold_.stats.ecn_reductions;
    if (cold_.congestion_event_cb) cold_.congestion_event_cb(now);
    cca_->on_congestion_event(now, pipe_);
    ecn_cwr_point_ = sb_.snd_nxt();
    cwr_pending_ = true;
  }
  if (state_ == State::kRecovery && !cca_->owns_recovery_cwnd()) {
    // PRR: earn transmission credit proportional to deliveries.
    prr_delivered_ += newly_delivered;
    const uint64_t target = std::max<uint64_t>(cca_->cwnd(), 1);
    int64_t sndcnt;
    if (pipe_ > target) {
      // Proportional reduction toward the target window.
      const auto allowed = static_cast<int64_t>(
          (prr_delivered_ * target + prr_recover_fs_ - 1) / prr_recover_fs_);
      sndcnt = allowed - static_cast<int64_t>(prr_out_);
    } else {
      // Conservative-reduction bound / slow-start branch: at least keep
      // the ACK clock running, plus one extra segment per ACK.
      const auto limit = static_cast<int64_t>(prr_delivered_) -
                         static_cast<int64_t>(prr_out_) +
                         static_cast<int64_t>(newly_delivered);
      sndcnt = std::min<int64_t>(limit, static_cast<int64_t>(newly_delivered) + 1);
    }
    prr_budget_ = static_cast<uint64_t>(std::max<int64_t>(sndcnt, 0));
  }

  if (rtt_sample > TimeDelta::zero()) {
    rtt_.add_sample(rtt_sample);
    rto_backoff_shift_ = 0;
    cold_.stats.rtt_sample_sum_ns += rtt_sample.ns();
    ++cold_.stats.rtt_sample_count;
  }

  AckEvent ev;
  ev.now = now;
  ev.newly_acked = newly_delivered;
  ev.newly_lost = newly_lost;
  ev.inflight = pipe_;
  ev.delivered_total = rate_est_.delivered();
  ev.rtt_sample = rtt_sample;
  ev.min_rtt = rtt_.min_rtt();
  ev.rate = rate_est_.take_sample(now, rtt_.min_rtt());
  // Only fast recovery freezes CCA window growth; after an RTO (kLoss)
  // the window slow-starts back up while retransmitting, as Linux does in
  // CA_Loss — without this, repairing a large loss episode at cwnd = 1
  // takes one segment per RTT.
  ev.in_recovery = (state_ == State::kRecovery);
  cca_->on_ack(ev);
  if (auto* a = sim_.auditor()) {
    a->on_ack_processed(flow_id_, ev, cca_->cwnd(), rate_est_.delivered_time(),
                        rate_est_.delivered());
  }

  // RTO timer: restart on progress, stop when nothing is outstanding and
  // nothing awaits retransmission.
  if (pipe_ == 0 && sb_.lost_count() == 0 && sb_.empty()) {
    rto_timer_.cancel();
  } else if (cum_advanced) {
    arm_rto();
  }

  if (force_retransmit && sb_.lost_count() > 0) {
    retx_hint_ = std::max(retx_hint_, sb_.snd_una());
    if (auto lost = sb_.find_lost_from(retx_hint_)) {
      retx_hint_ = *lost + 1;
      transmit_segment(now, *lost, /*retransmit=*/true, /*prr_exempt=*/true);
    }
  }
  try_send();

  if (complete() && !completion_fired_) {
    completion_fired_ = true;
    rto_timer_.cancel();
    pacing_timer_.cancel();
    if (cold_.completion_cb) cold_.completion_cb();
  } else if (app_gated_ && !app_drained_notified_ &&
             sb_.snd_una() >= app_limit_ &&
             (data_segments_ == 0 || app_limit_ < data_segments_)) {
    // Everything the application released is delivered and acknowledged;
    // tell the pacing model so it can think, then release the next burst.
    app_drained_notified_ = true;
    if (cold_.app_drained_cb) cold_.app_drained_cb();
  }
}

TimeDelta TcpSender::current_rto() const {
  TimeDelta rto = rtt_.rto();
  for (uint32_t i = 0; i < rto_backoff_shift_; ++i) {
    rto = rto * 2;
    if (rto >= TimeDelta::seconds(120)) return TimeDelta::seconds(120);
  }
  return rto;
}

void TcpSender::arm_rto() { rto_timer_.arm_in(current_rto()); }

void TcpSender::on_rto_fire() {
  if (pipe_ == 0 && sb_.empty()) return;  // nothing to recover
  ++cold_.stats.rto_events;
  rto_backoff_shift_ = std::min<uint32_t>(rto_backoff_shift_ + 1, 10);
  cca_->on_rto(sim_.now());
  // Everything is presumed lost; mark_all_lost also clears every
  // outstanding flag along with the pipe, or deliveries of pre-RTO copies
  // that do arrive would deflate a pipe that no longer counts them.
  sb_.mark_all_lost([](uint64_t, SegmentState&) {});
  pipe_ = 0;
  state_ = State::kLoss;
  recovery_point_ = sb_.snd_nxt();
  ecn_cwr_point_ = sb_.snd_nxt();  // the RTO reduction covers pending marks
  retx_hint_ = sb_.snd_una();
  dupack_count_ = 0;
  // Pacing credit is stale after an idle RTO period.
  next_send_time_ = sim_.now();
  arm_rto();
  try_send();
}

void TcpSender::try_send() {
  if (!started_ || in_try_send_) return;
  in_try_send_ = true;
  const bool paced = pacing_enabled();
  while (true) {
    if (state_ == State::kRecovery && !cca_->owns_recovery_cwnd()) {
      // PRR clocks transmissions against deliveries during fast recovery.
      if (prr_budget_ == 0) break;
    } else {
      const uint64_t cwnd = std::max<uint64_t>(cca_->cwnd(), 1);
      if (pipe_ >= cwnd) break;
    }
    const Time now = sim_.now();
    if (paced && now < next_send_time_) {
      pacing_timer_.arm_at(next_send_time_);
      break;
    }
    if (!send_one(now)) break;
  }
  in_try_send_ = false;
}

bool TcpSender::send_one(Time now) {
  // Retransmissions of lost segments take priority over new data.
  if (sb_.lost_count() > 0) {
    retx_hint_ = std::max(retx_hint_, sb_.snd_una());
    if (auto lost = sb_.find_lost_from(retx_hint_)) {
      retx_hint_ = *lost + 1;
      transmit_segment(now, *lost, /*retransmit=*/true);
      return true;
    }
  }
  if (sb_.window_size() >= max_window_) return false;
  // Finite source: no new data beyond the transfer size.
  if (data_segments_ > 0 && sb_.snd_nxt() >= data_segments_) {
    return false;
  }
  // Application-limited source: the app has released nothing further. Mark
  // the estimator so subsequent rate samples carry is_app_limited and
  // BBR-style CCAs do not treat application silence as path bandwidth.
  if (app_gated_ && sb_.snd_nxt() >= app_limit_) {
    rate_est_.on_app_limited(pipe_);
    return false;
  }
  sb_.extend();
  transmit_segment(now, sb_.snd_nxt() - 1, /*retransmit=*/false);
  return true;
}

void TcpSender::transmit_segment(Time now, uint64_t seq, bool retransmit,
                                 bool prr_exempt) {
  if (auto* a = sim_.auditor()) {
    const bool prr_active =
        state_ == State::kRecovery && !cca_->owns_recovery_cwnd();
    a->on_transmit(flow_id_, prr_active, prr_budget_, prr_exempt);
  }
  sb_.note_transmit(seq);  // clears a lost mark, sets outstanding
  SegmentState& st = sb_.seg(seq);
  rate_est_.on_packet_sent(now, st, /*pipe_was_empty=*/pipe_ == 0);
  st.last_sent = now;
  ++st.tx_count;
  ++pipe_;

  ++cold_.stats.segments_sent;
  if (retransmit) ++cold_.stats.retransmits;
  if (state_ == State::kRecovery) {
    ++prr_out_;
    if (prr_budget_ > 0) --prr_budget_;
  }
  cca_->on_packet_sent(now, seq, pipe_);

  if (pacing_enabled()) {
    const DataRate rate = cca_->pacing_rate();
    const Time base = std::max(next_send_time_, now);
    next_send_time_ = base + rate.transfer_time(kDataPacketBytes);
  }
  if (!rto_timer_.is_armed()) arm_rto();

  Packet pkt =
      Packet::make_data(flow_id_, DumbbellTopology::kToReceivers, seq, retransmit);
  if (ecn_enabled_) {
    pkt.ecn = kEcnEct;
    if (cwr_pending_) {
      pkt.ecn |= kEcnCwr;
      cwr_pending_ = false;
    }
  }
  if (auto* a = sim_.auditor()) a->on_packet_injected(pkt);
  data_path_->accept(std::move(pkt));
}

}  // namespace ccas
