#include "src/stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>

namespace ccas {

QuantileSketch::QuantileSketch(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps >= 0.5) {
    throw std::invalid_argument("QuantileSketch: eps must be in (0, 0.5)");
  }
  tuples_.reserve(64);
  scratch_.reserve(64);
}

void QuantileSketch::reserve(size_t tuples) {
  tuples_.reserve(tuples);
  scratch_.reserve(tuples);
}

void QuantileSketch::insert(double v) {
  ++count_;
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), v,
      [](double a, const Tuple& t) { return a < t.v; });
  // New extrema must carry delta = 0 (their rank is known exactly);
  // interior insertions get the standard floor(2 eps n) - 1 uncertainty.
  uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    const double band = 2.0 * eps_ * static_cast<double>(count_);
    if (band >= 2.0) delta = static_cast<uint64_t>(band) - 1;
  }
  tuples_.insert(it, Tuple{v, 1, delta});
  if (++inserts_since_compress_ >= static_cast<uint64_t>(1.0 / (2.0 * eps_))) {
    compress();
    inserts_since_compress_ = 0;
  }
}

void QuantileSketch::compress() {
  if (tuples_.size() < 3) return;
  const double band = 2.0 * eps_ * static_cast<double>(count_);
  const auto threshold = static_cast<uint64_t>(std::max(band, 1.0));
  // Merge tuple i into its right neighbour when the combined coverage
  // g_i + g_right + delta_right stays under 2 eps n. Scan right-to-left so
  // each tuple is judged against its final (already compacted) neighbour;
  // the first and last tuples are never removed (they pin min/max).
  size_t right = tuples_.size() - 1;
  for (size_t i = tuples_.size() - 1; i-- > 1;) {
    if (tuples_[i].g + tuples_[right].g + tuples_[right].delta <= threshold) {
      tuples_[right].g += tuples_[i].g;
      tuples_[i].g = 0;  // mark absorbed (live tuples always have g >= 1)
    } else {
      right = i;
    }
  }
  scratch_.clear();
  for (const Tuple& t : tuples_) {
    if (t.g != 0) scratch_.push_back(t);
  }
  tuples_.swap(scratch_);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    tuples_ = other.tuples_;
    count_ = other.count_;
    return;
  }
  scratch_.clear();
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(scratch_),
             [](const Tuple& a, const Tuple& b) { return a.v < b.v; });
  tuples_.swap(scratch_);
  count_ += other.count_;
  compress();
}

double QuantileSketch::quantile(double q) const {
  if (tuples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q <= 0.0) return tuples_.front().v;
  if (q >= 1.0) return tuples_.back().v;
  const auto rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  const double slack = eps_ * static_cast<double>(count_);
  // Return the last tuple i whose successor could still overshoot the
  // target rank by more than the error budget — the standard GK query:
  // pick i with rmax(i+1) > rank + eps*n and report v_i.
  uint64_t rmin = 0;
  for (size_t i = 0; i + 1 < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const uint64_t next_rmax = rmin + tuples_[i + 1].g + tuples_[i + 1].delta;
    if (static_cast<double>(next_rmax) > static_cast<double>(rank) + slack) {
      return tuples_[i].v;
    }
  }
  return tuples_.back().v;
}

}  // namespace ccas
