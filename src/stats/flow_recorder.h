// Per-flow measurement accounting: cumulative counter snapshots taken at
// the warm-up boundary and at the end of the measurement window, and the
// derived per-flow metrics the paper reports (this is the tcpprobe +
// switch-drop-log analog).
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace ccas {

// A snapshot of one flow's cumulative counters at a point in time.
struct FlowCounters {
  Time at = Time::zero();
  uint64_t segments_sent = 0;       // sender, incl. retransmits
  uint64_t retransmits = 0;         // sender
  uint64_t delivered = 0;           // sender: cum-ACKed + SACKed
  uint64_t congestion_events = 0;   // sender: fast-recovery entries
  uint64_t rto_events = 0;          // sender
  uint64_t queue_drops = 0;         // bottleneck queue, this flow
  uint64_t queue_marks = 0;         // bottleneck qdisc ECN CE marks, this flow
  uint64_t ecn_reductions = 0;      // sender: ECE-triggered cwnd reductions
  uint64_t rcv_in_order = 0;        // receiver: rcv_nxt (goodput)
  int64_t rtt_sample_sum_ns = 0;    // sender RTT-sample accumulator
  uint64_t rtt_sample_count = 0;
};

// Metrics over a measurement window (difference of two snapshots).
struct FlowMeasurement {
  uint32_t flow_id = 0;
  TimeDelta window = TimeDelta::zero();
  double goodput_bps = 0.0;  // in-order receiver bytes (paper's throughput)
  uint64_t segments_sent = 0;
  uint64_t retransmits = 0;
  uint64_t delivered = 0;
  uint64_t congestion_events = 0;
  uint64_t rto_events = 0;
  uint64_t queue_drops = 0;
  uint64_t queue_marks = 0;
  uint64_t ecn_reductions = 0;

  // The two interpretations of Mathis `p` (Section 4 of the paper):
  // packet loss rate = drops at the bottleneck / segments sent;
  // CWND halving rate = congestion events / segments delivered.
  double packet_loss_rate = 0.0;
  double cwnd_halving_rate = 0.0;

  // Mean RTT experienced over the window (base RTT + queueing delay) —
  // the RTT the Mathis model is evaluated against. Zero if no samples.
  TimeDelta mean_rtt = TimeDelta::zero();
};

[[nodiscard]] FlowMeasurement measure_flow(uint32_t flow_id, const FlowCounters& begin,
                                           const FlowCounters& end, int64_t mss_bytes);

// Convenience extractors over a set of measurements.
[[nodiscard]] std::vector<double> goodputs_bps(
    const std::vector<FlowMeasurement>& flows);

}  // namespace ccas
