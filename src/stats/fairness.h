// Jain's Fairness Index (Jain, Chiu, Hawe 1984) — the paper's fairness
// metric: JFI = (sum x)^2 / (n * sum x^2), in (0, 1], 1 = perfectly fair.
#pragma once

#include <span>
#include <vector>

namespace ccas {

[[nodiscard]] double jain_fairness_index(std::span<const double> allocations);

// JFI of the worst (lowest-JFI) contiguous subset is not meaningful; what
// the paper also reports is each group's share of aggregate throughput.
[[nodiscard]] double share_of_total(std::span<const double> group,
                                    std::span<const double> everyone);

}  // namespace ccas
