// Goh-Barabási burstiness score (EPL 81, 2008), used by the paper to show
// that bottleneck drops are burstier at CoreScale (~0.35) than EdgeScale
// (~0.2):
//
//     B = (sigma_tau - mu_tau) / (sigma_tau + mu_tau)
//
// over the distribution of inter-event times tau. B = -1 for a perfectly
// periodic process, ~0 for Poisson, -> 1 for extremely bursty.
#pragma once

#include <span>

#include "src/util/units.h"

namespace ccas {

// From raw inter-event intervals (seconds).
[[nodiscard]] double goh_barabasi_burstiness(std::span<const double> intervals);

// From a sorted sequence of event timestamps (computes the intervals).
[[nodiscard]] double goh_barabasi_burstiness_from_times(std::span<const Time> events);

}  // namespace ccas
