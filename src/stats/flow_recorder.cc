#include "src/stats/flow_recorder.h"

#include <stdexcept>

namespace ccas {

FlowMeasurement measure_flow(uint32_t flow_id, const FlowCounters& begin,
                             const FlowCounters& end, int64_t mss_bytes) {
  if (end.at < begin.at) throw std::invalid_argument("snapshots out of order");
  FlowMeasurement m;
  m.flow_id = flow_id;
  m.window = end.at - begin.at;
  m.segments_sent = end.segments_sent - begin.segments_sent;
  m.retransmits = end.retransmits - begin.retransmits;
  m.delivered = end.delivered - begin.delivered;
  m.congestion_events = end.congestion_events - begin.congestion_events;
  m.rto_events = end.rto_events - begin.rto_events;
  m.queue_drops = end.queue_drops - begin.queue_drops;
  m.queue_marks = end.queue_marks - begin.queue_marks;
  m.ecn_reductions = end.ecn_reductions - begin.ecn_reductions;

  const uint64_t in_order = end.rcv_in_order - begin.rcv_in_order;
  if (m.window > TimeDelta::zero()) {
    m.goodput_bps = static_cast<double>(in_order) *
                    static_cast<double>(mss_bytes) * 8.0 / m.window.sec();
  }
  if (m.segments_sent > 0) {
    m.packet_loss_rate =
        static_cast<double>(m.queue_drops) / static_cast<double>(m.segments_sent);
  }
  const uint64_t rtt_n = end.rtt_sample_count - begin.rtt_sample_count;
  if (rtt_n > 0) {
    m.mean_rtt = TimeDelta::nanos((end.rtt_sample_sum_ns - begin.rtt_sample_sum_ns) /
                                  static_cast<int64_t>(rtt_n));
  }
  if (m.delivered > 0) {
    // Count both fast-recovery halvings and RTO backoffs as congestion
    // events, as tcpprobe-based accounting does.
    m.cwnd_halving_rate =
        static_cast<double>(m.congestion_events + m.rto_events) /
        static_cast<double>(m.delivered);
  }
  return m;
}

std::vector<double> goodputs_bps(const std::vector<FlowMeasurement>& flows) {
  std::vector<double> out;
  out.reserve(flows.size());
  for (const auto& f : flows) out.push_back(f.goodput_bps);
  return out;
}

}  // namespace ccas
