#include "src/stats/fairness.h"

#include <stdexcept>

namespace ccas {

double jain_fairness_index(std::span<const double> allocations) {
  if (allocations.empty()) throw std::invalid_argument("JFI of empty allocation");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    if (x < 0.0) throw std::invalid_argument("negative allocation");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: degenerate but "equal"
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

double share_of_total(std::span<const double> group, std::span<const double> everyone) {
  double g = 0.0;
  double all = 0.0;
  for (const double x : group) g += x;
  for (const double x : everyone) all += x;
  if (all == 0.0) return 0.0;
  return g / all;
}

}  // namespace ccas
