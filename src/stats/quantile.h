// Greenwald–Khanna streaming quantile summary (SIGMOD 2001): one-pass
// eps-approximate rank queries in O((1/eps) log(eps n)) space, with merge
// support for sharded accumulation. Entirely deterministic — no sampling,
// no randomization — so identical insert order yields identical summaries
// and identical query answers (golden-safe). Used by the workload engine's
// FCT recorder for P50/P90/P99/P999 over millions of completions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccas {

class QuantileSketch {
 public:
  // eps is the rank-error bound: quantile(q) returns a value whose true
  // rank is within eps * count() of q * count() (about 2*eps after merging
  // independently built sketches).
  explicit QuantileSketch(double eps = 0.001);

  void insert(double v);

  // Folds `other` into this sketch (merge-sort of the two summaries plus a
  // compress pass). Both sides must use the same eps.
  void merge(const QuantileSketch& other);

  // q in [0, 1]. Returns NaN when empty; exact min/max at q = 0 / q = 1.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] double eps() const { return eps_; }
  // Summary footprint, for tests asserting sublinear growth.
  [[nodiscard]] size_t tuple_count() const { return tuples_.size(); }

  // Pre-sizes internal storage so steady-state insertion never allocates
  // (the userscale bench holds the allocs-per-event gate with this).
  void reserve(size_t tuples);

 private:
  struct Tuple {
    double v;        // a sample value
    uint64_t g;      // rmin(this) - rmin(previous tuple)
    uint64_t delta;  // rmax(this) - rmin(this)
  };

  void compress();

  double eps_;
  uint64_t count_ = 0;
  uint64_t inserts_since_compress_ = 0;
  std::vector<Tuple> tuples_;   // sorted by v
  std::vector<Tuple> scratch_;  // compress/merge workspace (reused)
};

}  // namespace ccas
