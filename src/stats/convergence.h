// The paper's stopping rule: run until the metric of interest changes by
// less than 1% over a trailing window (20 minutes in the testbed; scaled
// in the simulator). Feed the detector periodic samples of the metric.
#pragma once

#include <deque>

#include "src/util/units.h"

namespace ccas {

class ConvergenceDetector {
 public:
  ConvergenceDetector(TimeDelta window, double relative_tolerance)
      : window_(window), tolerance_(relative_tolerance) {}

  void add_sample(Time at, double value);

  // True once the oldest retained sample is at least `window` old and
  // every sample within the window is within `tolerance` (relative) of the
  // latest value.
  [[nodiscard]] bool converged() const;

  [[nodiscard]] size_t samples() const { return samples_.size(); }
  [[nodiscard]] TimeDelta window() const { return window_; }

 private:
  struct Sample {
    Time at;
    double value;
  };
  TimeDelta window_;
  double tolerance_;
  std::deque<Sample> samples_;
  bool window_filled_ = false;
};

}  // namespace ccas
