#include "src/stats/burstiness.h"

#include <stdexcept>
#include <vector>

#include "src/util/stats.h"

namespace ccas {

double goh_barabasi_burstiness(std::span<const double> intervals) {
  if (intervals.size() < 2) {
    throw std::invalid_argument("burstiness needs at least two intervals");
  }
  RunningStats s;
  for (const double tau : intervals) {
    if (tau < 0.0) throw std::invalid_argument("negative interval");
    s.add(tau);
  }
  const double mu = s.mean();
  const double sigma = s.stddev();
  if (mu + sigma == 0.0) return 0.0;
  return (sigma - mu) / (sigma + mu);
}

double goh_barabasi_burstiness_from_times(std::span<const Time> events) {
  if (events.size() < 3) {
    throw std::invalid_argument("burstiness needs at least three events");
  }
  std::vector<double> intervals;
  intervals.reserve(events.size() - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i] < events[i - 1]) {
      throw std::invalid_argument("event times must be non-decreasing");
    }
    intervals.push_back((events[i] - events[i - 1]).sec());
  }
  return goh_barabasi_burstiness(intervals);
}

}  // namespace ccas
