#include "src/stats/convergence.h"

#include <algorithm>
#include <cmath>

namespace ccas {

void ConvergenceDetector::add_sample(Time at, double value) {
  samples_.push_back(Sample{at, value});
  // Keep one sample older than the window so converged() can verify the
  // window is actually covered.
  while (samples_.size() >= 2 && at - samples_[1].at >= window_) {
    samples_.pop_front();
    window_filled_ = true;
  }
  if (!samples_.empty() && at - samples_.front().at >= window_) window_filled_ = true;
}

bool ConvergenceDetector::converged() const {
  if (!window_filled_ || samples_.size() < 2) return false;
  const double latest = samples_.back().value;
  for (const Sample& s : samples_) {
    const double denom = std::max(std::abs(latest), 1e-12);
    if (std::abs(s.value - latest) / denom > tolerance_) return false;
  }
  return true;
}

}  // namespace ccas
