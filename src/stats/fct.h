// Streaming flow-completion-time statistics for the open-loop workload
// engine (src/workload/): per-class completion counters, mean FCT, GK
// quantile sketches for P50/P90/P99/P999, and slowdown versus the ideal
// (unloaded) FCT — the metric CoCo-Beholder-style schedulers report and
// the "compare CCAs on completion time" analyses in PAPERS.md ask for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/quantile.h"

namespace ccas {

// Per-class summary carried in ExperimentResult (and serialized by the
// result cache when a workload ran). Plain data; FctRecorder produces it.
struct WorkloadClassResult {
  std::string name;
  std::string cca;
  uint64_t arrivals = 0;   // sessions offered to this class
  uint64_t rejected = 0;   // refused at admission (concurrency cap)
  uint64_t completed = 0;  // finished within the run
  uint64_t abandoned = 0;  // admitted but still in flight at run end
  uint64_t completed_segments = 0;
  double mean_fct_s = 0.0;
  double p50_fct_s = 0.0;
  double p90_fct_s = 0.0;
  double p99_fct_s = 0.0;
  double p999_fct_s = 0.0;
  // FCT / ideal FCT (one RTT plus the transfer's serialization time at the
  // bottleneck), averaged over completions. 1.0 = every flow finished as
  // fast as an empty network allows.
  double mean_slowdown = 0.0;
};

// One per traffic class. Streaming: O(sketch) memory however many flows
// complete, mergeable for sharded accumulation.
class FctRecorder {
 public:
  FctRecorder() = default;
  explicit FctRecorder(double eps) : fct_(eps) {}

  void on_arrival() { ++arrivals_; }
  void on_reject() { ++rejected_; }
  void on_abandon() { ++abandoned_; }
  void on_complete(double fct_s, double ideal_fct_s, uint64_t segments);

  void merge(const FctRecorder& other);

  [[nodiscard]] WorkloadClassResult summarize(std::string name,
                                              std::string cca) const;
  [[nodiscard]] uint64_t arrivals() const { return arrivals_; }
  [[nodiscard]] uint64_t completed() const { return completed_; }
  [[nodiscard]] const QuantileSketch& sketch() const { return fct_; }
  void reserve(size_t tuples) { fct_.reserve(tuples); }

 private:
  uint64_t arrivals_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t abandoned_ = 0;
  uint64_t completed_segments_ = 0;
  double fct_sum_s_ = 0.0;
  double slowdown_sum_ = 0.0;
  QuantileSketch fct_;
};

}  // namespace ccas
