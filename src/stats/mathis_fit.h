// Deriving the Mathis constant C empirically, exactly as the paper does
// (following Mathis et al.'s own methodology): find the C that minimizes
// the least-squared prediction error of Throughput = MSS*C/(RTT*sqrt(p))
// over the measured flows, then evaluate per-flow relative errors.
//
// The paper derives C separately for p = packet loss rate and p = CWND
// halving rate (Table 1) and reports the median prediction error of each
// (Figure 2).
#pragma once

#include <span>
#include <vector>

#include "src/util/units.h"

namespace ccas {

struct MathisObservation {
  double throughput_bps = 0.0;
  double p = 0.0;  // congestion-event rate (either interpretation)
  TimeDelta rtt = TimeDelta::zero();
};

struct MathisFit {
  double c = 0.0;
  // Relative prediction error |predicted - actual| / actual per flow,
  // using the fitted C.
  std::vector<double> relative_errors;
  double median_error = 0.0;
  size_t flows_used = 0;  // observations with p > 0 that entered the fit
};

// Least-squares fit of C through the origin on x = MSS/(RTT*sqrt(p)).
// Observations with p <= 0 or zero throughput are skipped.
[[nodiscard]] MathisFit fit_mathis_constant(std::span<const MathisObservation> obs,
                                            int64_t mss_bytes);

// Evaluates relative errors for a *given* C (e.g. cross-setting checks).
[[nodiscard]] std::vector<double> mathis_relative_errors(
    std::span<const MathisObservation> obs, double c, int64_t mss_bytes);

}  // namespace ccas
