#include "src/stats/fct.h"

#include <utility>

namespace ccas {

void FctRecorder::on_complete(double fct_s, double ideal_fct_s,
                              uint64_t segments) {
  ++completed_;
  completed_segments_ += segments;
  fct_sum_s_ += fct_s;
  slowdown_sum_ += ideal_fct_s > 0.0 ? fct_s / ideal_fct_s : 1.0;
  fct_.insert(fct_s);
}

void FctRecorder::merge(const FctRecorder& other) {
  arrivals_ += other.arrivals_;
  rejected_ += other.rejected_;
  completed_ += other.completed_;
  abandoned_ += other.abandoned_;
  completed_segments_ += other.completed_segments_;
  fct_sum_s_ += other.fct_sum_s_;
  slowdown_sum_ += other.slowdown_sum_;
  fct_.merge(other.fct_);
}

WorkloadClassResult FctRecorder::summarize(std::string name,
                                           std::string cca) const {
  WorkloadClassResult r;
  r.name = std::move(name);
  r.cca = std::move(cca);
  r.arrivals = arrivals_;
  r.rejected = rejected_;
  r.completed = completed_;
  r.abandoned = abandoned_;
  r.completed_segments = completed_segments_;
  if (completed_ > 0) {
    const auto n = static_cast<double>(completed_);
    r.mean_fct_s = fct_sum_s_ / n;
    r.mean_slowdown = slowdown_sum_ / n;
    r.p50_fct_s = fct_.quantile(0.50);
    r.p90_fct_s = fct_.quantile(0.90);
    r.p99_fct_s = fct_.quantile(0.99);
    r.p999_fct_s = fct_.quantile(0.999);
  }
  return r;
}

}  // namespace ccas
