#include "src/stats/mathis_fit.h"

#include <cmath>

#include "src/util/least_squares.h"
#include "src/util/stats.h"

namespace ccas {

namespace {
// x such that throughput = C * x.
double regressor(const MathisObservation& o, int64_t mss_bytes) {
  return static_cast<double>(mss_bytes) * 8.0 / (o.rtt.sec() * std::sqrt(o.p));
}
}  // namespace

MathisFit fit_mathis_constant(std::span<const MathisObservation> obs, int64_t mss_bytes) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(obs.size());
  y.reserve(obs.size());
  for (const auto& o : obs) {
    if (o.p <= 0.0 || o.throughput_bps <= 0.0 || o.rtt <= TimeDelta::zero()) continue;
    x.push_back(regressor(o, mss_bytes));
    y.push_back(o.throughput_bps);
  }
  MathisFit fit;
  fit.flows_used = x.size();
  if (x.empty()) return fit;
  fit.c = fit_through_origin(x, y);
  for (size_t i = 0; i < x.size(); ++i) {
    const double predicted = fit.c * x[i];
    fit.relative_errors.push_back(std::abs(predicted - y[i]) / y[i]);
  }
  fit.median_error = median(fit.relative_errors);
  return fit;
}

std::vector<double> mathis_relative_errors(std::span<const MathisObservation> obs,
                                           double c, int64_t mss_bytes) {
  std::vector<double> errors;
  for (const auto& o : obs) {
    if (o.p <= 0.0 || o.throughput_bps <= 0.0 || o.rtt <= TimeDelta::zero()) continue;
    const double predicted = c * regressor(o, mss_bytes);
    errors.push_back(std::abs(predicted - o.throughput_bps) / o.throughput_bps);
  }
  return errors;
}

}  // namespace ccas
