#include "src/stats/trace.h"

#include <stdexcept>

#include "src/util/csv.h"

namespace ccas {

const std::vector<FlowTraceSample>& TraceLog::flow(uint32_t flow_id) const {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) throw std::out_of_range("no trace for flow");
  return it->second;
}

std::vector<double> TraceLog::flow_throughput_bps(uint32_t flow_id,
                                                  int64_t mss_bytes) const {
  const auto& samples = flow(flow_id);
  std::vector<double> out;
  if (samples.size() < 2) return out;
  out.reserve(samples.size() - 1);
  for (size_t i = 1; i < samples.size(); ++i) {
    const TimeDelta dt = samples[i].at - samples[i - 1].at;
    const auto delta = static_cast<double>(samples[i].delivered -
                                           samples[i - 1].delivered);
    out.push_back(dt > TimeDelta::zero()
                      ? delta * static_cast<double>(mss_bytes) * 8.0 / dt.sec()
                      : 0.0);
  }
  return out;
}

void TraceLog::write_csv(const std::string& prefix) const {
  {
    CsvWriter w(prefix + "_flows.csv",
                {"flow", "t_sec", "cwnd", "inflight", "delivered",
                 "congestion_events", "rto_events", "pacing_bps", "in_recovery"});
    for (const auto& [flow_id, samples] : flows_) {
      for (const auto& s : samples) {
        w.start_row()
            .col(static_cast<int64_t>(flow_id))
            .col(s.at.sec(), 9)
            .col(static_cast<int64_t>(s.cwnd))
            .col(static_cast<int64_t>(s.inflight))
            .col(static_cast<int64_t>(s.delivered))
            .col(static_cast<int64_t>(s.congestion_events))
            .col(static_cast<int64_t>(s.rto_events))
            .col(s.pacing_bps, 6)
            .col(static_cast<int64_t>(s.in_recovery ? 1 : 0))
            .done();
      }
    }
  }
  {
    CsvWriter w(prefix + "_queue.csv", {"t_sec", "queued_bytes", "dropped_packets"});
    for (const auto& s : queue_) {
      w.start_row()
          .col(s.at.sec(), 9)
          .col(s.queued_bytes)
          .col(static_cast<int64_t>(s.dropped_packets))
          .done();
    }
  }
}

}  // namespace ccas
