// Time-series tracing: periodic samples of per-flow sender state and of
// the bottleneck queue, collected during an experiment (tcpprobe-style
// instrumentation, but exact). Enable via ExperimentSpec::trace_interval.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace ccas {

struct FlowTraceSample {
  Time at;
  uint64_t cwnd = 0;
  uint64_t inflight = 0;
  uint64_t delivered = 0;  // cumulative segments delivered
  uint64_t congestion_events = 0;
  uint64_t rto_events = 0;
  double pacing_bps = 0.0;  // 0 when unpaced
  bool in_recovery = false;
};

struct QueueTraceSample {
  Time at;
  int64_t queued_bytes = 0;
  uint64_t dropped_packets = 0;  // cumulative
};

class TraceLog {
 public:
  void add_flow_sample(uint32_t flow_id, const FlowTraceSample& sample) {
    flows_[flow_id].push_back(sample);
  }
  void add_queue_sample(const QueueTraceSample& sample) { queue_.push_back(sample); }

  [[nodiscard]] bool empty() const { return flows_.empty() && queue_.empty(); }
  [[nodiscard]] const std::vector<FlowTraceSample>& flow(uint32_t flow_id) const;
  [[nodiscard]] bool has_flow(uint32_t flow_id) const {
    return flows_.contains(flow_id);
  }
  [[nodiscard]] const std::map<uint32_t, std::vector<FlowTraceSample>>& flows() const {
    return flows_;
  }
  [[nodiscard]] const std::vector<QueueTraceSample>& queue() const { return queue_; }

  // Derived series: delivery rate between consecutive samples of a flow,
  // as bps of MSS payload (size = samples - 1).
  [[nodiscard]] std::vector<double> flow_throughput_bps(uint32_t flow_id,
                                                        int64_t mss_bytes) const;

  // Writes two CSVs: <prefix>_flows.csv and <prefix>_queue.csv.
  void write_csv(const std::string& prefix) const;

 private:
  std::map<uint32_t, std::vector<FlowTraceSample>> flows_;
  std::vector<QueueTraceSample> queue_;
};

}  // namespace ccas
