#include "src/net/impairment.h"

#include <string>
#include <utility>

#include "src/check/audit.h"
#include "src/net/link.h"
#include "src/net/queue.h"

namespace ccas {

namespace {

constexpr uint32_t kDeliverTag = 1;
constexpr uint32_t kFaultTag = 2;

void check_probability(const char* name, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(name) +
                                " must be a probability in [0, 1]");
  }
}

}  // namespace

void ImpairmentConfig::validate() const {
  check_probability("impairment loss", loss);
  check_probability("impairment duplicate", duplicate);
  check_probability("impairment reorder", reorder);
  check_probability("ge p_good_to_bad", ge.p_good_to_bad);
  check_probability("ge p_bad_to_good", ge.p_bad_to_good);
  check_probability("ge loss_bad", ge.loss_bad);
  check_probability("ge loss_good", ge.loss_good);
  if (ge.p_good_to_bad > 0.0 && ge.p_bad_to_good <= 0.0) {
    throw std::invalid_argument(
        "ge p_bad_to_good must be positive (the bad state must be leavable)");
  }
  if (reorder > 0.0 && reorder_delay <= TimeDelta::zero()) {
    throw std::invalid_argument("reorder_delay must be positive when reordering");
  }
  if (jitter < TimeDelta::zero()) {
    throw std::invalid_argument("impairment jitter must be >= 0");
  }
  Time prev = Time::zero();
  bool first = true;
  for (const LinkFault& f : faults) {
    if (!first && f.at <= prev) {
      throw std::invalid_argument("fault schedule must be strictly increasing");
    }
    prev = f.at;
    first = false;
    if (f.kind == LinkFault::Kind::kRate &&
        (f.rate.is_zero() || f.rate.bits_per_sec() < 0)) {
      throw std::invalid_argument("fault rate must be positive");
    }
    if (f.kind == LinkFault::Kind::kBuffer && f.buffer_bytes <= 0) {
      throw std::invalid_argument("fault buffer must be positive");
    }
  }
}

uint64_t derive_impairment_seed(uint64_t cell_seed) {
  // SplitMix64 finalizer under a fixed salt: independent of the master
  // Rng's stream (which existing goldens depend on) yet a pure function
  // of the cell seed, so sweeps stay byte-identical at any --jobs.
  uint64_t z = cell_seed ^ 0x1B873593CC9E2D51ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

ImpairedLink::ImpairedLink(Simulator& sim, const ImpairmentConfig& config,
                           PacketSink* dest)
    : sim_(sim), config_(config), dest_(dest), rng_(config.seed) {
  if (dest == nullptr) throw std::invalid_argument("ImpairedLink needs a destination");
  config_.validate();
  for (size_t i = 0; i < config_.faults.size(); ++i) {
    sim_.schedule_at(config_.faults[i].at, this, kFaultTag, i);
  }
}

void ImpairedLink::attach_fault_targets(Link* link, QueueDisc* queue) {
  fault_link_ = link;
  fault_queue_ = queue;
}

TimeDelta ImpairedLink::draw_jitter() {
  if (config_.jitter_dist == ImpairmentConfig::JitterDist::kUniform) {
    return config_.jitter * rng_.next_double();
  }
  // Irwin-Hall normal approximation (sum of 4 uniforms): mean jitter/2,
  // sigma jitter/6, clamped to [0, jitter). Platform-exact — no libm.
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) sum += rng_.next_double();
  const double z = (sum - 2.0) / 0.5773502691896258;  // sqrt(4/12)
  double frac = 0.5 + z / 6.0;
  if (frac < 0.0) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  return config_.jitter * frac;
}

void ImpairedLink::accept(Packet&& pkt) {
  ++stats_.processed;
  // Draw order is part of the determinism contract: down check (no draw),
  // GE loss + transition, i.i.d. loss, duplication, jitter, reorder. Each
  // feature draws only when enabled, so an inert stage consumes no
  // randomness and forwards synchronously.
  if (down_) {
    ++stats_.dropped_down;
    sim_.mutable_profile().impair_drops++;
    if (auto* a = sim_.auditor()) a->on_impairment_drop(pkt);
    return;
  }
  if (config_.ge.enabled()) {
    const double loss_p = ge_bad_ ? config_.ge.loss_bad : config_.ge.loss_good;
    const bool dropped = loss_p > 0.0 && rng_.next_double() < loss_p;
    const double flip_p =
        ge_bad_ ? config_.ge.p_bad_to_good : config_.ge.p_good_to_bad;
    if (rng_.next_double() < flip_p) ge_bad_ = !ge_bad_;
    if (dropped) {
      ++stats_.dropped_ge;
      sim_.mutable_profile().impair_drops++;
      if (auto* a = sim_.auditor()) a->on_impairment_drop(pkt);
      return;
    }
  }
  if (config_.loss > 0.0 && rng_.next_double() < config_.loss) {
    ++stats_.dropped_iid;
    sim_.mutable_profile().impair_drops++;
    if (auto* a = sim_.auditor()) a->on_impairment_drop(pkt);
    return;
  }
  const bool duplicate =
      config_.duplicate > 0.0 && rng_.next_double() < config_.duplicate;
  TimeDelta extra = TimeDelta::zero();
  if (config_.jitter > TimeDelta::zero()) {
    const TimeDelta j = draw_jitter();
    if (j > TimeDelta::zero()) ++stats_.jittered;
    extra += j;
  }
  if (config_.reorder > 0.0 && rng_.next_double() < config_.reorder) {
    ++stats_.reordered;
    extra += config_.reorder_delay * rng_.next_double();
  }
  if (duplicate) {
    // The copy is a fresh injection for conservation purposes; it departs
    // immediately (netem sends duplicates back-to-back), so a delayed
    // original is overtaken by its own copy.
    ++stats_.duplicated;
    sim_.mutable_profile().impair_dups++;
    Packet copy = pkt;
    if (auto* a = sim_.auditor()) a->on_impairment_duplicate(copy);
    forward(std::move(copy), TimeDelta::zero());
  }
  forward(std::move(pkt), extra);
}

void ImpairedLink::forward(Packet&& pkt, TimeDelta extra_delay) {
  if (extra_delay <= TimeDelta::zero()) {
    ++stats_.delivered;
    dest_->accept(std::move(pkt));
    return;
  }
  sim_.mutable_profile().impair_delays++;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(pkt);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(pkt));
  }
  ++in_transit_;
  in_transit_bytes_ += slots_[slot].size_bytes;
  sim_.schedule_in(extra_delay, this, kDeliverTag, slot);
}

void ImpairedLink::apply_fault(const LinkFault& fault) {
  switch (fault.kind) {
    case LinkFault::Kind::kDown:
      down_ = true;
      break;
    case LinkFault::Kind::kUp:
      down_ = false;
      break;
    case LinkFault::Kind::kRate:
      if (fault_link_ != nullptr) fault_link_->set_rate(fault.rate);
      break;
    case LinkFault::Kind::kBuffer:
      if (fault_queue_ != nullptr) fault_queue_->set_capacity(fault.buffer_bytes);
      break;
  }
}

void ImpairedLink::on_event(uint32_t tag, uint64_t arg) {
  if (tag == kFaultTag) {
    apply_fault(config_.faults[arg]);
    return;
  }
  const auto slot = static_cast<uint32_t>(arg);
  Packet p = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  --in_transit_;
  in_transit_bytes_ -= p.size_bytes;
  ++stats_.delivered;
  dest_->accept(std::move(p));
}

}  // namespace ccas
