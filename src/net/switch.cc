#include "src/net/switch.h"

#include <stdexcept>
#include <utility>

namespace ccas {

void SoftwareSwitch::add_route(uint32_t dst, PacketSink* out) {
  if (out == nullptr) throw std::invalid_argument("route to null sink");
  if (dst >= routes_.size()) routes_.resize(dst + 1, nullptr);
  routes_[dst] = out;
}

void SoftwareSwitch::accept(Packet&& pkt) {
  if (pkt.dst >= routes_.size() || routes_[pkt.dst] == nullptr) {
    ++dropped_no_route_;
    return;
  }
  ++forwarded_;
  routes_[pkt.dst]->accept(std::move(pkt));
}

void FlowDemux::register_flow(uint32_t flow_id, PacketSink* sink) {
  if (sink == nullptr) throw std::invalid_argument("register null sink");
  if (flow_id >= sinks_.size()) sinks_.resize(flow_id + 1, nullptr);
  sinks_[flow_id] = sink;
}

void FlowDemux::accept(Packet&& pkt) {
  if (pkt.flow_id >= sinks_.size() || sinks_[pkt.flow_id] == nullptr) {
    ++dropped_unknown_flow_;
    return;
  }
  ++delivered_;
  sinks_[pkt.flow_id]->accept(std::move(pkt));
}

}  // namespace ccas
