#include "src/net/queue.h"

#include <utility>

#include "src/net/link.h"

namespace ccas {

DropTailQueue::DropTailQueue(Simulator& sim, int64_t capacity_bytes)
    : QueueDisc(sim, capacity_bytes) {}

void DropTailQueue::accept(Packet&& pkt) {
  if (would_overflow(pkt)) {
    count_tail_drop(pkt);
    return;
  }
  fifo_.push_back(std::move(pkt));
  count_enqueue(fifo_.back());
  // Direct notify (link.h is includable here, unlike from qdisc.h): one
  // out-of-line call per enqueue, matching the pre-qdisc queue exactly.
  if (Link* link = downstream()) link->notify_pending();
}

Packet DropTailQueue::pop() {
  Packet p = fifo_.pop_front();
  // Negative sojourn = untracked: drop-tail does not timestamp arrivals,
  // keeping its per-packet cost and stats exactly as before the qdisc
  // layer existed.
  count_dequeue(p, TimeDelta::nanos(-1));
  return p;
}

}  // namespace ccas
