#include "src/net/queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/check/audit.h"
#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace ccas {

DropTailQueue::DropTailQueue(Simulator& sim, int64_t capacity_bytes)
    : sim_(sim), capacity_bytes_(capacity_bytes) {
  if (capacity_bytes <= 0) {
    throw std::invalid_argument("DropTailQueue capacity must be positive");
  }
}

void DropTailQueue::set_capacity(int64_t capacity_bytes) {
  if (capacity_bytes <= 0) {
    throw std::invalid_argument("DropTailQueue capacity must be positive");
  }
  capacity_bytes_ = capacity_bytes;
}

void DropTailQueue::accept(Packet&& pkt) {
  if (queued_bytes_ + pkt.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    if (pkt.flow_id < per_flow_drops_.size()) ++per_flow_drops_[pkt.flow_id];
    if (drop_log_enabled_) drop_log_.push_back(DropRecord{sim_.now(), pkt.flow_id});
    if (auto* a = sim_.auditor()) a->on_enqueue(*this, pkt, /*dropped=*/true);
    return;
  }
  queued_bytes_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += pkt.size_bytes;
  stats_.max_queued_bytes = std::max(stats_.max_queued_bytes, queued_bytes_);
  fifo_.push_back(std::move(pkt));
  if (auto* a = sim_.auditor()) a->on_enqueue(*this, fifo_.back(), /*dropped=*/false);
  if (downstream_ != nullptr) downstream_->notify_pending();
}

Packet DropTailQueue::pop() {
  Packet p = fifo_.pop_front();
  queued_bytes_ -= p.size_bytes;
  ++stats_.dequeued_packets;
  if (auto* a = sim_.auditor()) a->on_dequeue(*this, p);
  return p;
}

void DropTailQueue::reset_accounting() {
  stats_ = QueueStats{};
  stats_.max_queued_bytes = queued_bytes_;
  std::fill(per_flow_drops_.begin(), per_flow_drops_.end(), 0);
  drop_log_.clear();
  if (auto* a = sim_.auditor()) a->on_queue_reset(*this);
}

}  // namespace ccas
