// Pure propagation-delay elements (infinite rate, no loss).
//
// DelayLine applies one fixed delay to every packet; NetemDelay is the
// tc-netem analog used by the paper to set per-flow base RTTs: it looks up
// the delay per flow id, so flows with different RTTs can share the path.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/util/ring_buffer.h"
#include "src/util/rng.h"

namespace ccas {

class DelayLine final : public PacketSink, public EventHandler {
 public:
  DelayLine(Simulator& sim, TimeDelta delay, PacketSink* dest);

  void accept(Packet&& pkt) override;
  void on_event(uint32_t tag, uint64_t arg) override;

  [[nodiscard]] TimeDelta delay() const { return delay_; }
  [[nodiscard]] size_t in_transit() const { return fifo_.size(); }

 private:
  Simulator& sim_;
  TimeDelta delay_;
  PacketSink* dest_;
  // The delay is uniform, so arrivals happen in insertion order and a FIFO
  // suffices — no per-packet bookkeeping.
  RingBuffer<Packet> fifo_;
};

// Offload target for NetemDelay: the shard fabric installs one so that
// deliveries to flows homed on another event domain are handed over (with
// the fully computed release time) instead of scheduled locally. Kept as a
// tiny interface — not std::function — so the unsharded hot path pays one
// null check and the sharded path one devirtualized call.
struct NetemRelay {
  virtual ~NetemRelay() = default;
  // Returns true if the packet was taken over; false means the flow is
  // local and NetemDelay must schedule the delivery itself.
  virtual bool offload(uint32_t flow_id, Time deliver_at, Packet&& pkt) = 0;
};

class NetemDelay final : public PacketSink, public EventHandler {
 public:
  NetemDelay(Simulator& sim, PacketSink* dest);

  // Sets the one-way delay applied to packets of `flow_id`. Must be set
  // before the flow's first packet arrives.
  void set_flow_delay(uint32_t flow_id, TimeDelta delay);
  [[nodiscard]] TimeDelta flow_delay(uint32_t flow_id) const;

  // tc-netem's `delay ... jitter`: each packet gets an extra uniform
  // [0, jitter) delay, modelling kernel/NIC scheduling noise. Unlike raw
  // netem we never reorder within a flow (delivery times are clamped to be
  // non-decreasing per flow), because spurious reordering would trigger
  // dupacks the real testbed does not see.
  void set_jitter(TimeDelta jitter, uint64_t seed);

  void accept(Packet&& pkt) override;
  void on_event(uint32_t tag, uint64_t arg) override;

  // Installs (or clears, with nullptr) the shard fabric's offload target.
  // Release times are computed before the offload decision, so the jitter
  // RNG stream is identical with or without a relay installed.
  void set_relay(NetemRelay* relay) { relay_ = relay; }

  // Capacity hints (no observable effect): size the per-flow lane table
  // for `flows` flows, and the in-flight slot pool for `packets` packets,
  // so steady-state operation never grows either (the harness calls these
  // up front; the zero-allocation gate in tools/ccas_perf watches the
  // result).
  void reserve_flows(uint32_t flows) { lanes_.reserve(flows); }
  void reserve_in_flight(size_t packets) {
    slots_.reserve(packets);
    free_slots_.reserve(packets);
  }

  [[nodiscard]] size_t in_transit() const { return in_transit_; }
  [[nodiscard]] int64_t in_transit_bytes() const { return in_transit_bytes_; }

 private:
  // Per-flow state, one cache-adjacent record per flow: the configured
  // delay and the jitter ordering clamp live on the same line, so the hot
  // path takes one indexed load where two parallel vectors took two.
  struct FlowLane {
    TimeDelta delay = TimeDelta::zero();
    Time last_release = Time::zero();
  };

  Simulator& sim_;
  PacketSink* dest_;
  NetemRelay* relay_ = nullptr;
  std::vector<FlowLane> lanes_;
  TimeDelta jitter_ = TimeDelta::zero();
  std::unique_ptr<Rng> jitter_rng_;
  // Packets in flight live in a slot pool; the scheduled event carries the
  // slot index (flows with different delays can overtake each other, so a
  // FIFO would deliver out of order).
  std::vector<Packet> slots_;
  std::vector<uint32_t> free_slots_;
  size_t in_transit_ = 0;
  int64_t in_transit_bytes_ = 0;
};

}  // namespace ccas
