// A serializing link: drains a QueueDisc at a fixed rate and hands each
// packet to the downstream sink when its transmission completes. Propagation
// delay is modelled separately (DelayLine / NetemDelay), which keeps the
// link fully pipelined with exactly one pending event per link.
#pragma once

#include "src/net/packet.h"
#include "src/net/qdisc/qdisc.h"
#include "src/sim/simulator.h"

namespace ccas {

class Link final : public EventHandler {
 public:
  Link(Simulator& sim, DataRate rate, PacketSink* dest);

  // Called by the queue when a packet arrives; starts transmitting if idle.
  void notify_pending();

  [[nodiscard]] DataRate rate() const { return rate_; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] uint64_t delivered_bytes() const { return delivered_bytes_; }
  // Bytes of the packet currently being serialized (0 when idle); the
  // invariant auditor counts them as in-flight.
  [[nodiscard]] int64_t held_bytes() const {
    return busy_ ? in_flight_.size_bytes : 0;
  }

  void set_source(QueueDisc* queue) {
    queue_ = queue;
    drop_tail_ = queue != nullptr ? queue->as_drop_tail() : nullptr;
  }

  // Retargets the drain rate (scheduled link faults). Takes effect from
  // the next transmission; the packet currently serializing keeps the
  // rate it started with, exactly like a real NIC reconfiguration.
  void set_rate(DataRate rate);

  void on_event(uint32_t tag, uint64_t arg) override;

 private:
  void start_transmission();

  Simulator& sim_;
  DataRate rate_;
  PacketSink* dest_;
  QueueDisc* queue_ = nullptr;
  DropTailQueue* drop_tail_ = nullptr;  // fast path (see as_drop_tail)
  bool busy_ = false;
  Packet in_flight_{};
  uint64_t delivered_packets_ = 0;
  uint64_t delivered_bytes_ = 0;
};

}  // namespace ccas
