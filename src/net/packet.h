// Packet metadata. The simulator never carries payload bytes — only the
// header fields congestion control and loss recovery actually react to.
// Sequence numbers count MSS-sized segments, not bytes (the testbed fixes
// MSS to 1448 B, so the two are equivalent up to a constant).
//
// Packets are copied by value through queues and delay lines, so the
// struct is kept at 56 bytes: SACK ranges are encoded as 32-bit offsets
// relative to the cumulative ACK (as real TCP's 32-bit sequence space
// effectively does).
#pragma once

#include <array>
#include <cstdint>

#include "src/util/units.h"

namespace ccas {

inline constexpr int64_t kMssBytes = 1448;  // as in the paper's testbed
// 1448 MSS + 12 timestamps + 20 TCP + 20 IP = 1500 wire bytes per segment.
inline constexpr int64_t kDataPacketBytes = 1500;
inline constexpr int64_t kAckPacketBytes = 52;

enum class PacketType : uint8_t { kData, kAck };

// Half-open range of selectively acknowledged segments [start, end),
// in absolute segment numbers (sender-side view).
struct SackBlock {
  uint64_t start = 0;
  uint64_t end = 0;
  [[nodiscard]] bool empty() const { return start >= end; }
};

inline constexpr int kMaxSackBlocks = 3;

// ECN bits carried in the packet "header" (RFC 3168). The transport marks
// data packets ECT when ECN is negotiated; an AQM qdisc sets CE instead of
// dropping; the receiver echoes ECE on ACKs until the sender confirms the
// window reduction with CWR on a data packet. Stored as a flag byte in
// what used to be struct padding, so sizeof(Packet) is unchanged.
inline constexpr uint8_t kEcnEct = 0x1;  // ECN-capable transport (ECT(0))
inline constexpr uint8_t kEcnCe = 0x2;   // congestion experienced (qdisc mark)
inline constexpr uint8_t kEcnEce = 0x4;  // ACK: echo of a CE arrival
inline constexpr uint8_t kEcnCwr = 0x8;  // data: congestion window reduced

struct Packet {
  uint32_t flow_id = 0;
  uint32_t dst = 0;  // destination node id, used by Switch forwarding
  PacketType type = PacketType::kData;
  bool retransmit = false;
  uint8_t num_sacks = 0;
  uint8_t ecn = 0;  // kEcn* flag bits; 0 = not ECN-capable
  uint32_t size_bytes = 0;

  // Data packets: segment number being carried.
  uint64_t seq = 0;
  // ACK packets: cumulative acknowledgment — all segments < ack_seq have
  // been received — plus up to kMaxSackBlocks SACK ranges above it.
  uint64_t ack_seq = 0;

  struct SackRange {
    uint32_t start_off = 0;  // relative to ack_seq
    uint32_t end_off = 0;
  };
  std::array<SackRange, kMaxSackBlocks> sacks{};

  // Appends a SACK block (absolute segment numbers; must lie at or above
  // ack_seq and within 2^32 segments of it). Returns false when full or
  // the block duplicates an existing one.
  bool add_sack(uint64_t start, uint64_t end) {
    const auto s = static_cast<uint32_t>(start - ack_seq);
    const auto e = static_cast<uint32_t>(end - ack_seq);
    for (uint8_t i = 0; i < num_sacks; ++i) {
      if (sacks[i].start_off == s && sacks[i].end_off == e) return false;
    }
    if (num_sacks >= kMaxSackBlocks) return false;
    sacks[num_sacks++] = SackRange{s, e};
    return true;
  }

  [[nodiscard]] SackBlock sack(int i) const {
    return SackBlock{ack_seq + sacks[static_cast<size_t>(i)].start_off,
                     ack_seq + sacks[static_cast<size_t>(i)].end_off};
  }

  [[nodiscard]] static Packet make_data(uint32_t flow_id, uint32_t dst, uint64_t seq,
                                        bool retransmit) {
    Packet p;
    p.flow_id = flow_id;
    p.dst = dst;
    p.type = PacketType::kData;
    p.retransmit = retransmit;
    p.size_bytes = static_cast<uint32_t>(kDataPacketBytes);
    p.seq = seq;
    return p;
  }

  [[nodiscard]] static Packet make_ack(uint32_t flow_id, uint32_t dst, uint64_t ack_seq) {
    Packet p;
    p.flow_id = flow_id;
    p.dst = dst;
    p.type = PacketType::kAck;
    p.size_bytes = static_cast<uint32_t>(kAckPacketBytes);
    p.ack_seq = ack_seq;
    return p;
  }
};

static_assert(sizeof(Packet) <= 64, "Packet must stay copy-cheap");

// Anything that can receive packets: queues, delay lines, switches, hosts,
// TCP endpoints.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void accept(Packet&& pkt) = 0;
};

}  // namespace ccas
