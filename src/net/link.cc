#include "src/net/link.h"

#include <stdexcept>
#include <utility>

namespace ccas {

namespace {
constexpr uint32_t kTxComplete = 1;
}

Link::Link(Simulator& sim, DataRate rate, PacketSink* dest)
    : sim_(sim), rate_(rate), dest_(dest) {
  if (rate.is_zero()) throw std::invalid_argument("Link rate must be positive");
  if (dest == nullptr) throw std::invalid_argument("Link needs a destination");
}

void Link::notify_pending() {
  if (!busy_) start_transmission();
}

void Link::set_rate(DataRate rate) {
  if (rate.is_zero()) throw std::invalid_argument("Link rate must be positive");
  rate_ = rate;
}

void Link::start_transmission() {
  if (queue_ == nullptr || !queue_->has_packet()) return;
  in_flight_ = queue_->pop();
  busy_ = true;
  sim_.schedule_in(rate_.transfer_time(in_flight_.size_bytes), this, kTxComplete);
}

void Link::on_event(uint32_t tag, uint64_t /*arg*/) {
  if (tag != kTxComplete) return;
  ++delivered_packets_;
  delivered_bytes_ += in_flight_.size_bytes;
  Packet done = std::move(in_flight_);
  busy_ = false;
  // Start the next transmission before delivering: the delivery callback
  // chain may enqueue new packets and must observe a consistent link state.
  start_transmission();
  dest_->accept(std::move(done));
}

}  // namespace ccas
