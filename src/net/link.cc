#include "src/net/link.h"

#include <stdexcept>
#include <utility>

#include "src/net/queue.h"

namespace ccas {

namespace {
constexpr uint32_t kTxComplete = 1;
}

Link::Link(Simulator& sim, DataRate rate, PacketSink* dest)
    : sim_(sim), rate_(rate), dest_(dest) {
  if (rate.is_zero()) throw std::invalid_argument("Link rate must be positive");
  if (dest == nullptr) throw std::invalid_argument("Link needs a destination");
}

void Link::notify_pending() {
  if (!busy_) start_transmission();
}

void Link::set_rate(DataRate rate) {
  if (rate.is_zero()) throw std::invalid_argument("Link rate must be positive");
  rate_ = rate;
}

void Link::start_transmission() {
  if (drop_tail_ != nullptr) {
    // Devirtualized default path: DropTailQueue is final, so these calls
    // resolve concretely and the packet moves exactly once — the same
    // per-packet cost as before the qdisc layer existed.
    if (!drop_tail_->has_packet()) return;
    in_flight_ = drop_tail_->pop();
    busy_ = true;
    sim_.schedule_in(rate_.transfer_time(in_flight_.size_bytes), this, kTxComplete);
    return;
  }
  if (queue_ == nullptr) return;
  // An AQM dequeue may drop everything it inspects and come back empty;
  // keep asking while the qdisc reports queued packets.
  while (queue_->has_packet()) {
    std::optional<Packet> p = queue_->dequeue();
    if (!p.has_value()) continue;
    in_flight_ = std::move(*p);
    busy_ = true;
    sim_.schedule_in(rate_.transfer_time(in_flight_.size_bytes), this, kTxComplete);
    return;
  }
}

void Link::on_event(uint32_t tag, uint64_t /*arg*/) {
  if (tag != kTxComplete) return;
  ++delivered_packets_;
  delivered_bytes_ += in_flight_.size_bytes;
  Packet done = std::move(in_flight_);
  busy_ = false;
  // Start the next transmission before delivering: the delivery callback
  // chain may enqueue new packets and must observe a consistent link state.
  start_transmission();
  dest_->accept(std::move(done));
}

}  // namespace ccas
