// Netem-equivalent link impairment stage: deterministic fault injection
// composable in front of any PacketSink (a Link's destination, a
// DelayLine, a queue). The paper's testbed shapes paths with tc-netem and
// relies on the bottleneck's drop behaviour being the only loss source;
// ImpairedLink opens the exogenous axis — stochastic loss (i.i.d. and
// Gilbert-Elliott bursty), probabilistic reordering (delay-swap with a
// bounded displacement), duplication, per-packet jitter, and scheduled
// link faults (down/up flaps, mid-run rate/buffer changes).
//
// Determinism contract: the stage owns a dedicated Rng seeded from the
// sweep cell's seed (derive_impairment_seed), draws from it only for the
// features that are actually enabled, and is not constructed at all when
// the config is inert — so unimpaired runs are bit-identical to builds
// that predate this layer, and impaired runs are byte-identical at any
// --jobs level.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace ccas {

class Link;
class QueueDisc;

// Two-state Gilbert-Elliott loss chain: per-packet transitions between a
// good and a bad (bursty-loss) state, each with its own drop probability.
// The chain starts in the good state.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  // per-packet P(good -> bad)
  double p_bad_to_good = 0.0;  // per-packet P(bad -> good)
  double loss_bad = 0.0;       // drop probability while in the bad state
  double loss_good = 0.0;      // drop probability while in the good state

  [[nodiscard]] bool enabled() const {
    return p_good_to_bad > 0.0 && (loss_bad > 0.0 || loss_good > 0.0);
  }
};

// One scheduled link fault, applied at an absolute simulation time.
struct LinkFault {
  enum class Kind : uint8_t {
    kDown,    // drop every packet until the next kUp
    kUp,      // restore delivery
    kRate,    // retarget the attached Link's rate (next transmission on)
    kBuffer,  // retarget the attached QueueDisc's capacity
  };
  Time at = Time::zero();
  Kind kind = Kind::kDown;
  DataRate rate = DataRate::zero();  // kRate only
  int64_t buffer_bytes = 0;          // kBuffer only
};

struct ImpairmentConfig {
  enum class JitterDist : uint8_t { kUniform, kNormal };

  double loss = 0.0;       // i.i.d. per-packet drop probability
  GilbertElliottConfig ge;
  double duplicate = 0.0;  // per-packet duplication probability
  // Delay-swap reordering: with probability `reorder` a packet is held for
  // an extra uniform [0, reorder_delay) while later packets pass it, so
  // its displacement (in time, and hence in positions) is bounded.
  double reorder = 0.0;
  TimeDelta reorder_delay = TimeDelta::millis(1);
  // Per-packet extra delay in [0, jitter): uniform, or an Irwin-Hall
  // normal approximation (mean jitter/2, clamped to the same interval —
  // no libm calls, so streams are bit-identical across platforms).
  TimeDelta jitter = TimeDelta::zero();
  JitterDist jitter_dist = JitterDist::kUniform;
  // Scheduled faults, strictly increasing in `at`.
  std::vector<LinkFault> faults;
  // Rng seed for this stage's dedicated stream. 0 = derive from the
  // experiment's cell seed (run_experiment calls derive_impairment_seed).
  uint64_t seed = 0;
  // Test hook: build the stage even when inert. An inert stage forwards
  // synchronously and draws no randomness, so runs are bit-identical to
  // the unwrapped wiring — which is why this flag (like ExperimentSpec::
  // audit) is deliberately NOT part of the canonical spec encoding.
  bool force_stage = false;

  [[nodiscard]] bool enabled() const {
    return loss > 0.0 || ge.enabled() || duplicate > 0.0 || reorder > 0.0 ||
           jitter > TimeDelta::zero() || !faults.empty();
  }
  // Throws std::invalid_argument on out-of-range probabilities, a
  // non-positive reorder window, non-monotonic fault schedules, or
  // non-positive fault rates/buffers.
  void validate() const;
};

// Dedicated per-cell impairment seed: a SplitMix64 finalizer over the
// experiment seed under a fixed salt, so the stage's stream is independent
// of the master Rng (which must keep its historical consumption order for
// the pre-impairment goldens to stay byte-identical).
[[nodiscard]] uint64_t derive_impairment_seed(uint64_t cell_seed);

struct ImpairmentStats {
  uint64_t processed = 0;     // packets accepted from upstream
  uint64_t dropped_iid = 0;   // i.i.d. random loss
  uint64_t dropped_ge = 0;    // Gilbert-Elliott loss (either state)
  uint64_t dropped_down = 0;  // link-down fault
  uint64_t duplicated = 0;    // extra copies created
  uint64_t reordered = 0;     // packets held for a delay-swap
  uint64_t jittered = 0;      // packets given a nonzero jitter delay
  uint64_t delivered = 0;     // packets handed downstream (incl. copies)

  [[nodiscard]] uint64_t dropped_total() const {
    return dropped_iid + dropped_ge + dropped_down;
  }
};

class ImpairedLink final : public PacketSink, public EventHandler {
 public:
  // `config` must validate(); `seed` 0 falls back to config.seed.
  ImpairedLink(Simulator& sim, const ImpairmentConfig& config, PacketSink* dest);

  // Attaches the components that kRate/kBuffer faults retarget. Optional:
  // faults of those kinds without a target are ignored.
  void attach_fault_targets(Link* link, QueueDisc* queue);

  void accept(Packet&& pkt) override;
  void on_event(uint32_t tag, uint64_t arg) override;

  // Capacity hint (no observable effect): size the delayed-packet slot
  // pool so reorder/jitter holds never grow it in steady state.
  void reserve_in_flight(size_t packets) {
    slots_.reserve(packets);
    free_slots_.reserve(packets);
  }

  [[nodiscard]] const ImpairmentStats& stats() const { return stats_; }
  [[nodiscard]] bool down() const { return down_; }
  // Packets currently held for reorder/jitter delays (auditor holder).
  [[nodiscard]] size_t in_transit() const { return in_transit_; }
  [[nodiscard]] int64_t in_transit_bytes() const { return in_transit_bytes_; }
  [[nodiscard]] const ImpairmentConfig& config() const { return config_; }

 private:
  void forward(Packet&& pkt, TimeDelta extra_delay);
  void apply_fault(const LinkFault& fault);
  [[nodiscard]] TimeDelta draw_jitter();

  Simulator& sim_;
  ImpairmentConfig config_;
  PacketSink* dest_;
  Rng rng_;
  Link* fault_link_ = nullptr;
  QueueDisc* fault_queue_ = nullptr;

  bool down_ = false;
  bool ge_bad_ = false;  // Gilbert-Elliott chain state
  ImpairmentStats stats_;

  // Delayed packets live in a slot pool; the scheduled event carries the
  // slot index (delayed packets can be overtaken, so no FIFO).
  std::vector<Packet> slots_;
  std::vector<uint32_t> free_slots_;
  size_t in_transit_ = 0;
  int64_t in_transit_bytes_ = 0;
};

}  // namespace ccas
