// Drop-tail FIFO queue with byte-based capacity and a drop log.
//
// This is the BESS-switch-analog bottleneck buffer: the paper logs every
// packet drop here to compute per-flow loss rates and the Goh-Barabasi
// burstiness of the drop process. It is the default QueueDisc — the AQM
// disciplines live in src/net/qdisc/ — and deliberately does not timestamp
// packets, so its accounting (and every pre-qdisc golden digest) is
// byte-identical to the original standalone implementation.
#pragma once

#include "src/net/qdisc/qdisc.h"
#include "src/util/ring_buffer.h"

namespace ccas {

class DropTailQueue final : public QueueDisc {
 public:
  // `capacity_bytes` is the buffer size (paper: 1 BDP at 200 ms max RTT).
  DropTailQueue(Simulator& sim, int64_t capacity_bytes);

  void accept(Packet&& pkt) override;

  [[nodiscard]] bool has_packet() const override { return !fifo_.empty(); }
  // Removes and returns the head-of-line packet (called by the Link).
  Packet pop();
  std::optional<Packet> dequeue() override { return pop(); }
  DropTailQueue* as_drop_tail() override { return this; }

 private:
  RingBuffer<Packet> fifo_;
};

}  // namespace ccas
