// Drop-tail FIFO queue with byte-based capacity and a drop log.
//
// This is the BESS-switch-analog bottleneck buffer: the paper logs every
// packet drop here to compute per-flow loss rates and the Goh-Barabasi
// burstiness of the drop process.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/util/ring_buffer.h"

namespace ccas {

class Link;
class Simulator;

struct DropRecord {
  Time at;
  uint32_t flow_id = 0;
};

struct QueueStats {
  uint64_t enqueued_packets = 0;
  uint64_t enqueued_bytes = 0;
  uint64_t dequeued_packets = 0;
  uint64_t dropped_packets = 0;
  uint64_t dropped_bytes = 0;
  int64_t max_queued_bytes = 0;
};

class DropTailQueue final : public PacketSink {
 public:
  // `capacity_bytes` is the buffer size (paper: 1 BDP at 200 ms max RTT).
  DropTailQueue(Simulator& sim, int64_t capacity_bytes);

  // The link that drains this queue; must be set before packets arrive.
  void set_downstream(Link* link) { downstream_ = link; }

  void accept(Packet&& pkt) override;

  [[nodiscard]] bool has_packet() const { return !fifo_.empty(); }
  // Removes and returns the head-of-line packet (called by the Link).
  Packet pop();

  [[nodiscard]] int64_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] size_t queued_packets() const { return fifo_.size(); }
  [[nodiscard]] int64_t capacity_bytes() const { return capacity_bytes_; }
  // Retargets the buffer capacity (scheduled link faults). Packets already
  // queued beyond a shrunken capacity stay queued — drop-tail only refuses
  // new arrivals — which keeps occupancy accounting trivially consistent.
  void set_capacity(int64_t capacity_bytes);
  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  // Per-flow drop counters (indexed by flow id) and the full drop log.
  void reserve_flows(size_t n) { per_flow_drops_.resize(n, 0); }
  [[nodiscard]] const std::vector<uint64_t>& per_flow_drops() const {
    return per_flow_drops_;
  }
  [[nodiscard]] const std::vector<DropRecord>& drop_log() const { return drop_log_; }
  void set_drop_log_enabled(bool enabled) { drop_log_enabled_ = enabled; }
  [[nodiscard]] bool drop_log_enabled() const { return drop_log_enabled_; }

  // Clears counters and the drop log (used at the end of the warm-up
  // period so measurements cover only steady state).
  void reset_accounting();

 private:
  Simulator& sim_;
  int64_t capacity_bytes_;
  int64_t queued_bytes_ = 0;
  RingBuffer<Packet> fifo_;
  Link* downstream_ = nullptr;
  QueueStats stats_;
  std::vector<uint64_t> per_flow_drops_;
  std::vector<DropRecord> drop_log_;
  bool drop_log_enabled_ = true;
};

}  // namespace ccas
