// BESS-software-switch analog: forwards packets to output ports by
// destination node id, plus a per-flow demultiplexer used to hand packets
// to the right TCP endpoint at the end hosts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.h"

namespace ccas {

class SoftwareSwitch final : public PacketSink {
 public:
  SoftwareSwitch() = default;

  // Routes packets with pkt.dst == dst to `out`. Re-adding replaces.
  void add_route(uint32_t dst, PacketSink* out);

  void accept(Packet&& pkt) override;

  [[nodiscard]] uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  std::vector<PacketSink*> routes_;
  uint64_t forwarded_ = 0;
  uint64_t dropped_no_route_ = 0;
};

// Routes packets to per-flow sinks (TCP senders or receivers) by flow id.
class FlowDemux final : public PacketSink {
 public:
  void register_flow(uint32_t flow_id, PacketSink* sink);
  // Drops the flow's sink so a stray packet for a torn-down endpoint is
  // counted as an unknown-flow drop instead of dereferencing freed memory.
  void deregister_flow(uint32_t flow_id) {
    if (flow_id < sinks_.size()) sinks_[flow_id] = nullptr;
  }
  // Capacity hint for the flow-id table (no observable effect).
  void reserve(uint32_t flows) { sinks_.reserve(flows); }
  void accept(Packet&& pkt) override;

  [[nodiscard]] uint64_t delivered() const { return delivered_; }
  [[nodiscard]] uint64_t dropped_unknown_flow() const { return dropped_unknown_flow_; }

 private:
  std::vector<PacketSink*> sinks_;
  uint64_t delivered_ = 0;
  uint64_t dropped_unknown_flow_ = 0;
};

}  // namespace ccas
