#include "src/net/topology.h"

#include <stdexcept>

#include "src/check/audit.h"

namespace ccas {

DumbbellTopology::DumbbellTopology(Simulator& sim, const DumbbellConfig& config)
    : sim_(sim), config_(config) {
  if (config.num_pairs <= 0) {
    throw std::invalid_argument("DumbbellTopology needs at least one host pair");
  }
  // Receiver direction: queue -> bottleneck link -> [impairments] ->
  // forward netem -> demux. The impairment stage sits after serialization
  // and before propagation (where tc-netem shapes the physical testbed)
  // and is only built when the config is non-inert, so default runs keep
  // the historical wiring and event stream byte-for-byte.
  forward_netem_ = std::make_unique<NetemDelay>(sim_, &receiver_demux_);
  forward_netem_->set_jitter(config.jitter, config.jitter_seed);
  queue_ = make_qdisc(sim_, config.qdisc, config.buffer_bytes);
  PacketSink* link_dest = forward_netem_.get();
  if (config.impairments.enabled() || config.impairments.force_stage) {
    impaired_ = std::make_unique<ImpairedLink>(sim_, config.impairments,
                                               forward_netem_.get());
    link_dest = impaired_.get();
  }
  link_ = std::make_unique<Link>(sim_, config.bottleneck_rate, link_dest);
  queue_->set_downstream(link_.get());
  link_->set_source(queue_.get());
  if (impaired_ != nullptr) {
    impaired_->attach_fault_targets(link_.get(), queue_.get());
  }
  switch_.add_route(kToReceivers, queue_.get());

  // Sender direction (ACKs): reverse netem -> demux. The testbed's return
  // path is 25 Gbps carrying only ACKs, i.e. never congested.
  reverse_netem_ = std::make_unique<NetemDelay>(sim_, &sender_demux_);
  switch_.add_route(kToSenders, reverse_netem_.get());

  if (!config.edge_rate.is_infinite()) {
    host_queues_.reserve(static_cast<size_t>(config.num_pairs));
    host_links_.reserve(static_cast<size_t>(config.num_pairs));
    for (int i = 0; i < config.num_pairs; ++i) {
      auto q = std::make_unique<DropTailQueue>(sim_, config.edge_buffer_bytes);
      auto l = std::make_unique<Link>(sim_, config.edge_rate, &switch_);
      q->set_downstream(l.get());
      l->set_source(q.get());
      host_queues_.push_back(std::move(q));
      host_links_.push_back(std::move(l));
    }
  }

  // Conservation audit: queues report through their own hooks; everything
  // else that can hold a packet between events registers as a holder here.
  if (auto* a = sim_.auditor()) {
    a->register_holder("bottleneck-link", [this](int64_t& pkts, int64_t& bytes) {
      pkts += link_->busy() ? 1 : 0;
      bytes += link_->held_bytes();
    });
    if (impaired_ != nullptr) {
      a->watch_impairment(*impaired_);
      a->register_holder("impaired-link", [this](int64_t& pkts, int64_t& bytes) {
        pkts += static_cast<int64_t>(impaired_->in_transit());
        bytes += impaired_->in_transit_bytes();
      });
    }
    a->register_holder("forward-netem", [this](int64_t& pkts, int64_t& bytes) {
      pkts += static_cast<int64_t>(forward_netem_->in_transit());
      bytes += forward_netem_->in_transit_bytes();
    });
    a->register_holder("reverse-netem", [this](int64_t& pkts, int64_t& bytes) {
      pkts += static_cast<int64_t>(reverse_netem_->in_transit());
      bytes += reverse_netem_->in_transit_bytes();
    });
    for (size_t i = 0; i < host_links_.size(); ++i) {
      Link* l = host_links_[i].get();
      a->register_holder("host-link", [l](int64_t& pkts, int64_t& bytes) {
        pkts += l->busy() ? 1 : 0;
        bytes += l->held_bytes();
      });
    }
  }
}

void DumbbellTopology::register_flow(uint32_t flow_id, TimeDelta base_rtt,
                                     PacketSink* sender_endpoint,
                                     PacketSink* receiver_endpoint) {
  if (sender_endpoint == nullptr || receiver_endpoint == nullptr) {
    throw std::invalid_argument("register_flow: null endpoint");
  }
  // Half the base RTT on the data path after the bottleneck, half on the
  // ACK return path (netem at the receiver, as in the testbed).
  forward_netem_->set_flow_delay(flow_id, base_rtt / 2);
  reverse_netem_->set_flow_delay(flow_id, base_rtt - base_rtt / 2);
  receiver_demux_.register_flow(flow_id, receiver_endpoint);
  sender_demux_.register_flow(flow_id, sender_endpoint);
  queue_->reserve_flows(flow_id + 1);
}

void DumbbellTopology::unregister_flow(uint32_t flow_id) {
  receiver_demux_.deregister_flow(flow_id);
  sender_demux_.deregister_flow(flow_id);
}

void DumbbellTopology::reserve_flows(uint32_t flows) {
  forward_netem_->reserve_flows(flows);
  reverse_netem_->reserve_flows(flows);
  receiver_demux_.reserve(flows);
  sender_demux_.reserve(flows);
  queue_->reserve_flows(flows);
  // In-flight slot pools: a few packets per flow covers typical pipes up
  // front; warm-up growth (amortized, before measurement) covers the rest.
  const size_t hint = static_cast<size_t>(flows) * 4 + 1024;
  forward_netem_->reserve_in_flight(hint);
  reverse_netem_->reserve_in_flight(hint);
  if (impaired_ != nullptr) impaired_->reserve_in_flight(hint);
}

PacketSink& DumbbellTopology::data_entry(uint32_t flow_id) {
  if (host_queues_.empty()) return switch_;
  return *host_queues_[static_cast<size_t>(pair_of_flow(flow_id))];
}

PacketSink& DumbbellTopology::ack_entry() { return switch_; }

}  // namespace ccas
