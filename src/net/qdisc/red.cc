#include "src/net/qdisc/red.h"

#include <algorithm>
#include <utility>

#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace ccas {

namespace {

// (1 - wq)^m by binary exponentiation: every step is a single IEEE-754
// multiplication, so the result is bit-identical on every platform —
// unlike libm pow(), which is only faithfully rounded.
double decay_pow(double base, uint64_t exp) {
  double r = 1.0;
  while (exp != 0) {
    if ((exp & 1) != 0) r *= base;
    base *= base;
    exp >>= 1;
  }
  return r;
}

}  // namespace

RedQueue::RedQueue(Simulator& sim, int64_t capacity_bytes,
                   const QdiscConfig& config)
    : QueueDisc(sim, capacity_bytes),
      wq_(config.red_wq),
      min_bytes_(config.red_min_bytes),
      max_bytes_(config.red_max_bytes),
      max_p_(config.red_max_p),
      gentle_(config.red_gentle),
      ecn_(config.ecn),
      rng_(config.seed) {
  // Auto thresholds: min at a sixth of the buffer, max at half (the
  // conventional max ≈ 3 * min rule of thumb, scaled to the capacity).
  if (min_bytes_ == 0) min_bytes_ = std::max<int64_t>(capacity_bytes / 6, 1);
  if (max_bytes_ == 0) {
    max_bytes_ = std::max<int64_t>(capacity_bytes / 2, min_bytes_ + 1);
  }
}

void RedQueue::update_avg(Time now) {
  if (fifo_.empty()) {
    // Arrival to an idle queue: decay the average as if m small packets had
    // drained during the idle period (Floyd & Jacobson §4).
    const Link* link = downstream();
    if (link != nullptr && !link->rate().is_zero()) {
      const int64_t slot_ns = link->rate().transfer_time(kDataPacketBytes).ns();
      const int64_t idle_ns = (now - idle_since_).ns();
      if (slot_ns > 0 && idle_ns > 0) {
        avg_ *= decay_pow(1.0 - wq_, static_cast<uint64_t>(idle_ns / slot_ns));
      }
    }
    idle_since_ = now;
  } else {
    avg_ += wq_ * (static_cast<double>(queued_bytes()) - avg_);
  }
}

void RedQueue::accept(Packet&& pkt) {
  const Time now = sim_.now();
  update_avg(now);
  if (would_overflow(pkt)) {
    count_tail_drop(pkt);
    count_ = 0;
    return;
  }
  const int64_t hard_limit = gentle_ ? 2 * max_bytes_ : max_bytes_;
  double pb = 0.0;
  bool forced = false;
  if (avg_ >= static_cast<double>(hard_limit)) {
    forced = true;
  } else if (avg_ >= static_cast<double>(max_bytes_)) {
    // Gentle region: ramp p_b from max_p at max to 1 at 2*max.
    pb = max_p_ + (1.0 - max_p_) * (avg_ - static_cast<double>(max_bytes_)) /
                      static_cast<double>(max_bytes_);
  } else if (avg_ > static_cast<double>(min_bytes_)) {
    pb = max_p_ * (avg_ - static_cast<double>(min_bytes_)) /
         static_cast<double>(max_bytes_ - min_bytes_);
  } else {
    count_ = -1;
  }
  if (forced) {
    // Above the hard limit ECN gives no cover: RFC 3168 §6.1.1 requires
    // real drops once the average shows the control loop has lost.
    count_tail_drop(pkt);
    count_ = 0;
    return;
  }
  if (pb > 0.0) {
    ++count_;
    // Count correction p_a = p_b / (1 - count * p_b) spaces early drops
    // uniformly in packet counts instead of geometrically.
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : std::min(pb / denom, 1.0);
    if (rng_.next_double() < pa) {
      count_ = 0;
      if (ecn_ && (pkt.ecn & kEcnEct) != 0) {
        count_mark(pkt);  // marked and admitted below
      } else {
        count_tail_drop(pkt);
        return;
      }
    }
  }
  fifo_.push_back(Entry{std::move(pkt), now});
  count_enqueue(fifo_.back().pkt);
  notify_downstream();
}

std::optional<Packet> RedQueue::dequeue() {
  if (fifo_.empty()) return std::nullopt;
  Entry e = fifo_.pop_front();
  count_dequeue(e.pkt, sim_.now() - e.enqueued_at);
  if (fifo_.empty()) idle_since_ = sim_.now();
  return std::move(e.pkt);
}

}  // namespace ccas
