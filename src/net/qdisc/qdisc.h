// Pluggable queue disciplines for the bottleneck egress.
//
// QueueDisc is the interface the serializing Link drains: accept() admits
// (or drops) an arriving packet, dequeue() hands the next packet to
// serialize and may itself drop packets first (CoDel-family AQMs decide at
// dequeue time). The base class owns everything every discipline shares —
// byte/packet occupancy, capacity, stats, the drop log, per-flow drop and
// ECN-mark counters, and the auditor hooks — so a scheduler subclass only
// implements its queueing/drop/mark policy.
//
// Determinism contract (same as the impairment stage): a qdisc that needs
// randomness (RED, PIE) owns a dedicated Rng seeded from the sweep cell's
// seed via derive_qdisc_seed, draws only when its policy actually consults
// chance, and the default kind (kDropTail) is the exact pre-qdisc
// DropTailQueue — so default runs keep the historical event stream and
// golden digests byte for byte, and AQM runs are byte-identical at any
// --jobs level.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/check/audit.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace ccas {

class DropTailQueue;
class Link;
class Simulator;

struct DropRecord {
  Time at;
  uint32_t flow_id = 0;
};

struct QueueStats {
  uint64_t enqueued_packets = 0;
  uint64_t enqueued_bytes = 0;
  uint64_t dequeued_packets = 0;
  uint64_t dropped_packets = 0;  // refused at enqueue (tail drops)
  uint64_t dropped_bytes = 0;
  int64_t max_queued_bytes = 0;
  // Qdisc extensions (zero for plain drop-tail): packets dropped after
  // admission (CoDel/FQ-CoDel head drops), CE marks set instead of drops,
  // and the sojourn-time distribution of dequeued packets.
  uint64_t head_dropped_packets = 0;
  uint64_t head_dropped_bytes = 0;
  uint64_t marked_packets = 0;
  uint64_t sojourn_ns_sum = 0;
  uint64_t sojourn_samples = 0;
  int64_t max_sojourn_ns = 0;
};

// Which scheduler runs the bottleneck buffer.
enum class QdiscKind : uint8_t { kDropTail, kCoDel, kFqCoDel, kPie, kRed };

struct QdiscConfig {
  QdiscKind kind = QdiscKind::kDropTail;
  // Mark ECT packets CE instead of dropping them where the algorithm
  // allows (AQM kinds only; rejected by validate() for drop-tail).
  bool ecn = false;

  // CoDel / FQ-CoDel (RFC 8289 defaults).
  TimeDelta codel_target = TimeDelta::millis(5);
  TimeDelta codel_interval = TimeDelta::millis(100);

  // FQ-CoDel (RFC 8290): flow-hash bucket count and DRR quantum.
  uint32_t fq_flows = 64;
  int64_t fq_quantum = 1514;

  // PIE (RFC 8033 defaults).
  TimeDelta pie_target = TimeDelta::millis(15);
  TimeDelta pie_tupdate = TimeDelta::millis(16);
  double pie_alpha = 0.125;
  double pie_beta = 1.25;
  // Mark instead of drop only while drop probability <= this (RFC 8033
  // §5.1's mark_ecnth); above it the controller needs real losses.
  double pie_mark_ecnth = 0.1;

  // RED (Floyd/Jacobson): EWMA weight, thresholds in bytes (0 = derive
  // from capacity: min = capacity/6, max = capacity/2), max_p, gentle mode.
  double red_wq = 0.002;
  int64_t red_min_bytes = 0;
  int64_t red_max_bytes = 0;
  double red_max_p = 0.1;
  bool red_gentle = true;

  // Rng seed for the qdisc's dedicated stream (RED/PIE probabilistic
  // decisions, FQ-CoDel hash perturbation). 0 = derive from the
  // experiment's cell seed (run_experiment calls derive_qdisc_seed).
  uint64_t seed = 0;

  [[nodiscard]] bool enabled() const { return kind != QdiscKind::kDropTail; }
  // Throws std::invalid_argument on inconsistent knobs (ECN on drop-tail,
  // CoDel target >= interval, RED min >= max, PIE tupdate <= 0, ...).
  void validate() const;
};

// Parses/renders the CLI name ("drop-tail", "codel", "fq-codel", "pie",
// "red"). parse throws std::invalid_argument on unknown names.
[[nodiscard]] QdiscKind qdisc_kind_from_name(const std::string& name);
[[nodiscard]] const char* qdisc_kind_name(QdiscKind kind);

// Dedicated per-cell qdisc seed: a SplitMix64 finalizer over the
// experiment seed under a fixed salt (distinct from the impairment salt),
// so the qdisc's stream is independent of both the master Rng and the
// impairment stage while remaining a pure function of the cell seed.
[[nodiscard]] uint64_t derive_qdisc_seed(uint64_t cell_seed);

class QueueDisc : public PacketSink {
 public:
  QueueDisc(Simulator& sim, int64_t capacity_bytes);
  ~QueueDisc() override = default;

  // The link that drains this qdisc; must be set before packets arrive.
  void set_downstream(Link* link) { downstream_ = link; }

  // True while any packet is queued. dequeue() may still return nullopt
  // (an AQM can drop everything it inspects); callers loop on has_packet.
  [[nodiscard]] virtual bool has_packet() const { return queued_packets_ > 0; }
  // Removes and returns the next packet to serialize (called by the Link).
  virtual std::optional<Packet> dequeue() = 0;
  // Non-null iff this is the plain drop-tail FIFO. The Link asks once at
  // set_source and then drains the default discipline through concrete
  // (devirtualized) calls, keeping the pre-qdisc per-packet cost on the
  // hot path; AQMs take the generic has_packet/dequeue loop.
  [[nodiscard]] virtual DropTailQueue* as_drop_tail() { return nullptr; }

  [[nodiscard]] int64_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] size_t queued_packets() const { return queued_packets_; }
  [[nodiscard]] int64_t capacity_bytes() const { return capacity_bytes_; }
  // Retargets the buffer capacity (scheduled link faults). Packets already
  // queued beyond a shrunken capacity stay queued — disciplines only
  // refuse or evict on their own policy — which keeps occupancy accounting
  // trivially consistent. The auditor tolerates the transient over-capacity
  // occupancy only while shrunk_below_occupancy() reports it.
  void set_capacity(int64_t capacity_bytes);
  // True from a set_capacity that landed below the live occupancy until
  // the occupancy next drains back under capacity. The invariant auditor
  // uses this to avoid masking real conservation violations with the
  // kBuffer-shrink relaxation.
  [[nodiscard]] bool shrunk_below_occupancy() const {
    return shrunk_below_occupancy_;
  }
  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  // Per-flow drop/mark counters (indexed by flow id) and the full drop log.
  void reserve_flows(size_t n) {
    per_flow_drops_.resize(n, 0);
    per_flow_marks_.resize(n, 0);
  }
  [[nodiscard]] const std::vector<uint64_t>& per_flow_drops() const {
    return per_flow_drops_;
  }
  [[nodiscard]] const std::vector<uint64_t>& per_flow_marks() const {
    return per_flow_marks_;
  }
  [[nodiscard]] const std::vector<DropRecord>& drop_log() const { return drop_log_; }
  void set_drop_log_enabled(bool enabled) { drop_log_enabled_ = enabled; }
  [[nodiscard]] bool drop_log_enabled() const { return drop_log_enabled_; }

  // Clears counters and the drop log (used at the end of the warm-up
  // period so measurements cover only steady state). Control state (CoDel
  // drop scheduling, RED averages, PIE probability) is deliberately kept:
  // the warm-up exists precisely to reach it.
  void reset_accounting();

 protected:
  // Shared bookkeeping; subclasses call these instead of touching the
  // counters so the auditor hooks and stats stay consistent everywhere.
  [[nodiscard]] bool would_overflow(const Packet& pkt) const {
    return queued_bytes_ + pkt.size_bytes > capacity_bytes_;
  }
  // The three helpers on the default drop-tail per-packet path are defined
  // inline so DropTailQueue::accept/pop compile down to the same code as
  // the pre-qdisc standalone queue (the perf gate holds them to it); the
  // AQM-only helpers (head drop, mark) stay out of line in qdisc.cc.
  //
  // Counts a refused arrival (tail drop) including log + auditor hook.
  void count_tail_drop(const Packet& pkt) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    if (pkt.flow_id < per_flow_drops_.size()) ++per_flow_drops_[pkt.flow_id];
    if (drop_log_enabled_) drop_log_.push_back(DropRecord{sim_.now(), pkt.flow_id});
    if (auto* a = sim_.auditor()) a->on_enqueue(*this, pkt, /*dropped=*/true);
  }
  // Counts an admission; call after the packet is in the subclass's
  // structure (the hook cross-checks live occupancy).
  void count_enqueue(const Packet& pkt) {
    queued_bytes_ += pkt.size_bytes;
    ++queued_packets_;
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += pkt.size_bytes;
    stats_.max_queued_bytes = std::max(stats_.max_queued_bytes, queued_bytes_);
    if (auto* a = sim_.auditor()) a->on_enqueue(*this, pkt, /*dropped=*/false);
  }
  // Counts a dequeue handed to the link; `sojourn` < 0 means untracked
  // (drop-tail does not timestamp, keeping its stats byte-identical).
  void count_dequeue(const Packet& pkt, TimeDelta sojourn) {
    queued_bytes_ -= pkt.size_bytes;
    --queued_packets_;
    ++stats_.dequeued_packets;
    if (sojourn >= TimeDelta::zero()) {
      stats_.sojourn_ns_sum += static_cast<uint64_t>(sojourn.ns());
      ++stats_.sojourn_samples;
      stats_.max_sojourn_ns = std::max(stats_.max_sojourn_ns, sojourn.ns());
    }
    if (shrunk_below_occupancy_ && queued_bytes_ <= capacity_bytes_) {
      shrunk_below_occupancy_ = false;
    }
    if (auto* a = sim_.auditor()) a->on_dequeue(*this, pkt);
  }
  // Counts a post-admission drop (AQM head drop); call after removal.
  void count_head_drop(const Packet& pkt);
  // Sets CE on an admitted-or-forwarded packet and counts the mark. The
  // caller must have checked the packet is ECT.
  void count_mark(Packet& pkt);
  void notify_downstream();
  // The draining link (PIE/RED consult its rate for delay estimates).
  [[nodiscard]] Link* downstream() const { return downstream_; }

  Simulator& sim_;

 private:
  int64_t capacity_bytes_;
  int64_t queued_bytes_ = 0;
  size_t queued_packets_ = 0;
  bool shrunk_below_occupancy_ = false;
  Link* downstream_ = nullptr;
  QueueStats stats_;
  std::vector<uint64_t> per_flow_drops_;
  std::vector<uint64_t> per_flow_marks_;
  std::vector<DropRecord> drop_log_;
  bool drop_log_enabled_ = true;
};

// Constructs the configured discipline. `config` must validate().
[[nodiscard]] std::unique_ptr<QueueDisc> make_qdisc(Simulator& sim,
                                                    const QdiscConfig& config,
                                                    int64_t capacity_bytes);

}  // namespace ccas
