#include "src/net/qdisc/fq_codel.h"

#include <cmath>
#include <utility>

#include "src/sim/simulator.h"

namespace ccas {

FqCoDelQueue::FqCoDelQueue(Simulator& sim, int64_t capacity_bytes,
                           const QdiscConfig& config)
    : QueueDisc(sim, capacity_bytes),
      target_(config.codel_target),
      interval_(config.codel_interval),
      ecn_(config.ecn),
      quantum_(config.fq_quantum),
      hash_seed_(config.seed),
      flows_(config.fq_flows) {}

uint32_t FqCoDelQueue::bucket_of(uint32_t flow_id) const {
  uint64_t z = static_cast<uint64_t>(flow_id) ^ hash_seed_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % flows_.size());
}

void FqCoDelQueue::drop_from_fattest() {
  // Evict from the head of the flow with the largest backlog (RFC 8290
  // §4.1.2); lowest bucket index breaks ties, keeping eviction order a
  // pure function of queue state.
  size_t fattest = 0;
  int64_t fattest_backlog = -1;
  for (size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].backlog_bytes > fattest_backlog) {
      fattest = i;
      fattest_backlog = flows_[i].backlog_bytes;
    }
  }
  FlowQueue& f = flows_[fattest];
  Entry victim = f.fifo.pop_front();
  f.backlog_bytes -= victim.pkt.size_bytes;
  count_head_drop(victim.pkt);
}

void FqCoDelQueue::accept(Packet&& pkt) {
  // Overflow evicts already-queued packets from the fattest flow to make
  // room; only a packet that cannot fit in an empty buffer is tail-dropped.
  while (would_overflow(pkt) && queued_packets() > 0) drop_from_fattest();
  if (would_overflow(pkt)) {
    count_tail_drop(pkt);
    return;
  }
  const uint32_t idx = bucket_of(pkt.flow_id);
  FlowQueue& f = flows_[idx];
  f.fifo.push_back(Entry{std::move(pkt), sim_.now()});
  f.backlog_bytes += f.fifo.back().pkt.size_bytes;
  count_enqueue(f.fifo.back().pkt);
  if (f.on_list == ListId::kNone) {
    f.deficit = quantum_;
    f.on_list = ListId::kNew;
    new_list_.push_back(idx);
  }
  notify_downstream();
}

Time FqCoDelQueue::control_law(Time t, uint32_t count) const {
  const double spacing = static_cast<double>(interval_.ns()) /
                         std::sqrt(static_cast<double>(count));
  return t + TimeDelta::nanos(static_cast<int64_t>(spacing));
}

FqCoDelQueue::Head FqCoDelQueue::dodequeue(FlowQueue& f, Time now) {
  Head h;
  if (f.fifo.empty()) {
    f.first_above_time = Time::zero();
    return h;
  }
  h.valid = true;
  h.entry = f.fifo.pop_front();
  f.backlog_bytes -= h.entry.pkt.size_bytes;
  h.sojourn = now - h.entry.enqueued_at;
  // RFC 8290 runs the backlog check against the whole qdisc, not the
  // single flow: a sparse flow inside a busy qdisc still gets controlled.
  const int64_t backlog = queued_bytes() - h.entry.pkt.size_bytes;
  if (h.sojourn < target_ || backlog <= kDataPacketBytes) {
    f.first_above_time = Time::zero();
  } else if (f.first_above_time == Time::zero()) {
    f.first_above_time = now + interval_;
  } else if (now >= f.first_above_time) {
    h.ok_to_drop = true;
  }
  return h;
}

std::optional<Packet> FqCoDelQueue::codel_dequeue(FlowQueue& f, Time now) {
  Head h = dodequeue(f, now);
  if (!h.valid) {
    f.dropping = false;
    return std::nullopt;
  }
  if (f.dropping) {
    if (!h.ok_to_drop) {
      f.dropping = false;
    } else {
      while (f.dropping && now >= f.drop_next) {
        ++f.count;
        if (ecn_ && (h.entry.pkt.ecn & kEcnEct) != 0) {
          count_mark(h.entry.pkt);
          f.drop_next = control_law(f.drop_next, f.count);
          break;
        }
        count_head_drop(h.entry.pkt);
        h = dodequeue(f, now);
        if (!h.valid) {
          f.dropping = false;
          return std::nullopt;
        }
        if (!h.ok_to_drop) {
          f.dropping = false;
        } else {
          f.drop_next = control_law(f.drop_next, f.count);
        }
      }
    }
  } else if (h.ok_to_drop) {
    if (ecn_ && (h.entry.pkt.ecn & kEcnEct) != 0) {
      count_mark(h.entry.pkt);
    } else {
      count_head_drop(h.entry.pkt);
      h = dodequeue(f, now);
      if (!h.valid) {
        f.dropping = false;
        return std::nullopt;
      }
    }
    f.dropping = true;
    const uint32_t delta = f.count - f.lastcount;
    if (delta > 1 && now - f.drop_next < interval_ * 16) {
      f.count = delta;
    } else {
      f.count = 1;
    }
    f.lastcount = f.count;
    f.drop_next = control_law(now, f.count);
  }
  count_dequeue(h.entry.pkt, h.sojourn);
  return std::move(h.entry.pkt);
}

std::optional<Packet> FqCoDelQueue::dequeue() {
  const Time now = sim_.now();
  for (;;) {
    RingBuffer<uint32_t>* list = !new_list_.empty() ? &new_list_ : &old_list_;
    if (list->empty()) return std::nullopt;
    const uint32_t idx = list->front();
    FlowQueue& f = flows_[idx];
    if (f.deficit <= 0) {
      // Quantum exhausted: recharge and rotate to the back of the old list.
      f.deficit += quantum_;
      list->drop_front();
      f.on_list = ListId::kOld;
      old_list_.push_back(idx);
      continue;
    }
    std::optional<Packet> pkt = codel_dequeue(f, now);
    if (!pkt.has_value()) {
      // Flow drained (or CoDel dropped its tail). A new flow that empties
      // moves to the old list — it keeps its spot in the round if it
      // refills quickly — while an empty old flow leaves the schedule.
      list->drop_front();
      if (list == &new_list_ || !f.fifo.empty()) {
        f.on_list = ListId::kOld;
        old_list_.push_back(idx);
      } else {
        f.on_list = ListId::kNone;
      }
      continue;
    }
    f.deficit -= pkt->size_bytes;
    return pkt;
  }
}

}  // namespace ccas
