#include "src/net/qdisc/qdisc.h"

#include <algorithm>
#include <stdexcept>

#include "src/check/audit.h"
#include "src/net/link.h"
#include "src/net/qdisc/codel.h"
#include "src/net/qdisc/fq_codel.h"
#include "src/net/qdisc/pie.h"
#include "src/net/qdisc/red.h"
#include "src/net/queue.h"
#include "src/sim/simulator.h"

namespace ccas {

void QdiscConfig::validate() const {
  if (ecn && !enabled()) {
    throw std::invalid_argument(
        "ECN marking requires an AQM qdisc (codel, fq-codel, pie, red)");
  }
  switch (kind) {
    case QdiscKind::kDropTail:
      break;
    case QdiscKind::kFqCoDel:
      if (fq_flows == 0) {
        throw std::invalid_argument("fq-codel flow count must be positive");
      }
      if (fq_quantum <= 0) {
        throw std::invalid_argument("fq-codel quantum must be positive");
      }
      [[fallthrough]];  // FQ-CoDel also runs the CoDel control law
    case QdiscKind::kCoDel:
      if (codel_target <= TimeDelta::zero()) {
        throw std::invalid_argument("codel target must be positive");
      }
      if (codel_interval <= TimeDelta::zero()) {
        throw std::invalid_argument("codel interval must be positive");
      }
      if (codel_target >= codel_interval) {
        throw std::invalid_argument("codel target must be below the interval");
      }
      break;
    case QdiscKind::kPie:
      if (pie_target <= TimeDelta::zero()) {
        throw std::invalid_argument("pie target delay must be positive");
      }
      if (pie_tupdate <= TimeDelta::zero()) {
        throw std::invalid_argument("pie tupdate must be positive");
      }
      if (pie_alpha <= 0.0 || pie_beta <= 0.0) {
        throw std::invalid_argument("pie alpha/beta must be positive");
      }
      if (pie_mark_ecnth <= 0.0 || pie_mark_ecnth > 1.0) {
        throw std::invalid_argument("pie mark threshold must be in (0, 1]");
      }
      break;
    case QdiscKind::kRed:
      if (red_wq <= 0.0 || red_wq > 1.0) {
        throw std::invalid_argument("red weight must be in (0, 1]");
      }
      if (red_min_bytes < 0 || red_max_bytes < 0) {
        throw std::invalid_argument("red thresholds must be non-negative");
      }
      if (red_min_bytes != 0 && red_max_bytes != 0 &&
          red_min_bytes >= red_max_bytes) {
        throw std::invalid_argument("red min threshold must be below max");
      }
      if (red_max_p <= 0.0 || red_max_p > 1.0) {
        throw std::invalid_argument("red max_p must be in (0, 1]");
      }
      break;
  }
}

QdiscKind qdisc_kind_from_name(const std::string& name) {
  if (name == "drop-tail") return QdiscKind::kDropTail;
  if (name == "codel") return QdiscKind::kCoDel;
  if (name == "fq-codel") return QdiscKind::kFqCoDel;
  if (name == "pie") return QdiscKind::kPie;
  if (name == "red") return QdiscKind::kRed;
  throw std::invalid_argument(
      "unknown qdisc '" + name +
      "' (expected drop-tail, codel, fq-codel, pie, or red)");
}

const char* qdisc_kind_name(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kDropTail: return "drop-tail";
    case QdiscKind::kCoDel: return "codel";
    case QdiscKind::kFqCoDel: return "fq-codel";
    case QdiscKind::kPie: return "pie";
    case QdiscKind::kRed: return "red";
  }
  return "drop-tail";
}

uint64_t derive_qdisc_seed(uint64_t cell_seed) {
  // SplitMix64 finalizer under a qdisc-specific salt (distinct from the
  // impairment stage's 0x1B873593CC9E2D51), so the qdisc stream never
  // aliases the master Rng, its forks, or the impairment stream.
  uint64_t z = cell_seed ^ 0xA0761D6478BD642FULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

QueueDisc::QueueDisc(Simulator& sim, int64_t capacity_bytes)
    : sim_(sim), capacity_bytes_(capacity_bytes) {
  if (capacity_bytes <= 0) {
    throw std::invalid_argument("queue capacity must be positive");
  }
}

void QueueDisc::set_capacity(int64_t capacity_bytes) {
  if (capacity_bytes <= 0) {
    throw std::invalid_argument("queue capacity must be positive");
  }
  capacity_bytes_ = capacity_bytes;
  shrunk_below_occupancy_ = queued_bytes_ > capacity_bytes_;
}

void QueueDisc::count_head_drop(const Packet& pkt) {
  queued_bytes_ -= pkt.size_bytes;
  --queued_packets_;
  ++stats_.head_dropped_packets;
  stats_.head_dropped_bytes += pkt.size_bytes;
  if (pkt.flow_id < per_flow_drops_.size()) ++per_flow_drops_[pkt.flow_id];
  if (drop_log_enabled_) drop_log_.push_back(DropRecord{sim_.now(), pkt.flow_id});
  if (shrunk_below_occupancy_ && queued_bytes_ <= capacity_bytes_) {
    shrunk_below_occupancy_ = false;
  }
  ++sim_.mutable_profile().qdisc_head_drops;
  if (auto* a = sim_.auditor()) a->on_head_drop(*this, pkt);
}

void QueueDisc::count_mark(Packet& pkt) {
  pkt.ecn |= kEcnCe;
  ++stats_.marked_packets;
  if (pkt.flow_id < per_flow_marks_.size()) ++per_flow_marks_[pkt.flow_id];
  ++sim_.mutable_profile().qdisc_marks;
  if (auto* a = sim_.auditor()) a->on_mark(*this, pkt);
}

void QueueDisc::notify_downstream() {
  if (downstream_ != nullptr) downstream_->notify_pending();
}

void QueueDisc::reset_accounting() {
  stats_ = QueueStats{};
  stats_.max_queued_bytes = queued_bytes_;
  std::fill(per_flow_drops_.begin(), per_flow_drops_.end(), 0);
  std::fill(per_flow_marks_.begin(), per_flow_marks_.end(), 0);
  drop_log_.clear();
  if (auto* a = sim_.auditor()) a->on_queue_reset(*this);
}

std::unique_ptr<QueueDisc> make_qdisc(Simulator& sim, const QdiscConfig& config,
                                      int64_t capacity_bytes) {
  config.validate();
  switch (config.kind) {
    case QdiscKind::kDropTail:
      return std::make_unique<DropTailQueue>(sim, capacity_bytes);
    case QdiscKind::kCoDel:
      return std::make_unique<CoDelQueue>(sim, capacity_bytes, config);
    case QdiscKind::kFqCoDel:
      return std::make_unique<FqCoDelQueue>(sim, capacity_bytes, config);
    case QdiscKind::kPie:
      return std::make_unique<PieQueue>(sim, capacity_bytes, config);
    case QdiscKind::kRed:
      return std::make_unique<RedQueue>(sim, capacity_bytes, config);
  }
  throw std::invalid_argument("unknown qdisc kind");
}

}  // namespace ccas
