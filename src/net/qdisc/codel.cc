#include "src/net/qdisc/codel.h"

#include <cmath>
#include <utility>

#include "src/sim/simulator.h"

namespace ccas {

CoDelQueue::CoDelQueue(Simulator& sim, int64_t capacity_bytes,
                       const QdiscConfig& config)
    : QueueDisc(sim, capacity_bytes),
      target_(config.codel_target),
      interval_(config.codel_interval),
      ecn_(config.ecn) {}

void CoDelQueue::accept(Packet&& pkt) {
  if (would_overflow(pkt)) {
    count_tail_drop(pkt);
    return;
  }
  fifo_.push_back(Entry{std::move(pkt), sim_.now()});
  count_enqueue(fifo_.back().pkt);
  notify_downstream();
}

Time CoDelQueue::control_law(Time t) const {
  // interval / sqrt(count): the drop spacing shrinks as the standing queue
  // persists. std::sqrt is correctly rounded under IEEE-754, so the spacing
  // is bit-identical across platforms.
  const double spacing = static_cast<double>(interval_.ns()) /
                         std::sqrt(static_cast<double>(count_));
  return t + TimeDelta::nanos(static_cast<int64_t>(spacing));
}

CoDelQueue::Head CoDelQueue::dodequeue(Time now) {
  Head h;
  if (fifo_.empty()) {
    first_above_time_ = Time::zero();
    return h;
  }
  h.valid = true;
  h.entry = fifo_.pop_front();
  h.sojourn = now - h.entry.enqueued_at;
  // Backlog once this packet leaves (the base counters still include it;
  // the caller settles them with count_dequeue/count_head_drop).
  const int64_t backlog = queued_bytes() - h.entry.pkt.size_bytes;
  if (h.sojourn < target_ || backlog <= kDataPacketBytes) {
    // Out of the danger zone: a standing queue below target (or too short
    // to be worth controlling) resets the above-target clock.
    first_above_time_ = Time::zero();
  } else if (first_above_time_ == Time::zero()) {
    first_above_time_ = now + interval_;
  } else if (now >= first_above_time_) {
    h.ok_to_drop = true;
  }
  return h;
}

std::optional<Packet> CoDelQueue::dequeue() {
  const Time now = sim_.now();
  Head h = dodequeue(now);
  if (!h.valid) {
    dropping_ = false;
    return std::nullopt;
  }
  if (dropping_) {
    if (!h.ok_to_drop) {
      dropping_ = false;
    } else {
      while (dropping_ && now >= drop_next_) {
        ++count_;
        if (ecn_ && (h.entry.pkt.ecn & kEcnEct) != 0) {
          // Mark instead of dropping; the control law still advances so
          // marks are paced exactly like drops would have been.
          count_mark(h.entry.pkt);
          drop_next_ = control_law(drop_next_);
          break;
        }
        count_head_drop(h.entry.pkt);
        h = dodequeue(now);
        if (!h.valid) {
          dropping_ = false;
          return std::nullopt;
        }
        if (!h.ok_to_drop) {
          dropping_ = false;
        } else {
          drop_next_ = control_law(drop_next_);
        }
      }
    }
  } else if (h.ok_to_drop) {
    // Enter the dropping state with one drop (or mark) now.
    if (ecn_ && (h.entry.pkt.ecn & kEcnEct) != 0) {
      count_mark(h.entry.pkt);
    } else {
      count_head_drop(h.entry.pkt);
      h = dodequeue(now);
      if (!h.valid) {
        dropping_ = false;
        return std::nullopt;
      }
    }
    dropping_ = true;
    // If we were dropping recently, resume near the prior drop rate rather
    // than restarting from 1 (RFC 8289 §5.4's count decay heuristic).
    const uint32_t delta = count_ - lastcount_;
    if (delta > 1 && now - drop_next_ < interval_ * 16) {
      count_ = delta;
    } else {
      count_ = 1;
    }
    lastcount_ = count_;
    drop_next_ = control_law(now);
  }
  count_dequeue(h.entry.pkt, h.sojourn);
  return std::move(h.entry.pkt);
}

}  // namespace ccas
