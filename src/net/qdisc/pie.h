// PIE (Proportional Integral controller Enhanced, RFC 8033): drops — or
// CE-marks while the drop probability is small — at enqueue time with a
// probability updated every tupdate by a PI controller on the queueing
// delay:
//
//   p += alpha * (delay - target) + beta * (delay - delay_old)
//
// with RFC 8033 §4.2's auto-scaling ladder so the controller stays stable
// across orders of magnitude of p. Queueing delay is estimated as
// backlog / link-rate (the draining link's configured rate), which in this
// simulator is exact, not an estimate — the departure-rate measurement
// machinery of RFC 8033 §4.3 exists to approximate precisely this number.
//
// Randomness comes only from the qdisc's own Rng (seeded per cell), drawn
// once per admission decision while p > 0, so runs replay byte-identically.
#pragma once

#include "src/net/qdisc/qdisc.h"
#include "src/sim/simulator.h"
#include "src/util/ring_buffer.h"
#include "src/util/rng.h"

namespace ccas {

class PieQueue final : public QueueDisc, public EventHandler {
 public:
  PieQueue(Simulator& sim, int64_t capacity_bytes, const QdiscConfig& config);

  void accept(Packet&& pkt) override;
  [[nodiscard]] bool has_packet() const override { return !fifo_.empty(); }
  std::optional<Packet> dequeue() override;

  // Recurring tupdate timer.
  void on_event(uint32_t tag, uint64_t arg) override;

  [[nodiscard]] double drop_probability() const { return drop_prob_; }

 private:
  struct Entry {
    Packet pkt;
    Time enqueued_at;
  };

  [[nodiscard]] TimeDelta queue_delay() const;
  // True when the PI controller says this arrival should be dropped (or
  // marked); false admits unconditionally.
  bool decide_drop(const Packet& pkt);
  void update_probability();

  TimeDelta target_;
  TimeDelta tupdate_;
  double alpha_;
  double beta_;
  double mark_ecnth_;
  bool ecn_;
  Rng rng_;
  RingBuffer<Entry> fifo_;
  double drop_prob_ = 0.0;
  TimeDelta qdelay_old_ = TimeDelta::zero();
};

}  // namespace ccas
