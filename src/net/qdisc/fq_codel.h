// FQ-CoDel (RFC 8290): flow-hashed deficit-round-robin scheduling over
// per-flow queues, each running its own CoDel control law. New flows get
// scheduling priority (the new-flows list drains before the old-flows
// list), which is what gives FQ-CoDel its low latency for sparse flows;
// buffer overflow evicts from the head of the fattest flow instead of
// refusing the arrival.
//
// Flow-to-bucket hashing is a SplitMix64 finalizer over (flow_id XOR
// seed): a pure function of the config seed, so bucket placement — and
// with it every schedule decision — is byte-reproducible per cell.
#pragma once

#include "src/net/qdisc/qdisc.h"
#include "src/util/ring_buffer.h"

namespace ccas {

class FqCoDelQueue final : public QueueDisc {
 public:
  FqCoDelQueue(Simulator& sim, int64_t capacity_bytes,
               const QdiscConfig& config);

  void accept(Packet&& pkt) override;
  std::optional<Packet> dequeue() override;

  // Bucket a flow id hashes into (exposed for tests).
  [[nodiscard]] uint32_t bucket_of(uint32_t flow_id) const;

 private:
  struct Entry {
    Packet pkt;
    Time enqueued_at;
  };
  enum class ListId : uint8_t { kNone, kNew, kOld };
  struct FlowQueue {
    RingBuffer<Entry> fifo;
    int64_t backlog_bytes = 0;
    int64_t deficit = 0;
    ListId on_list = ListId::kNone;
    // Per-flow CoDel state (same control law as CoDelQueue).
    Time first_above_time = Time::zero();
    Time drop_next = Time::zero();
    uint32_t count = 0;
    uint32_t lastcount = 0;
    bool dropping = false;
  };
  struct Head {
    bool valid = false;
    Entry entry;
    TimeDelta sojourn = TimeDelta::zero();
    bool ok_to_drop = false;
  };

  Head dodequeue(FlowQueue& f, Time now);
  // Runs the CoDel machine on flow `f`; nullopt when the flow drained.
  std::optional<Packet> codel_dequeue(FlowQueue& f, Time now);
  [[nodiscard]] Time control_law(Time t, uint32_t count) const;
  void drop_from_fattest();

  TimeDelta target_;
  TimeDelta interval_;
  bool ecn_;
  int64_t quantum_;
  uint64_t hash_seed_;
  std::vector<FlowQueue> flows_;
  RingBuffer<uint32_t> new_list_;  // bucket indices, FIFO
  RingBuffer<uint32_t> old_list_;
};

}  // namespace ccas
