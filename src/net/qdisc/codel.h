// CoDel (Controlled Delay, RFC 8289): drops — or CE-marks, when ECN is on
// and the packet is ECT — at dequeue time based on how long the head-of-line
// packet actually sojourned in the buffer, with the sqrt-interval control
// law spacing successive drops while the standing queue persists.
//
// Everything is driven by the simulated clock and the queue's own state, so
// CoDel needs no Rng and is trivially deterministic.
#pragma once

#include "src/net/qdisc/qdisc.h"
#include "src/util/ring_buffer.h"

namespace ccas {

class CoDelQueue final : public QueueDisc {
 public:
  CoDelQueue(Simulator& sim, int64_t capacity_bytes, const QdiscConfig& config);

  void accept(Packet&& pkt) override;
  [[nodiscard]] bool has_packet() const override { return !fifo_.empty(); }
  std::optional<Packet> dequeue() override;

  [[nodiscard]] uint32_t drop_count() const { return count_; }
  [[nodiscard]] bool dropping() const { return dropping_; }

 private:
  struct Entry {
    Packet pkt;
    Time enqueued_at;
  };
  struct Head {
    bool valid = false;
    Entry entry;
    TimeDelta sojourn = TimeDelta::zero();
    bool ok_to_drop = false;
  };

  // RFC 8289's dodequeue(): raw-pops the head and decides whether the
  // sojourn time has stayed above target for a full interval. The caller
  // settles the accounting (count_dequeue vs count_head_drop).
  Head dodequeue(Time now);
  [[nodiscard]] Time control_law(Time t) const;

  TimeDelta target_;
  TimeDelta interval_;
  bool ecn_;
  RingBuffer<Entry> fifo_;
  // Time::zero() = sojourn not currently above target (the sim cannot
  // schedule `now + interval` at 0 because interval > 0).
  Time first_above_time_ = Time::zero();
  Time drop_next_ = Time::zero();
  uint32_t count_ = 0;      // drops in the current dropping state
  uint32_t lastcount_ = 0;  // count when dropping state last ended
  bool dropping_ = false;
};

}  // namespace ccas
