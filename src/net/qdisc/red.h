// RED (Random Early Detection, Floyd & Jacobson 1993) with gentle mode and
// ECN-capable marking (RFC 3168). The average queue is an EWMA over the
// instantaneous byte occupancy sampled at each arrival; between min and max
// thresholds arrivals are dropped (or CE-marked when ECN-capable) with the
// count-corrected probability p_a = p_b / (1 - count * p_b), which spaces
// drops uniformly instead of geometrically. Gentle mode ramps p_b from
// max_p to 1 over (max, 2*max] instead of jumping to forced drops at max.
//
// The idle-period decay (1 - wq)^m is computed with integer binary
// exponentiation — not libm pow(), whose last-ulp rounding is not
// guaranteed across platforms — so the EWMA is byte-reproducible.
#pragma once

#include "src/net/qdisc/qdisc.h"
#include "src/util/ring_buffer.h"
#include "src/util/rng.h"

namespace ccas {

class RedQueue final : public QueueDisc {
 public:
  RedQueue(Simulator& sim, int64_t capacity_bytes, const QdiscConfig& config);

  void accept(Packet&& pkt) override;
  [[nodiscard]] bool has_packet() const override { return !fifo_.empty(); }
  std::optional<Packet> dequeue() override;

  [[nodiscard]] double avg_bytes() const { return avg_; }
  [[nodiscard]] int64_t min_bytes() const { return min_bytes_; }
  [[nodiscard]] int64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    Packet pkt;
    Time enqueued_at;
  };

  void update_avg(Time now);

  double wq_;
  int64_t min_bytes_;
  int64_t max_bytes_;
  double max_p_;
  bool gentle_;
  bool ecn_;
  Rng rng_;
  RingBuffer<Entry> fifo_;
  double avg_ = 0.0;
  // Arrivals since the last early drop/mark; -1 while the average sits
  // below the min threshold (the original paper's initialization).
  int64_t count_ = -1;
  // Start of the current idle period; infinite() while non-empty.
  Time idle_since_ = Time::zero();
};

}  // namespace ccas
