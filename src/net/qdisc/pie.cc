#include "src/net/qdisc/pie.h"

#include <algorithm>
#include <utility>

#include "src/net/link.h"

namespace ccas {

namespace {
constexpr uint32_t kTupdate = 1;
// RFC 8033 §4.1: suppress early drops while the queue is short.
constexpr int64_t kMinBacklogBytes = 2 * kDataPacketBytes;
}  // namespace

PieQueue::PieQueue(Simulator& sim, int64_t capacity_bytes,
                   const QdiscConfig& config)
    : QueueDisc(sim, capacity_bytes),
      target_(config.pie_target),
      tupdate_(config.pie_tupdate),
      alpha_(config.pie_alpha),
      beta_(config.pie_beta),
      mark_ecnth_(config.pie_mark_ecnth),
      ecn_(config.ecn),
      rng_(config.seed) {
  // The recurring probability update. Only PIE cells pay these events, so
  // default runs keep their historical event streams.
  sim_.schedule_in(tupdate_, this, kTupdate);
}

TimeDelta PieQueue::queue_delay() const {
  const Link* link = downstream();
  if (link == nullptr || link->rate().is_zero()) return TimeDelta::zero();
  return link->rate().transfer_time(queued_bytes());
}

bool PieQueue::decide_drop(const Packet& pkt) {
  if (drop_prob_ <= 0.0) return false;
  // RFC 8033 §4.1 safeguards: no early drops while the delay is clearly
  // under half the target at small p, or while the backlog is tiny.
  if (qdelay_old_ < target_ / 2 && drop_prob_ < 0.2) return false;
  if (queued_bytes() < kMinBacklogBytes) return false;
  (void)pkt;
  return rng_.next_double() < drop_prob_;
}

void PieQueue::accept(Packet&& pkt) {
  if (would_overflow(pkt)) {
    count_tail_drop(pkt);
    return;
  }
  if (decide_drop(pkt)) {
    if (ecn_ && drop_prob_ <= mark_ecnth_ && (pkt.ecn & kEcnEct) != 0) {
      // Below the mark threshold an ECT packet is marked and admitted.
      count_mark(pkt);
    } else {
      count_tail_drop(pkt);
      return;
    }
  }
  fifo_.push_back(Entry{std::move(pkt), sim_.now()});
  count_enqueue(fifo_.back().pkt);
  notify_downstream();
}

std::optional<Packet> PieQueue::dequeue() {
  if (fifo_.empty()) return std::nullopt;
  Entry e = fifo_.pop_front();
  count_dequeue(e.pkt, sim_.now() - e.enqueued_at);
  return std::move(e.pkt);
}

void PieQueue::update_probability() {
  const TimeDelta qdelay = queue_delay();
  double p = alpha_ * (qdelay - target_).sec() +
             beta_ * (qdelay - qdelay_old_).sec();
  // Auto-scaling ladder (RFC 8033 §4.2): damp adjustments while p is
  // small so the controller does not oscillate through zero.
  if (drop_prob_ < 0.000001) {
    p /= 2048.0;
  } else if (drop_prob_ < 0.00001) {
    p /= 256.0;
  } else if (drop_prob_ < 0.0001) {
    p /= 64.0;
  } else if (drop_prob_ < 0.001) {
    p /= 16.0;
  } else if (drop_prob_ < 0.01) {
    p /= 8.0;
  } else if (drop_prob_ < 0.1) {
    p /= 2.0;
  }
  drop_prob_ = std::clamp(drop_prob_ + p, 0.0, 1.0);
  // Exponentially decay p when the queue is idle (RFC 8033 §4.2 step 3).
  if (qdelay.is_zero() && qdelay_old_.is_zero()) drop_prob_ *= 0.98;
  qdelay_old_ = qdelay;
}

void PieQueue::on_event(uint32_t tag, uint64_t /*arg*/) {
  if (tag != kTupdate) return;
  update_probability();
  sim_.schedule_in(tupdate_, this, kTupdate);
}

}  // namespace ccas
