// The paper's dumbbell testbed (Figure 1): N sender hosts and N receiver
// hosts connected through a software switch whose output port toward the
// receivers is the bottleneck (drop-tail queue + serializing link). Base
// RTT is applied netem-style, split evenly between the post-bottleneck
// data path and the ACK return path.
//
//   sender ──(optional 25 Gbps host NIC)──► switch ──► [queue|link] ──►
//     netem(fwd rtt/2) ──► receiver demux ──► TcpReceiver
//   TcpReceiver ──► netem(rev rtt/2) ──► sender demux ──► TcpSender
//
// Edge links are delay-free and (by default) rate-free: the testbed's 25
// Gbps edges never congest, so modelling them as wires preserves behaviour
// while keeping the event count low (see DESIGN.md). Setting
// DumbbellConfig::edge_rate to a finite rate enables per-sender-host NIC
// serialization for the fidelity ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/delay_line.h"
#include "src/net/impairment.h"
#include "src/net/link.h"
#include "src/net/queue.h"
#include "src/net/switch.h"
#include "src/sim/simulator.h"

namespace ccas {

struct DumbbellConfig {
  DataRate bottleneck_rate = DataRate::mbps(100);
  int64_t buffer_bytes = 3 * 1000 * 1000;
  int num_pairs = 10;
  // Finite => model per-sender-host NIC serialization (ablation only).
  DataRate edge_rate = DataRate::infinite();
  int64_t edge_buffer_bytes = 1000 * static_cast<int64_t>(kDataPacketBytes);

  // Per-packet forward-path jitter (tc-netem `jitter`, without intra-flow
  // reordering): models the end-host/NIC scheduling noise of the physical
  // testbed, which is what keeps thousands of flows from phase-locking
  // into globally synchronized loss episodes. Zero disables.
  TimeDelta jitter = TimeDelta::micros(500);
  uint64_t jitter_seed = 0x6a09e667f3bcc908ULL;

  // Exogenous wire impairments (netem-equivalent), applied between the
  // bottleneck link and the forward netem — after serialization, before
  // propagation, matching where tc-netem shapes the physical testbed. The
  // stage is only constructed when enabled() (or force_stage), so default
  // configs keep the pre-impairment wiring byte-for-byte.
  ImpairmentConfig impairments;

  // Bottleneck queue discipline (src/net/qdisc/). The default kDropTail
  // constructs the exact historical DropTailQueue, so default configs keep
  // the pre-qdisc event stream and golden digests byte-for-byte.
  QdiscConfig qdisc;
};

class DumbbellTopology {
 public:
  // Destination node ids used in Packet::dst.
  static constexpr uint32_t kToReceivers = 0;
  static constexpr uint32_t kToSenders = 1;

  DumbbellTopology(Simulator& sim, const DumbbellConfig& config);

  // Registers a flow: its base RTT and both endpoints. The flow is assigned
  // to a sender/receiver pair round-robin, as in the testbed.
  void register_flow(uint32_t flow_id, TimeDelta base_rtt, PacketSink* sender_endpoint,
                     PacketSink* receiver_endpoint);

  // Tears down a flow's demux routes after its endpoints are destroyed
  // (churn slot recycling). Flow ids are never reused, so any packet still
  // carrying this id after teardown is a bug surfaced as a counted drop.
  void unregister_flow(uint32_t flow_id);

  // Capacity hint (no observable effect): sizes every per-flow table —
  // netem lanes, demux sinks, queue accounting — and the in-flight slot
  // pools for `flows` flows, so a run's steady state never grows them.
  void reserve_flows(uint32_t flows);

  // Where a sender's data packets enter the network. With rate-free edges
  // this is the switch itself; with finite edges it is the flow's host NIC.
  [[nodiscard]] PacketSink& data_entry(uint32_t flow_id);
  // Where a receiver's ACKs enter the (uncongested) return path.
  [[nodiscard]] PacketSink& ack_entry();

  [[nodiscard]] QueueDisc& bottleneck_queue() { return *queue_; }
  [[nodiscard]] const QueueDisc& bottleneck_queue() const { return *queue_; }
  [[nodiscard]] Link& bottleneck_link() { return *link_; }
  // Null when the impairment config is inert (stage not constructed).
  [[nodiscard]] ImpairedLink* impaired_link() { return impaired_.get(); }
  [[nodiscard]] const ImpairedLink* impaired_link() const { return impaired_.get(); }
  // The propagation stages, exposed so the shard fabric can install its
  // cross-domain relays (delay_line.h NetemRelay).
  [[nodiscard]] NetemDelay& forward_netem() { return *forward_netem_; }
  [[nodiscard]] NetemDelay& reverse_netem() { return *reverse_netem_; }
  [[nodiscard]] const DumbbellConfig& config() const { return config_; }
  [[nodiscard]] int pair_of_flow(uint32_t flow_id) const {
    return static_cast<int>(flow_id) % config_.num_pairs;
  }

 private:
  Simulator& sim_;
  DumbbellConfig config_;

  SoftwareSwitch switch_;
  std::unique_ptr<QueueDisc> queue_;
  std::unique_ptr<Link> link_;
  std::unique_ptr<ImpairedLink> impaired_;
  std::unique_ptr<NetemDelay> forward_netem_;
  std::unique_ptr<NetemDelay> reverse_netem_;
  FlowDemux receiver_demux_;
  FlowDemux sender_demux_;

  // Optional host-NIC stage (one queue+link per sender host).
  std::vector<std::unique_ptr<DropTailQueue>> host_queues_;
  std::vector<std::unique_ptr<Link>> host_links_;
};

}  // namespace ccas
