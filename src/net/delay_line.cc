#include "src/net/delay_line.h"

#include <utility>

namespace ccas {

DelayLine::DelayLine(Simulator& sim, TimeDelta delay, PacketSink* dest)
    : sim_(sim), delay_(delay), dest_(dest) {
  if (dest == nullptr) throw std::invalid_argument("DelayLine needs a destination");
  if (delay < TimeDelta::zero()) throw std::invalid_argument("negative delay");
}

void DelayLine::accept(Packet&& pkt) {
  fifo_.push_back(std::move(pkt));
  sim_.schedule_in(delay_, this, 0);
}

void DelayLine::on_event(uint32_t /*tag*/, uint64_t /*arg*/) {
  dest_->accept(fifo_.pop_front());
}

NetemDelay::NetemDelay(Simulator& sim, PacketSink* dest) : sim_(sim), dest_(dest) {
  if (dest == nullptr) throw std::invalid_argument("NetemDelay needs a destination");
}

void NetemDelay::set_flow_delay(uint32_t flow_id, TimeDelta delay) {
  if (delay < TimeDelta::zero()) throw std::invalid_argument("negative delay");
  if (flow_id >= lanes_.size()) lanes_.resize(flow_id + 1);
  lanes_[flow_id].delay = delay;
}

TimeDelta NetemDelay::flow_delay(uint32_t flow_id) const {
  if (flow_id >= lanes_.size()) return TimeDelta::zero();
  return lanes_[flow_id].delay;
}

void NetemDelay::set_jitter(TimeDelta jitter, uint64_t seed) {
  if (jitter < TimeDelta::zero()) throw std::invalid_argument("negative jitter");
  jitter_ = jitter;
  jitter_rng_ = jitter.is_zero() ? nullptr : std::make_unique<Rng>(seed);
}

void NetemDelay::accept(Packet&& pkt) {
  // The release time (including the jitter draw and the per-flow ordering
  // clamp) is computed up front, in accept order, so the RNG stream and the
  // clamp state are identical whether the delivery is scheduled here or
  // handed to a relay. The relay must see the final release time: it is the
  // cross-domain deliver_at.
  const uint32_t flow = pkt.flow_id;
  if (flow >= lanes_.size()) lanes_.resize(flow + 1);
  FlowLane& lane = lanes_[flow];
  Time release = sim_.now() + lane.delay;
  if (jitter_rng_ != nullptr) {
    release = release + jitter_ * jitter_rng_->next_double();
    // Clamp so packets of one flow never reorder.
    if (release < lane.last_release) release = lane.last_release;
    lane.last_release = release;
  }
  if (relay_ != nullptr && relay_->offload(flow, release, std::move(pkt))) {
    // Offloaded packets are accounted by the receiving domain's delivery
    // stage, not here: in_transit_ tracks only locally scheduled packets.
    return;
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(pkt);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(pkt));
  }
  ++in_transit_;
  in_transit_bytes_ += slots_[slot].size_bytes;
  sim_.schedule_at(release, this, 0, slot);
}

void NetemDelay::on_event(uint32_t /*tag*/, uint64_t arg) {
  const auto slot = static_cast<uint32_t>(arg);
  Packet p = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  --in_transit_;
  in_transit_bytes_ -= p.size_bytes;
  dest_->accept(std::move(p));
}

}  // namespace ccas
