// The PFTK model (Padhye, Firoiu, Towsley, Kurose; SIGCOMM 1998): a more
// complete NewReno throughput model that also accounts for the
// receiver-window limit and retransmission timeouts. The reproduced paper
// cites it alongside Mathis as the standard edge-derived throughput model;
// we provide it for cross-checking the Mathis results.
//
//   B(p) = min( Wmax/RTT,
//               1 / ( RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2) ) )
//
// in segments per second, where b is the number of segments acknowledged
// per ACK (2 with delayed ACKs) and T0 the retransmission timeout.
#pragma once

#include "src/util/units.h"

namespace ccas {

struct PadhyeParams {
  int64_t mss_bytes = 1448;
  double acked_per_ack = 2.0;          // b: delayed ACKs
  TimeDelta t0 = TimeDelta::seconds(1);  // retransmission timeout
  double max_window_segments = 1e9;    // Wmax (receiver window), in segments
};

class PadhyeModel {
 public:
  explicit PadhyeModel(const PadhyeParams& params = {}) : params_(params) {}

  [[nodiscard]] DataRate predict(TimeDelta rtt, double p) const;

  [[nodiscard]] const PadhyeParams& params() const { return params_; }

 private:
  PadhyeParams params_;
};

}  // namespace ccas
