#include "src/models/padhye.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccas {

DataRate PadhyeModel::predict(TimeDelta rtt, double p) const {
  if (rtt <= TimeDelta::zero()) throw std::invalid_argument("rtt must be positive");
  if (p <= 0.0) return DataRate::infinite();
  const double b = params_.acked_per_ack;
  const double rtt_s = rtt.sec();
  const double t0_s = params_.t0.sec();

  const double ca_term = rtt_s * std::sqrt(2.0 * b * p / 3.0);
  const double rto_prob = std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0));
  const double rto_term = t0_s * rto_prob * p * (1.0 + 32.0 * p * p);
  const double segs_per_sec = 1.0 / (ca_term + rto_term);

  const double window_limit = params_.max_window_segments / rtt_s;
  const double rate_segs = std::min(segs_per_sec, window_limit);
  return DataRate::bps_f(rate_segs * static_cast<double>(params_.mss_bytes) * 8.0);
}

}  // namespace ccas
