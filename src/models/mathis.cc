#include "src/models/mathis.h"

#include <cmath>
#include <stdexcept>

namespace ccas {

DataRate MathisModel::predict(TimeDelta rtt, double p) const {
  if (p <= 0.0) return DataRate::infinite();
  if (rtt <= TimeDelta::zero()) throw std::invalid_argument("rtt must be positive");
  const double bytes_per_sec =
      static_cast<double>(mss_bytes_) * c_ / (rtt.sec() * std::sqrt(p));
  return DataRate::bps_f(bytes_per_sec * 8.0);
}

double MathisModel::required_event_rate(TimeDelta rtt, DataRate throughput) const {
  if (rtt <= TimeDelta::zero()) throw std::invalid_argument("rtt must be positive");
  if (throughput.is_zero()) return 1.0;
  const double bytes_per_sec = static_cast<double>(throughput.bits_per_sec()) / 8.0;
  const double sqrt_p = static_cast<double>(mss_bytes_) * c_ / (rtt.sec() * bytes_per_sec);
  return sqrt_p * sqrt_p;
}

double MathisModel::implied_constant(DataRate throughput, TimeDelta rtt, double p,
                                     int64_t mss_bytes) {
  if (p <= 0.0 || rtt <= TimeDelta::zero()) {
    throw std::invalid_argument("need positive p and rtt");
  }
  const double bytes_per_sec = static_cast<double>(throughput.bits_per_sec()) / 8.0;
  return bytes_per_sec * rtt.sec() * std::sqrt(p) / static_cast<double>(mss_bytes);
}

}  // namespace ccas
