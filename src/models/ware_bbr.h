// The Ware et al. model of BBR competing with loss-based CCAs ("Modeling
// BBR's Interactions with Loss-Based Congestion Control", IMC 2019), which
// the reproduced paper's Finding 6 validates at scale.
//
// Key mechanism: when BBR shares a deep-buffered bottleneck with
// loss-based flows, it stops being pacing-limited and becomes
// *window-limited* by its in-flight cap
//
//     cap = cwnd_gain * BtlBw_est * RTprop_est   (cwnd_gain = 2)
//
// BtlBw_est is BBR's own max delivery rate over a 10-round window (i.e. its
// recent share of the link, uplifted by the 1.25 ProbeBW phase), and
// RTprop_est is the true base RTT (refreshed by PROBE_RTT). With the queue
// held at occupancy ~= buffer by loss-based competitors, every flow's RTT
// is inflated to RTT_q = RTprop * (1 + q_hat) where q_hat = buffer/BDP, so
// BBR's window-limited throughput fraction is
//
//     f = cap / (BDP + buffer)      (its share of the total in-flight data)
//
// Ware et al. show this fraction is insensitive to the *number* of
// loss-based competitors (they collectively fill whatever BBR leaves), and
// measured f ~= 0.35-0.45 for one BBR flow with ~1-BDP buffers. When the
// number of BBR flows grows toward parity, the aggregate cap exceeds
// BDP + buffer and BBR takes nearly everything (the paper's Finding 7).
#pragma once

#include "src/util/units.h"

namespace ccas {

struct WareBbrParams {
  DataRate link = DataRate::gbps(10);
  TimeDelta rtprop = TimeDelta::millis(20);
  int64_t buffer_bytes = 0;  // bottleneck buffer
  int num_bbr = 1;
  int num_loss_based = 1000;
  double cwnd_gain = 2.0;
  double probe_gain = 1.25;
  uint64_t min_cwnd_segments = 4;
  int64_t mss_bytes = 1448;
};

struct WareBbrPrediction {
  // Aggregate fraction of link throughput taken by the BBR flow(s).
  double bbr_fraction = 0.0;
  // Whether the in-flight cap (vs pacing) is the binding constraint.
  bool window_limited = true;
  // The per-flow in-flight cap, in segments, at the predicted equilibrium.
  double inflight_cap_segments = 0.0;
};

class WareBbrModel {
 public:
  explicit WareBbrModel(const WareBbrParams& params);

  [[nodiscard]] WareBbrPrediction predict() const;

  // The in-flight cap for a given bandwidth estimate and RTprop (segments).
  [[nodiscard]] double inflight_cap_segments(DataRate btlbw_est, TimeDelta rtprop) const;

  // Queue-inflated RTT when the buffer is held at `occupied_bytes`.
  [[nodiscard]] TimeDelta queue_inflated_rtt(int64_t occupied_bytes) const;

  [[nodiscard]] const WareBbrParams& params() const { return params_; }

 private:
  WareBbrParams params_;
};

}  // namespace ccas
