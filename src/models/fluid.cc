#include "src/models/fluid.h"

#include <algorithm>
#include <stdexcept>

#include "src/stats/fairness.h"

namespace ccas {

FluidAimdSimulator::FluidAimdSimulator(const FluidParams& params) : params_(params) {
  if (params.dt_sec <= 0.0) throw std::invalid_argument("dt must be positive");
  if (params.beta <= 0.0 || params.beta >= 1.0) {
    throw std::invalid_argument("beta must be in (0, 1)");
  }
  if (params.sync_fraction <= 0.0 || params.sync_fraction > 1.0) {
    throw std::invalid_argument("sync_fraction must be in (0, 1]");
  }
}

FluidResult FluidAimdSimulator::run(int flows, TimeDelta duration,
                                    std::vector<double> initial_windows) {
  if (flows <= 0) throw std::invalid_argument("need at least one flow");
  const double c_bytes = static_cast<double>(params_.capacity.bits_per_sec()) / 8.0;
  const double mss = static_cast<double>(params_.mss_bytes);
  const double base = params_.base_rtt.sec();
  const double bdp_seg = c_bytes * base / mss;
  const double buf_seg = static_cast<double>(params_.buffer_bytes) / mss;

  std::vector<double> w = std::move(initial_windows);
  w.resize(static_cast<size_t>(flows), 10.0);
  std::vector<double> delivered_seg(static_cast<size_t>(flows), 0.0);

  FluidResult result;
  size_t next_cut = 0;  // round-robin pointer for desynchronized epochs
  const double dt = params_.dt_sec;
  const auto steps = static_cast<int64_t>(duration.sec() / dt);

  for (int64_t step = 0; step < steps; ++step) {
    double total_w = 0.0;
    for (const double wi : w) total_w += wi;
    const double queue_seg = std::max(0.0, total_w - bdp_seg);
    const double rtt = base + queue_seg * mss / c_bytes;

    // Service: each flow's share of capacity is its share of in-flight
    // data (FIFO fluid limit); when uncongested, a flow delivers W/RTT.
    const double agg_rate_seg =
        std::min(total_w / rtt, c_bytes / mss);  // segments per second
    for (size_t i = 0; i < w.size(); ++i) {
      const double share = total_w > 0.0 ? w[i] / total_w : 0.0;
      delivered_seg[i] += share * agg_rate_seg * dt;
      w[i] += dt / rtt;  // additive increase
    }

    // Congestion epoch: buffer overflow.
    if (queue_seg > buf_seg) {
      ++result.congestion_epochs;
      const auto cut =
          std::max<size_t>(1, static_cast<size_t>(params_.sync_fraction *
                                                  static_cast<double>(w.size())));
      for (size_t k = 0; k < cut; ++k) {
        w[next_cut % w.size()] *= params_.beta;
        ++next_cut;
      }
    }
  }

  result.throughput_bps.reserve(w.size());
  double total_bps = 0.0;
  for (const double d : delivered_seg) {
    const double bps = d * mss * 8.0 / duration.sec();
    result.throughput_bps.push_back(bps);
    total_bps += bps;
  }
  result.utilization =
      total_bps / (static_cast<double>(params_.capacity.bits_per_sec()));
  result.jfi = jain_fairness_index(result.throughput_bps);
  return result;
}

}  // namespace ccas
