// Fluid-model AIMD simulator — the class of approximation the paper's
// methodology section (§3.2) rejects ("may not accurately capture
// fine-grained dynamics"). We build it as a comparator so the claim is
// testable: the fluid model predicts near-perfect fairness and a
// loss-to-halving ratio of exactly 1, while the packet-level simulator
// reproduces the paper's burst-loss and desynchronization effects.
//
// Model: N AIMD flows over one bottleneck of capacity C with buffer B.
//   dW_i/dt = 1 / RTT(t)                 (additive increase)
//   RTT(t)  = base_rtt + Q(t) / C
//   Q(t)    = max(0, sum_i W_i - C * base_rtt)
// When Q exceeds B, a congestion epoch occurs: flows are reduced
// multiplicatively. `sync_fraction` controls how many flows cut per epoch
// (1.0 = fully synchronized, the classic deterministic fluid limit;
// smaller values emulate desynchronization round-robin).
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace ccas {

struct FluidParams {
  DataRate capacity = DataRate::mbps(100);
  int64_t buffer_bytes = 3'000'000;
  TimeDelta base_rtt = TimeDelta::millis(20);
  int64_t mss_bytes = 1448;
  double beta = 0.5;           // multiplicative decrease
  double sync_fraction = 1.0;  // fraction of flows cut per congestion epoch
  double dt_sec = 1e-3;        // Euler step
};

struct FluidResult {
  std::vector<double> throughput_bps;  // per flow, time-averaged
  double utilization = 0.0;
  double jfi = 0.0;
  uint64_t congestion_epochs = 0;
  // In the fluid model every "loss" is exactly one halving, by construction.
  double loss_to_halving_ratio = 1.0;
};

class FluidAimdSimulator {
 public:
  explicit FluidAimdSimulator(const FluidParams& params);

  // Runs `flows` AIMD flows for `duration`, starting from the given
  // initial windows (segments); pads/truncates to `flows`.
  [[nodiscard]] FluidResult run(int flows, TimeDelta duration,
                                std::vector<double> initial_windows = {});

 private:
  FluidParams params_;
};

}  // namespace ccas
