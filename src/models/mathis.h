// The Mathis model (Mathis, Semke, Mahdavi, Ott; CCR 1997) — equation (1)
// of the reproduced paper:
//
//     Throughput = MSS * C / (RTT * sqrt(p))
//
// `p` is the congestion-event rate. The original paper defines it as the
// rate of congestion-window halvings per acknowledged packet; later work
// commonly substitutes the network packet-loss rate. The reproduced paper's
// Findings 1-3 are about when that substitution breaks down.
#pragma once

#include "src/util/units.h"

namespace ccas {

class MathisModel {
 public:
  // C = 0.94 is Mathis's derivation for NewReno with delayed + selective
  // ACKs; sqrt(3/2) ~= 1.22 is the classic no-delayed-ACK value.
  static constexpr double kMathisConstantDelayedSack = 0.94;
  static constexpr double kMathisConstantClassic = 1.2247448713915890;

  MathisModel(double c, int64_t mss_bytes) : c_(c), mss_bytes_(mss_bytes) {}

  // Predicted throughput for congestion-event rate `p` (events per ACKed
  // segment) and round-trip time `rtt`.
  [[nodiscard]] DataRate predict(TimeDelta rtt, double p) const;

  // Inverse: the event rate a flow must see to be held to `throughput`.
  [[nodiscard]] double required_event_rate(TimeDelta rtt, DataRate throughput) const;

  // Inverse: the throughput-maximizing constant for one observation
  // (solves the equation for C).
  [[nodiscard]] static double implied_constant(DataRate throughput, TimeDelta rtt,
                                               double p, int64_t mss_bytes);

  [[nodiscard]] double constant() const { return c_; }
  [[nodiscard]] int64_t mss_bytes() const { return mss_bytes_; }

 private:
  double c_;
  int64_t mss_bytes_;
};

}  // namespace ccas
