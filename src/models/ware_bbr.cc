#include "src/models/ware_bbr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/models/mathis.h"

namespace ccas {

WareBbrModel::WareBbrModel(const WareBbrParams& params) : params_(params) {
  if (params.num_bbr < 1) throw std::invalid_argument("need at least one BBR flow");
  if (params.buffer_bytes < 0) throw std::invalid_argument("negative buffer");
}

double WareBbrModel::inflight_cap_segments(DataRate btlbw_est, TimeDelta rtprop) const {
  const double cap_bytes = params_.cwnd_gain *
                           static_cast<double>(btlbw_est.bits_per_sec()) / 8.0 *
                           rtprop.sec();
  return std::max(cap_bytes / static_cast<double>(params_.mss_bytes),
                  static_cast<double>(params_.min_cwnd_segments));
}

TimeDelta WareBbrModel::queue_inflated_rtt(int64_t occupied_bytes) const {
  return params_.rtprop + params_.link.transfer_time(occupied_bytes);
}

WareBbrPrediction WareBbrModel::predict() const {
  // Closed-form regime model of the Ware et al. mechanism. Notation:
  //   BDP = C * RTprop,  q = buffer,  q_hat = q / BDP,  pipe = BDP + q.
  //
  // The binding constraint when loss-based flows keep a standing queue is
  // BBR's in-flight cap, cap_i = cwnd_gain * BtlBw_i * RTprop_i, with two
  // estimation artifacts:
  //   * BtlBw_i converges to the flow's own FIFO service share f_i * C;
  //   * RTprop_i is inflated — PROBE_RTT drains only the flow's *own*
  //     queue share, so RTprop_i ~= R + (q - q_own_i) / C.
  // With n same-sized BBR flows (aggregate share f, q_own_i = f q / n):
  //   f * pipe = 2 * f * C * (R + q (1 - f/n) / C)
  // whose non-zero fixed point is
  //   f_cap = n * (1 + q_hat) / (2 * q_hat).
  // For one flow and a deep buffer this is a proper fraction — a *fixed*
  // share independent of how many loss-based flows compete, because they
  // are elastic: their loss rate p adjusts to absorb exactly the remainder
  // (paper Finding 6, Ware et al.'s "40%"). For n >= 2 (or q <= BDP) the
  // cap exceeds the pipe and BBR takes everything except the competitors'
  // min-cwnd floor (paper Finding 7's 99.9%).
  const double c_bytes = static_cast<double>(params_.link.bits_per_sec()) / 8.0;
  const double bdp = c_bytes * params_.rtprop.sec();
  const double buf = static_cast<double>(params_.buffer_bytes);
  const double pipe = bdp + buf;
  const double mss = static_cast<double>(params_.mss_bytes);
  const double q_hat = buf / bdp;
  const double n_bbr = static_cast<double>(params_.num_bbr);
  const double n_loss = std::max(0.0, static_cast<double>(params_.num_loss_based));

  const double f_cap =
      q_hat <= 1.0 ? 1.0 : std::min(1.0, n_bbr * (1.0 + q_hat) / (2.0 * q_hat));

  // Floors from minimum windows: neither side can be pushed below
  // min_cwnd segments per flow.
  const double bbr_floor =
      n_bbr * static_cast<double>(params_.min_cwnd_segments) * mss / pipe;
  const double loss_floor = n_loss * 2.0 * mss / pipe;
  const double f = std::clamp(f_cap, std::min(bbr_floor, 1.0),
                              std::max(1.0 - loss_floor, 0.0));

  WareBbrPrediction out;
  out.bbr_fraction = f;
  out.window_limited = q_hat > 1.0;
  out.inflight_cap_segments = f * pipe / mss / n_bbr;
  return out;
}

}  // namespace ccas
