// Chiu & Jain (1989): convergence of AIMD to fairness. The reproduced
// paper cites this as the theoretical basis for NewReno/Cubic intra-CCA
// fairness (Finding 4). We provide the classic two-flow (and n-flow)
// AIMD trajectory iteration so tests and examples can demonstrate the
// convergence-to-fair-share property analytically.
#pragma once

#include <cstddef>
#include <vector>

namespace ccas {

struct AimdParams {
  double additive_increase = 1.0;        // segments per round
  double multiplicative_decrease = 0.5;  // factor retained on congestion
  double capacity = 100.0;               // link capacity in segments/round
};

class ChiuJainAimd {
 public:
  ChiuJainAimd(const AimdParams& params, std::vector<double> initial_rates);

  // Advances one synchronized round: all flows increase additively; if the
  // aggregate exceeds capacity, all flows decrease multiplicatively
  // (synchronized feedback, as in the original paper).
  void step();
  void run(int rounds);

  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }
  [[nodiscard]] double jain_index() const;
  [[nodiscard]] double utilization() const;
  // Rounds until the Jain index first exceeds `threshold` (runs the
  // system; -1 if not reached within max_rounds).
  [[nodiscard]] int rounds_to_fairness(double threshold, int max_rounds);

 private:
  AimdParams params_;
  std::vector<double> rates_;
};

}  // namespace ccas
