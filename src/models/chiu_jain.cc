#include "src/models/chiu_jain.h"

#include <numeric>
#include <stdexcept>

namespace ccas {

ChiuJainAimd::ChiuJainAimd(const AimdParams& params, std::vector<double> initial_rates)
    : params_(params), rates_(std::move(initial_rates)) {
  if (rates_.empty()) throw std::invalid_argument("need at least one flow");
  if (params.capacity <= 0.0) throw std::invalid_argument("capacity must be positive");
  if (params.multiplicative_decrease <= 0.0 || params.multiplicative_decrease >= 1.0) {
    throw std::invalid_argument("decrease factor must be in (0, 1)");
  }
}

void ChiuJainAimd::step() {
  double total = 0.0;
  for (double& r : rates_) {
    r += params_.additive_increase;
    total += r;
  }
  if (total > params_.capacity) {
    for (double& r : rates_) r *= params_.multiplicative_decrease;
  }
}

void ChiuJainAimd::run(int rounds) {
  for (int i = 0; i < rounds; ++i) step();
}

double ChiuJainAimd::jain_index() const {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double r : rates_) {
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(rates_.size()) * sum_sq);
}

double ChiuJainAimd::utilization() const {
  const double total = std::accumulate(rates_.begin(), rates_.end(), 0.0);
  return total / params_.capacity;
}

int ChiuJainAimd::rounds_to_fairness(double threshold, int max_rounds) {
  for (int i = 0; i < max_rounds; ++i) {
    if (jain_index() >= threshold) return i;
    step();
  }
  return jain_index() >= threshold ? max_rounds : -1;
}

}  // namespace ccas
