// Open-loop workload engine: drives the churn/FlowTable machinery from a
// WorkloadSpec — session arrivals (Poisson or deterministic), per-class
// flow sizes and CCAs, and application pacing models that gate the sender
// through TcpSender::enable_app_gate / app_release. Built exactly like the
// churn driver (DESIGN.md §12): arrivals are events on this handler, flows
// live in FlowTable slabs, departures go through a grace-period reaper
// that parks the slab for the next arrival, so steady state touches the
// heap only through amortized vector growth.
//
// Determinism: the engine owns a dedicated Rng seeded with
// derive_workload_seed(cell_seed), so it never draws from the master
// stream — every pre-workload golden keeps its bytes — and it runs on the
// core simulator under --shards > 1, so serial and sharded runs are
// byte-identical (the relay never claims dynamic flow ids).
#pragma once

#include <cstdint>
#include <vector>

#include "src/harness/flow_table.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"
#include "src/stats/fct.h"
#include "src/util/rng.h"
#include "src/workload/spec.h"

namespace ccas {

// Grace before a completed workload flow's slab may be recycled: an upper
// bound on the lifetime of anything still referencing the endpoints from
// inside the network (same argument as the churn reaper). `max_rtt` must
// cover every workload class and every background flow group.
[[nodiscard]] TimeDelta workload_reap_grace(const DumbbellConfig& net,
                                            TimeDelta max_rtt);

class WorkloadEngine final : public EventHandler {
 public:
  // `spec` must be validated and enabled. Dynamic flow ids start at
  // `first_flow_id` (after any fixed background flows) and are never
  // reused. `end_time` stops new arrivals; flows in flight then are
  // counted abandoned at finalize().
  WorkloadEngine(Simulator& sim, DumbbellTopology& topo, FlowTable& table,
                 const WorkloadSpec& spec, const TcpSenderConfig& tcp,
                 const TcpReceiverConfig& receiver, DataRate bottleneck_rate,
                 uint32_t first_flow_id, Time end_time, TimeDelta grace,
                 uint64_t seed);

  // Schedules the first arrival at t = 0.
  void begin();

  void on_event(uint32_t tag, uint64_t arg) override;

  // Marks still-live flows abandoned and appends one summary per class (in
  // spec order). Call once, after the simulation has run to end_time.
  void finalize(std::vector<WorkloadClassResult>& out);

  // Exact goodput of every workload flow (reaped flows were accumulated at
  // teardown, live ones read here). Integer bytes: order-independent.
  [[nodiscard]] int64_t goodput_bytes() const;

  [[nodiscard]] uint64_t flows_started() const { return started_; }
  [[nodiscard]] uint64_t flows_completed() const { return completed_; }
  [[nodiscard]] uint64_t flows_rejected() const { return rejected_; }

 private:
  struct State {
    FlowTable::Slot slot;
    Time started = Time::zero();
    uint64_t size = 0;
    uint32_t flow_id = 0;
    uint32_t cls = 0;  // index into spec_.classes
    // Bumped at reap: pending app-timer events carrying an older
    // generation are stale (the slot was recycled) and ignored.
    uint32_t gen = 0;
    bool live = false;
    bool completed = false;
  };

  void on_arrival();
  void on_complete(uint32_t si);
  void on_app_drained(uint32_t si);
  void on_app_timer(uint32_t gen, uint32_t si);
  void on_reap(uint32_t si);
  [[nodiscard]] uint32_t pick_class();
  [[nodiscard]] double ideal_fct_s(const WorkloadClass& cls,
                                   uint64_t segments) const;

  Simulator& sim_;
  DumbbellTopology& topo_;
  FlowTable& table_;
  const WorkloadSpec& spec_;
  const TcpSenderConfig tcp_;
  const TcpReceiverConfig receiver_;
  const DataRate bottleneck_rate_;
  const Time end_time_;
  const TimeDelta grace_;
  Rng rng_;  // dedicated stream: derive_workload_seed(cell_seed)

  std::vector<double> cum_weight_;  // class-pick thresholds
  std::vector<FctRecorder> recorders_;  // one per class
  std::vector<State> states_;
  std::vector<uint32_t> free_states_;
  uint64_t active_ = 0;
  uint64_t started_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint32_t next_flow_id_ = 0;
  int64_t reaped_goodput_bytes_ = 0;
};

}  // namespace ccas
