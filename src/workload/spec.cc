#include "src/workload/spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/cca/cca.h"

namespace ccas {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument(what);
}

}  // namespace

void SizeDist::validate() const {
  if (min_segments == 0) bad("workload size: min_segments must be >= 1");
  if (max_segments < min_segments) {
    bad("workload size: max_segments < min_segments");
  }
  switch (kind) {
    case SizeDistKind::kPareto:
      if (!(pareto_alpha > 0.0) || !std::isfinite(pareto_alpha)) {
        bad("workload size: pareto alpha must be > 0");
      }
      break;
    case SizeDistKind::kLognormal:
      if (!std::isfinite(lognormal_mu)) bad("workload size: lognormal mu must be finite");
      if (!(lognormal_sigma > 0.0) || !std::isfinite(lognormal_sigma)) {
        bad("workload size: lognormal sigma must be > 0");
      }
      break;
    case SizeDistKind::kFixed:
      if (fixed_segments == 0) bad("workload size: fixed size must be >= 1");
      break;
    case SizeDistKind::kEmpirical: {
      if (empirical.empty()) bad("workload size: empirical CDF has no points");
      double prev_prob = 0.0;
      uint64_t prev_seg = 0;
      for (const EmpiricalPoint& p : empirical) {
        if (!(p.cum_prob > prev_prob) || p.cum_prob > 1.0) {
          bad("workload size: empirical CDF probabilities must be strictly "
              "increasing in (0, 1]");
        }
        if (p.segments == 0 || p.segments < prev_seg) {
          bad("workload size: empirical CDF sizes must be >= 1 and "
              "non-decreasing");
        }
        prev_prob = p.cum_prob;
        prev_seg = p.segments;
      }
      if (empirical.back().cum_prob != 1.0) {
        bad("workload size: empirical CDF must end at cum_prob 1.0");
      }
      break;
    }
  }
}

uint64_t SizeDist::sample(Rng& rng) const {
  switch (kind) {
    case SizeDistKind::kPareto: {
      // Bounded-Pareto inverse CDF, exactly the churn extension's form.
      const double a = pareto_alpha;
      const auto lo = static_cast<double>(min_segments);
      const auto hi = static_cast<double>(max_segments);
      const double u = rng.next_double();
      const double x = std::pow(
          -(u * std::pow(hi, a) - u * std::pow(lo, a) - std::pow(hi, a)) /
              (std::pow(hi, a) * std::pow(lo, a)),
          -1.0 / a);
      return static_cast<uint64_t>(std::clamp(x, lo, hi));
    }
    case SizeDistKind::kLognormal: {
      // Irwin–Hall normal approximation (sum of 12 uniforms minus 6), the
      // same libm-free standard-normal the impairment jitter stage uses,
      // so samples are bit-identical across platforms.
      double z = -6.0;
      for (int i = 0; i < 12; ++i) z += rng.next_double();
      const double x = std::exp(lognormal_mu + lognormal_sigma * z);
      const auto lo = static_cast<double>(min_segments);
      const auto hi = static_cast<double>(max_segments);
      return static_cast<uint64_t>(std::clamp(x, lo, hi));
    }
    case SizeDistKind::kFixed:
      return fixed_segments;
    case SizeDistKind::kEmpirical: {
      const double u = rng.next_double();
      const auto it = std::upper_bound(
          empirical.begin(), empirical.end(), u,
          [](double a, const EmpiricalPoint& p) { return a < p.cum_prob; });
      return it == empirical.end() ? empirical.back().segments : it->segments;
    }
  }
  return min_segments;  // unreachable
}

double SizeDist::analytic_mean_segments() const {
  switch (kind) {
    case SizeDistKind::kPareto: {
      const double a = pareto_alpha;
      const auto lo = static_cast<double>(min_segments);
      const auto hi = static_cast<double>(max_segments);
      if (std::abs(a - 1.0) < 1e-9) {
        return lo / (1.0 - lo / hi) * std::log(hi / lo);
      }
      const double norm = std::pow(lo, a) / (1.0 - std::pow(lo / hi, a));
      return norm * (a / (a - 1.0)) *
             (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a));
    }
    case SizeDistKind::kLognormal:
      return std::exp(lognormal_mu +
                      lognormal_sigma * lognormal_sigma / 2.0);
    case SizeDistKind::kFixed:
      return static_cast<double>(fixed_segments);
    case SizeDistKind::kEmpirical: {
      double mean = 0.0;
      double prev = 0.0;
      for (const EmpiricalPoint& p : empirical) {
        mean += (p.cum_prob - prev) * static_cast<double>(p.segments);
        prev = p.cum_prob;
      }
      return mean;
    }
  }
  return 0.0;  // unreachable
}

void WorkloadClass::validate() const {
  if (name.empty()) bad("workload class: empty name");
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    bad("workload class '" + name + "': weight must be > 0");
  }
  if (rtt <= TimeDelta::zero()) {
    bad("workload class '" + name + "': non-positive RTT");
  }
  {
    Rng probe(0);
    (void)make_cca(cca, probe);  // throws for unknown names
  }
  size.validate();
  if (app != AppModel::kBulk) {
    if (app_burst_segments == 0) {
      bad("workload class '" + name + "': app model needs burst >= 1 segment");
    }
    if (app_gap < TimeDelta::zero()) {
      bad("workload class '" + name + "': negative app gap");
    }
    if (app == AppModel::kVideoChunk && app_gap <= TimeDelta::zero()) {
      bad("workload class '" + name + "': video chunk interval must be > 0");
    }
  }
}

void WorkloadSpec::validate() const {
  if (arrivals_per_sec < 0.0 || !std::isfinite(arrivals_per_sec)) {
    bad("workload: negative arrival rate");
  }
  if (arrivals_per_sec > 0.0 && classes.empty()) {
    bad("workload: an arrival process needs at least one traffic class");
  }
  if (classes.empty()) return;
  double weight_sum = 0.0;
  for (const WorkloadClass& c : classes) {
    c.validate();
    weight_sum += c.weight;
  }
  if (std::abs(weight_sum - 1.0) > 1e-9) {
    bad("workload: class weights must sum to 1");
  }
}

uint64_t derive_workload_seed(uint64_t cell_seed) {
  // SplitMix64 finalizer under a workload-specific salt; see
  // derive_impairment_seed / derive_qdisc_seed for the pattern.
  uint64_t z = cell_seed ^ 0xE7037ED1A0B428DBULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<EmpiricalPoint> parse_empirical_cdf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) bad("workload: cannot open empirical CDF file: " + path);
  std::vector<EmpiricalPoint> points;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    EmpiricalPoint p;
    if (!(ls >> p.cum_prob)) {
      // Blank (or comment-only) line.
      bool blank = true;
      for (const char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
      }
      if (blank) continue;
      bad("workload: empirical CDF parse error at " + path + ":" +
          std::to_string(lineno));
    }
    if (!(ls >> p.segments)) {
      bad("workload: empirical CDF parse error at " + path + ":" +
          std::to_string(lineno));
    }
    std::string trailing;
    if (ls >> trailing) {
      bad("workload: empirical CDF trailing tokens at " + path + ":" +
          std::to_string(lineno));
    }
    points.push_back(p);
  }
  if (points.empty()) {
    bad("workload: empirical CDF file has no points: " + path);
  }
  return points;
}

}  // namespace ccas
