#include "src/workload/engine.h"

#include <cmath>
#include <utility>

namespace ccas {

namespace {

constexpr uint32_t kTagArrival = 0;
constexpr uint32_t kTagReap = 1;
constexpr uint32_t kTagAppTimer = 2;

// App-timer events address a (slot, generation) pair packed into the event
// arg: a reused slot bumps the generation, so timers armed for the
// previous occupant are recognized as stale and ignored.
[[nodiscard]] uint64_t pack_timer(uint32_t gen, uint32_t si) {
  return (static_cast<uint64_t>(gen) << 32) | si;
}

}  // namespace

TimeDelta workload_reap_grace(const DumbbellConfig& net, TimeDelta max_rtt) {
  // Same bound as the churn reaper: two max-RTTs plus twice the worst-case
  // queue drain plus every configured jitter/reorder hold, with flat slack
  // dominating the delack/GRO timeouts. Lazily-cancelled timer entries can
  // outlive any grace; the reaper re-checks them and defers past the last.
  TimeDelta drain = TimeDelta::zero();
  if (!net.bottleneck_rate.is_infinite()) {
    drain = TimeDelta::seconds_f(
        static_cast<double>(net.buffer_bytes) * 8.0 /
        static_cast<double>(net.bottleneck_rate.bits_per_sec()));
  }
  if (!net.edge_rate.is_infinite()) {
    drain = drain + TimeDelta::seconds_f(
                        static_cast<double>(net.edge_buffer_bytes) * 8.0 /
                        static_cast<double>(net.edge_rate.bits_per_sec()));
  }
  const TimeDelta holds = net.jitter + net.jitter + net.impairments.jitter +
                          net.impairments.jitter +
                          net.impairments.reorder_delay;
  return max_rtt + max_rtt + drain + drain + holds + TimeDelta::millis(200);
}

WorkloadEngine::WorkloadEngine(Simulator& sim, DumbbellTopology& topo,
                               FlowTable& table, const WorkloadSpec& spec,
                               const TcpSenderConfig& tcp,
                               const TcpReceiverConfig& receiver,
                               DataRate bottleneck_rate,
                               uint32_t first_flow_id, Time end_time,
                               TimeDelta grace, uint64_t seed)
    : sim_(sim),
      topo_(topo),
      table_(table),
      spec_(spec),
      tcp_(tcp),
      receiver_(receiver),
      bottleneck_rate_(bottleneck_rate),
      end_time_(end_time),
      grace_(grace),
      rng_(seed),
      next_flow_id_(first_flow_id) {
  cum_weight_.reserve(spec.classes.size());
  double sum = 0.0;
  for (const WorkloadClass& c : spec.classes) {
    sum += c.weight;
    cum_weight_.push_back(sum);
  }
  if (!cum_weight_.empty()) cum_weight_.back() = 1.0;
  recorders_.resize(spec.classes.size());
  for (FctRecorder& r : recorders_) r.reserve(512);
  states_.reserve(256);
  free_states_.reserve(256);
}

void WorkloadEngine::begin() {
  if (spec_.arrivals_per_sec > 0.0) {
    sim_.schedule_at(Time::zero(), this, kTagArrival, 0);
  }
}

void WorkloadEngine::on_event(uint32_t tag, uint64_t arg) {
  switch (tag) {
    case kTagArrival:
      on_arrival();
      break;
    case kTagReap:
      on_reap(static_cast<uint32_t>(arg));
      break;
    default:
      on_app_timer(static_cast<uint32_t>(arg >> 32),
                   static_cast<uint32_t>(arg));
      break;
  }
}

uint32_t WorkloadEngine::pick_class() {
  const double u = rng_.next_double();
  for (size_t i = 0; i + 1 < cum_weight_.size(); ++i) {
    if (u < cum_weight_[i]) return static_cast<uint32_t>(i);
  }
  return static_cast<uint32_t>(cum_weight_.size() - 1);
}

double WorkloadEngine::ideal_fct_s(const WorkloadClass& cls,
                                   uint64_t segments) const {
  // One RTT plus the transfer's serialization time at the bottleneck, plus
  // the pacing model's floor (an app-limited flow cannot beat its own
  // release schedule: bursts - 1 gaps; for request-response that gap is
  // the mean think time, making slowdown an average-case ratio).
  double s = cls.rtt.sec();
  if (!bottleneck_rate_.is_infinite()) {
    s += static_cast<double>(segments) * static_cast<double>(kDataPacketBytes) *
         8.0 / static_cast<double>(bottleneck_rate_.bits_per_sec());
  }
  if (cls.app != AppModel::kBulk && cls.app_burst_segments > 0) {
    const uint64_t bursts =
        (segments + cls.app_burst_segments - 1) / cls.app_burst_segments;
    if (bursts > 1) s += static_cast<double>(bursts - 1) * cls.app_gap.sec();
  }
  return s;
}

void WorkloadEngine::on_arrival() {
  if (sim_.now() >= end_time_) return;
  // Dedicated-RNG draw order per arrival: class pick, then (when admitted)
  // fork + size, then at the bottom the next gap — fixed, so replay is
  // byte-identical per seed.
  const uint32_t ci = pick_class();
  const WorkloadClass& cls = spec_.classes[ci];
  recorders_[ci].on_arrival();
  if (spec_.max_concurrent > 0 && active_ >= spec_.max_concurrent) {
    ++rejected_;
    recorders_[ci].on_reject();
  } else {
    Rng flow_rng = rng_.fork();
    const uint32_t id = next_flow_id_++;
    const uint64_t size = cls.size.sample(rng_);
    uint32_t si;
    if (!free_states_.empty()) {
      si = free_states_.back();
      free_states_.pop_back();
    } else {
      si = static_cast<uint32_t>(states_.size());
      states_.emplace_back();
    }
    State& st = states_[si];
    TcpSenderConfig cfg = tcp_;
    cfg.data_segments = size;
    st.slot = table_.create(sim_, id, std::move(flow_rng), cls.cca,
                            &topo_.data_entry(id), &topo_.ack_entry(), cfg,
                            receiver_);
    st.started = sim_.now();
    st.size = size;
    st.flow_id = id;
    st.cls = ci;
    st.live = true;
    st.completed = false;
    topo_.register_flow(id, cls.rtt, st.slot.sender, st.slot.receiver);
    // Two-word captures fit std::function's inline storage: no heap.
    st.slot.sender->set_completion_callback([this, si] { on_complete(si); });
    switch (cls.app) {
      case AppModel::kBulk:
        break;
      case AppModel::kRequestResponse:
      case AppModel::kWebObject:
        st.slot.sender->enable_app_gate(cls.app_burst_segments);
        st.slot.sender->set_app_drained_callback(
            [this, si] { on_app_drained(si); });
        break;
      case AppModel::kVideoChunk:
        // Open-loop chunk schedule: the first chunk goes out at start, the
        // next every app_gap regardless of delivery progress.
        st.slot.sender->enable_app_gate(cls.app_burst_segments);
        sim_.schedule_at(sim_.now() + cls.app_gap, this, kTagAppTimer,
                         pack_timer(st.gen, si));
        break;
    }
    ++active_;
    ++started_;
    st.slot.sender->start();
  }
  double gap;
  if (spec_.arrival == ArrivalKind::kPoisson) {
    gap = -std::log(1.0 - rng_.next_double()) / spec_.arrivals_per_sec;
  } else {
    gap = 1.0 / spec_.arrivals_per_sec;
  }
  const Time next = sim_.now() + TimeDelta::seconds_f(gap);
  if (next < end_time_) sim_.schedule_at(next, this, kTagArrival, 0);
}

void WorkloadEngine::on_complete(uint32_t si) {
  State& st = states_[si];
  if (st.completed) return;
  st.completed = true;
  --active_;
  ++completed_;
  const WorkloadClass& cls = spec_.classes[st.cls];
  const double fct = (sim_.now() - st.started).sec();
  recorders_[st.cls].on_complete(fct, ideal_fct_s(cls, st.size), st.size);
  sim_.schedule_at(sim_.now() + grace_, this, kTagReap, si);
}

void WorkloadEngine::on_app_drained(uint32_t si) {
  State& st = states_[si];
  if (!st.live || st.completed) return;
  const WorkloadClass& cls = spec_.classes[st.cls];
  TimeDelta delay = cls.app_gap;  // kWebObject: fixed inter-object gap
  if (cls.app == AppModel::kRequestResponse) {
    // Exponential think time from the flow's own rng, so arrival/size
    // draws on the engine stream stay independent of app pacing.
    delay = TimeDelta::seconds_f(-std::log(1.0 - st.slot.rng->next_double()) *
                                 cls.app_gap.sec());
  }
  sim_.schedule_at(sim_.now() + delay, this, kTagAppTimer,
                   pack_timer(st.gen, si));
}

void WorkloadEngine::on_app_timer(uint32_t gen, uint32_t si) {
  State& st = states_[si];
  if (st.gen != gen || !st.live || st.completed) return;
  const WorkloadClass& cls = spec_.classes[st.cls];
  st.slot.sender->app_release(cls.app_burst_segments);
  if (cls.app == AppModel::kVideoChunk &&
      st.slot.sender->app_limit() < st.size) {
    sim_.schedule_at(sim_.now() + cls.app_gap, this, kTagAppTimer,
                     pack_timer(st.gen, si));
  }
}

void WorkloadEngine::on_reap(uint32_t si) {
  State& st = states_[si];
  // Lazily-cancelled timer entries still hold pointers into the slot; park
  // the reap just past the last one (it may re-arm — re-check).
  const Time s = st.slot.sender->latest_timer_entry();
  const Time r = st.slot.receiver->latest_timer_entry();
  const Time pending = s > r ? s : r;
  if (pending > Time::zero()) {
    const Time at =
        (pending > sim_.now() ? pending : sim_.now()) + TimeDelta::nanos(1);
    sim_.schedule_at(at, this, kTagReap, si);
    return;
  }
  reaped_goodput_bytes_ += st.slot.receiver->goodput_bytes();
  topo_.unregister_flow(st.flow_id);
  table_.recycle(st.slot);
  st.live = false;
  ++st.gen;  // invalidate any pending app timers for this slot
  free_states_.push_back(si);
}

void WorkloadEngine::finalize(std::vector<WorkloadClassResult>& out) {
  for (const State& st : states_) {
    if (st.live && !st.completed) recorders_[st.cls].on_abandon();
  }
  out.reserve(out.size() + spec_.classes.size());
  for (size_t i = 0; i < spec_.classes.size(); ++i) {
    out.push_back(
        recorders_[i].summarize(spec_.classes[i].name, spec_.classes[i].cca));
  }
}

int64_t WorkloadEngine::goodput_bytes() const {
  int64_t total = reaped_goodput_bytes_;
  for (const State& st : states_) {
    if (st.live) total += st.slot.receiver->goodput_bytes();
  }
  return total;
}

}  // namespace ccas
