// Open-loop workload specification (ROADMAP item 4): session arrival
// processes, heavy-tailed flow-size distributions (plus empirical CDF
// files), application pacing models, and per-class traffic mixes — the
// "millions of users" regime the paper's fixed-bulk-flow methodology does
// not capture. Pure data + sampling; the engine that drives it lives in
// src/workload/engine.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace ccas {

enum class ArrivalKind : uint8_t {
  kPoisson,        // exponential inter-arrival gaps, mean 1/rate
  kDeterministic,  // fixed gaps of exactly 1/rate
};

enum class SizeDistKind : uint8_t {
  kPareto,     // bounded Pareto (the classic heavy-tailed Internet model)
  kLognormal,  // lognormal of the segment count, clamped to [min, max]
  kFixed,      // every flow the same size
  kEmpirical,  // step-function inverse CDF loaded from a file
};

enum class AppModel : uint8_t {
  kBulk,             // greedy source: cwnd-limited, never app-limited
  kRequestResponse,  // burst, wait for the ACK, think (exponential), repeat
  kWebObject,        // burst, wait for the ACK, fixed inter-object gap
  kVideoChunk,       // open-loop: release one chunk every interval
};

// One point of an empirical flow-size CDF: P(size <= segments) = cum_prob.
struct EmpiricalPoint {
  double cum_prob = 0.0;
  uint64_t segments = 0;
};

struct SizeDist {
  SizeDistKind kind = SizeDistKind::kPareto;
  // Bounds applied to every distribution (Pareto support, lognormal clamp).
  uint64_t min_segments = 1;
  uint64_t max_segments = 1u << 20;
  double pareto_alpha = 1.2;
  // Parameters of log(segments) for kLognormal.
  double lognormal_mu = 3.0;
  double lognormal_sigma = 1.0;
  uint64_t fixed_segments = 10;
  // kEmpirical: sorted by cum_prob, strictly increasing, last == 1.0.
  std::vector<EmpiricalPoint> empirical;
  std::string empirical_path;  // provenance (spec_to_cli renders it)

  void validate() const;  // throws std::invalid_argument
  // One uniform draw -> size in segments, always within [min, max] (for
  // kEmpirical: within the file's support). Deterministic per rng stream.
  [[nodiscard]] uint64_t sample(Rng& rng) const;
  // Expected segment count of the *continuous* law (discretization and the
  // lognormal clamp perturb the sampled mean slightly; the property tests
  // pick parameters where both effects stay inside tolerance).
  [[nodiscard]] double analytic_mean_segments() const;
};

struct WorkloadClass {
  std::string name = "default";
  double weight = 1.0;  // class-pick probability; all weights sum to 1
  std::string cca = "cubic";
  TimeDelta rtt = TimeDelta::millis(20);
  SizeDist size;
  AppModel app = AppModel::kBulk;
  // kRequestResponse / kWebObject: segments released per burst.
  // kVideoChunk: segments per chunk.
  uint64_t app_burst_segments = 0;
  // kRequestResponse: mean think time (exponential, per-flow rng).
  // kWebObject: fixed inter-object gap. kVideoChunk: chunk interval.
  TimeDelta app_gap = TimeDelta::zero();

  void validate() const;
};

struct WorkloadSpec {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double arrivals_per_sec = 0.0;  // 0 = workload disabled
  uint64_t max_concurrent = 0;    // admission cap; 0 = unlimited
  std::vector<WorkloadClass> classes;

  [[nodiscard]] bool enabled() const {
    return arrivals_per_sec > 0.0 && !classes.empty();
  }
  void validate() const;  // throws std::invalid_argument
};

// Workload RNG seed: a pure function of the cell seed under its own salt
// (SplitMix64 finalizer, like derive_impairment_seed / derive_qdisc_seed),
// so arrival/size draws are independent of the master stream — whose
// consumption order every pre-workload golden depends on — and identical
// at any --jobs or --shards level.
[[nodiscard]] uint64_t derive_workload_seed(uint64_t cell_seed);

// Parses an empirical CDF file: one "cum_prob segments" pair per line,
// '#' comments and blank lines ignored; cum_prob strictly increasing, the
// last exactly 1.0. Throws std::invalid_argument with the offending line.
[[nodiscard]] std::vector<EmpiricalPoint> parse_empirical_cdf_file(
    const std::string& path);

}  // namespace ccas
