// Power-of-two ring buffer: the FIFO used on the packet hot paths
// (DropTailQueue, DelayLine) and for the SACK scoreboard's segment window.
//
// std::deque pays a double indirection (block map + block) per access and
// allocates/frees blocks as the queue breathes; at CoreScale event rates
// that overhead is measurable. A ring keeps everything in one contiguous
// power-of-two allocation with mask-indexed access and only reallocates on
// growth. Requires T to be default-constructible and movable.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ccas {

template <typename T>
class RingBuffer {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] size_t size() const { return count_; }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }
  [[nodiscard]] T& back() { return buf_[(head_ + count_ - 1) & mask_]; }
  [[nodiscard]] const T& back() const { return buf_[(head_ + count_ - 1) & mask_]; }

  // i-th element from the front, i < size().
  [[nodiscard]] T& operator[](size_t i) { return buf_[(head_ + i) & mask_]; }
  [[nodiscard]] const T& operator[](size_t i) const {
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T&& v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }
  void push_back(const T& v) { push_back(T(v)); }
  // Appends a default-constructed element and returns it.
  T& emplace_back() {
    push_back(T{});
    return back();
  }

  // Removes and returns the front element.
  T pop_front() {
    T v = std::move(buf_[head_]);
    drop_front();
    return v;
  }
  // Removes the front element without returning it.
  void drop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const size_t new_cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace ccas
