// Power-of-two ring buffer: the FIFO used on the packet hot paths
// (DropTailQueue, DelayLine) and for the SACK scoreboard's segment window.
//
// std::deque pays a double indirection (block map + block) per access and
// allocates/frees blocks as the queue breathes; at CoreScale event rates
// that overhead is measurable. A ring keeps everything in one contiguous
// power-of-two allocation with mask-indexed access and only reallocates on
// growth. Requires T to be default-constructible and movable.
//
// InlineCap > 0 (a power of two) embeds the first InlineCap slots directly
// in the object, so small windows — the common case for a per-flow SACK
// scoreboard — live in the owner's own cache lines and never allocate.
// Growth beyond InlineCap spills to a heap vector as before.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

namespace ccas {

template <typename T, size_t InlineCap = 0>
class RingBuffer {
  static_assert(InlineCap == 0 || (InlineCap & (InlineCap - 1)) == 0,
                "InlineCap must be zero or a power of two");

 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] size_t size() const { return count_; }

  [[nodiscard]] T& front() { return data()[head_]; }
  [[nodiscard]] const T& front() const { return data()[head_]; }
  [[nodiscard]] T& back() { return data()[(head_ + count_ - 1) & mask_]; }
  [[nodiscard]] const T& back() const {
    return data()[(head_ + count_ - 1) & mask_];
  }

  // i-th element from the front, i < size().
  [[nodiscard]] T& operator[](size_t i) { return data()[(head_ + i) & mask_]; }
  [[nodiscard]] const T& operator[](size_t i) const {
    return data()[(head_ + i) & mask_];
  }

  void push_back(T&& v) {
    if (count_ == cap_) grow();
    data()[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }
  void push_back(const T& v) { push_back(T(v)); }
  // Appends a default-constructed element and returns it.
  T& emplace_back() {
    push_back(T{});
    return back();
  }

  // Removes and returns the front element.
  T pop_front() {
    T v = std::move(front());
    drop_front();
    return v;
  }
  // Removes the front element without returning it.
  void drop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  [[nodiscard]] T* data() {
    if constexpr (InlineCap > 0) {
      if (cap_ == InlineCap) return inline_.data();
    }
    return heap_.data();
  }
  [[nodiscard]] const T* data() const {
    if constexpr (InlineCap > 0) {
      if (cap_ == InlineCap) return inline_.data();
    }
    return heap_.data();
  }

  void grow() {
    const size_t new_cap = cap_ == 0 ? 16 : cap_ * 2;
    std::vector<T> next(new_cap);
    T* src = data();
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(src[(head_ + i) & mask_]);
    }
    heap_ = std::move(next);
    cap_ = new_cap;
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> heap_;
  [[no_unique_address]] std::array<T, InlineCap> inline_{};
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = InlineCap > 0 ? InlineCap - 1 : 0;
  size_t cap_ = InlineCap;
};

}  // namespace ccas
