// Least-squares helpers used to fit the Mathis constant C and for general
// linear regression in the analysis tooling.
#pragma once

#include <cstddef>
#include <span>

namespace ccas {

// Fits y ~= c * x (regression through the origin) and returns c.
// This is exactly the estimator Mathis et al. use to derive the constant C:
// with x_i = MSS / (RTT_i * sqrt(p_i)) and y_i = measured throughput,
// C = sum(x_i * y_i) / sum(x_i^2) minimizes the squared prediction error.
[[nodiscard]] double fit_through_origin(std::span<const double> x, std::span<const double> y);

// Ordinary least squares y ~= a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

}  // namespace ccas
