#include "src/util/least_squares.h"

#include <cmath>
#include <stdexcept>

namespace ccas {

double fit_through_origin(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("size mismatch");
  if (x.empty()) throw std::invalid_argument("empty sample");
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += x[i] * y[i];
    sxx += x[i] * x[i];
  }
  if (sxx == 0.0) throw std::invalid_argument("degenerate sample: all x are zero");
  return sxy / sxx;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("size mismatch");
  if (x.size() < 2) throw std::invalid_argument("need at least two samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("degenerate sample: x has no variance");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

}  // namespace ccas
