// Minimal CSV writer used by the benchmark harness to dump result tables
// next to the binaries (one file per reproduced table/figure).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ccas {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  // Appends one row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  // Convenience for mixed numeric/string rows.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& w) : writer_(w) {}
    RowBuilder& col(std::string_view s);
    RowBuilder& col(double v, int precision = 6);
    RowBuilder& col(int64_t v);
    void done();

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
  };
  [[nodiscard]] RowBuilder start_row() { return RowBuilder(*this); }

  [[nodiscard]] const std::string& path() const { return path_; }

  // Escapes a cell per RFC 4180 (quotes fields containing comma/quote/newline).
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::string path_;
  std::ofstream out_;
  size_t columns_;
};

}  // namespace ccas
