// Strong types for time, data rate and data size used throughout the
// simulator. All arithmetic is integer nanoseconds / bits-per-second /
// bytes so that simulations are exactly reproducible across platforms.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ccas {

// ---------------------------------------------------------------------------
// TimeDelta: a signed duration with nanosecond resolution.
// ---------------------------------------------------------------------------
class TimeDelta {
 public:
  constexpr TimeDelta() = default;

  [[nodiscard]] static constexpr TimeDelta nanos(int64_t ns) { return TimeDelta(ns); }
  [[nodiscard]] static constexpr TimeDelta micros(int64_t us) { return TimeDelta(us * 1'000); }
  [[nodiscard]] static constexpr TimeDelta millis(int64_t ms) { return TimeDelta(ms * 1'000'000); }
  [[nodiscard]] static constexpr TimeDelta seconds(int64_t s) { return TimeDelta(s * 1'000'000'000); }
  [[nodiscard]] static constexpr TimeDelta seconds_f(double s) {
    return TimeDelta(static_cast<int64_t>(s * 1e9));
  }
  [[nodiscard]] static constexpr TimeDelta zero() { return TimeDelta(0); }
  [[nodiscard]] static constexpr TimeDelta infinite() {
    return TimeDelta(std::numeric_limits<int64_t>::max());
  }

  [[nodiscard]] constexpr int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<int64_t>::max();
  }

  constexpr TimeDelta operator+(TimeDelta o) const { return TimeDelta(ns_ + o.ns_); }
  constexpr TimeDelta operator-(TimeDelta o) const { return TimeDelta(ns_ - o.ns_); }
  constexpr TimeDelta operator*(int64_t k) const { return TimeDelta(ns_ * k); }
  constexpr TimeDelta operator*(int k) const { return TimeDelta(ns_ * k); }
  constexpr TimeDelta operator*(double k) const {
    return TimeDelta(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr TimeDelta operator/(int64_t k) const { return TimeDelta(ns_ / k); }
  [[nodiscard]] constexpr double operator/(TimeDelta o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr TimeDelta& operator+=(TimeDelta o) { ns_ += o.ns_; return *this; }
  constexpr TimeDelta& operator-=(TimeDelta o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const TimeDelta&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr TimeDelta(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// ---------------------------------------------------------------------------
// Time: an absolute simulation timestamp (ns since simulation start).
// ---------------------------------------------------------------------------
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time zero() { return Time(0); }
  [[nodiscard]] static constexpr Time nanos(int64_t ns) { return Time(ns); }
  [[nodiscard]] static constexpr Time seconds_f(double s) {
    return Time(static_cast<int64_t>(s * 1e9));
  }
  [[nodiscard]] static constexpr Time infinite() {
    return Time(std::numeric_limits<int64_t>::max());
  }

  [[nodiscard]] constexpr int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<int64_t>::max();
  }

  constexpr Time operator+(TimeDelta d) const { return Time(ns_ + d.ns()); }
  constexpr Time operator-(TimeDelta d) const { return Time(ns_ - d.ns()); }
  constexpr TimeDelta operator-(Time o) const { return TimeDelta::nanos(ns_ - o.ns_); }
  constexpr Time& operator+=(TimeDelta d) { ns_ += d.ns(); return *this; }
  constexpr auto operator<=>(const Time&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// ---------------------------------------------------------------------------
// DataRate: bits per second.
// ---------------------------------------------------------------------------
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bps(int64_t v) { return DataRate(v); }
  [[nodiscard]] static constexpr DataRate kbps(int64_t v) { return DataRate(v * 1'000); }
  [[nodiscard]] static constexpr DataRate mbps(int64_t v) { return DataRate(v * 1'000'000); }
  [[nodiscard]] static constexpr DataRate gbps(int64_t v) { return DataRate(v * 1'000'000'000); }
  [[nodiscard]] static constexpr DataRate bps_f(double v) {
    return DataRate(static_cast<int64_t>(v));
  }
  [[nodiscard]] static constexpr DataRate zero() { return DataRate(0); }
  [[nodiscard]] static constexpr DataRate infinite() {
    return DataRate(std::numeric_limits<int64_t>::max());
  }

  // Rate needed to transmit `bytes` in `delta`.
  [[nodiscard]] static constexpr DataRate bytes_per(int64_t bytes, TimeDelta delta) {
    if (delta.ns() <= 0) return infinite();
    const double bits = static_cast<double>(bytes) * 8.0;
    return bps_f(bits * 1e9 / static_cast<double>(delta.ns()));
  }

  [[nodiscard]] constexpr int64_t bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double mbps_f() const { return static_cast<double>(bps_) / 1e6; }
  [[nodiscard]] constexpr double gbps_f() const { return static_cast<double>(bps_) / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return bps_ == std::numeric_limits<int64_t>::max();
  }

  // Serialization delay of `bytes` at this rate.
  [[nodiscard]] constexpr TimeDelta transfer_time(int64_t bytes) const {
    if (is_infinite()) return TimeDelta::zero();
    // bytes*8 bits / (bps_ bits/s) seconds = bytes*8e9/bps_ ns.
    return TimeDelta::nanos(bytes * 8'000'000'000 / bps_);
  }

  // Bytes deliverable in `delta` at this rate.
  [[nodiscard]] constexpr int64_t bytes_in(TimeDelta delta) const {
    return static_cast<int64_t>(static_cast<double>(bps_) / 8.0 *
                                static_cast<double>(delta.ns()) / 1e9);
  }

  constexpr DataRate operator*(double k) const {
    return bps_f(static_cast<double>(bps_) * k);
  }
  constexpr DataRate operator/(int64_t k) const { return DataRate(bps_ / k); }
  constexpr DataRate operator+(DataRate o) const { return DataRate(bps_ + o.bps_); }
  constexpr DataRate operator-(DataRate o) const { return DataRate(bps_ - o.bps_); }
  [[nodiscard]] constexpr double operator/(DataRate o) const {
    return static_cast<double>(bps_) / static_cast<double>(o.bps_);
  }
  constexpr auto operator<=>(const DataRate&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr DataRate(int64_t bps) : bps_(bps) {}
  int64_t bps_ = 0;
};

// Bandwidth-delay product in bytes.
[[nodiscard]] constexpr int64_t bdp_bytes(DataRate rate, TimeDelta rtt) {
  return rate.bytes_in(rtt);
}

}  // namespace ccas
