#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/util/units.h"

namespace ccas {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void init_log_level_from_env() {
  const char* env = std::getenv("CCAS_LOG");
  if (env == nullptr) return;
  const std::string v(env);
  if (v == "trace") set_log_level(LogLevel::kTrace);
  else if (v == "debug") set_log_level(LogLevel::kDebug);
  else if (v == "info") set_log_level(LogLevel::kInfo);
  else if (v == "warn") set_log_level(LogLevel::kWarn);
  else if (v == "error") set_log_level(LogLevel::kError);
  else if (v == "off") set_log_level(LogLevel::kOff);
}

namespace internal {
void vlog_line(LogLevel level, const char* fmt, va_list args) {
  std::fprintf(stderr, "[%s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace internal

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  va_list args;
  va_start(args, fmt);
  internal::vlog_line(level, fmt, args);
  va_end(args);
}

#define CCAS_DEFINE_LOG_FN(fn, lvl)              \
  void fn(const char* fmt, ...) {                \
    if (lvl < log_level()) return;               \
    va_list args;                                \
    va_start(args, fmt);                         \
    internal::vlog_line(lvl, fmt, args);         \
    va_end(args);                                \
  }

CCAS_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
CCAS_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
CCAS_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
CCAS_DEFINE_LOG_FN(log_error, LogLevel::kError)
#undef CCAS_DEFINE_LOG_FN

// to_string implementations for the unit types (kept here so units.h stays
// header-light for the hot path).
std::string TimeDelta::to_string() const {
  char buf[64];
  if (is_infinite()) return "+inf";
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", sec());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ms());
  } else if (ns_ >= 1'000 || ns_ <= -1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", us());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string Time::to_string() const {
  if (is_infinite()) return "+inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", sec());
  return buf;
}

std::string DataRate::to_string() const {
  if (is_infinite()) return "+inf";
  char buf[64];
  if (bps_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fGbps", gbps_f());
  } else if (bps_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fMbps", mbps_f());
  } else if (bps_ >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fkbps", static_cast<double>(bps_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldbps", static_cast<long long>(bps_));
  }
  return buf;
}

}  // namespace ccas
