// Small descriptive-statistics helpers: running mean/variance (Welford),
// percentiles, and a histogram used for reporting distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccas {

// Online mean / variance / min / max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance / stddev (denominator n), matching the Goh-Barabasi
  // burstiness definition.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  // Sample variance (denominator n-1).
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile of a sample set using linear interpolation between closest
// ranks (the "exclusive" definition used by numpy's default). `q` in [0,1].
// The input vector is copied; for repeated queries use Percentiles below.
[[nodiscard]] double percentile(std::vector<double> values, double q);

// Convenience: median.
[[nodiscard]] double median(std::vector<double> values);

// Sorts once and answers many percentile queries.
class Percentiles {
 public:
  explicit Percentiles(std::vector<double> values);
  [[nodiscard]] double at(double q) const;
  [[nodiscard]] double median() const { return at(0.5); }
  [[nodiscard]] size_t count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace ccas
