#include "src/util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace ccas {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: expected " + std::to_string(columns_) +
                                " cells, got " + std::to_string(cells.size()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::col(std::string_view s) {
  cells_.emplace_back(s);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::col(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  cells_.emplace_back(buf);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::col(int64_t v) {
  cells_.emplace_back(std::to_string(v));
  return *this;
}

void CsvWriter::RowBuilder::done() { writer_.row(cells_); }

}  // namespace ccas
