#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccas {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n_total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n_total;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) /
          n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

namespace {
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}
}  // namespace

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

double median(std::vector<double> values) { return percentile(std::move(values), 0.5); }

Percentiles::Percentiles(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Percentiles::at(double q) const { return percentile_sorted(sorted_, q); }

}  // namespace ccas
