#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

#include "src/util/arena.h"

namespace ccas {

// Size-class free-list allocator for small container spill nodes (RunList
// runs, and anything else that outgrows its inline storage). Backing memory
// comes from an internal MonotonicArena, so nodes freed back to the pool are
// recycled in O(1) without ever touching the global heap again — the
// steady-state hot path of a simulation performs zero heap allocations once
// the pool has reached its high-water set (DESIGN.md §12).
//
// Not thread-safe by design: each Simulator owns one pool, and a Simulator
// (serial, or one shard domain) only ever runs on a single thread at a time.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // Returns storage for at least `bytes`, aligned to alignof(std::max_align_t).
  // Requests are rounded up to the next power-of-two size class (min 16 bytes)
  // so a freed block is reusable by any later request in the same class.
  void* allocate(std::size_t bytes) {
    const std::size_t cls = class_index(bytes);
    if (cls >= kClasses) {
      // Far beyond any node size this pool is meant for (>128MB); serve it
      // from the arena without a free list rather than index out of bounds.
      ++fresh_;
      return arena_.allocate(bytes, alignof(std::max_align_t));
    }
    void* head = free_[cls];
    if (head != nullptr) {
      free_[cls] = *static_cast<void**>(head);
      ++reused_;
      return head;
    }
    ++fresh_;
    return arena_.allocate(class_bytes(cls), alignof(std::max_align_t));
  }

  // Returns a block obtained from allocate(bytes') where bytes' rounds to the
  // same size class as `bytes`. The block is pushed on the class free list.
  void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = class_index(bytes);
    if (cls >= kClasses) return;  // oversized blocks stay with the arena
    *static_cast<void**>(p) = free_[cls];
    free_[cls] = p;
  }

  // Observability for tests and profiling.
  [[nodiscard]] std::uint64_t fresh_blocks() const { return fresh_; }
  [[nodiscard]] std::uint64_t reused_blocks() const { return reused_; }
  [[nodiscard]] std::size_t arena_bytes() const { return arena_.bytes_used(); }

  // Size class helpers, exposed so callers can compute the class a block was
  // allocated under (deallocate must see a size in the same class).
  static constexpr std::size_t kMinClassBytes = 16;
  static constexpr std::size_t kClasses = 24;

  static std::size_t class_index(std::size_t bytes) {
    std::size_t cls = 0;
    std::size_t cap = kMinClassBytes;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  static constexpr std::size_t class_bytes(std::size_t cls) {
    return kMinClassBytes << cls;
  }

 private:
  MonotonicArena arena_{64 * 1024};
  std::array<void*, kClasses> free_{};
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace ccas
