// Monotonic arena for per-flow simulation state.
//
// Experiments allocate thousands of sender/receiver/Rng triples whose
// lifetimes all end together when the run tears down. A MonotonicArena
// packs them into large contiguous blocks — one bump-pointer per
// allocation instead of one malloc per object, and flow state that is
// iterated together (snapshots, convergence polls, shard domains) stays
// cache-adjacent. Objects are destroyed in reverse construction order
// when the arena is destroyed; nothing is freed early.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ccas {

class MonotonicArena {
 public:
  explicit MonotonicArena(size_t block_bytes = 1 << 20)
      : block_bytes_(block_bytes) {}
  ~MonotonicArena() { clear(); }
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  // Constructs a T in the arena; destroyed (in reverse order) by clear()
  // or the arena's destructor.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(Dtor{obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  // Raw aligned storage with no registered destructor.
  void* allocate(size_t bytes, size_t align) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > block_end_) {
      new_block(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  // Destroys every object (reverse construction order) and releases all
  // blocks.
  void clear() {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->destroy(it->obj);
    }
    dtors_.clear();
    blocks_.clear();
    cursor_ = 0;
    block_end_ = 0;
    bytes_used_ = 0;
  }

  [[nodiscard]] size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] size_t blocks() const { return blocks_.size(); }

 private:
  struct Dtor {
    void* obj;
    void (*destroy)(void*);
  };

  void new_block(size_t min_bytes) {
    const size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    blocks_.push_back(std::make_unique<std::byte[]>(size));
    cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
    block_end_ = cursor_ + size;
  }

  size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<Dtor> dtors_;
  uintptr_t cursor_ = 0;
  uintptr_t block_end_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace ccas
