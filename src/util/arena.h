// Monotonic arena for per-flow simulation state.
//
// Experiments allocate thousands of sender/receiver/Rng triples whose
// lifetimes all end together when the run tears down. A MonotonicArena
// packs them into large contiguous blocks — one bump-pointer per
// allocation instead of one malloc per object, and flow state that is
// iterated together (snapshots, convergence polls, shard domains) stays
// cache-adjacent. Objects are destroyed in reverse construction order
// when the arena is destroyed; nothing is freed early.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace ccas {

class MonotonicArena {
 public:
  explicit MonotonicArena(size_t block_bytes = 1 << 20)
      : block_bytes_(block_bytes) {}
  ~MonotonicArena() { clear(); }
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  // Constructs a T in the arena; destroyed (in reverse order) by clear()
  // or the arena's destructor.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(Dtor{obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  // Raw aligned storage with no registered destructor.
  void* allocate(size_t bytes, size_t align) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > block_end_) {
      new_block(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  // Destroys every object (reverse construction order) and releases all
  // blocks.
  void clear() {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->destroy(it->obj);
    }
    dtors_.clear();
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
      if (it->huge) {
        ::operator delete(it->p, std::align_val_t{kHugeBytes});
      } else {
        ::operator delete(it->p);
      }
    }
    blocks_.clear();
    cursor_ = 0;
    block_end_ = 0;
    bytes_used_ = 0;
  }

  [[nodiscard]] size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] size_t blocks() const { return blocks_.size(); }

 private:
  struct Dtor {
    void* obj;
    void (*destroy)(void*);
  };

  struct Block {
    void* p = nullptr;
    size_t bytes = 0;
    bool huge = false;  // allocated 2 MB-aligned (needs the aligned delete)
  };

  // 2 MB: x86-64/aarch64 huge-page size. Blocks at or above this are
  // allocated huge-page-aligned and advised MADV_HUGEPAGE, so a large flow
  // population (tens of MB of slabs, accessed in random per-event order)
  // costs hundreds of TLB entries instead of tens of thousands.
  static constexpr size_t kHugeBytes = size_t{2} << 20;

  void new_block(size_t min_bytes) {
    // Geometric block growth (capped at 32 MB): small runs stay in one
    // default-sized block, large runs concentrate into a handful of
    // huge-page-backed blocks. Growth only changes where fresh objects
    // land, never moves existing ones.
    size_t want = block_bytes_;
    for (size_t i = blocks_.size(); i > 0 && want < (size_t{32} << 20); --i) {
      want *= 2;
    }
    size_t size = min_bytes > want ? min_bytes : want;
    void* p = nullptr;
    bool huge = false;
    if (size >= kHugeBytes) {
      size = (size + kHugeBytes - 1) & ~(kHugeBytes - 1);
      p = ::operator new(size, std::align_val_t{kHugeBytes}, std::nothrow);
      if (p != nullptr) {
        huge = true;
#if defined(__linux__)
        madvise(p, size, MADV_HUGEPAGE);
#endif
      }
    }
    if (p == nullptr) p = ::operator new(size);
    blocks_.push_back(Block{p, size, huge});
    cursor_ = reinterpret_cast<uintptr_t>(p);
    block_end_ = cursor_ + size;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  std::vector<Dtor> dtors_;
  uintptr_t cursor_ = 0;
  uintptr_t block_end_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace ccas
