#include "src/util/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t g_thread_heap_allocs = 0;

void* counted_alloc(std::size_t n) {
  ++g_thread_heap_allocs;
  if (n == 0) n = 1;
  return std::malloc(n);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  ++g_thread_heap_allocs;
  if (n == 0) n = 1;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

namespace ccas {

std::uint64_t thread_heap_allocs() { return g_thread_heap_allocs; }

}  // namespace ccas

// --- Global replacement of the allocation functions ([new.delete]). All
// forms funnel through malloc/free so new/delete stay a matched pair under
// the sanitizers' malloc interceptors.

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
