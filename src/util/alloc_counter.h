// Global heap-allocation counter.
//
// alloc_counter.cc replaces the global operator new/delete family with
// thin malloc/free wrappers that bump a thread-local counter. The
// simulator's run loops snapshot the counter around dispatch
// (SimProfile::heap_allocs), which is what lets the perf gate assert that
// the steady-state hot path performs *zero* heap allocations — a regression
// that reintroduces per-event allocation fails CI even if the events/sec
// number happens to absorb it (DESIGN.md §12).
//
// The counter is thread-local: a Simulator (serial, or one shard domain)
// runs on exactly one thread at a time, so per-run deltas are exact.
// Sanitizers keep working: the wrappers bottom out in malloc/free, which
// ASan/TSan intercept underneath.
#pragma once

#include <cstdint>

namespace ccas {

// Number of global operator-new calls made by this thread since it started.
// Monotonic; meaningful only as a delta.
[[nodiscard]] std::uint64_t thread_heap_allocs();

}  // namespace ccas
