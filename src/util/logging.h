// Lightweight leveled logging. Off by default above WARN so hot paths stay
// hot; benches/examples can raise verbosity via set_log_level or the
// CCAS_LOG environment variable (trace|debug|info|warn|error|off).
//
// printf-style formatting (GCC 12's libstdc++ does not ship <format>).
#pragma once

#include <cstdarg>
#include <string_view>

namespace ccas {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

// Initializes the level from the CCAS_LOG env var (exposed for tests).
void init_log_level_from_env();

namespace internal {
void vlog_line(LogLevel level, const char* fmt, va_list args);
}

#if defined(__GNUC__)
#define CCAS_PRINTF_ATTR(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define CCAS_PRINTF_ATTR(fmt_idx, arg_idx)
#endif

void log(LogLevel level, const char* fmt, ...) CCAS_PRINTF_ATTR(2, 3);
void log_debug(const char* fmt, ...) CCAS_PRINTF_ATTR(1, 2);
void log_info(const char* fmt, ...) CCAS_PRINTF_ATTR(1, 2);
void log_warn(const char* fmt, ...) CCAS_PRINTF_ATTR(1, 2);
void log_error(const char* fmt, ...) CCAS_PRINTF_ATTR(1, 2);

}  // namespace ccas
