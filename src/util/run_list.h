// RunList: a sorted set of disjoint, non-adjacent half-open intervals
// [start, end) over uint64_t, stored in a flat array of runs.
//
// This is the run-length backbone of the hot-path state trackers: the SACK
// scoreboard's sacked/lost/outstanding sets and the receiver's out-of-order
// reassembly map. The workloads share a shape — membership grows in long
// contiguous runs (SACK blocks, in-order bursts) and is consumed from the
// front (cumulative ACKs, rcv_nxt advances) — so a flat run array with an
// eroding-front offset beats both std::map (pointer chasing) and per-element
// flags (O(window) scans): membership queries are O(log R), front erosion is
// O(1) amortized, and set operations touch only the runs they change.
//
// Storage lives inline in the owning object (kInlineRuns runs — enough for
// the common case of zero-to-few concurrent loss/reassembly holes), so a
// flow's trackers sit in the flow's own cache lines instead of heap islands.
// Lists that outgrow the inline buffer spill to a NodePool (one per
// Simulator) and return their storage to it on shrink-to-inline or
// destruction; with a pool attached, no RunList operation ever touches the
// global heap after the pool's high-water set is reached (DESIGN.md §12).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <optional>

#include "src/util/node_pool.h"

namespace ccas {

class RunList {
 public:
  struct Run {
    uint64_t start = 0;
    uint64_t end = 0;  // exclusive
  };
  static constexpr size_t kInlineRuns = 4;

  RunList() = default;
  ~RunList() { release_storage(); }

  RunList(const RunList& o) { copy_from(o); }
  RunList& operator=(const RunList& o) {
    if (this != &o) {
      release_storage();
      base_ = 0;
      size_ = 0;
      copy_from(o);
    }
    return *this;
  }
  // Inline storage is self-referential; moves degrade to copies.
  RunList(RunList&& o) noexcept : RunList(static_cast<const RunList&>(o)) {}
  RunList& operator=(RunList&& o) noexcept {
    return *this = static_cast<const RunList&>(o);
  }

  // Attach the spill pool. Must be called before the list first outgrows its
  // inline buffer (in practice: right after construction, by the owning
  // endpoint). A list with no pool falls back to the global heap.
  void set_pool(NodePool* pool) { pool_ = pool; }

  [[nodiscard]] bool empty() const { return base_ == size_; }
  [[nodiscard]] size_t run_count() const { return size_ - base_; }
  // i-th run in ascending order, i < run_count().
  [[nodiscard]] const Run& run(size_t i) const { return data_[base_ + i]; }

  void clear() {
    base_ = 0;
    size_ = 0;
  }

  [[nodiscard]] bool contains(uint64_t v) const {
    const uint32_t i = first_run_ending_after(v);
    return i < size_ && data_[i].start <= v;
  }

  // Smallest member >= v; nullopt if none.
  [[nodiscard]] std::optional<uint64_t> first_at_or_after(uint64_t v) const {
    const uint32_t i = first_run_ending_after(v);
    if (i == size_) return std::nullopt;
    return std::max(v, data_[i].start);
  }

  // The run containing v, if any.
  [[nodiscard]] std::optional<Run> run_containing(uint64_t v) const {
    const uint32_t i = first_run_ending_after(v);
    if (i < size_ && data_[i].start <= v) return data_[i];
    return std::nullopt;
  }

  // Unions [start, end) into the set, merging with overlapping or adjacent
  // runs. No-op when start >= end.
  void add(uint64_t start, uint64_t end) {
    if (start >= end) return;
    // First run that overlaps or is right-adjacent: end >= start.
    uint32_t i = base_;
    {
      uint32_t lo = base_;
      uint32_t hi = size_;
      while (lo < hi) {
        const uint32_t mid = lo + (hi - lo) / 2;
        if (data_[mid].end >= start) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      i = lo;
    }
    if (i == size_) {
      push_back(Run{start, end});
      return;
    }
    if (data_[i].start > end) {
      // Strictly before run i, not even adjacent: insert.
      insert_at(i, Run{start, end});
      return;
    }
    // Merge with runs [i, j) that overlap or touch [start, end).
    const uint64_t new_start = std::min(start, data_[i].start);
    uint64_t new_end = end;
    uint32_t j = i;
    while (j < size_ && data_[j].start <= end) {
      new_end = std::max(new_end, data_[j].end);
      ++j;
    }
    data_[i] = Run{new_start, new_end};
    erase_range(i + 1, j);
  }
  void add_point(uint64_t v) { add(v, v + 1); }

  // Subtracts [start, end) from the set, splitting runs as needed.
  void remove(uint64_t start, uint64_t end) {
    if (start >= end) return;
    uint32_t i = first_run_ending_after(start);
    if (i == size_) return;
    // A run split in the middle: handle fully-inside removal first.
    if (data_[i].start < start && data_[i].end > end) {
      const uint64_t tail = data_[i].end;
      data_[i].end = start;
      insert_at(i + 1, Run{end, tail});
      return;
    }
    if (data_[i].start < start) {
      // Trim the right side of run i, then continue with the next run.
      data_[i].end = start;
      ++i;
    }
    // Drop runs fully covered by [start, end).
    const uint32_t del_begin = i;
    while (i < size_ && data_[i].end <= end) ++i;
    if (i < size_ && data_[i].start < end) data_[i].start = end;
    erase_range(del_begin, i);
  }
  void remove_point(uint64_t v) { remove(v, v + 1); }

  // Removes every member < bound. O(1) amortized: the front run erodes in
  // place and fully-erased runs are skipped via an offset, compacted lazily.
  void erase_below(uint64_t bound) {
    while (base_ < size_ && data_[base_].end <= bound) ++base_;
    if (base_ < size_ && data_[base_].start < bound) {
      data_[base_].start = bound;
    }
    if (base_ >= 32 && base_ * 2 >= size_) {
      std::memmove(data_, data_ + base_,
                   static_cast<size_t>(size_ - base_) * sizeof(Run));
      size_ -= base_;
      base_ = 0;
    }
  }

  // Invokes fn(a, b) for each maximal non-member gap [a, b) within
  // [start, end), in ascending order. fn must not mutate this RunList.
  template <typename F>
  void for_each_gap(uint64_t start, uint64_t end, F&& fn) const {
    uint64_t cur = start;
    uint32_t i = first_run_ending_after(start);
    while (cur < end) {
      if (i == size_ || data_[i].start >= end) {
        fn(cur, end);
        return;
      }
      const Run& r = data_[i];
      if (r.start > cur) fn(cur, r.start);
      if (r.end >= end) return;
      cur = r.end;
      ++i;
    }
  }

 private:
  // Index of the first run with end > v (the run containing v, or the next
  // one after it); size_ if none.
  [[nodiscard]] uint32_t first_run_ending_after(uint64_t v) const {
    uint32_t lo = base_;
    uint32_t hi = size_;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (data_[mid].end > v) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  void push_back(const Run& r) {
    if (size_ == cap_) grow();
    data_[size_++] = r;
  }

  void insert_at(uint32_t i, const Run& r) {
    if (size_ == cap_) grow();
    std::memmove(data_ + i + 1, data_ + i,
                 static_cast<size_t>(size_ - i) * sizeof(Run));
    data_[i] = r;
    ++size_;
  }

  // Erases raw storage slots [i, j).
  void erase_range(uint32_t i, uint32_t j) {
    if (i == j) return;
    std::memmove(data_ + i, data_ + j,
                 static_cast<size_t>(size_ - j) * sizeof(Run));
    size_ -= j - i;
  }

  void grow() {
    const uint32_t new_cap = cap_ * 2;
    Run* next = static_cast<Run*>(
        pool_ != nullptr
            ? pool_->allocate(static_cast<size_t>(new_cap) * sizeof(Run))
            : ::operator new(static_cast<size_t>(new_cap) * sizeof(Run)));
    std::memcpy(next, data_, static_cast<size_t>(size_) * sizeof(Run));
    release_storage();
    data_ = next;
    cap_ = new_cap;
  }

  void release_storage() {
    if (data_ == inline_) return;
    if (pool_ != nullptr) {
      pool_->deallocate(data_, static_cast<size_t>(cap_) * sizeof(Run));
    } else {
      ::operator delete(data_);
    }
    data_ = inline_;
    cap_ = kInlineRuns;
  }

  void copy_from(const RunList& o) {
    pool_ = o.pool_;
    const uint32_t n = o.size_ - o.base_;
    while (cap_ < n) grow();
    std::memcpy(data_, o.data_ + o.base_, static_cast<size_t>(n) * sizeof(Run));
    base_ = 0;
    size_ = n;
  }

  Run* data_ = inline_;
  uint32_t base_ = 0;  // runs before base_ have been eroded by erase_below
  uint32_t size_ = 0;  // one past the last live run in raw storage
  uint32_t cap_ = kInlineRuns;
  NodePool* pool_ = nullptr;
  Run inline_[kInlineRuns];
};

}  // namespace ccas
