// RunList: a sorted set of disjoint, non-adjacent half-open intervals
// [start, end) over uint64_t, stored in a flat vector.
//
// This is the run-length backbone of the hot-path state trackers: the SACK
// scoreboard's sacked/lost/outstanding sets and the receiver's out-of-order
// reassembly map. The workloads share a shape — membership grows in long
// contiguous runs (SACK blocks, in-order bursts) and is consumed from the
// front (cumulative ACKs, rcv_nxt advances) — so a vector of runs with an
// eroding-front offset beats both std::map (pointer chasing) and per-element
// flags (O(window) scans): membership queries are O(log R), front erosion is
// O(1) amortized, and set operations touch only the runs they change.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ccas {

class RunList {
 public:
  struct Run {
    uint64_t start = 0;
    uint64_t end = 0;  // exclusive
  };

  [[nodiscard]] bool empty() const { return base_ == runs_.size(); }
  [[nodiscard]] size_t run_count() const { return runs_.size() - base_; }
  // i-th run in ascending order, i < run_count().
  [[nodiscard]] const Run& run(size_t i) const { return runs_[base_ + i]; }

  void clear() {
    runs_.clear();
    base_ = 0;
  }

  [[nodiscard]] bool contains(uint64_t v) const {
    const size_t i = first_run_ending_after(v);
    return i < runs_.size() && runs_[i].start <= v;
  }

  // Smallest member >= v; nullopt if none.
  [[nodiscard]] std::optional<uint64_t> first_at_or_after(uint64_t v) const {
    const size_t i = first_run_ending_after(v);
    if (i == runs_.size()) return std::nullopt;
    return std::max(v, runs_[i].start);
  }

  // The run containing v, if any.
  [[nodiscard]] std::optional<Run> run_containing(uint64_t v) const {
    const size_t i = first_run_ending_after(v);
    if (i < runs_.size() && runs_[i].start <= v) return runs_[i];
    return std::nullopt;
  }

  // Unions [start, end) into the set, merging with overlapping or adjacent
  // runs. No-op when start >= end.
  void add(uint64_t start, uint64_t end) {
    if (start >= end) return;
    // First run that overlaps or is right-adjacent: end >= start.
    size_t i = base_;
    {
      size_t lo = base_;
      size_t hi = runs_.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (runs_[mid].end >= start) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      i = lo;
    }
    if (i == runs_.size()) {
      runs_.push_back(Run{start, end});
      return;
    }
    if (runs_[i].start > end) {
      // Strictly before run i, not even adjacent: insert.
      runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(i), Run{start, end});
      return;
    }
    // Merge with runs [i, j) that overlap or touch [start, end).
    uint64_t new_start = std::min(start, runs_[i].start);
    uint64_t new_end = end;
    size_t j = i;
    while (j < runs_.size() && runs_[j].start <= end) {
      new_end = std::max(new_end, runs_[j].end);
      ++j;
    }
    runs_[i] = Run{new_start, new_end};
    runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(i + 1),
                runs_.begin() + static_cast<ptrdiff_t>(j));
  }
  void add_point(uint64_t v) { add(v, v + 1); }

  // Subtracts [start, end) from the set, splitting runs as needed.
  void remove(uint64_t start, uint64_t end) {
    if (start >= end) return;
    size_t i = first_run_ending_after(start);
    if (i == runs_.size()) return;
    // A run split in the middle: handle fully-inside removal first.
    if (runs_[i].start < start && runs_[i].end > end) {
      const uint64_t tail = runs_[i].end;
      runs_[i].end = start;
      runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(i + 1), Run{end, tail});
      return;
    }
    if (runs_[i].start < start) {
      // Trim the right side of run i, then continue with the next run.
      runs_[i].end = start;
      ++i;
    }
    // Drop runs fully covered by [start, end).
    const size_t del_begin = i;
    while (i < runs_.size() && runs_[i].end <= end) ++i;
    if (i < runs_.size() && runs_[i].start < end) runs_[i].start = end;
    runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(del_begin),
                runs_.begin() + static_cast<ptrdiff_t>(i));
  }
  void remove_point(uint64_t v) { remove(v, v + 1); }

  // Removes every member < bound. O(1) amortized: the front run erodes in
  // place and fully-erased runs are skipped via an offset, compacted lazily.
  void erase_below(uint64_t bound) {
    while (base_ < runs_.size() && runs_[base_].end <= bound) ++base_;
    if (base_ < runs_.size() && runs_[base_].start < bound) {
      runs_[base_].start = bound;
    }
    if (base_ >= 32 && base_ * 2 >= runs_.size()) {
      runs_.erase(runs_.begin(), runs_.begin() + static_cast<ptrdiff_t>(base_));
      base_ = 0;
    }
  }

  // Invokes fn(a, b) for each maximal non-member gap [a, b) within
  // [start, end), in ascending order. fn must not mutate this RunList.
  template <typename F>
  void for_each_gap(uint64_t start, uint64_t end, F&& fn) const {
    uint64_t cur = start;
    size_t i = first_run_ending_after(start);
    while (cur < end) {
      if (i == runs_.size() || runs_[i].start >= end) {
        fn(cur, end);
        return;
      }
      const Run& r = runs_[i];
      if (r.start > cur) fn(cur, r.start);
      if (r.end >= end) return;
      cur = r.end;
      ++i;
    }
  }

 private:
  // Index of the first run with end > v (the run containing v, or the next
  // one after it); runs_.size() if none.
  [[nodiscard]] size_t first_run_ending_after(uint64_t v) const {
    size_t lo = base_;
    size_t hi = runs_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (runs_[mid].end > v) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  std::vector<Run> runs_;
  size_t base_ = 0;  // runs before base_ have been eroded by erase_below
};

}  // namespace ccas
