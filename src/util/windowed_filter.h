// Kathleen Nichols' windowed min/max filter, as used by Linux TCP BBR to
// track the maximum delivery rate over a bounded window of time (or of
// round-trips). Keeps the best three samples so that the estimate degrades
// gracefully as the window slides.
#pragma once

#include <cstdint>

namespace ccas {

template <typename ValueT, typename TimeT, typename Compare>
class WindowedFilter {
 public:
  WindowedFilter() = default;
  explicit WindowedFilter(TimeT window_length) : window_length_(window_length) {}

  void set_window_length(TimeT window_length) { window_length_ = window_length; }

  // Reset the whole filter to a single sample.
  void reset(ValueT value, TimeT now) {
    estimates_[0] = estimates_[1] = estimates_[2] = Sample{value, now};
  }

  [[nodiscard]] ValueT best() const { return estimates_[0].value; }
  [[nodiscard]] ValueT second_best() const { return estimates_[1].value; }
  [[nodiscard]] ValueT third_best() const { return estimates_[2].value; }

  void update(ValueT value, TimeT now) {
    if (estimates_[0].time == TimeT{} && estimates_[0].value == ValueT{}) {
      reset(value, now);
      return;
    }
    const Sample sample{value, now};
    // A new best sample, or the window has fully aged out.
    if (Compare()(value, estimates_[0].value) ||
        now - estimates_[2].time > window_length_) {
      reset(value, now);
      return;
    }
    if (Compare()(value, estimates_[1].value)) {
      estimates_[1] = estimates_[2] = sample;
    } else if (Compare()(value, estimates_[2].value)) {
      estimates_[2] = sample;
    }

    // Expire and update estimates as necessary.
    if (now - estimates_[0].time > window_length_) {
      // The best estimate hasn't been updated for an entire window; promote
      // the runners-up.
      estimates_[0] = estimates_[1];
      estimates_[1] = estimates_[2];
      estimates_[2] = sample;
      if (now - estimates_[0].time > window_length_) {
        estimates_[0] = estimates_[1];
        estimates_[1] = estimates_[2];
      }
      return;
    }
    if (estimates_[1].value == estimates_[0].value &&
        now - estimates_[1].time > window_length_ / 4) {
      // Second-best is a stale copy of the best; refresh it.
      estimates_[1] = estimates_[2] = sample;
      return;
    }
    if (estimates_[2].value == estimates_[1].value &&
        now - estimates_[2].time > window_length_ / 2) {
      estimates_[2] = sample;
    }
  }

 private:
  struct Sample {
    ValueT value{};
    TimeT time{};
  };
  TimeT window_length_{};
  Sample estimates_[3];
};

struct MaxFilterCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const { return a >= b; }
};
struct MinFilterCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const { return a <= b; }
};

template <typename ValueT, typename TimeT>
using WindowedMaxFilter = WindowedFilter<ValueT, TimeT, MaxFilterCompare>;
template <typename ValueT, typename TimeT>
using WindowedMinFilter = WindowedFilter<ValueT, TimeT, MinFilterCompare>;

}  // namespace ccas
