// Deterministic pseudo-random number generator (xoshiro256++) used by the
// simulator so that experiments are exactly reproducible from a seed.
#pragma once

#include <cstdint>

namespace ccas {

// xoshiro256++ by Blackman & Vigna (public domain reference implementation,
// re-expressed here). Fast, high quality, and — unlike std::mt19937 —
// guaranteed to produce identical streams on every platform we target.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Lemire's unbiased bounded generation.
    uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [lo, hi).
  double next_range(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Derive an independent child generator (for per-flow streams).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4] = {};
};

}  // namespace ccas
