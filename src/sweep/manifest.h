// Resumable on-disk sweep manifest: an append-only journal of per-cell
// outcomes keyed by the canonical spec hash, plus the directories that
// make a sweep self-contained on disk:
//
//   <dir>/manifest.log   the journal (text, one line per outcome)
//   <dir>/results/       a ResultCache holding every completed cacheable
//                        cell's serialized result
//   <dir>/quarantine/    one .repro replay file per failed cell
//
// Journal format (version 1):
//
//   ccas-sweep-manifest v1 salt=<cache salt>
//   cell <16-hex spec hash> ok attempts=<n> [digest=<16 hex>]
//        [worker=<id>] [fence=<n>]
//   cell <16-hex spec hash> fail class=<name> attempts=<n>
//        [worker=<id>] what=<one line>
//
// Records are keyed by spec hash, not by cell name or position, so a
// resumed sweep may reorder, drop, or add cells and only re-runs what is
// actually new. Later duplicates win: a cell journaled fail and later
// journaled ok (a successful retry on resume) counts as ok. Torn or
// unparseable lines — the tail of a sweep killed mid-append — are
// skipped with a warning, never fatal: losing the last record costs one
// recompute, not the sweep.
//
// Multi-writer extension (the sweep fleet, DESIGN.md §14): several worker
// processes may append to one journal concurrently. Every record is
// written with a single O_APPEND write() and fsync'd, so records from
// different workers interleave whole-line and survive a worker kill
// mid-job. Ok records carry the FNV-1a digest of the serialized result:
// when replay sees two ok records for the same spec hash with different
// digests, the deterministic-simulation contract is broken (divergent
// binaries sharing a store, or real nondeterminism) and the record
// becomes a structured `determinism-violation` failure — sticky against
// later duplicates, surfaced like any other cell failure, never a crash.
//
// The header pins the cache salt (kSweepCodeSalt unless overridden):
// resuming a manifest written under a different salt is refused with
// std::invalid_argument, because the journaled hashes were computed by
// different simulator code and silently reusing them would mix results
// from two incompatible versions. A duplicate header line with the same
// salt (two fleet workers racing to initialize an empty journal) is
// tolerated and skipped.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/sweep/supervisor.h"

namespace ccas::sweep {

struct ManifestRecord {
  uint64_t spec_hash = 0;
  bool ok = false;
  FailureClass cls = FailureClass::kException;  // meaningful when !ok
  int attempts = 1;
  std::string what;    // first line of the failure message (when !ok)
  uint64_t digest = 0; // FNV-1a of the serialized result (0 = unrecorded)
  std::string worker;  // fleet worker id ("" for local sweeps)
  uint64_t fence = 0;  // lease fencing token at commit (0 = none)
};

class SweepManifest {
 public:
  // Opens (creating if needed) <dir>/manifest.log and loads every intact
  // record. Throws std::invalid_argument on a salt mismatch and
  // std::runtime_error when the directory/journal cannot be created.
  SweepManifest(std::string dir, std::string salt);
  ~SweepManifest();
  SweepManifest(const SweepManifest&) = delete;
  SweepManifest& operator=(const SweepManifest&) = delete;

  // Borrowed pointer, invalidated by reload() — for single-pass callers
  // (the executor's resume short-circuit). Fleet code uses lookup().
  [[nodiscard]] const ManifestRecord* find(uint64_t spec_hash) const;
  // Copy of the record (reload-safe), or nullopt.
  [[nodiscard]] std::optional<ManifestRecord> lookup(uint64_t spec_hash) const;
  [[nodiscard]] size_t size() const { return records_.size(); }

  // Append one outcome and fsync (the journal must survive a kill right
  // after the cell completes — each record is a single O_APPEND write, so
  // concurrent writer processes interleave whole-line). Thread-safe.
  // Throws CacheIoError on a failed append: a journal that silently drops
  // records would make a later --resume quietly recompute (correct but
  // slow) or, worse, hide a failure record — the supervisor treats it as
  // transient I/O.
  void record_ok(uint64_t spec_hash, int attempts, uint64_t digest = 0,
                 const std::string& worker = std::string(), uint64_t fence = 0);
  void record_failure(const CellFailure& failure,
                      const std::string& worker = std::string());

  // Re-reads the journal from disk, folding in records appended by other
  // worker processes since construction (or the last reload). The same
  // tolerance rules as construction apply: torn tails are skipped,
  // divergent-digest duplicates become determinism-violation records. A
  // salt change under our feet throws std::invalid_argument.
  void reload();

  // Canonical, schedule-independent rendering of the journal state: one
  // line per record, sorted by spec hash, without attempts/worker/fence
  // (which legitimately differ between runs). Two sweeps of the same grid
  // converged to the same results iff their canonical texts are equal —
  // the fleet's N-workers-vs-serial differential compares exactly this.
  [[nodiscard]] std::string canonical_text() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string results_dir() const { return dir_ + "/results"; }
  [[nodiscard]] std::string quarantine_dir() const { return dir_ + "/quarantine"; }
  [[nodiscard]] std::string journal_path() const { return dir_ + "/manifest.log"; }

 private:
  void load_journal_locked();
  void merge_record_locked(ManifestRecord rec);
  void append_line(const std::string& line);  // callers hold mu_

  std::string dir_;
  std::string salt_;
  std::unordered_map<uint64_t, ManifestRecord> records_;
  mutable std::mutex mu_;
  bool saw_header_ = false;
  int fd_ = -1;  // O_WRONLY | O_APPEND journal handle
};

}  // namespace ccas::sweep
