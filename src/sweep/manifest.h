// Resumable on-disk sweep manifest: an append-only journal of per-cell
// outcomes keyed by the canonical spec hash, plus the directories that
// make a sweep self-contained on disk:
//
//   <dir>/manifest.log   the journal (text, one line per outcome)
//   <dir>/results/       a ResultCache holding every completed cacheable
//                        cell's serialized result
//   <dir>/quarantine/    one .repro replay file per failed cell
//
// Journal format (version 1):
//
//   ccas-sweep-manifest v1 salt=<cache salt>
//   cell <16-hex spec hash> ok attempts=<n>
//   cell <16-hex spec hash> fail class=<name> attempts=<n> what=<one line>
//
// Records are keyed by spec hash, not by cell name or position, so a
// resumed sweep may reorder, drop, or add cells and only re-runs what is
// actually new. Later duplicates win: a cell journaled fail and later
// journaled ok (a successful retry on resume) counts as ok. Torn or
// unparseable lines — the tail of a sweep killed mid-append — are
// skipped with a warning, never fatal: losing the last record costs one
// recompute, not the sweep.
//
// The header pins the cache salt (kSweepCodeSalt unless overridden):
// resuming a manifest written under a different salt is refused with
// std::invalid_argument, because the journaled hashes were computed by
// different simulator code and silently reusing them would mix results
// from two incompatible versions.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/sweep/supervisor.h"

namespace ccas::sweep {

struct ManifestRecord {
  uint64_t spec_hash = 0;
  bool ok = false;
  FailureClass cls = FailureClass::kException;  // meaningful when !ok
  int attempts = 1;
  std::string what;  // first line of the failure message (when !ok)
};

class SweepManifest {
 public:
  // Opens (creating if needed) <dir>/manifest.log and loads every intact
  // record. Throws std::invalid_argument on a salt mismatch and
  // std::runtime_error when the directory/journal cannot be created.
  SweepManifest(std::string dir, std::string salt);

  [[nodiscard]] const ManifestRecord* find(uint64_t spec_hash) const;
  [[nodiscard]] size_t size() const { return records_.size(); }

  // Append one outcome and flush (the journal must survive a kill right
  // after the cell completes). Thread-safe. Throws CacheIoError on a
  // failed append: a journal that silently drops records would make a
  // later --resume quietly recompute (correct but slow) or, worse, hide
  // a failure record — the supervisor treats it as transient I/O.
  void record_ok(uint64_t spec_hash, int attempts);
  void record_failure(const CellFailure& failure);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string results_dir() const { return dir_ + "/results"; }
  [[nodiscard]] std::string quarantine_dir() const { return dir_ + "/quarantine"; }
  [[nodiscard]] std::string journal_path() const { return dir_ + "/manifest.log"; }

 private:
  void append_line(const std::string& line);

  std::string dir_;
  std::string salt_;
  std::unordered_map<uint64_t, ManifestRecord> records_;
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace ccas::sweep
