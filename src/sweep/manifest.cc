#include "src/sweep/manifest.h"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/sweep/spec_hash.h"
#include "src/util/logging.h"

namespace ccas::sweep {

namespace {

constexpr std::string_view kHeaderPrefix = "ccas-sweep-manifest v1 salt=";

// The journal is line-oriented; failure messages are folded to one
// sanitized line (control characters would break parsing).
std::string sanitize_one_line(const std::string& s, size_t max_len = 200) {
  std::string out;
  out.reserve(s.size() < max_len ? s.size() : max_len);
  for (const char c : s) {
    if (out.size() >= max_len) break;
    out.push_back((c == '\n' || c == '\r' || c == '\t') ? ' ' : c);
  }
  return out;
}

bool parse_hex16(const std::string& text, uint64_t& value) {
  if (text.size() != 16) return false;
  value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return true;
}

}  // namespace

SweepManifest::SweepManifest(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create sweep manifest dir '" + dir_ +
                             "': " + ec.message());
  }

  // Load the existing journal (if any), skipping torn/unparseable lines.
  bool have_header = false;
  {
    std::ifstream in(journal_path());
    std::string line;
    int lineno = 0;
    while (in && std::getline(in, line)) {
      ++lineno;
      if (lineno == 1) {
        if (line.rfind(kHeaderPrefix, 0) != 0) {
          throw std::invalid_argument("sweep manifest " + journal_path() +
                                      " has an unrecognized header ('" +
                                      sanitize_one_line(line, 64) +
                                      "'); refusing to resume");
        }
        const std::string file_salt(line.substr(kHeaderPrefix.size()));
        if (file_salt != salt_) {
          throw std::invalid_argument(
              "sweep manifest " + journal_path() + " was written under salt '" +
              file_salt + "' but this build uses salt '" + salt_ +
              "'; its journaled results were produced by different simulator "
              "code — re-run the sweep into a fresh directory");
        }
        have_header = true;
        continue;
      }
      std::istringstream fields(line);
      std::string tag, hash_text, status;
      if (!(fields >> tag >> hash_text >> status) || tag != "cell") {
        log_warn("sweep manifest: skipping unparseable line %d of %s", lineno,
                 journal_path().c_str());
        continue;
      }
      ManifestRecord rec;
      if (!parse_hex16(hash_text, rec.spec_hash)) {
        log_warn("sweep manifest: bad spec hash on line %d of %s", lineno,
                 journal_path().c_str());
        continue;
      }
      if (status == "ok") {
        rec.ok = true;
        std::string field;
        while (fields >> field) {
          if (field.rfind("attempts=", 0) == 0) {
            rec.attempts = std::atoi(field.c_str() + 9);
          }
        }
      } else if (status == "fail") {
        rec.ok = false;
        std::string field;
        bool have_class = false;
        while (fields >> field) {
          if (field.rfind("class=", 0) == 0) {
            const auto cls = failure_class_from_name(field.substr(6));
            if (cls) {
              rec.cls = *cls;
              have_class = true;
            }
          } else if (field.rfind("attempts=", 0) == 0) {
            rec.attempts = std::atoi(field.c_str() + 9);
          } else if (field.rfind("what=", 0) == 0) {
            // `what` is the final field and may contain spaces: recover
            // the rest of the line from the stream position.
            std::string rest;
            std::getline(fields, rest);
            rec.what = field.substr(5) + rest;
            break;
          }
        }
        if (!have_class) {
          log_warn("sweep manifest: fail record without class on line %d of %s",
                   lineno, journal_path().c_str());
          continue;
        }
      } else {
        log_warn("sweep manifest: unknown record status '%s' on line %d of %s",
                 status.c_str(), lineno, journal_path().c_str());
        continue;
      }
      if (rec.attempts < 1) rec.attempts = 1;
      records_[rec.spec_hash] = std::move(rec);  // later duplicate wins
    }
  }

  out_.open(journal_path(), std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open sweep manifest journal " +
                             journal_path() + " for append");
  }
  if (!have_header) {
    out_ << kHeaderPrefix << salt_ << "\n";
    out_.flush();
    if (!out_.good()) {
      throw std::runtime_error("cannot write sweep manifest header to " +
                               journal_path());
    }
  }
}

const ManifestRecord* SweepManifest::find(uint64_t spec_hash) const {
  const auto it = records_.find(spec_hash);
  return it == records_.end() ? nullptr : &it->second;
}

void SweepManifest::append_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << "\n";
  out_.flush();
  if (!out_.good()) {
    out_.clear();
    throw CacheIoError("sweep manifest: append to " + journal_path() +
                       " failed (disk full?)");
  }
}

void SweepManifest::record_ok(uint64_t spec_hash, int attempts) {
  append_line("cell " + cache_key_hex(spec_hash) +
              " ok attempts=" + std::to_string(attempts));
}

void SweepManifest::record_failure(const CellFailure& failure) {
  append_line("cell " + cache_key_hex(failure.spec_hash) +
              " fail class=" + failure_class_name(failure.cls) +
              " attempts=" + std::to_string(failure.attempts) +
              " what=" + sanitize_one_line(failure.what));
}

}  // namespace ccas::sweep
