#include "src/sweep/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sweep/spec_hash.h"
#include "src/util/logging.h"

namespace ccas::sweep {

namespace {

constexpr std::string_view kHeaderPrefix = "ccas-sweep-manifest v1 salt=";

// The journal is line-oriented; failure messages are folded to one
// sanitized line (control characters would break parsing).
std::string sanitize_one_line(const std::string& s, size_t max_len = 200) {
  std::string out;
  out.reserve(s.size() < max_len ? s.size() : max_len);
  for (const char c : s) {
    if (out.size() >= max_len) break;
    out.push_back((c == '\n' || c == '\r' || c == '\t') ? ' ' : c);
  }
  return out;
}

bool parse_hex16(const std::string& text, uint64_t& value) {
  if (text.size() != 16) return false;
  value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return true;
}

// Parses one journaled record line into `rec`; false for torn or foreign
// lines (which replay skips — losing a torn tail costs one recompute).
bool parse_record_line(const std::string& line, ManifestRecord& rec) {
  std::istringstream fields(line);
  std::string tag, hash_text, status;
  if (!(fields >> tag >> hash_text >> status) || tag != "cell") return false;
  if (!parse_hex16(hash_text, rec.spec_hash)) return false;
  if (status == "ok") {
    rec.ok = true;
    std::string field;
    while (fields >> field) {
      if (field.rfind("attempts=", 0) == 0) {
        rec.attempts = std::atoi(field.c_str() + 9);
      } else if (field.rfind("digest=", 0) == 0) {
        uint64_t d = 0;
        if (parse_hex16(field.substr(7), d)) rec.digest = d;
      } else if (field.rfind("worker=", 0) == 0) {
        rec.worker = field.substr(7);
      } else if (field.rfind("fence=", 0) == 0) {
        rec.fence = std::strtoull(field.c_str() + 6, nullptr, 10);
      }
    }
  } else if (status == "fail") {
    rec.ok = false;
    bool have_class = false;
    std::string field;
    while (fields >> field) {
      if (field.rfind("class=", 0) == 0) {
        const auto cls = failure_class_from_name(field.substr(6));
        if (cls) {
          rec.cls = *cls;
          have_class = true;
        }
      } else if (field.rfind("attempts=", 0) == 0) {
        rec.attempts = std::atoi(field.c_str() + 9);
      } else if (field.rfind("worker=", 0) == 0) {
        rec.worker = field.substr(7);
      } else if (field.rfind("what=", 0) == 0) {
        // `what` is the final field and may contain spaces: recover the
        // rest of the line from the stream position.
        std::string rest;
        std::getline(fields, rest);
        rec.what = field.substr(5) + rest;
        break;
      }
    }
    if (!have_class) return false;
  } else {
    return false;
  }
  if (rec.attempts < 1) rec.attempts = 1;
  return true;
}

}  // namespace

SweepManifest::SweepManifest(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create sweep manifest dir '" + dir_ +
                             "': " + ec.message());
  }

  // The append handle is opened before the journal is parsed so a fresh
  // journal exists by the time the header decision is made; every record
  // later goes out as one O_APPEND write (concurrent fleet workers
  // interleave whole-line, never mid-line).
  fd_ = ::open(journal_path().c_str(),
               O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open sweep manifest journal " +
                             journal_path() + " for append: " +
                             std::strerror(errno));
  }

  bool have_header = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    load_journal_locked();
    have_header = saw_header_;
  }
  if (!have_header) {
    // Two fleet workers racing an empty journal may both write a header;
    // the loader tolerates duplicate identical header lines.
    const std::string header = std::string(kHeaderPrefix) + salt_ + "\n";
    if (::write(fd_, header.data(), header.size()) !=
            static_cast<ssize_t>(header.size()) ||
        ::fsync(fd_) != 0) {
      throw std::runtime_error("cannot write sweep manifest header to " +
                               journal_path());
    }
  }
}

SweepManifest::~SweepManifest() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepManifest::load_journal_locked() {
  records_.clear();
  saw_header_ = false;
  std::ifstream in(journal_path());
  std::string line;
  int lineno = 0;
  while (in && std::getline(in, line)) {
    ++lineno;
    if (line.rfind(kHeaderPrefix, 0) == 0) {
      // Header lines are salt-checked wherever they appear (two workers
      // racing journal creation may both have appended one).
      const std::string file_salt(line.substr(kHeaderPrefix.size()));
      if (file_salt != salt_) {
        throw std::invalid_argument(
            "sweep manifest " + journal_path() + " was written under salt '" +
            file_salt + "' but this build uses salt '" + salt_ +
            "'; its journaled results were produced by different simulator "
            "code — re-run the sweep into a fresh directory");
      }
      saw_header_ = true;
      continue;
    }
    if (lineno == 1) {
      throw std::invalid_argument("sweep manifest " + journal_path() +
                                  " has an unrecognized header ('" +
                                  sanitize_one_line(line, 64) +
                                  "'); refusing to resume");
    }
    ManifestRecord rec;
    if (!parse_record_line(line, rec)) {
      log_warn("sweep manifest: skipping unparseable line %d of %s", lineno,
               journal_path().c_str());
      continue;
    }
    merge_record_locked(std::move(rec));
  }
}

void SweepManifest::merge_record_locked(ManifestRecord rec) {
  auto it = records_.find(rec.spec_hash);
  if (it == records_.end()) {
    records_.emplace(rec.spec_hash, std::move(rec));
    return;
  }
  ManifestRecord& existing = it->second;
  // A determinism violation is sticky: once two divergent digests have
  // been seen for a hash, no later duplicate can establish which side was
  // right — the cell stays failed until a human looks.
  if (!existing.ok && existing.cls == FailureClass::kDeterminism) return;
  if (rec.ok && existing.ok && rec.digest != 0 && existing.digest != 0 &&
      rec.digest != existing.digest) {
    // Two workers journaled success for the same spec hash with different
    // result digests. A cell's result is a pure function of its spec, so
    // this is either real nondeterminism or two different binaries
    // sharing a store under one salt. Not a crash: the cell becomes a
    // structured failure the sweep reports like any other.
    ManifestRecord violation;
    violation.spec_hash = rec.spec_hash;
    violation.ok = false;
    violation.cls = FailureClass::kDeterminism;
    violation.attempts = std::max(existing.attempts, rec.attempts);
    violation.what = "result digest mismatch: " + cache_key_hex(existing.digest) +
                     " (worker '" + existing.worker + "') vs " +
                     cache_key_hex(rec.digest) + " (worker '" + rec.worker + "')";
    violation.digest = existing.digest;
    log_warn("sweep manifest: determinism violation on cell %s: %s",
             cache_key_hex(rec.spec_hash).c_str(), violation.what.c_str());
    existing = std::move(violation);
    return;
  }
  // Later duplicate wins (a successful retry on resume overrides the
  // journaled failure); a digest-less legacy record never erases a known
  // digest.
  if (rec.ok && rec.digest == 0 && existing.ok) rec.digest = existing.digest;
  existing = std::move(rec);
}

const ManifestRecord* SweepManifest::find(uint64_t spec_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(spec_hash);
  return it == records_.end() ? nullptr : &it->second;
}

std::optional<ManifestRecord> SweepManifest::lookup(uint64_t spec_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(spec_hash);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void SweepManifest::reload() {
  std::lock_guard<std::mutex> lock(mu_);
  load_journal_locked();
}

std::string SweepManifest::canonical_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ManifestRecord*> recs;
  recs.reserve(records_.size());
  for (const auto& [hash, rec] : records_) recs.push_back(&rec);
  std::sort(recs.begin(), recs.end(),
            [](const ManifestRecord* a, const ManifestRecord* b) {
              return a->spec_hash < b->spec_hash;
            });
  std::string out;
  for (const ManifestRecord* rec : recs) {
    out += "cell " + cache_key_hex(rec->spec_hash);
    if (rec->ok) {
      out += " ok";
      if (rec->digest != 0) out += " digest=" + cache_key_hex(rec->digest);
    } else {
      out += std::string(" fail class=") + failure_class_name(rec->cls);
    }
    out += "\n";
  }
  return out;
}

void SweepManifest::append_line(const std::string& line) {
  const std::string buf = line + "\n";
  // One write() per record: O_APPEND makes concurrent appends from
  // several worker processes land whole-line. A short write (ENOSPC
  // window) may tear the record's tail — replay skips it, costing one
  // recompute, and the error surfaces as transient cache I/O here.
  const ssize_t written = ::write(fd_, buf.data(), buf.size());
  const bool synced =
      written == static_cast<ssize_t>(buf.size()) && ::fsync(fd_) == 0;
  if (!synced) {
    throw CacheIoError("sweep manifest: append to " + journal_path() +
                       " failed (disk full?)");
  }
}

void SweepManifest::record_ok(uint64_t spec_hash, int attempts, uint64_t digest,
                              const std::string& worker, uint64_t fence) {
  std::string line = "cell " + cache_key_hex(spec_hash) +
                     " ok attempts=" + std::to_string(attempts);
  if (digest != 0) line += " digest=" + cache_key_hex(digest);
  if (!worker.empty()) line += " worker=" + worker;
  if (fence != 0) line += " fence=" + std::to_string(fence);
  std::lock_guard<std::mutex> lock(mu_);
  append_line(line);
  ManifestRecord rec;
  rec.spec_hash = spec_hash;
  rec.ok = true;
  rec.attempts = attempts;
  rec.digest = digest;
  rec.worker = worker;
  rec.fence = fence;
  merge_record_locked(std::move(rec));
}

void SweepManifest::record_failure(const CellFailure& failure,
                                   const std::string& worker) {
  std::string line = "cell " + cache_key_hex(failure.spec_hash) +
                     " fail class=" + failure_class_name(failure.cls) +
                     " attempts=" + std::to_string(failure.attempts);
  if (!worker.empty()) line += " worker=" + worker;
  line += " what=" + sanitize_one_line(failure.what);
  std::lock_guard<std::mutex> lock(mu_);
  append_line(line);
  ManifestRecord rec;
  rec.spec_hash = failure.spec_hash;
  rec.ok = false;
  rec.cls = failure.cls;
  rec.attempts = failure.attempts;
  rec.what = sanitize_one_line(failure.what);
  rec.worker = worker;
  merge_record_locked(std::move(rec));
}

}  // namespace ccas::sweep
