#include "src/sweep/result_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "src/sweep/spec_hash.h"
#include "src/sweep/wire.h"
#include "src/util/logging.h"

namespace ccas::sweep {

namespace {

constexpr std::string_view kMagic = "CCASRES\n";
// v2: per-flow congestion-event log appended to the payload.
constexpr uint64_t kFormatVersion = 2;

void put_flow(std::string& out, const FlowMeasurement& f) {
  put_u32(out, f.flow_id);
  put_i64(out, f.window.ns());
  put_double(out, f.goodput_bps);
  put_u64(out, f.segments_sent);
  put_u64(out, f.retransmits);
  put_u64(out, f.delivered);
  put_u64(out, f.congestion_events);
  put_u64(out, f.rto_events);
  put_u64(out, f.queue_drops);
  put_double(out, f.packet_loss_rate);
  put_double(out, f.cwnd_halving_rate);
  put_i64(out, f.mean_rtt.ns());
}

bool get_flow(WireReader& r, FlowMeasurement& f) {
  int64_t window_ns = 0;
  int64_t mean_rtt_ns = 0;
  const bool ok = r.get_u32(f.flow_id) && r.get_i64(window_ns) &&
                  r.get_double(f.goodput_bps) && r.get_u64(f.segments_sent) &&
                  r.get_u64(f.retransmits) && r.get_u64(f.delivered) &&
                  r.get_u64(f.congestion_events) && r.get_u64(f.rto_events) &&
                  r.get_u64(f.queue_drops) && r.get_double(f.packet_loss_rate) &&
                  r.get_double(f.cwnd_halving_rate) && r.get_i64(mean_rtt_ns);
  if (!ok) return false;
  f.window = TimeDelta::nanos(window_ns);
  f.mean_rtt = TimeDelta::nanos(mean_rtt_ns);
  return true;
}

}  // namespace

std::string serialize_result(const ExperimentResult& result) {
  std::string out;
  out.reserve(128 + result.flows.size() * 96 + result.drop_times.size() * 8);

  put_u64(out, result.flows.size());
  for (const FlowMeasurement& f : result.flows) put_flow(out, f);

  put_u64(out, result.flow_group.size());
  for (const int g : result.flow_group) put_i64(out, g);

  put_u64(out, result.groups.size());
  for (const GroupResult& g : result.groups) {
    put_string(out, g.cca);
    put_i64(out, g.count);
    put_i64(out, g.rtt.ns());
    put_double(out, g.aggregate_goodput_bps);
    put_double(out, g.throughput_share);
    put_double(out, g.jfi);
  }

  put_u64(out, result.queue.enqueued_packets);
  put_u64(out, result.queue.enqueued_bytes);
  put_u64(out, result.queue.dequeued_packets);
  put_u64(out, result.queue.dropped_packets);
  put_u64(out, result.queue.dropped_bytes);
  put_i64(out, result.queue.max_queued_bytes);

  put_u64(out, result.drop_times.size());
  for (const Time t : result.drop_times) put_i64(out, t.ns());

  put_double(out, result.aggregate_goodput_bps);
  put_double(out, result.utilization);
  put_i64(out, result.measured_for.ns());
  put_bool(out, result.converged_early);
  put_u64(out, result.sim_events);

  put_u64(out, result.congestion_log.size());
  for (const std::vector<Time>& flow_log : result.congestion_log) {
    put_u64(out, flow_log.size());
    for (const Time t : flow_log) put_i64(out, t.ns());
  }

  // Qdisc trailer, appended only when an AQM actually produced content:
  // drop-tail results keep their historical v2 bytes (and stay readable by
  // older binaries), and an AQM result with all-zero extras loses nothing
  // by omitting it. The reader detects it by non-exhaustion.
  bool qdisc_active = result.queue.head_dropped_packets > 0 ||
                      result.queue.marked_packets > 0 ||
                      result.queue.sojourn_samples > 0;
  for (const FlowMeasurement& f : result.flows) {
    qdisc_active = qdisc_active || f.queue_marks > 0 || f.ecn_reductions > 0;
  }
  // A workload block (below) can only follow a qdisc trailer — the reader
  // distinguishes the two appended blocks by position, so force the (then
  // all-zero) qdisc trailer whenever workload results are present.
  const bool workload_active = !result.workload_classes.empty();
  if (qdisc_active || workload_active) {
    put_u64(out, result.queue.head_dropped_packets);
    put_u64(out, result.queue.head_dropped_bytes);
    put_u64(out, result.queue.marked_packets);
    put_u64(out, result.queue.sojourn_ns_sum);
    put_u64(out, result.queue.sojourn_samples);
    put_i64(out, result.queue.max_sojourn_ns);
    put_u64(out, result.flows.size());
    for (const FlowMeasurement& f : result.flows) {
      put_u64(out, f.queue_marks);
      put_u64(out, f.ecn_reductions);
    }
  }
  // Workload FCT block, appended only when the open-loop workload ran:
  // pre-workload results keep their historical bytes.
  if (workload_active) {
    put_u64(out, result.workload_classes.size());
    for (const WorkloadClassResult& c : result.workload_classes) {
      put_string(out, c.name);
      put_string(out, c.cca);
      put_u64(out, c.arrivals);
      put_u64(out, c.rejected);
      put_u64(out, c.completed);
      put_u64(out, c.abandoned);
      put_u64(out, c.completed_segments);
      put_double(out, c.mean_fct_s);
      put_double(out, c.p50_fct_s);
      put_double(out, c.p90_fct_s);
      put_double(out, c.p99_fct_s);
      put_double(out, c.p999_fct_s);
      put_double(out, c.mean_slowdown);
    }
    put_double(out, result.workload_goodput_bps);
  }
  return out;
}

std::optional<ExperimentResult> deserialize_result(const std::string& payload) {
  WireReader r(payload);
  ExperimentResult result;

  uint64_t n = 0;
  if (!r.get_count(n, 12 * 8)) return std::nullopt;
  result.flows.resize(n);
  for (FlowMeasurement& f : result.flows) {
    if (!get_flow(r, f)) return std::nullopt;
  }

  if (!r.get_count(n, 8)) return std::nullopt;
  result.flow_group.resize(n);
  for (int& g : result.flow_group) {
    int64_t v = 0;
    if (!r.get_i64(v)) return std::nullopt;
    g = static_cast<int>(v);
  }

  if (!r.get_count(n, 6 * 8)) return std::nullopt;
  result.groups.resize(n);
  for (GroupResult& g : result.groups) {
    int64_t count = 0;
    int64_t rtt_ns = 0;
    if (!r.get_string(g.cca) || !r.get_i64(count) || !r.get_i64(rtt_ns) ||
        !r.get_double(g.aggregate_goodput_bps) || !r.get_double(g.throughput_share) ||
        !r.get_double(g.jfi)) {
      return std::nullopt;
    }
    g.count = static_cast<int>(count);
    g.rtt = TimeDelta::nanos(rtt_ns);
  }

  if (!r.get_u64(result.queue.enqueued_packets) ||
      !r.get_u64(result.queue.enqueued_bytes) ||
      !r.get_u64(result.queue.dequeued_packets) ||
      !r.get_u64(result.queue.dropped_packets) ||
      !r.get_u64(result.queue.dropped_bytes) ||
      !r.get_i64(result.queue.max_queued_bytes)) {
    return std::nullopt;
  }

  if (!r.get_count(n, 8)) return std::nullopt;
  result.drop_times.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t t = 0;
    if (!r.get_i64(t)) return std::nullopt;
    result.drop_times.push_back(Time::nanos(t));
  }

  int64_t measured_ns = 0;
  if (!r.get_double(result.aggregate_goodput_bps) ||
      !r.get_double(result.utilization) || !r.get_i64(measured_ns) ||
      !r.get_bool(result.converged_early) || !r.get_u64(result.sim_events)) {
    return std::nullopt;
  }
  result.measured_for = TimeDelta::nanos(measured_ns);

  if (!r.get_count(n, 8)) return std::nullopt;
  result.congestion_log.resize(n);
  for (std::vector<Time>& flow_log : result.congestion_log) {
    uint64_t m = 0;
    if (!r.get_count(m, 8)) return std::nullopt;
    flow_log.reserve(m);
    for (uint64_t i = 0; i < m; ++i) {
      int64_t t = 0;
      if (!r.get_i64(t)) return std::nullopt;
      flow_log.push_back(Time::nanos(t));
    }
  }
  // Optional qdisc trailer (see serialize_result): absent for drop-tail
  // results, so plain v2 payloads decode exactly as before.
  if (!r.exhausted()) {
    if (!r.get_u64(result.queue.head_dropped_packets) ||
        !r.get_u64(result.queue.head_dropped_bytes) ||
        !r.get_u64(result.queue.marked_packets) ||
        !r.get_u64(result.queue.sojourn_ns_sum) ||
        !r.get_u64(result.queue.sojourn_samples) ||
        !r.get_i64(result.queue.max_sojourn_ns)) {
      return std::nullopt;
    }
    if (!r.get_count(n, 2 * 8) || n != result.flows.size()) return std::nullopt;
    for (FlowMeasurement& f : result.flows) {
      if (!r.get_u64(f.queue_marks) || !r.get_u64(f.ecn_reductions)) {
        return std::nullopt;
      }
    }
    // Optional workload FCT block, always preceded by a qdisc trailer (the
    // serializer forces one when workload results are present).
    if (!r.exhausted()) {
      if (!r.get_count(n, 5 * 8 + 6 * 8)) return std::nullopt;
      result.workload_classes.resize(n);
      for (WorkloadClassResult& c : result.workload_classes) {
        if (!r.get_string(c.name) || !r.get_string(c.cca) ||
            !r.get_u64(c.arrivals) || !r.get_u64(c.rejected) ||
            !r.get_u64(c.completed) || !r.get_u64(c.abandoned) ||
            !r.get_u64(c.completed_segments) || !r.get_double(c.mean_fct_s) ||
            !r.get_double(c.p50_fct_s) || !r.get_double(c.p90_fct_s) ||
            !r.get_double(c.p99_fct_s) || !r.get_double(c.p999_fct_s) ||
            !r.get_double(c.mean_slowdown)) {
          return std::nullopt;
        }
      }
      if (!r.get_double(result.workload_goodput_bps)) return std::nullopt;
    }
  }
  if (!r.exhausted()) return std::nullopt;  // trailing garbage
  return result;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create cache dir '" + dir_ +
                             "': " + ec.message());
  }
}

std::string ResultCache::entry_path(uint64_t key) const {
  return dir_ + "/" + cache_key_hex(key) + ".ccres";
}

std::optional<ExperimentResult> ResultCache::load(uint64_t key) const {
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;

  WireReader header(file);
  std::string magic;
  uint64_t version = 0;
  uint64_t stored_key = 0;
  std::string payload;
  uint64_t checksum = 0;
  if (!header.get_string(magic) || magic != kMagic ||       //
      !header.get_u64(version) || version != kFormatVersion ||
      !header.get_u64(stored_key) || stored_key != key ||   //
      !header.get_string(payload) ||                        //
      !header.get_u64(checksum) || !header.exhausted()) {
    log_warn("sweep cache: malformed entry %s ignored", entry_path(key).c_str());
    return std::nullopt;
  }
  if (fnv1a64(payload) != checksum) {
    log_warn("sweep cache: checksum mismatch in %s, recomputing",
             entry_path(key).c_str());
    return std::nullopt;
  }
  auto result = deserialize_result(payload);
  if (!result) {
    log_warn("sweep cache: undecodable payload in %s, recomputing",
             entry_path(key).c_str());
  }
  return result;
}

bool ResultCache::store(uint64_t key, const ExperimentResult& result) const {
  const std::string payload = serialize_result(result);
  std::string file;
  file.reserve(payload.size() + 64);
  put_string(file, kMagic);
  put_u64(file, kFormatVersion);
  put_u64(file, key);
  put_string(file, payload);
  put_u64(file, fnv1a64(payload));

  // The temp name is unique per process AND per store() call (pid +
  // process-wide counter): two workers — or two threads — racing the same
  // key must never share a temp file, or one writer's truncate tears the
  // other's half-written bytes just before its rename. With unique temps,
  // concurrent writers are last-writer-wins at the rename, and every
  // rename publishes a complete entry.
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp =
      entry_path(key) + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  for (int attempt = 0; attempt < kStoreAttempts; ++attempt) {
    if (attempt > 0) {
      // Deterministic backoff: transient conditions (ENOSPC window, a
      // flaky network FS) often clear within milliseconds.
      std::this_thread::sleep_for(std::chrono::milliseconds(2LL << attempt));
    }
    size_t write_len = file.size();
    if (fail_next_writes_.load(std::memory_order_relaxed) > 0 &&
        fail_next_writes_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      write_len /= 2;  // injected torn write
    }
    {
      // POSIX write path so the data can be fsync'd before the rename: a
      // host crash after the rename must not leave a published entry
      // whose bytes never reached the disk.
      const int fd = ::open(tmp.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
      if (fd < 0) continue;
      const ssize_t written =
          ::write(fd, file.data(), static_cast<size_t>(write_len));
      const bool ok = written == static_cast<ssize_t>(write_len) &&
                      ::fsync(fd) == 0;
      ::close(fd);
      if (!ok) {
        ::unlink(tmp.c_str());
        continue;
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, entry_path(key), ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      continue;
    }
    // Commit the rename itself: fsync the directory so the entry's name
    // survives a host crash (data was fsync'd above; without the
    // directory sync the file could vanish, which is only a cache miss —
    // but the fleet's manifest journals "ok" right after this store, and
    // a journaled-ok cell whose entry vanished costs a recompute on
    // every resume).
    sync_dir();
    // Verify after rename: read the entry back and byte-compare. A torn
    // or bit-flipped write is removed (load() would only warn and
    // recompute later — better to pay one retry now) and re-attempted.
    // A mismatch that is itself a complete, verifiable entry (a
    // concurrent writer of the same key won the rename race) counts as
    // success: entries for one key are equal bytes under the determinism
    // contract, and a divergent winner is caught by the manifest's
    // digest check, not here.
    std::ifstream in(entry_path(key), std::ios::binary);
    std::string readback((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    if (in.good() || in.eof()) {
      if (readback == file) return true;
      if (write_len == file.size() && load(key).has_value()) return true;
    }
    log_warn("sweep cache: verify-after-rename mismatch in %s (attempt %d), "
             "rewriting",
             entry_path(key).c_str(), attempt + 1);
    std::filesystem::remove(entry_path(key), ec);
  }
  return false;
}

void ResultCache::sync_dir() const {
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return;  // best-effort: an unsyncable dir degrades to cache-off semantics
  ::fsync(dfd);
  ::close(dfd);
}

}  // namespace ccas::sweep
