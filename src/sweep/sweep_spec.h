// A named grid of independent experiment cells — the unit of work the
// SweepExecutor fans out across cores. Cells carry a stable name (the
// table/figure coordinate, e.g. "CoreScale/flows=3000/rtt=20") that is
// used for progress reporting and, when requested, for deriving the
// cell's RNG seed, so a sweep's results are a pure function of the spec
// regardless of submission order or --jobs level.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/harness/experiment.h"

namespace ccas::sweep {

struct SweepCell {
  std::string name;
  ExperimentSpec spec;
};

// Deterministic per-cell seed: a stable hash of (base_seed, cell_name),
// never zero. Independent of the cell's position in the sweep, so adding
// or reordering cells does not perturb the others' results.
[[nodiscard]] uint64_t derive_cell_seed(uint64_t base_seed, std::string_view cell_name);

struct SweepSpec {
  std::string name;        // sweep label, e.g. the bench binary name
  uint64_t base_seed = 1;  // mixed into derived cell seeds
  std::vector<SweepCell> cells;

  // Adds a cell keeping spec.seed exactly as the caller set it (the
  // benches pin seeds to reproduce the paper's published grids).
  SweepCell& add_cell(std::string cell_name, ExperimentSpec spec);

  // Adds a cell with spec.seed overwritten by derive_cell_seed(base_seed,
  // cell_name) — use for new grids where per-cell seed independence is
  // wanted without hand-assigning seeds.
  SweepCell& add_cell_derived_seed(std::string cell_name, ExperimentSpec spec);
};

}  // namespace ccas::sweep
