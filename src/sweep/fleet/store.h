// The fleet job store (DESIGN.md §14): one directory that fully describes
// a sweep job shared by N ccas_fleet worker processes —
//
//   <dir>/job.spec      the frozen grid (below)
//   <dir>/manifest.log  shared multi-writer journal   (manifest.h)
//   <dir>/results/      shared ResultCache            (result_cache.h)
//   <dir>/quarantine/   .repro replay files for failed cells
//   <dir>/leases/       per-cell claim leases         (lease.h)
//
// job.spec format (version 1):
//
//   ccas-fleet-job v1 salt=<cache salt>
//   cell <16-hex spec hash> <cell name>
//   ...
//   end <cell count>
//
// The first worker to arrive freezes the grid: the file is rendered to a
// private temp, fsync'd, and published with link(2), whose first-wins
// atomicity means concurrent creators cannot interleave and a published
// job.spec is never torn by a racing writer. Every later joiner re-derives
// the grid from its own CLI and verifies hash-for-hash agreement with the
// frozen file; a mismatch (different flags, or a binary whose spec hashing
// changed without a salt bump) is refused with std::invalid_argument —
// mixed grids in one store would journal results nobody asked for. The
// salt line carries kSweepCodeSalt (unless overridden), so binaries from
// different simulator versions refuse to join each other's stores the
// same way resume refuses mismatched manifests.
//
// A torn job.spec (`end` trailer missing or wrong — possible only after a
// host crash un-fsync'd the creator's work) is repaired by the next
// arriving worker: unlink and re-freeze from its own grid. Join-only
// opens (ccas_fleet --report-only) have no grid to re-freeze from and
// refuse instead.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sweep/manifest.h"
#include "src/sweep/result_cache.h"
#include "src/sweep/sweep_spec.h"

namespace ccas::sweep::fleet {

struct JobCell {
  uint64_t spec_hash = 0;
  std::string name;
};

class FleetStore {
 public:
  // Create-or-join: freezes `sweep`'s grid into <dir>/job.spec if absent,
  // verifies it hash-for-hash otherwise. Throws std::invalid_argument on
  // a salt or grid mismatch, std::runtime_error when the store cannot be
  // created or repaired.
  FleetStore(std::string dir, const SweepSpec& sweep, std::string salt);

  // Join-only (--report-only): parses the existing job.spec. Throws
  // std::runtime_error when it is absent or torn, std::invalid_argument
  // on a salt mismatch.
  FleetStore(std::string dir, std::string salt);

  // The frozen grid, in job.spec order.
  [[nodiscard]] const std::vector<JobCell>& grid() const { return grid_; }

  [[nodiscard]] SweepManifest& manifest() { return *manifest_; }
  [[nodiscard]] ResultCache& results() { return *results_; }

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& salt() const { return salt_; }
  [[nodiscard]] std::string job_path() const { return dir_ + "/job.spec"; }
  [[nodiscard]] std::string lease_dir() const { return dir_ + "/leases"; }
  [[nodiscard]] std::string quarantine_dir() const {
    return dir_ + "/quarantine";
  }

  // Grid cells the (reloaded) manifest holds no record for. The job is
  // complete when this is empty — the coordinator-less completion rule:
  // any worker observing full coverage may render the final report and
  // exit, no handshake required.
  [[nodiscard]] std::vector<JobCell> uncovered() const;

 private:
  void open_or_create(const std::vector<JobCell>* expected);
  [[nodiscard]] bool try_create(const std::vector<JobCell>& grid);
  // Parses job.spec into grid_. Returns false when the file is torn;
  // throws on salt mismatch or an unrecognized header.
  [[nodiscard]] bool parse_job_file();

  std::string dir_;
  std::string salt_;
  std::vector<JobCell> grid_;
  std::unique_ptr<SweepManifest> manifest_;
  std::unique_ptr<ResultCache> results_;
};

}  // namespace ccas::sweep::fleet
