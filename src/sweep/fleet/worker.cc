#include "src/sweep/fleet/worker.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/check/audit.h"
#include "src/harness/runner.h"
#include "src/sim/budget.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/wire.h"
#include "src/util/logging.h"

namespace ccas::sweep::fleet {

namespace {

FailureClass budget_failure_class(BudgetExceeded::Kind kind) {
  switch (kind) {
    case BudgetExceeded::Kind::kWallClock: return FailureClass::kBudgetWall;
    case BudgetExceeded::Kind::kSimEvents: return FailureClass::kBudgetEvents;
    case BudgetExceeded::Kind::kRssEstimate: return FailureClass::kBudgetRss;
  }
  return FailureClass::kException;
}

// Renews the lease every `interval_ms` on a background thread for as long
// as the guarded compute runs. A renewal that finds the lease reclaimed
// sets both flags: `lost` tells the worker to abandon the cell, `cancel`
// makes the simulator's cooperative budget check abort the in-flight
// attempt at its next poll — a worker that lost its cell stops burning
// CPU on a result its new holder is already computing.
class Heartbeat {
 public:
  Heartbeat(LeaseDir& leases, Lease lease, uint64_t interval_ms,
            std::atomic<bool>* lost, std::atomic<bool>* cancel)
      : thread_([this, &leases, lease = std::move(lease), interval_ms, lost,
                 cancel] {
          std::unique_lock<std::mutex> lock(mu_);
          for (;;) {
            if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                             [this] { return stopped_; })) {
              return;
            }
            lock.unlock();
            const bool renewed = leases.renew(lease);
            lock.lock();
            if (stopped_) return;
            if (!renewed) {
              lost->store(true, std::memory_order_relaxed);
              cancel->store(true, std::memory_order_relaxed);
              return;
            }
          }
        }) {}

  ~Heartbeat() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

struct CellWorkStats {
  bool committed = false;
  bool ok = false;       // committed a success (vs a failure record)
  bool lost = false;
  bool adopted = false;  // committed from a found results-store entry
};

}  // namespace

FleetWorker::FleetWorker(FleetOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::invalid_argument("fleet: store directory must not be empty");
  }
  if (options_.lease_ttl_ms == 0) {
    throw std::invalid_argument("fleet: lease TTL must be positive");
  }
  if (options_.heartbeat_ms == 0) {
    options_.heartbeat_ms = std::max<uint64_t>(1, options_.lease_ttl_ms / 3);
  }
  if (options_.heartbeat_ms >= options_.lease_ttl_ms) {
    throw std::invalid_argument(
        "fleet: heartbeat interval must be shorter than the lease TTL "
        "(a heartbeat that fires after expiry cannot keep the lease)");
  }
  if (options_.worker_id.empty()) {
    options_.worker_id = "w" + std::to_string(::getpid());
  }
  for (const char c : options_.worker_id) {
    // The id lands in lease filenames and journal fields.
    if (c == '/' || c == ' ' || c == '\n' || c == '\t') {
      throw std::invalid_argument(
          "fleet: worker id must not contain '/', whitespace, or newlines");
    }
  }
}

FleetSummary FleetWorker::run(const SweepSpec& sweep) {
  const auto start = std::chrono::steady_clock::now();
  FleetSummary summary;

  FleetStore store(options_.dir, sweep, options_.cache_salt);
  LeaseDir leases(store.lease_dir(), options_.worker_id, options_.lease_ttl_ms,
                  options_.clock);
  FaultPlan faults = FaultPlan::from_env();
  summary.total_cells = static_cast<int>(store.grid().size());

  // Fail records that predate this worker are re-attempted once each —
  // joining a fleet is this worker's analogue of a --resume, and resume
  // retries journaled failures. `handled` keys the bound; it also covers
  // failures we committed ourselves (no point re-running our own work).
  std::unordered_set<uint64_t> handled;

  auto work_cell = [&](const JobCell& jcell, const SweepCell& cell,
                       const Lease& lease) -> CellWorkStats {
    CellWorkStats stats;
    std::atomic<bool> cancelled{false};
    std::atomic<bool> lost{false};
    Heartbeat heartbeat(leases, lease, options_.heartbeat_ms, &lost,
                        &cancelled);

    std::optional<CellFailure> failure;
    std::optional<InjectedFault> injected;
    ExperimentResult result;
    bool adopted = false;
    int attempt = 0;
    for (;;) {
      ++attempt;
      failure.reset();
      try {
        adopted = false;
        if (auto cached = store.results().load(jcell.spec_hash)) {
          // Another worker stored this result but died before journaling
          // it (the commit order is store-then-journal): adopt it rather
          // than recompute — identical bytes either way.
          result = std::move(*cached);
          adopted = true;
        } else {
          SimBudget budget;
          budget.cancel = &cancelled;  // heartbeat loss and watchdog share it
          budget.max_events = options_.max_cell_events;
          budget.max_rss_bytes = options_.max_cell_rss_bytes;
          CellWatchdog watchdog(options_.cell_timeout, &cancelled);
          if (!faults.empty()) {
            if (auto f = faults.next(cell.name)) {
              injected = f;
              execute_injected_fault(*f, &cancelled);
            }
          }
          result = run_experiment(cell.spec, &budget);
          if (!store.results().store(jcell.spec_hash, result)) {
            throw CacheIoError("fleet: cannot store result for " +
                               cache_key_hex(jcell.spec_hash) + " under " +
                               store.manifest().results_dir());
          }
        }
      } catch (const BudgetExceeded& e) {
        failure = CellFailure{cell.name, budget_failure_class(e.kind()),
                              e.what(), jcell.spec_hash, attempt};
      } catch (const check::AuditViolationError& e) {
        failure = CellFailure{cell.name, FailureClass::kAuditViolation,
                              e.what(), jcell.spec_hash, attempt};
      } catch (const CacheIoError& e) {
        failure = CellFailure{cell.name, FailureClass::kCacheIo, e.what(),
                              jcell.spec_hash, attempt};
      } catch (const std::exception& e) {
        failure = CellFailure{cell.name, FailureClass::kException, e.what(),
                              jcell.spec_hash, attempt};
      }
      if (lost.load(std::memory_order_relaxed)) break;
      if (!failure) break;
      if (failure_is_transient(failure->cls) && attempt <= options_.retries) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(retry_backoff(attempt).ns()));
        continue;
      }
      break;
    }
    heartbeat.stop();

    // The fencing check: commit only while the on-disk lease still equals
    // the handle we claimed. A worker resurrected after its TTL finds a
    // different (worker, fence) pair — or no lease — and walks away.
    if (lost.load(std::memory_order_relaxed) || !leases.still_held(lease)) {
      stats.lost = true;
      if (options_.progress) {
        std::fprintf(stderr, "[ccas_fleet %s] cell %s: lease lost, abandoned\n",
                     options_.worker_id.c_str(), cell.name.c_str());
      }
      return stats;
    }

    if (!failure) {
      store.manifest().record_ok(jcell.spec_hash, attempt,
                                 fnv1a64(serialize_result(result)),
                                 options_.worker_id, lease.fence);
      stats.committed = true;
      stats.ok = true;
      stats.adopted = adopted;
      if (options_.progress) {
        std::fprintf(stderr, "[ccas_fleet %s] cell %s: ok%s\n",
                     options_.worker_id.c_str(), cell.name.c_str(),
                     adopted ? " (adopted from results store)" : "");
      }
    } else {
      try {
        store.manifest().record_failure(*failure, options_.worker_id);
      } catch (const std::exception& e) {
        log_warn("fleet manifest: %s", e.what());
      }
      QuarantineContext ctx;
      ctx.cell_timeout = options_.cell_timeout;
      ctx.max_cell_events = options_.max_cell_events;
      ctx.max_cell_rss_bytes = options_.max_cell_rss_bytes;
      if (injected) {
        ctx.injection_env = "seed=" + std::to_string(cell.spec.seed) + ":" +
                            injected_fault_name(*injected);
      }
      (void)write_quarantine_file(store.quarantine_dir(), cell, *failure, ctx);
      stats.committed = true;
      if (options_.progress) {
        std::fprintf(stderr, "[ccas_fleet %s] cell %s: FAILED [%s]\n",
                     options_.worker_id.c_str(), cell.name.c_str(),
                     failure_class_name(failure->cls));
      }
    }
    leases.release(lease);
    return stats;
  };

  uint64_t last_progress_ms = leases.now_ms();
  size_t last_covered = 0;
  for (;;) {
    store.manifest().reload();
    bool progressed = false;
    for (size_t i = 0; i < store.grid().size(); ++i) {
      const JobCell& jcell = store.grid()[i];
      const auto rec = store.manifest().lookup(jcell.spec_hash);
      if (rec) {
        if (rec->ok) continue;
        // Determinism violations are sticky (manifest.h) — re-running
        // cannot settle which digest was right. Other journaled failures
        // are eligible for one re-attempt per worker.
        if (rec->cls == FailureClass::kDeterminism) continue;
        if (handled.count(jcell.spec_hash)) continue;
      }
      auto lease = leases.claim(jcell.spec_hash);
      if (!lease) continue;
      if (rec) ++summary.reattempts;
      handled.insert(jcell.spec_hash);
      const CellWorkStats stats =
          work_cell(jcell, sweep.cells[i], *lease);
      if (stats.committed) {
        progressed = true;
        if (stats.adopted) ++summary.adopted;
        else if (stats.ok) ++summary.computed;
      }
      if (stats.lost) ++summary.lost_leases;
    }

    store.manifest().reload();
    size_t covered = 0;
    for (const JobCell& jcell : store.grid()) {
      const auto rec = store.manifest().lookup(jcell.spec_hash);
      if (!rec) continue;
      // A non-sticky failure record counts as covered only once this
      // worker has spent its re-attempt on it (or wrote it itself);
      // otherwise the next pass claims it.
      if (rec->ok || rec->cls == FailureClass::kDeterminism ||
          handled.count(jcell.spec_hash)) {
        ++covered;
      }
    }
    const uint64_t now = leases.now_ms();
    if (covered == store.grid().size()) {
      summary.complete = true;
      break;
    }
    if (progressed || covered != last_covered) {
      last_progress_ms = now;
      last_covered = covered;
    } else if (options_.stall_timeout_ms > 0 &&
               now - last_progress_ms >= options_.stall_timeout_ms) {
      log_warn("fleet worker %s: no progress for %llu ms with %zu cells "
               "uncovered; giving up (exit 5)",
               options_.worker_id.c_str(),
               static_cast<unsigned long long>(now - last_progress_ms),
               store.grid().size() - covered);
      break;
    }
    // Uncovered cells are leased by other workers (or waiting out a dead
    // worker's TTL): sleep a heartbeat and look again.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min<uint64_t>(options_.heartbeat_ms,
                                                     200)));
  }

  for (const JobCell& jcell : store.grid()) {
    const auto rec = store.manifest().lookup(jcell.spec_hash);
    if (!rec) continue;
    if (rec->ok) ++summary.ok;
    else ++summary.failed;
  }
  summary.report = render_fleet_report(store);
  summary.exit_code = fleet_exit_code(store);
  summary.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return summary;
}

std::string render_fleet_report(FleetStore& store) {
  std::string out;
  int ok = 0;
  int failed = 0;
  int pending = 0;
  for (const JobCell& jcell : store.grid()) {
    const auto rec = store.manifest().lookup(jcell.spec_hash);
    out += "cell " + jcell.name + " [" + cache_key_hex(jcell.spec_hash) + "]: ";
    if (!rec) {
      out += "pending\n";
      ++pending;
    } else if (rec->ok) {
      out += "ok";
      if (rec->digest != 0) out += " digest=" + cache_key_hex(rec->digest);
      out += "\n";
      ++ok;
    } else {
      out += std::string("FAILED [") + failure_class_name(rec->cls) + "] " +
             rec->what + "\n";
      ++failed;
    }
  }
  out += "fleet job: " + std::to_string(store.grid().size()) + " cells, " +
         std::to_string(ok) + " ok, " + std::to_string(failed) + " failed, " +
         std::to_string(pending) + " pending\n";
  return out;
}

int fleet_exit_code(FleetStore& store) {
  bool any_pending = false;
  bool any_deterministic = false;
  bool any_budget = false;
  bool any_transient = false;
  for (const JobCell& jcell : store.grid()) {
    const auto rec = store.manifest().lookup(jcell.spec_hash);
    if (!rec) {
      any_pending = true;
    } else if (rec->ok) {
      continue;
    } else if (failure_is_budget(rec->cls)) {
      any_budget = true;
    } else if (failure_is_transient(rec->cls)) {
      any_transient = true;
    } else {
      any_deterministic = true;
    }
  }
  if (any_pending) return 5;
  if (any_deterministic) return 2;
  if (any_budget) return 3;
  if (any_transient) return 4;
  return 0;
}

}  // namespace ccas::sweep::fleet
