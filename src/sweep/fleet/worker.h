// The fleet worker (DESIGN.md §14): the claim → compute → commit loop one
// ccas_fleet process runs against a shared FleetStore until the manifest
// covers the frozen grid.
//
// Per pass over the grid, a worker tries to lease every cell the
// manifest does not yet cover (plus — once per worker per cell — cells
// with a journaled failure, mirroring how a single-process --resume
// retries journaled failures). A claimed cell is computed under the same
// supervision the thread-pool executor applies (budgets, wall-clock
// watchdog, fault injection, bounded deterministic retry for transient
// classes) while a heartbeat thread renews the lease every heartbeat
// interval; a renewal that discovers the lease was reclaimed cancels the
// in-flight simulation cooperatively and the cell is abandoned without a
// journal entry — its new holder owns the commit. Before committing, the
// worker re-checks lease possession (the fencing-token equality check in
// lease.h): a worker resurrected after a stall never double-commits over
// its cell's new holder. The commit order is results-store first, journal
// append second, so a crash between the two leaves a cache entry the next
// claimant adopts (journals without recomputing).
//
// Completion is coordinator-less: a worker keeps passing over the grid —
// sleeping between passes while other workers hold live leases — until
// every grid cell has a manifest record, then renders the final report
// (a pure function of manifest + grid, so every worker renders identical
// bytes) and exits. There is no "done" message and no coordinator to
// crash: a worker SIGKILLed mid-cell simply stops renewing, its lease
// expires, and any surviving worker reclaims the cell. An optional stall
// timeout bounds the wait when every remaining lease belongs to a worker
// that can no longer make progress the clock won't reveal (exit code 5,
// tools/EXIT_CODES.md).
#pragma once

#include <cstdint>
#include <string>

#include "src/sweep/executor.h"
#include "src/sweep/fleet/lease.h"
#include "src/sweep/fleet/store.h"
#include "src/sweep/sweep_spec.h"
#include "src/util/units.h"

namespace ccas::sweep::fleet {

struct FleetOptions {
  std::string dir;        // the shared store directory (required)
  std::string worker_id;  // "" → "w<pid>"
  uint64_t lease_ttl_ms = 30'000;
  uint64_t heartbeat_ms = 0;  // 0 → lease_ttl_ms / 3
  // Give up (exit incomplete) when no new manifest record appears for
  // this long while uncovered cells remain; 0 waits forever.
  uint64_t stall_timeout_ms = 0;
  std::string cache_salt = std::string(kSweepCodeSalt);

  // Supervision, mirroring SweepOptions (executor.h).
  TimeDelta cell_timeout = TimeDelta::zero();
  uint64_t max_cell_events = 0;
  int64_t max_cell_rss_bytes = 0;
  int retries = 2;
  bool progress = true;

  // Injectable for lease-lifecycle tests; {} = wall clock.
  ClockMsFn clock;
};

struct FleetSummary {
  int total_cells = 0;
  int ok = 0;           // grid cells covered ok at exit
  int failed = 0;       // grid cells covered by a failure record at exit
  int computed = 0;     // cells this worker simulated and committed
  int adopted = 0;      // cells committed from a found results-store entry
  int reattempts = 0;   // journaled failures this worker re-ran
  int lost_leases = 0;  // computes abandoned because the lease was lost
  bool complete = false;  // manifest covers the grid
  double wall_sec = 0.0;
  // The final report (render_fleet_report) — identical bytes from every
  // worker that observes the complete manifest. Rendered (with pending
  // cells listed) even when incomplete.
  std::string report;
  // tools/EXIT_CODES.md: 0 ok, 2/3/4 by worst failure class, 5 incomplete.
  int exit_code = 0;
};

class FleetWorker {
 public:
  // Validates options (throws std::invalid_argument on an empty dir, a
  // zero TTL, or a heartbeat >= TTL).
  explicit FleetWorker(FleetOptions options);

  // Joins (creating if needed) the store for `sweep` and works cells to
  // completion. Store/salt/grid mismatches throw std::invalid_argument.
  [[nodiscard]] FleetSummary run(const SweepSpec& sweep);

  [[nodiscard]] const FleetOptions& options() const { return options_; }

 private:
  FleetOptions options_;
};

// The deterministic final report: one line per grid cell in grid order
// (ok + digest, or failure class + message), then a coverage summary.
// Derived from manifest + grid only — wall clock, worker ids, and
// attempt counts are deliberately excluded so every renderer agrees.
[[nodiscard]] std::string render_fleet_report(FleetStore& store);

// Exit code for the store's current state (reload before calling):
// 0 all ok, 2 deterministic failures, 3 budget, 4 transient-exhausted,
// 5 uncovered cells remain. Precedence: 5 > 2 > 3 > 4.
[[nodiscard]] int fleet_exit_code(FleetStore& store);

}  // namespace ccas::sweep::fleet
