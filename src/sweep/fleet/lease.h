// Per-cell filesystem leases for the sweep fleet (DESIGN.md §14): the
// mutual-exclusion primitive that lets independent ccas_fleet worker
// processes divide one sweep grid between them with no coordinator.
//
// One lease file per claimed cell, named by the cell's canonical spec
// hash:
//
//   <leases dir>/<16-hex spec hash>.lease
//
// holding a single line `lease worker=<id> fence=<n> expires=<ms>`.
// The protocol rests on two filesystem atomicities:
//
//   * claim: O_CREAT|O_EXCL — exactly one creator wins a free name.
//   * reclaim: rename() of an expired lease to a private name — exactly
//     one stealer wins; the new lease is then created with the stolen
//     fence + 1.
//
// Fencing is by (worker, fence) equality, not fence comparison: a worker
// that stalls past its TTL, loses its lease to a reclaim, and wakes up
// later finds the on-disk pair no longer matches the handle it holds and
// must abandon the cell instead of committing. Equality makes fence
// regressions harmless — a fresh O_EXCL claim that restarts at fence 1
// after a steal/release cycle still differs from every previously issued
// handle in the worker component (a worker holds at most one in-flight
// claim per cell at a time).
//
// Expiry uses wall-clock milliseconds shared across processes; the clock
// is injectable so lease lifecycle tests can compress hours of
// kill/expiry/resume schedules into microseconds. A lease whose body is
// torn (creator died between O_EXCL create and its single write) is
// treated as immediately reclaimable: the write window is two syscalls
// wide, and a live creator racing a stealer is protected by the fencing
// equality check, not by the TTL.
//
// Liveness, not safety, is what leases buy here: cell results are pure
// functions of their spec, so even a double-compute after a lost lease
// commits identical bytes, and the manifest's digest check (manifest.h)
// catches the only harmful case — divergent binaries sharing a store.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace ccas::sweep::fleet {

// Milliseconds; must be comparable across worker processes (wall clock).
using ClockMsFn = std::function<uint64_t()>;

// The default clock: wall-clock milliseconds since the Unix epoch.
[[nodiscard]] uint64_t wall_clock_ms();

// A held (or once-held) lease handle. The (worker, fence) pair is the
// holder's identity; expires_ms is advisory to the holder (renewals push
// it forward on disk without changing the handle).
struct Lease {
  uint64_t spec_hash = 0;
  std::string worker;
  uint64_t fence = 0;
  uint64_t expires_ms = 0;
};

class LeaseDir {
 public:
  // Creates `dir` if missing (throws std::runtime_error when it cannot).
  // `ttl_ms` must be positive. A default-constructed `clock` uses
  // wall_clock_ms.
  LeaseDir(std::string dir, std::string worker_id, uint64_t ttl_ms,
           ClockMsFn clock = {});

  // Attempts to claim the cell. Returns the held lease, or nullopt when
  // a live (unexpired) holder exists or every atomic step lost its race
  // — never blocks, never spins; callers poll on their own schedule.
  [[nodiscard]] std::optional<Lease> claim(uint64_t spec_hash);

  // Pushes the on-disk expiry to now + TTL. False when the on-disk lease
  // no longer matches the handle (expired and reclaimed): the caller has
  // lost the cell and must not commit it.
  [[nodiscard]] bool renew(const Lease& lease);

  // True while the on-disk lease still matches the handle. An expired
  // but not-yet-reclaimed lease is still held — reclaiming requires the
  // rename, so the handle stays exclusive until a stealer wins it.
  [[nodiscard]] bool still_held(const Lease& lease) const;

  // Removes the lease after commit (only when still held — a reclaimed
  // lease belongs to its new holder and is left alone).
  void release(const Lease& lease);

  [[nodiscard]] uint64_t now_ms() const { return clock_(); }
  [[nodiscard]] uint64_t ttl_ms() const { return ttl_ms_; }
  [[nodiscard]] const std::string& worker_id() const { return worker_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string lease_path(uint64_t spec_hash) const;

 private:
  [[nodiscard]] std::optional<Lease> read_lease(const std::string& path,
                                                uint64_t spec_hash) const;
  [[nodiscard]] bool write_lease_fd(int fd, const Lease& lease) const;

  std::string dir_;
  std::string worker_;
  uint64_t ttl_ms_;
  ClockMsFn clock_;
  std::atomic<uint64_t> steal_counter_{0};  // unique private steal names
};

}  // namespace ccas::sweep::fleet
