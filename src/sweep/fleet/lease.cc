#include "src/sweep/fleet/lease.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/sweep/spec_hash.h"

namespace ccas::sweep::fleet {

uint64_t wall_clock_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

LeaseDir::LeaseDir(std::string dir, std::string worker_id, uint64_t ttl_ms,
                   ClockMsFn clock)
    : dir_(std::move(dir)),
      worker_(std::move(worker_id)),
      ttl_ms_(ttl_ms),
      clock_(clock ? std::move(clock) : ClockMsFn(&wall_clock_ms)) {
  if (ttl_ms_ == 0) {
    throw std::invalid_argument("lease TTL must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create lease dir '" + dir_ +
                             "': " + ec.message());
  }
}

std::string LeaseDir::lease_path(uint64_t spec_hash) const {
  return dir_ + "/" + cache_key_hex(spec_hash) + ".lease";
}

bool LeaseDir::write_lease_fd(int fd, const Lease& lease) const {
  char buf[160];
  const int len = std::snprintf(
      buf, sizeof(buf), "lease worker=%s fence=%llu expires=%llu\n",
      lease.worker.c_str(), static_cast<unsigned long long>(lease.fence),
      static_cast<unsigned long long>(lease.expires_ms));
  if (len <= 0 || len >= static_cast<int>(sizeof(buf))) return false;
  // A single write: a lease body is either whole or absent (torn only
  // when the creator died between O_EXCL create and this write — which
  // claim() treats as immediately reclaimable).
  return ::write(fd, buf, static_cast<size_t>(len)) == len && ::fsync(fd) == 0;
}

std::optional<Lease> LeaseDir::read_lease(const std::string& path,
                                          uint64_t spec_hash) const {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::istringstream fields(line);
  std::string tag;
  if (!(fields >> tag) || tag != "lease") return std::nullopt;
  Lease lease;
  lease.spec_hash = spec_hash;
  bool have_worker = false;
  bool have_fence = false;
  bool have_expires = false;
  std::string field;
  while (fields >> field) {
    if (field.rfind("worker=", 0) == 0) {
      lease.worker = field.substr(7);
      have_worker = !lease.worker.empty();
    } else if (field.rfind("fence=", 0) == 0) {
      lease.fence = std::strtoull(field.c_str() + 6, nullptr, 10);
      have_fence = lease.fence > 0;
    } else if (field.rfind("expires=", 0) == 0) {
      lease.expires_ms = std::strtoull(field.c_str() + 8, nullptr, 10);
      have_expires = true;
    }
  }
  if (!have_worker || !have_fence || !have_expires) return std::nullopt;
  return lease;
}

std::optional<Lease> LeaseDir::claim(uint64_t spec_hash) {
  const std::string path = lease_path(spec_hash);

  // Fast path: the name is free and O_EXCL makes us its only creator.
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd >= 0) {
    Lease lease{spec_hash, worker_, /*fence=*/1, now_ms() + ttl_ms_};
    const bool ok = write_lease_fd(fd, lease);
    ::close(fd);
    if (!ok) {
      ::unlink(path.c_str());
      return std::nullopt;
    }
    return lease;
  }
  if (errno != EEXIST) return std::nullopt;

  // Existing lease: live holders are left alone; expired (or torn — see
  // header) leases are reclaimed through the rename, whose single winner
  // inherits the fence.
  uint64_t stolen_fence = 0;
  if (const auto current = read_lease(path, spec_hash)) {
    if (current->expires_ms > now_ms()) return std::nullopt;
    stolen_fence = current->fence;
  }
  const std::string steal_path =
      path + ".steal." + worker_ + "." +
      std::to_string(steal_counter_.fetch_add(1, std::memory_order_relaxed));
  if (::rename(path.c_str(), steal_path.c_str()) != 0) {
    return std::nullopt;  // lost the steal race (or the holder released)
  }
  // Re-read through the stolen name: the dying creator's write may have
  // landed between our first read and the rename.
  if (const auto stolen = read_lease(steal_path, spec_hash)) {
    stolen_fence = stolen->fence;
  }
  ::unlink(steal_path.c_str());

  fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return std::nullopt;  // a fresh claimant won the free name
  Lease lease{spec_hash, worker_, stolen_fence + 1, now_ms() + ttl_ms_};
  const bool ok = write_lease_fd(fd, lease);
  ::close(fd);
  if (!ok) {
    ::unlink(path.c_str());
    return std::nullopt;
  }
  return lease;
}

bool LeaseDir::renew(const Lease& lease) {
  const std::string path = lease_path(lease.spec_hash);
  const auto current = read_lease(path, lease.spec_hash);
  if (!current || current->worker != lease.worker ||
      current->fence != lease.fence) {
    return false;  // reclaimed out from under us
  }
  // Rewrite through a private temp + rename-over. A stealer that renames
  // the lease away inside this window gets clobbered by our rename-over;
  // that worker's still_held/renew then fails and it abandons — benign,
  // because results are deterministic and the manifest digest check
  // backstops the one harmful case.
  const std::string tmp = path + ".renew." + worker_;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  Lease renewed = lease;
  renewed.expires_ms = now_ms() + ttl_ms_;
  const bool ok = write_lease_fd(fd, renewed);
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool LeaseDir::still_held(const Lease& lease) const {
  const auto current = read_lease(lease_path(lease.spec_hash), lease.spec_hash);
  return current && current->worker == lease.worker &&
         current->fence == lease.fence;
}

void LeaseDir::release(const Lease& lease) {
  if (still_held(lease)) {
    ::unlink(lease_path(lease.spec_hash).c_str());
  }
}

}  // namespace ccas::sweep::fleet
