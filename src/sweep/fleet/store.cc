#include "src/sweep/fleet/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/sweep/spec_hash.h"
#include "src/util/logging.h"

namespace ccas::sweep::fleet {

namespace {

constexpr std::string_view kJobHeaderPrefix = "ccas-fleet-job v1 salt=";
constexpr int kCreateAttempts = 3;

bool parse_hex16(const std::string& text, uint64_t& value) {
  if (text.size() != 16) return false;
  value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return true;
}

}  // namespace

FleetStore::FleetStore(std::string dir, const SweepSpec& sweep,
                       std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {
  std::vector<JobCell> expected;
  expected.reserve(sweep.cells.size());
  for (const SweepCell& cell : sweep.cells) {
    expected.push_back({spec_cache_key(cell.spec, salt_), cell.name});
  }
  open_or_create(&expected);
}

FleetStore::FleetStore(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {
  open_or_create(nullptr);
}

void FleetStore::open_or_create(const std::vector<JobCell>* expected) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create fleet store dir '" + dir_ +
                             "': " + ec.message());
  }

  for (int attempt = 0; attempt < kCreateAttempts; ++attempt) {
    if (!std::filesystem::exists(job_path())) {
      if (expected == nullptr) {
        throw std::runtime_error("fleet store " + dir_ +
                                 " has no job.spec — nothing to report on "
                                 "(start a worker with a grid first)");
      }
      // Publication may lose a race (EEXIST): fall through to the parse,
      // which verifies whatever the winner froze.
      (void)try_create(*expected);
    }
    if (!parse_job_file()) {
      // Torn trailer: the freezing host crashed before the file's bytes
      // were durable. With a grid in hand, repair by re-freezing; a
      // report-only open cannot.
      if (expected == nullptr) {
        throw std::runtime_error("fleet store " + dir_ +
                                 " has a torn job.spec (missing `end` "
                                 "trailer) and no worker has repaired it");
      }
      log_warn("fleet store: repairing torn %s", job_path().c_str());
      ::unlink(job_path().c_str());
      continue;
    }
    if (expected != nullptr) {
      if (grid_.size() != expected->size()) {
        throw std::invalid_argument(
            "fleet store " + dir_ + " was frozen with " +
            std::to_string(grid_.size()) + " cells but this invocation asks "
            "for " + std::to_string(expected->size()) +
            " — all workers of one job must be launched with the same grid");
      }
      for (size_t i = 0; i < grid_.size(); ++i) {
        if (grid_[i].spec_hash != (*expected)[i].spec_hash) {
          throw std::invalid_argument(
              "fleet store " + dir_ + " grid mismatch at cell " +
              std::to_string(i) + " ('" + grid_[i].name + "'): frozen hash " +
              cache_key_hex(grid_[i].spec_hash) + " vs this invocation's " +
              cache_key_hex((*expected)[i].spec_hash) +
              " — all workers of one job must be launched with the same "
              "flags and binary version");
        }
      }
    }
    // Manifest construction re-checks the salt (throws invalid_argument)
    // and creates the shared journal; ResultCache creates results/.
    manifest_ = std::make_unique<SweepManifest>(dir_, salt_);
    results_ = std::make_unique<ResultCache>(manifest_->results_dir());
    return;
  }
  throw std::runtime_error("fleet store " + dir_ +
                           ": could not freeze job.spec after " +
                           std::to_string(kCreateAttempts) + " attempts");
}

bool FleetStore::try_create(const std::vector<JobCell>& grid) {
  std::string text(kJobHeaderPrefix);
  text += salt_;
  text += "\n";
  for (const JobCell& cell : grid) {
    text += "cell " + cache_key_hex(cell.spec_hash) + " " + cell.name + "\n";
  }
  text += "end " + std::to_string(grid.size()) + "\n";

  // The temp name must be unique per creator, not just per process: fleet
  // workers can share this directory from different hosts (colliding
  // pids) or — in tests — from threads of one process, and a shared temp
  // name lets one racer unlink the file another is about to link().
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp = job_path() + ".tmp." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("fleet store: cannot write " + tmp + ": " +
                             std::strerror(errno));
  }
  const bool written =
      ::write(fd, text.data(), text.size()) ==
          static_cast<ssize_t>(text.size()) &&
      ::fsync(fd) == 0;
  ::close(fd);
  if (!written) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("fleet store: short write to " + tmp);
  }
  // link(), not rename(): first-wins atomic publication. A loser keeps
  // the frozen winner's file intact and verifies against it instead.
  const bool published = ::link(tmp.c_str(), job_path().c_str()) == 0;
  if (!published && errno != EEXIST) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("fleet store: cannot publish " + job_path() +
                             ": " + std::strerror(errno));
  }
  ::unlink(tmp.c_str());
  return published;
}

bool FleetStore::parse_job_file() {
  grid_.clear();
  std::ifstream in(job_path());
  if (!in) {
    throw std::runtime_error("fleet store: cannot read " + job_path());
  }
  std::string line;
  if (!std::getline(in, line)) return false;  // empty = torn
  if (line.rfind(kJobHeaderPrefix, 0) != 0) {
    throw std::invalid_argument("fleet store " + job_path() +
                                " has an unrecognized header; refusing "
                                "to join");
  }
  const std::string file_salt(line.substr(kJobHeaderPrefix.size()));
  if (file_salt != salt_) {
    throw std::invalid_argument(
        "fleet store " + job_path() + " was frozen under salt '" + file_salt +
        "' but this build uses salt '" + salt_ +
        "'; its grid was hashed by different simulator code — start a "
        "fresh store");
  }
  bool saw_end = false;
  size_t declared = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "cell") {
      std::string hash_text;
      JobCell cell;
      if (!(fields >> hash_text) || !parse_hex16(hash_text, cell.spec_hash)) {
        return false;  // torn mid-line
      }
      std::getline(fields, cell.name);
      if (!cell.name.empty() && cell.name.front() == ' ') {
        cell.name.erase(0, 1);
      }
      grid_.push_back(std::move(cell));
    } else if (tag == "end") {
      if (!(fields >> declared)) return false;
      saw_end = true;
      break;
    } else {
      return false;
    }
  }
  return saw_end && declared == grid_.size();
}

std::vector<JobCell> FleetStore::uncovered() const {
  std::vector<JobCell> out;
  for (const JobCell& cell : grid_) {
    if (!manifest_->lookup(cell.spec_hash)) out.push_back(cell);
  }
  return out;
}

}  // namespace ccas::sweep::fleet
