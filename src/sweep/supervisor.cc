#include "src/sweep/supervisor.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

#include "src/check/audit.h"
#include "src/harness/cli.h"
#include "src/sim/budget.h"
#include "src/sweep/spec_hash.h"
#include "src/util/logging.h"

namespace ccas::sweep {

namespace {

std::chrono::nanoseconds to_chrono(TimeDelta d) {
  return std::chrono::nanoseconds(d.ns());
}

}  // namespace

// ---- failure taxonomy ----------------------------------------------------

const char* failure_class_name(FailureClass cls) {
  switch (cls) {
    case FailureClass::kException: return "exception";
    case FailureClass::kAuditViolation: return "audit-violation";
    case FailureClass::kBudgetWall: return "budget-wall-clock";
    case FailureClass::kBudgetEvents: return "budget-events";
    case FailureClass::kBudgetRss: return "budget-rss";
    case FailureClass::kCacheIo: return "cache-io";
    case FailureClass::kDeterminism: return "determinism-violation";
  }
  return "unknown";
}

std::optional<FailureClass> failure_class_from_name(std::string_view name) {
  for (const FailureClass cls :
       {FailureClass::kException, FailureClass::kAuditViolation,
        FailureClass::kBudgetWall, FailureClass::kBudgetEvents,
        FailureClass::kBudgetRss, FailureClass::kCacheIo,
        FailureClass::kDeterminism}) {
    if (name == failure_class_name(cls)) return cls;
  }
  return std::nullopt;
}

bool failure_is_transient(FailureClass cls) {
  return cls == FailureClass::kCacheIo;
}

bool failure_is_budget(FailureClass cls) {
  return cls == FailureClass::kBudgetWall || cls == FailureClass::kBudgetEvents ||
         cls == FailureClass::kBudgetRss;
}

TimeDelta retry_backoff(int attempt) {
  if (attempt < 1) attempt = 1;
  const int shift = attempt - 1 > 4 ? 4 : attempt - 1;
  TimeDelta d = TimeDelta::millis(10LL << shift);
  const TimeDelta cap = TimeDelta::millis(200);
  return d < cap ? d : cap;
}

// ---- wall-clock watchdog -------------------------------------------------

CellWatchdog::CellWatchdog(TimeDelta timeout, std::atomic<bool>* expired) {
  if (timeout <= TimeDelta::zero() || expired == nullptr) return;
  thread_ = std::thread([this, timeout, expired] {
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, to_chrono(timeout), [this] { return disarmed_; })) {
      return;  // cell finished in time
    }
    expired->store(true, std::memory_order_relaxed);
  });
}

CellWatchdog::~CellWatchdog() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    disarmed_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

// ---- fault injection (test-only) -----------------------------------------

const char* injected_fault_name(InjectedFault f) {
  switch (f) {
    case InjectedFault::kThrow: return "throw";
    case InjectedFault::kAudit: return "audit";
    case InjectedFault::kHang: return "hang";
    case InjectedFault::kEvents: return "events";
    case InjectedFault::kRss: return "rss";
    case InjectedFault::kCacheIo: return "cacheio";
  }
  return "unknown";
}

std::vector<FaultInjection> parse_fault_injections(std::string_view env_value) {
  std::vector<FaultInjection> out;
  size_t start = 0;
  while (start <= env_value.size()) {
    size_t end = env_value.find(';', start);
    if (end == std::string_view::npos) end = env_value.size();
    const std::string_view entry = env_value.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    // "<cell>:<class>[:<count>]" — split from the right: cell names may
    // themselves contain ':' but classes and counts never do.
    FaultInjection inj;
    size_t cls_end = entry.size();
    const size_t last_colon = entry.rfind(':');
    if (last_colon == std::string_view::npos) {
      throw std::invalid_argument("CCAS_FAIL_CELL entry '" + std::string(entry) +
                                  "' wants <cell>:<class>[:<count>]");
    }
    const std::string_view last_field = entry.substr(last_colon + 1);
    bool last_is_count = !last_field.empty();
    for (const char c : last_field) last_is_count = last_is_count && c >= '0' && c <= '9';
    size_t cls_start;
    if (last_is_count) {
      inj.count = std::atoi(std::string(last_field).c_str());
      if (inj.count <= 0) {
        throw std::invalid_argument("CCAS_FAIL_CELL count must be >= 1 in '" +
                                    std::string(entry) + "'");
      }
      cls_end = last_colon;
      const size_t cls_colon = entry.rfind(':', last_colon - 1);
      if (cls_colon == std::string_view::npos) {
        throw std::invalid_argument("CCAS_FAIL_CELL entry '" + std::string(entry) +
                                    "' wants <cell>:<class>[:<count>]");
      }
      cls_start = cls_colon + 1;
    } else {
      cls_start = last_colon + 1;
    }
    const std::string_view cls_name = entry.substr(cls_start, cls_end - cls_start);
    inj.cell = std::string(entry.substr(0, cls_start - 1));
    if (inj.cell.empty()) {
      throw std::invalid_argument("CCAS_FAIL_CELL entry '" + std::string(entry) +
                                  "' has an empty cell name");
    }
    bool known = false;
    for (const InjectedFault f :
         {InjectedFault::kThrow, InjectedFault::kAudit, InjectedFault::kHang,
          InjectedFault::kEvents, InjectedFault::kRss, InjectedFault::kCacheIo}) {
      if (cls_name == injected_fault_name(f)) {
        inj.fault = f;
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("CCAS_FAIL_CELL unknown fault class '" +
                                  std::string(cls_name) +
                                  "' (want throw|audit|hang|events|rss|cacheio)");
    }
    out.push_back(std::move(inj));
  }
  return out;
}

FaultPlan::FaultPlan(std::vector<FaultInjection> injections)
    : injections_(std::move(injections)) {}

FaultPlan FaultPlan::from_env() {
  const char* v = std::getenv("CCAS_FAIL_CELL");
  if (v == nullptr || v[0] == '\0') return FaultPlan{};
  return FaultPlan(parse_fault_injections(v));
}

std::optional<InjectedFault> FaultPlan::next(const std::string& cell) {
  std::lock_guard<std::mutex> lock(mu_);
  for (FaultInjection& inj : injections_) {
    if (inj.cell == cell && inj.count > 0) {
      --inj.count;
      return inj.fault;
    }
  }
  return std::nullopt;
}

void execute_injected_fault(InjectedFault fault, const std::atomic<bool>* cancel) {
  switch (fault) {
    case InjectedFault::kThrow:
      throw std::runtime_error("injected fault: throw");
    case InjectedFault::kAudit:
      throw check::AuditViolationError(
          "injected fault: audit violation (1 violation, conservation.packets)");
    case InjectedFault::kEvents:
      throw BudgetExceeded(BudgetExceeded::Kind::kSimEvents,
                           "injected fault: simulated-event budget exceeded");
    case InjectedFault::kRss:
      throw BudgetExceeded(BudgetExceeded::Kind::kRssEstimate,
                           "injected fault: estimated RSS over ceiling");
    case InjectedFault::kCacheIo:
      throw CacheIoError("injected fault: cache write failed (ENOSPC)");
    case InjectedFault::kHang: {
      // Behave like a hung cell as observed by the supervisor: make no
      // progress until the watchdog cancels us. The 5 s cap keeps a hang
      // injected without a watchdog from stalling a test run forever.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (std::chrono::steady_clock::now() < deadline) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          throw BudgetExceeded(BudgetExceeded::Kind::kWallClock,
                               "injected hang cancelled by the watchdog");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      throw std::runtime_error(
          "injected hang: no watchdog fired within 5s (set --cell-timeout)");
    }
  }
}

// ---- quarantine (minimal repro) ------------------------------------------

std::string write_quarantine_file(const std::string& dir, const SweepCell& cell,
                                  const CellFailure& failure,
                                  const QuarantineContext& ctx) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec && !std::filesystem::is_directory(dir)) {
    log_warn("sweep quarantine: cannot create %s: %s", dir.c_str(),
             ec.message().c_str());
    return "";
  }
  const std::string path = dir + "/" + cache_key_hex(failure.spec_hash) + ".repro";

  const SpecCliRendering cli = spec_to_cli(cell.spec);
  std::string replay;
  if (!ctx.injection_env.empty()) {
    replay += "CCAS_FAIL_CELL='" + ctx.injection_env + "' ";
  }
  replay += "ccas_run";
  for (const std::string& arg : cli.args) replay += " " + arg;
  // Budget flags so budget-class failures replay with the same ceilings.
  char buf[64];
  if (ctx.cell_timeout > TimeDelta::zero()) {
    std::snprintf(buf, sizeof(buf), " --cell-timeout=%.17g", ctx.cell_timeout.sec());
    replay += buf;
  }
  if (ctx.max_cell_events != 0) {
    std::snprintf(buf, sizeof(buf), " --cell-events=%llu",
                  static_cast<unsigned long long>(ctx.max_cell_events));
    replay += buf;
  }
  if (ctx.max_cell_rss_bytes > 0) {
    std::snprintf(buf, sizeof(buf), " --cell-rss=%.17g",
                  static_cast<double>(ctx.max_cell_rss_bytes) / 1e6);
    replay += buf;
  }

  std::string what_line = failure.what;
  const size_t nl = what_line.find('\n');
  if (nl != std::string::npos) what_line.resize(nl);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log_warn("sweep quarantine: cannot write %s", path.c_str());
    return "";
  }
  out << "# ccas sweep quarantine record\n"
      << "# cell: " << failure.cell << "\n"
      << "# spec-hash: " << cache_key_hex(failure.spec_hash) << "\n"
      << "# class: " << failure_class_name(failure.cls) << "\n"
      << "# attempts: " << failure.attempts << "\n"
      << "# error: " << what_line << "\n";
  for (const std::string& note : cli.notes) {
    out << "# note: " << note << "\n";
  }
  out << replay << "\n";
  out.flush();
  if (!out.good()) {
    log_warn("sweep quarantine: short write to %s", path.c_str());
    return "";
  }
  return path;
}

}  // namespace ccas::sweep
