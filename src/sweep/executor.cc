#include "src/sweep/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/harness/runner.h"
#include "src/sweep/progress.h"

namespace ccas::sweep {

SweepOptions sweep_options_from_env() {
  SweepOptions opts;
  if (const char* v = std::getenv("CCAS_JOBS")) {
    const int jobs = std::atoi(v);
    if (jobs > 0) opts.jobs = jobs;
  }
  if (const char* v = std::getenv("CCAS_CACHE_DIR")) {
    opts.cache_dir = v;
  }
  if (const char* v = std::getenv("CCAS_NO_CACHE")) {
    if (v[0] != '\0' && v[0] != '0') opts.use_cache = false;
  }
  return opts;
}

SweepExecutor::SweepExecutor(SweepOptions options) : options_(std::move(options)) {}

std::vector<CellOutcome> SweepExecutor::run(const SweepSpec& sweep) {
  const auto sweep_start = std::chrono::steady_clock::now();

  std::unique_ptr<ResultCache> cache;
  if (options_.use_cache && !options_.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(options_.cache_dir);
  }

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min(jobs, static_cast<int>(std::max<size_t>(sweep.cells.size(), 1)));

  std::vector<CellOutcome> outcomes(sweep.cells.size());
  ProgressReporter progress(sweep.name.empty() ? "sweep" : sweep.name,
                            static_cast<int>(sweep.cells.size()),
                            options_.progress);

  std::atomic<size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<bool> abort{false};

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sweep.cells.size()) return;
      const SweepCell& cell = sweep.cells[i];
      CellOutcome& out = outcomes[i];
      out.name = cell.name;
      out.cache_key = spec_cache_key(cell.spec, options_.cache_salt);
      const bool cacheable = cell.spec.trace_interval <= TimeDelta::zero();
      const auto cell_start = std::chrono::steady_clock::now();
      try {
        if (cache && cacheable) {
          if (auto cached = cache->load(out.cache_key)) {
            out.result = std::move(*cached);
            out.from_cache = true;
          }
        }
        if (!out.from_cache) {
          out.result = run_experiment(cell.spec);
          if (cache && cacheable) cache->store(out.cache_key, out.result);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      out.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   cell_start)
                         .count();
      progress.cell_done(out.name, out.from_cache, out.result.sim_events,
                         out.wall_sec);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);

  progress.finish();
  summary_ = SweepSummary{};
  summary_.total_cells = static_cast<int>(sweep.cells.size());
  summary_.jobs = jobs;
  summary_.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();
  for (const CellOutcome& out : outcomes) {
    if (out.from_cache) {
      ++summary_.from_cache;
    } else {
      summary_.sim_events += out.result.sim_events;
    }
  }
  return outcomes;
}

}  // namespace ccas::sweep
