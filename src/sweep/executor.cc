#include "src/sweep/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/check/audit.h"
#include "src/harness/runner.h"
#include "src/sim/budget.h"
#include "src/sweep/manifest.h"
#include "src/sweep/progress.h"
#include "src/sweep/wire.h"
#include "src/util/logging.h"

namespace ccas::sweep {

namespace {

FailureClass budget_failure_class(BudgetExceeded::Kind kind) {
  switch (kind) {
    case BudgetExceeded::Kind::kWallClock: return FailureClass::kBudgetWall;
    case BudgetExceeded::Kind::kSimEvents: return FailureClass::kBudgetEvents;
    case BudgetExceeded::Kind::kRssEstimate: return FailureClass::kBudgetRss;
  }
  return FailureClass::kException;
}

}  // namespace

SweepOptions sweep_options_from_env() {
  SweepOptions opts;
  if (const char* v = std::getenv("CCAS_JOBS")) {
    const int jobs = std::atoi(v);
    if (jobs > 0) opts.jobs = jobs;
  }
  if (const char* v = std::getenv("CCAS_CACHE_DIR")) {
    opts.cache_dir = v;
  }
  if (const char* v = std::getenv("CCAS_NO_CACHE")) {
    if (v[0] != '\0' && v[0] != '0') opts.use_cache = false;
  }
  return opts;
}

SweepExecutor::SweepExecutor(SweepOptions options) : options_(std::move(options)) {}

std::vector<CellOutcome> SweepExecutor::run(const SweepSpec& sweep) {
  const auto sweep_start = std::chrono::steady_clock::now();

  std::unique_ptr<ResultCache> cache;
  if (options_.use_cache && !options_.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(options_.cache_dir);
  }

  // The manifest (resume_dir) is self-contained: its own journal, its own
  // results store (independent of the ordinary cache, which may be shared
  // or disabled), and its quarantine directory. Construction throws
  // std::invalid_argument on a salt mismatch — a resume across simulator
  // versions must be refused loudly, not silently recomputed into a mixed
  // journal.
  std::unique_ptr<SweepManifest> manifest;
  std::unique_ptr<ResultCache> manifest_results;
  if (!options_.resume_dir.empty()) {
    manifest = std::make_unique<SweepManifest>(options_.resume_dir,
                                               options_.cache_salt);
    manifest_results = std::make_unique<ResultCache>(manifest->results_dir());
  }
  std::string quarantine_dir = options_.quarantine_dir;
  if (quarantine_dir.empty() && manifest) {
    quarantine_dir = manifest->quarantine_dir();
  }

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min(jobs, static_cast<int>(std::max<size_t>(sweep.cells.size(), 1)));

  std::vector<CellOutcome> outcomes(sweep.cells.size());
  // Names and keys are prefilled so cells skipped after a max_failures
  // abort still report coherently (status kSkipped, name intact).
  for (size_t i = 0; i < sweep.cells.size(); ++i) {
    outcomes[i].name = sweep.cells[i].name;
    outcomes[i].cache_key = spec_cache_key(sweep.cells[i].spec, options_.cache_salt);
  }

  ProgressReporter progress(sweep.name.empty() ? "sweep" : sweep.name,
                            static_cast<int>(sweep.cells.size()),
                            options_.progress);
  FaultPlan faults = FaultPlan::from_env();

  std::atomic<size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<bool> abort{false};
  std::atomic<int> terminal_failures{0};

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sweep.cells.size()) return;
      const SweepCell& cell = sweep.cells[i];
      CellOutcome& out = outcomes[i];
      const bool cacheable = cell.spec.trace_interval <= TimeDelta::zero();
      const auto cell_start = std::chrono::steady_clock::now();
      auto cell_elapsed = [&cell_start] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             cell_start)
            .count();
      };

      // Resume short-circuit: a journaled-ok cacheable cell is served from
      // the manifest's results store without re-running. A journaled-ok
      // cell whose stored result is missing or corrupt — and any traced
      // cell — falls through and recomputes (deterministic, so identical).
      // Journaled *failures* are never short-circuited: resuming is the
      // natural moment to retry them, and deterministic ones will simply
      // reproduce.
      if (manifest && cacheable) {
        if (const ManifestRecord* rec = manifest->find(out.cache_key);
            rec != nullptr && rec->ok) {
          if (auto stored = manifest_results->load(out.cache_key)) {
            out.result = std::move(*stored);
            out.status = CellStatus::kOk;
            out.from_cache = true;
            out.resumed = true;
            out.attempts = rec->attempts;
            out.wall_sec = cell_elapsed();
            progress.cell_done(out.name, /*from_cache=*/true,
                               out.result.sim_events, out.wall_sec);
            continue;
          }
        }
      }

      std::optional<CellFailure> failure;
      std::optional<InjectedFault> injected;
      int attempt = 0;
      for (;;) {
        ++attempt;
        failure.reset();
        std::exception_ptr eptr;
        try {
          if (!out.from_cache && cache && cacheable) {
            if (auto cached = cache->load(out.cache_key)) {
              out.result = std::move(*cached);
              out.from_cache = true;
            }
          }
          if (!out.from_cache) {
            // Budget scope: the cancellation token and watchdog live
            // exactly as long as this attempt; the watchdog joins (in its
            // destructor) before the token leaves scope.
            std::atomic<bool> cancelled{false};
            SimBudget budget;
            if (options_.cell_timeout > TimeDelta::zero()) {
              budget.cancel = &cancelled;
            }
            budget.max_events = options_.max_cell_events;
            budget.max_rss_bytes = options_.max_cell_rss_bytes;
            CellWatchdog watchdog(options_.cell_timeout, &cancelled);
            if (!faults.empty()) {
              if (auto f = faults.next(cell.name)) {
                injected = f;
                execute_injected_fault(*f, &cancelled);
              }
            }
            out.result =
                run_experiment(cell.spec, budget.any() ? &budget : nullptr);
            if (cache && cacheable) {
              (void)cache->store(out.cache_key, out.result);  // best-effort
            }
          }
          if (manifest && cacheable) {
            // Resume integrity depends on the manifest's own results
            // store and journal, so unlike the ordinary cache their
            // failures are not best-effort: they surface as the transient
            // kCacheIo class and go through the retry/backoff path.
            if (!manifest_results->store(out.cache_key, out.result)) {
              throw CacheIoError("sweep manifest: cannot store result for " +
                                 cache_key_hex(out.cache_key) + " under " +
                                 manifest->results_dir());
            }
          }
          if (manifest && cacheable) {
            // The digest lets a later multi-worker (fleet) run — or a
            // resume on another host — verify byte-identity instead of
            // trusting it: divergent duplicates surface as structured
            // determinism-violation failures on replay.
            manifest->record_ok(out.cache_key, attempt,
                                fnv1a64(serialize_result(out.result)));
          } else if (manifest) {
            manifest->record_ok(out.cache_key, attempt);
          }
        } catch (const BudgetExceeded& e) {
          eptr = std::current_exception();
          failure = CellFailure{cell.name, budget_failure_class(e.kind()),
                                e.what(), out.cache_key, attempt};
        } catch (const check::AuditViolationError& e) {
          eptr = std::current_exception();
          failure = CellFailure{cell.name, FailureClass::kAuditViolation,
                                e.what(), out.cache_key, attempt};
        } catch (const CacheIoError& e) {
          eptr = std::current_exception();
          failure = CellFailure{cell.name, FailureClass::kCacheIo, e.what(),
                                out.cache_key, attempt};
        } catch (const std::exception& e) {
          eptr = std::current_exception();
          failure = CellFailure{cell.name, FailureClass::kException, e.what(),
                                out.cache_key, attempt};
        }
        if (!failure) break;  // success

        if (options_.fail_fast) {
          // Legacy contract: first failure aborts the sweep and is
          // rethrown (as the original exception) after all workers stop.
          if (manifest) {
            try {
              manifest->record_failure(*failure);
            } catch (const std::exception& e) {
              log_warn("sweep manifest: %s", e.what());
            }
          }
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = eptr;
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        if (failure_is_transient(failure->cls) && attempt <= options_.retries) {
          progress.cell_retry(cell.name, failure_class_name(failure->cls),
                              attempt);
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(retry_backoff(attempt).ns()));
          continue;
        }
        break;  // terminal failure
      }
      out.attempts = attempt;
      out.wall_sec = cell_elapsed();

      if (!failure) {
        out.status = CellStatus::kOk;
        progress.cell_done(out.name, out.from_cache, out.result.sim_events,
                           out.wall_sec);
        continue;
      }

      // Terminal failure: capture it in the outcome (an explicit hole in
      // the partial results), journal it, quarantine a minimal repro, and
      // keep the sweep going.
      out.status = CellStatus::kFailed;
      out.result = ExperimentResult{};
      out.failure = failure;
      if (manifest) {
        try {
          manifest->record_failure(*failure);
        } catch (const std::exception& e) {
          log_warn("sweep manifest: %s", e.what());
        }
      }
      if (!quarantine_dir.empty()) {
        QuarantineContext ctx;
        ctx.cell_timeout = options_.cell_timeout;
        ctx.max_cell_events = options_.max_cell_events;
        ctx.max_cell_rss_bytes = options_.max_cell_rss_bytes;
        if (injected) {
          // Single-cell replays through ccas_run name their cell
          // "seed=<n>", so the injection env is rewritten to match.
          ctx.injection_env = "seed=" + std::to_string(cell.spec.seed) + ":" +
                              injected_fault_name(*injected);
        }
        (void)write_quarantine_file(quarantine_dir, cell, *failure, ctx);
      }
      progress.cell_failed(out.name, failure_class_name(failure->cls),
                           failure->attempts);
      if (options_.max_failures > 0 &&
          terminal_failures.fetch_add(1, std::memory_order_relaxed) + 1 >=
              options_.max_failures) {
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);

  progress.finish();
  summary_ = SweepSummary{};
  failures_.clear();
  summary_.total_cells = static_cast<int>(sweep.cells.size());
  summary_.jobs = jobs;
  summary_.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();
  for (const CellOutcome& out : outcomes) {
    if (out.attempts > 1) summary_.retries += out.attempts - 1;
    if (out.resumed) ++summary_.resumed;
    switch (out.status) {
      case CellStatus::kOk:
        if (out.from_cache) {
          ++summary_.from_cache;
        } else {
          summary_.sim_events += out.result.sim_events;
        }
        break;
      case CellStatus::kFailed:
        ++summary_.failed;
        failures_.push_back(*out.failure);
        break;
      case CellStatus::kSkipped:
        ++summary_.skipped;
        break;
    }
  }
  return outcomes;
}

}  // namespace ccas::sweep
