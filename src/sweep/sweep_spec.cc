#include "src/sweep/sweep_spec.h"

#include <utility>

#include "src/sweep/wire.h"

namespace ccas::sweep {

uint64_t derive_cell_seed(uint64_t base_seed, std::string_view cell_name) {
  // SplitMix64-style finalizer over the name hash keyed by the base seed:
  // well-mixed even for cell names differing in one character.
  uint64_t z = fnv1a64(cell_name) ^ (base_seed * 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

SweepCell& SweepSpec::add_cell(std::string cell_name, ExperimentSpec spec) {
  cells.push_back(SweepCell{std::move(cell_name), std::move(spec)});
  return cells.back();
}

SweepCell& SweepSpec::add_cell_derived_seed(std::string cell_name,
                                            ExperimentSpec spec) {
  spec.seed = derive_cell_seed(base_seed, cell_name);
  return add_cell(std::move(cell_name), std::move(spec));
}

}  // namespace ccas::sweep
