#include "src/sweep/spec_hash.h"

#include <cstdio>

#include "src/sweep/wire.h"

namespace ccas::sweep {

namespace {

// Field tags keep the encoding self-delimiting: reordering or removing a
// field changes the byte stream even if the raw values happen to align.
void tagged_i64(std::string& out, std::string_view tag, int64_t v) {
  put_string(out, tag);
  put_i64(out, v);
}

void tagged_u64(std::string& out, std::string_view tag, uint64_t v) {
  put_string(out, tag);
  put_u64(out, v);
}

void tagged_bool(std::string& out, std::string_view tag, bool v) {
  put_string(out, tag);
  put_bool(out, v);
}

void tagged_double(std::string& out, std::string_view tag, double v) {
  put_string(out, tag);
  put_double(out, v);
}

void tagged_string(std::string& out, std::string_view tag, std::string_view v) {
  put_string(out, tag);
  put_string(out, v);
}

}  // namespace

std::string canonical_spec_bytes(const ExperimentSpec& spec) {
  std::string out;
  out.reserve(512);

  const Scenario& sc = spec.scenario;
  tagged_i64(out, "setting", static_cast<int64_t>(sc.setting));
  tagged_i64(out, "net.rate_bps", sc.net.bottleneck_rate.bits_per_sec());
  tagged_i64(out, "net.buffer", sc.net.buffer_bytes);
  tagged_i64(out, "net.pairs", sc.net.num_pairs);
  tagged_i64(out, "net.edge_rate_bps", sc.net.edge_rate.bits_per_sec());
  tagged_i64(out, "net.edge_buffer", sc.net.edge_buffer_bytes);
  tagged_i64(out, "net.jitter_ns", sc.net.jitter.ns());
  tagged_u64(out, "net.jitter_seed", sc.net.jitter_seed);
  // Appended only when the impairment stage is active, so every
  // pre-impairment spec keeps its historical byte encoding, cache keys and
  // golden digests. force_stage is deliberately NOT encoded: an inert
  // stage never alters behaviour (like spec.audit).
  const ImpairmentConfig& imp = sc.net.impairments;
  if (imp.enabled()) {
    tagged_double(out, "imp.loss", imp.loss);
    tagged_double(out, "imp.ge.p_gb", imp.ge.p_good_to_bad);
    tagged_double(out, "imp.ge.p_bg", imp.ge.p_bad_to_good);
    tagged_double(out, "imp.ge.loss_bad", imp.ge.loss_bad);
    tagged_double(out, "imp.ge.loss_good", imp.ge.loss_good);
    tagged_double(out, "imp.dup", imp.duplicate);
    tagged_double(out, "imp.reorder", imp.reorder);
    tagged_i64(out, "imp.reorder_delay_ns", imp.reorder_delay.ns());
    tagged_i64(out, "imp.jitter_ns", imp.jitter.ns());
    tagged_i64(out, "imp.jitter_dist", static_cast<int64_t>(imp.jitter_dist));
    tagged_u64(out, "imp.seed", imp.seed);
    tagged_u64(out, "imp.faults", imp.faults.size());
    for (const LinkFault& f : imp.faults) {
      tagged_i64(out, "imp.f.at_ns", f.at.ns());
      tagged_i64(out, "imp.f.kind", static_cast<int64_t>(f.kind));
      tagged_i64(out, "imp.f.rate_bps", f.rate.bits_per_sec());
      tagged_i64(out, "imp.f.buffer", f.buffer_bytes);
    }
  }
  // Same append-only pattern for the qdisc block: drop-tail (the default)
  // encodes nothing, so every pre-qdisc spec keeps its historical byte
  // encoding, cache keys and golden digests.
  const QdiscConfig& qd = sc.net.qdisc;
  if (qd.enabled()) {
    tagged_string(out, "qd.kind", qdisc_kind_name(qd.kind));
    tagged_bool(out, "qd.ecn", qd.ecn);
    tagged_i64(out, "qd.codel_target_ns", qd.codel_target.ns());
    tagged_i64(out, "qd.codel_interval_ns", qd.codel_interval.ns());
    tagged_u64(out, "qd.fq_flows", qd.fq_flows);
    tagged_i64(out, "qd.fq_quantum", qd.fq_quantum);
    tagged_i64(out, "qd.pie_target_ns", qd.pie_target.ns());
    tagged_i64(out, "qd.pie_tupdate_ns", qd.pie_tupdate.ns());
    tagged_double(out, "qd.pie_alpha", qd.pie_alpha);
    tagged_double(out, "qd.pie_beta", qd.pie_beta);
    tagged_double(out, "qd.pie_mark_ecnth", qd.pie_mark_ecnth);
    tagged_double(out, "qd.red_wq", qd.red_wq);
    tagged_i64(out, "qd.red_min", qd.red_min_bytes);
    tagged_i64(out, "qd.red_max", qd.red_max_bytes);
    tagged_double(out, "qd.red_max_p", qd.red_max_p);
    tagged_bool(out, "qd.red_gentle", qd.red_gentle);
    tagged_u64(out, "qd.seed", qd.seed);
  }
  tagged_i64(out, "stagger_ns", sc.stagger.ns());
  tagged_i64(out, "warmup_ns", sc.warmup.ns());
  tagged_i64(out, "measure_ns", sc.measure.ns());

  tagged_u64(out, "groups", spec.groups.size());
  for (const FlowGroup& g : spec.groups) {
    tagged_string(out, "g.cca", g.cca);
    tagged_i64(out, "g.count", g.count);
    tagged_i64(out, "g.rtt_ns", g.rtt.ns());
  }

  tagged_u64(out, "seed", spec.seed);

  tagged_u64(out, "tcp.iw", spec.tcp.initial_cwnd);
  tagged_u64(out, "tcp.max_window", spec.tcp.max_window);
  tagged_u64(out, "tcp.dup_thresh", spec.tcp.dup_thresh);
  tagged_bool(out, "tcp.sack", spec.tcp.sack_enabled);
  tagged_u64(out, "tcp.data_segments", spec.tcp.data_segments);
  tagged_i64(out, "tcp.min_rto_ns", spec.tcp.rtt.min_rto.ns());
  tagged_i64(out, "tcp.max_rto_ns", spec.tcp.rtt.max_rto.ns());
  tagged_i64(out, "tcp.initial_rto_ns", spec.tcp.rtt.initial_rto.ns());
  // Appended conditionally so every pre-existing spec (slack disabled)
  // keeps its historical byte encoding, cache keys and golden digests.
  if (spec.tcp.rto_rearm_slack > TimeDelta::zero()) {
    tagged_i64(out, "tcp.rto_slack_ns", spec.tcp.rto_rearm_slack.ns());
  }

  tagged_bool(out, "rcv.delack", spec.receiver.delayed_ack);
  tagged_u64(out, "rcv.delack_segs", spec.receiver.delack_segment_threshold);
  tagged_i64(out, "rcv.delack_timeout_ns", spec.receiver.delack_timeout.ns());
  tagged_bool(out, "rcv.gro", spec.receiver.gro_enabled);
  tagged_i64(out, "rcv.gro_flush_ns", spec.receiver.gro_flush_timeout.ns());
  tagged_u64(out, "rcv.gro_max_segs", spec.receiver.gro_max_segments);

  tagged_i64(out, "conv.window_ns", spec.convergence_window.ns());
  tagged_i64(out, "conv.poll_ns", spec.convergence_poll.ns());
  tagged_double(out, "conv.tolerance", spec.convergence_tolerance);

  tagged_bool(out, "drop_log", spec.record_drop_log);
  tagged_bool(out, "cong_log", spec.record_congestion_log);
  // spec.audit is deliberately NOT encoded: the auditor is observational,
  // so an audited run may share a cache entry with a bare one.

  tagged_i64(out, "trace.interval_ns", spec.trace_interval.ns());
  tagged_u64(out, "trace.flows", spec.trace_flows.size());
  for (const uint32_t id : spec.trace_flows) tagged_u64(out, "trace.flow", id);

  // Appended only when sharded, so every single-shard spec keeps its
  // historical byte encoding, cache keys and golden digests. (Results are
  // byte-identical across shard counts — the shard field is still encoded
  // so a cached result records which execution mode produced it.)
  if (spec.shards != 1) tagged_i64(out, "shards", spec.shards);

  // Appended only when the open-loop workload is enabled, so every
  // pre-workload spec keeps its historical byte encoding, cache keys and
  // golden digests. Empirical CDFs are encoded by value (every point), not
  // by path: two files with the same content share a cache entry.
  const WorkloadSpec& wl = spec.workload;
  if (wl.enabled()) {
    tagged_i64(out, "wl.arrival", static_cast<int64_t>(wl.arrival));
    tagged_double(out, "wl.rate", wl.arrivals_per_sec);
    tagged_u64(out, "wl.max_concurrent", wl.max_concurrent);
    tagged_u64(out, "wl.classes", wl.classes.size());
    for (const WorkloadClass& c : wl.classes) {
      tagged_string(out, "wl.c.name", c.name);
      tagged_double(out, "wl.c.weight", c.weight);
      tagged_string(out, "wl.c.cca", c.cca);
      tagged_i64(out, "wl.c.rtt_ns", c.rtt.ns());
      tagged_i64(out, "wl.c.size.kind", static_cast<int64_t>(c.size.kind));
      tagged_u64(out, "wl.c.size.min", c.size.min_segments);
      tagged_u64(out, "wl.c.size.max", c.size.max_segments);
      tagged_double(out, "wl.c.size.alpha", c.size.pareto_alpha);
      tagged_double(out, "wl.c.size.mu", c.size.lognormal_mu);
      tagged_double(out, "wl.c.size.sigma", c.size.lognormal_sigma);
      tagged_u64(out, "wl.c.size.fixed", c.size.fixed_segments);
      tagged_u64(out, "wl.c.size.cdf", c.size.empirical.size());
      for (const EmpiricalPoint& p : c.size.empirical) {
        tagged_double(out, "wl.c.size.cdf.p", p.cum_prob);
        tagged_u64(out, "wl.c.size.cdf.segs", p.segments);
      }
      tagged_i64(out, "wl.c.app", static_cast<int64_t>(c.app));
      tagged_u64(out, "wl.c.app_burst", c.app_burst_segments);
      tagged_i64(out, "wl.c.app_gap_ns", c.app_gap.ns());
    }
  }

  return out;
}

uint64_t spec_cache_key(const ExperimentSpec& spec, std::string_view salt) {
  std::string bytes;
  put_string(bytes, salt);
  bytes += canonical_spec_bytes(spec);
  return fnv1a64(bytes);
}

std::string cache_key_hex(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace ccas::sweep
