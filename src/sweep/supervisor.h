// Cell supervision for the sweep executor: failure taxonomy, deterministic
// retry/backoff, the per-cell wall-clock watchdog, test-only fault
// injection, and minimal-repro (quarantine) emission.
//
// The supervision contract (DESIGN.md §9):
//
//   * A failing cell never takes the sweep down (unless fail_fast): the
//     failure is captured as a structured CellFailure and the remaining
//     cells keep running.
//   * Failure classes split into deterministic (exception, audit
//     violation, budget blowouts — re-running the same spec reproduces
//     them, so retrying is wasted work and they quarantine immediately)
//     and transient (cache/manifest I/O — retried with bounded,
//     deterministic exponential backoff).
//   * Retries cannot change results: a cell's outcome is a pure function
//     of its spec, so a retry that succeeds is byte-identical to a
//     first-attempt success; the backoff schedule is fixed (no jitter) so
//     supervised runs are reproducible in wall-clock shape too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/sweep/sweep_spec.h"
#include "src/util/units.h"

namespace ccas::sweep {

// ---- failure taxonomy ----------------------------------------------------

enum class FailureClass {
  kException,       // deterministic: the cell threw (bad spec, logic error)
  kAuditViolation,  // deterministic: invariant auditor tripped (CCAS_CHECK)
  kBudgetWall,      // budget: wall-clock watchdog cancelled the cell
  kBudgetEvents,    // budget: simulated-event ceiling
  kBudgetRss,       // budget: estimated peak RSS ceiling
  kCacheIo,         // transient: result-cache/manifest I/O (ENOSPC, ...)
  kDeterminism,     // deterministic: two workers journaled the same spec
                    // hash with different result digests — the simulator
                    // is nondeterministic or the binaries differ
};

[[nodiscard]] const char* failure_class_name(FailureClass cls);
[[nodiscard]] std::optional<FailureClass> failure_class_from_name(
    std::string_view name);
// Transient classes are retried (with backoff); deterministic ones
// quarantine immediately — re-running the same spec reproduces them.
[[nodiscard]] bool failure_is_transient(FailureClass cls);
[[nodiscard]] bool failure_is_budget(FailureClass cls);

// One cell's terminal failure, kept alongside the partial results.
struct CellFailure {
  std::string cell;                           // cell name
  FailureClass cls = FailureClass::kException;
  std::string what;                           // exception message / report
  uint64_t spec_hash = 0;                     // canonical spec cache key
  int attempts = 1;                           // attempts consumed (>= 1)
};

// Thrown by supervised cache/manifest writes whose failure must not be
// silently swallowed (resume integrity depends on them); classified as
// the transient kCacheIo and retried.
class CacheIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Deterministic exponential backoff before retry `attempt` (1-based count
// of attempts already made): 10ms, 20ms, 40ms, ... capped at 200ms. No
// jitter — supervised sweeps must be reproducible end to end.
[[nodiscard]] TimeDelta retry_backoff(int attempt);

// ---- wall-clock watchdog -------------------------------------------------

// Arms a one-shot timer on construction: if `timeout` elapses before
// destruction, `*expired` is set and the simulator's cooperative budget
// check turns it into BudgetExceeded(kWallClock) at the next poll.
// Destruction disarms and joins. A zero/negative timeout is inert (no
// thread is spawned), so callers need no conditionals.
class CellWatchdog {
 public:
  CellWatchdog(TimeDelta timeout, std::atomic<bool>* expired);
  ~CellWatchdog();
  CellWatchdog(const CellWatchdog&) = delete;
  CellWatchdog& operator=(const CellWatchdog&) = delete;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

// ---- fault injection (test-only) -----------------------------------------

// CCAS_FAIL_CELL syntax: "<cell>:<class>[:<count>][;<cell>:<class>...]".
// Classes: throw, audit, hang, events, rss, cacheio. `count` (default 1)
// is how many attempts of that cell fail before the injection is spent —
// "c:cacheio:2" with --retries=2 fails twice, then the third attempt
// succeeds, exercising the retry path end to end.
enum class InjectedFault { kThrow, kAudit, kHang, kEvents, kRss, kCacheIo };

[[nodiscard]] const char* injected_fault_name(InjectedFault f);

struct FaultInjection {
  std::string cell;
  InjectedFault fault = InjectedFault::kThrow;
  int count = 1;
};

// Throws std::invalid_argument on malformed syntax.
[[nodiscard]] std::vector<FaultInjection> parse_fault_injections(
    std::string_view env_value);

// Thread-safe per-attempt consumption of a parsed injection plan.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultInjection> injections);
  // Reads CCAS_FAIL_CELL; empty plan when unset.
  [[nodiscard]] static FaultPlan from_env();

  // The fault to inject into this attempt of `cell` (consuming one
  // count), or nullopt.
  [[nodiscard]] std::optional<InjectedFault> next(const std::string& cell);
  [[nodiscard]] bool empty() const { return injections_.empty(); }

 private:
  std::mutex mu_;
  std::vector<FaultInjection> injections_;
};

// Executes an injected fault at the top of a cell attempt: throws the
// exception the named class would produce. kHang blocks until `cancel`
// is set (the watchdog) and then throws BudgetExceeded(kWallClock), with
// a safety cap so a hang injected without a watchdog cannot stall a test
// run forever.
void execute_injected_fault(InjectedFault fault, const std::atomic<bool>* cancel);

// ---- quarantine (minimal repro) ------------------------------------------

struct QuarantineContext {
  TimeDelta cell_timeout = TimeDelta::zero();
  uint64_t max_cell_events = 0;
  int64_t max_cell_rss_bytes = 0;
  // CCAS_FAIL_CELL value reproducing an injected failure (empty = the
  // failure was organic and needs no env prefix).
  std::string injection_env;
};

// Writes <dir>/<16-hex spec hash>.repro: a commented header (cell, class,
// attempts, error) plus the exact `ccas_run` command line (seed, spec
// flags, budget flags, injection env) that replays the failing cell as a
// one-cell sweep. Creates `dir` if missing; returns the path, or "" if
// the file could not be written (quarantine is best-effort: it must
// never mask the failure it documents).
[[nodiscard]] std::string write_quarantine_file(const std::string& dir,
                                                const SweepCell& cell,
                                                const CellFailure& failure,
                                                const QuarantineContext& ctx);

}  // namespace ccas::sweep
