#include "src/sweep/progress.h"

#include <algorithm>
#include <cstdio>

namespace ccas::sweep {

namespace {

std::string format_events(double per_sec) {
  char buf[32];
  if (per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fk", per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", per_sec);
  }
  return buf;
}

}  // namespace

ProgressReporter::ProgressReporter(std::string label, int total_cells, bool enabled)
    : label_(std::move(label)),
      total_(total_cells),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::cell_done(const std::string& cell_name, bool from_cache,
                                 uint64_t sim_events, double cell_wall_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  if (from_cache) {
    ++cached_;
  } else {
    sim_events_ += sim_events;
    simulated_wall_sec_ += cell_wall_sec;
  }
  if (!enabled_) return;

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const int simulated = done_ - cached_;
  // ETA assumes remaining cells cost the mean *simulated* cell and run at
  // the observed worker parallelism (summed cell time / elapsed time).
  std::string eta = "?";
  if (simulated > 0 && elapsed > 0.0) {
    const double mean_cell = simulated_wall_sec_ / simulated;
    const double parallelism = std::max(simulated_wall_sec_ / elapsed, 1.0);
    const double remaining = mean_cell * (total_ - done_) / parallelism;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0fs", remaining);
    eta = buf;
  } else if (done_ == cached_) {
    eta = "0s";  // everything so far came from cache
  }
  const double events_rate =
      simulated_wall_sec_ > 0.0
          ? static_cast<double>(sim_events_) / simulated_wall_sec_
          : 0.0;
  std::fprintf(stderr, "[%s] %d/%d cells (%d cached) | %s ev/s | ETA %s | %s\n",
               label_.c_str(), done_, total_, cached_,
               format_events(events_rate).c_str(), eta.c_str(), cell_name.c_str());
}

void ProgressReporter::cell_retry(const std::string& cell_name,
                                  const char* failure_class, int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  std::fprintf(stderr, "[%s] retrying %s after transient %s (attempt %d)\n",
               label_.c_str(), cell_name.c_str(), failure_class, attempt);
}

void ProgressReporter::cell_failed(const std::string& cell_name,
                                   const char* failure_class, int attempts) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  ++failed_;
  if (!enabled_) return;
  std::fprintf(stderr, "[%s] %d/%d cells | FAILED %s [%s] after %d attempt%s\n",
               label_.c_str(), done_, total_, cell_name.c_str(), failure_class,
               attempts, attempts == 1 ? "" : "s");
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double events_rate =
      simulated_wall_sec_ > 0.0
          ? static_cast<double>(sim_events_) / simulated_wall_sec_
          : 0.0;
  std::string failed_note;
  if (failed_ > 0) {
    failed_note = ", " + std::to_string(failed_) + " FAILED";
  }
  std::fprintf(stderr,
               "[%s] done: %d cells (%d cached%s) in %.1fs | %s sim-events/s\n",
               label_.c_str(), done_, cached_, failed_note.c_str(), elapsed,
               format_events(events_rate).c_str());
}

}  // namespace ccas::sweep
