// Live sweep progress on stderr: cells done/total, cache hits, aggregate
// simulation throughput (sim-events/sec across workers) and a wall-clock
// ETA extrapolated from the mean simulated-cell duration. Thread-safe;
// one line is printed per completed cell so output works the same on
// terminals, CI logs, and under TSan.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace ccas::sweep {

class ProgressReporter {
 public:
  // `label` prefixes every line (typically the sweep name); disabled
  // reporters swallow updates so callers need no conditionals.
  ProgressReporter(std::string label, int total_cells, bool enabled);

  // Called by workers as each cell finishes.
  void cell_done(const std::string& cell_name, bool from_cache, uint64_t sim_events,
                 double cell_wall_sec);

  // A transient failure is being retried (attempt = attempts already made).
  void cell_retry(const std::string& cell_name, const char* failure_class,
                  int attempt);

  // The cell failed terminally; counts toward done (the sweep proceeds).
  void cell_failed(const std::string& cell_name, const char* failure_class,
                   int attempts);

  // Prints the closing summary line (wall time, events/sec, cache hits,
  // failures when any).
  void finish();

 private:
  std::string label_;
  int total_ = 0;
  bool enabled_ = false;

  std::mutex mu_;
  int done_ = 0;
  int cached_ = 0;
  int failed_ = 0;
  uint64_t sim_events_ = 0;
  double simulated_wall_sec_ = 0.0;  // summed across workers
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ccas::sweep
