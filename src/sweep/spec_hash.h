// Canonical content hash of an ExperimentSpec, used as the sweep result
// cache key. Every field that influences a simulation's outcome is folded
// into the hash (scenario, network, flow groups, TCP/receiver configs,
// convergence settings, seed, tracing), so two specs collide only if they
// would produce the same ExperimentResult.
//
// The key additionally mixes in a code-version salt: bump
// kSweepCodeSalt whenever a change anywhere in the simulator can alter
// results, and every stale cache entry is invalidated at once.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/harness/experiment.h"

namespace ccas::sweep {

// Bump the trailing number on any simulator-visible behaviour change.
inline constexpr std::string_view kSweepCodeSalt = "ccas-sim-v1";

// The canonical byte encoding of the spec (exposed for tests: two specs
// hash equal iff their canonical encodings are equal).
[[nodiscard]] std::string canonical_spec_bytes(const ExperimentSpec& spec);

// 64-bit cache key of `spec` under `salt`.
[[nodiscard]] uint64_t spec_cache_key(const ExperimentSpec& spec,
                                      std::string_view salt = kSweepCodeSalt);

// The key as the 16-hex-digit string used for cache file names.
[[nodiscard]] std::string cache_key_hex(uint64_t key);

}  // namespace ccas::sweep
