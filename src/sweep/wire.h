// Canonical little-endian byte encoding shared by the sweep cache key
// hasher and the on-disk result serializer. Using one fixed encoding for
// both means cache keys and cached payloads are identical across
// platforms and compiler versions (doubles are encoded bit-exactly).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ccas::sweep {

inline void put_u64(std::string& out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(bytes, 8);
}

inline void put_i64(std::string& out, int64_t v) {
  put_u64(out, static_cast<uint64_t>(v));
}

inline void put_u32(std::string& out, uint32_t v) {
  put_u64(out, v);
}

inline void put_bool(std::string& out, bool v) {
  put_u64(out, v ? 1 : 0);
}

inline void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<uint64_t>(v));
}

inline void put_string(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s.data(), s.size());
}

// Bounds-checked reader over a serialized buffer. All get_* return false
// once the buffer underruns (or a length prefix is implausible); callers
// treat any failure as a corrupt cache entry.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool get_u64(uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool get_i64(int64_t& v) {
    uint64_t u = 0;
    if (!get_u64(u)) return false;
    v = static_cast<int64_t>(u);
    return true;
  }

  bool get_u32(uint32_t& v) {
    uint64_t u = 0;
    if (!get_u64(u) || u > UINT32_MAX) return false;
    v = static_cast<uint32_t>(u);
    return true;
  }

  bool get_bool(bool& v) {
    uint64_t u = 0;
    if (!get_u64(u) || u > 1) return false;
    v = u != 0;
    return true;
  }

  bool get_double(double& v) {
    uint64_t u = 0;
    if (!get_u64(u)) return false;
    v = std::bit_cast<double>(u);
    return true;
  }

  bool get_string(std::string& s) {
    uint64_t n = 0;
    if (!get_u64(n) || pos_ + n > data_.size()) return false;
    s.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  // A count prefix for a vector whose elements take >= min_element_bytes;
  // rejects counts that could not possibly fit in the remaining buffer.
  bool get_count(uint64_t& n, size_t min_element_bytes) {
    if (!get_u64(n)) return false;
    return n <= (data_.size() - pos_) / std::max<size_t>(min_element_bytes, 1);
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// FNV-1a, 64-bit: small, dependency-free, and stable across platforms.
// Used for cache keys and payload checksums, not for security.
inline uint64_t fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ccas::sweep
