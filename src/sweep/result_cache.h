// On-disk cache of ExperimentResults keyed by the canonical spec hash
// (spec_hash.h). One file per cell under the cache directory:
//
//   <dir>/<16-hex key>.ccres
//
// File layout: 8-byte magic, format version, the key (sanity check), a
// length-prefixed payload (the serialized result), and an FNV-1a checksum
// of the payload. Entries that are truncated, bit-flipped, mis-keyed, or
// from another format version fail to load and are recomputed — a corrupt
// cache can cost time, never correctness.
//
// Writes go to a uniquely named temp file (pid + counter, so concurrent
// worker processes racing the same key never tear each other's temp) in
// the same directory, are fsync'd, and renamed into place; the directory
// is fsync'd after the rename so the committed name survives a host
// crash. Concurrent sweeps sharing a cache directory therefore see only
// complete entries; each write is verified after the rename (read back
// and byte-compared) and retried with a short backoff, so a transient
// write error (ENOSPC window, flaky network FS) costs milliseconds
// instead of leaving a torn entry behind. Results carrying a time-series trace are
// not cached (the trace is unbounded; the executor bypasses the cache
// for traced specs).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/harness/experiment.h"

namespace ccas::sweep {

// Serialization used by the cache files (exposed for tests).
[[nodiscard]] std::string serialize_result(const ExperimentResult& result);
[[nodiscard]] std::optional<ExperimentResult> deserialize_result(
    const std::string& payload);

class ResultCache {
 public:
  // Creates `dir` (and parents) if missing. Throws std::runtime_error if
  // the directory cannot be created.
  explicit ResultCache(std::string dir);

  // nullopt on miss, corruption, version or key mismatch.
  [[nodiscard]] std::optional<ExperimentResult> load(uint64_t key) const;

  // Best-effort: returns false (without throwing) if the entry could not
  // be written after kStoreAttempts verified tries — a read-only cache
  // dir degrades to cache-off. Each attempt writes a temp file, renames
  // it into place, re-reads the entry and byte-compares it against what
  // was meant to be written; a mismatch removes the bad entry and
  // retries after a short deterministic backoff.
  bool store(uint64_t key, const ExperimentResult& result) const;
  static constexpr int kStoreAttempts = 3;

  // Test-only: make the next `n` store attempts write a truncated entry
  // (simulating a torn write), which verify-after-rename must catch and
  // retry. Thread-safe; counts attempts, not store() calls.
  void inject_write_failures(int n) { fail_next_writes_.store(n); }

  [[nodiscard]] std::string entry_path(uint64_t key) const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  // fsync the cache directory so a just-renamed entry's name survives a
  // host crash. Best-effort: failure degrades to cache-off semantics.
  void sync_dir() const;

  std::string dir_;
  mutable std::atomic<int> fail_next_writes_{0};
};

}  // namespace ccas::sweep
