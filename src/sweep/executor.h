// Thread-pool sweep executor. Each cell is one complete, single-threaded,
// deterministic simulation (run_experiment), so cells parallelize with no
// shared mutable state: results are a pure function of each cell's spec
// and are byte-identical at any --jobs level. With a cache directory set,
// cells whose canonical spec hash is already on disk are served from the
// cache instead of simulated (result_cache.h); traced specs
// (trace_interval > 0) always simulate, since traces are not cached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/sweep_spec.h"

namespace ccas::sweep {

struct SweepOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency() (at least 1).
  int jobs = 0;
  // Result cache directory; empty disables caching entirely.
  std::string cache_dir;
  // When false, the cache is neither read nor written even if cache_dir
  // is set (the --no-cache flag).
  bool use_cache = true;
  // Live per-cell progress lines on stderr.
  bool progress = true;
  // Cache-key salt; defaults to the library's code-version salt.
  std::string cache_salt = std::string(kSweepCodeSalt);
};

// Reads CCAS_JOBS, CCAS_CACHE_DIR and CCAS_NO_CACHE into a SweepOptions
// (the benches' environment interface; CLI flags override on top).
[[nodiscard]] SweepOptions sweep_options_from_env();

struct CellOutcome {
  std::string name;
  uint64_t cache_key = 0;
  bool from_cache = false;
  double wall_sec = 0.0;
  ExperimentResult result;
};

struct SweepSummary {
  int total_cells = 0;
  int from_cache = 0;
  double wall_sec = 0.0;       // whole sweep, wall clock
  uint64_t sim_events = 0;     // simulated (non-cached) cells only
  int jobs = 0;                // resolved worker count
};

class SweepExecutor {
 public:
  explicit SweepExecutor(SweepOptions options = {});

  // Runs every cell and returns outcomes in cell order. Rethrows the
  // first cell failure (e.g. an invalid spec) after all workers stop.
  [[nodiscard]] std::vector<CellOutcome> run(const SweepSpec& sweep);

  // Statistics of the last run().
  [[nodiscard]] const SweepSummary& summary() const { return summary_; }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
  SweepSummary summary_;
};

}  // namespace ccas::sweep
