// Thread-pool sweep executor. Each cell is one complete, single-threaded,
// deterministic simulation (run_experiment), so cells parallelize with no
// shared mutable state: results are a pure function of each cell's spec
// and are byte-identical at any --jobs level. With a cache directory set,
// cells whose canonical spec hash is already on disk are served from the
// cache instead of simulated (result_cache.h); traced specs
// (trace_interval > 0) always simulate, since traces are not cached.
//
// Supervision (supervisor.h, manifest.h): per-cell budgets (wall-clock
// watchdog, simulated-event ceiling, estimated-RSS ceiling), failure
// isolation (a failing cell becomes a CellFailure in its outcome instead
// of aborting the sweep), bounded deterministic retry for transient
// failure classes, and a resumable on-disk manifest (resume_dir) whose
// journal lets an interrupted sweep skip every completed cell and still
// produce byte-identical results. fail_fast restores the legacy contract:
// abort on the first failure and rethrow it after all workers stop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/supervisor.h"
#include "src/sweep/sweep_spec.h"

namespace ccas::sweep {

struct SweepOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency() (at least 1).
  int jobs = 0;
  // Result cache directory; empty disables caching entirely.
  std::string cache_dir;
  // When false, the cache is neither read nor written even if cache_dir
  // is set (the --no-cache flag).
  bool use_cache = true;
  // Live per-cell progress lines on stderr.
  bool progress = true;
  // Cache-key salt; defaults to the library's code-version salt.
  std::string cache_salt = std::string(kSweepCodeSalt);

  // ---- supervision (budgets all off by default) -----------------------
  // Wall-clock watchdog per cell attempt; zero disables.
  TimeDelta cell_timeout = TimeDelta::zero();
  // Simulated-event ceiling per cell attempt; 0 disables.
  uint64_t max_cell_events = 0;
  // Estimated-peak-RSS ceiling per cell attempt, bytes; 0 disables.
  int64_t max_cell_rss_bytes = 0;
  // Retries for transient failure classes (cache/manifest I/O); each
  // retry backs off deterministically (supervisor.h). Deterministic
  // classes never retry regardless.
  int retries = 2;
  // Abort the sweep (skip unclaimed cells) after this many terminal cell
  // failures; 0 = never abort, run everything.
  int max_failures = 0;
  // Legacy contract: abort on the first failure and rethrow it from
  // run() after all workers stop. Mutually exclusive with max_failures.
  bool fail_fast = false;
  // Sweep manifest directory (--resume): journaled-ok cells are skipped
  // (served from <resume_dir>/results byte-identically), everything else
  // runs and is journaled. Empty disables the manifest entirely.
  std::string resume_dir;
  // Where failed cells write .repro replay files; empty defaults to
  // <resume_dir>/quarantine when a manifest is in use, else quarantine
  // emission is off.
  std::string quarantine_dir;
};

// Reads CCAS_JOBS, CCAS_CACHE_DIR and CCAS_NO_CACHE into a SweepOptions
// (the benches' environment interface; CLI flags override on top).
[[nodiscard]] SweepOptions sweep_options_from_env();

enum class CellStatus {
  kOk,       // result is valid (simulated, cached, or resumed)
  kFailed,   // failure holds the terminal CellFailure; result is empty
  kSkipped,  // sweep aborted (max_failures) before this cell was claimed
};

struct CellOutcome {
  std::string name;
  uint64_t cache_key = 0;
  CellStatus status = CellStatus::kSkipped;
  bool from_cache = false;
  // Served from the resume manifest without re-running.
  bool resumed = false;
  // Attempts consumed (0 for skipped cells, 1 for clean runs).
  int attempts = 0;
  double wall_sec = 0.0;
  ExperimentResult result;
  // Set iff status == kFailed.
  std::optional<CellFailure> failure;
};

struct SweepSummary {
  int total_cells = 0;
  int from_cache = 0;
  int failed = 0;
  int skipped = 0;
  int resumed = 0;
  int retries = 0;             // extra attempts beyond the first, summed
  double wall_sec = 0.0;       // whole sweep, wall clock
  uint64_t sim_events = 0;     // simulated (non-cached) cells only
  int jobs = 0;                // resolved worker count
};

class SweepExecutor {
 public:
  explicit SweepExecutor(SweepOptions options = {});

  // Runs every cell and returns outcomes in cell order — including the
  // failures, as explicit holes (CellStatus::kFailed) next to the
  // completed results. Only configuration errors throw: a manifest salt
  // mismatch (std::invalid_argument), an unusable manifest directory, or
  // — with fail_fast — the first cell failure, rethrown after all
  // workers stop (the legacy contract the benches rely on).
  [[nodiscard]] std::vector<CellOutcome> run(const SweepSpec& sweep);

  // Terminal failures of the last run(), in cell order.
  [[nodiscard]] const std::vector<CellFailure>& failures() const {
    return failures_;
  }

  // Statistics of the last run().
  [[nodiscard]] const SweepSummary& summary() const { return summary_; }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
  SweepSummary summary_;
  std::vector<CellFailure> failures_;
};

}  // namespace ccas::sweep
