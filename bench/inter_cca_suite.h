// Shared grid for the inter-CCA fairness figures (5-8): two flow groups
// with the same RTT competing at CoreScale, reporting the first group's
// share of aggregate throughput. Spec building and result analysis are
// split so the cells can be fanned out through the sweep executor.
#pragma once

#include <string>

#include "bench/bench_common.h"

namespace ccas::bench {

struct InterCcaCell {
  int nominal_a = 0;
  int actual_a = 0;
  int nominal_b = 0;
  int actual_b = 0;
  double share_a = 0.0;  // group A's fraction of aggregate goodput
  double jfi_a = 1.0;
  double jfi_b = 1.0;
  double utilization = 0.0;
  double goodput_a_bps = 0.0;
  double goodput_b_bps = 0.0;
};

struct InterCcaSpec {
  std::string name;  // stable cell key, e.g. "cubic-vs-newreno/1000/rtt=20"
  int nominal_a = 0;
  int actual_a = 0;
  int nominal_b = 0;
  int actual_b = 0;
  ExperimentSpec spec;
};

inline InterCcaSpec make_inter_cca_spec(const std::string& cca_a, int nominal_a,
                                        const std::string& cca_b, int nominal_b,
                                        int rtt_ms, const BenchDurations& durations,
                                        bool scale_group_a, uint64_t seed = 42) {
  double scale = 1.0;
  InterCcaSpec cell;
  cell.spec.scenario = make_scenario(Setting::kCoreScale, durations, &scale);
  cell.nominal_a = nominal_a;
  cell.nominal_b = nominal_b;
  // For "1 BBR vs thousands" the single flow stays single at any scale.
  cell.actual_a = scale_group_a ? scaled_flow_count(nominal_a, scale) : nominal_a;
  cell.actual_b = scaled_flow_count(nominal_b, scale);
  cell.spec.groups.push_back(
      FlowGroup{cca_a, cell.actual_a, TimeDelta::millis(rtt_ms)});
  cell.spec.groups.push_back(
      FlowGroup{cca_b, cell.actual_b, TimeDelta::millis(rtt_ms)});
  cell.spec.seed = seed;
  cell.spec.record_drop_log = false;  // not needed; saves RAM on long runs
  cell.name = cca_a + ":" + std::to_string(nominal_a) + "-vs-" + cca_b + ":" +
              std::to_string(nominal_b) + "/rtt=" + std::to_string(rtt_ms);
  return cell;
}

inline InterCcaCell analyze_inter_cca_cell(const InterCcaSpec& cell_spec,
                                           const ExperimentResult& result) {
  InterCcaCell cell;
  cell.nominal_a = cell_spec.nominal_a;
  cell.actual_a = cell_spec.actual_a;
  cell.nominal_b = cell_spec.nominal_b;
  cell.actual_b = cell_spec.actual_b;
  cell.share_a = result.groups[0].throughput_share;
  cell.jfi_a = result.groups[0].jfi;
  cell.jfi_b = result.groups[1].jfi;
  cell.utilization = result.utilization;
  cell.goodput_a_bps = result.groups[0].aggregate_goodput_bps;
  cell.goodput_b_bps = result.groups[1].aggregate_goodput_bps;
  return cell;
}

}  // namespace ccas::bench
