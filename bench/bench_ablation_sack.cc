// Ablation 4 (DESIGN.md): SACK vs non-SACK loss recovery — Mathis et al.'s
// original caveat that the halving-rate form of the model assumes TCP with
// selective acknowledgments. Without SACK, recovery leans on dupack
// counting and NewReno partial ACKs, with more RTOs under burst loss.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

struct SackCell {
  ccas::Setting setting;
  bool sack;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_ablation_sack", argc, argv);

  std::vector<SackCell> cells;
  for (const auto setting : {ccas::Setting::kEdgeScale, ccas::Setting::kCoreScale}) {
    for (const bool sack : {true, false}) {
      const bool edge = setting == ccas::Setting::kEdgeScale;
      const BenchDurations d =
          edge ? BenchDurations{2.0, 30.0, 120.0} : BenchDurations{2.0, 15.0, 45.0};
      double scale = 1.0;
      ccas::ExperimentSpec spec;
      spec.scenario = make_scenario(setting, d, &scale);
      const int flows = edge ? 30 : ccas::scaled_flow_count(3000, scale);
      spec.groups.push_back(
          ccas::FlowGroup{"newreno", flows, ccas::TimeDelta::millis(20)});
      spec.tcp.sack_enabled = sack;
      spec.seed = 42;
      cells.push_back(SackCell{setting, sack});
      bench.add(std::string(edge ? "EdgeScale" : "CoreScale") + "/sack=" +
                    (sack ? "on" : "off"),
                std::move(spec));
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_ablation_sack",
                {"setting", "sack", "util", "JFI", "RTOs/flow", "retransmits/flow"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const ccas::ExperimentResult& result = outcomes[i].result;
    double rtos = 0.0;
    double retx = 0.0;
    for (const auto& f : result.flows) {
      rtos += static_cast<double>(f.rto_events);
      retx += static_cast<double>(f.retransmits);
    }
    const auto n = static_cast<double>(result.flows.size());
    log.add_row({cells[i].setting == ccas::Setting::kEdgeScale ? "EdgeScale"
                                                               : "CoreScale",
                 cells[i].sack ? "on" : "off", fmt_pct(result.utilization),
                 fmt(result.jfi_all()), fmt(rtos / n, 2), fmt(retx / n, 1)});
  }
  log.finish(
      "Ablation - SACK vs non-SACK NewReno loss recovery.\n"
      "Expected: without SACK, more RTOs under burst loss and\n"
      "somewhat lower utilization/fairness, especially at scale.");
  return 0;
}
