// Ablation 4 (DESIGN.md): SACK vs non-SACK loss recovery — Mathis et al.'s
// original caveat that the halving-rate form of the model assumes TCP with
// selective acknowledgments. Without SACK, recovery leans on dupack
// counting and NewReno partial ACKs, with more RTOs under burst loss.
#include "bench/bench_common.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_ablation_sack",
                       {"setting", "sack", "util", "JFI", "RTOs/flow",
                        "retransmits/flow"});
  return log;
}

void BM_AblationSack(benchmark::State& state) {
  const auto setting = static_cast<Setting>(state.range(0));
  const bool sack = state.range(1) != 0;
  const BenchDurations d = setting == Setting::kEdgeScale
                               ? BenchDurations{2.0, 30.0, 120.0}
                               : BenchDurations{2.0, 15.0, 45.0};
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(setting, d, &scale);
  const int flows = setting == Setting::kEdgeScale
                        ? 30
                        : scaled_flow_count(3000, scale);
  spec.groups.push_back(FlowGroup{"newreno", flows, TimeDelta::millis(20)});
  spec.tcp.sack_enabled = sack;
  spec.seed = 42;
  ExperimentResult result;
  for (auto _ : state) {
    result = run_experiment(spec);
  }
  double rtos = 0.0;
  double retx = 0.0;
  for (const auto& f : result.flows) {
    rtos += static_cast<double>(f.rto_events);
    retx += static_cast<double>(f.retransmits);
  }
  const auto n = static_cast<double>(result.flows.size());
  state.counters["util"] = result.utilization;
  log().add_row({setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 sack ? "on" : "off", fmt_pct(result.utilization),
                 fmt(result.jfi_all()), fmt(rtos / n, 2), fmt(retx / n, 1)});
}

BENCHMARK(BM_AblationSack)
    ->ArgsProduct({{static_cast<long>(Setting::kEdgeScale),
                    static_cast<long>(Setting::kCoreScale)},
                   {1, 0}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Ablation - SACK vs non-SACK NewReno loss recovery.\n"
                "Expected: without SACK, more RTOs under burst loss and\n"
                "somewhat lower utilization/fairness, especially at scale.")
