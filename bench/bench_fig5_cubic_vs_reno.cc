// Reproduces Figure 5: Cubic vs an equal number of NewReno flows at
// CoreScale, across RTTs — Cubic's share of total throughput.
//
// Paper's result: Cubic takes 70-80% of total throughput at every flow
// count and RTT, extending the classic home-link result to scale.
#include "bench/inter_cca_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig5_cubic_vs_reno",
                       {"flows/side(paper)", "flows/side(run)", "rtt(ms)",
                        "cubic share", "cubic JFI", "reno JFI", "paper"});
  return log;
}

void BM_Fig5(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const int rtt_ms = static_cast<int>(state.range(1));
  const BenchDurations d{2.0, 20.0, 60.0};
  InterCcaCell cell;
  for (auto _ : state) {
    cell = run_inter_cca_cell("cubic", flows / 2, "newreno", flows / 2, rtt_ms, d,
                              /*scale_group_a=*/true);
  }
  state.counters["cubic_share"] = cell.share_a;
  log().add_row({std::to_string(cell.nominal_a), std::to_string(cell.actual_a),
                 std::to_string(rtt_ms), fmt_pct(cell.share_a), fmt(cell.jfi_a),
                 fmt(cell.jfi_b), "70-80%"});
}

BENCHMARK(BM_Fig5)
    ->ArgsProduct({{1000, 3000, 5000}, {20, 100, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Figure 5 analog - Cubic's share vs an equal number of NewReno\n"
                "flows at CoreScale. Paper: 70-80% at every flow count and RTT.\n"
                "Expected shape: Cubic wins a roughly constant super-half share.")
