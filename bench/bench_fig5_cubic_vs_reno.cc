// Reproduces Figure 5: Cubic vs an equal number of NewReno flows at
// CoreScale, across RTTs — Cubic's share of total throughput.
//
// Paper's result: Cubic takes 70-80% of total throughput at every flow
// count and RTT, extending the classic home-link result to scale.
#include <vector>

#include "bench/inter_cca_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig5_cubic_vs_reno", argc, argv);

  std::vector<InterCcaSpec> cells;
  std::vector<int> rtts;
  for (const int flows : {1000, 3000, 5000}) {
    for (const int rtt_ms : {20, 100, 200}) {
      const BenchDurations d{2.0, 20.0, 60.0};
      cells.push_back(make_inter_cca_spec("cubic", flows / 2, "newreno", flows / 2,
                                          rtt_ms, d, /*scale_group_a=*/true));
      rtts.push_back(rtt_ms);
      bench.add(cells.back().name, cells.back().spec);
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig5_cubic_vs_reno",
                {"flows/side(paper)", "flows/side(run)", "rtt(ms)", "cubic share",
                 "cubic JFI", "reno JFI", "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const InterCcaCell cell = analyze_inter_cca_cell(cells[i], outcomes[i].result);
    log.add_row({std::to_string(cell.nominal_a), std::to_string(cell.actual_a),
                 std::to_string(rtts[i]), fmt_pct(cell.share_a), fmt(cell.jfi_a),
                 fmt(cell.jfi_b), "70-80%"});
  }
  log.finish(
      "Figure 5 analog - Cubic's share vs an equal number of NewReno\n"
      "flows at CoreScale. Paper: 70-80% at every flow count and RTT.\n"
      "Expected shape: Cubic wins a roughly constant super-half share.");
  return 0;
}
