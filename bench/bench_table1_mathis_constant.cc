// Reproduces Table 1: the empirically derived Mathis constant C for
// NewReno, using p = packet loss rate vs p = CWND halving rate, in
// EdgeScale and CoreScale at 1000/3000/5000 flows (20 ms RTT).
//
// Paper's result: the loss-rate-derived C is flow-count- and
// setting-dependent (1.78 edge -> 3.2-4.0 core), while the halving-rate-
// derived C is consistent (1.47 edge, 1.34-1.36 core).
#include "bench/mathis_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_table1_mathis_constant", argc, argv);
  const std::vector<MathisCellSpec> cells = add_mathis_grid(bench);
  const auto& outcomes = bench.run();

  ResultLog log("bench_table1_mathis_constant",
                {"setting", "flows(paper)", "flows(run)", "C(packet loss)",
                 "C(cwnd halving)", "util"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const MathisCell cell = analyze_mathis_cell(cells[i], outcomes[i].result);
    log.add_row({cell.setting == ccas::Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 std::to_string(cell.nominal_flows), std::to_string(cell.actual_flows),
                 fmt(cell.fit_loss.c), fmt(cell.fit_halving.c),
                 fmt_pct(cell.utilization)});
  }
  log.finish(
      "Table 1 analog - Mathis constant C by p-interpretation.\n"
      "Paper: C(loss) varies 1.78 (edge) -> 3.2-4.0 (core, flow-count-dependent);\n"
      "       C(halving) stays ~1.47 (edge) / 1.34-1.36 (core).\n"
      "Expected shape: C(halving) consistent across settings & flow counts;\n"
      "C(loss) inflated and drifting at CoreScale.");
  return 0;
}
