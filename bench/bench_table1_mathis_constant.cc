// Reproduces Table 1: the empirically derived Mathis constant C for
// NewReno, using p = packet loss rate vs p = CWND halving rate, in
// EdgeScale and CoreScale at 1000/3000/5000 flows (20 ms RTT).
//
// Paper's result: the loss-rate-derived C is flow-count- and
// setting-dependent (1.78 edge -> 3.2-4.0 core), while the halving-rate-
// derived C is consistent (1.47 edge, 1.34-1.36 core).
#include "bench/mathis_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_table1_mathis_constant",
                       {"setting", "flows(paper)", "flows(run)", "C(packet loss)",
                        "C(cwnd halving)", "util"});
  return log;
}

void BM_Table1(benchmark::State& state) {
  const auto setting = static_cast<Setting>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  const BenchDurations durations =
      setting == Setting::kEdgeScale ? edge_durations() : core_durations();
  MathisCell cell;
  for (auto _ : state) {
    cell = run_mathis_cell(setting, flows, durations);
  }
  state.counters["C_loss"] = cell.fit_loss.c;
  state.counters["C_halving"] = cell.fit_halving.c;
  log().add_row({cell.setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 std::to_string(cell.nominal_flows), std::to_string(cell.actual_flows),
                 fmt(cell.fit_loss.c), fmt(cell.fit_halving.c),
                 fmt_pct(cell.utilization)});
}

BENCHMARK(BM_Table1)
    ->ArgsProduct({{static_cast<long>(Setting::kEdgeScale)}, {10, 30, 50}})
    ->ArgsProduct({{static_cast<long>(Setting::kCoreScale)}, {1000, 3000, 5000}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(
    ccas::bench::log(),
    "Table 1 analog - Mathis constant C by p-interpretation.\n"
    "Paper: C(loss) varies 1.78 (edge) -> 3.2-4.0 (core, flow-count-dependent);\n"
    "       C(halving) stays ~1.47 (edge) / 1.34-1.36 (core).\n"
    "Expected shape: C(halving) consistent across settings & flow counts;\n"
    "C(loss) inflated and drifting at CoreScale.")
