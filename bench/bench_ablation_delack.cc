// Ablation 1 (DESIGN.md): receiver ACK policy — delayed ACKs and GRO/LRO
// aggregation — and its effect on the loss-to-halving ratio (Finding 3).
//
// Hypothesis: ACK aggregation makes senders burstier, so losses cluster
// per flow and the packet-loss rate diverges further from the CWND-halving
// rate at CoreScale. With per-packet ACKs the two stay close.
#include "bench/bench_common.h"
#include "src/stats/mathis_fit.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_ablation_delack",
                       {"delayed ack", "gro", "loss/halving ratio",
                        "C(loss)", "C(halving)", "util"});
  return log;
}

void BM_AblationDelack(benchmark::State& state) {
  const bool delack = state.range(0) != 0;
  const bool gro = state.range(1) != 0;
  const BenchDurations d{2.0, 15.0, 60.0};
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(Setting::kCoreScale, d, &scale);
  spec.groups.push_back(
      FlowGroup{"newreno", scaled_flow_count(3000, scale), TimeDelta::millis(20)});
  spec.receiver.delayed_ack = delack;
  spec.receiver.gro_enabled = gro;
  spec.seed = 42;
  ExperimentResult result;
  for (auto _ : state) {
    result = run_experiment(spec);
  }
  std::vector<MathisObservation> obs_loss;
  std::vector<MathisObservation> obs_halv;
  double ratio_sum = 0.0;
  int n = 0;
  for (const auto& f : result.flows) {
    obs_loss.push_back(MathisObservation{f.goodput_bps, f.packet_loss_rate, f.mean_rtt});
    obs_halv.push_back(
        MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
    if (f.packet_loss_rate > 0 && f.cwnd_halving_rate > 0) {
      ratio_sum += f.packet_loss_rate / f.cwnd_halving_rate;
      ++n;
    }
  }
  const double ratio = n > 0 ? ratio_sum / n : 0.0;
  state.counters["ratio"] = ratio;
  log().add_row({delack ? "on" : "off", gro ? "on" : "off", fmt(ratio, 2),
                 fmt(fit_mathis_constant(obs_loss, kMssBytes).c),
                 fmt(fit_mathis_constant(obs_halv, kMssBytes).c),
                 fmt_pct(result.utilization)});
}

BENCHMARK(BM_AblationDelack)
    ->ArgsProduct({{1, 0}, {1, 0}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Ablation - receiver ACK policy (delayed ACK x GRO) vs the\n"
                "loss-to-halving ratio at CoreScale (NewReno, 3000 nominal\n"
                "flows, 20 ms). Expected: aggregation raises the ratio.")
