// Ablation 1 (DESIGN.md): receiver ACK policy — delayed ACKs and GRO/LRO
// aggregation — and its effect on the loss-to-halving ratio (Finding 3).
//
// Hypothesis: ACK aggregation makes senders burstier, so losses cluster
// per flow and the packet-loss rate diverges further from the CWND-halving
// rate at CoreScale. With per-packet ACKs the two stay close.
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/stats/mathis_fit.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_ablation_delack", argc, argv);

  std::vector<std::pair<bool, bool>> cells;  // (delack, gro)
  for (const bool delack : {true, false}) {
    for (const bool gro : {true, false}) {
      const BenchDurations d{2.0, 15.0, 60.0};
      double scale = 1.0;
      ccas::ExperimentSpec spec;
      spec.scenario = make_scenario(ccas::Setting::kCoreScale, d, &scale);
      spec.groups.push_back(ccas::FlowGroup{"newreno",
                                            ccas::scaled_flow_count(3000, scale),
                                            ccas::TimeDelta::millis(20)});
      spec.receiver.delayed_ack = delack;
      spec.receiver.gro_enabled = gro;
      spec.seed = 42;
      cells.emplace_back(delack, gro);
      bench.add(std::string("delack=") + (delack ? "on" : "off") + "/gro=" +
                    (gro ? "on" : "off"),
                std::move(spec));
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_ablation_delack",
                {"delayed ack", "gro", "loss/halving ratio", "C(loss)",
                 "C(halving)", "util"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const ccas::ExperimentResult& result = outcomes[i].result;
    std::vector<ccas::MathisObservation> obs_loss;
    std::vector<ccas::MathisObservation> obs_halv;
    double ratio_sum = 0.0;
    int n = 0;
    for (const auto& f : result.flows) {
      obs_loss.push_back(
          ccas::MathisObservation{f.goodput_bps, f.packet_loss_rate, f.mean_rtt});
      obs_halv.push_back(
          ccas::MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
      if (f.packet_loss_rate > 0 && f.cwnd_halving_rate > 0) {
        ratio_sum += f.packet_loss_rate / f.cwnd_halving_rate;
        ++n;
      }
    }
    const double ratio = n > 0 ? ratio_sum / n : 0.0;
    log.add_row({cells[i].first ? "on" : "off", cells[i].second ? "on" : "off",
                 fmt(ratio, 2),
                 fmt(ccas::fit_mathis_constant(obs_loss, ccas::kMssBytes).c),
                 fmt(ccas::fit_mathis_constant(obs_halv, ccas::kMssBytes).c),
                 fmt_pct(result.utilization)});
  }
  log.finish(
      "Ablation - receiver ACK policy (delayed ACK x GRO) vs the\n"
      "loss-to-halving ratio at CoreScale (NewReno, 3000 nominal\n"
      "flows, 20 ms). Expected: aggregation raises the ratio.");
  return 0;
}
