// Reproduces Figure 7: a single BBR flow competing with thousands of Cubic
// flows at CoreScale — BBR's share of total throughput.
//
// Paper's result: ~40% of the link irrespective of the number of Cubic
// competitors, as for NewReno (Figure 6).
#include "bench/inter_cca_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig7_one_bbr_vs_cubic",
                       {"cubic flows(paper)", "cubic flows(run)", "rtt(ms)",
                        "bbr share", "paper"});
  return log;
}

void BM_Fig7(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const int rtt_ms = static_cast<int>(state.range(1));
  const BenchDurations d{2.0, 30.0, 60.0};
  InterCcaCell cell;
  for (auto _ : state) {
    cell = run_inter_cca_cell("bbr", 1, "cubic", flows, rtt_ms, d,
                              /*scale_group_a=*/false);
  }
  state.counters["bbr_share"] = cell.share_a;
  log().add_row({std::to_string(flows), std::to_string(cell.actual_b),
                 std::to_string(rtt_ms), fmt_pct(cell.share_a), "~40%"});
}

BENCHMARK(BM_Fig7)
    ->ArgsProduct({{1000, 3000, 5000}, {20, 100, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Figure 7 analog - one BBR flow vs thousands of Cubic flows.\n"
                "Paper: BBR holds ~40% of the link at every flow count.\n"
                "Expected shape: a large BBR share, flat in the flow count.")
