// Reproduces Figure 7: a single BBR flow competing with thousands of Cubic
// flows at CoreScale — BBR's share of total throughput.
//
// Paper's result: ~40% of the link irrespective of the number of Cubic
// competitors, as for NewReno (Figure 6).
#include <vector>

#include "bench/inter_cca_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig7_one_bbr_vs_cubic", argc, argv);

  const BenchDurations d{2.0, 30.0, 60.0};
  std::vector<InterCcaSpec> cells;
  std::vector<int> rtts;
  for (const int flows : {1000, 3000, 5000}) {
    for (const int rtt_ms : {20, 100, 200}) {
      cells.push_back(make_inter_cca_spec("bbr", 1, "cubic", flows, rtt_ms, d,
                                          /*scale_group_a=*/false));
      rtts.push_back(rtt_ms);
      bench.add(cells.back().name, cells.back().spec);
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig7_one_bbr_vs_cubic",
                {"cubic flows(paper)", "cubic flows(run)", "rtt(ms)", "bbr share",
                 "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const InterCcaCell cell = analyze_inter_cca_cell(cells[i], outcomes[i].result);
    log.add_row({std::to_string(cell.nominal_b), std::to_string(cell.actual_b),
                 std::to_string(rtts[i]), fmt_pct(cell.share_a), "~40%"});
  }
  log.finish(
      "Figure 7 analog - one BBR flow vs thousands of Cubic flows.\n"
      "Paper: BBR holds ~40% of the link at every flow count.\n"
      "Expected shape: a large BBR share, flat in the flow count.");
  return 0;
}
