// Reproduces Figure 4: BBR intra-CCA fairness (all-BBR, same RTT) at
// CoreScale (4a) and EdgeScale (4b) across RTTs of 20/100/200 ms.
//
// Paper's result: BBR is fair at low flow counts (past work: JFI 0.99) but
// becomes unfair at scale — JFI as low as 0.4 at CoreScale (20/100 ms),
// with milder unfairness (~0.7) beyond 10 flows even at EdgeScale.
#include "bench/bench_common.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig4_bbr_intra_jfi",
                       {"setting", "flows(paper)", "flows(run)", "rtt(ms)", "JFI",
                        "util", "paper"});
  return log;
}

void BM_Fig4(benchmark::State& state) {
  const auto setting = static_cast<Setting>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  const int rtt_ms = static_cast<int>(state.range(2));

  const BenchDurations d = setting == Setting::kEdgeScale
                               ? BenchDurations{2.0, 20.0, 120.0}
                               : BenchDurations{2.0, 15.0, 45.0};
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(setting, d, &scale);
  const int actual = scaled_flow_count(flows, scale);
  spec.groups.push_back(FlowGroup{"bbr", actual, TimeDelta::millis(rtt_ms)});
  spec.seed = 42;
  ExperimentResult result;
  for (auto _ : state) {
    result = run_experiment(spec);
  }
  const double jfi = result.jfi_all();
  state.counters["jfi"] = jfi;
  const bool edge = setting == Setting::kEdgeScale;
  log().add_row({edge ? "EdgeScale" : "CoreScale", std::to_string(flows),
                 std::to_string(actual), std::to_string(rtt_ms), fmt(jfi),
                 fmt_pct(result.utilization),
                 edge ? (flows > 10 ? "~0.7-0.99" : "~0.99") : "0.4-0.8"});
}

BENCHMARK(BM_Fig4)
    ->ArgsProduct({{static_cast<long>(Setting::kEdgeScale)},
                   {10, 30, 50},
                   {20, 100, 200}})
    ->ArgsProduct({{static_cast<long>(Setting::kCoreScale)},
                   {1000, 3000, 5000},
                   {20, 100, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Figure 4 analog - BBR intra-CCA Jain fairness index.\n"
                "Paper: JFI down to 0.4 at CoreScale (20/100 ms), ~0.7 beyond 10\n"
                "flows at EdgeScale; past work (few flows) measured 0.99.\n"
                "Expected shape: JFI degrades from EdgeScale to CoreScale.")
