// Reproduces Figure 4: BBR intra-CCA fairness (all-BBR, same RTT) at
// CoreScale (4a) and EdgeScale (4b) across RTTs of 20/100/200 ms.
//
// Paper's result: BBR is fair at low flow counts (past work: JFI 0.99) but
// becomes unfair at scale — JFI as low as 0.4 at CoreScale (20/100 ms),
// with milder unfairness (~0.7) beyond 10 flows even at EdgeScale.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

struct Fig4Cell {
  ccas::Setting setting;
  int nominal_flows;
  int actual_flows;
  int rtt_ms;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig4_bbr_intra_jfi", argc, argv);

  std::vector<Fig4Cell> cells;
  for (const auto setting : {ccas::Setting::kEdgeScale, ccas::Setting::kCoreScale}) {
    const bool edge = setting == ccas::Setting::kEdgeScale;
    const BenchDurations d =
        edge ? BenchDurations{2.0, 20.0, 120.0} : BenchDurations{2.0, 15.0, 45.0};
    for (const int flows : edge ? std::vector<int>{10, 30, 50}
                                : std::vector<int>{1000, 3000, 5000}) {
      for (const int rtt_ms : {20, 100, 200}) {
        double scale = 1.0;
        ccas::ExperimentSpec spec;
        spec.scenario = make_scenario(setting, d, &scale);
        const int actual = ccas::scaled_flow_count(flows, scale);
        spec.groups.push_back(
            ccas::FlowGroup{"bbr", actual, ccas::TimeDelta::millis(rtt_ms)});
        spec.seed = 42;
        cells.push_back(Fig4Cell{setting, flows, actual, rtt_ms});
        bench.add(std::string(edge ? "EdgeScale" : "CoreScale") +
                      "/flows=" + std::to_string(flows) +
                      "/rtt=" + std::to_string(rtt_ms),
                  std::move(spec));
      }
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig4_bbr_intra_jfi",
                {"setting", "flows(paper)", "flows(run)", "rtt(ms)", "JFI", "util",
                 "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const Fig4Cell& cell = cells[i];
    const ccas::ExperimentResult& result = outcomes[i].result;
    const bool edge = cell.setting == ccas::Setting::kEdgeScale;
    log.add_row({edge ? "EdgeScale" : "CoreScale", std::to_string(cell.nominal_flows),
                 std::to_string(cell.actual_flows), std::to_string(cell.rtt_ms),
                 fmt(result.jfi_all()), fmt_pct(result.utilization),
                 edge ? (cell.nominal_flows > 10 ? "~0.7-0.99" : "~0.99")
                      : "0.4-0.8"});
  }
  log.finish(
      "Figure 4 analog - BBR intra-CCA Jain fairness index.\n"
      "Paper: JFI down to 0.4 at CoreScale (20/100 ms), ~0.7 beyond 10\n"
      "flows at EdgeScale; past work (few flows) measured 0.99.\n"
      "Expected shape: JFI degrades from EdgeScale to CoreScale.");
  return 0;
}
