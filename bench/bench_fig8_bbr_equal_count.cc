// Reproduces Figure 8: BBR vs an equal number of NewReno (8a) or Cubic
// (8b) flows at CoreScale — BBR's aggregate share of total throughput.
//
// Paper's result: BBR takes up to 99.9% of total throughput, extending the
// edge-setting result (90-99%) to scale. See EXPERIMENTS.md for where our
// simulator lands and why (BBRv1's bandwidth-estimate dynamics through
// synchronized PROBE_RTT episodes).
#include "bench/inter_cca_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig8_bbr_equal_count",
                       {"vs", "flows/side(paper)", "flows/side(run)", "rtt(ms)",
                        "bbr share", "bbr JFI", "paper"});
  return log;
}

void BM_Fig8(benchmark::State& state) {
  const char* other = state.range(0) == 0 ? "newreno" : "cubic";
  const int flows = static_cast<int>(state.range(1));
  const int rtt_ms = static_cast<int>(state.range(2));
  const BenchDurations d{2.0, 20.0, 45.0};
  InterCcaCell cell;
  for (auto _ : state) {
    cell = run_inter_cca_cell("bbr", flows / 2, other, flows / 2, rtt_ms, d,
                              /*scale_group_a=*/true);
  }
  state.counters["bbr_share"] = cell.share_a;
  log().add_row({other, std::to_string(cell.nominal_a), std::to_string(cell.actual_a),
                 std::to_string(rtt_ms), fmt_pct(cell.share_a), fmt(cell.jfi_a),
                 "95-99.9%"});
}

BENCHMARK(BM_Fig8)
    ->ArgsProduct({{0, 1}, {1000, 3000, 5000}, {20, 100, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Figure 8 analog - BBR vs an equal number of NewReno/Cubic flows\n"
                "at CoreScale. Paper: BBR takes ~99.9% of total throughput.\n"
                "Expected shape: BBR well above its 50% fair share.")
