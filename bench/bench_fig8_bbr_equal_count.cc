// Reproduces Figure 8: BBR vs an equal number of NewReno (8a) or Cubic
// (8b) flows at CoreScale — BBR's aggregate share of total throughput.
//
// Paper's result: BBR takes up to 99.9% of total throughput, extending the
// edge-setting result (90-99%) to scale. See EXPERIMENTS.md for where our
// simulator lands and why (BBRv1's bandwidth-estimate dynamics through
// synchronized PROBE_RTT episodes).
#include <string>
#include <vector>

#include "bench/inter_cca_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig8_bbr_equal_count", argc, argv);

  const BenchDurations d{2.0, 20.0, 45.0};
  std::vector<InterCcaSpec> cells;
  std::vector<std::string> others;
  std::vector<int> rtts;
  for (const char* other : {"newreno", "cubic"}) {
    for (const int flows : {1000, 3000, 5000}) {
      for (const int rtt_ms : {20, 100, 200}) {
        cells.push_back(make_inter_cca_spec("bbr", flows / 2, other, flows / 2,
                                            rtt_ms, d, /*scale_group_a=*/true));
        others.emplace_back(other);
        rtts.push_back(rtt_ms);
        bench.add(cells.back().name, cells.back().spec);
      }
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig8_bbr_equal_count",
                {"vs", "flows/side(paper)", "flows/side(run)", "rtt(ms)",
                 "bbr share", "bbr JFI", "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const InterCcaCell cell = analyze_inter_cca_cell(cells[i], outcomes[i].result);
    log.add_row({others[i], std::to_string(cell.nominal_a),
                 std::to_string(cell.actual_a), std::to_string(rtts[i]),
                 fmt_pct(cell.share_a), fmt(cell.jfi_a), "95-99.9%"});
  }
  log.finish(
      "Figure 8 analog - BBR vs an equal number of NewReno/Cubic flows\n"
      "at CoreScale. Paper: BBR takes ~99.9% of total throughput.\n"
      "Expected shape: BBR well above its 50% fair share.");
  return 0;
}
