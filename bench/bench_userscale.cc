// Userscale workload bench: open-loop session arrivals at rates the
// paper's fixed-population methodology never reaches, reported as
// per-class FCT percentiles (P50/P99/P999 from the streaming GK sketches)
// and slowdown versus the unloaded ideal.
//
// Three questions, three cell families:
//   * load ladder (core/rateN): how do short-flow FCT tails degrade as the
//     offered session rate climbs toward — and past — 100k flows per
//     simulated minute?
//   * headline (core/rate2000-minute): a full simulated minute at 2000
//     sessions/sec. The bench FAILS (exit 1) unless >= 100k short flows
//     both arrive and complete per simulated minute — the userscale
//     acceptance gate, checked against real engine output, not math.
//   * per-CCA mix (edge/web-<cca>): the same web-object workload under
//     newreno vs cubic vs bbr at EdgeScale — the per-CCA P99 FCT table
//     EXPERIMENTS.md §bench_userscale reports.
//
// All cells are open loop: arrivals do not slow down when the network
// congests, so the highest rung of the ladder deliberately overloads the
// link and the abandoned counts show it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace ccas::bench {
namespace {

struct UserscaleCell {
  std::string name;
  double horizon_sec = 0.0;  // stagger + warmup + measure: arrivals span it
  ExperimentSpec spec;
};

// The short-flow staple: heavy-tailed web objects, mostly a handful of
// segments, bursty app-limited delivery (8-segment objects, 2 ms gaps).
WorkloadClass web_class(const std::string& cca, double weight) {
  WorkloadClass c;
  c.name = "web";
  c.weight = weight;
  c.cca = cca;
  c.rtt = TimeDelta::millis(20);
  c.size.kind = SizeDistKind::kPareto;
  c.size.pareto_alpha = 1.2;
  c.size.min_segments = 2;
  c.size.max_segments = 200;
  c.app = AppModel::kWebObject;
  c.app_burst_segments = 8;
  c.app_gap = TimeDelta::millis(2);
  return c;
}

WorkloadClass rr_class(double weight) {
  WorkloadClass c;
  c.name = "rr";
  c.weight = weight;
  c.cca = "newreno";
  c.rtt = TimeDelta::millis(40);
  c.size.kind = SizeDistKind::kFixed;
  c.size.fixed_segments = 24;
  c.size.min_segments = 24;
  c.size.max_segments = 24;
  c.app = AppModel::kRequestResponse;
  c.app_burst_segments = 4;
  c.app_gap = TimeDelta::millis(5);
  return c;
}

WorkloadClass video_class(double weight) {
  WorkloadClass c;
  c.name = "video";
  c.weight = weight;
  c.cca = "bbr";
  c.rtt = TimeDelta::millis(30);
  c.size.kind = SizeDistKind::kFixed;
  c.size.fixed_segments = 64;
  c.size.min_segments = 64;
  c.size.max_segments = 64;
  c.app = AppModel::kVideoChunk;
  c.app_burst_segments = 16;
  c.app_gap = TimeDelta::millis(20);
  return c;
}

UserscaleCell make_cell(std::string name, Setting setting,
                        const BenchDurations& durations, double rate,
                        std::vector<WorkloadClass> classes) {
  UserscaleCell cell;
  cell.name = std::move(name);
  cell.spec.scenario = make_scenario(setting, durations, nullptr);
  cell.horizon_sec = (cell.spec.scenario.stagger + cell.spec.scenario.warmup +
                      cell.spec.scenario.measure)
                         .sec();
  cell.spec.seed = 42;
  cell.spec.workload.arrival = ArrivalKind::kPoisson;
  cell.spec.workload.arrivals_per_sec = rate;
  cell.spec.workload.max_concurrent = 8192;
  cell.spec.workload.classes = std::move(classes);
  return cell;
}

std::vector<UserscaleCell> make_grid() {
  std::vector<UserscaleCell> cells;
  // Load ladder: same mix, rising session rate, short window. At the
  // default REPRO_SCALE the core bottleneck is 2 Gbps; 2000 webby
  // sessions/sec offer only ~10% of it, so the tail growth the ladder
  // shows is queueing at the shared bottleneck, not starvation.
  const BenchDurations ladder{0.5, 1.0, 10.0};
  for (const double rate : {500.0, 1000.0, 2000.0}) {
    cells.push_back(make_cell(
        "core/rate" + std::to_string(static_cast<int>(rate)),
        Setting::kCoreScale, ladder, rate,
        {web_class("cubic", 0.8), rr_class(0.1), video_class(0.1)}));
  }
  // Headline: one full simulated minute at 2000/s — 120k offered sessions.
  // The userscale acceptance gate reads this cell.
  const BenchDurations minute{0.0, 0.5, 60.0};
  cells.push_back(make_cell("core/rate2000-minute", Setting::kCoreScale,
                            minute, 2000.0,
                            {web_class("cubic", 0.9), rr_class(0.1)}));
  // Per-CCA mix at EdgeScale: the same web workload, one CCA per cell.
  const BenchDurations edge{0.5, 1.0, 15.0};
  for (const char* cca : {"newreno", "cubic", "bbr"}) {
    cells.push_back(make_cell(std::string("edge/web-") + cca,
                              Setting::kEdgeScale, edge, 300.0,
                              {web_class(cca, 1.0)}));
  }
  return cells;
}

int run(int argc, char** argv) {
  SweepBench bench("bench_userscale", argc, argv);
  const std::vector<UserscaleCell> cells = make_grid();
  for (const UserscaleCell& cell : cells) bench.add(cell.name, cell.spec);
  const auto& outcomes = bench.run();

  ResultLog log("bench_userscale",
                {"cell", "class", "cca", "arrived_per_min", "done_per_min",
                 "rejected", "p50_ms", "p99_ms", "p999_ms", "slowdown",
                 "goodput_mbps"});
  bool headline_ok = false;
  for (size_t i = 0; i < cells.size(); ++i) {
    const ExperimentResult& r = outcomes[i].result;
    const double per_min = 60.0 / cells[i].horizon_sec;
    uint64_t arrivals = 0;
    uint64_t completed = 0;
    for (const WorkloadClassResult& c : r.workload_classes) {
      arrivals += c.arrivals;
      completed += c.completed;
      log.add_row({cells[i].name, c.name, c.cca,
                   fmt(static_cast<double>(c.arrivals) * per_min, 0),
                   fmt(static_cast<double>(c.completed) * per_min, 0),
                   std::to_string(c.rejected), fmt(c.p50_fct_s * 1e3, 2),
                   fmt(c.p99_fct_s * 1e3, 2), fmt(c.p999_fct_s * 1e3, 2),
                   fmt(c.mean_slowdown, 2),
                   fmt(r.workload_goodput_bps / 1e6, 1)});
    }
    if (cells[i].name == "core/rate2000-minute") {
      const double arrived_per_min = static_cast<double>(arrivals) * per_min;
      const double done_per_min = static_cast<double>(completed) * per_min;
      headline_ok = arrived_per_min >= 100000.0 && done_per_min >= 100000.0;
      std::printf(
          "\nuserscale headline (core/rate2000-minute): %.0f arrivals/min, "
          "%.0f completions/min (gate: >= 100000 of each): %s\n",
          arrived_per_min, done_per_min, headline_ok ? "OK" : "FAIL");
    }
  }
  log.finish(
      "Open-loop userscale workload: per-class FCT percentiles (GK sketch)\n"
      "and mean slowdown vs the unloaded ideal. Rates are normalized per\n"
      "simulated minute of the whole run horizon. The core ladder shares a\n"
      "class mix (80% web / 10% rr / 10% video); edge/web-* isolates one\n"
      "CCA per cell for the EXPERIMENTS.md per-CCA P99 table.\n");
  if (!headline_ok) {
    std::fprintf(stderr,
                 "FAIL: core/rate2000-minute fell below 100k short flows "
                 "arriving+completing per simulated minute\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ccas::bench

int main(int argc, char** argv) { return ccas::bench::run(argc, argv); }
