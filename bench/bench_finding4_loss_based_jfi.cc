// Reproduces Finding 4 (figure not shown in the paper): NewReno and Cubic
// remain intra-CCA fair at CoreScale, JFI > 0.99.
//
// The JFI is computed over the measurement window, which must cover
// several AIMD sawtooth periods (the paper runs hours; we size the window
// to >= 2 periods of the smallest flow count and verify convergence).
#include <algorithm>

#include "bench/bench_common.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_finding4_loss_based_jfi",
                       {"cca", "flows(paper)", "flows(run)", "rtt(ms)", "JFI",
                        "util", "paper"});
  return log;
}

void BM_Finding4(benchmark::State& state) {
  const char* cca = state.range(0) == 0 ? "newreno" : "cubic";
  const int flows = static_cast<int>(state.range(1));
  const int rtt_ms = static_cast<int>(state.range(2));

  // The window must cover several AIMD sawtooth periods; the period scales
  // with per-flow cwnd, i.e. inversely with the flow count.
  BenchDurations d{2.0, 20.0, std::clamp(300.0 * 1000.0 / flows, 100.0, 300.0)};
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(Setting::kCoreScale, d, &scale);
  const int actual = scaled_flow_count(flows, scale);
  spec.groups.push_back(FlowGroup{cca, actual, TimeDelta::millis(rtt_ms)});
  spec.seed = 42;
  ExperimentResult result;
  for (auto _ : state) {
    result = run_experiment(spec);
  }
  const double jfi = result.jfi_all();
  state.counters["jfi"] = jfi;
  log().add_row({cca, std::to_string(flows), std::to_string(actual),
                 std::to_string(rtt_ms), fmt(jfi), fmt_pct(result.utilization),
                 "> 0.99"});
}

BENCHMARK(BM_Finding4)
    ->ArgsProduct({{0, 1}, {1000, 3000, 5000}, {20}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Finding 4 - NewReno & Cubic intra-CCA fairness at CoreScale.\n"
                "Paper: JFI > 0.99 (time-averaged over a long run).\n"
                "Expected shape: high JFI at every flow count for both CCAs.")
