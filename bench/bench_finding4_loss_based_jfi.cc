// Reproduces Finding 4 (figure not shown in the paper): NewReno and Cubic
// remain intra-CCA fair at CoreScale, JFI > 0.99.
//
// The JFI is computed over the measurement window, which must cover
// several AIMD sawtooth periods (the paper runs hours; we size the window
// to >= 2 periods of the smallest flow count and verify convergence).
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

struct Finding4Cell {
  std::string cca;
  int nominal_flows;
  int actual_flows;
  int rtt_ms;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_finding4_loss_based_jfi", argc, argv);

  std::vector<Finding4Cell> cells;
  for (const char* cca : {"newreno", "cubic"}) {
    for (const int flows : {1000, 3000, 5000}) {
      const int rtt_ms = 20;
      // The window must cover several AIMD sawtooth periods; the period
      // scales with per-flow cwnd, i.e. inversely with the flow count.
      const BenchDurations d{2.0, 20.0,
                             std::clamp(300.0 * 1000.0 / flows, 100.0, 300.0)};
      double scale = 1.0;
      ccas::ExperimentSpec spec;
      spec.scenario = make_scenario(ccas::Setting::kCoreScale, d, &scale);
      const int actual = ccas::scaled_flow_count(flows, scale);
      spec.groups.push_back(
          ccas::FlowGroup{cca, actual, ccas::TimeDelta::millis(rtt_ms)});
      spec.seed = 42;
      cells.push_back(Finding4Cell{cca, flows, actual, rtt_ms});
      bench.add(std::string(cca) + "/flows=" + std::to_string(flows) +
                    "/rtt=" + std::to_string(rtt_ms),
                std::move(spec));
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_finding4_loss_based_jfi",
                {"cca", "flows(paper)", "flows(run)", "rtt(ms)", "JFI", "util",
                 "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const Finding4Cell& cell = cells[i];
    const ccas::ExperimentResult& result = outcomes[i].result;
    log.add_row({cell.cca, std::to_string(cell.nominal_flows),
                 std::to_string(cell.actual_flows), std::to_string(cell.rtt_ms),
                 fmt(result.jfi_all()), fmt_pct(result.utilization), "> 0.99"});
  }
  log.finish(
      "Finding 4 - NewReno & Cubic intra-CCA fairness at CoreScale.\n"
      "Paper: JFI > 0.99 (time-averaged over a long run).\n"
      "Expected shape: high JFI at every flow count for both CCAs.");
  return 0;
}
