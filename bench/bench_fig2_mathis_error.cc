// Reproduces Figure 2: median Mathis-model prediction error at CoreScale
// flow counts, for p = packet loss rate vs p = CWND halving rate, with the
// EdgeScale ("Home") errors as reference lines.
//
// Paper's result: <= 10% median error with the CWND halving rate at
// CoreScale, 45-55% with the packet loss rate; both < 10% at EdgeScale.
#include "bench/mathis_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig2_mathis_error",
                       {"setting", "flows(paper)", "flows(run)",
                        "err(packet loss)", "err(cwnd halving)", "flows fit"});
  return log;
}

void BM_Fig2(benchmark::State& state) {
  const auto setting = static_cast<Setting>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  const BenchDurations durations =
      setting == Setting::kEdgeScale ? edge_durations() : core_durations();
  MathisCell cell;
  for (auto _ : state) {
    cell = run_mathis_cell(setting, flows, durations);
  }
  state.counters["median_err_loss"] = cell.fit_loss.median_error;
  state.counters["median_err_halving"] = cell.fit_halving.median_error;
  log().add_row({cell.setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 std::to_string(cell.nominal_flows), std::to_string(cell.actual_flows),
                 fmt_pct(cell.fit_loss.median_error),
                 fmt_pct(cell.fit_halving.median_error),
                 std::to_string(cell.fit_halving.flows_used)});
}

BENCHMARK(BM_Fig2)
    ->ArgsProduct({{static_cast<long>(Setting::kEdgeScale)}, {10, 30, 50}})
    ->ArgsProduct({{static_cast<long>(Setting::kCoreScale)}, {1000, 3000, 5000}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(
    ccas::bench::log(),
    "Figure 2 analog - median Mathis prediction error by p-interpretation.\n"
    "Paper: CoreScale err(halving) <= 10%, err(loss) 45-55%; EdgeScale both < 10%.\n"
    "Expected shape: halving-rate error small everywhere; loss-rate error\n"
    "grows at CoreScale.")
