// Reproduces Figure 2: median Mathis-model prediction error at CoreScale
// flow counts, for p = packet loss rate vs p = CWND halving rate, with the
// EdgeScale ("Home") errors as reference lines.
//
// Paper's result: <= 10% median error with the CWND halving rate at
// CoreScale, 45-55% with the packet loss rate; both < 10% at EdgeScale.
#include "bench/mathis_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig2_mathis_error", argc, argv);
  const std::vector<MathisCellSpec> cells = add_mathis_grid(bench);
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig2_mathis_error",
                {"setting", "flows(paper)", "flows(run)", "err(packet loss)",
                 "err(cwnd halving)", "flows fit"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const MathisCell cell = analyze_mathis_cell(cells[i], outcomes[i].result);
    log.add_row({cell.setting == ccas::Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 std::to_string(cell.nominal_flows), std::to_string(cell.actual_flows),
                 fmt_pct(cell.fit_loss.median_error),
                 fmt_pct(cell.fit_halving.median_error),
                 std::to_string(cell.fit_halving.flows_used)});
  }
  log.finish(
      "Figure 2 analog - median Mathis prediction error by p-interpretation.\n"
      "Paper: CoreScale err(halving) <= 10%, err(loss) 45-55%; EdgeScale both < 10%.\n"
      "Expected shape: halving-rate error small everywhere; loss-rate error\n"
      "grows at CoreScale.");
  return 0;
}
