// Shared experiment runner for the Mathis-model suite (Table 1, Figure 2,
// Figure 3, and the burstiness corroboration of Finding 3): all-NewReno
// runs at 20 ms RTT across the paper's EdgeScale and CoreScale flow counts.
#pragma once

#include <vector>

#include "bench/bench_common.h"
#include "src/stats/burstiness.h"
#include "src/stats/mathis_fit.h"

namespace ccas::bench {

struct MathisCell {
  Setting setting = Setting::kCoreScale;
  int nominal_flows = 0;  // the paper's flow count
  int actual_flows = 0;   // after REPRO_SCALE
  MathisFit fit_loss;     // p = packet loss rate
  MathisFit fit_halving;  // p = CWND halving rate
  // Mean per-flow ratio of packet-loss rate to CWND-halving rate (Fig 3).
  double loss_to_halving_ratio = 0.0;
  // Goh-Barabasi burstiness of the bottleneck drop process (Finding 3).
  double drop_burstiness = 0.0;
  double utilization = 0.0;
  double mean_rtt_ms = 0.0;
};

inline MathisCell run_mathis_cell(Setting setting, int nominal_flows,
                                  const BenchDurations& durations,
                                  uint64_t seed = 42) {
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(setting, durations, &scale);
  const int flows = scaled_flow_count(nominal_flows, scale);
  spec.groups.push_back(FlowGroup{"newreno", flows, TimeDelta::millis(20)});
  spec.seed = seed;
  const ExperimentResult result = run_experiment(spec);

  MathisCell cell;
  cell.setting = setting;
  cell.nominal_flows = nominal_flows;
  cell.actual_flows = flows;
  cell.utilization = result.utilization;

  std::vector<MathisObservation> obs_loss;
  std::vector<MathisObservation> obs_halving;
  double ratio_sum = 0.0;
  int ratio_n = 0;
  double rtt_sum = 0.0;
  for (const FlowMeasurement& f : result.flows) {
    // The model is evaluated against the RTT the flow experienced
    // (tcpprobe-style srtt), exactly as the testbed measurements are.
    obs_loss.push_back(MathisObservation{f.goodput_bps, f.packet_loss_rate, f.mean_rtt});
    obs_halving.push_back(
        MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
    if (f.cwnd_halving_rate > 0.0 && f.packet_loss_rate > 0.0) {
      ratio_sum += f.packet_loss_rate / f.cwnd_halving_rate;
      ++ratio_n;
    }
    rtt_sum += f.mean_rtt.ms();
  }
  cell.fit_loss = fit_mathis_constant(obs_loss, kMssBytes);
  cell.fit_halving = fit_mathis_constant(obs_halving, kMssBytes);
  cell.loss_to_halving_ratio = ratio_n > 0 ? ratio_sum / ratio_n : 0.0;
  cell.mean_rtt_ms = result.flows.empty()
                         ? 0.0
                         : rtt_sum / static_cast<double>(result.flows.size());
  if (result.drop_times.size() >= 3) {
    cell.drop_burstiness = goh_barabasi_burstiness_from_times(result.drop_times);
  }
  return cell;
}

inline const std::vector<int>& edge_flow_counts() {
  static const std::vector<int> counts{10, 30, 50};
  return counts;
}
inline const std::vector<int>& core_flow_counts() {
  static const std::vector<int> counts{1000, 3000, 5000};
  return counts;
}

// Durations: EdgeScale loss events are rare (one sawtooth is ~minutes of
// simulated time at 100 Mbps), so edge cells run long — they are cheap.
// CoreScale cells need the window to cover several sawtooth periods of the
// *smallest* flow count (~45 s per period at 1000 flows / 20 ms).
inline BenchDurations edge_durations() { return BenchDurations{2.0, 60.0, 240.0}; }
inline BenchDurations core_durations() { return BenchDurations{2.0, 15.0, 90.0}; }

}  // namespace ccas::bench
