// Shared experiment grid for the Mathis-model suite (Table 1, Figure 2,
// Figure 3, and the burstiness corroboration of Finding 3): all-NewReno
// runs at 20 ms RTT across the paper's EdgeScale and CoreScale flow
// counts. Spec building and result analysis are split so the cells can be
// fanned out through the sweep executor and analyzed afterwards.
#pragma once

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/stats/burstiness.h"
#include "src/stats/mathis_fit.h"

namespace ccas::bench {

struct MathisCell {
  Setting setting = Setting::kCoreScale;
  int nominal_flows = 0;  // the paper's flow count
  int actual_flows = 0;   // after REPRO_SCALE
  MathisFit fit_loss;     // p = packet loss rate
  MathisFit fit_halving;  // p = CWND halving rate
  // Mean per-flow ratio of packet-loss rate to CWND-halving rate (Fig 3).
  double loss_to_halving_ratio = 0.0;
  // Goh-Barabasi burstiness of the bottleneck drop process (Finding 3).
  double drop_burstiness = 0.0;
  double utilization = 0.0;
  double mean_rtt_ms = 0.0;
};

struct MathisCellSpec {
  std::string name;  // stable cell key, e.g. "CoreScale/flows=3000"
  Setting setting = Setting::kCoreScale;
  int nominal_flows = 0;
  int actual_flows = 0;
  ExperimentSpec spec;
};

inline MathisCellSpec make_mathis_spec(Setting setting, int nominal_flows,
                                       const BenchDurations& durations,
                                       uint64_t seed = 42) {
  MathisCellSpec cell;
  cell.setting = setting;
  cell.nominal_flows = nominal_flows;
  double scale = 1.0;
  cell.spec.scenario = make_scenario(setting, durations, &scale);
  cell.actual_flows = scaled_flow_count(nominal_flows, scale);
  cell.spec.groups.push_back(
      FlowGroup{"newreno", cell.actual_flows, TimeDelta::millis(20)});
  cell.spec.seed = seed;
  cell.name = std::string(setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale") +
              "/flows=" + std::to_string(nominal_flows);
  return cell;
}

inline MathisCell analyze_mathis_cell(const MathisCellSpec& cell_spec,
                                      const ExperimentResult& result) {
  MathisCell cell;
  cell.setting = cell_spec.setting;
  cell.nominal_flows = cell_spec.nominal_flows;
  cell.actual_flows = cell_spec.actual_flows;
  cell.utilization = result.utilization;

  std::vector<MathisObservation> obs_loss;
  std::vector<MathisObservation> obs_halving;
  double ratio_sum = 0.0;
  int ratio_n = 0;
  double rtt_sum = 0.0;
  for (const FlowMeasurement& f : result.flows) {
    // The model is evaluated against the RTT the flow experienced
    // (tcpprobe-style srtt), exactly as the testbed measurements are.
    obs_loss.push_back(MathisObservation{f.goodput_bps, f.packet_loss_rate, f.mean_rtt});
    obs_halving.push_back(
        MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
    if (f.cwnd_halving_rate > 0.0 && f.packet_loss_rate > 0.0) {
      ratio_sum += f.packet_loss_rate / f.cwnd_halving_rate;
      ++ratio_n;
    }
    rtt_sum += f.mean_rtt.ms();
  }
  cell.fit_loss = fit_mathis_constant(obs_loss, kMssBytes);
  cell.fit_halving = fit_mathis_constant(obs_halving, kMssBytes);
  cell.loss_to_halving_ratio = ratio_n > 0 ? ratio_sum / ratio_n : 0.0;
  cell.mean_rtt_ms = result.flows.empty()
                         ? 0.0
                         : rtt_sum / static_cast<double>(result.flows.size());
  if (result.drop_times.size() >= 3) {
    cell.drop_burstiness = goh_barabasi_burstiness_from_times(result.drop_times);
  }
  return cell;
}

inline const std::vector<int>& edge_flow_counts() {
  static const std::vector<int> counts{10, 30, 50};
  return counts;
}
inline const std::vector<int>& core_flow_counts() {
  static const std::vector<int> counts{1000, 3000, 5000};
  return counts;
}

// Durations: EdgeScale loss events are rare (one sawtooth is ~minutes of
// simulated time at 100 Mbps), so edge cells run long — they are cheap.
// CoreScale cells need the window to cover several sawtooth periods of the
// *smallest* flow count (~45 s per period at 1000 flows / 20 ms).
inline BenchDurations edge_durations() { return BenchDurations{2.0, 60.0, 240.0}; }
inline BenchDurations core_durations() { return BenchDurations{2.0, 15.0, 90.0}; }

// Registers the full Edge+Core grid on `bench` and returns the cell specs
// in registration order (the common shape of the four Mathis benches).
inline std::vector<MathisCellSpec> add_mathis_grid(SweepBench& bench) {
  std::vector<MathisCellSpec> cells;
  for (const int flows : edge_flow_counts()) {
    cells.push_back(make_mathis_spec(Setting::kEdgeScale, flows, edge_durations()));
  }
  for (const int flows : core_flow_counts()) {
    cells.push_back(make_mathis_spec(Setting::kCoreScale, flows, core_durations()));
  }
  for (const MathisCellSpec& c : cells) bench.add(c.name, c.spec);
  return cells;
}

}  // namespace ccas::bench
