// Reproduces the Finding 3 corroboration (figure not shown in the paper):
// the Goh-Barabasi burstiness score of the bottleneck drop process.
//
// Paper's result: median ~0.2 at EdgeScale, ~0.35 at CoreScale — losses
// are burstier at scale, which is why packet-loss rate diverges from the
// CWND-halving rate.
#include "bench/mathis_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_burstiness",
                       {"setting", "flows(paper)", "flows(run)", "burstiness B",
                        "paper"});
  return log;
}

void BM_Burstiness(benchmark::State& state) {
  const auto setting = static_cast<Setting>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  const BenchDurations durations =
      setting == Setting::kEdgeScale ? edge_durations() : core_durations();
  MathisCell cell;
  for (auto _ : state) {
    cell = run_mathis_cell(setting, flows, durations);
  }
  state.counters["burstiness"] = cell.drop_burstiness;
  log().add_row({cell.setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 std::to_string(cell.nominal_flows), std::to_string(cell.actual_flows),
                 fmt(cell.drop_burstiness, 3),
                 cell.setting == Setting::kEdgeScale ? "~0.2" : "~0.35"});
}

BENCHMARK(BM_Burstiness)
    ->ArgsProduct({{static_cast<long>(Setting::kEdgeScale)}, {10, 30, 50}})
    ->ArgsProduct({{static_cast<long>(Setting::kCoreScale)}, {1000, 3000, 5000}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(
    ccas::bench::log(),
    "Finding 3 corroboration - Goh-Barabasi burstiness of bottleneck drops\n"
    "(-1 periodic, 0 Poisson, ->1 bursty).\n"
    "Paper: ~0.2 EdgeScale, ~0.35 CoreScale.\n"
    "Expected shape: drops burstier at CoreScale than EdgeScale.")
