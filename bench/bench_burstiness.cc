// Reproduces the Finding 3 corroboration (figure not shown in the paper):
// the Goh-Barabasi burstiness score of the bottleneck drop process.
//
// Paper's result: median ~0.2 at EdgeScale, ~0.35 at CoreScale — losses
// are burstier at scale, which is why packet-loss rate diverges from the
// CWND-halving rate.
#include "bench/mathis_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_burstiness", argc, argv);
  const std::vector<MathisCellSpec> cells = add_mathis_grid(bench);
  const auto& outcomes = bench.run();

  ResultLog log("bench_burstiness",
                {"setting", "flows(paper)", "flows(run)", "burstiness B", "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const MathisCell cell = analyze_mathis_cell(cells[i], outcomes[i].result);
    const bool edge = cell.setting == ccas::Setting::kEdgeScale;
    log.add_row({edge ? "EdgeScale" : "CoreScale", std::to_string(cell.nominal_flows),
                 std::to_string(cell.actual_flows), fmt(cell.drop_burstiness, 3),
                 edge ? "~0.2" : "~0.35"});
  }
  log.finish(
      "Finding 3 corroboration - Goh-Barabasi burstiness of bottleneck drops\n"
      "(-1 periodic, 0 Poisson, ->1 bursty).\n"
      "Paper: ~0.2 EdgeScale, ~0.35 CoreScale.\n"
      "Expected shape: drops burstier at CoreScale than EdgeScale.");
  return 0;
}
