// Reproduces Figure 6: a single BBR flow competing with thousands of
// NewReno flows at CoreScale — BBR's share of total throughput, compared
// with the Ware et al. model prediction.
//
// Paper's result: the lone BBR flow takes ~40% of the link irrespective of
// the number of competing NewReno flows (validating Ware et al. at scale).
#include <vector>

#include "bench/inter_cca_suite.h"
#include "src/models/ware_bbr.h"

namespace {

double ware_prediction(const ccas::Scenario& s, int rtt_ms, int n_loss) {
  ccas::WareBbrParams p;
  p.link = s.net.bottleneck_rate;
  p.rtprop = ccas::TimeDelta::millis(rtt_ms);
  p.buffer_bytes = s.net.buffer_bytes;
  p.num_bbr = 1;
  p.num_loss_based = n_loss;
  return ccas::WareBbrModel(p).predict().bbr_fraction;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig6_one_bbr_vs_reno", argc, argv);

  const BenchDurations d{2.0, 30.0, 60.0};
  std::vector<InterCcaSpec> cells;
  std::vector<int> rtts;
  for (const int flows : {1000, 3000, 5000}) {
    for (const int rtt_ms : {20, 100, 200}) {
      cells.push_back(make_inter_cca_spec("bbr", 1, "newreno", flows, rtt_ms, d,
                                          /*scale_group_a=*/false));
      rtts.push_back(rtt_ms);
      bench.add(cells.back().name, cells.back().spec);
    }
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig6_one_bbr_vs_reno",
                {"reno flows(paper)", "reno flows(run)", "rtt(ms)", "bbr share",
                 "ware model", "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const InterCcaCell cell = analyze_inter_cca_cell(cells[i], outcomes[i].result);
    double scale = 1.0;
    const ccas::Scenario s = make_scenario(ccas::Setting::kCoreScale, d, &scale);
    log.add_row({std::to_string(cell.nominal_b), std::to_string(cell.actual_b),
                 std::to_string(rtts[i]), fmt_pct(cell.share_a),
                 fmt_pct(ware_prediction(s, rtts[i], cell.actual_b)), "~40%"});
  }
  log.finish(
      "Figure 6 analog - one BBR flow vs thousands of NewReno flows.\n"
      "Paper: BBR holds ~40% of the link at every flow count (Ware\n"
      "et al.'s in-flight-cap model, validated at scale).\n"
      "Expected shape: a large BBR share, flat in the flow count.");
  return 0;
}
