// Reproduces Figure 6: a single BBR flow competing with thousands of
// NewReno flows at CoreScale — BBR's share of total throughput, compared
// with the Ware et al. model prediction.
//
// Paper's result: the lone BBR flow takes ~40% of the link irrespective of
// the number of competing NewReno flows (validating Ware et al. at scale).
#include "bench/inter_cca_suite.h"
#include "src/models/ware_bbr.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig6_one_bbr_vs_reno",
                       {"reno flows(paper)", "reno flows(run)", "rtt(ms)",
                        "bbr share", "ware model", "paper"});
  return log;
}

double ware_prediction(const Scenario& s, int rtt_ms, int n_loss) {
  WareBbrParams p;
  p.link = s.net.bottleneck_rate;
  p.rtprop = TimeDelta::millis(rtt_ms);
  p.buffer_bytes = s.net.buffer_bytes;
  p.num_bbr = 1;
  p.num_loss_based = n_loss;
  return WareBbrModel(p).predict().bbr_fraction;
}

void BM_Fig6(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const int rtt_ms = static_cast<int>(state.range(1));
  const BenchDurations d{2.0, 30.0, 60.0};
  InterCcaCell cell;
  for (auto _ : state) {
    cell = run_inter_cca_cell("bbr", 1, "newreno", flows, rtt_ms, d,
                              /*scale_group_a=*/false);
  }
  double scale = 1.0;
  const Scenario s = make_scenario(Setting::kCoreScale, d, &scale);
  state.counters["bbr_share"] = cell.share_a;
  log().add_row({std::to_string(flows), std::to_string(cell.actual_b),
                 std::to_string(rtt_ms), fmt_pct(cell.share_a),
                 fmt_pct(ware_prediction(s, rtt_ms, cell.actual_b)), "~40%"});
}

BENCHMARK(BM_Fig6)
    ->ArgsProduct({{1000, 3000, 5000}, {20, 100, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Figure 6 analog - one BBR flow vs thousands of NewReno flows.\n"
                "Paper: BBR holds ~40% of the link at every flow count (Ware\n"
                "et al.'s in-flight-cap model, validated at scale).\n"
                "Expected shape: a large BBR share, flat in the flow count.")
