// Reproduces Figure 3: the ratio of packet losses to congestion events
// (CWND halvings) at EdgeScale (3b) and CoreScale (3a) flow counts.
//
// Paper's result: ~1.7 flat at EdgeScale regardless of flow count; 6-9 and
// flow-count-dependent at CoreScale — the reason the loss-rate-based
// Mathis fit breaks at scale (losses arrive in bursts that each trigger
// only one halving).
#include "bench/mathis_suite.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_fig3_loss_halving_ratio", argc, argv);
  const std::vector<MathisCellSpec> cells = add_mathis_grid(bench);
  const auto& outcomes = bench.run();

  ResultLog log("bench_fig3_loss_halving_ratio",
                {"setting", "flows(paper)", "flows(run)", "loss/halving ratio",
                 "paper"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const MathisCell cell = analyze_mathis_cell(cells[i], outcomes[i].result);
    const bool edge = cell.setting == ccas::Setting::kEdgeScale;
    log.add_row({edge ? "EdgeScale" : "CoreScale", std::to_string(cell.nominal_flows),
                 std::to_string(cell.actual_flows),
                 fmt(cell.loss_to_halving_ratio, 2), edge ? "~1.7" : "6-9"});
  }
  log.finish(
      "Figure 3 analog - packet-loss to CWND-halving ratio.\n"
      "Paper: EdgeScale ~1.7 flat; CoreScale 6-9, flow-count-dependent.\n"
      "Expected shape: ratio larger at CoreScale than EdgeScale.");
  return 0;
}
