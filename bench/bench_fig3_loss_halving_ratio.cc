// Reproduces Figure 3: the ratio of packet losses to congestion events
// (CWND halvings) at EdgeScale (3b) and CoreScale (3a) flow counts.
//
// Paper's result: ~1.7 flat at EdgeScale regardless of flow count; 6-9 and
// flow-count-dependent at CoreScale — the reason the loss-rate-based
// Mathis fit breaks at scale (losses arrive in bursts that each trigger
// only one halving).
#include "bench/mathis_suite.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_fig3_loss_halving_ratio",
                       {"setting", "flows(paper)", "flows(run)",
                        "loss/halving ratio", "paper"});
  return log;
}

void BM_Fig3(benchmark::State& state) {
  const auto setting = static_cast<Setting>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  const BenchDurations durations =
      setting == Setting::kEdgeScale ? edge_durations() : core_durations();
  MathisCell cell;
  for (auto _ : state) {
    cell = run_mathis_cell(setting, flows, durations);
  }
  state.counters["ratio"] = cell.loss_to_halving_ratio;
  log().add_row({cell.setting == Setting::kEdgeScale ? "EdgeScale" : "CoreScale",
                 std::to_string(cell.nominal_flows), std::to_string(cell.actual_flows),
                 fmt(cell.loss_to_halving_ratio, 2),
                 cell.setting == Setting::kEdgeScale ? "~1.7" : "6-9"});
}

BENCHMARK(BM_Fig3)
    ->ArgsProduct({{static_cast<long>(Setting::kEdgeScale)}, {10, 30, 50}})
    ->ArgsProduct({{static_cast<long>(Setting::kCoreScale)}, {1000, 3000, 5000}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(
    ccas::bench::log(),
    "Figure 3 analog - packet-loss to CWND-halving ratio.\n"
    "Paper: EdgeScale ~1.7 flat; CoreScale 6-9, flow-count-dependent.\n"
    "Expected shape: ratio larger at CoreScale than EdgeScale.")
