// Re-asks the paper's fairness questions under AQM instead of drop-tail:
// sweep {drop-tail, codel, fq-codel, pie, red+ecn} x {newreno, cubic, bbr}
// in both the Edge and (scaled) Core regimes, plus the two head-to-head
// cells the paper builds its fairness findings on — cubic-vs-bbr and the
// short-vs-long-RTT cubic pair — per qdisc in the Edge regime.
//
// Expected shape: the paper's drop-tail findings (BBR's intra-CCA
// unfairness, cubic-vs-bbr share depending on buffer depth, RTT unfairness
// of loss-based CCAs) mostly survive codel/pie/red, which control delay but
// still share one FIFO; fq-codel's per-flow DRR should invert the
// RTT-unfairness and cubic-vs-bbr outcomes by construction. RED+ECN shows
// whether marking (no retransmissions) changes the loss-based CCAs' JFI.
// EXPERIMENTS.md §bench_aqm_grid holds the observed survive/invert table.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/qdisc/qdisc.h"

namespace ccas::bench {
namespace {

struct AqmCell {
  std::string name;
  std::string qdisc;
  std::string setting;
  std::string flows_desc;
  bool mixed = false;  // two groups: report the first group's share
  ExperimentSpec spec;
};

QdiscConfig qdisc_by_name(const std::string& name) {
  QdiscConfig qd;
  if (name == "red+ecn") {
    qd.kind = QdiscKind::kRed;
    qd.ecn = true;
  } else {
    qd.kind = qdisc_kind_from_name(name);
  }
  return qd;
}

std::vector<AqmCell> make_grid() {
  const BenchDurations durations{0.5, 2.0, 8.0};
  const std::vector<std::string> qdiscs{"drop-tail", "codel", "fq-codel",
                                        "pie", "red+ecn"};
  const std::vector<std::string> ccas{"newreno", "cubic", "bbr"};
  const TimeDelta rtt20 = TimeDelta::millis(20);
  const TimeDelta rtt80 = TimeDelta::millis(80);
  std::vector<AqmCell> cells;

  auto base_cell = [&](Setting setting, const std::string& qdisc) {
    AqmCell cell;
    cell.qdisc = qdisc;
    cell.setting = setting == Setting::kEdgeScale ? "edge" : "core";
    cell.spec.scenario = make_scenario(setting, durations, nullptr);
    cell.spec.scenario.net.qdisc = qdisc_by_name(qdisc);
    cell.spec.seed = 42;
    return cell;
  };

  for (const std::string& qdisc : qdiscs) {
    // Homogeneous grid: the Figure 4 analog (intra-CCA JFI) per regime.
    for (const Setting setting : {Setting::kEdgeScale, Setting::kCoreScale}) {
      const int flows = setting == Setting::kEdgeScale ? 4 : 8;
      for (const std::string& cca : ccas) {
        AqmCell cell = base_cell(setting, qdisc);
        cell.spec.groups.push_back(FlowGroup{cca, flows, rtt20});
        cell.flows_desc = cca + ":" + std::to_string(flows);
        cell.name = "aqm/" + cell.setting + "/" + qdisc + "/" + cca;
        cells.push_back(std::move(cell));
      }
    }
    // The inter-CCA question (Figures 6/7 analog): cubic vs bbr.
    {
      AqmCell cell = base_cell(Setting::kEdgeScale, qdisc);
      cell.spec.groups.push_back(FlowGroup{"cubic", 2, rtt20});
      cell.spec.groups.push_back(FlowGroup{"bbr", 2, rtt20});
      cell.mixed = true;
      cell.flows_desc = "cubic:2+bbr:2";
      cell.name = "aqm/edge/" + qdisc + "/cubic-vs-bbr";
      cells.push_back(std::move(cell));
    }
    // The RTT-unfairness question: same CCA, 20 ms vs 80 ms base RTT.
    {
      AqmCell cell = base_cell(Setting::kEdgeScale, qdisc);
      cell.spec.groups.push_back(FlowGroup{"cubic", 2, rtt20});
      cell.spec.groups.push_back(FlowGroup{"cubic", 2, rtt80});
      cell.mixed = true;
      cell.flows_desc = "cubic:2@20+2@80";
      cell.name = "aqm/edge/" + qdisc + "/rtt-unfair";
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

int run(int argc, char** argv) {
  SweepBench bench("bench_aqm_grid", argc, argv);
  const std::vector<AqmCell> cells = make_grid();
  for (const AqmCell& cell : cells) bench.add(cell.name, cell.spec);
  const auto& outcomes = bench.run();

  ResultLog log("bench_aqm_grid",
                {"setting", "qdisc", "flows", "goodput_mbps", "util", "JFI",
                 "g0_share", "loss_rate", "mark_rate", "mean_rtt_ms"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const ExperimentResult& r = outcomes[i].result;
    uint64_t sent = 0;
    uint64_t drops = 0;
    uint64_t marks = 0;
    double rtt_sum_ms = 0.0;
    for (const FlowMeasurement& f : r.flows) {
      sent += f.segments_sent;
      drops += f.queue_drops;
      marks += f.queue_marks;
      rtt_sum_ms += f.mean_rtt.ms();
    }
    const double denom = sent > 0 ? static_cast<double>(sent) : 1.0;
    log.add_row(
        {cells[i].setting, cells[i].qdisc, cells[i].flows_desc,
         fmt(r.aggregate_goodput_bps / 1e6, 1), fmt(r.utilization, 3),
         fmt(r.jfi_all(), 3),
         cells[i].mixed ? fmt_pct(r.groups[0].throughput_share) : "-",
         fmt(static_cast<double>(drops) / denom, 5),
         fmt(static_cast<double>(marks) / denom, 5),
         fmt(r.flows.empty() ? 0.0
                             : rtt_sum_ms / static_cast<double>(r.flows.size()),
             1)});
  }
  log.finish(
      "Paper fairness questions re-asked per qdisc (Figures 4/6/7 analogs).\n"
      "JFI over all flows; g0_share = first group's throughput share in the\n"
      "mixed cells (cubic in cubic-vs-bbr, short-RTT pair in rtt-unfair).\n"
      "loss/mark rates are bottleneck drops/CE marks per segment sent.\n"
      "See EXPERIMENTS.md for the per-qdisc survive/invert table.\n");
  return 0;
}

}  // namespace
}  // namespace ccas::bench

int main(int argc, char** argv) { return ccas::bench::run(argc, argv); }
