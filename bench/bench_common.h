// Shared infrastructure for the reproduction benches (one binary per
// paper table/figure — see DESIGN.md's per-experiment index).
//
// Every bench:
//   * registers one named cell per experiment coordinate (flow count x
//     RTT) and submits the whole grid to the sweep executor
//     (src/sweep/), which fans independent cells out across cores and
//     serves unchanged cells from the on-disk result cache;
//   * prints the same rows/series the paper reports, next to the paper's
//     reference values, after the sweep completes;
//   * writes a CSV (<bench-name>.csv) next to the binary.
//
// Flags (every bench binary):
//   --jobs=<n>        worker threads (default: all cores; env CCAS_JOBS)
//   --cache-dir=<d>   result cache directory (default .ccas-cache;
//                     env CCAS_CACHE_DIR)
//   --no-cache        bypass the cache (env CCAS_NO_CACHE=1)
//   --no-progress     suppress the live stderr progress lines
//
// Scale knobs (environment):
//   REPRO_SCALE        scale bandwidth + buffer + flow counts together
//                      (default 0.2: 2 Gbps / 200-1000 flows CoreScale;
//                      per-flow BDP and dynamics are preserved — set 1 for
//                      the paper's full 10 Gbps / 1000-5000 flows, which
//                      costs ~25x more wall time);
//   REPRO_WARMUP_SEC / REPRO_MEASURE_SEC / REPRO_STAGGER_SEC
//                      override the per-bench default durations.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/sweep/executor.h"
#include "src/util/csv.h"

namespace ccas::bench {

inline double default_scale() {
  const char* v = std::getenv("REPRO_SCALE");
  if (v == nullptr) {
    // Benches default to 1/5 scale so the whole suite runs in minutes;
    // REPRO_SCALE=1 reproduces the paper's full CoreScale.
    ::setenv("REPRO_SCALE", "0.2", 0);
    return 0.2;
  }
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : 1.0;
}

struct BenchDurations {
  double stagger_sec = 2.0;
  double warmup_sec = 5.0;  // DESIGN.md §1: 5 s default warm-up
  double measure_sec = 20.0;
};

// Builds the scenario for `setting` with this bench's default durations
// and the env overrides applied. Returns the applied scale factor.
// REPRO_SCALE shrinks only CoreScale: EdgeScale (100 Mbps, tens of flows)
// is already cheap and is always run exactly as in the paper.
inline Scenario make_scenario(Setting setting, const BenchDurations& d,
                              double* scale_out) {
  (void)default_scale();
  Scenario s = Scenario::for_setting(setting);
  s.stagger = TimeDelta::seconds_f(d.stagger_sec);
  s.warmup = TimeDelta::seconds_f(d.warmup_sec);
  s.measure = TimeDelta::seconds_f(d.measure_sec);
  const DumbbellConfig unscaled_net = s.net;
  const double scale = s.apply_env_overrides();
  if (setting == Setting::kEdgeScale) {
    s.net = unscaled_net;  // duration overrides only
    if (scale_out != nullptr) *scale_out = 1.0;
    return s;
  }
  if (scale_out != nullptr) *scale_out = scale;
  return s;
}

// Collects the paper-style rows printed after the sweep completes.
class ResultLog {
 public:
  explicit ResultLog(std::string bench_name, std::vector<std::string> header)
      : bench_name_(std::move(bench_name)), header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Prints the table and writes <bench_name>.csv into the CWD.
  void finish(const std::string& caption) const {
    std::printf("\n=== %s ===\n%s\n", bench_name_.c_str(), caption.c_str());
    Table table(header_);
    for (const auto& row : rows_) table.add_row(row);
    table.print();
    const std::string path = bench_name_ + ".csv";
    CsvWriter csv(path, header_);
    for (const auto& row : rows_) csv.row(row);
    std::printf("(csv written to %s)\n", path.c_str());
  }

 private:
  std::string bench_name_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double fraction, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

// The bench front end to the sweep executor: accumulates named cells,
// runs them in parallel (with the on-disk cache), and hands back the
// outcomes in registration order so rows print deterministically.
class SweepBench {
 public:
  SweepBench(std::string name, int argc, char** argv) {
    sweep_.name = std::move(name);
    options_ = sweep::sweep_options_from_env();
    if (options_.cache_dir.empty()) options_.cache_dir = ".ccas-cache";
    // Benches want the legacy contract: any cell failure aborts the grid
    // and surfaces as an exception, not as a hole in the printed table.
    options_.fail_fast = true;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const size_t eq = arg.find('=');
      const std::string key = arg.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? std::string() : arg.substr(eq + 1);
      if (key == "--jobs") {
        options_.jobs = std::atoi(value.c_str());
        if (options_.jobs <= 0) {
          std::fprintf(stderr, "error: --jobs needs a positive integer\n");
          std::exit(1);
        }
      } else if (key == "--cache-dir") {
        options_.cache_dir = value;
      } else if (key == "--no-cache") {
        options_.use_cache = false;
      } else if (key == "--no-progress") {
        options_.progress = false;
      } else if (key == "--help" || key == "-h") {
        std::printf(
            "usage: %s [--jobs=<n>] [--cache-dir=<dir>] [--no-cache] "
            "[--no-progress]\nSee bench/bench_common.h for the REPRO_* "
            "environment scale knobs.\n",
            sweep_.name.c_str());
        std::exit(0);
      } else {
        std::fprintf(stderr, "error: unknown flag '%s' (see --help)\n",
                     key.c_str());
        std::exit(1);
      }
    }
  }

  // Registers one cell; benches pin spec.seed themselves (the published
  // grids all use seed 42, as the serial benches did).
  void add(std::string cell_name, ExperimentSpec spec) {
    sweep_.add_cell(std::move(cell_name), std::move(spec));
  }

  // Fans the grid out and returns outcomes in registration order.
  const std::vector<sweep::CellOutcome>& run() {
    sweep::SweepExecutor executor(options_);
    outcomes_ = executor.run(sweep_);
    summary_ = executor.summary();
    return outcomes_;
  }

  [[nodiscard]] const sweep::SweepSummary& summary() const { return summary_; }

 private:
  sweep::SweepSpec sweep_;
  sweep::SweepOptions options_;
  std::vector<sweep::CellOutcome> outcomes_;
  sweep::SweepSummary summary_;
};

}  // namespace ccas::bench
