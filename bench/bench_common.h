// Shared infrastructure for the reproduction benches (one binary per
// paper table/figure — see DESIGN.md's per-experiment index).
//
// Every bench:
//   * registers one google-benchmark case per experiment cell
//     (flow count x RTT), run with Iterations(1) — each cell IS one
//     long-running simulation, not a microbenchmark;
//   * prints the same rows/series the paper reports, next to the paper's
//     reference values, after the benchmark run;
//   * writes a CSV (<bench-name>.csv) next to the binary.
//
// Scale knobs (environment):
//   REPRO_SCALE        scale bandwidth + buffer + flow counts together
//                      (default 0.2: 2 Gbps / 200-1000 flows CoreScale;
//                      per-flow BDP and dynamics are preserved — set 1 for
//                      the paper's full 10 Gbps / 1000-5000 flows, which
//                      costs ~25x more wall time);
//   REPRO_WARMUP_SEC / REPRO_MEASURE_SEC / REPRO_STAGGER_SEC
//                      override the per-bench default durations.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/util/csv.h"

namespace ccas::bench {

inline double default_scale() {
  const char* v = std::getenv("REPRO_SCALE");
  if (v == nullptr) {
    // Benches default to 1/5 scale so the whole suite runs in minutes;
    // REPRO_SCALE=1 reproduces the paper's full CoreScale.
    ::setenv("REPRO_SCALE", "0.2", 0);
    return 0.2;
  }
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : 1.0;
}

struct BenchDurations {
  double stagger_sec = 2.0;
  double warmup_sec = 10.0;
  double measure_sec = 20.0;
};

// Builds the scenario for `setting` with this bench's default durations
// and the env overrides applied. Returns the applied scale factor.
// REPRO_SCALE shrinks only CoreScale: EdgeScale (100 Mbps, tens of flows)
// is already cheap and is always run exactly as in the paper.
inline Scenario make_scenario(Setting setting, const BenchDurations& d,
                              double* scale_out) {
  (void)default_scale();
  Scenario s = Scenario::for_setting(setting);
  s.stagger = TimeDelta::seconds_f(d.stagger_sec);
  s.warmup = TimeDelta::seconds_f(d.warmup_sec);
  s.measure = TimeDelta::seconds_f(d.measure_sec);
  const DumbbellConfig unscaled_net = s.net;
  const double scale = s.apply_env_overrides();
  if (setting == Setting::kEdgeScale) {
    s.net = unscaled_net;  // duration overrides only
    if (scale_out != nullptr) *scale_out = 1.0;
    return s;
  }
  if (scale_out != nullptr) *scale_out = scale;
  return s;
}

// Collects the paper-style rows printed after the google-benchmark run.
class ResultLog {
 public:
  explicit ResultLog(std::string bench_name, std::vector<std::string> header)
      : bench_name_(std::move(bench_name)), header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Prints the table and writes <bench_name>.csv into the CWD.
  void finish(const std::string& caption) const {
    std::printf("\n=== %s ===\n%s\n", bench_name_.c_str(), caption.c_str());
    Table table(header_);
    for (const auto& row : rows_) table.add_row(row);
    table.print();
    const std::string path = bench_name_ + ".csv";
    CsvWriter csv(path, header_);
    for (const auto& row : rows_) csv.row(row);
    std::printf("(csv written to %s)\n", path.c_str());
  }

 private:
  std::string bench_name_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double fraction, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

// Standard main: run the registered cells, then the log's finish hook.
#define CCAS_BENCH_MAIN(log_expr, caption)                      \
  int main(int argc, char** argv) {                             \
    ::benchmark::Initialize(&argc, argv);                       \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                 \
    }                                                           \
    ::benchmark::RunSpecifiedBenchmarks();                      \
    ::benchmark::Shutdown();                                    \
    (log_expr).finish(caption);                                 \
    return 0;                                                   \
  }

}  // namespace ccas::bench
