// Ablation 2 (DESIGN.md): bottleneck buffer size. Appenzeller et al.
// (whose desynchronization result the paper leans on) showed that at high
// flow counts much smaller buffers than 1 BDP still reach ~full
// utilization. We sweep 0.1/0.5/1.0 x the paper's 375 MB CoreScale buffer.
#include "bench/bench_common.h"
#include "src/stats/burstiness.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_ablation_buffer",
                       {"buffer (xBDP200ms)", "buffer bytes", "util", "JFI",
                        "mean rtt(ms)", "drop burstiness"});
  return log;
}

void BM_AblationBuffer(benchmark::State& state) {
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  const BenchDurations d{2.0, 15.0, 60.0};
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(Setting::kCoreScale, d, &scale);
  spec.scenario.net.buffer_bytes = std::max<int64_t>(
      static_cast<int64_t>(static_cast<double>(spec.scenario.net.buffer_bytes) * frac),
      64 * kDataPacketBytes);
  spec.groups.push_back(
      FlowGroup{"newreno", scaled_flow_count(3000, scale), TimeDelta::millis(20)});
  spec.seed = 42;
  ExperimentResult result;
  for (auto _ : state) {
    result = run_experiment(spec);
  }
  double rtt_sum = 0.0;
  for (const auto& f : result.flows) rtt_sum += f.mean_rtt.ms();
  const double burst = result.drop_times.size() >= 3
                           ? goh_barabasi_burstiness_from_times(result.drop_times)
                           : 0.0;
  state.counters["util"] = result.utilization;
  log().add_row({fmt(frac, 2), std::to_string(spec.scenario.net.buffer_bytes),
                 fmt_pct(result.utilization), fmt(result.jfi_all()),
                 fmt(rtt_sum / static_cast<double>(result.flows.size()), 1),
                 fmt(burst, 3)});
}

BENCHMARK(BM_AblationBuffer)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Ablation - bottleneck buffer size at CoreScale (NewReno,\n"
                "3000 nominal flows, 20 ms). Expected: near-full utilization\n"
                "even at 0.1x the paper's buffer (Appenzeller desync), with\n"
                "lower queueing RTT.")
