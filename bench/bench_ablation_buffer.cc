// Ablation 2 (DESIGN.md): bottleneck buffer size. Appenzeller et al.
// (whose desynchronization result the paper leans on) showed that at high
// flow counts much smaller buffers than 1 BDP still reach ~full
// utilization. We sweep 0.1/0.5/1.0 x the paper's 375 MB CoreScale buffer.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/stats/burstiness.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_ablation_buffer", argc, argv);

  std::vector<double> fracs;
  std::vector<int64_t> buffers;
  for (const int pct : {10, 50, 100}) {
    const double frac = static_cast<double>(pct) / 100.0;
    const BenchDurations d{2.0, 15.0, 60.0};
    double scale = 1.0;
    ccas::ExperimentSpec spec;
    spec.scenario = make_scenario(ccas::Setting::kCoreScale, d, &scale);
    spec.scenario.net.buffer_bytes = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(spec.scenario.net.buffer_bytes) *
                             frac),
        64 * ccas::kDataPacketBytes);
    spec.groups.push_back(ccas::FlowGroup{
        "newreno", ccas::scaled_flow_count(3000, scale), ccas::TimeDelta::millis(20)});
    spec.seed = 42;
    fracs.push_back(frac);
    buffers.push_back(spec.scenario.net.buffer_bytes);
    bench.add("buffer=" + std::to_string(pct) + "pct", std::move(spec));
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_ablation_buffer",
                {"buffer (xBDP200ms)", "buffer bytes", "util", "JFI",
                 "mean rtt(ms)", "drop burstiness"});
  for (size_t i = 0; i < fracs.size(); ++i) {
    const ccas::ExperimentResult& result = outcomes[i].result;
    double rtt_sum = 0.0;
    for (const auto& f : result.flows) rtt_sum += f.mean_rtt.ms();
    const double burst =
        result.drop_times.size() >= 3
            ? ccas::goh_barabasi_burstiness_from_times(result.drop_times)
            : 0.0;
    log.add_row({fmt(fracs[i], 2), std::to_string(buffers[i]),
                 fmt_pct(result.utilization), fmt(result.jfi_all()),
                 fmt(rtt_sum / static_cast<double>(result.flows.size()), 1),
                 fmt(burst, 3)});
  }
  log.finish(
      "Ablation - bottleneck buffer size at CoreScale (NewReno,\n"
      "3000 nominal flows, 20 ms). Expected: near-full utilization\n"
      "even at 0.1x the paper's buffer (Appenzeller desync), with\n"
      "lower queueing RTT.");
  return 0;
}
