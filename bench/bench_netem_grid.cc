// Exogenous-loss Mathis validation (the netem axis the paper's testbed
// could only reach via tc): sweep i.i.d. wire loss p in {1e-4 .. 1e-2}
// for {newreno, cubic, bbr} on an uncongested 1 Gbps dumbbell, so the
// ImpairedLink stage — not the bottleneck queue — is the only loss
// source, then re-measure Figure 2's Mathis prediction error.
//
// Expected shape: newreno (AIMD) tracks MSS*C/(RTT*sqrt(p)) with p = the
// configured wire loss; cubic's ~p^-0.75 scaling (RFC 8312) leaves a
// systematic residual against a sqrt fit; BBR is loss-agnostic below a
// few percent, so its Mathis error is enormous — the sharpest possible
// contrast with the congestive-loss Figure 2.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/packet.h"
#include "src/stats/mathis_fit.h"
#include "src/util/stats.h"

namespace ccas::bench {
namespace {

struct NetemCell {
  std::string name;
  std::string cca;
  double loss = 0.0;
  ExperimentSpec spec;
};

constexpr int kFlowsPerCell = 4;

std::vector<NetemCell> make_grid() {
  // Uncongested regime: at the lowest loss rate, 4 Mathis-limited flows
  // sum to ~220 Mbps on a 1 Gbps link, so bottleneck drops stay at zero
  // and the configured wire loss is the only `p` in play. (BBR instead
  // saturates the link — that mismatch is the point.)
  const std::vector<double> losses{1e-4, 3e-4, 1e-3, 3e-3, 1e-2};
  const std::vector<std::string> ccas{"newreno", "cubic", "bbr"};
  std::vector<NetemCell> cells;
  for (const std::string& cca : ccas) {
    for (const double loss : losses) {
      NetemCell cell;
      cell.cca = cca;
      cell.loss = loss;
      cell.spec.scenario.setting = Setting::kCoreScale;
      cell.spec.scenario.net.bottleneck_rate = DataRate::gbps(1);
      cell.spec.scenario.net.buffer_bytes = 25 * 1000 * 1000;
      cell.spec.scenario.net.impairments.loss = loss;
      cell.spec.scenario.stagger = TimeDelta::seconds_f(0.5);
      cell.spec.scenario.warmup = TimeDelta::seconds(2);
      cell.spec.scenario.measure = TimeDelta::seconds(8);
      cell.spec.groups.push_back(
          FlowGroup{cca, kFlowsPerCell, TimeDelta::millis(20)});
      cell.spec.seed = 42;
      char name[64];
      std::snprintf(name, sizeof(name), "netem/%s/loss=%.0e", cca.c_str(), loss);
      cell.name = name;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

int run(int argc, char** argv) {
  SweepBench bench("bench_netem_grid", argc, argv);
  const std::vector<NetemCell> cells = make_grid();
  for (const NetemCell& cell : cells) bench.add(cell.name, cell.spec);
  const auto& outcomes = bench.run();

  // Fit one Mathis C per CCA across its whole loss sweep, for each `p`
  // interpretation: the test is whether throughput scales as 1/sqrt(p)
  // across the sweep, not whether a per-cell constant can absorb it.
  struct PerCca {
    std::vector<MathisObservation> obs_wire;     // p = configured wire loss
    std::vector<MathisObservation> obs_halving;  // p = CWND halving rate
  };
  std::vector<std::string> cca_order;
  std::vector<PerCca> per_cca;
  auto bucket = [&](const std::string& cca) -> PerCca& {
    for (size_t i = 0; i < cca_order.size(); ++i) {
      if (cca_order[i] == cca) return per_cca[i];
    }
    cca_order.push_back(cca);
    per_cca.emplace_back();
    return per_cca.back();
  };
  for (size_t i = 0; i < cells.size(); ++i) {
    PerCca& b = bucket(cells[i].cca);
    for (const FlowMeasurement& f : outcomes[i].result.flows) {
      b.obs_wire.push_back(MathisObservation{f.goodput_bps, cells[i].loss, f.mean_rtt});
      b.obs_halving.push_back(
          MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
    }
  }
  std::vector<MathisFit> fit_wire(cca_order.size());
  std::vector<MathisFit> fit_halving(cca_order.size());
  for (size_t i = 0; i < cca_order.size(); ++i) {
    fit_wire[i] = fit_mathis_constant(per_cca[i].obs_wire, kMssBytes);
    fit_halving[i] = fit_mathis_constant(per_cca[i].obs_halving, kMssBytes);
  }
  auto cca_index = [&](const std::string& cca) {
    for (size_t i = 0; i < cca_order.size(); ++i) {
      if (cca_order[i] == cca) return i;
    }
    return cca_order.size();
  };

  ResultLog log("bench_netem_grid",
                {"cca", "wire loss", "goodput_mbps", "util", "retx_rate",
                 "err(p=wire)", "err(p=halving)", "queue_drops"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const ExperimentResult& r = outcomes[i].result;
    const size_t ci = cca_index(cells[i].cca);
    std::vector<MathisObservation> cell_wire;
    std::vector<MathisObservation> cell_halving;
    uint64_t sent = 0;
    uint64_t retx = 0;
    for (const FlowMeasurement& f : r.flows) {
      cell_wire.push_back(MathisObservation{f.goodput_bps, cells[i].loss, f.mean_rtt});
      cell_halving.push_back(
          MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
      sent += f.segments_sent;
      retx += f.retransmits;
    }
    const auto errs_wire =
        mathis_relative_errors(cell_wire, fit_wire[ci].c, kMssBytes);
    const auto errs_halving =
        mathis_relative_errors(cell_halving, fit_halving[ci].c, kMssBytes);
    const double med_wire = median(errs_wire);
    const double med_halving = median(errs_halving);
    log.add_row({cells[i].cca, fmt(cells[i].loss, 4),
                 fmt(r.aggregate_goodput_bps / 1e6, 1), fmt(r.utilization, 3),
                 sent > 0 ? fmt(static_cast<double>(retx) / static_cast<double>(sent), 5)
                          : "0",
                 fmt_pct(med_wire), fmt_pct(med_halving),
                 std::to_string(r.queue.dropped_packets)});
  }
  std::string caption =
      "Figure 2 analog with exogenous (netem-style) i.i.d. wire loss.\n"
      "Mathis C fitted per CCA across the whole loss sweep.\n"
      "Expected: newreno tracks 1/sqrt(p); cubic scales ~p^-0.75 (RFC 8312) so a\n"
      "sqrt fit shows systematic error; BBR is loss-agnostic and saturates the link.\n";
  for (size_t i = 0; i < cca_order.size(); ++i) {
    char line[128];
    std::snprintf(line, sizeof(line), "fitted C(%s): wire=%.3f halving=%.3f\n",
                  cca_order[i].c_str(), fit_wire[i].c, fit_halving[i].c);
    caption += line;
  }
  log.finish(caption);
  return 0;
}

}  // namespace
}  // namespace ccas::bench

int main(int argc, char** argv) { return ccas::bench::run(argc, argv); }
