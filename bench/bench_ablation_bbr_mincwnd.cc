// Ablation 3 (DESIGN.md): BBR's 4-packet minimum window. At CoreScale the
// fair-share BDP is only a few packets, so the floor is a candidate cause
// of BBR's intra-CCA unfairness (paper Finding 5): flows pinned at the
// floor can't signal, while others absorb the spare capacity.
#include "bench/bench_common.h"
#include "src/cca/bbr.h"

namespace ccas::bench {
namespace {

ResultLog& log() {
  static ResultLog log("bench_ablation_bbr_mincwnd",
                       {"bbr min_cwnd", "JFI", "util", "paper(min_cwnd=4)"});
  return log;
}

void BM_AblationMinCwnd(benchmark::State& state) {
  const auto min_cwnd = static_cast<uint64_t>(state.range(0));
  const std::string cca_name = "bbr-mincwnd-" + std::to_string(min_cwnd);
  CcaRegistry::instance().register_cca(cca_name, [min_cwnd](Rng& rng) {
    BbrConfig cfg;
    cfg.min_cwnd = min_cwnd;
    return std::make_unique<Bbr>(cfg, rng);
  });

  const BenchDurations d{2.0, 15.0, 45.0};
  double scale = 1.0;
  ExperimentSpec spec;
  spec.scenario = make_scenario(Setting::kCoreScale, d, &scale);
  spec.groups.push_back(
      FlowGroup{cca_name, scaled_flow_count(3000, scale), TimeDelta::millis(20)});
  spec.seed = 42;
  ExperimentResult result;
  for (auto _ : state) {
    result = run_experiment(spec);
  }
  state.counters["jfi"] = result.jfi_all();
  log().add_row({std::to_string(min_cwnd), fmt(result.jfi_all()),
                 fmt_pct(result.utilization), "JFI ~0.4"});
}

BENCHMARK(BM_AblationMinCwnd)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace ccas::bench

CCAS_BENCH_MAIN(ccas::bench::log(),
                "Ablation - BBR minimum cwnd vs intra-CCA fairness at\n"
                "CoreScale (all-BBR, 3000 nominal flows, 20 ms). The paper's\n"
                "BBR (min_cwnd=4) measured JFI as low as 0.4 at scale.")
