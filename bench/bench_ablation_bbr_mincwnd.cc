// Ablation 3 (DESIGN.md): BBR's 4-packet minimum window. At CoreScale the
// fair-share BDP is only a few packets, so the floor is a candidate cause
// of BBR's intra-CCA unfairness (paper Finding 5): flows pinned at the
// floor can't signal, while others absorb the spare capacity.
//
// The custom bbr-mincwnd-N CCAs are registered before the sweep fans out:
// registry mutation is not thread-safe, factory lookup is.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cca/bbr.h"

int main(int argc, char** argv) {
  using namespace ccas::bench;
  SweepBench bench("bench_ablation_bbr_mincwnd", argc, argv);

  std::vector<uint64_t> min_cwnds;
  for (const uint64_t min_cwnd : {2, 4, 8}) {
    const std::string cca_name = "bbr-mincwnd-" + std::to_string(min_cwnd);
    ccas::CcaRegistry::instance().register_cca(cca_name, [min_cwnd](ccas::Rng& rng) {
      ccas::BbrConfig cfg;
      cfg.min_cwnd = min_cwnd;
      return std::make_unique<ccas::Bbr>(cfg, rng);
    });
    const BenchDurations d{2.0, 15.0, 45.0};
    double scale = 1.0;
    ccas::ExperimentSpec spec;
    spec.scenario = make_scenario(ccas::Setting::kCoreScale, d, &scale);
    spec.groups.push_back(ccas::FlowGroup{
        cca_name, ccas::scaled_flow_count(3000, scale), ccas::TimeDelta::millis(20)});
    spec.seed = 42;
    min_cwnds.push_back(min_cwnd);
    bench.add("min_cwnd=" + std::to_string(min_cwnd), std::move(spec));
  }
  const auto& outcomes = bench.run();

  ResultLog log("bench_ablation_bbr_mincwnd",
                {"bbr min_cwnd", "JFI", "util", "paper(min_cwnd=4)"});
  for (size_t i = 0; i < min_cwnds.size(); ++i) {
    const ccas::ExperimentResult& result = outcomes[i].result;
    log.add_row({std::to_string(min_cwnds[i]), fmt(result.jfi_all()),
                 fmt_pct(result.utilization), "JFI ~0.4"});
  }
  log.finish(
      "Ablation - BBR minimum cwnd vs intra-CCA fairness at\n"
      "CoreScale (all-BBR, 3000 nominal flows, 20 ms). The paper's\n"
      "BBR (min_cwnd=4) measured JFI as low as 0.4 at scale.");
  return 0;
}
