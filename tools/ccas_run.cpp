// ccas_run — command-line front end to the experiment harness: run any of
// the paper's configurations (or new ones) without writing C++.
//
//   ccas_run --setting=edge --groups=cubic:5:20,newreno:5:20 --measure=120
//   ccas_run --groups=bbr:1:20,newreno:1000:20 --rate=2000 --trace=0.5 --csv=run1
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/report.h"
#include "src/harness/runner.h"

int main(int argc, char** argv) {
  using namespace ccas;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(cli_usage().c_str(), stdout);
      return 0;
    }
  }
  try {
    const CliOptions opts = parse_cli(args);
    std::printf("bottleneck %s, buffer %lld B, stagger %.1fs + warmup %.1fs + "
                "measure %.1fs, seed %llu\n\n",
                opts.spec.scenario.net.bottleneck_rate.to_string().c_str(),
                static_cast<long long>(opts.spec.scenario.net.buffer_bytes),
                opts.spec.scenario.stagger.sec(), opts.spec.scenario.warmup.sec(),
                opts.spec.scenario.measure.sec(),
                static_cast<unsigned long long>(opts.spec.seed));
    const ExperimentResult result = run_experiment(opts.spec);
    std::printf("%s", summarize(result).c_str());
    if (!opts.csv_prefix.empty() && !result.trace.empty()) {
      result.trace.write_csv(opts.csv_prefix);
      std::printf("trace written to %s_flows.csv / %s_queue.csv\n",
                  opts.csv_prefix.c_str(), opts.csv_prefix.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
