// ccas_run — command-line front end to the experiment harness: run any of
// the paper's configurations (or new ones) without writing C++.
//
//   ccas_run --setting=edge --groups=cubic:5:20,newreno:5:20 --measure=120
//   ccas_run --groups=bbr:1:20,newreno:1000:20 --rate=2000 --trace=0.5 --csv=run1
//   ccas_run --groups=newreno:600:20 --seeds=1,2,3,4 --jobs=4 --cache-dir=.ccas-cache
//
// Every run goes through the sweep executor: a plain invocation is a
// one-cell sweep, and --seeds fans one cell per seed across --jobs worker
// threads, with optional on-disk result caching (--cache-dir). Failing
// cells do not abort the sweep (unless --fail-fast): they are reported as
// explicit holes, quarantined as .repro replay files (--quarantine /
// --resume), and reflected in the exit code (tools/EXIT_CODES.md):
//
//   0  every cell succeeded
//   1  usage or configuration error (bad flags, manifest salt mismatch,
//      or any failure under --fail-fast)
//   2  at least one deterministic cell failure (exception, audit violation)
//   3  at least one budget blowout (and nothing deterministic)
//   4  only transient failures that exhausted their retries (cache I/O)
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/report.h"
#include "src/sweep/executor.h"

int main(int argc, char** argv) {
  using namespace ccas;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(cli_usage().c_str(), stdout);
      return 0;
    }
  }
  try {
    const CliOptions opts = parse_cli(args);
    std::printf("bottleneck %s, buffer %lld B, stagger %.1fs + warmup %.1fs + "
                "measure %.1fs\n\n",
                opts.spec.scenario.net.bottleneck_rate.to_string().c_str(),
                static_cast<long long>(opts.spec.scenario.net.buffer_bytes),
                opts.spec.scenario.stagger.sec(), opts.spec.scenario.warmup.sec(),
                opts.spec.scenario.measure.sec());

    sweep::SweepSpec sweep;
    sweep.name = "ccas_run";
    const std::vector<uint64_t> seeds =
        opts.seeds.empty() ? std::vector<uint64_t>{opts.spec.seed} : opts.seeds;
    for (const uint64_t seed : seeds) {
      ExperimentSpec spec = opts.spec;
      spec.seed = seed;
      sweep.add_cell("seed=" + std::to_string(seed), std::move(spec));
    }

    sweep::SweepExecutor executor(opts.sweep);
    const std::vector<sweep::CellOutcome> outcomes = executor.run(sweep);

    for (const sweep::CellOutcome& out : outcomes) {
      if (out.status == sweep::CellStatus::kFailed) {
        if (outcomes.size() > 1) {
          std::printf("=== %s (FAILED) ===\n", out.name.c_str());
        }
        std::printf("FAILED [%s] after %d attempt%s: %s\n",
                    sweep::failure_class_name(out.failure->cls),
                    out.failure->attempts, out.failure->attempts == 1 ? "" : "s",
                    out.failure->what.c_str());
        // One self-contained replay line; the quarantine .repro (if a dir
        // was configured) carries the same command plus budget flags.
        ExperimentSpec spec = opts.spec;
        spec.seed = seeds[static_cast<size_t>(&out - outcomes.data())];
        std::printf("repro: %s\n", spec_to_cli_command(spec).c_str());
        if (outcomes.size() > 1) std::printf("\n");
        continue;
      }
      if (out.status == sweep::CellStatus::kSkipped) {
        if (outcomes.size() > 1) {
          std::printf("=== %s (SKIPPED) ===\n", out.name.c_str());
        }
        std::printf("skipped: sweep aborted (--max-failures) before this cell "
                    "was claimed\n");
        if (outcomes.size() > 1) std::printf("\n");
        continue;
      }
      if (outcomes.size() > 1) {
        std::printf("=== %s%s ===\n", out.name.c_str(),
                    out.from_cache ? " (cached)" : "");
      }
      std::printf("%s", summarize(out.result).c_str());
      if (opts.perf) {
        // Profiles are per-run observational output, not serialized into
        // the cache, so cached cells come back without one.
        if (out.from_cache) {
          std::printf("perf: (cached result, no profile)\n");
        } else {
          std::printf("%s", out.result.sim_profile.summary().c_str());
        }
      }
      if (!opts.csv_prefix.empty() && !out.result.trace.empty()) {
        // With several seeds each trace gets a per-cell suffix.
        const std::string prefix =
            outcomes.size() > 1 ? opts.csv_prefix + "_" + out.name
                                : opts.csv_prefix;
        out.result.trace.write_csv(prefix);
        std::printf("trace written to %s_flows.csv / %s_queue.csv\n",
                    prefix.c_str(), prefix.c_str());
      }
      if (outcomes.size() > 1) std::printf("\n");
    }

    const sweep::SweepSummary& summary = executor.summary();
    if (summary.failed > 0 || summary.skipped > 0) {
      std::fprintf(stderr,
                   "[ccas_run] %d cells (%d cached, %d FAILED, %d skipped) in "
                   "%.2fs with %d jobs\n",
                   summary.total_cells, summary.from_cache, summary.failed,
                   summary.skipped, summary.wall_sec, summary.jobs);
    } else if (summary.total_cells > 1 || summary.from_cache > 0) {
      std::fprintf(stderr,
                   "[ccas_run] %d cells (%d cached) in %.2fs with %d jobs\n",
                   summary.total_cells, summary.from_cache, summary.wall_sec,
                   summary.jobs);
    }

    // Exit taxonomy, most-actionable class first: a deterministic failure
    // (2) beats a budget blowout (3) beats exhausted transients (4).
    bool any_deterministic = false;
    bool any_budget = false;
    bool any_transient = false;
    for (const sweep::CellFailure& f : executor.failures()) {
      if (sweep::failure_is_budget(f.cls)) {
        any_budget = true;
      } else if (sweep::failure_is_transient(f.cls)) {
        any_transient = true;
      } else {
        any_deterministic = true;
      }
    }
    if (any_deterministic) return 2;
    if (any_budget) return 3;
    if (any_transient) return 4;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
