// ccas_run — command-line front end to the experiment harness: run any of
// the paper's configurations (or new ones) without writing C++.
//
//   ccas_run --setting=edge --groups=cubic:5:20,newreno:5:20 --measure=120
//   ccas_run --groups=bbr:1:20,newreno:1000:20 --rate=2000 --trace=0.5 --csv=run1
//   ccas_run --groups=newreno:600:20 --seeds=1,2,3,4 --jobs=4 --cache-dir=.ccas-cache
//
// Every run goes through the sweep executor: a plain invocation is a
// one-cell sweep, and --seeds fans one cell per seed across --jobs worker
// threads, with optional on-disk result caching (--cache-dir).
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/report.h"
#include "src/sweep/executor.h"

int main(int argc, char** argv) {
  using namespace ccas;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(cli_usage().c_str(), stdout);
      return 0;
    }
  }
  try {
    const CliOptions opts = parse_cli(args);
    std::printf("bottleneck %s, buffer %lld B, stagger %.1fs + warmup %.1fs + "
                "measure %.1fs\n\n",
                opts.spec.scenario.net.bottleneck_rate.to_string().c_str(),
                static_cast<long long>(opts.spec.scenario.net.buffer_bytes),
                opts.spec.scenario.stagger.sec(), opts.spec.scenario.warmup.sec(),
                opts.spec.scenario.measure.sec());

    sweep::SweepSpec sweep;
    sweep.name = "ccas_run";
    const std::vector<uint64_t> seeds =
        opts.seeds.empty() ? std::vector<uint64_t>{opts.spec.seed} : opts.seeds;
    for (const uint64_t seed : seeds) {
      ExperimentSpec spec = opts.spec;
      spec.seed = seed;
      sweep.add_cell("seed=" + std::to_string(seed), std::move(spec));
    }

    sweep::SweepExecutor executor(opts.sweep);
    const std::vector<sweep::CellOutcome> outcomes = executor.run(sweep);

    for (const sweep::CellOutcome& out : outcomes) {
      if (outcomes.size() > 1) {
        std::printf("=== %s%s ===\n", out.name.c_str(),
                    out.from_cache ? " (cached)" : "");
      }
      std::printf("%s", summarize(out.result).c_str());
      if (opts.perf) {
        // Profiles are per-run observational output, not serialized into
        // the cache, so cached cells come back without one.
        if (out.from_cache) {
          std::printf("perf: (cached result, no profile)\n");
        } else {
          std::printf("%s", out.result.sim_profile.summary().c_str());
        }
      }
      if (!opts.csv_prefix.empty() && !out.result.trace.empty()) {
        // With several seeds each trace gets a per-cell suffix.
        const std::string prefix =
            outcomes.size() > 1 ? opts.csv_prefix + "_" + out.name
                                : opts.csv_prefix;
        out.result.trace.write_csv(prefix);
        std::printf("trace written to %s_flows.csv / %s_queue.csv\n",
                    prefix.c_str(), prefix.c_str());
      }
      if (outcomes.size() > 1) std::printf("\n");
    }

    const sweep::SweepSummary& summary = executor.summary();
    if (summary.total_cells > 1 || summary.from_cache > 0) {
      std::fprintf(stderr,
                   "[ccas_run] %d cells (%d cached) in %.2fs with %d jobs\n",
                   summary.total_cells, summary.from_cache, summary.wall_sec,
                   summary.jobs);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
