#!/usr/bin/env bash
# End-to-end exercise of the sweep supervision layer through the ccas_run
# binary: exit-code taxonomy (tools/EXIT_CODES.md), failure isolation
# (healthy cells byte-identical next to injected faults), quarantine
# .repro replay, transient retry, resume-after-abort byte identity, and
# manifest salt pinning. Run from the repo root:
#
#   tools/sweep_fault_ci.sh [path/to/ccas_run]
#
# CI runs it against the ASan build so every injected failure path is
# also leak/UB-checked. Uses only the CCAS_FAIL_CELL test hook; no cell
# here simulates more than a second of virtual time.
set -u

RUN="${1:-./build/tools/ccas_run}"
if [ ! -x "$RUN" ]; then
  echo "error: ccas_run binary not found at $RUN" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ccas_fault_ci.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# The grid under test: three seeds of a tiny two-flow EdgeScale cell.
BASE_FLAGS=(--setting=edge --groups=newreno:2:20 --rate=10 --buffer=100000
            --stagger=0.1 --warmup=0.3 --measure=0.5 --jobs=1)

run_case() {
  # run_case <name> <expected-exit> <stdout-file> [args...]
  local name="$1" want="$2" out="$3"
  shift 3
  "$@" >"$out" 2>"$out.err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: expected exit $want, got $got" >&2
    sed 's/^/    /' "$out.err" >&2
    FAILURES=$((FAILURES + 1))
    return 1
  fi
  echo "ok   [$name] (exit $got)"
}

# Prints the per-cell stdout block for one seed (header line through the
# blank separator), so healthy sections can be compared byte-for-byte
# across runs that differ only in which other cells failed. Resumed
# cells drop the "(cached)" suffix first.
cell_block() {
  sed 's/ (cached)//' "$1" | awk -v cell="=== seed=$2 ===" '
    $0 == cell { on = 1 }
    on { print; if ($0 == "") exit }'
}

# --- 1. Baseline: all healthy, exit 0 -------------------------------------
run_case baseline 0 "$WORK/ref.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3

# --- 2. Deterministic fault: exit 2, healthy cells intact, .repro ----------
run_case inject-throw 2 "$WORK/throw.out" \
  env CCAS_FAIL_CELL='seed=2:throw' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3 --quarantine="$WORK/quar"

for seed in 1 3; do
  cell_block "$WORK/ref.out" "$seed" >"$WORK/ref.cell"
  cell_block "$WORK/throw.out" "$seed" >"$WORK/throw.cell"
  if ! cmp -s "$WORK/ref.cell" "$WORK/throw.cell"; then
    echo "FAIL [inject-throw]: healthy cell seed=$seed diverged" >&2
    diff "$WORK/ref.cell" "$WORK/throw.cell" | sed 's/^/    /' >&2
    FAILURES=$((FAILURES + 1))
  fi
done
if ! grep -q 'FAILED \[exception\]' "$WORK/throw.out"; then
  echo "FAIL [inject-throw]: missing FAILED [exception] line" >&2
  FAILURES=$((FAILURES + 1))
fi
REPRO=$(ls "$WORK"/quar/*.repro 2>/dev/null | head -n1)
if [ -z "$REPRO" ]; then
  echo "FAIL [inject-throw]: no .repro file in quarantine dir" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 3. Real event budget: exit 3, and the .repro replays to exit 3 --------
run_case event-budget 3 "$WORK/events.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --cell-events=100 \
  --quarantine="$WORK/quar_events"
grep -q 'FAILED \[budget-events\]' "$WORK/events.out" || {
  echo "FAIL [event-budget]: missing FAILED [budget-events] line" >&2
  FAILURES=$((FAILURES + 1))
}
EVENTS_REPRO=$(ls "$WORK"/quar_events/*.repro 2>/dev/null | head -n1)
if [ -n "$EVENTS_REPRO" ]; then
  # The last line of the .repro is the replay command; swap in the binary
  # under test (the file names a bare `ccas_run`).
  REPLAY=$(tail -n1 "$EVENTS_REPRO" | sed "s|ccas_run|\"$RUN\"|")
  ( eval "$REPLAY" ) >"$WORK/replay.out" 2>&1
  got=$?
  if [ "$got" -ne 3 ]; then
    echo "FAIL [repro-replay]: expected exit 3 replaying $EVENTS_REPRO, got $got" >&2
    sed 's/^/    /' "$WORK/replay.out" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [repro-replay] (exit 3)"
  fi
else
  echo "FAIL [event-budget]: no .repro file written" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 4. Hung cell: the watchdog cancels it quickly, exit 3 -----------------
START=$(date +%s)
run_case hang-watchdog 3 "$WORK/hang.out" \
  env CCAS_FAIL_CELL='seed=1:hang' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --cell-timeout=1
ELAPSED=$(( $(date +%s) - START ))
if [ "$ELAPSED" -gt 30 ]; then
  echo "FAIL [hang-watchdog]: took ${ELAPSED}s, watchdog did not cancel" >&2
  FAILURES=$((FAILURES + 1))
fi
grep -q 'FAILED \[budget-wall-clock\]' "$WORK/hang.out" || {
  echo "FAIL [hang-watchdog]: missing FAILED [budget-wall-clock] line" >&2
  FAILURES=$((FAILURES + 1))
}

# --- 5. Transient faults: retries absorb two, three exhaust --retries=1 ----
run_case transient-recovers 0 "$WORK/cacheio_ok.out" \
  env CCAS_FAIL_CELL='seed=1:cacheio:2' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --retries=2
run_case transient-exhausts 4 "$WORK/cacheio_bad.out" \
  env CCAS_FAIL_CELL='seed=1:cacheio:3' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --retries=1

# --- 6. Interrupted sweep resumes byte-identically -------------------------
# --max-failures=1 plus an injected throw on the first cell aborts the
# sweep with seeds 2 and 3 never claimed; the resumed run re-attempts the
# failure and fills the holes. Merged output must equal the baseline
# (modulo the "(cached)" suffix on resumed cells).
run_case resume-interrupt 2 "$WORK/interrupted.out" \
  env CCAS_FAIL_CELL='seed=1:throw' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3 --max-failures=1 \
  --resume="$WORK/resume"
run_case resume-finish 0 "$WORK/resumed.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3 --resume="$WORK/resume"
sed 's/ (cached)//' "$WORK/resumed.out" >"$WORK/resumed.norm"
if ! cmp -s "$WORK/ref.out" "$WORK/resumed.norm"; then
  echo "FAIL [resume-finish]: resumed output differs from uninterrupted run" >&2
  diff "$WORK/ref.out" "$WORK/resumed.norm" | sed 's/^/    /' >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 7. Manifest salt mismatch is refused with exit 1 ----------------------
mkdir -p "$WORK/stale"
printf 'ccas-sweep-manifest v1 salt=some-older-simulator\n' \
  >"$WORK/stale/manifest.log"
run_case salt-mismatch 1 "$WORK/salt.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --resume="$WORK/stale"

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "sweep_fault_ci: $FAILURES scenario(s) FAILED" >&2
  exit 1
fi
echo "sweep_fault_ci: all scenarios passed"
