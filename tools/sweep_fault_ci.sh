#!/usr/bin/env bash
# End-to-end exercise of the sweep supervision layer through the ccas_run
# binary: exit-code taxonomy (tools/EXIT_CODES.md), failure isolation
# (healthy cells byte-identical next to injected faults), quarantine
# .repro replay, transient retry, resume-after-abort byte identity, and
# manifest salt pinning. Run from the repo root:
#
#   tools/sweep_fault_ci.sh [path/to/ccas_run] [path/to/ccas_fleet]
#
# CI runs it against the ASan build so every injected failure path is
# also leak/UB-checked. Uses only the CCAS_FAIL_CELL test hook; no cell
# here simulates more than a second of virtual time. The fleet scenarios
# (ccas_fleet, DESIGN.md §14) run three local workers against one shared
# store — one SIGKILLed mid-cell, one joining late — and gate the result
# on byte-identity with a serial sweep of the same grid.
set -u

RUN="${1:-./build/tools/ccas_run}"
FLEET="${2:-$(dirname "$RUN")/ccas_fleet}"
if [ ! -x "$RUN" ]; then
  echo "error: ccas_run binary not found at $RUN" >&2
  exit 1
fi
if [ ! -x "$FLEET" ]; then
  echo "error: ccas_fleet binary not found at $FLEET" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ccas_fault_ci.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# The grid under test: three seeds of a tiny two-flow EdgeScale cell.
BASE_FLAGS=(--setting=edge --groups=newreno:2:20 --rate=10 --buffer=100000
            --stagger=0.1 --warmup=0.3 --measure=0.5 --jobs=1)

run_case() {
  # run_case <name> <expected-exit> <stdout-file> [args...]
  local name="$1" want="$2" out="$3"
  shift 3
  "$@" >"$out" 2>"$out.err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: expected exit $want, got $got" >&2
    sed 's/^/    /' "$out.err" >&2
    FAILURES=$((FAILURES + 1))
    return 1
  fi
  echo "ok   [$name] (exit $got)"
}

# Prints the per-cell stdout block for one seed (header line through the
# blank separator), so healthy sections can be compared byte-for-byte
# across runs that differ only in which other cells failed. Resumed
# cells drop the "(cached)" suffix first.
cell_block() {
  sed 's/ (cached)//' "$1" | awk -v cell="=== seed=$2 ===" '
    $0 == cell { on = 1 }
    on { print; if ($0 == "") exit }'
}

# --- 1. Baseline: all healthy, exit 0 -------------------------------------
run_case baseline 0 "$WORK/ref.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3

# --- 2. Deterministic fault: exit 2, healthy cells intact, .repro ----------
run_case inject-throw 2 "$WORK/throw.out" \
  env CCAS_FAIL_CELL='seed=2:throw' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3 --quarantine="$WORK/quar"

for seed in 1 3; do
  cell_block "$WORK/ref.out" "$seed" >"$WORK/ref.cell"
  cell_block "$WORK/throw.out" "$seed" >"$WORK/throw.cell"
  if ! cmp -s "$WORK/ref.cell" "$WORK/throw.cell"; then
    echo "FAIL [inject-throw]: healthy cell seed=$seed diverged" >&2
    diff "$WORK/ref.cell" "$WORK/throw.cell" | sed 's/^/    /' >&2
    FAILURES=$((FAILURES + 1))
  fi
done
if ! grep -q 'FAILED \[exception\]' "$WORK/throw.out"; then
  echo "FAIL [inject-throw]: missing FAILED [exception] line" >&2
  FAILURES=$((FAILURES + 1))
fi
REPRO=$(ls "$WORK"/quar/*.repro 2>/dev/null | head -n1)
if [ -z "$REPRO" ]; then
  echo "FAIL [inject-throw]: no .repro file in quarantine dir" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 3. Real event budget: exit 3, and the .repro replays to exit 3 --------
run_case event-budget 3 "$WORK/events.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --cell-events=100 \
  --quarantine="$WORK/quar_events"
grep -q 'FAILED \[budget-events\]' "$WORK/events.out" || {
  echo "FAIL [event-budget]: missing FAILED [budget-events] line" >&2
  FAILURES=$((FAILURES + 1))
}
EVENTS_REPRO=$(ls "$WORK"/quar_events/*.repro 2>/dev/null | head -n1)
if [ -n "$EVENTS_REPRO" ]; then
  # The last line of the .repro is the replay command; swap in the binary
  # under test (the file names a bare `ccas_run`).
  REPLAY=$(tail -n1 "$EVENTS_REPRO" | sed "s|ccas_run|\"$RUN\"|")
  ( eval "$REPLAY" ) >"$WORK/replay.out" 2>&1
  got=$?
  if [ "$got" -ne 3 ]; then
    echo "FAIL [repro-replay]: expected exit 3 replaying $EVENTS_REPRO, got $got" >&2
    sed 's/^/    /' "$WORK/replay.out" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [repro-replay] (exit 3)"
  fi
else
  echo "FAIL [event-budget]: no .repro file written" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 4. Hung cell: the watchdog cancels it quickly, exit 3 -----------------
START=$(date +%s)
run_case hang-watchdog 3 "$WORK/hang.out" \
  env CCAS_FAIL_CELL='seed=1:hang' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --cell-timeout=1
ELAPSED=$(( $(date +%s) - START ))
if [ "$ELAPSED" -gt 30 ]; then
  echo "FAIL [hang-watchdog]: took ${ELAPSED}s, watchdog did not cancel" >&2
  FAILURES=$((FAILURES + 1))
fi
grep -q 'FAILED \[budget-wall-clock\]' "$WORK/hang.out" || {
  echo "FAIL [hang-watchdog]: missing FAILED [budget-wall-clock] line" >&2
  FAILURES=$((FAILURES + 1))
}

# --- 5. Transient faults: retries absorb two, three exhaust --retries=1 ----
run_case transient-recovers 0 "$WORK/cacheio_ok.out" \
  env CCAS_FAIL_CELL='seed=1:cacheio:2' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --retries=2
run_case transient-exhausts 4 "$WORK/cacheio_bad.out" \
  env CCAS_FAIL_CELL='seed=1:cacheio:3' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --retries=1

# --- 6. Interrupted sweep resumes byte-identically -------------------------
# --max-failures=1 plus an injected throw on the first cell aborts the
# sweep with seeds 2 and 3 never claimed; the resumed run re-attempts the
# failure and fills the holes. Merged output must equal the baseline
# (modulo the "(cached)" suffix on resumed cells).
run_case resume-interrupt 2 "$WORK/interrupted.out" \
  env CCAS_FAIL_CELL='seed=1:throw' \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3 --max-failures=1 \
  --resume="$WORK/resume"
run_case resume-finish 0 "$WORK/resumed.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1,2,3 --resume="$WORK/resume"
sed 's/ (cached)//' "$WORK/resumed.out" >"$WORK/resumed.norm"
if ! cmp -s "$WORK/ref.out" "$WORK/resumed.norm"; then
  echo "FAIL [resume-finish]: resumed output differs from uninterrupted run" >&2
  diff "$WORK/ref.out" "$WORK/resumed.norm" | sed 's/^/    /' >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 7. Manifest salt mismatch is refused with exit 1 ----------------------
mkdir -p "$WORK/stale"
printf 'ccas-sweep-manifest v1 salt=some-older-simulator\n' \
  >"$WORK/stale/manifest.log"
run_case salt-mismatch 1 "$WORK/salt.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds=1 --resume="$WORK/stale"

# --- 8. Fleet: 3 workers, one SIGKILLed mid-cell, one late joiner ----------
# A 24-cell grid worked by three local ccas_fleet processes sharing one
# store. Worker A hangs on seed=4 (CCAS_FAIL_CELL) and is SIGKILLed while
# holding its lease; after --lease-ttl the survivors reclaim the cell.
# Worker C joins a second late. The job must complete (B and C exit 0)
# and the store must be byte-identical to a serial --jobs=1 sweep of the
# same flags: same canonical manifest records, same results-file bytes.
FLEET_SEEDS=$(seq -s, 1 24)
run_case fleet-serial-ref 0 "$WORK/fleet_serial.out" \
  "$RUN" "${BASE_FLAGS[@]}" --seeds="$FLEET_SEEDS" --resume="$WORK/serial"

FLEET_FLAGS=("${BASE_FLAGS[@]}" --seeds="$FLEET_SEEDS"
             --fleet-dir="$WORK/fleet" --lease-ttl=2 --heartbeat=0.5
             --fleet-wait=120)
CCAS_FAIL_CELL='seed=4:hang' "$FLEET" "${FLEET_FLAGS[@]}" --worker-id=wA \
  >"$WORK/fleet_a.out" 2>"$WORK/fleet_a.err" &
PID_A=$!
"$FLEET" "${FLEET_FLAGS[@]}" --worker-id=wB \
  >"$WORK/fleet_b.out" 2>"$WORK/fleet_b.err" &
PID_B=$!
sleep 1
"$FLEET" "${FLEET_FLAGS[@]}" --worker-id=wC \
  >"$WORK/fleet_c.out" 2>"$WORK/fleet_c.err" &
PID_C=$!
sleep 1
kill -9 "$PID_A" 2>/dev/null
wait "$PID_A" 2>/dev/null
wait "$PID_B"; GOT_B=$?
wait "$PID_C"; GOT_C=$?
if [ "$GOT_B" -ne 0 ] || [ "$GOT_C" -ne 0 ]; then
  echo "FAIL [fleet-kill]: surviving workers exited $GOT_B/$GOT_C (want 0/0)" >&2
  sed 's/^/    /' "$WORK/fleet_b.err" "$WORK/fleet_c.err" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok   [fleet-kill] (exit 0/0 after SIGKILL of wA)"
fi

# Both survivors rendered the identical final report.
if ! cmp -s "$WORK/fleet_b.out" "$WORK/fleet_c.out"; then
  echo "FAIL [fleet-report]: workers rendered different final reports" >&2
  diff "$WORK/fleet_b.out" "$WORK/fleet_c.out" | sed 's/^/    /' >&2
  FAILURES=$((FAILURES + 1))
fi
# --report-only renders the same bytes from the store alone.
run_case fleet-report-only 0 "$WORK/fleet_ro.out" \
  "$FLEET" --fleet-dir="$WORK/fleet" --report-only
if ! cmp -s "$WORK/fleet_ro.out" "$WORK/fleet_b.out"; then
  echo "FAIL [fleet-report-only]: report differs from the workers'" >&2
  FAILURES=$((FAILURES + 1))
fi

# Byte-identity with the serial sweep: canonical manifest records (strip
# the per-run attempts/worker/fence fields, sort, dedup — a cell another
# worker finished between a reload and a claim is legitimately committed
# twice with identical bytes) and every results file. A determinism
# violation would surface as a `fail class=determinism-violation` line
# that no dedup can hide.
canonical_manifest() {
  sed -e 's/ attempts=[0-9]*//' -e 's/ worker=[^ ]*//' \
      -e 's/ fence=[0-9]*//' "$1" | sort -u
}
canonical_manifest "$WORK/serial/manifest.log" >"$WORK/serial.canon"
canonical_manifest "$WORK/fleet/manifest.log" >"$WORK/fleet.canon"
if ! cmp -s "$WORK/serial.canon" "$WORK/fleet.canon"; then
  echo "FAIL [fleet-identity]: fleet manifest diverges from serial sweep" >&2
  diff "$WORK/serial.canon" "$WORK/fleet.canon" | sed 's/^/    /' >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok   [fleet-identity] (manifest canonical match, 24 cells)"
fi
for ref in "$WORK"/serial/results/*.ccres; do
  if ! cmp -s "$ref" "$WORK/fleet/results/$(basename "$ref")"; then
    echo "FAIL [fleet-identity]: results file $(basename "$ref") differs" >&2
    FAILURES=$((FAILURES + 1))
  fi
done
# No lease litter after a clean finish.
if ls "$WORK"/fleet/leases/*.lease >/dev/null 2>&1; then
  echo "FAIL [fleet-identity]: leftover lease files after completion" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- 9. Fleet: transient cache-io faults are absorbed by retries -----------
run_case fleet-cacheio 0 "$WORK/fleet_io.out" \
  env CCAS_FAIL_CELL='seed=2:cacheio:2' \
  "$FLEET" "${BASE_FLAGS[@]}" --seeds=1,2,3 --retries=2 \
  --fleet-dir="$WORK/fleet_io" --lease-ttl=2 --heartbeat=0.5 --fleet-wait=60
# Each of its three cells matches the serial sweep's record for the same
# spec hash (seeds 1-3 are a subset of the 24-seed reference grid).
canonical_manifest "$WORK/fleet_io/manifest.log" >"$WORK/fleet_io.canon"
IO_CELLS=$(grep -c '^cell ' "$WORK/fleet_io.canon")
if [ "$IO_CELLS" -ne 3 ]; then
  echo "FAIL [fleet-cacheio]: expected 3 cell records, got $IO_CELLS" >&2
  FAILURES=$((FAILURES + 1))
fi
grep '^cell ' "$WORK/fleet_io.canon" | while IFS= read -r line; do
  if ! grep -qF "$line" "$WORK/serial.canon"; then
    echo "FAIL [fleet-cacheio]: record not in serial reference: $line" >&2
    exit 1
  fi
done || FAILURES=$((FAILURES + 1))

# --- 10. Fleet: mismatched stores are refused with exit 1 ------------------
mkdir -p "$WORK/fleet_stale"
printf 'ccas-fleet-job v1 salt=some-older-simulator\nend 0\n' \
  >"$WORK/fleet_stale/job.spec"
run_case fleet-salt-mismatch 1 "$WORK/fleet_salt.out" \
  "$FLEET" "${BASE_FLAGS[@]}" --seeds=1 --fleet-dir="$WORK/fleet_stale"
run_case fleet-grid-mismatch 1 "$WORK/fleet_grid.out" \
  "$FLEET" "${BASE_FLAGS[@]}" --seeds=1,2,4 --fleet-dir="$WORK/fleet_io"

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "sweep_fault_ci: $FAILURES scenario(s) FAILED" >&2
  exit 1
fi
echo "sweep_fault_ci: all scenarios passed"
