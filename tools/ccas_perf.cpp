// ccas_perf — perf-regression microbenchmark over pinned experiment cells.
//
// Runs a fixed grid of cells through the harness, reports events/sec from
// the kernel profiler, and writes the numbers as JSON (BENCH_events.json).
// With --baseline it compares against a previous JSON and fails (exit 2)
// when any cell regresses by more than --max-regress (default 25%) —
// that is the CI perf-smoke gate.
//
//   ccas_perf                                     # full grid, print JSON
//   ccas_perf --out=BENCH_events.json
//   ccas_perf --cells=smoke-edge,smoke-core --baseline=BENCH_events.json
//   ccas_perf --repeat=3 --max-regress=0.25
//
// The full cells (edge50, core1000) match the README's measured numbers;
// the smoke-* cells are small enough for CI (a few seconds each).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/runner.h"
#include "src/harness/scenario.h"

namespace {

using namespace ccas;

struct BenchCell {
  std::string name;
  ExperimentSpec spec;  // spec.shards > 1 = run on the parallel engine
};

FlowGroup group(const char* cca, int count, int rtt_ms) {
  FlowGroup g;
  g.cca = cca;
  g.count = count;
  g.rtt = TimeDelta::millis(rtt_ms);
  return g;
}

ExperimentSpec pinned_spec(Scenario scenario, std::vector<FlowGroup> groups,
                           double stagger_s, double warmup_s, double measure_s) {
  ExperimentSpec spec;
  spec.scenario = scenario;
  spec.scenario.stagger = TimeDelta::seconds_f(stagger_s);
  spec.scenario.warmup = TimeDelta::seconds_f(warmup_s);
  spec.scenario.measure = TimeDelta::seconds_f(measure_s);
  spec.groups = std::move(groups);
  spec.seed = 1;
  spec.record_drop_log = false;  // benchmark the simulator, not the logs
  return spec;
}

// The pinned grid. Changing any cell invalidates committed baselines, so
// treat these as append-only.
std::vector<BenchCell> all_cells() {
  std::vector<BenchCell> cells;
  cells.push_back({"edge50", pinned_spec(Scenario::edge_scale(),
                                         {group("cubic", 25, 20), group("newreno", 25, 80)},
                                         1.0, 2.0, 20.0)});
  cells.push_back({"core1000",
                   pinned_spec(Scenario::core_scale(),
                               {group("newreno", 600, 20), group("cubic", 400, 80)},
                               1.0, 2.0, 5.0)});
  // CI-sized cells.
  cells.push_back({"smoke-edge", pinned_spec(Scenario::edge_scale(),
                                             {group("cubic", 10, 20), group("newreno", 10, 80)},
                                             0.5, 1.0, 5.0)});
  {
    Scenario sc = Scenario::core_scale();
    sc.net.bottleneck_rate = DataRate::bps_f(2e9);
    sc.net.buffer_bytes = 75'000'000;  // ~1 BDP at 2 Gbps, 300 ms
    cells.push_back({"smoke-core", pinned_spec(sc,
                                               {group("newreno", 120, 20), group("cubic", 80, 80)},
                                               0.5, 1.0, 3.0)});
  }
  // Scale bands for the parallel engine (src/sim/parallel/): the paper's
  // full CoreScale population and a 4x stress band, run sharded. Serial
  // twins (shards 1) of the same specs give the speedup denominator —
  // results are byte-identical by construction, so both twins report the
  // same sim_events and only wall_sec/events_per_sec differ.
  {
    ExperimentSpec spec = pinned_spec(Scenario::core_scale(),
                                      {group("newreno", 3000, 20), group("cubic", 2000, 80)},
                                      0.5, 1.0, 2.0);
    cells.push_back({"core5000", spec});
    spec.shards = 8;
    cells.push_back({"core5000-sh8", spec});
  }
  {
    ExperimentSpec spec = pinned_spec(Scenario::core_scale(),
                                      {group("newreno", 12000, 20), group("cubic", 8000, 80)},
                                      0.5, 1.0, 1.0);
    cells.push_back({"core20000", spec});
    spec.shards = 8;
    cells.push_back({"core20000-sh8", spec});
  }
  // Userscale workload churn (src/workload/): 2000 open-loop short-flow
  // sessions/sec — 100k+ per simulated minute — pounding the dynamic
  // flow-table arena, the reaper, and the FCT sketches instead of a fixed
  // population. The alloc gate matters most here: every session creates
  // and destroys a flow, so any per-churn allocation multiplies by the
  // arrival rate rather than the flow count.
  {
    WorkloadClass web;
    web.name = "web";
    web.weight = 1.0;
    web.cca = "cubic";
    web.rtt = TimeDelta::millis(20);
    web.size.kind = SizeDistKind::kPareto;
    web.size.pareto_alpha = 1.2;
    web.size.min_segments = 2;
    web.size.max_segments = 200;
    web.app = AppModel::kWebObject;
    web.app_burst_segments = 8;
    web.app_gap = TimeDelta::millis(2);
    ExperimentSpec spec = pinned_spec(Scenario::core_scale(), {}, 0.0, 0.5, 30.0);
    spec.workload.arrival = ArrivalKind::kPoisson;
    spec.workload.arrivals_per_sec = 2000.0;
    spec.workload.max_concurrent = 8192;
    spec.workload.classes = {web};
    cells.push_back({"userscale2000", spec});
    // CI-sized twin: same churn rate, short window.
    spec.scenario.measure = TimeDelta::seconds_f(5.0);
    cells.push_back({"smoke-userscale", spec});
  }
  return cells;
}

struct CellResult {
  std::string name;
  int flows = 0;
  int shards = 1;
  uint64_t sim_events = 0;
  double wall_sec = 0.0;
  double sim_sec = 0.0;
  double events_per_sec = 0.0;
  // Heap allocations per dispatched event inside the measurement window
  // (warm-up excluded). Steady state is ~0: any sustained per-event
  // allocation is a hot-path regression the events/sec number might absorb
  // on a fast machine — the --alloc-gate catches it directly.
  double allocs_per_event = 0.0;
};

// events/sec at the smallest flow count divided by events/sec at the
// largest, from one grid run: the flow-count scaling cliff in one number
// (1.0 = flat; the paper-scale gap this PR attacks was ~2.5x).
std::optional<double> degradation_ratio(const std::vector<CellResult>& results) {
  const CellResult* lo = nullptr;
  const CellResult* hi = nullptr;
  for (const CellResult& r : results) {
    if (r.shards != 1) continue;  // compare like with like: serial cells
    if (lo == nullptr || r.flows < lo->flows) lo = &r;
    if (hi == nullptr || r.flows > hi->flows) hi = &r;
  }
  if (lo == nullptr || hi == nullptr || lo == hi || hi->events_per_sec <= 0.0) {
    return std::nullopt;
  }
  return lo->events_per_sec / hi->events_per_sec;
}

std::string to_json(const std::vector<CellResult>& results) {
  std::ostringstream out;
  out << "{\n  \"ccas_perf\": 1,\n";
  if (const auto ratio = degradation_ratio(results)) {
    char line[64];
    std::snprintf(line, sizeof(line), "  \"degradation_ratio\": %.3f,\n",
                  *ratio);
    out << line;
  }
  out << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    char line[384];
    // wall_sec at full microsecond precision: the smoke cells finish in
    // tens of milliseconds, where three decimals used to round away most
    // of the measurement (and any hand math against events_per_sec).
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"flows\": %d, \"shards\": %d, "
                  "\"sim_events\": %llu, "
                  "\"wall_sec\": %.6f, \"sim_sec\": %.3f, \"events_per_sec\": %.0f, "
                  "\"allocs_per_event\": %.6f}",
                  r.name.c_str(), r.flows, r.shards,
                  static_cast<unsigned long long>(r.sim_events), r.wall_sec,
                  r.sim_sec, r.events_per_sec, r.allocs_per_event);
    out << line << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

// Minimal extraction from a previous ccas_perf JSON: finds the cell object
// by name and reads its events_per_sec. Only needs to parse what this tool
// itself writes.
std::optional<double> baseline_events_per_sec(const std::string& json,
                                              const std::string& cell) {
  const std::string needle = "\"name\": \"" + cell + "\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::string key = "\"events_per_sec\":";
  const size_t k = json.find(key, at);
  if (k == std::string::npos) return std::nullopt;
  const size_t obj_end = json.find('}', at);
  if (obj_end != std::string::npos && k > obj_end) return std::nullopt;
  return std::strtod(json.c_str() + k + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> only;
  std::string out_path;
  std::string baseline_path;
  double max_regress = 0.25;
  double alloc_gate = -1.0;  // < 0 = off
  int repeat = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--help" || key == "-h") {
      std::puts(
          "usage: ccas_perf [--cells=a,b] [--out=file.json] [--repeat=n]\n"
          "                 [--baseline=file.json] [--max-regress=frac]\n"
          "                 [--alloc-gate=allocs_per_event]\n"
          "cells: edge50 core1000 smoke-edge smoke-core core5000\n"
          "       core5000-sh8 core20000 core20000-sh8 userscale2000\n"
          "       smoke-userscale (default: all)\n"
          "exit 2 if any cell's events/sec falls more than max-regress\n"
          "(default 0.25) below the baseline, or if any cell's measured\n"
          "heap allocations per event exceed the --alloc-gate threshold\n"
          "(steady state is ~0; try 0.001)");
      return 0;
    } else if (key == "--cells") {
      size_t start = 0;
      while (start <= value.size()) {
        const size_t pos = value.find(',', start);
        only.push_back(value.substr(start, pos - start));
        if (pos == std::string::npos) break;
        start = pos + 1;
      }
    } else if (key == "--out") {
      out_path = value;
    } else if (key == "--baseline") {
      baseline_path = value;
    } else if (key == "--max-regress") {
      max_regress = std::strtod(value.c_str(), nullptr);
    } else if (key == "--alloc-gate") {
      alloc_gate = std::strtod(value.c_str(), nullptr);
    } else if (key == "--repeat") {
      repeat = std::atoi(value.c_str());
      if (repeat < 1) repeat = 1;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", key.c_str());
      return 1;
    }
  }

  std::string baseline_json;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    baseline_json = ss.str();
  }

  try {
    std::vector<CellResult> results;
    bool regressed = false;
    for (const BenchCell& cell : all_cells()) {
      if (!only.empty() &&
          std::find(only.begin(), only.end(), cell.name) == only.end()) {
        continue;
      }
      CellResult best;
      for (int rep = 0; rep < repeat; ++rep) {
        const ExperimentResult res = run_experiment(cell.spec);
        CellResult r;
        r.name = cell.name;
        r.flows = cell.spec.total_flows();
        r.shards = cell.spec.shards;
        r.sim_events = res.sim_events;
        r.wall_sec = res.sim_profile.wall_seconds;
        r.sim_sec = res.sim_profile.sim_seconds;
        r.events_per_sec = res.sim_profile.events_per_wall_sec();
        if (res.measure_sim_events > 0) {
          r.allocs_per_event = static_cast<double>(res.measure_heap_allocs) /
                               static_cast<double>(res.measure_sim_events);
        }
        if (rep == 0 || r.events_per_sec > best.events_per_sec) best = r;
      }
      std::printf("%-13s %6d flows  sh%-2d  %12llu events  %8.3fs wall  %11.0f events/sec  %.6f allocs/event\n",
                  best.name.c_str(), best.flows, best.shards,
                  static_cast<unsigned long long>(best.sim_events), best.wall_sec,
                  best.events_per_sec, best.allocs_per_event);
      if (alloc_gate >= 0.0 && best.allocs_per_event > alloc_gate) {
        std::fprintf(stderr,
                     "ALLOC REGRESSION: %s at %.6f heap allocs/event exceeds "
                     "the %.6f gate — something allocates on the hot path\n",
                     best.name.c_str(), best.allocs_per_event, alloc_gate);
        regressed = true;
      }
      if (!baseline_json.empty()) {
        if (const auto base = baseline_events_per_sec(baseline_json, best.name)) {
          const double ratio = *base > 0.0 ? best.events_per_sec / *base : 1.0;
          std::printf("%-12s        vs baseline %11.0f events/sec  (%+.1f%%)\n", "",
                      *base, (ratio - 1.0) * 100.0);
          if (ratio < 1.0 - max_regress) {
            std::fprintf(stderr,
                         "REGRESSION: %s at %.0f events/sec is %.1f%% below "
                         "baseline %.0f (allowed %.0f%%)\n",
                         best.name.c_str(), best.events_per_sec,
                         (1.0 - ratio) * 100.0, *base, max_regress * 100.0);
            regressed = true;
          }
        } else {
          std::printf("%-12s        (no baseline entry)\n", "");
        }
      }
      results.push_back(best);
    }

    if (results.empty()) {
      std::fprintf(stderr, "no cells selected\n");
      return 1;
    }
    if (const auto ratio = degradation_ratio(results)) {
      std::printf("degradation_ratio (events/sec smallest / largest serial cell): %.3f\n",
                  *ratio);
    }
    const std::string json = to_json(results);
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      out << json;
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fputs(json.c_str(), stdout);
    }
    return regressed ? 2 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
