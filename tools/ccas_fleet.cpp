// ccas_fleet — one worker process of a multi-process sweep fleet
// (DESIGN.md §14). Point N independent invocations (same grid flags, any
// mix of hosts sharing the filesystem) at one --fleet-dir and they divide
// the grid between them through per-cell leases, journal outcomes into a
// shared manifest, and converge on results byte-identical to a serial
// `ccas_run` of the same flags:
//
//   ccas_fleet --fleet-dir=/shared/job1 --groups=newreno:4:20
//              --seeds=1,2,3,4,5,6,7,8 &     (twice, then `wait`:
//   both exit when the manifest covers the grid)
//
// A worker killed mid-cell (even kill -9) simply stops renewing its
// lease; after --lease-ttl any surviving worker reclaims the cell. A
// worker that stalls past its TTL and later wakes finds its fencing
// token stale and abandons the cell instead of double-committing. The
// job is complete when the shared manifest covers the frozen grid — no
// coordinator, no "done" message; every worker (and --report-only)
// renders byte-identical final reports from the store.
//
// Exit codes (tools/EXIT_CODES.md): 0 ok, 1 usage/config (bad flags,
// salt or grid mismatch), 2 deterministic cell failure, 3 budget
// blowout, 4 transient-exhausted, 5 job incomplete (--fleet-wait hit, or
// --report-only on an unfinished store).
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/sweep/fleet/store.h"
#include "src/sweep/fleet/worker.h"
#include "src/sweep/spec_hash.h"

int main(int argc, char** argv) {
  using namespace ccas;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(fleet_cli_usage().c_str(), stdout);
      return 0;
    }
  }
  try {
    const FleetCli cli = parse_fleet_cli(args);

    if (cli.fleet.report_only) {
      sweep::fleet::FleetStore store(cli.fleet.fleet_dir,
                                     std::string(sweep::kSweepCodeSalt));
      std::fputs(sweep::fleet::render_fleet_report(store).c_str(), stdout);
      return sweep::fleet::fleet_exit_code(store);
    }

    sweep::SweepSpec sweep;
    sweep.name = "ccas_fleet";
    const std::vector<uint64_t> seeds =
        cli.run.seeds.empty() ? std::vector<uint64_t>{cli.run.spec.seed}
                              : cli.run.seeds;
    for (const uint64_t seed : seeds) {
      ExperimentSpec spec = cli.run.spec;
      spec.seed = seed;
      sweep.add_cell("seed=" + std::to_string(seed), std::move(spec));
    }

    sweep::fleet::FleetOptions opts;
    opts.dir = cli.fleet.fleet_dir;
    opts.worker_id = cli.fleet.worker_id;
    opts.lease_ttl_ms = cli.fleet.lease_ttl_ms;
    opts.heartbeat_ms = cli.fleet.heartbeat_ms;
    opts.stall_timeout_ms = cli.fleet.wait_ms;
    opts.cache_salt = cli.run.sweep.cache_salt;
    opts.cell_timeout = cli.run.sweep.cell_timeout;
    opts.max_cell_events = cli.run.sweep.max_cell_events;
    opts.max_cell_rss_bytes = cli.run.sweep.max_cell_rss_bytes;
    opts.retries = cli.run.sweep.retries;

    sweep::fleet::FleetWorker worker(opts);
    const sweep::fleet::FleetSummary summary = worker.run(sweep);

    std::fputs(summary.report.c_str(), stdout);
    std::fprintf(stderr,
                 "[ccas_fleet %s] %d cells (%d computed here, %d adopted, "
                 "%d reattempted, %d leases lost) in %.2fs%s\n",
                 worker.options().worker_id.c_str(), summary.total_cells,
                 summary.computed, summary.adopted, summary.reattempts,
                 summary.lost_leases, summary.wall_sec,
                 summary.complete ? "" : " — JOB INCOMPLETE");
    return summary.exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
