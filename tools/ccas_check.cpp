// ccas_check — record and verify the golden-trace regression digests.
//
//   ccas_check list                 show the grid cells
//   ccas_check record [file]       run the grid, write goldens
//   ccas_check verify [file]       run the grid, compare against goldens
//
// Without an explicit file the checked-in default (tests/golden/goldens.txt,
// resolved at configure time) is used. `verify` exits non-zero on any digest
// mismatch and prints a per-cell diff with the summary deltas. Runs audit
// the grid with the invariant auditor enabled: a golden that only records
// under a violated invariant is worthless.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/check/audit.h"
#include "src/check/golden.h"
#include "src/harness/runner.h"

#ifndef CCAS_DEFAULT_GOLDENS
#define CCAS_DEFAULT_GOLDENS "tests/golden/goldens.txt"
#endif

namespace {

std::vector<ccas::check::GoldenRecord> run_grid() {
  std::vector<ccas::check::GoldenRecord> records;
  for (const ccas::check::GoldenCell& cell : ccas::check::golden_grid()) {
    ccas::ExperimentSpec spec = cell.spec;
    spec.audit = true;  // run_experiment throws on any invariant violation
    std::printf("running %-22s ...", cell.name.c_str());
    std::fflush(stdout);
    const ccas::ExperimentResult result = ccas::run_experiment(spec);
    // Digest the spec as declared in the grid (without the observational
    // audit flag forced on above, which is not encoded anyway).
    records.push_back(
        ccas::check::make_golden_record(cell.name, cell.spec, result));
    std::printf(" %016llx\n",
                static_cast<unsigned long long>(records.back().digest));
  }
  return records;
}

int usage() {
  std::fputs(
      "usage: ccas_check <list|record|verify> [goldens-file]\n"
      "  list    print the golden grid cells\n"
      "  record  run the grid and (over)write the goldens file\n"
      "  verify  run the grid and compare digests against the goldens file\n"
      "default goldens file: " CCAS_DEFAULT_GOLDENS "\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::string path = argc > 2 ? argv[2] : CCAS_DEFAULT_GOLDENS;
  try {
    if (cmd == "list") {
      for (const ccas::check::GoldenCell& cell : ccas::check::golden_grid()) {
        std::printf("%-22s %s, %d flows, seed %llu\n", cell.name.c_str(),
                    cell.spec.scenario.name().c_str(), cell.spec.total_flows(),
                    static_cast<unsigned long long>(cell.spec.seed));
      }
      return 0;
    }
    if (cmd == "record") {
      const auto records = run_grid();
      ccas::check::save_goldens(path, records);
      std::printf("wrote %zu goldens to %s\n", records.size(), path.c_str());
      return 0;
    }
    if (cmd == "verify") {
      const auto expected = ccas::check::load_goldens(path);
      const auto actual = run_grid();
      const ccas::check::GoldenDiff diff =
          ccas::check::compare_goldens(expected, actual);
      std::fputs(diff.report.c_str(), stdout);
      if (!diff.ok) {
        std::fputs("golden verification FAILED; if the behavior change is "
                   "intended, re-record with `ccas_check record`\n",
                   stderr);
        return 1;
      }
      std::printf("all %zu goldens match\n", expected.size());
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ccas_check: %s\n", e.what());
    return 1;
  }
}
