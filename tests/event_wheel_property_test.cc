// Property test: the timing-wheel EventQueue against a plain binary-heap
// reference, driven with the same randomized push/pop sequences. Dispatch
// order must be identical event-for-event — including FIFO ties at equal
// timestamps and far-future events that cross the wheels' ~68.7 s horizon
// into the overflow tier. The golden traces prove equivalence for the
// configurations they cover; this proves it for adversarial schedules
// (dense ties, horizon-straddling mixes, pop-until-empty interleavings)
// no experiment happens to generate.
#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "src/util/rng.h"

namespace ccas {
namespace {

class NullHandler : public EventHandler {
 public:
  void on_event(uint32_t, uint64_t) override {}
};

// The old implementation, verbatim in spirit: one std::priority_queue over
// (time, seq) with a monotone sequence counter.
class ReferenceHeap {
 public:
  void push(Time at, uint32_t tag, uint64_t arg) {
    heap_.push(Event{at, next_seq_++, Time::zero(), nullptr, arg, 0, tag});
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] size_t size() const { return heap_.size(); }
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  uint64_t next_seq_ = 0;
};

void expect_same_event(const Event& a, const Event& b, uint64_t step) {
  ASSERT_EQ(a.at.ns(), b.at.ns()) << "step " << step;
  ASSERT_EQ(a.seq, b.seq) << "step " << step;
  ASSERT_EQ(a.tag, b.tag) << "step " << step;
  ASSERT_EQ(a.arg, b.arg) << "step " << step;
}

// Drives both queues with an identical random schedule. `now` tracks the
// last popped time: pushes are always at or after it, mirroring the
// simulator's no-scheduling-into-the-past rule the wheel cursor relies on.
void run_random_schedule(uint64_t seed) {
  Rng rng(seed);
  NullHandler handler;
  EventQueue wheel;
  ReferenceHeap heap;
  uint64_t now_ns = 0;
  uint64_t op_count = 0;

  auto push_at = [&](uint64_t at_ns) {
    wheel.push(Time::nanos(static_cast<int64_t>(at_ns)), &handler,
               static_cast<uint32_t>(op_count % 7), op_count);
    heap.push(Time::nanos(static_cast<int64_t>(at_ns)),
              static_cast<uint32_t>(op_count % 7), op_count);
    ++op_count;
  };
  auto pop_both = [&](uint64_t step) {
    ASSERT_EQ(wheel.empty(), heap.empty()) << "step " << step;
    if (wheel.empty()) return;
    const Event a = wheel.pop();
    const Event b = heap.pop();
    expect_same_event(a, b, step);
    now_ns = static_cast<uint64_t>(a.at.ns());
  };

  for (uint64_t step = 0; step < 20000; ++step) {
    const uint64_t op = rng.next_u64() % 100;
    if (op < 55) {
      // Push at a horizon chosen to exercise every tier: the current due
      // slot, each wheel level, and the overflow heap.
      const uint64_t tier = rng.next_u64() % 6;
      uint64_t delta = 0;
      switch (tier) {
        case 0: delta = rng.next_u64() % (1u << 12); break;          // due slot
        case 1: delta = rng.next_u64() % (1u << 20); break;          // level 0
        case 2: delta = rng.next_u64() % (1u << 28); break;          // level 1
        case 3: delta = rng.next_u64() % (uint64_t{1} << 36); break; // level 2
        case 4: delta = rng.next_u64() % (uint64_t{1} << 40); break; // overflow
        default: delta = 0; break;                                   // tie at now
      }
      push_at(now_ns + delta);
      // Frequently add an exact-tie duplicate: FIFO order among equal
      // timestamps is the subtle half of the ordering contract.
      if (rng.next_u64() % 3 == 0) push_at(now_ns + delta);
    } else if (op < 90) {
      pop_both(step);
    } else {
      // Pop a run, re-pushing around the new now: the interleaving that
      // forces cascades and overflow drains mid-schedule.
      const uint64_t burst = 1 + rng.next_u64() % 8;
      for (uint64_t i = 0; i < burst; ++i) {
        pop_both(step);
        if (rng.next_u64() % 2 == 0) push_at(now_ns + rng.next_u64() % 5000);
      }
    }
    ASSERT_EQ(wheel.size(), heap.size()) << "step " << step;
  }
  // Drain: the full remaining order must match.
  uint64_t step = 20000;
  while (!heap.empty()) {
    pop_both(step++);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventWheelProperty, MatchesBinaryHeapAcrossSeeds) {
  for (const uint64_t seed : {1ULL, 7ULL, 42ULL, 0xabcdefULL, 0x5eedULL}) {
    SCOPED_TRACE(seed);
    run_random_schedule(seed);
  }
}

TEST(EventWheelProperty, FarFutureOverflowKeepsOrder) {
  // Directed: events far beyond the wheels' horizon (> 2^36 ns ~ 68.7 s),
  // interleaved with near ones, must still come out in (time, seq) order.
  NullHandler handler;
  EventQueue wheel;
  ReferenceHeap heap;
  const int64_t times_ns[] = {
      100,  ((int64_t{1} << 36) + 5),  50,  (int64_t{3} << 36),  4096,
      ((int64_t{1} << 36) + 5),  // tie with an earlier overflow push
      (int64_t{2} << 40),  1,  ((int64_t{1} << 36) - 1),
  };
  uint64_t op = 0;
  for (const int64_t t : times_ns) {
    wheel.push(Time::nanos(t), &handler, 0, op);
    heap.push(Time::nanos(t), 0, op);
    ++op;
  }
  uint64_t step = 0;
  while (!heap.empty()) {
    const Event a = wheel.pop();
    const Event b = heap.pop();
    expect_same_event(a, b, step++);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventWheelProperty, PushBehindCursorAfterRunUntilStyleAdvance) {
  // run_until(deadline) advances the simulator clock past top() without
  // popping; a later push may then land "behind" the settled cursor. The
  // queue must still dispatch it in correct order relative to what is
  // pending.
  NullHandler handler;
  EventQueue wheel;
  ReferenceHeap heap;
  wheel.push(Time::nanos(1 << 20), &handler, 0, 0);  // settles cursor forward
  heap.push(Time::nanos(1 << 20), 0, 0);
  (void)wheel.top();  // forces the wheel to settle onto the 1<<20 slot
  // Now push earlier than the settled slot start but >= any popped time.
  wheel.push(Time::nanos((1 << 20) - 100), &handler, 0, 1);
  heap.push(Time::nanos((1 << 20) - 100), 0, 1);
  const Event a1 = wheel.pop();
  const Event b1 = heap.pop();
  expect_same_event(a1, b1, 0);
  const Event a2 = wheel.pop();
  const Event b2 = heap.pop();
  expect_same_event(a2, b2, 1);
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace ccas
