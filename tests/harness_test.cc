// Scenario presets, experiment validation, result bookkeeping, and the
// report tables.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/harness/report.h"
#include "src/harness/runner.h"

namespace ccas {
namespace {

TEST(Scenario, EdgeScaleMatchesPaper) {
  const Scenario s = Scenario::edge_scale();
  EXPECT_EQ(s.net.bottleneck_rate, DataRate::mbps(100));
  EXPECT_EQ(s.net.buffer_bytes, 3'000'000);
  EXPECT_EQ(s.net.num_pairs, 10);
  EXPECT_EQ(s.name(), "EdgeScale");
}

TEST(Scenario, CoreScaleMatchesPaper) {
  const Scenario s = Scenario::core_scale();
  EXPECT_EQ(s.net.bottleneck_rate, DataRate::gbps(10));
  EXPECT_EQ(s.net.buffer_bytes, 375'000'000);
  EXPECT_EQ(s.name(), "CoreScale");
}

TEST(Scenario, EnvOverridesScaleBandwidthAndBuffer) {
  ::setenv("REPRO_SCALE", "0.1", 1);
  ::setenv("REPRO_MEASURE_SEC", "3.5", 1);
  Scenario s = Scenario::core_scale();
  const double scale = s.apply_env_overrides();
  ::unsetenv("REPRO_SCALE");
  ::unsetenv("REPRO_MEASURE_SEC");
  EXPECT_DOUBLE_EQ(scale, 0.1);
  EXPECT_EQ(s.net.bottleneck_rate, DataRate::gbps(1));
  EXPECT_EQ(s.net.buffer_bytes, 37'500'000);
  EXPECT_DOUBLE_EQ(s.measure.sec(), 3.5);
  EXPECT_EQ(scaled_flow_count(1000, scale), 100);
  EXPECT_EQ(scaled_flow_count(3, 0.001), 1);  // never zero flows
}

TEST(Scenario, NoEnvMeansIdentity) {
  ::unsetenv("REPRO_SCALE");
  Scenario s = Scenario::edge_scale();
  EXPECT_DOUBLE_EQ(s.apply_env_overrides(), 1.0);
  EXPECT_EQ(s.net.bottleneck_rate, DataRate::mbps(100));
}

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(20);
  spec.scenario.net.buffer_bytes = 200'000;
  spec.scenario.stagger = TimeDelta::millis(100);
  spec.scenario.warmup = TimeDelta::seconds(1);
  spec.scenario.measure = TimeDelta::seconds(3);
  spec.groups.push_back(FlowGroup{"newreno", 4, TimeDelta::millis(20)});
  spec.seed = 7;
  return spec;
}

TEST(Runner, RejectsMalformedSpecs) {
  ExperimentSpec empty;
  EXPECT_THROW(run_experiment(empty), std::invalid_argument);

  ExperimentSpec bad_cca = tiny_spec();
  bad_cca.groups[0].cca = "nope";
  EXPECT_THROW(run_experiment(bad_cca), std::invalid_argument);

  ExperimentSpec bad_count = tiny_spec();
  bad_count.groups[0].count = 0;
  EXPECT_THROW(run_experiment(bad_count), std::invalid_argument);

  ExperimentSpec bad_rtt = tiny_spec();
  bad_rtt.groups[0].rtt = TimeDelta::zero();
  EXPECT_THROW(run_experiment(bad_rtt), std::invalid_argument);
}

TEST(Runner, ProducesConsistentResultStructure) {
  const ExperimentResult r = run_experiment(tiny_spec());
  ASSERT_EQ(r.flows.size(), 4u);
  ASSERT_EQ(r.flow_group.size(), 4u);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].cca, "newreno");
  EXPECT_EQ(r.groups[0].count, 4);
  EXPECT_NEAR(r.groups[0].throughput_share, 1.0, 1e-9);
  double sum = 0.0;
  for (const auto& f : r.flows) sum += f.goodput_bps;
  EXPECT_NEAR(sum, r.aggregate_goodput_bps, 1.0);
  EXPECT_EQ(r.measured_for, TimeDelta::seconds(3));
  EXPECT_GT(r.sim_events, 1000u);
}

TEST(Runner, SaturatesTheBottleneck) {
  const ExperimentResult r = run_experiment(tiny_spec());
  EXPECT_GT(r.utilization, 0.9);
  EXPECT_LT(r.utilization, 1.1);
}

TEST(Runner, DeterministicForSameSeed) {
  const ExperimentResult a = run_experiment(tiny_spec());
  const ExperimentResult b = run_experiment(tiny_spec());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].goodput_bps, b.flows[i].goodput_bps);
    EXPECT_EQ(a.flows[i].segments_sent, b.flows[i].segments_sent);
    EXPECT_EQ(a.flows[i].queue_drops, b.flows[i].queue_drops);
  }
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(Runner, DifferentSeedsDiffer) {
  ExperimentSpec s2 = tiny_spec();
  s2.seed = 8;
  const ExperimentResult a = run_experiment(tiny_spec());
  const ExperimentResult b = run_experiment(s2);
  EXPECT_NE(a.flows[0].segments_sent, b.flows[0].segments_sent);
}

TEST(Runner, TwoGroupsSplitTraffic) {
  ExperimentSpec spec = tiny_spec();
  spec.groups.push_back(FlowGroup{"cubic", 4, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_NEAR(r.groups[0].throughput_share + r.groups[1].throughput_share, 1.0, 1e-9);
  EXPECT_EQ(r.flows.size(), 8u);
  // flow_group maps the first 4 flows to group 0.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.flow_group[static_cast<size_t>(i)], 0);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(r.flow_group[static_cast<size_t>(i)], 1);
  // Group accessors agree.
  EXPECT_EQ(r.group_goodputs(0).size(), 4u);
  EXPECT_GT(r.jfi_group(0), 0.0);
  EXPECT_THROW(r.jfi_group(2), std::out_of_range);
}

TEST(Runner, WarmupExcludedFromMeasurement) {
  // A run whose measurement window is tiny still reports sane counters
  // because warm-up traffic was excluded.
  ExperimentSpec spec = tiny_spec();
  spec.scenario.measure = TimeDelta::millis(500);
  const ExperimentResult r = run_experiment(spec);
  for (const auto& f : r.flows) {
    // Over 0.5s at 20 Mbps the whole link moves ~860 segments; per-flow
    // counts must be in that ballpark, not inflated by warm-up traffic.
    EXPECT_LT(f.segments_sent, 2000u);
  }
}

TEST(Runner, ConvergenceEarlyStop) {
  ExperimentSpec spec = tiny_spec();
  spec.scenario.measure = TimeDelta::seconds(30);
  spec.convergence_window = TimeDelta::seconds(2);
  spec.convergence_poll = TimeDelta::millis(250);
  spec.convergence_tolerance = 0.05;  // loose: stop quickly
  const ExperimentResult r = run_experiment(spec);
  EXPECT_TRUE(r.converged_early);
  EXPECT_LT(r.measured_for, TimeDelta::seconds(30));
  EXPECT_GE(r.measured_for, TimeDelta::seconds(2));
}

TEST(Runner, DropLogDisabledLeavesDropTimesEmpty) {
  ExperimentSpec spec = tiny_spec();
  spec.record_drop_log = false;
  const ExperimentResult r = run_experiment(spec);
  EXPECT_TRUE(r.drop_times.empty());
  EXPECT_GT(r.queue.dropped_packets, 0u);  // drops still counted
}

TEST(Report, TableRendersAligned) {
  Table t({"a", "bee", "c"});
  t.row().col("x").col(1.5, 1).col(static_cast<int64_t>(42)).done();
  t.row().col("longer").pct(0.5).col(static_cast<int64_t>(1)).done();
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a       bee    c"), std::string::npos);
  EXPECT_NE(out.find("x       1.5    42"), std::string::npos);
  EXPECT_NE(out.find("longer  50.0%  1"), std::string::npos);
}

TEST(Report, FormatRate) {
  EXPECT_EQ(format_rate(9.65e9), "9.65 Gbps");
  EXPECT_EQ(format_rate(1.2e6), "1.20 Mbps");
  EXPECT_EQ(format_rate(3.5e3), "3.50 kbps");
  EXPECT_EQ(format_rate(12.0), "12 bps");
}

TEST(Report, SummarizeContainsGroups) {
  const ExperimentResult r = run_experiment(tiny_spec());
  const std::string s = summarize(r);
  EXPECT_NE(s.find("newreno"), std::string::npos);
  EXPECT_NE(s.find("utilization"), std::string::npos);
}

}  // namespace
}  // namespace ccas
