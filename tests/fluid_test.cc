#include "src/models/fluid.h"

#include <gtest/gtest.h>

namespace ccas {
namespace {

FluidParams edge_params() {
  FluidParams p;
  p.capacity = DataRate::mbps(100);
  p.buffer_bytes = 3'000'000;
  p.base_rtt = TimeDelta::millis(20);
  return p;
}

TEST(Fluid, SingleFlowSaturates) {
  // Start near the pipe's capacity: one fluid sawtooth at this BDP+buffer
  // is ~10 minutes, so growing from W=10 would need a very long run.
  FluidAimdSimulator sim(edge_params());
  const FluidResult r = sim.run(1, TimeDelta::seconds(600), {2000.0});
  EXPECT_GT(r.utilization, 0.85);
  EXPECT_LE(r.utilization, 1.01);
  EXPECT_GT(r.congestion_epochs, 0u);
}

TEST(Fluid, SynchronizedFlowsAreFairByConstruction) {
  FluidAimdSimulator sim(edge_params());
  const FluidResult r = sim.run(10, TimeDelta::seconds(120),
                                {5, 10, 20, 40, 80, 5, 10, 20, 40, 80});
  // The deterministic fluid limit predicts near-perfect fairness — this is
  // exactly the prediction the paper shows breaking at packet level.
  EXPECT_GT(r.jfi, 0.95);
  EXPECT_GT(r.utilization, 0.85);
  EXPECT_DOUBLE_EQ(r.loss_to_halving_ratio, 1.0);
}

TEST(Fluid, DesynchronizedEpochsStillConverge) {
  FluidParams p = edge_params();
  p.sync_fraction = 0.1;  // one-tenth of flows cut per epoch, round robin
  FluidAimdSimulator sim(p);
  const FluidResult r = sim.run(10, TimeDelta::seconds(240));
  EXPECT_GT(r.jfi, 0.9);
  EXPECT_GT(r.utilization, 0.9);  // desync keeps the pipe fuller
}

TEST(Fluid, UtilizationIndependentOfFlowCount) {
  FluidAimdSimulator sim(edge_params());
  const FluidResult a = sim.run(2, TimeDelta::seconds(120));
  const FluidResult b = sim.run(50, TimeDelta::seconds(120));
  EXPECT_NEAR(a.utilization, b.utilization, 0.1);
}

TEST(Fluid, Validation) {
  FluidParams bad = edge_params();
  bad.beta = 1.5;
  EXPECT_THROW(FluidAimdSimulator{bad}, std::invalid_argument);
  bad = edge_params();
  bad.dt_sec = 0.0;
  EXPECT_THROW(FluidAimdSimulator{bad}, std::invalid_argument);
  bad = edge_params();
  bad.sync_fraction = 0.0;
  EXPECT_THROW(FluidAimdSimulator{bad}, std::invalid_argument);
  FluidAimdSimulator ok(edge_params());
  EXPECT_THROW(ok.run(0, TimeDelta::seconds(1)), std::invalid_argument);
}

TEST(Fluid, MoreFlowsMeanSmallerShares) {
  FluidAimdSimulator sim(edge_params());
  const FluidResult r = sim.run(20, TimeDelta::seconds(120));
  for (const double t : r.throughput_bps) {
    EXPECT_LT(t, 100e6 / 20 * 3.0);
    EXPECT_GT(t, 0.0);
  }
}

}  // namespace
}  // namespace ccas
