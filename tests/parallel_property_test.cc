// Property tests for the conservative parallel engine (src/sim/parallel/):
// randomized differential equivalence against the serial engine.
//
//   * ~200 random configs across CCA mix x qdisc x impairments x churn:
//     a sharded run (random shard count) must produce byte-identical
//     serialized results to the serial run — flows, groups, queue stats,
//     drop log, goodput, sim_events, everything the result cache would
//     store — with the invariant auditor live on both sides (a violation
//     throws and fails the test), and equal dispatch totals in the
//     aggregated kernel profile (event-count parity: the delivery stage
//     schedules exactly one event per handoff, like the serial netem).
//   * Churn subset: dynamic Poisson arrivals over sharded background
//     flows; every ChurnResult field must match the serial run.
//   * The fabric itself: lookahead floor, worker-exception delivery, and
//     a jobs x shards cross-product (sweep workers running sharded cells
//     concurrently) staying byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/churn.h"
#include "src/harness/runner.h"
#include "src/net/qdisc/qdisc.h"
#include "src/sim/budget.h"
#include "src/sim/parallel/fabric.h"
#include "src/sweep/result_cache.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

const char* kCcas[] = {"newreno", "cubic", "bbr", "bbr2", "vegas", "copa"};

// A short, fully random experiment: 2-9 flows over 1-3 CCA groups, random
// bottleneck, random qdisc (half the time), random impairments (half the
// time). Durations are compressed so the 200-config sweep stays in test
// time, but long enough to cross slow start, loss recovery and (for BBR)
// several ProbeBW cycles.
ExperimentSpec random_spec(Rng& meta) {
  ExperimentSpec spec;
  spec.scenario.net.bottleneck_rate =
      DataRate::mbps(20 + static_cast<int64_t>(meta.next_double() * 180.0));
  spec.scenario.net.buffer_bytes =
      150'000 + static_cast<int64_t>(meta.next_double() * 1'350'000.0);
  spec.scenario.stagger = TimeDelta::millis(50 + static_cast<int64_t>(
                                                     meta.next_double() * 150.0));
  spec.scenario.warmup = TimeDelta::millis(100 + static_cast<int64_t>(
                                                     meta.next_double() * 200.0));
  spec.scenario.measure = TimeDelta::millis(200 + static_cast<int64_t>(
                                                      meta.next_double() * 300.0));
  const int n_groups = 1 + static_cast<int>(meta.next_double() * 3.0) % 3;
  for (int g = 0; g < n_groups; ++g) {
    FlowGroup group;
    group.cca = kCcas[static_cast<size_t>(meta.next_double() * 6.0) % 6];
    group.count = 2 + static_cast<int>(meta.next_double() * 2.0) % 2;
    group.rtt = TimeDelta::millis(5 + static_cast<int64_t>(meta.next_double() * 55.0));
    spec.groups.push_back(group);
  }
  if (meta.next_double() < 0.5) {
    static const QdiscKind kinds[] = {QdiscKind::kCoDel, QdiscKind::kFqCoDel,
                                      QdiscKind::kPie, QdiscKind::kRed};
    spec.scenario.net.qdisc.kind = kinds[static_cast<size_t>(
        meta.next_double() * 4.0) % 4];
    spec.scenario.net.qdisc.ecn = meta.next_double() < 0.5;
  }
  if (meta.next_double() < 0.5) {
    auto& imp = spec.scenario.net.impairments;
    if (meta.next_double() < 0.5) imp.loss = meta.next_double() * 0.01;
    if (meta.next_double() < 0.3) {
      imp.ge.p_good_to_bad = meta.next_double() * 0.01;
      imp.ge.p_bad_to_good = 0.1 + meta.next_double() * 0.4;
      imp.ge.loss_bad = 0.2 + meta.next_double() * 0.5;
    }
    if (meta.next_double() < 0.3) imp.duplicate = meta.next_double() * 0.005;
    if (meta.next_double() < 0.3) {
      imp.reorder = meta.next_double() * 0.02;
      imp.reorder_delay = TimeDelta::micros(200 + static_cast<int64_t>(
                                                      meta.next_double() * 1800.0));
    }
    if (meta.next_double() < 0.5) {
      imp.jitter = TimeDelta::micros(static_cast<int64_t>(meta.next_double() * 300.0));
      imp.jitter_dist = meta.next_double() < 0.5
                            ? ImpairmentConfig::JitterDist::kUniform
                            : ImpairmentConfig::JitterDist::kNormal;
    }
  }
  spec.tcp.sack_enabled = meta.next_double() < 0.9;
  spec.receiver.delayed_ack = meta.next_double() < 0.9;
  spec.seed = static_cast<uint64_t>(meta.next_double() * 1e9) + 1;
  spec.audit = true;  // auditor throws on any invariant violation
  return spec;
}

// Runs `spec` serially and at a random shard count in [2, min(8, flows)],
// asserting byte-identical serialized results and equal dispatch totals.
void check_one(ExperimentSpec spec, Rng& meta, int index) {
  const int flows = spec.total_flows();
  ASSERT_GE(flows, 2);
  const int shards =
      2 + static_cast<int>(meta.next_double() * 7.0) % std::max(1, std::min(8, flows) - 1);
  SCOPED_TRACE("config " + std::to_string(index) + ": seed " +
               std::to_string(spec.seed) + ", " + std::to_string(flows) +
               " flows, shards " + std::to_string(shards));

  spec.shards = 1;
  const ExperimentResult serial = run_experiment(spec);
  spec.shards = shards;
  const ExperimentResult sharded = run_experiment(spec);

  // The serialized payload is everything the result cache persists:
  // per-flow measurements, groups, queue stats, drop log, goodput,
  // utilization, convergence, sim_events, trace and congestion log.
  EXPECT_EQ(sweep::serialize_result(serial), sweep::serialize_result(sharded));

  // Event-count parity, per tag: the sharded engines together dispatch
  // exactly the serial event population.
  const SimProfile& sp = serial.sim_profile;
  const SimProfile& pp = sharded.sim_profile;
  EXPECT_EQ(sp.events_dispatched, pp.events_dispatched);
  for (size_t t = 0; t < sp.events_by_tag.size(); ++t) {
    EXPECT_EQ(sp.events_by_tag[t], pp.events_by_tag[t]) << "tag " << t;
  }
  EXPECT_EQ(sp.impair_drops, pp.impair_drops);
  EXPECT_EQ(sp.impair_dups, pp.impair_dups);
  EXPECT_EQ(sp.impair_delays, pp.impair_delays);
  EXPECT_EQ(sp.qdisc_head_drops, pp.qdisc_head_drops);
  EXPECT_EQ(sp.qdisc_marks, pp.qdisc_marks);
  EXPECT_EQ(static_cast<uint64_t>(shards), pp.shard_domains);
  EXPECT_GT(pp.shard_windows, 0u);
}

// The 200 random configs, split into four shards of 50 so ctest can run
// them in parallel.
void run_batch(uint64_t meta_seed, int count) {
  Rng meta(meta_seed);
  for (int i = 0; i < count; ++i) {
    check_one(random_spec(meta), meta, i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ParallelProperty, RandomConfigsMatchSerialBatch1) { run_batch(0xA11CE501, 50); }
TEST(ParallelProperty, RandomConfigsMatchSerialBatch2) { run_batch(0xA11CE502, 50); }
TEST(ParallelProperty, RandomConfigsMatchSerialBatch3) { run_batch(0xA11CE503, 50); }
TEST(ParallelProperty, RandomConfigsMatchSerialBatch4) { run_batch(0xA11CE504, 50); }

// Churn: sharded background flows under Poisson arrivals of dynamic
// (core-resident) flows. Every observable ChurnResult field must match.
// --- Budgets on sharded runs: the fabric enforces the exact-event and
// RSS ceilings at window barriers (summed across engines) and installs
// the cancellation token on every engine so a watchdog firing mid-window
// surfaces from a worker thread through the barrier rethrow.

ExperimentSpec budget_spec() {
  ExperimentSpec spec;
  FlowGroup group;
  group.cca = "cubic";
  group.count = 4;
  group.rtt = TimeDelta::millis(20);
  spec.groups.push_back(group);
  spec.scenario.stagger = TimeDelta::millis(50);
  spec.scenario.warmup = TimeDelta::millis(100);
  spec.scenario.measure = TimeDelta::millis(300);
  spec.seed = 11;
  spec.shards = 2;
  return spec;
}

template <typename Fn>
BudgetExceeded::Kind expect_budget_throw(Fn&& fn) {
  try {
    fn();
  } catch (const BudgetExceeded& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected BudgetExceeded";
  return BudgetExceeded::Kind::kWallClock;
}

TEST(ParallelBudget, EventCeilingThrowsSharded) {
  SimBudget budget;
  budget.max_events = 5000;
  const auto kind = expect_budget_throw(
      [&] { run_experiment(budget_spec(), &budget); });
  EXPECT_EQ(kind, BudgetExceeded::Kind::kSimEvents);
}

TEST(ParallelBudget, RssCeilingThrowsSharded) {
  SimBudget budget;
  budget.max_rss_bytes = 1;  // below even the per-flow harness estimate
  const auto kind = expect_budget_throw(
      [&] { run_experiment(budget_spec(), &budget); });
  EXPECT_EQ(kind, BudgetExceeded::Kind::kRssEstimate);
}

TEST(ParallelBudget, CancelTokenThrowsSharded) {
  // Pre-set token: the first poll — on a domain worker inside the first
  // window, or the fabric's own barrier check — must abandon the run.
  std::atomic<bool> cancel{true};
  SimBudget budget;
  budget.cancel = &cancel;
  const auto kind = expect_budget_throw(
      [&] { run_experiment(budget_spec(), &budget); });
  EXPECT_EQ(kind, BudgetExceeded::Kind::kWallClock);
}

TEST(ParallelBudget, GenerousBudgetStaysByteIdentical) {
  // A budget that never trips is observational: the sharded budgeted run
  // must serialize byte-identically to the serial unbudgeted run.
  ExperimentSpec spec = budget_spec();
  spec.shards = 1;
  const std::string serial = sweep::serialize_result(run_experiment(spec));
  std::atomic<bool> cancel{false};
  SimBudget budget;
  budget.max_events = 100'000'000;
  budget.max_rss_bytes = int64_t{1} << 40;
  budget.cancel = &cancel;
  spec.shards = 2;
  EXPECT_EQ(serial, sweep::serialize_result(run_experiment(spec, &budget)));
}

TEST(ParallelFabric, RejectsSubNanosecondLookahead) {
  // The runner rejects tiny RTTs with its own message; the fabric guards
  // independently for direct API users.
  Simulator core;
  ShardPlan plan;
  plan.shards = 2;
  plan.sharded_flows = 4;
  EXPECT_THROW(ShardFabric(core, plan, TimeDelta::nanos(1)),
               std::invalid_argument);
  EXPECT_THROW(
      [] {
        ExperimentSpec spec = budget_spec();
        spec.groups[0].rtt = TimeDelta::nanos(2);  // lookahead 1ns
        run_experiment(spec);
      }(),
      std::invalid_argument);
}

TEST(ParallelFabric, WorkerExceptionSurfacesAtBarrier) {
  // A throw on a domain worker thread (here: a scheduled function; in
  // production an audit violation or tripped per-engine budget) must be
  // captured and rethrown from run_to on the fabric's thread.
  Simulator core;
  ShardPlan plan;
  plan.shards = 2;
  plan.sharded_flows = 4;
  ShardFabric fabric(core, plan, TimeDelta::millis(1));
  fabric.domain_sim(1).schedule_fn_at(
      Time::zero() + TimeDelta::micros(10),
      [] { throw std::runtime_error("domain worker failure"); });
  EXPECT_THROW(fabric.run_to(Time::zero() + TimeDelta::millis(5)),
               std::runtime_error);
}

TEST(ParallelProperty, ChurnMatchesSerial) {
  Rng meta(0xC0FFEE11);
  for (int i = 0; i < 20; ++i) {
    ChurnSpec spec;
    spec.scenario.net.bottleneck_rate =
        DataRate::mbps(20 + static_cast<int64_t>(meta.next_double() * 80.0));
    spec.scenario.net.buffer_bytes = 500'000;
    spec.scenario.stagger = TimeDelta::millis(50);
    spec.scenario.warmup = TimeDelta::millis(150);
    spec.scenario.measure = TimeDelta::millis(400);
    spec.cca = kCcas[static_cast<size_t>(meta.next_double() * 6.0) % 6];
    spec.arrivals_per_sec = 20 + meta.next_double() * 60.0;
    spec.min_size_segments = 5;
    spec.max_size_segments = 5'000;
    const int n_bg = 2 + static_cast<int>(meta.next_double() * 3.0) % 3;
    spec.background.push_back(FlowGroup{
        kCcas[static_cast<size_t>(meta.next_double() * 6.0) % 6], n_bg,
        TimeDelta::millis(10 + static_cast<int64_t>(meta.next_double() * 30.0))});
    spec.seed = 1000 + static_cast<uint64_t>(meta.next_double() * 1e6);
    const int shards = 2 + static_cast<int>(meta.next_double() * 3.0) % std::max(1, n_bg - 1);
    SCOPED_TRACE("churn config " + std::to_string(i) + ": seed " +
                 std::to_string(spec.seed) + ", shards " + std::to_string(shards));

    spec.shards = 1;
    const ChurnResult serial = run_churn_experiment(spec);
    spec.shards = shards;
    const ChurnResult sharded = run_churn_experiment(spec);

    EXPECT_EQ(serial.flows_started, sharded.flows_started);
    EXPECT_EQ(serial.flows_completed, sharded.flows_completed);
    EXPECT_EQ(serial.arrivals_rejected, sharded.arrivals_rejected);
    EXPECT_EQ(serial.completed_sizes, sharded.completed_sizes);
    EXPECT_EQ(serial.fct_seconds, sharded.fct_seconds);
    EXPECT_EQ(serial.utilization, sharded.utilization);
    EXPECT_EQ(serial.background_goodput_bps, sharded.background_goodput_bps);
    EXPECT_EQ(serial.queue.dropped_packets, sharded.queue.dropped_packets);
    EXPECT_EQ(serial.queue.max_queued_bytes, sharded.queue.max_queued_bytes);
  }
}

// Sweep workers and event domains compose: the same cells through the
// multi-threaded sweep path with sharded cells must reproduce the serial
// single-job results byte for byte.
TEST(ParallelProperty, JobsTimesShardsIsByteIdentical) {
  Rng meta(0xBEEF7007);
  std::vector<ExperimentSpec> specs;
  for (int i = 0; i < 6; ++i) specs.push_back(random_spec(meta));

  std::vector<std::string> baseline;
  for (ExperimentSpec spec : specs) {
    spec.shards = 1;
    baseline.push_back(sweep::serialize_result(run_experiment(spec)));
  }
  // Sharded cells dispatched from several sweep worker threads at once:
  // each cell's fabric owns its own worker pool; nothing may bleed.
  std::vector<std::string> sharded(specs.size());
  std::vector<std::thread> workers;
  for (size_t w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = w; i < specs.size(); i += 3) {
        ExperimentSpec spec = specs[i];
        spec.shards = 2 + static_cast<int>(i % 2);
        if (spec.shards > spec.total_flows()) spec.shards = 2;
        sharded[i] = sweep::serialize_result(run_experiment(spec));
      }
    });
  }
  for (auto& t : workers) t.join();
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(baseline[i], sharded[i]) << "cell " << i;
  }
}

}  // namespace
}  // namespace ccas
