// Golden-trace regression tests: every grid cell's digest must match the
// checked-in goldens file (`ctest -R golden`). A failure means simulator or
// TCP-stack behavior drifted; if the change is intended, re-record with
// `tools/ccas_check record` and review the summary-field diff.
//
// The suite name is lowercase so `ctest -R golden` selects exactly these.
#include "src/check/golden.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "src/harness/runner.h"
#include "src/sweep/spec_hash.h"

namespace ccas::check {
namespace {

TEST(golden, GridIsStableAndUnique) {
  const std::vector<GoldenCell> grid = golden_grid();
  ASSERT_FALSE(grid.empty());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_FALSE(grid[i].name.empty());
    for (size_t j = i + 1; j < grid.size(); ++j) {
      EXPECT_NE(grid[i].name, grid[j].name) << "duplicate cell name";
    }
  }
}

TEST(golden, FormatParsesRoundTrip) {
  GoldenRecord a;
  a.name = "cell-a";
  a.digest = 0x0123456789abcdefULL;
  a.aggregate_goodput_bps = 1.25e8;
  a.utilization = 0.937;
  a.dropped_packets = 42;
  a.congestion_events = 7;
  a.sim_events = 123456;
  a.flows = 4;
  GoldenRecord b;
  b.name = "cell-b";
  b.digest = 0xffffffffffffffffULL;
  const std::string text = format_goldens({a, b});
  const std::vector<GoldenRecord> parsed = parse_goldens(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, a.name);
  EXPECT_EQ(parsed[0].digest, a.digest);
  EXPECT_DOUBLE_EQ(parsed[0].aggregate_goodput_bps, a.aggregate_goodput_bps);
  EXPECT_DOUBLE_EQ(parsed[0].utilization, a.utilization);
  EXPECT_EQ(parsed[0].dropped_packets, a.dropped_packets);
  EXPECT_EQ(parsed[0].congestion_events, a.congestion_events);
  EXPECT_EQ(parsed[0].sim_events, a.sim_events);
  EXPECT_EQ(parsed[0].flows, a.flows);
  EXPECT_EQ(parsed[1].digest, b.digest);
  // Round-trip must be byte-stable: format(parse(format(x))) == format(x).
  EXPECT_EQ(format_goldens(parsed), text);
}

TEST(golden, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_goldens("cell deadbeef 1.0 0.5 1 2 3"),
               std::runtime_error);  // missing field + no version tag
  EXPECT_THROW(
      (void)parse_goldens("# ccas-golden-v1\ncell notahexdigest 1 0.5 1 2 3 4"),
      std::runtime_error);
  EXPECT_THROW((void)parse_goldens("cell 00000000000000aa 1 0.5 1 2 3 4"),
               std::runtime_error);  // records without a version tag
  EXPECT_TRUE(parse_goldens("").empty());
  EXPECT_TRUE(parse_goldens("# just a comment\n").empty());
}

TEST(golden, CompareFlagsMismatchMissingAndUnknown) {
  GoldenRecord exp;
  exp.name = "cell";
  exp.digest = 1;
  GoldenRecord act = exp;
  EXPECT_TRUE(compare_goldens({exp}, {act}).ok);

  act.digest = 2;
  const GoldenDiff mismatch = compare_goldens({exp}, {act});
  EXPECT_FALSE(mismatch.ok);
  EXPECT_NE(mismatch.report.find("MISMATCH"), std::string::npos);

  EXPECT_FALSE(compare_goldens({exp}, {}).ok);
  EXPECT_FALSE(compare_goldens({}, {act}).ok);
}

// The acceptance check: recompute every grid cell (auditor on — a golden
// recorded under a violated invariant would be worthless) and compare the
// digests against the checked-in file.
TEST(golden, GridMatchesCheckedInDigests) {
  std::vector<GoldenRecord> expected;
  try {
    expected = load_goldens(CCAS_GOLDENS_FILE);
  } catch (const std::exception& e) {
    FAIL() << "cannot load goldens (" << e.what()
           << "); run `tools/ccas_check record` once to create them";
  }
  ASSERT_FALSE(expected.empty());

  std::vector<GoldenRecord> actual;
  for (const GoldenCell& cell : golden_grid()) {
    ExperimentSpec spec = cell.spec;
    spec.audit = true;
    const ExperimentResult result = run_experiment(spec);
    actual.push_back(make_golden_record(cell.name, cell.spec, result));
  }
  const GoldenDiff diff = compare_goldens(expected, actual);
  EXPECT_TRUE(diff.ok) << diff.report
                       << "re-record with `tools/ccas_check record` if this "
                          "behavior change is intended";
}

// The parallel-engine differential wall: every golden cell, re-run under
// the shard fabric, must reproduce the *recorded* digest byte for byte —
// at every shard count. The record is made against cell.spec (shards
// defaulted), exactly as the serial suite records it, so any drift in
// result bytes (throughput, fairness, drops, sim_events, traces) between
// the serial and sharded engines fails here against the same goldens the
// serial run is pinned to. CCAS_GOLDEN_SHARDS restricts the shard list
// (e.g. "4" in the TSan CI job, where 3x grid re-runs would be too slow).
TEST(golden, ShardedGridMatchesCheckedInDigests) {
  const std::vector<GoldenRecord> expected = load_goldens(CCAS_GOLDENS_FILE);
  ASSERT_FALSE(expected.empty());
  auto find = [&](const std::string& name) -> const GoldenRecord* {
    for (const GoldenRecord& r : expected) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };

  std::vector<int> shard_counts = {2, 4, 8};
  if (const char* env = std::getenv("CCAS_GOLDEN_SHARDS")) {
    shard_counts.clear();
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ',')) shard_counts.push_back(std::stoi(tok));
    ASSERT_FALSE(shard_counts.empty()) << "empty CCAS_GOLDEN_SHARDS";
  }

  size_t checked = 0;
  for (const GoldenCell& cell : golden_grid()) {
    const GoldenRecord* exp = find(cell.name);
    ASSERT_NE(exp, nullptr) << cell.name;
    for (int shards : shard_counts) {
      // A domain without a flow is a spec error; small cells pin the
      // lower shard counts only.
      if (shards > cell.spec.total_flows()) continue;
      ExperimentSpec spec = cell.spec;
      spec.audit = true;
      spec.shards = shards;
      const ExperimentResult result = run_experiment(spec);
      const GoldenRecord act = make_golden_record(cell.name, cell.spec, result);
      EXPECT_EQ(act.digest, exp->digest)
          << cell.name << " at --shards=" << shards
          << " drifted from the recorded serial digest";
      EXPECT_EQ(act.sim_events, exp->sim_events)
          << cell.name << " at --shards=" << shards
          << ": event-count parity with the serial engine broke";
      ++checked;
    }
  }
  // Every configured shard count must have been exercised on the cells
  // large enough to host it.
  EXPECT_GE(checked, golden_grid().size()) << "shard coverage collapsed";
}

// The spec hash must not change for serial specs: `shards` is appended to
// the canonical bytes only when non-default, so recorded goldens and the
// on-disk result cache keep their keys.
TEST(golden, ShardsFieldKeepsSerialSpecBytes) {
  for (const GoldenCell& cell : golden_grid()) {
    ExperimentSpec spec = cell.spec;
    spec.shards = 1;
    ASSERT_EQ(sweep::canonical_spec_bytes(spec),
              sweep::canonical_spec_bytes(cell.spec))
        << cell.name << ": shards=1 changed the canonical spec bytes";
    spec.shards = 2;
    ASSERT_NE(sweep::canonical_spec_bytes(spec),
              sweep::canonical_spec_bytes(cell.spec))
        << cell.name << ": shards=2 must be visible in the canonical spec";
  }
}

// Differential check for the qdisc refactor: routing a pre-qdisc cell
// through an explicit `--qdisc drop-tail` must be a perfect no-op — same
// canonical spec bytes (the hash gates the qdisc block on an AQM being
// selected) and the same digest as the checked-in golden. This pins the
// DropTailQueue-under-QueueDisc path to the historical byte stream.
TEST(golden, ExplicitDropTailMatchesPreQdiscDigests) {
  const std::vector<GoldenRecord> expected = load_goldens(CCAS_GOLDENS_FILE);
  auto find = [&](const std::string& name) -> const GoldenRecord* {
    for (const GoldenRecord& r : expected) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  size_t checked = 0;
  for (const GoldenCell& cell : golden_grid()) {
    if (cell.spec.scenario.net.qdisc.enabled()) continue;  // AQM cells
    // Pin the drop-tail config explicitly — including a qdisc seed, which
    // must be inert while the scheduler is drop-tail — and check the
    // canonical spec bytes (what `--qdisc drop-tail` parses to) are
    // unchanged from the implicit default.
    ExperimentSpec spec = cell.spec;
    spec.scenario.net.qdisc.kind = QdiscKind::kDropTail;
    spec.scenario.net.qdisc.seed = 0xFEEDFACE;  // ignored: qdisc disabled
    ASSERT_EQ(sweep::canonical_spec_bytes(spec),
              sweep::canonical_spec_bytes(cell.spec))
        << cell.name << ": explicit drop-tail changed the canonical spec";
    // And the run itself must reproduce the checked-in digest.
    const GoldenRecord* exp = find(cell.name);
    ASSERT_NE(exp, nullptr) << cell.name;
    spec.audit = true;
    const ExperimentResult result = run_experiment(spec);
    EXPECT_EQ(make_golden_record(cell.name, cell.spec, result).digest,
              exp->digest)
        << cell.name << ": --qdisc drop-tail drifted from the pre-qdisc digest";
    ++checked;
  }
  EXPECT_EQ(checked, 12u) << "expected the 12 drop-tail golden cells";
}

// Differential check for the workload stage: stripping the (disabled-by-
// default) workload block from every pre-workload cell is a perfect no-op
// — identical canonical spec bytes and the checked-in digest. This pins
// the invariant that a disabled WorkloadSpec leaves all pre-workload
// golden digests byte-identical.
TEST(golden, DisabledWorkloadMatchesPreWorkloadDigests) {
  const std::vector<GoldenRecord> expected = load_goldens(CCAS_GOLDENS_FILE);
  auto find = [&](const std::string& name) -> const GoldenRecord* {
    for (const GoldenRecord& r : expected) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  size_t checked = 0;
  for (const GoldenCell& cell : golden_grid()) {
    if (cell.spec.workload.enabled()) continue;  // the workload cells
    // An inert workload block (cap set, classes listed, but no arrival
    // rate) must leave the canonical spec bytes unchanged...
    ExperimentSpec spec = cell.spec;
    spec.workload.max_concurrent = 4096;
    spec.workload.classes.push_back(WorkloadClass{});
    ASSERT_EQ(sweep::canonical_spec_bytes(spec),
              sweep::canonical_spec_bytes(cell.spec))
        << cell.name << ": disabled workload changed the canonical spec";
    // ...and the run itself must reproduce the checked-in digest.
    const GoldenRecord* exp = find(cell.name);
    ASSERT_NE(exp, nullptr) << cell.name;
    spec.audit = true;
    const ExperimentResult result = run_experiment(spec);
    EXPECT_EQ(make_golden_record(cell.name, cell.spec, result).digest,
              exp->digest)
        << cell.name << ": inert workload block drifted from the recorded digest";
    ++checked;
  }
  EXPECT_EQ(checked, 12u) << "expected the 12 pre-workload golden cells";
}

}  // namespace
}  // namespace ccas::check
